/// \file rlc_load.cpp
/// Open-loop replay load generator for a running rlc_serve socket.
///
/// The generator draws a Poisson arrival process at the offered rate
/// (--qps), assigns each arrival round-robin to one of --connections
/// persistent Unix-socket connections, and sends the request AT ITS
/// SCHEDULED TIME whether or not earlier responses have come back.  That is
/// the open-loop discipline: a slow server does not slow the generator
/// down, it builds queueing delay — so recorded latency (measured from the
/// scheduled arrival, not from the write) honestly includes the time spent
/// waiting behind other requests.  Closed-loop harnesses (send, wait,
/// send) hide exactly that failure mode ("coordinated omission").
///
/// Each connection is a sender thread (paces its slice of the schedule)
/// plus a receiver thread (reads response lines, matches them against the
/// same pre-generated slice — the server guarantees per-connection request
/// order, so response k on a connection answers that connection's request
/// k; the echoed id pins it).  Latencies land in an rlc::obs histogram;
/// quantiles and error counts go to the BENCH_load.json artifact that
/// scripts/validate_bench_json.py checks.
///
/// The workload replays --keys distinct queries (both technologies swept
/// over the paper's inductance range), so a sharded server sees every
/// shard's cache warm up once and then serve hits — the sustained-serving
/// regime, not the cold-compute regime the --bench mode of rlc_serve
/// measures.
///
/// Mid-run, a dedicated scraper connection issues the admin ops
/// ({"op":"stats"} and {"op":"metrics","format":"prometheus"}) against the
/// loaded server — exercising the observability plane while the serving
/// plane is saturated, exactly how a Prometheus scrape hits production.
/// The scrape lands in the artifact's "telemetry" block (schema 2).
///
/// Exit codes: 0 run completed (errors are recorded, not fatal),
/// 2 bad usage or connect/setup failure.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "rlc/base/simd.hpp"
#include "rlc/base/version.hpp"
#include "rlc/io/json.hpp"
#include "rlc/io/json_reader.hpp"
#include "rlc/obs/metrics.hpp"
#include "rlc/obs/trace.hpp"
#include "rlc/svc/query.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#define RLC_LOAD_HAVE_UNIX_SOCKETS 1
#else
#define RLC_LOAD_HAVE_UNIX_SOCKETS 0
#endif

namespace {

struct Args {
  std::string socket_path;
  std::size_t connections = 8;
  std::size_t keys = 256;        // distinct query keys replayed
  double qps = 0.0;              // offered rate; 0 picks a mode default
  long long requests = 0;        // total; 0 picks a mode default
  unsigned long long seed = 42;  // arrival + key sequence seed
  bool quick = false;
  bool exact = false;            // with_exact_delay on the replayed queries
  std::string json_path;         // artifact destination
};

int usage(const char* argv0, int code) {
  std::FILE* out = code == 0 ? stdout : stderr;
  std::fprintf(out,
               "usage: %s --socket PATH [options]\n"
               "  --socket PATH      rlc_serve Unix socket to load (required)\n"
               "  --connections N    concurrent connections (default 8)\n"
               "  --qps R            offered arrival rate "
               "(default 1000 quick, 10000 full)\n"
               "  --requests N       total requests "
               "(default 2000 quick, 1000000 full)\n"
               "  --keys N           distinct query keys (default 256)\n"
               "  --exact            replay exact-waveform queries\n"
               "  --seed S           arrival/key RNG seed (default 42)\n"
               "  --quick            CI-sized run\n"
               "  --json FILE        artifact path (default BENCH_load.json)\n"
               "  --version          print the library version\n",
               argv0);
  return code;
}

#if RLC_LOAD_HAVE_UNIX_SOCKETS

using Clock = std::chrono::steady_clock;

/// One scheduled arrival: when (relative to run start) and which key.
struct Arrival {
  double at_seconds = 0.0;
  std::uint32_t key = 0;
};

struct ConnStats {
  std::uint64_t responses = 0;
  std::uint64_t errors = 0;        // non-ok status on the wire
  std::uint64_t id_mismatches = 0; // response id != expected request id
  bool transport_failed = false;
};

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) return -1;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool write_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::write(fd, data.data() + sent, data.size() - sent);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Pace this connection's slice of the schedule, then half-close so the
/// server flushes remaining responses and closes its side (EOF for the
/// receiver thread).
void sender_main(int fd, const std::vector<Arrival>& slice,
                 const std::vector<std::string>& key_lines,
                 std::uint64_t first_id, std::size_t stride,
                 Clock::time_point start, ConnStats* stats) {
  std::string line;
  for (std::size_t k = 0; k < slice.size(); ++k) {
    const auto due =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(slice[k].at_seconds));
    std::this_thread::sleep_until(due);  // past-due sends go immediately
    // key_lines holds the request minus id; splice the global id in.
    const std::uint64_t id = first_id + k * stride;
    line = "{\"id\":";
    line += std::to_string(id);
    line += ',';
    line += key_lines[slice[k].key];
    line += '\n';
    if (!write_all(fd, line)) {
      stats->transport_failed = true;
      return;
    }
  }
  ::shutdown(fd, SHUT_WR);
}

/// Read response lines; response k answers this connection's request k
/// (per-connection ordering is a server guarantee — the echoed id verifies
/// it).  Latency is measured from the request's SCHEDULED arrival.
void receiver_main(int fd, const std::vector<Arrival>& slice,
                   std::uint64_t first_id, std::size_t stride,
                   Clock::time_point start, int latency_hist,
                   ConnStats* stats) {
  std::string pending;
  char buf[64 * 1024];
  std::size_t k = 0;
  auto handle = [&](const std::string& resp) {
    if (k >= slice.size()) return;
    const double lat_us =
        std::chrono::duration<double, std::micro>(
            Clock::now() -
            (start + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(slice[k].at_seconds))))
            .count();
    const std::uint64_t want_id = first_id + k * stride;
    ++k;
    ++stats->responses;
    rlc::obs::Registry::global().record(latency_hist, lat_us);
    try {
      const rlc::io::JsonValue v = rlc::io::parse_json(resp);
      if (v.string_or("status", "") != "ok") ++stats->errors;
      const rlc::io::JsonValue* id = v.find("id");
      if (!id || id->kind() != rlc::io::JsonValue::Kind::kNumber ||
          static_cast<std::uint64_t>(id->as_number()) != want_id) {
        ++stats->id_mismatches;
      }
    } catch (const std::exception&) {
      ++stats->errors;
    }
  };
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      stats->transport_failed = true;
      return;
    }
    if (n == 0) break;  // server closed after flushing (half-close done)
    pending.append(buf, static_cast<std::size_t>(n));
    std::size_t startpos = 0;
    for (std::size_t nl = pending.find('\n'); nl != std::string::npos;
         nl = pending.find('\n', startpos)) {
      handle(pending.substr(startpos, nl - startpos));
      startpos = nl + 1;
    }
    pending.erase(0, startpos);
  }
  if (k < slice.size()) stats->transport_failed = true;
}

/// What the mid-run admin scrape observed.  attempted && !ok means the
/// scrape ran against a server that refused or garbled the admin ops —
/// recorded in the artifact, not fatal (same policy as request errors).
struct ScrapeResult {
  bool attempted = false;
  bool ok = false;
  long long prometheus_series = 0;  // non-comment, non-empty exposition lines
  long long prometheus_bytes = 0;
  long long server_requests = -1;
  long long connections_open = -1;
  long long trace_ring_capacity = -1;
  long long trace_dropped = -1;
};

/// Sleep until mid-run, then scrape the admin plane over its own
/// connection: one stats op, one Prometheus metrics op, half-close, read
/// both response lines to EOF.
void scraper_main(const std::string& path, double delay_seconds,
                  Clock::time_point start, ScrapeResult* out) {
  out->attempted = true;
  std::this_thread::sleep_until(
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(delay_seconds)));
  const int fd = connect_unix(path);
  if (fd < 0) return;
  if (!write_all(fd,
                 "{\"op\":\"stats\"}\n"
                 "{\"op\":\"metrics\",\"format\":\"prometheus\"}\n")) {
    ::close(fd);
    return;
  }
  ::shutdown(fd, SHUT_WR);  // server flushes both responses, then EOF
  std::string all;
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    all.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  std::vector<std::string> lines;
  std::size_t pos = 0;
  for (std::size_t nl = all.find('\n'); nl != std::string::npos;
       nl = all.find('\n', pos)) {
    lines.push_back(all.substr(pos, nl - pos));
    pos = nl + 1;
  }
  if (lines.size() < 2) return;
  try {
    const rlc::io::JsonValue stats = rlc::io::parse_json(lines[0]);
    const rlc::io::JsonValue metrics = rlc::io::parse_json(lines[1]);
    if (stats.string_or("status", "") != "ok" ||
        metrics.string_or("status", "") != "ok") {
      return;
    }
    if (const rlc::io::JsonValue* r = stats.find("result")) {
      if (const rlc::io::JsonValue* server = r->find("server")) {
        out->server_requests = server->int_or("requests", -1);
        out->connections_open = server->int_or("connections_open", -1);
      }
      if (const rlc::io::JsonValue* trace = r->find("trace")) {
        out->trace_ring_capacity = trace->int_or("ring_capacity", -1);
        out->trace_dropped = trace->int_or("dropped", -1);
      }
    }
    const rlc::io::JsonValue* r = metrics.find("result");
    if (!r) return;
    const std::string body = r->string_or("body", "");
    out->prometheus_bytes = static_cast<long long>(body.size());
    std::size_t at = 0;
    while (at <= body.size()) {
      const std::size_t nl = body.find('\n', at);
      const std::string line =
          body.substr(at, nl == std::string::npos ? nl : nl - at);
      if (!line.empty() && line[0] != '#') ++out->prometheus_series;
      if (nl == std::string::npos) break;
      at = nl + 1;
    }
    out->ok = true;
  } catch (const std::exception&) {
    // leave ok == false
  }
}

int run_load(const Args& args) {
  const double qps = args.qps > 0 ? args.qps : (args.quick ? 1000.0 : 10000.0);
  const std::uint64_t total = static_cast<std::uint64_t>(
      args.requests > 0 ? args.requests : (args.quick ? 2000 : 1000000));
  const std::size_t conns = std::max<std::size_t>(1, args.connections);
  const std::size_t keys = std::max<std::size_t>(1, args.keys);

  // The replayed key set: both technologies swept over the paper's
  // inductance range.  Rendered once, minus the id, so the send path only
  // splices an integer.
  std::vector<std::string> key_lines;
  key_lines.reserve(keys);
  for (std::size_t i = 0; i < keys; ++i) {
    rlc::svc::QueryRequest q;
    q.technology = (i % 2 == 0) ? "250nm" : "100nm";
    q.l = keys > 1 ? 5.0e-6 * static_cast<double>(i) /
                         static_cast<double>(keys - 1)
                   : 2.5e-6;
    q.with_exact_delay = args.exact;
    std::string line = q.to_json().str();
    // to_json renders a full object; reuse its body inside our envelope.
    if (line.size() < 2 || line.front() != '{' || line.back() != '}') {
      std::fprintf(stderr, "rlc_load: unexpected request rendering\n");
      return 2;
    }
    key_lines.push_back("\"op\":\"query\"," +
                        line.substr(1, line.size() - 2) + "}");
  }

  // One global Poisson process at the offered rate, dealt round-robin onto
  // the connections; the aggregate the server sees is the Poisson stream.
  std::mt19937_64 rng(args.seed);
  std::exponential_distribution<double> gap(qps);
  std::uniform_int_distribution<std::uint32_t> pick(
      0, static_cast<std::uint32_t>(keys - 1));
  std::vector<std::vector<Arrival>> slices(conns);
  for (auto& s : slices) s.reserve(total / conns + 1);
  double t = 0.0;
  for (std::uint64_t i = 0; i < total; ++i) {
    t += gap(rng);
    slices[i % conns].push_back(Arrival{t, pick(rng)});
  }
  const double offered_span = t;

  std::vector<int> fds(conns, -1);
  for (std::size_t c = 0; c < conns; ++c) {
    fds[c] = connect_unix(args.socket_path);
    if (fds[c] < 0) {
      std::fprintf(stderr, "rlc_load: cannot connect to %s\n",
                   args.socket_path.c_str());
      for (int fd : fds) {
        if (fd >= 0) ::close(fd);
      }
      return 2;
    }
  }

  const int latency_hist = rlc::obs::Registry::global().histogram(
      "load.latency_us", 1.0, 1.0e8, 64);

  std::fprintf(stderr,
               "rlc_load: %llu requests @ %.0f q/s over %zu connections "
               "(%zu keys, seed %llu)\n",
               static_cast<unsigned long long>(total), qps, conns, keys,
               static_cast<unsigned long long>(args.seed));

  std::vector<ConnStats> stats(conns);
  ScrapeResult scrape;
  std::vector<std::thread> threads;
  threads.reserve(conns * 2 + 1);
  const Clock::time_point start = Clock::now();
  for (std::size_t c = 0; c < conns; ++c) {
    threads.emplace_back(receiver_main, fds[c], std::cref(slices[c]),
                         static_cast<std::uint64_t>(c), conns, start,
                         latency_hist, &stats[c]);
    threads.emplace_back(sender_main, fds[c], std::cref(slices[c]),
                         std::cref(key_lines), static_cast<std::uint64_t>(c),
                         conns, start, &stats[c]);
  }
  // Scrape halfway through the offered schedule, while the serving plane
  // is under load (that is the point: admin ops must answer mid-burst).
  threads.emplace_back(scraper_main, args.socket_path, offered_span * 0.5,
                       start, &scrape);
  for (std::thread& th : threads) th.join();
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();
  for (int fd : fds) ::close(fd);

  ConnStats sum;
  bool transport_failed = false;
  for (const ConnStats& s : stats) {
    sum.responses += s.responses;
    sum.errors += s.errors;
    sum.id_mismatches += s.id_mismatches;
    transport_failed = transport_failed || s.transport_failed;
  }

  const rlc::obs::MetricsSnapshot snap =
      rlc::obs::Registry::global().snapshot();
  rlc::obs::HistogramSnapshot lat;
  for (const auto& h : snap.histograms) {
    if (h.name == "load.latency_us") lat = h;
  }

  const double achieved = wall > 0 ? static_cast<double>(sum.responses) / wall
                                   : 0.0;
  std::printf("rlc_load: %llu/%llu responses in %.2fs\n",
              static_cast<unsigned long long>(sum.responses),
              static_cast<unsigned long long>(total), wall);
  std::printf("  offered %.0f q/s   achieved %.0f q/s\n", qps, achieved);
  std::printf("  latency p50 %.0f us   p99 %.0f us   max %.0f us\n",
              lat.quantile(0.5), lat.quantile(0.99), lat.max);
  std::printf("  errors %llu   id mismatches %llu%s\n",
              static_cast<unsigned long long>(sum.errors),
              static_cast<unsigned long long>(sum.id_mismatches),
              transport_failed ? "   TRANSPORT FAILED" : "");
  if (scrape.ok) {
    std::printf("  telemetry scrape: %lld series, %lld bytes "
                "(server saw %lld requests mid-run)\n",
                scrape.prometheus_series, scrape.prometheus_bytes,
                scrape.server_requests);
  } else {
    std::printf("  telemetry scrape FAILED\n");
  }

  rlc::io::Json j;
  // schema history: 1 initial load artifact; 2 adds the "telemetry" block
  // (mid-run admin scrape).
  j.set("schema", 2);
  j.set("bench", "load");
  j.set("version", rlc::version());
  j.set("simd", rlc::simd::active_level_name());
  j.set("quick", args.quick);
  j.set("connections", static_cast<long long>(conns));
  j.set("keys", static_cast<long long>(keys));
  j.set("requests", static_cast<long long>(total));
  j.set("seed", static_cast<long long>(args.seed));
  j.set("duration_seconds", wall);
  j.set("offered_span_seconds", offered_span);
  rlc::io::Json m;
  m.set("offered_qps", qps);
  m.set("achieved_qps", achieved);
  m.set("responses", static_cast<long long>(sum.responses));
  m.set("errors", static_cast<long long>(sum.errors));
  m.set("id_mismatches", static_cast<long long>(sum.id_mismatches));
  m.set("transport_failed", transport_failed);
  m.set("p50_latency_us", lat.quantile(0.5));
  m.set("p99_latency_us", lat.quantile(0.99));
  m.set("max_latency_us", lat.max);
  m.set("mean_latency_us", lat.mean());
  j.set("metrics", m);
  rlc::io::Json tel;
  tel.set("scrape_attempted", scrape.attempted);
  tel.set("scrape_ok", scrape.ok);
  tel.set("prometheus_series", scrape.prometheus_series);
  tel.set("prometheus_bytes", scrape.prometheus_bytes);
  tel.set("server_requests", scrape.server_requests);
  tel.set("connections_open", scrape.connections_open);
  tel.set("trace_ring_capacity", scrape.trace_ring_capacity);
  tel.set("trace_dropped", scrape.trace_dropped);
  j.set("telemetry", tel);
  const std::string path =
      args.json_path.empty() ? "BENCH_load.json" : args.json_path;
  if (!rlc::io::write_json_file(path, j)) return 2;
  std::printf("  wrote %s\n", path.c_str());
  return 0;
}

#endif  // RLC_LOAD_HAVE_UNIX_SOCKETS

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "rlc_load: %s needs a value\n", flag);
        std::exit(usage(argv[0], 2));
      }
      return argv[++i];
    };
    const auto parse_positive = [&](const char* flag, long long* out) {
      char* end = nullptr;
      const long long v = std::strtoll(need_value(flag), &end, 10);
      if (!end || *end != '\0' || v < 1) {
        std::fprintf(stderr, "rlc_load: invalid %s value\n", flag);
        std::exit(2);
      }
      *out = v;
    };
    if (a == "--help" || a == "-h") return usage(argv[0], 0);
    if (a == "--version") {
      std::printf("%s\n", rlc::version());
      return 0;
    }
    if (a == "--socket") {
      args.socket_path = need_value("--socket");
    } else if (a == "--connections") {
      long long v = 0;
      parse_positive("--connections", &v);
      args.connections = static_cast<std::size_t>(v);
    } else if (a == "--keys") {
      long long v = 0;
      parse_positive("--keys", &v);
      args.keys = static_cast<std::size_t>(v);
    } else if (a == "--requests") {
      parse_positive("--requests", &args.requests);
    } else if (a == "--qps") {
      char* end = nullptr;
      const double v = std::strtod(need_value("--qps"), &end);
      if (!end || *end != '\0' || !(v > 0)) {
        std::fprintf(stderr, "rlc_load: invalid --qps value\n");
        return 2;
      }
      args.qps = v;
    } else if (a == "--seed") {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(need_value("--seed"), &end, 10);
      if (!end || *end != '\0') {
        std::fprintf(stderr, "rlc_load: invalid --seed value\n");
        return 2;
      }
      args.seed = v;
    } else if (a == "--json") {
      args.json_path = need_value("--json");
    } else if (a == "--quick") {
      args.quick = true;
    } else if (a == "--exact") {
      args.exact = true;
    } else {
      std::fprintf(stderr, "rlc_load: unknown option %s\n", a.c_str());
      return usage(argv[0], 2);
    }
  }
  if (args.socket_path.empty()) {
    std::fprintf(stderr, "rlc_load: --socket is required\n");
    return usage(argv[0], 2);
  }
  // Same strictness as rlc_run/rlc_serve: a malformed RLC_TRACE_RING is a
  // caller error, not a silent fallback — the latency histograms share the
  // obs registry whose tracer would consume the override.
  if (const auto ring = rlc::obs::Tracer::parse_ring_capacity_strict(
          std::getenv("RLC_TRACE_RING"));
      !ring.is_ok()) {
    std::fprintf(stderr, "rlc_load: %s\n", ring.status().to_string().c_str());
    return 2;
  }
#if RLC_LOAD_HAVE_UNIX_SOCKETS
  return run_load(args);
#else
  std::fprintf(stderr, "rlc_load: Unix sockets unavailable on this platform\n");
  return 2;
#endif
}
