/// Table 1 — Interconnect technology parameters.
///
/// The paper's table mixes roadmap inputs (r, c, geometry, eps_r) with
/// derived quantities: the SPICE-measured RC optimum (h_optRC, k_optRC,
/// tau_optRC) and the repeater parameters (r_s, c_0, c_p) inferred from it.
/// This bench regenerates the derived columns three ways:
///   1. closed-form Elmore optimum from the stored (r_s, c_0, c_p);
///   2. the inverse calibration: (r_s, c_0, c_p) recovered from the optimum;
///   3. wire r and c cross-checked against the extraction substrate
///      (resistance formula and the 2D BEM FASTCAP substitute).

#include <cstdio>

#include "bench_util.hpp"
#include "rlc/core/elmore.hpp"
#include "rlc/extract/bem2d.hpp"
#include "rlc/extract/resistance.hpp"
#include "rlc/math/constants.hpp"

int main() {
  using namespace rlc::core;
  bench::banner("TABLE 1", "Interconnect technology parameters (250 nm / 100 nm)");

  std::printf("%-8s %8s %9s %6s %9s %9s %10s %9s %9s %9s\n", "Tech", "r", "c",
              "eps_r", "h_optRC", "k_optRC", "tau_optRC", "r_s", "c_0", "c_p");
  std::printf("%-8s %8s %9s %6s %9s %9s %10s %9s %9s %9s\n", "", "(Ohm/mm)",
              "(pF/m)", "", "(mm)", "", "(ps)", "(kOhm)", "(fF)", "(fF)");
  bench::rule();
  for (const auto& tech : {Technology::nm250(), Technology::nm100()}) {
    const auto o = rc_optimum(tech);
    std::printf("%-8s %8.1f %9.2f %6.1f %9.2f %9.0f %10.2f %9.3f %9.4f %9.4f\n",
                tech.name.c_str(), tech.r * 1e-3, tech.c * 1e12, tech.eps_r,
                o.h * 1e3, o.k, o.tau * 1e12, tech.rep.rs * 1e-3,
                tech.rep.c0 * 1e15, tech.rep.cp * 1e15);
  }
  bench::note("(paper: 250nm -> 14.4 mm, 578, 305.17 ps; 100nm -> 11.1 mm, 528, 105.94 ps)");

  bench::rule();
  bench::note("Inverse calibration: (r_s, c_0, c_p) recovered from the measured optimum");
  for (const auto& tech : {Technology::nm250(), Technology::nm100()}) {
    const auto o = rc_optimum(tech);
    const auto rep = infer_repeater_from_rc_optimum(tech.r, tech.c, o.h, o.k, o.tau);
    std::printf("  %-8s r_s=%8.3f kOhm  c_0=%7.4f fF  c_p=%7.4f fF\n",
                tech.name.c_str(), rep.rs * 1e-3, rep.c0 * 1e15, rep.cp * 1e15);
  }

  bench::rule();
  bench::note("Extraction cross-check (substrates replacing FASTCAP / resistance data):");
  for (const auto& tech : {Technology::nm250(), Technology::nm100()}) {
    const double r_bulk = rlc::extract::resistance_per_length(
        rlc::math::kRhoCopper, tech.width, tech.thickness);
    rlc::extract::Bem2dOptions opts;
    opts.panels_per_side = 16;
    opts.eps_r = tech.eps_r;
    const auto bus = rlc::extract::parallel_bus(3, tech.width, tech.thickness,
                                                tech.pitch, tech.t_ins);
    const double c_bem = rlc::extract::total_capacitance(bus, 1, opts);
    std::printf(
        "  %-8s r: bulk-Cu %5.2f Ohm/mm vs Table-1 %4.2f (barrier overhead x%.2f)\n"
        "           c: 2D-BEM %6.1f pF/m vs Table-1 (3D, multilayer) %6.1f (x%.2f)\n",
        tech.name.c_str(), r_bulk * 1e-3, tech.r * 1e-3, tech.r / r_bulk,
        c_bem * 1e12, tech.c * 1e12, tech.c / c_bem);
  }
  bench::note("The 2D substrate-only BEM underestimates the paper's 3D multilayer\n"
              "extraction, as expected; the optimization benches use Table 1's c.");
  return 0;
}
