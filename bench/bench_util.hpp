#pragma once

/// Shared formatting helpers for the figure/table regeneration benches.
/// Each bench prints the same rows/series the paper reports, with a header
/// that states the experiment, the paper's qualitative expectation, and our
/// measured shape.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "rlc/exec/counters.hpp"
#include "rlc/exec/thread_pool.hpp"

namespace bench {

/// Minimal ordered JSON object builder for the machine-readable bench
/// artifacts (BENCH_*.json).  Keys keep insertion order; values are
/// rendered on insertion, so nesting is by composing builders.  No escaping
/// beyond quotes/backslashes — keys and strings here are plain ASCII
/// identifiers.
class Json {
 public:
  Json& set(const std::string& key, double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return raw(key, buf);
  }
  Json& set(const std::string& key, long long v) {
    return raw(key, std::to_string(v));
  }
  Json& set(const std::string& key, int v) {
    return raw(key, std::to_string(v));
  }
  Json& set(const std::string& key, bool v) {
    return raw(key, v ? "true" : "false");
  }
  Json& set(const std::string& key, const std::string& v) {
    return raw(key, "\"" + escaped(v) + "\"");
  }
  Json& set(const std::string& key, const char* v) {
    return set(key, std::string(v));
  }
  Json& set(const std::string& key, const Json& nested) {
    return raw(key, nested.str());
  }
  Json& set(const std::string& key, const std::vector<Json>& arr) {
    std::string s = "[";
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i) s += ", ";
      s += arr[i].str();
    }
    return raw(key, s + "]");
  }

  std::string str() const {
    std::string s = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i) s += ", ";
      s += "\"" + fields_[i].first + "\": " + fields_[i].second;
    }
    return s + "}";
  }

 private:
  static std::string escaped(const std::string& v) {
    std::string out;
    for (char c : v) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }
  Json& raw(const std::string& key, std::string rendered) {
    fields_.emplace_back(key, std::move(rendered));
    return *this;
  }
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Write a JSON document to `path`; returns false (with a note on stderr)
/// on I/O failure so benches can keep printing their tables regardless.
inline bool write_json_file(const std::string& path, const Json& j) {
  std::FILE* fp = std::fopen(path.c_str(), "w");
  if (!fp) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return false;
  }
  const std::string s = j.str();
  const bool ok = std::fwrite(s.data(), 1, s.size(), fp) == s.size() &&
                  std::fputc('\n', fp) != EOF;
  std::fclose(fp);
  return ok;
}

inline void banner(const std::string& id, const std::string& title) {
  std::printf("\n================================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================================\n");
}

inline void note(const std::string& text) { std::printf("%s\n", text.c_str()); }

inline void rule() {
  std::printf("--------------------------------------------------------------------------------\n");
}

/// Sweep of per-unit-length inductance 0..5 nH/mm (the paper's range).
inline std::vector<double> inductance_sweep(int n_points) {
  std::vector<double> ls;
  ls.reserve(n_points + 1);
  for (int i = 0; i <= n_points; ++i) {
    ls.push_back(5.0e-6 * i / n_points);  // H/m
  }
  return ls;
}

inline double to_nH_per_mm(double l_si) { return l_si * 1e6; }

/// Print the per-sweep solver statistics accumulated by the bench's
/// parallel sweeps, plus the pool concurrency they ran at.
inline void solver_summary(const rlc::exec::Counters& counters) {
  std::printf("%s | threads %zu\n", counters.summary().c_str(),
              rlc::exec::default_pool().size());
}

}  // namespace bench
