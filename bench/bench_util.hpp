#pragma once

/// Presentation-only helpers for the rlc_run driver: banners, rules, and
/// the renderer that turns a rlc::scenario::ScenarioResult into the human
/// tables the figure benches used to print.  Everything computational lives
/// in src/scenario (specs, sweep grids, scenario bodies) and src/io (JSON);
/// this header owns no experiment definitions.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <string>
#include <vector>

#include "rlc/exec/counters.hpp"
#include "rlc/scenario/result.hpp"

namespace bench {

inline void banner(const std::string& id, const std::string& title) {
  std::printf("\n================================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================================\n");
}

inline void note(const std::string& text) { std::printf("%s\n", text.c_str()); }

inline void rule() {
  std::printf("--------------------------------------------------------------------------------\n");
}

/// Render one cell to text (%.6g for numbers, verbatim for labels).
inline std::string cell_text(const rlc::scenario::Value& v) {
  if (v.kind == rlc::scenario::Value::kText) return v.text;
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v.number);
  return buf;
}

/// Print a ScenarioResult table with per-column widths sized to fit the
/// header and every cell.
inline void print_table(const rlc::scenario::Table& t) {
  if (!t.title.empty()) std::printf("%s\n", t.title.c_str());
  std::vector<std::size_t> width(t.columns.size());
  std::vector<std::vector<std::string>> cells;
  for (std::size_t c = 0; c < t.columns.size(); ++c) {
    width[c] = t.columns[c].size();
  }
  cells.reserve(t.rows.size());
  for (const auto& row : t.rows) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      r.push_back(cell_text(row[c]));
      width[c] = std::max(width[c], r.back().size());
    }
    cells.push_back(std::move(r));
  }
  for (std::size_t c = 0; c < t.columns.size(); ++c) {
    std::printf("%s%*s", c ? "  " : "", static_cast<int>(width[c]),
                t.columns[c].c_str());
  }
  std::printf("\n");
  rule();
  for (const auto& r : cells) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      std::printf("%s%*s", c ? "  " : "", static_cast<int>(width[c]),
                  r[c].c_str());
    }
    std::printf("\n");
  }
}

/// Render a full scenario result: banner, tables, metrics, notes, and the
/// solver-counter / wall-time footer.
inline void print_result(const rlc::scenario::ScenarioResult& res) {
  std::string id = res.name;
  std::transform(id.begin(), id.end(), id.begin(),
                 [](unsigned char ch) { return std::toupper(ch); });
  banner(id, res.title);
  if (!res.error.empty()) {
    std::printf("ERROR: %s\n", res.error.c_str());
    return;
  }
  for (const auto& t : res.tables) {
    std::printf("\n");
    print_table(t);
  }
  if (!res.metrics.empty()) {
    std::printf("\n");
    for (const auto& m : res.metrics) {
      std::printf("  %s = %.6g\n", m.name.c_str(), m.value);
    }
  }
  if (!res.notes.empty()) std::printf("\n");
  for (const auto& n : res.notes) note(n);
  rule();
  if (res.counters.tasks > 0) {
    std::printf("%s\n",
                rlc::exec::Counters::summary(res.counters).c_str());
  }
  std::printf("[%s] threads %d | wall %.3f s%s\n", res.name.c_str(),
              res.threads, res.wall_seconds, res.spec.quick ? " | quick" : "");
}

}  // namespace bench
