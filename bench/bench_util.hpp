#pragma once

/// Shared formatting helpers for the figure/table regeneration benches.
/// Each bench prints the same rows/series the paper reports, with a header
/// that states the experiment, the paper's qualitative expectation, and our
/// measured shape.

#include <cstdio>
#include <string>
#include <vector>

#include "rlc/exec/counters.hpp"
#include "rlc/exec/thread_pool.hpp"

namespace bench {

inline void banner(const std::string& id, const std::string& title) {
  std::printf("\n================================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================================\n");
}

inline void note(const std::string& text) { std::printf("%s\n", text.c_str()); }

inline void rule() {
  std::printf("--------------------------------------------------------------------------------\n");
}

/// Sweep of per-unit-length inductance 0..5 nH/mm (the paper's range).
inline std::vector<double> inductance_sweep(int n_points) {
  std::vector<double> ls;
  ls.reserve(n_points + 1);
  for (int i = 0; i <= n_points; ++i) {
    ls.push_back(5.0e-6 * i / n_points);  // H/m
  }
  return ls;
}

inline double to_nH_per_mm(double l_si) { return l_si * 1e6; }

/// Print the per-sweep solver statistics accumulated by the bench's
/// parallel sweeps, plus the pool concurrency they ran at.
inline void solver_summary(const rlc::exec::Counters& counters) {
  std::printf("%s | threads %zu\n", counters.summary().c_str(),
              rlc::exec::default_pool().size());
}

}  // namespace bench
