/// Figure 12 — Peak and rms interconnect current densities vs line
/// inductance for the 100 nm top-level metal (five-stage ring oscillator).
///
/// Paper shape: both densities essentially flat in l — wire inductance does
/// not degrade interconnect (Joule heating / electromigration) reliability.

#include <cstdio>

#include "bench_util.hpp"
#include "rlc/core/elmore.hpp"
#include "rlc/ringosc/ring.hpp"

int main() {
  using namespace rlc::ringosc;
  using rlc::core::Technology;

  bench::banner("FIGURE 12",
                "Peak and rms wire current density vs line inductance (100 nm)");

  const auto tech = Technology::nm100();
  const auto rc = rlc::core::rc_optimum(tech);
  std::printf("wire cross-section: %.1f um x %.1f um; EM rms budget 2e10 A/m^2\n",
              tech.width * 1e6, tech.thickness * 1e6);
  std::printf("%12s %16s %16s %10s %10s\n", "l (nH/mm)", "J_peak (A/m^2)",
              "J_rms (A/m^2)", "EM flag", "heat flag");
  bench::rule();
  double jpk_min = 1e300, jpk_max = 0.0, jrms_min = 1e300, jrms_max = 0.0;
  for (double l : {0.2e-6, 0.8e-6, 1.4e-6, 1.8e-6, 2.6e-6, 3.5e-6, 5.0e-6}) {
    RingParams p;
    p.l = l;
    p.h = rc.h;
    p.k = rc.k;
    p.segments_per_line = 12;
    const auto r = simulate_ring(tech, p);
    if (!r.completed) continue;
    std::printf("%12.2f %16.3e %16.3e %10s %10s\n", bench::to_nH_per_mm(l),
                r.wire_density.j_peak, r.wire_density.j_rms,
                r.wire_density.em_concern ? "YES" : "no",
                r.wire_density.joule_concern ? "YES" : "no");
    // Track the spread in the functional (pre-false-switching) regime that
    // the paper's flatness claim refers to.
    if (l <= 1.8e-6) {
      jpk_min = std::min(jpk_min, r.wire_density.j_peak);
      jpk_max = std::max(jpk_max, r.wire_density.j_peak);
      jrms_min = std::min(jrms_min, r.wire_density.j_rms);
      jrms_max = std::max(jrms_max, r.wire_density.j_rms);
    }
  }
  bench::rule();
  std::printf("  spread in the functional regime (l <= 1.8 nH/mm): "
              "J_peak x%.2f, J_rms x%.2f\n",
              jpk_max / jpk_min, jrms_max / jrms_min);
  bench::note("(paper: both densities do not change appreciably with l =>\n"
              " interconnect reliability is not degraded by inductance variation.\n"
              " Past the false-switching onset the ring toggles ~2-3x faster and the\n"
              " rms density steps up with it — a symptom of the Figure 11 failure,\n"
              " not an inductance-driven reliability mechanism.)");
  return 0;
}
