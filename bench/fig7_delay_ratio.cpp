/// Figure 7 — Ratio of optimum delay per unit length (tau/h) with and
/// without considering line inductance, vs l.  Three series: 250 nm,
/// 100 nm, and the control case "100 nm with the 250 nm dielectric"
/// (identical wire capacitance) which isolates driver scaling as the cause
/// of the increased inductance sensitivity.
///
/// Paper shape: 250 nm reaches ~2x at l = 5 nH/mm; 100 nm rises much faster
/// to ~3.5x; the identical-c control still rises much faster than 250 nm.

#include <cstdio>

#include "bench_util.hpp"
#include "rlc/core/optimizer.hpp"

int main() {
  using namespace rlc::core;
  bench::banner("FIGURE 7",
                "(tau/h)_RLC-opt / (tau/h)_opt-at-l=0 vs line inductance l");

  const auto ls = bench::inductance_sweep(25);
  const Technology techs[] = {Technology::nm250(), Technology::nm100(),
                              Technology::nm100_with_250nm_dielectric()};

  std::printf("%12s %14s %14s %20s\n", "l (nH/mm)", "250nm", "100nm",
              "100nm(c=250nm)");
  bench::rule();
  rlc::exec::Counters counters;
  SweepOptions sweep;
  sweep.counters = &counters;
  std::vector<std::vector<OptimResult>> sweeps;
  for (const auto& t : techs) sweeps.push_back(optimize_rlc_sweep(t, ls, sweep));
  for (std::size_t i = 0; i < ls.size(); ++i) {
    std::printf("%12.2f", bench::to_nH_per_mm(ls[i]));
    for (const auto& sw : sweeps) {
      const double ratio = (sw[i].converged && sw[0].converged)
                               ? sw[i].delay_per_length / sw[0].delay_per_length
                               : -1.0;
      std::printf(" %14.4f", ratio);
    }
    std::printf("\n");
  }
  bench::rule();
  bench::solver_summary(counters);
  for (std::size_t j = 0; j < 3; ++j) {
    std::printf("  %-18s ratio at l=5 nH/mm: %.2fx\n", techs[j].name.c_str(),
                sweeps[j].back().delay_per_length / sweeps[j][0].delay_per_length);
  }
  bench::note("(paper: ~2x at 250nm, ~3.5x at 100nm; identical-c control confirms the\n"
              " increase is entirely due to scaled driver capacitance/resistance)\n"
              "Note: the control curve overlays the 100nm curve EXACTLY — the Pade\n"
              "coefficients are invariant under c -> a*c with h -> h/sqrt(a),\n"
              "k -> k*sqrt(a), so the normalized delay ratio does not depend on c at\n"
              "all.  This makes the paper's qualitative claim a provable identity.");
  return 0;
}
