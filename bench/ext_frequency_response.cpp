/// Extension bench — frequency response of one optimized segment: |H(j w)|
/// from three independent paths (exact Eq. (1), two-pole Pade model, and
/// AC analysis of the discretized ladder).  Shows the resonant peaking that
/// grows with inductance — the frequency-domain face of the Figure 2
/// underdamping story.

#include <cstdio>
#include <cmath>
#include <complex>

#include "bench_util.hpp"
#include "rlc/core/elmore.hpp"
#include "rlc/core/optimizer.hpp"
#include "rlc/math/constants.hpp"
#include "rlc/ringosc/ladder.hpp"
#include "rlc/spice/ac.hpp"
#include "rlc/tline/transfer.hpp"

int main() {
  using namespace rlc::core;
  bench::banner("EXTENSION: FREQUENCY RESPONSE",
                "|H(jw)| of an optimized 100 nm segment, three model levels");

  const auto tech = Technology::nm100();
  for (double l : {0.5e-6, 2e-6}) {
    const auto opt = optimize_rlc(tech, l);
    if (!opt.converged) return 1;
    const auto dl = tech.rep.scaled(opt.k);
    const auto pc = pade_coeffs_hk(tech.rep, tech.line(l), opt.h, opt.k);

    rlc::spice::Circuit ckt;
    const auto src = ckt.node("src"), drv = ckt.node("drv"), end = ckt.node("end");
    ckt.add_vsource("V1", src, ckt.ground(), rlc::spice::DcSpec{0.0}, 1.0);
    ckt.add_resistor("Rs", src, drv, dl.rs_eff);
    ckt.add_capacitor("Cp", drv, ckt.ground(), dl.cp_eff);
    rlc::ringosc::add_rlc_ladder(ckt, "ln", drv, end, tech.line(l), opt.h, 32);
    ckt.add_capacitor("Cl", end, ckt.ground(), dl.cl_eff);

    rlc::spice::AcOptions ao;
    ao.frequencies = rlc::spice::log_frequencies(1e8, 2e10, 4);
    ao.compute_dc_op = false;
    ao.probes = {rlc::spice::Probe::node_voltage(end, "vend")};
    const auto ac = run_ac(ckt, ao);

    std::printf("\n--- l = %.1f nH/mm (h_opt = %.2f mm, k_opt = %.0f) ---\n",
                bench::to_nH_per_mm(l), opt.h * 1e3, opt.k);
    std::printf("%12s %14s %14s %14s\n", "f (GHz)", "|H| exact", "|H| 2-pole",
                "|H| ladder");
    bench::rule();
    double peak_exact = 0.0;
    for (std::size_t i = 0; i < ao.frequencies.size(); ++i) {
      const double f = ao.frequencies[i];
      const std::complex<double> s{0.0, 2.0 * rlc::math::kPi * f};
      const double mag_exact = std::abs(
          rlc::tline::exact_transfer_dc_safe(tech.line(l), opt.h, dl, s));
      const double mag_pade = std::abs(pade_transfer(pc, s));
      const double mag_ladder = std::abs(ac.signal("vend")[i]);
      peak_exact = std::max(peak_exact, mag_exact);
      std::printf("%12.3f %14.4f %14.4f %14.4f\n", f * 1e-9, mag_exact,
                  mag_pade, mag_ladder);
    }
    std::printf("  resonant peaking (exact): %.2f dB\n",
                20.0 * std::log10(peak_exact));
  }
  bench::rule();
  bench::note("Expected shape: low-pass with a resonant peak that grows with l;\n"
              "ladder tracks the exact line closely; the 2-pole model captures the\n"
              "first resonance but not the higher line modes.");
  return 0;
}
