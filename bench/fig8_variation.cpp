/// Figure 8 — Delay cost of inductance *variation*: the line is sized for
/// the RC optimum (h_optRC, k_optRC) because the effective l cannot be
/// predicted; the actual inductance is l.  Plots the ratio of that delay
/// per unit length to the true RLC optimum at each l.
///
/// Paper shape: worst-case penalty ~6% at 250 nm and ~12% at 100 nm.

#include <cstdio>

#include "bench_util.hpp"
#include "rlc/core/elmore.hpp"
#include "rlc/core/optimizer.hpp"

int main() {
  using namespace rlc::core;
  bench::banner("FIGURE 8",
                "tau/h at (h_optRC, k_optRC) divided by optimal RLC tau/h, vs l");

  const auto ls = bench::inductance_sweep(25);
  std::printf("%12s %14s %14s\n", "l (nH/mm)", "250nm", "100nm");
  bench::rule();
  double worst[2] = {0.0, 0.0};
  const Technology techs[] = {Technology::nm250(), Technology::nm100()};
  rlc::exec::Counters counters;
  SweepOptions sweep;
  sweep.counters = &counters;
  std::vector<std::vector<double>> ratios(2);
  for (int j = 0; j < 2; ++j) {
    const auto rc = rc_optimum(techs[j]);
    const auto opt = optimize_rlc_sweep(techs[j], ls, sweep);
    // The fixed-(h, k) delay evaluations are independent: one pool task per
    // grid point, each timed into the shared counters.
    ratios[j] = rlc::exec::parallel_map(ls, [&](double l) {
      const rlc::exec::StopWatch sw;
      const double fixed =
          delay_per_length(techs[j].rep, techs[j].line(l), rc.h, rc.k);
      counters.record_wall(sw.seconds());
      return fixed;
    });
    for (std::size_t i = 0; i < ls.size(); ++i) {
      ratios[j][i] = opt[i].converged ? ratios[j][i] / opt[i].delay_per_length
                                      : -1.0;
      worst[j] = std::max(worst[j], ratios[j][i]);
    }
  }
  for (std::size_t i = 0; i < ls.size(); ++i) {
    std::printf("%12.2f %14.4f %14.4f\n", bench::to_nH_per_mm(ls[i]),
                ratios[0][i], ratios[1][i]);
  }
  bench::rule();
  bench::solver_summary(counters);
  std::printf("  worst-case penalty: 250nm %.1f%%, 100nm %.1f%%\n",
              (worst[0] - 1.0) * 100.0, (worst[1] - 1.0) * 100.0);
  bench::note("(paper: ~6%% at 250nm, ~12%% at 100nm — scaling increases the cost of\n"
              " not knowing the effective inductance)");
  return 0;
}
