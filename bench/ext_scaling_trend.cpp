/// Extension bench — the paper's Section 4 claim ("VLSI circuits will
/// progressively become more susceptible to inductance effects as the
/// technology scales") turned into a continuous trend: interpolate the
/// technology between (and slightly beyond) the two calibrated nodes and
/// track the inductance-sensitivity metrics at each node.

#include <cstdio>

#include "bench_util.hpp"
#include "rlc/core/elmore.hpp"
#include "rlc/core/lcrit.hpp"
#include "rlc/core/optimizer.hpp"
#include "rlc/core/two_pole.hpp"

int main() {
  using namespace rlc::core;
  bench::banner("EXTENSION: SCALING TREND",
                "inductance sensitivity vs technology node (interpolated)");

  std::printf("%8s %8s %10s %14s %16s %16s\n", "node", "VDD (V)",
              "tau_RC(ps)", "delay ratio", "lcrit @opt", "undershoot");
  std::printf("%8s %8s %10s %14s %16s %16s\n", "", "",
              "", "(l=2nH/mm)", "(nH/mm)", "@2nH/mm (V)");
  bench::rule();
  const double l_test = 2e-6;
  for (double node_nm : {250.0, 180.0, 150.0, 130.0, 100.0, 85.0, 70.0}) {
    const auto tech = Technology::interpolated(node_nm * 1e-9);
    const auto rc = rc_optimum(tech);
    const auto at0 = optimize_rlc(tech, 0.0);
    OptimOptions warm;
    warm.h0 = at0.h;
    warm.k0 = at0.k;
    const auto atl = optimize_rlc(tech, l_test, warm);
    if (!at0.converged || !atl.converged) continue;
    const double ratio = atl.delay_per_length / at0.delay_per_length;
    const double lc = critical_inductance(tech, atl.h, atl.k);
    const TwoPole sys(pade_coeffs_hk(tech.rep, tech.line(l_test), atl.h, atl.k));
    std::printf("%8s %8.2f %10.1f %14.3f %16.3f %16.3f\n", tech.name.c_str(),
                tech.vdd, rc.tau * 1e12, ratio, lc * 1e6,
                sys.undershoot() * tech.vdd);
  }
  bench::rule();
  bench::note("Expected shape: monotone growth of the delay ratio and of the\n"
              "absolute ringing amplitude as the node shrinks, with l_crit falling —\n"
              "the paper's two data points extended to a trend (the interpolation\n"
              "assumes constant-ratio-per-generation scaling anchored at Table 1).");
  return 0;
}
