/// Ablation 3+ (DESIGN.md) — the prior-art baselines the paper argues
/// against, regenerated:
///
/// (a) Kahng-Muddu critically-damped delay: constant in l (b1 carries no
///     inductance term), so it cannot see what the exact Eq. (3) solve sees.
/// (b) An Ismail-Friedman-style curve-fit of (h_opt, k_opt), trained on this
///     library's own optimizer over l in [0.5, 5] nH/mm: accurate inside
///     the fitted family, blind to the l = 0 Pade effect, and inferior to
///     direct optimization everywhere.

#include <cstdio>
#include <cmath>

#include "bench_util.hpp"
#include "rlc/core/baselines.hpp"
#include "rlc/core/delay.hpp"
#include "rlc/core/elmore.hpp"
#include "rlc/core/optimizer.hpp"

int main() {
  using namespace rlc::core;
  bench::banner("ABLATION: BASELINES",
                "Kahng-Muddu delay approximation and curve-fitted sizing vs this work");

  const auto tech = Technology::nm100();
  const auto rc = rc_optimum(tech);

  bench::note("(a) 50% delay at (h_optRC, k_optRC) vs inductance:");
  std::printf("%12s %18s %22s\n", "l (nH/mm)", "exact Eq.(3) (ps)",
              "Kahng-Muddu crit. (ps)");
  bench::rule();
  for (double l : {0.0, 0.5e-6, 1e-6, 2e-6, 3e-6, 5e-6}) {
    const auto pc = pade_coeffs_hk(tech.rep, tech.line(l), rc.h, rc.k);
    const auto exact = threshold_delay(TwoPole(pc));
    std::printf("%12.2f %18.2f %22.2f\n", bench::to_nH_per_mm(l),
                exact.tau * 1e12, critically_damped_delay(pc) * 1e12);
  }
  bench::note("The critically-damped approximation is EXACTLY constant in l\n"
              "(b1 has no inductance term) — unusable for inductance-aware\n"
              "optimization, as Section 2.1 argues.");

  bench::rule();
  bench::note("(b) Curve-fitted sizing (trained on 250nm, l in [0.5, 5] nH/mm):");
  const auto t250 = Technology::nm250();
  std::vector<double> train;
  for (int i = 1; i <= 10; ++i) train.push_back(i * 0.5e-6);
  const auto fitb = CurveFitBaseline::fit(t250, train);
  std::printf("  fitted: h/h_RC = 1 + %.3f X^%.3f, k/k_RC = 1/(1 + %.3f X^%.3f)\n",
              fitb.a_h(), fitb.b_h(), fitb.a_k(), fitb.b_k());
  std::printf("\n%10s %12s %14s %14s %16s\n", "tech", "l (nH/mm)",
              "h err", "k err", "delay penalty");
  bench::rule();
  for (const auto& t : {Technology::nm250(), Technology::nm100()}) {
    OptimOptions opts;
    for (double l : {0.0, 1e-6, 3e-6, 5e-6}) {
      const auto exact = optimize_rlc(t, l, opts);
      if (!exact.converged) continue;
      opts.h0 = exact.h;
      opts.k0 = exact.k;
      const double hf = fitb.h_opt(t, l);
      const double kf = fitb.k_opt(t, l);
      double penalty = 0.0;
      try {
        penalty = delay_per_length(t.rep, t.line(l), hf, kf) /
                      exact.delay_per_length - 1.0;
      } catch (const std::exception&) {
        penalty = -1.0;
      }
      std::printf("%10s %12.2f %+13.1f%% %+13.1f%% %+15.2f%%\n",
                  t.name.c_str(), bench::to_nH_per_mm(l),
                  100.0 * (hf / exact.h - 1.0), 100.0 * (kf / exact.k - 1.0),
                  100.0 * penalty);
    }
  }
  bench::note("In-range on the trained technology the fit is decent; at l = 0 it\n"
              "misses the Pade effect entirely (h error ~ +5%), and transferring to\n"
              "the other node grows the errors — the validity-range limitation the\n"
              "paper's analytic approach does not have.");
  return 0;
}
