/// Extension bench — does the DC resistance model (used throughout the
/// paper and this library) hold up against a skin-effect-corrected line?
/// Compares the exact 50% delay with z(s) = r sqrt(1 + s/w_s) + s l against
/// the DC-r model, for the Table 1 geometry.  Also reports the crossover
/// frequency that justifies the approximation a priori.

#include <cstdio>
#include <cmath>
#include <complex>

#include "bench_util.hpp"
#include "rlc/core/delay.hpp"
#include "rlc/core/elmore.hpp"
#include "rlc/laplace/talbot.hpp"
#include "rlc/math/constants.hpp"
#include "rlc/tline/transfer.hpp"

namespace {

double delay_of(const rlc::laplace::LaplaceFn& F, double tau_scale) {
  const auto v = [&](double t) { return rlc::laplace::talbot_invert(F, t, 48); };
  double lo = 0.02 * tau_scale, hi = 8.0 * tau_scale;
  if (v(lo) > 0.5 || v(hi) < 0.5) return -1.0;
  for (int i = 0; i < 55; ++i) {
    const double mid = 0.5 * (lo + hi);
    (v(mid) < 0.5 ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

}  // namespace

int main() {
  using namespace rlc::core;
  bench::banner("EXTENSION: SKIN EFFECT",
                "50% delay with skin-corrected resistance vs the DC-r model");

  const double ws = rlc::tline::skin_crossover_angular_frequency(
      rlc::math::kRhoCopper, 2e-6, 2.5e-6);
  std::printf("Table 1 wire (2 x 2.5 um Cu): skin crossover f_s = %.2f GHz\n\n",
              ws / (2.0 * rlc::math::kPi) * 1e-9);

  for (const auto& tech : {Technology::nm250(), Technology::nm100()}) {
    const auto rc = rc_optimum(tech);
    std::printf("--- %s, (h, k) = (h_optRC, k_optRC) ---\n", tech.name.c_str());
    std::printf("%12s %14s %16s %10s\n", "l (nH/mm)", "tau DC-r (ps)",
                "tau skin (ps)", "shift");
    bench::rule();
    for (double l : {0.5e-6, 2e-6, 5e-6}) {
      const auto line = tech.line(l);
      const auto dl = tech.rep.scaled(rc.k);
      const auto est = segment_delay(tech.rep, line, rc.h, rc.k);
      const auto Fdc = [&](std::complex<double> s) {
        return rlc::tline::exact_transfer_dc_safe(line, rc.h, dl, s) / s;
      };
      const auto Fskin = [&](std::complex<double> s) {
        return rlc::tline::exact_transfer_skin(line, rc.h, dl, ws, s) / s;
      };
      const double t_dc = delay_of(Fdc, est.tau);
      const double t_skin = delay_of(Fskin, est.tau);
      std::printf("%12.2f %14.2f %16.2f %9.2f%%\n", bench::to_nH_per_mm(l),
                  t_dc * 1e12, t_skin * 1e12, 100.0 * (t_skin - t_dc) / t_dc);
    }
    std::printf("\n");
  }
  bench::rule();
  bench::note("Expected: delay shifts of a few percent at the low-l end (fast edges\n"
              "push part of the spectrum past the ~4 GHz crossover) shrinking below\n"
              "1%% at high l where the response slows — small enough that the\n"
              "paper's (and this library's) DC resistance model is adequate for\n"
              "delay optimization; the skin term mainly damps the ringing slightly.");
  return 0;
}
