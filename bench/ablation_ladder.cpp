/// Ablation 2 (DESIGN.md) — how many lumped pi-segments are needed for the
/// RLC ladder to stand in for the distributed line in the circuit-level
/// experiments.  Compares the simulated 50% delay of one driver-line-load
/// segment against Talbot inversion of the exact transfer function.

#include <cstdio>
#include <cmath>

#include "bench_util.hpp"
#include "rlc/core/delay.hpp"
#include "rlc/core/elmore.hpp"
#include "rlc/core/exact_delay.hpp"
#include "rlc/ringosc/ladder.hpp"
#include "rlc/spice/transient.hpp"

namespace {

using rlc::core::Technology;

double spice_delay(const Technology& tech, double l, double h, double k,
                   int nseg, double tau_scale) {
  const auto dl = tech.rep.scaled(k);
  rlc::spice::Circuit ckt;
  const auto src = ckt.node("src"), drv = ckt.node("drv"), end = ckt.node("end");
  ckt.add_vsource("V1", src, ckt.ground(),
                  rlc::spice::PulseSpec{0, 1, 0, 1e-14, 1e-14, 1, 0});
  ckt.add_resistor("Rs", src, drv, dl.rs_eff);
  ckt.add_capacitor("Cp", drv, ckt.ground(), dl.cp_eff);
  rlc::ringosc::add_rlc_ladder(ckt, "ln", drv, end, tech.line(l), h, nseg);
  ckt.add_capacitor("Cl", end, ckt.ground(), dl.cl_eff);
  rlc::spice::TransientOptions o;
  o.tstop = 8.0 * tau_scale;
  o.dt = tau_scale / 500.0;
  o.probes = {rlc::spice::Probe::node_voltage(end, "v")};
  const auto r = run_transient(ckt, o);
  const auto& v = r.signal("v");
  for (std::size_t i = 1; i < r.time.size(); ++i) {
    if (v[i - 1] < 0.5 && v[i] >= 0.5) {
      const double f = (0.5 - v[i - 1]) / (v[i] - v[i - 1]);
      return r.time[i - 1] + f * (r.time[i] - r.time[i - 1]);
    }
  }
  return -1.0;
}

}  // namespace

int main() {
  bench::banner("ABLATION: LADDER SEGMENTS",
                "pi-ladder discretization error vs exact distributed line");

  const auto tech = Technology::nm100();
  const auto rc = rlc::core::rc_optimum(tech);
  const std::vector<double> ls{1e-6, 3e-6};
  // Exact references for both inductances from one engine sweep.
  const auto exact = rlc::core::exact_sweep(tech, ls, rc.h, rc.k);
  for (std::size_t li = 0; li < ls.size(); ++li) {
    const double l = ls[li];
    const auto est = rlc::core::segment_delay(tech.rep, tech.line(l), rc.h, rc.k);
    const double ex = exact[li].value();
    std::printf("\n--- 100nm, l = %.1f nH/mm, exact tau = %.2f ps ---\n",
                bench::to_nH_per_mm(l), ex * 1e12);
    std::printf("%8s %16s %10s\n", "nseg", "ladder tau (ps)", "error");
    bench::rule();
    for (int nseg : {2, 4, 8, 16, 32, 64}) {
      const double sim = spice_delay(tech, l, rc.h, rc.k, nseg, est.tau);
      std::printf("%8d %16.2f %9.2f%%\n", nseg, sim * 1e12,
                  100.0 * (sim - ex) / ex);
    }
  }
  bench::rule();
  bench::note("The ring-oscillator experiments use 12-16 segments per line, where the\n"
              "discretization error is at the percent level.");
  return 0;
}
