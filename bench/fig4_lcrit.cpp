/// Figure 4 — Critical inductance l_crit at the RLC-optimal (h, k) as a
/// function of line inductance l, for the 250 nm and 100 nm nodes.
///
/// Paper shape: both curves grow with l; the 100 nm curve lies below the
/// 250 nm curve (scaled designs become underdamped at smaller l), and
/// l_crit stays the same order of magnitude as practical l values.

#include <cstdio>

#include "bench_util.hpp"
#include "rlc/core/lcrit.hpp"
#include "rlc/core/optimizer.hpp"

int main() {
  using namespace rlc::core;
  bench::banner("FIGURE 4", "l_crit(h_optRLC, k_optRLC) vs line inductance l");

  const auto ls = bench::inductance_sweep(25);
  const Technology t250 = Technology::nm250();
  const Technology t100 = Technology::nm100();
  rlc::exec::Counters counters;
  SweepOptions sweep;
  sweep.counters = &counters;
  const auto r250 = optimize_rlc_sweep(t250, ls, sweep);
  const auto r100 = optimize_rlc_sweep(t100, ls, sweep);

  std::printf("%12s %18s %18s\n", "l (nH/mm)", "lcrit 250nm (nH/mm)",
              "lcrit 100nm (nH/mm)");
  bench::rule();
  for (std::size_t i = 0; i < ls.size(); ++i) {
    if (!r250[i].converged || !r100[i].converged) continue;
    const double lc250 = critical_inductance(t250, r250[i].h, r250[i].k);
    const double lc100 = critical_inductance(t100, r100[i].h, r100[i].k);
    std::printf("%12.2f %18.4f %18.4f\n", bench::to_nH_per_mm(ls[i]),
                bench::to_nH_per_mm(lc250), bench::to_nH_per_mm(lc100));
  }
  bench::rule();
  bench::solver_summary(counters);
  bench::note("Expected shape: both curves increase with l; 100nm < 250nm everywhere;\n"
              "l and l_crit same order of magnitude for practical l (so the\n"
              "Kahng-Muddu critically-damped delay approximation is not usable).");
  return 0;
}
