/// \file rlc_serve.cpp
/// NDJSON query server over rlc::svc — the serving front-end of the
/// redesigned public API.
///
/// Modes:
///   rlc_serve                      read request lines from stdin, write
///                                  one response line each to stdout
///   rlc_serve --socket PATH       serve a Unix socket with the epoll
///                                  event loop: many concurrent clients,
///                                  per-connection framing/backpressure,
///                                  --shards Session shards behind a
///                                  consistent-hash router, graceful drain
///                                  on SIGTERM/SIGINT
///   rlc_serve --bench [--json F]  synthetic cold-vs-warm throughput bench
///                                  writing the BENCH_serve.json artifact
///
/// Stdin batching is greedy but never adds latency: the first getline
/// blocks, then whatever further lines the stream already buffered (up to
/// --max-batch) join the same submit_batch.  A lone interactive request is
/// answered immediately; a canned CI pipe is served in parallel batches.
///
/// Exit codes: 0 served/bench OK, 2 bad usage or setup failure.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "rlc/base/simd.hpp"
#include "rlc/base/status.hpp"
#include "rlc/base/version.hpp"
#include "rlc/exec/thread_pool.hpp"
#include "rlc/io/json.hpp"
#include "rlc/obs/exporter.hpp"
#include "rlc/obs/metrics.hpp"
#include "rlc/obs/trace.hpp"
#include "rlc/svc/serve.hpp"
#include "rlc/svc/server.hpp"
#include "rlc/svc/session.hpp"

#if defined(__linux__)
#include <csignal>
#define RLC_SERVE_HAVE_EVENT_LOOP 1
#else
#define RLC_SERVE_HAVE_EVENT_LOOP 0
#endif

namespace {

struct Args {
  std::size_t threads = 0;       // 0: default_thread_count()
  std::size_t shards = 1;        // Session shards behind the socket router
  std::size_t cache = 4096;      // result-cache entries
  int max_batch = 64;            // lines per submit_batch
  int backlog = 128;             // listen(2) backlog (socket mode)
  std::string socket_path;       // empty: stdin/stdout
  bool bench = false;
  bool quick = false;
  bool metrics = false;          // dump svc.* metrics to stderr on exit
  std::string json_path;         // --bench artifact destination
};

int usage(const char* argv0, int code) {
  std::FILE* out = code == 0 ? stdout : stderr;
  std::fprintf(out,
               "usage: %s [options]\n"
               "  --threads N     pool size per session/shard (default: "
               "hardware / RLC_NUM_THREADS)\n"
               "  --shards N      session shards behind the socket router "
               "(default 1)\n"
               "  --cache N       result-cache capacity in entries "
               "(default 4096, 0 disables; per shard)\n"
               "  --max-batch N   request lines per parallel batch "
               "(default 64)\n"
               "  --socket PATH   serve a Unix socket (epoll event loop, "
               "many clients) instead of stdin\n"
               "  --backlog N     listen(2) backlog in socket mode "
               "(default 128)\n"
               "  --bench         run the cold-vs-warm throughput bench\n"
               "  --quick         smaller bench workload (CI)\n"
               "  --json FILE     write the bench artifact here "
               "(default BENCH_serve.json)\n"
               "  --metrics       print svc.* metrics to stderr on exit\n"
               "  --version       print the library version\n",
               argv0);
  return code;
}

bool parse_size(const char* text, std::size_t* out) {
  rlc::StatusOr<std::size_t> v = rlc::exec::parse_thread_count_strict(text);
  if (!v.is_ok()) return false;
  *out = *v;
  return true;
}

/// Echo the svc.* slice of the metrics registry to stderr (the shared
/// obs::Exporter text renderer — same formatting as rlc_run --metrics and
/// the admin {"op":"metrics","format":"text"} body).
void dump_metrics() {
  const rlc::obs::MetricsSnapshot snap =
      rlc::obs::Exporter::filter(rlc::obs::Registry::global().snapshot(),
                                 "svc.")
          .without_zeros();
  std::fputs(rlc::obs::Exporter::text(snap).c_str(), stderr);
}

// ---------------------------------------------------------------------------
// stdin/stdout transport

int serve_stdio(rlc::svc::Server& server, int max_batch) {
  // Unsynced iostreams give getline a real buffer, so in_avail() below can
  // see the rest of a piped workload (synced-with-stdio cin never buffers).
  std::ios::sync_with_stdio(false);
  std::string line;
  std::vector<std::string> block;
  while (std::getline(std::cin, line)) {
    block.push_back(line);
    // Greedy drain of already-buffered input: batches parallelize piped
    // workloads without delaying an interactive request.
    while (block.size() < static_cast<std::size_t>(max_batch) &&
           std::cin.rdbuf()->in_avail() > 0 && std::getline(std::cin, line)) {
      block.push_back(line);
    }
    for (const std::string& resp : server.handle_lines(block)) {
      std::fputs(resp.c_str(), stdout);
      std::fputc('\n', stdout);
    }
    std::fflush(stdout);
    block.clear();
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Unix-socket transport: the epoll event loop (rlc::svc::EventLoopServer)

#if RLC_SERVE_HAVE_EVENT_LOOP
rlc::svc::EventLoopServer* g_server = nullptr;

extern "C" void handle_drain_signal(int) {
  // request_drain is async-signal-safe (atomic store + eventfd write).
  if (g_server != nullptr) g_server->request_drain();
}

int serve_socket(const Args& args) {
  rlc::svc::ServerOptions sopts;
  sopts.shards = args.shards;
  sopts.threads_per_shard = args.threads;
  sopts.cache_capacity = args.cache;
  sopts.max_batch = args.max_batch;
  sopts.listen_backlog = args.backlog;
  rlc::svc::EventLoopServer server(sopts);

  if (rlc::Status st = server.listen_unix(args.socket_path); !st.is_ok()) {
    std::fprintf(stderr, "rlc_serve: %s\n", st.to_string().c_str());
    return 2;
  }

  // SIGTERM/SIGINT begin a graceful drain: in-flight requests complete and
  // flush before serve() returns.  A client that vanished mid-write must
  // not kill the process, so SIGPIPE is ignored (sends also pass
  // MSG_NOSIGNAL, but stdio writes do not).
  g_server = &server;
  struct sigaction sa{};
  sa.sa_handler = handle_drain_signal;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  std::signal(SIGPIPE, SIG_IGN);

  std::fprintf(stderr,
               "rlc_serve %s listening on %s (%zu shard%s, %zu threads)\n",
               rlc::version(), args.socket_path.c_str(),
               server.router().shards(),
               server.router().shards() == 1 ? "" : "s", server.threads());

  const rlc::Status st = server.serve();
  g_server = nullptr;
  const rlc::svc::EventLoopServer::Stats stats = server.stats();
  std::fprintf(stderr,
               "rlc_serve: drained (%llu conns, %llu requests, "
               "%llu responses, %llu backpressure pauses)\n",
               static_cast<unsigned long long>(stats.connections_accepted),
               static_cast<unsigned long long>(stats.requests),
               static_cast<unsigned long long>(stats.responses),
               static_cast<unsigned long long>(stats.reads_paused));
  if (!st.is_ok()) {
    std::fprintf(stderr, "rlc_serve: %s\n", st.to_string().c_str());
    return 2;
  }
  return 0;
}
#endif

// ---------------------------------------------------------------------------
// Cold-vs-warm throughput bench

struct BenchPass {
  double seconds = 0.0;
  std::size_t requests = 0;
  double qps() const { return seconds > 0.0 ? requests / seconds : 0.0; }
};

BenchPass run_pass(rlc::svc::Session& session,
                   const std::vector<rlc::svc::QueryRequest>& reqs) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto results = session.submit_batch(reqs);
  BenchPass pass;
  pass.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (const auto& r : results) {
    if (!r.is_ok()) {
      std::fprintf(stderr, "rlc_serve --bench: request failed: %s\n",
                   r.status().to_string().c_str());
      std::exit(2);
    }
  }
  pass.requests = reqs.size();
  return pass;
}

int run_bench(const Args& args) {
  // Workload: both technologies swept over the paper's inductance range,
  // exact-waveform engine on (so the warm Talbot caches matter).
  const int points = args.quick ? 24 : 96;
  std::vector<rlc::svc::QueryRequest> reqs;
  for (const char* tech : {"250nm", "100nm"}) {
    for (int i = 0; i < points; ++i) {
      rlc::svc::QueryRequest q;
      q.technology = tech;
      q.l = 5.0e-6 * i / (points - 1);
      q.with_exact_delay = true;
      reqs.push_back(q);
    }
  }

  rlc::svc::SessionOptions serial_opts;
  serial_opts.threads = 1;
  serial_opts.cache_capacity = args.cache;
  rlc::svc::Session serial(serial_opts);
  const BenchPass t1_cold = run_pass(serial, reqs);
  const BenchPass t1_warm = run_pass(serial, reqs);

  rlc::svc::SessionOptions par_opts;
  par_opts.threads = args.threads;
  par_opts.cache_capacity = args.cache;
  rlc::svc::Session parallel(par_opts);
  if (parallel.threads() <= 1) {
    // parallel_speedup_cold can only reach ~1.0 here: the "parallel" pass
    // resolved to a single thread (1-core host, or RLC_NUM_THREADS=1).
    // Record the honest number rather than skipping the pass.
    std::fprintf(stderr,
                 "rlc_serve --bench: parallel pass resolved to 1 thread; "
                 "parallel_speedup_cold is bounded by 1.0 on this host\n");
  }
  const BenchPass tn_cold = run_pass(parallel, reqs);
  const BenchPass tn_warm = run_pass(parallel, reqs);

  const auto serial_stats = serial.cache_stats();
  const double warm_hit_rate =
      serial_stats.hits + serial_stats.misses > 0
          ? static_cast<double>(serial_stats.hits) /
                static_cast<double>(serial_stats.hits + serial_stats.misses)
          : 0.0;

  std::printf("rlc_serve bench (%zu requests, version %s)\n", reqs.size(),
              rlc::version());
  std::printf("  threads=1  cold %8.1f q/s   warm %10.1f q/s   (x%.1f)\n",
              t1_cold.qps(), t1_warm.qps(),
              t1_warm.qps() / std::max(t1_cold.qps(), 1e-9));
  std::printf("  threads=%-2zu cold %8.1f q/s   warm %10.1f q/s   (x%.1f)\n",
              parallel.threads(), tn_cold.qps(), tn_warm.qps(),
              tn_warm.qps() / std::max(tn_cold.qps(), 1e-9));
  std::printf("  warm-pass cache hit rate %.3f\n", warm_hit_rate);

  rlc::io::Json j;
  j.set("schema", rlc::svc::kServeSchemaVersion);
  j.set("bench", "serve");
  j.set("version", rlc::version());
  j.set("simd", rlc::simd::active_level_name());
  j.set("quick", args.quick);
  j.set("threads", static_cast<long long>(parallel.threads()));
  j.set("requests", static_cast<long long>(reqs.size()));
  // The resolved parallel pool size: lets the validator distinguish "the
  // cold path failed to scale" from "this host has one core".
  j.set("parallel_threads", static_cast<long long>(parallel.threads()));
  rlc::io::Json m;
  m.set("t1_cold_qps", t1_cold.qps());
  m.set("t1_warm_qps", t1_warm.qps());
  m.set("tn_cold_qps", tn_cold.qps());
  m.set("tn_warm_qps", tn_warm.qps());
  m.set("warm_speedup_t1", t1_warm.qps() / std::max(t1_cold.qps(), 1e-9));
  m.set("parallel_speedup_cold",
        tn_cold.qps() / std::max(t1_cold.qps(), 1e-9));
  m.set("warm_cache_hit_rate", warm_hit_rate);
  j.set("metrics", m);
  const std::string path =
      args.json_path.empty() ? "BENCH_serve.json" : args.json_path;
  if (!rlc::io::write_json_file(path, j)) return 2;
  std::printf("  wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "rlc_serve: %s needs a value\n", flag);
        std::exit(usage(argv[0], 2));
      }
      return argv[++i];
    };
    if (a == "--help" || a == "-h") return usage(argv[0], 0);
    if (a == "--version") {
      std::printf("%s\n", rlc::version());
      return 0;
    }
    if (a == "--threads") {
      if (!parse_size(need_value("--threads"), &args.threads)) {
        std::fprintf(stderr, "rlc_serve: invalid --threads value\n");
        return 2;
      }
    } else if (a == "--shards") {
      char* end = nullptr;
      const long v = std::strtol(need_value("--shards"), &end, 10);
      if (!end || *end != '\0' || v < 1) {
        std::fprintf(stderr, "rlc_serve: invalid --shards value\n");
        return 2;
      }
      args.shards = static_cast<std::size_t>(v);
    } else if (a == "--backlog") {
      char* end = nullptr;
      const long v = std::strtol(need_value("--backlog"), &end, 10);
      if (!end || *end != '\0' || v < 1) {
        std::fprintf(stderr, "rlc_serve: invalid --backlog value\n");
        return 2;
      }
      args.backlog = static_cast<int>(v);
    } else if (a == "--cache") {
      char* end = nullptr;
      const long v = std::strtol(need_value("--cache"), &end, 10);
      if (!end || *end != '\0' || v < 0) {
        std::fprintf(stderr, "rlc_serve: invalid --cache value\n");
        return 2;
      }
      args.cache = static_cast<std::size_t>(v);
    } else if (a == "--max-batch") {
      char* end = nullptr;
      const long v = std::strtol(need_value("--max-batch"), &end, 10);
      if (!end || *end != '\0' || v < 1) {
        std::fprintf(stderr, "rlc_serve: invalid --max-batch value\n");
        return 2;
      }
      args.max_batch = static_cast<int>(v);
    } else if (a == "--socket") {
      args.socket_path = need_value("--socket");
    } else if (a == "--json") {
      args.json_path = need_value("--json");
    } else if (a == "--bench") {
      args.bench = true;
    } else if (a == "--quick") {
      args.quick = true;
    } else if (a == "--metrics") {
      args.metrics = true;
    } else {
      std::fprintf(stderr, "rlc_serve: unknown option %s\n", a.c_str());
      return usage(argv[0], 2);
    }
  }

  // RLC_NUM_THREADS must be well-formed for a serving process: fail loudly
  // instead of silently falling back to the hardware count.
  if (const rlc::StatusOr<std::size_t> env =
          rlc::exec::parse_thread_count_strict(std::getenv("RLC_NUM_THREADS"));
      !env.is_ok()) {
    std::fprintf(stderr, "rlc_serve: %s\n", env.status().to_string().c_str());
    return 2;
  }
  // Same contract for RLC_TRACE_RING: the admin trace op sizes its rings
  // from it, so a garbage value must not silently serve with the default.
  if (const rlc::StatusOr<std::size_t> ring =
          rlc::obs::Tracer::parse_ring_capacity_strict(
              std::getenv("RLC_TRACE_RING"));
      !ring.is_ok()) {
    std::fprintf(stderr, "rlc_serve: %s\n", ring.status().to_string().c_str());
    return 2;
  }

  if (args.bench) {
    const int rc = run_bench(args);
    if (args.metrics) dump_metrics();
    return rc;
  }

  int rc;
  if (!args.socket_path.empty()) {
#if RLC_SERVE_HAVE_EVENT_LOOP
    rc = serve_socket(args);
#else
    std::fprintf(stderr, "rlc_serve: socket mode needs the Linux epoll "
                         "event loop; use stdin mode\n");
    rc = 2;
#endif
  } else {
    rlc::svc::SessionOptions sopts;
    sopts.threads = args.threads;
    sopts.cache_capacity = args.cache;
    rlc::svc::Session session(sopts);
    rlc::svc::ServeOptions wopts;
    wopts.max_batch = args.max_batch;
    rlc::svc::Server server(session, wopts);
    rc = serve_stdio(server, args.max_batch);
  }
  if (args.metrics) dump_metrics();
  return rc;
}
