/// Figure 5 — h_optRLC / h_optRC vs line inductance l.
///
/// Paper shape: slightly below 1 at l = 0 (second-order model vs Elmore),
/// rising above 1 as inductance makes the line more transmission-line-like
/// (delay progressively linear in length, so longer segments win).

#include <cstdio>

#include "bench_util.hpp"
#include "rlc/core/elmore.hpp"
#include "rlc/core/optimizer.hpp"

int main() {
  using namespace rlc::core;
  bench::banner("FIGURE 5", "h_optRLC / h_optRC vs line inductance l");

  const auto ls = bench::inductance_sweep(25);
  std::printf("%12s %16s %16s\n", "l (nH/mm)", "250nm", "100nm");
  bench::rule();
  const auto t250 = Technology::nm250();
  const auto t100 = Technology::nm100();
  rlc::exec::Counters counters;
  SweepOptions sweep;
  sweep.counters = &counters;
  const auto r250 = optimize_rlc_sweep(t250, ls, sweep);
  const auto r100 = optimize_rlc_sweep(t100, ls, sweep);
  const double h250 = rc_optimum(t250).h;
  const double h100 = rc_optimum(t100).h;
  for (std::size_t i = 0; i < ls.size(); ++i) {
    std::printf("%12.2f %16.4f %16.4f\n", bench::to_nH_per_mm(ls[i]),
                r250[i].converged ? r250[i].h / h250 : -1.0,
                r100[i].converged ? r100[i].h / h100 : -1.0);
  }
  bench::rule();
  bench::solver_summary(counters);
  bench::note("Expected shape: < 1 at l = 0 (an effect curve-fitted formulas miss),\n"
              "monotonically increasing with l; the 100nm curve rises faster.");
  return 0;
}
