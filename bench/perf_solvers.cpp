/// Solver-performance benches (google-benchmark), backing the paper's
/// efficiency claims:
///   * Eq. (3) delay solve — "less than four iterations in all cases";
///   * the (h, k) optimization — "less than six iterations", "extremely
///     efficient";
/// plus the supporting kernels (sparse LU on ladder matrices, transient
/// steps) and the Newton-vs-Nelder-Mead ablation (DESIGN.md ablation 3).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "rlc/core/delay.hpp"
#include "rlc/core/elmore.hpp"
#include "rlc/core/optimizer.hpp"
#include "rlc/exec/counters.hpp"
#include "rlc/exec/thread_pool.hpp"
#include "rlc/linalg/sparse_lu.hpp"
#include "rlc/ringosc/ladder.hpp"
#include "rlc/spice/transient.hpp"

namespace {

using namespace rlc::core;

/// Shared instrumentation for the sweep benches; summarized after the run.
rlc::exec::Counters g_sweep_counters;

void BM_DelaySolve(benchmark::State& state) {
  const auto tech = Technology::nm100();
  const double l = state.range(0) * 1e-6;
  const auto rc = rc_optimum(tech);
  const TwoPole sys(pade_coeffs_hk(tech.rep, tech.line(l), rc.h, rc.k));
  long iters = 0, solves = 0;
  for (auto _ : state) {
    const auto r = threshold_delay(sys);
    benchmark::DoNotOptimize(r.tau);
    iters += r.newton_iterations;
    ++solves;
  }
  state.counters["newton_iters"] =
      static_cast<double>(iters) / static_cast<double>(solves);
}
BENCHMARK(BM_DelaySolve)->Arg(0)->Arg(2)->Arg(5);

void BM_OptimizeRlc(benchmark::State& state) {
  const auto tech = Technology::nm100();
  const double l = state.range(0) * 1e-6;
  // Warm start as in a sweep (the paper's use case).
  OptimOptions opts;
  const auto warm = optimize_rlc(tech, l > 0 ? l - 0.5e-6 : 0.0);
  opts.h0 = warm.h;
  opts.k0 = warm.k;
  long iters = 0, solves = 0;
  for (auto _ : state) {
    const auto r = optimize_rlc(tech, l, opts);
    benchmark::DoNotOptimize(r.delay_per_length);
    iters += r.newton_iterations;
    ++solves;
  }
  state.counters["newton_iters"] =
      static_cast<double>(iters) / static_cast<double>(solves);
}
BENCHMARK(BM_OptimizeRlc)->Arg(0)->Arg(2)->Arg(5);

void BM_OptimizeSweep51Points(benchmark::State& state) {
  const auto tech = Technology::nm250();
  std::vector<double> ls;
  for (int i = 0; i <= 50; ++i) ls.push_back(i * 0.1e-6);
  for (auto _ : state) {
    const auto rs = optimize_rlc_sweep(tech, ls);
    benchmark::DoNotOptimize(rs.back().delay_per_length);
  }
}
BENCHMARK(BM_OptimizeSweep51Points);

/// Serial vs parallel sweep on the same >= 64-point grid: the parallel
/// chunked-continuation path must approach a pool-size-bounded speedup
/// (>= 2x with 4+ hardware threads; equal wall time on 1 thread).
void BM_OptimizeSweep65(benchmark::State& state) {
  const bool parallel = state.range(0) != 0;
  const auto tech = Technology::nm250();
  std::vector<double> ls;
  for (int i = 0; i <= 64; ++i) ls.push_back(5e-6 * i / 64);
  SweepOptions sweep;
  sweep.parallel = parallel;
  sweep.counters = &g_sweep_counters;
  for (auto _ : state) {
    const auto rs = optimize_rlc_sweep(tech, ls, sweep);
    benchmark::DoNotOptimize(rs.back().delay_per_length);
  }
  state.counters["threads"] = parallel
      ? static_cast<double>(rlc::exec::default_pool().size())
      : 1.0;
}
BENCHMARK(BM_OptimizeSweep65)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"parallel"})
    ->UseRealTime();

void BM_NelderMeadFallback(benchmark::State& state) {
  // Ablation 3: derivative-free optimization of the same objective — the
  // price of not having the analytic pole sensitivities.
  const auto tech = Technology::nm100();
  OptimOptions opts;
  opts.max_newton_iterations = 1;  // force the fallback path
  for (auto _ : state) {
    const auto r = optimize_rlc(tech, 2e-6, opts);
    benchmark::DoNotOptimize(r.delay_per_length);
  }
}
BENCHMARK(BM_NelderMeadFallback);

void BM_SparseLuLadder(benchmark::State& state) {
  // Factor the MNA-like tridiagonal ladder matrix of n unknowns.
  const int n = static_cast<int>(state.range(0));
  std::vector<rlc::linalg::Triplet> t;
  for (int i = 0; i < n; ++i) {
    t.push_back({i, i, 2.1});
    if (i > 0) t.push_back({i, i - 1, -1.0});
    if (i + 1 < n) t.push_back({i, i + 1, -1.0});
  }
  const auto m = rlc::linalg::CscMatrix::from_triplets(n, n, t);
  const std::vector<double> b(n, 1.0);
  for (auto _ : state) {
    const rlc::linalg::SparseLU lu(m);
    benchmark::DoNotOptimize(lu.solve(b));
  }
}
BENCHMARK(BM_SparseLuLadder)->Arg(100)->Arg(400)->Arg(1600);

void BM_SparseLuRefactor(benchmark::State& state) {
  // Numeric-only refactorization vs full factorization on a ladder matrix
  // (the transient inner loop's dominant cost).
  const int n = static_cast<int>(state.range(0));
  std::vector<rlc::linalg::Triplet> t;
  for (int i = 0; i < n; ++i) {
    t.push_back({i, i, 2.1});
    if (i > 0) t.push_back({i, i - 1, -1.0});
    if (i + 1 < n) t.push_back({i, i + 1, -1.0});
  }
  auto m = rlc::linalg::CscMatrix::from_triplets(n, n, t);
  rlc::linalg::SparseLU lu(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lu.refactor(m));
  }
}
BENCHMARK(BM_SparseLuRefactor)->Arg(100)->Arg(400)->Arg(1600);

void BM_TransientRlcSegment(benchmark::State& state) {
  // One driver-line-load transient (the inner loop of the Section 3.3
  // experiments), nseg ladder segments.
  const auto tech = Technology::nm100();
  const auto rc = rc_optimum(tech);
  const int nseg = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto dl = tech.rep.scaled(rc.k);
    rlc::spice::Circuit ckt;
    const auto src = ckt.node("s"), drv = ckt.node("d"), end = ckt.node("e");
    ckt.add_vsource("V", src, ckt.ground(),
                    rlc::spice::PulseSpec{0, 1, 0, 1e-14, 1e-14, 1, 0});
    ckt.add_resistor("Rs", src, drv, dl.rs_eff);
    ckt.add_capacitor("Cp", drv, ckt.ground(), dl.cp_eff);
    rlc::ringosc::add_rlc_ladder(ckt, "ln", drv, end, tech.line(2e-6), rc.h, nseg);
    ckt.add_capacitor("Cl", end, ckt.ground(), dl.cl_eff);
    rlc::spice::TransientOptions o;
    o.tstop = 1e-9;
    o.dt = 2e-12;
    o.probes = {rlc::spice::Probe::node_voltage(end, "v")};
    benchmark::DoNotOptimize(run_transient(ckt, o).steps_accepted);
  }
}
BENCHMARK(BM_TransientRlcSegment)->Arg(8)->Arg(32);

}  // namespace

// Expanded BENCHMARK_MAIN so the per-sweep solver statistics print after
// the benchmark table.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf("%s | threads %zu\n",
              g_sweep_counters.summary("sweep benches").c_str(),
              rlc::exec::default_pool().size());
  return 0;
}
