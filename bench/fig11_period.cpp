/// Figure 11 — Period of oscillation of the five-stage ring oscillator vs
/// line inductance (100 nm node), with the 250 nm node as control.
///
/// Paper shape: the 100 nm period grows gently with l, then collapses
/// sharply around l ~ 2 nH/mm (false switching); the 250 nm node shows no
/// collapse anywhere in 0..5 nH/mm.  A buffered-line (non-ring) control at
/// one point past the collapse confirms the effect is not a ring artifact.

#include <cstdio>

#include "bench_util.hpp"
#include "rlc/core/elmore.hpp"
#include "rlc/ringosc/ring.hpp"

int main() {
  using namespace rlc::ringosc;
  using rlc::core::Technology;

  bench::banner("FIGURE 11", "Ring-oscillator period vs line inductance");

  struct Series {
    Technology tech;
    std::vector<double> ls;
  };
  Series series[] = {
      {Technology::nm100(),
       {0.2e-6, 0.8e-6, 1.4e-6, 1.8e-6, 2.0e-6, 2.2e-6, 2.6e-6, 3.5e-6, 5.0e-6}},
      {Technology::nm250(), {0.2e-6, 1.0e-6, 2.0e-6, 3.5e-6, 5.0e-6}},
  };

  rlc::exec::Counters counters;
  for (auto& s : series) {
    const auto rc = rlc::core::rc_optimum(s.tech);
    std::printf("\n--- %s (h = h_optRC = %.2f mm, k = k_optRC = %.0f) ---\n",
                s.tech.name.c_str(), rc.h * 1e3, rc.k);
    std::printf("%12s %14s %16s %16s\n", "l (nH/mm)", "period (ns)",
                "in overshoot(V)", "in undershoot(V)");
    bench::rule();
    // Each inductance point is an independent ring transient: fan them out
    // over the pool, then print in grid order.
    const auto results = rlc::exec::parallel_map(s.ls, [&](double l) {
      const rlc::exec::StopWatch sw;
      RingParams p;
      p.l = l;
      p.h = rc.h;
      p.k = rc.k;
      p.segments_per_line = 12;
      auto r = simulate_ring(s.tech, p);
      counters.record_wall(sw.seconds());
      return r;
    });
    double prev_period = -1.0;
    for (std::size_t i = 0; i < s.ls.size(); ++i) {
      const auto& r = results[i];
      const double period = r.completed ? r.period.value_or(-1.0) : -1.0;
      const char* marker = "";
      if (prev_period > 0.0 && period > 0.0 && period < 0.6 * prev_period) {
        marker = "  <-- period collapse (false switching)";
      }
      std::printf("%12.2f %14.4f %16.3f %16.3f%s\n",
                  bench::to_nH_per_mm(s.ls[i]), period * 1e9,
                  r.input_excursion.overshoot, r.input_excursion.undershoot,
                  marker);
      prev_period = period;
    }
  }
  bench::solver_summary(counters);

  bench::rule();
  bench::note("Control: square-wave-driven 5-stage buffered line, 100 nm, l = 2.6 nH/mm");
  {
    const auto tech = Technology::nm100();
    const auto rc = rlc::core::rc_optimum(tech);
    RingParams p;
    p.l = 2.6e-6;
    p.h = rc.h;
    p.k = rc.k;
    p.segments_per_line = 12;
    const double drive = 30.0 * rc.tau;
    const auto r = simulate_buffered_line(tech, p, drive, 5);
    std::printf("  output transitions per drive transition: %.2f "
                "(> 1 => false switching, matching the ring)\n",
                r.transition_ratio);
  }
  bench::note("(paper: sharp period drop near l ~ 2 nH/mm at 100 nm only; the same\n"
              " false switching appears on the non-ring buffered line)");
  return 0;
}
