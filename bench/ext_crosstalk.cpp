/// Extension bench — coupled-line crosstalk (motivated by the paper's
/// Section 1.1/3 discussion of neighbour switching and Miller capacitance):
/// aggressor delay vs neighbour activity and victim noise vs coupling
/// strength, with and without inductive (mutual-L) coupling.

#include <cstdio>

#include "bench_util.hpp"
#include "rlc/core/elmore.hpp"
#include "rlc/ringosc/coupled_bus.hpp"

int main() {
  using namespace rlc::ringosc;
  using rlc::core::Technology;

  bench::banner("EXTENSION: CROSSTALK",
                "coupled-line delay spread and victim noise (100 nm, l = 1 nH/mm)");

  const auto tech = Technology::nm100();
  const auto rc = rlc::core::rc_optimum(tech);
  const double h = 0.5 * rc.h, k = 0.5 * rc.k;

  std::printf("%12s %6s %14s %14s %14s %16s\n", "cc/c", "km",
              "d_inphase(ps)", "d_quiet(ps)", "d_anti(ps)", "victim noise(V)");
  bench::rule();
  for (double ccf : {0.1, 0.2, 0.3, 0.4}) {
    for (double km : {0.0, 0.3}) {
      CouplingParams cp;
      cp.cc = ccf * tech.c;
      cp.km = km;
      const auto r = run_crosstalk(tech, cp, 1e-6, h, k, 12);
      if (!r.completed) continue;
      std::printf("%12.1f %6.1f %14.1f %14.1f %14.1f %16.3f\n", ccf, km,
                  r.delay_inphase * 1e12, r.delay_quiet * 1e12,
                  r.delay_antiphase * 1e12, r.victim_peak_noise);
    }
  }
  bench::rule();
  bench::note("Expected shapes (normalized VDD = 1):\n"
              " * km = 0 rows: capacitive Miller effect — inphase < quiet < antiphase,\n"
              "   spread and victim noise growing with cc.\n"
              " * km = 0.3 rows: inductive coupling acts OPPOSITELY (in-phase loops\n"
              "   see L(1+k), anti-phase L(1-k)), reversing the delay ordering and\n"
              "   partially cancelling the capacitive victim noise as cc grows —\n"
              "   the classic sign difference between C- and L-coupling that makes\n"
              "   inductance-aware noise analysis non-optional for wide buses.");
  return 0;
}
