/// Figure 6 — k_optRLC / k_optRC vs line inductance l.
///
/// Paper shape: decreases from just below 1 and flattens as the optimal
/// driver resistance approaches the line's characteristic impedance.

#include <cstdio>

#include "bench_util.hpp"
#include "rlc/core/elmore.hpp"
#include "rlc/core/optimizer.hpp"

int main() {
  using namespace rlc::core;
  bench::banner("FIGURE 6", "k_optRLC / k_optRC vs line inductance l");

  const auto ls = bench::inductance_sweep(25);
  const auto t250 = Technology::nm250();
  const auto t100 = Technology::nm100();
  rlc::exec::Counters counters;
  SweepOptions sweep;
  sweep.counters = &counters;
  const auto r250 = optimize_rlc_sweep(t250, ls, sweep);
  const auto r100 = optimize_rlc_sweep(t100, ls, sweep);
  const double k250 = rc_optimum(t250).k;
  const double k100 = rc_optimum(t100).k;

  std::printf("%12s %12s %12s %22s %22s\n", "l (nH/mm)", "250nm", "100nm",
              "Rdrv/Z0_lossless 250nm", "Rdrv/Z0_lossless 100nm");
  bench::rule();
  for (std::size_t i = 0; i < ls.size(); ++i) {
    double z250 = -1.0, z100 = -1.0;
    if (ls[i] > 0.0) {
      z250 = (t250.rep.rs / r250[i].k) / t250.line(ls[i]).z0_lossless();
      z100 = (t100.rep.rs / r100[i].k) / t100.line(ls[i]).z0_lossless();
    }
    std::printf("%12.2f %12.4f %12.4f %22.3f %22.3f\n",
                bench::to_nH_per_mm(ls[i]),
                r250[i].converged ? r250[i].k / k250 : -1.0,
                r100[i].converged ? r100[i].k / k100 : -1.0, z250, z100);
  }
  bench::rule();
  bench::solver_summary(counters);
  bench::note("Expected shape: monotone decrease, flattening with l; the driver\n"
              "impedance ratio trends toward impedance matching (slowly, from below).");
  return 0;
}
