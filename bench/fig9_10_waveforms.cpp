/// Figures 9 & 10 — Voltage waveforms at the input and output of an
/// inverter in the five-stage 100 nm ring oscillator, at l = 1.8 nH/mm
/// (clean output despite input ringing) and l = 2.2 nH/mm (false switching;
/// period less than half the 1.8 nH/mm value).

#include <cstdio>

#include "bench_util.hpp"
#include "rlc/core/elmore.hpp"
#include "rlc/ringosc/ring.hpp"

int main() {
  using namespace rlc::ringosc;
  using rlc::core::Technology;

  bench::banner("FIGURES 9-10",
                "Ring-oscillator inverter input/output waveforms, 100 nm node");

  const auto tech = Technology::nm100();
  const auto rc = rlc::core::rc_optimum(tech);
  double periods[2] = {0.0, 0.0};
  const double lvals[2] = {1.8e-6, 2.2e-6};

  for (int which = 0; which < 2; ++which) {
    RingParams p;
    p.l = lvals[which];
    p.h = rc.h;
    p.k = rc.k;
    p.segments_per_line = 16;
    const auto r = simulate_ring(tech, p);
    if (!r.completed) {
      std::printf("simulation failed for l = %.1f nH/mm\n",
                  bench::to_nH_per_mm(p.l));
      return 1;
    }
    periods[which] = r.period.value_or(0.0);
    std::printf("\n--- l = %.1f nH/mm (Figure %s) ---\n",
                bench::to_nH_per_mm(p.l), which == 0 ? "9" : "10");
    std::printf("period = %.3f ns; input overshoot = %.3f V, undershoot = %.3f V"
                " (VDD = %.1f V)\n",
                periods[which] * 1e9, r.input_excursion.overshoot,
                r.input_excursion.undershoot, tech.vdd);
    std::printf("%12s %12s %12s\n", "t (ns)", "v_in (V)", "v_out (V)");
    bench::rule();
    // One settled period, 40 samples.
    const double t0 = r.time.front();
    const double span = 1.5 * (periods[which] > 0 ? periods[which] : r.t_estimate);
    std::size_t idx = 0;
    for (int s = 0; s <= 40; ++s) {
      const double t = t0 + span * s / 40.0;
      while (idx + 1 < r.time.size() && r.time[idx] < t) ++idx;
      std::printf("%12.4f %12.4f %12.4f\n", (r.time[idx] - t0) * 1e9,
                  r.v_in[idx], r.v_out[idx]);
    }
  }
  bench::rule();
  std::printf("period(l=2.2) / period(l=1.8) = %.3f\n", periods[1] / periods[0]);
  bench::note("(paper: the 2.2 nH/mm period is LESS THAN HALF the 1.8 nH/mm period —\n"
              " onset of false switching; expect the ratio above < 0.5)");
  return 0;
}
