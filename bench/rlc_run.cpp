/// rlc_run — the single driver for every experiment in the repo.
///
/// Replaces the 19 per-figure/table/ablation/perf binaries: each experiment
/// is a named scenario in rlc::scenario::ScenarioRegistry, and this driver
/// selects, runs (fanning independent scenarios over the rlc::exec pool),
/// renders the human tables, and optionally writes one schema-versioned
/// BENCH_<name>.json artifact per scenario.
///
///   rlc_run --list                     # what can run
///   rlc_run fig4 fig7                  # run selected scenarios
///   rlc_run --all --json artifacts/    # everything + JSON artifacts
///   rlc_run --all --quick              # CI smoke grids
///   rlc_run fig4 --spec my_spec.json   # override the scenario defaults
///   rlc_run --all --threads 4          # pin the pool size

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "rlc/base/status.hpp"
#include "rlc/exec/thread_pool.hpp"
#include "rlc/io/json.hpp"
#include "rlc/io/json_reader.hpp"
#include "rlc/obs/exporter.hpp"
#include "rlc/obs/metrics.hpp"
#include "rlc/obs/progress.hpp"
#include "rlc/obs/trace.hpp"
#include "rlc/scenario/registry.hpp"

namespace {

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: rlc_run [options] [scenario...]\n"
               "\n"
               "  --list          list registered scenarios and exit\n"
               "  --all           run every registered scenario\n"
               "  --quick         reduced grids (CI smoke runs)\n"
               "  --json DIR      write BENCH_<name>.json per scenario into DIR\n"
               "  --threads N     pool size (sets RLC_NUM_THREADS)\n"
               "  --serial        run selected scenarios one at a time\n"
               "  --spec FILE     JSON ScenarioSpec overriding the defaults\n"
               "                  (requires exactly one scenario name)\n"
               "  --trace FILE    capture spans, write Chrome trace-event JSON\n"
               "                  (open in chrome://tracing or ui.perfetto.dev)\n"
               "  --metrics       print the metrics registry table on stderr\n"
               "  --progress      throttled [done/total] line on stderr\n"
               "  --help          this text\n"
               "\n"
               "Scenarios run concurrently on the rlc::exec pool (results are\n"
               "deterministic for any thread count); use --serial for clean\n"
               "perf_* timings.\n");
}

void list_scenarios() {
  const auto& reg = rlc::scenario::ScenarioRegistry::global();
  std::printf("%-24s %-10s %-9s %s\n", "name", "group", "objective", "title");
  bench::rule();
  for (const auto& name : reg.names()) {
    const auto* s = reg.find(name);
    std::printf("%-24s %-10s %-9s %s\n", s->name.c_str(), s->group.c_str(),
                s->objective.c_str(), s->title.c_str());
  }
  std::printf("\n%zu scenarios registered (BENCH schema v%d).\n", reg.size(),
              rlc::scenario::kSchemaVersion);
}

}  // namespace

int main(int argc, char** argv) {
  bool list = false, all = false, quick = false, serial = false;
  bool metrics = false, progress = false;
  std::string json_dir, spec_file, threads_arg, trace_file;
  std::vector<std::string> selected;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "rlc_run: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--list") list = true;
    else if (arg == "--all") all = true;
    else if (arg == "--quick") quick = true;
    else if (arg == "--serial") serial = true;
    else if (arg == "--json") json_dir = value("--json");
    else if (arg == "--spec") spec_file = value("--spec");
    else if (arg == "--threads") threads_arg = value("--threads");
    else if (arg == "--trace") trace_file = value("--trace");
    else if (arg == "--metrics") metrics = true;
    else if (arg == "--progress") progress = true;
    else if (arg == "--help" || arg == "-h") { usage(stdout); return 0; }
    else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "rlc_run: unknown option %s\n", arg.c_str());
      usage(stderr);
      return 2;
    } else {
      selected.push_back(arg);
    }
  }

  // Pin the pool size before anything touches the default pool.  Both the
  // --threads flag and a pre-set RLC_NUM_THREADS are validated STRICTLY:
  // "0", negative, or garbage is a configuration error worth stopping for,
  // not something to paper over with the hardware count.
  if (!threads_arg.empty()) setenv("RLC_NUM_THREADS", threads_arg.c_str(), 1);
  if (const auto parsed = rlc::exec::parse_thread_count_strict(
          std::getenv("RLC_NUM_THREADS"));
      !parsed.is_ok()) {
    std::fprintf(stderr, "rlc_run: %s\n",
                 parsed.status().to_string().c_str());
    return 2;
  }
  // Same strictness for the tracer ring override (--trace sizes the
  // per-thread rings from it before any spans are recorded).
  if (const auto ring = rlc::obs::Tracer::parse_ring_capacity_strict(
          std::getenv("RLC_TRACE_RING"));
      !ring.is_ok()) {
    std::fprintf(stderr, "rlc_run: %s\n", ring.status().to_string().c_str());
    return 2;
  }

  rlc::scenario::register_all_scenarios();
  const auto& reg = rlc::scenario::ScenarioRegistry::global();

  if (list) {
    list_scenarios();
    return 0;
  }
  if (all) selected = reg.names();
  if (selected.empty()) {
    usage(stderr);
    return 2;
  }

  // Resolve names up front so a typo fails before any work starts.
  std::vector<const rlc::scenario::Scenario*> scenarios;
  scenarios.reserve(selected.size());
  for (const auto& name : selected) {
    const auto* s = reg.find(name);
    if (!s) {
      std::fprintf(stderr,
                   "rlc_run: unknown scenario \"%s\" (see rlc_run --list)\n",
                   name.c_str());
      return 2;
    }
    scenarios.push_back(s);
  }

  if (!spec_file.empty() && scenarios.size() != 1) {
    std::fprintf(stderr, "rlc_run: --spec requires exactly one scenario\n");
    return 2;
  }

  // Per-scenario specs: registered defaults, optionally replaced by a spec
  // file, optionally shrunk for smoke runs.
  std::vector<rlc::scenario::ScenarioSpec> specs;
  specs.reserve(scenarios.size());
  for (const auto* s : scenarios) {
    rlc::scenario::ScenarioSpec spec = s->defaults;
    if (!spec_file.empty()) {
      rlc::StatusOr<rlc::scenario::ScenarioSpec> parsed = [&] {
        try {
          return rlc::scenario::ScenarioSpec::from_json(
              rlc::io::parse_json_file(spec_file));
        } catch (const std::exception& e) {  // unreadable file
          return rlc::StatusOr<rlc::scenario::ScenarioSpec>(
              rlc::Status::invalid_argument(e.what()));
        }
      }();
      if (!parsed.is_ok()) {
        std::fprintf(stderr, "rlc_run: cannot load --spec %s: %s\n",
                     spec_file.c_str(),
                     parsed.status().to_string().c_str());
        return 2;
      }
      spec = std::move(parsed).value();
      spec.scenario = s->name;
    }
    if (quick) spec = rlc::scenario::quick_spec(std::move(spec));
    specs.push_back(std::move(spec));
  }

  // Create the artifact directory up front so an unwritable destination
  // fails fast, before any scenario burns time.
  if (!json_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(json_dir, ec);
    if (ec) {
      std::fprintf(stderr, "rlc_run: cannot create %s: %s\n", json_dir.c_str(),
                   ec.message().c_str());
      return 2;
    }
  }

  // Run.  Independent scenarios fan over the shared pool (their internal
  // sweeps nest on the same pool; leaf loops always make progress, so this
  // cannot deadlock).  A failing scenario becomes an error result instead of
  // taking the whole run down.
  // Arm the tracer before any scenario runs so every span of the run is
  // captured; numerical results are bit-identical either way (pinned by
  // tests/obs).
  if (!trace_file.empty()) rlc::obs::Tracer::global().enable();

  std::vector<rlc::scenario::ScenarioResult> results(scenarios.size());
  rlc::obs::Progress meter(scenarios.size(), progress);
  auto run_one = [&](std::size_t i) {
    try {
      results[i] = rlc::scenario::run_scenario(*scenarios[i], specs[i]);
    } catch (const std::exception& e) {
      results[i] = {};
      results[i].name = scenarios[i]->name;
      results[i].title = scenarios[i]->title;
      results[i].spec = specs[i];
      results[i].error = e.what();
    }
    meter.tick(scenarios[i]->name);
  };
  if (serial || scenarios.size() == 1) {
    for (std::size_t i = 0; i < scenarios.size(); ++i) run_one(i);
  } else {
    rlc::exec::default_pool().parallel_for(scenarios.size(), run_one,
                                           /*grain=*/1);
  }
  meter.finish();

  if (!trace_file.empty()) {
    rlc::obs::Tracer::global().disable();
    if (!rlc::obs::Tracer::global().write_chrome_trace(trace_file)) return 1;
    std::fprintf(stderr, "rlc_run: wrote trace (%llu spans, %llu dropped) to %s\n",
                 static_cast<unsigned long long>(
                     rlc::obs::Tracer::global().span_count()),
                 static_cast<unsigned long long>(
                     rlc::obs::Tracer::global().dropped()),
                 trace_file.c_str());
  }

  if (metrics) {
    const std::string table = rlc::obs::Exporter::text(
        rlc::obs::Registry::global().snapshot().without_zeros());
    std::fprintf(stderr, "\n-- metrics registry --\n%s", table.c_str());
  }

  // Render in selection order, then write artifacts.
  for (const auto& res : results) bench::print_result(res);

  if (!json_dir.empty()) {
    std::printf("\n");
    for (const auto& res : results) {
      std::string path = json_dir;
      if (!path.empty() && path.back() != '/') path += '/';
      path += "BENCH_";
      path += res.name;
      path += ".json";
      if (!rlc::io::write_json_file(path, res.to_json())) return 1;
      std::printf("wrote %s\n", path.c_str());
    }
  }

  int failures = 0;
  for (const auto& res : results) {
    if (!res.error.empty()) {
      std::fprintf(stderr, "rlc_run: scenario %s failed: %s\n",
                   res.name.c_str(), res.error.c_str());
      ++failures;
    }
  }
  return failures ? 1 : 0;
}
