/// Exact-waveform engine performance bench (google-benchmark) plus a
/// measured legacy-vs-engine head-to-head that emits the machine-readable
/// BENCH_exact.json artifact (path override: RLC_BENCH_JSON).  This seeds
/// the repo's perf trajectory: future PRs regress-check the recorded
/// speedup / accuracy numbers.
///
///   * exact_threshold_delay — legacy per-t bisection vs the windowed
///     engine (target: >= 10x, accuracy <= 1e-3 relative; measured in the
///     head-to-head and asserted structurally in tests/core);
///   * exact_step_response — per-t contours vs shared-contour windows;
///   * TransferEvaluator — memoized repeat probes vs raw dc-safe calls;
///   * exact_sweep — serial vs ThreadPool fan-out with solver counters.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <complex>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "rlc/core/delay.hpp"
#include "rlc/core/elmore.hpp"
#include "rlc/core/exact_delay.hpp"
#include "rlc/exec/counters.hpp"
#include "rlc/exec/thread_pool.hpp"
#include "rlc/tline/evaluator.hpp"

namespace {

using namespace rlc::core;

rlc::exec::Counters g_sweep_counters;

struct Config {
  Technology tech;
  double l = 0.0;
  double h = 0.0, k = 0.0, tau = 0.0;
};

Config make_config(const Technology& tech, double l) {
  Config c{tech, l, 0.0, 0.0, 0.0};
  const auto rc = rc_optimum(tech);
  c.h = rc.h;
  c.k = rc.k;
  c.tau = segment_delay(tech.rep, tech.line(l), rc.h, rc.k).tau;
  return c;
}

Config config_for(int node_nm, double l) {
  return make_config(node_nm == 250 ? Technology::nm250() : Technology::nm100(),
                     l);
}

void BM_ExactThresholdLegacy(benchmark::State& state) {
  const auto c = config_for(250, state.range(0) * 1e-6);
  ExactOptions o;
  o.legacy_bisection = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        exact_threshold_delay(c.tech, c.l, c.h, c.k, c.tau, 0.5, o));
  }
}
BENCHMARK(BM_ExactThresholdLegacy)->Arg(0)->Arg(2)->Arg(5);

void BM_ExactThresholdEngine(benchmark::State& state) {
  const auto c = config_for(250, state.range(0) * 1e-6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        exact_threshold_delay(c.tech, c.l, c.h, c.k, c.tau));
  }
}
BENCHMARK(BM_ExactThresholdEngine)->Arg(0)->Arg(2)->Arg(5);

std::vector<double> waveform_times(const Config& c, int n) {
  std::vector<double> ts;
  ts.reserve(n);
  for (int i = 1; i <= n; ++i) ts.push_back(8.0 * c.tau * i / n);
  return ts;
}

void BM_ExactWaveformPerT(benchmark::State& state) {
  const auto c = config_for(100, 2e-6);
  const auto ts = waveform_times(c, static_cast<int>(state.range(0)));
  const auto dl = c.tech.rep.scaled(c.k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        exact_step_response(c.tech.line(c.l), c.h, dl, ts));
  }
}
BENCHMARK(BM_ExactWaveformPerT)->Arg(64)->Arg(256);

void BM_ExactWaveformWindowed(benchmark::State& state) {
  const auto c = config_for(100, 2e-6);
  const auto ts = waveform_times(c, static_cast<int>(state.range(0)));
  const auto dl = c.tech.rep.scaled(c.k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        exact_step_response_windowed(c.tech.line(c.l), c.h, dl, ts));
  }
}
BENCHMARK(BM_ExactWaveformWindowed)->Arg(64)->Arg(256);

void BM_TransferEvalRaw(benchmark::State& state) {
  const auto c = config_for(250, 2e-6);
  const auto dl = c.tech.rep.scaled(c.k);
  const auto line = c.tech.line(c.l);
  const std::complex<double> s{1e8, 5e9};
  for (auto _ : state) {
    benchmark::DoNotOptimize(rlc::tline::exact_transfer_dc_safe(line, c.h, dl, s));
  }
}
BENCHMARK(BM_TransferEvalRaw);

void BM_TransferEvalCached(benchmark::State& state) {
  const auto c = config_for(250, 2e-6);
  const rlc::tline::TransferEvaluator ev(c.tech.line(c.l), c.h,
                                         c.tech.rep.scaled(c.k));
  const std::complex<double> s{1e8, 5e9};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ev.transfer(s));
  }
}
BENCHMARK(BM_TransferEvalCached);

void BM_ExactSweep(benchmark::State& state) {
  const bool parallel = state.range(0) != 0;
  const auto tech = Technology::nm100();
  const auto rc = rc_optimum(tech);
  const auto ls = bench::inductance_sweep(12);
  ExactSweepOptions o;
  o.parallel = parallel;
  o.counters = &g_sweep_counters;
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact_sweep(tech, ls, rc.h, rc.k, o));
  }
  state.counters["threads"] =
      parallel ? static_cast<double>(rlc::exec::default_pool().size()) : 1.0;
}
BENCHMARK(BM_ExactSweep)->Arg(0)->Arg(1)->ArgNames({"parallel"})->UseRealTime();

// ---- Head-to-head: measured speedup + accuracy, recorded as JSON. ----

double median_ns(const std::vector<double>& xs) {
  std::vector<double> v = xs;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

template <typename F>
double time_ns(F&& fn, int reps) {
  std::vector<double> samples;
  samples.reserve(reps);
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::nano>(t1 - t0).count());
  }
  return median_ns(samples);
}

struct HeadToHead {
  bench::Json row;
  double legacy_ns = 0.0, engine_ns = 0.0;
  double speedup = 0.0, rel_err = 0.0, eval_ratio = 0.0;
};

HeadToHead head_to_head(int node_nm, double l) {
  const auto c = config_for(node_nm, l);
  ExactOptions legacy;
  legacy.legacy_bisection = true;

  ExactStats legacy_stats, engine_stats;
  const double d_legacy =
      exact_threshold_delay(c.tech, c.l, c.h, c.k, c.tau, 0.5, legacy,
                            &legacy_stats)
          .value();
  const double d_engine =
      exact_threshold_delay(c.tech, c.l, c.h, c.k, c.tau, 0.5, ExactOptions{},
                            &engine_stats)
          .value();
  const double rel_err = std::abs(d_engine - d_legacy) / d_legacy;

  const int reps = 9;
  const double ns_legacy = time_ns(
      [&] {
        benchmark::DoNotOptimize(
            exact_threshold_delay(c.tech, c.l, c.h, c.k, c.tau, 0.5, legacy));
      },
      reps);
  const double ns_engine = time_ns(
      [&] {
        benchmark::DoNotOptimize(
            exact_threshold_delay(c.tech, c.l, c.h, c.k, c.tau));
      },
      reps);

  HeadToHead out;
  out.legacy_ns = ns_legacy;
  out.engine_ns = ns_engine;
  out.speedup = ns_legacy / ns_engine;
  out.rel_err = rel_err;
  out.eval_ratio = static_cast<double>(legacy_stats.transfer_evals) /
                   static_cast<double>(engine_stats.transfer_evals);

  bench::Json j;
  j.set("tech", node_nm == 250 ? "250nm" : "100nm")
      .set("l_nH_per_mm", bench::to_nH_per_mm(l))
      .set("delay_legacy_ps", d_legacy * 1e12)
      .set("delay_engine_ps", d_engine * 1e12)
      .set("rel_err", rel_err)
      .set("legacy_ns", ns_legacy)
      .set("engine_ns", ns_engine)
      .set("speedup", ns_legacy / ns_engine)
      .set("transfer_evals_legacy", static_cast<long long>(legacy_stats.transfer_evals))
      .set("transfer_evals_engine", static_cast<long long>(engine_stats.transfer_evals))
      .set("eval_ratio", out.eval_ratio)
      .set("engine_windows", static_cast<long long>(engine_stats.windows))
      .set("engine_brent_iterations",
           static_cast<long long>(engine_stats.brent_iterations))
      .set("engine_legacy_fallbacks",
           static_cast<long long>(engine_stats.legacy_fallbacks));
  out.row = j;
  return out;
}

int run_head_to_head_and_emit_json() {
  bench::banner("PERF: EXACT-WAVEFORM ENGINE",
                "windowed Talbot + cached transfer evaluator vs legacy "
                "per-t bisection");
  std::vector<bench::Json> rows;
  double min_speedup = 1e300, max_rel_err = 0.0, min_eval_ratio = 1e300;
  double geo = 1.0;
  const struct {
    int node;
    double l;
  } configs[] = {{250, 0.0}, {250, 1e-6}, {250, 3e-6},
                 {100, 0.0}, {100, 1e-6}, {100, 3e-6}};
  std::printf("%8s %12s %12s %12s %10s %12s %12s\n", "tech", "l (nH/mm)",
              "legacy (ms)", "engine (ms)", "speedup", "eval ratio",
              "rel err");
  bench::rule();
  for (const auto& cfg : configs) {
    const HeadToHead h = head_to_head(cfg.node, cfg.l);
    rows.push_back(h.row);
    min_speedup = std::min(min_speedup, h.speedup);
    min_eval_ratio = std::min(min_eval_ratio, h.eval_ratio);
    max_rel_err = std::max(max_rel_err, h.rel_err);
    geo *= h.speedup;
    std::printf("%8s %12.1f %12.3f %12.3f %9.1fx %11.1fx %12.2e\n",
                cfg.node == 250 ? "250nm" : "100nm",
                bench::to_nH_per_mm(cfg.l), h.legacy_ns * 1e-6,
                h.engine_ns * 1e-6, h.speedup, h.eval_ratio, h.rel_err);
  }
  geo = std::pow(geo, 1.0 / std::size(configs));
  bench::rule();
  std::printf("speedup: min %.1fx, geomean %.1fx | eval ratio: min %.1fx | "
              "max rel err %.2e (budget 1e-3)\n",
              min_speedup, geo, min_eval_ratio, max_rel_err);

  bench::Json doc;
  doc.set("bench", "perf_exact")
      .set("schema", 1)
      .set("threads", static_cast<long long>(rlc::exec::default_pool().size()))
      .set("head_to_head", rows);
  bench::Json summary;
  summary.set("min_speedup", min_speedup)
      .set("geomean_speedup", geo)
      .set("min_eval_ratio", min_eval_ratio)
      .set("max_rel_err", max_rel_err)
      .set("speedup_target", 10.0)
      .set("rel_err_budget", 1e-3);
  doc.set("summary", summary);

  const char* env = std::getenv("RLC_BENCH_JSON");
  const std::string path = env ? env : "BENCH_exact.json";
  if (!bench::write_json_file(path, doc)) return 1;
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const int rc = run_head_to_head_and_emit_json();
  std::printf("%s | threads %zu\n",
              g_sweep_counters.summary("exact sweeps").c_str(),
              rlc::exec::default_pool().size());
  return rc;
}
