# Benchmark harness: one binary per paper table/figure plus solver-speed and
# ablation benches.  Binaries land in ${CMAKE_BINARY_DIR}/bench with nothing
# else, so `for b in build/bench/*; do $b; done` regenerates every result.
function(rlc_add_bench name)
  add_executable(${name} bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE
    rlc_core rlc_exec rlc_tline rlc_laplace rlc_math rlc_linalg rlc_extract
    rlc_spice rlc_ringosc rlc_analysis rlcopt_warnings)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

rlc_add_bench(table1_tech)
rlc_add_bench(fig2_step_response)
rlc_add_bench(fig4_lcrit)
rlc_add_bench(fig5_hopt_ratio)
rlc_add_bench(fig6_kopt_ratio)
rlc_add_bench(fig7_delay_ratio)
rlc_add_bench(fig8_variation)
rlc_add_bench(fig9_10_waveforms)
rlc_add_bench(fig11_period)
rlc_add_bench(fig12_current_density)
rlc_add_bench(ablation_pade)
rlc_add_bench(ablation_ladder)
rlc_add_bench(ablation_baselines)
rlc_add_bench(ext_crosstalk)
rlc_add_bench(ext_frequency_response)
rlc_add_bench(ext_scaling_trend)
rlc_add_bench(ext_skin_effect)

rlc_add_bench(perf_solvers)
target_link_libraries(perf_solvers PRIVATE benchmark::benchmark)

rlc_add_bench(perf_exact)
target_link_libraries(perf_exact PRIVATE benchmark::benchmark)
