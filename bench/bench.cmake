# Experiment driver: a single rlc_run binary serving every registered
# scenario (paper figures/table, ablations, extensions, perf studies) from
# the rlc::scenario registry.  It lands alone in ${CMAKE_BINARY_DIR}/bench,
# so `./build/bench/rlc_run --all --json artifacts/` regenerates every
# result and its JSON artifact.
add_executable(rlc_run bench/rlc_run.cpp)
target_link_libraries(rlc_run PRIVATE
  rlc_scenario rlc_io rlc_exec rlc_core rlc_obs rlcopt_warnings)
set_target_properties(rlc_run PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)

# NDJSON query server over rlc::svc (stdin/stdout, or the epoll event loop
# with shard routing on a Unix socket), plus the cold-vs-warm serving bench
# behind --bench.
add_executable(rlc_serve bench/rlc_serve.cpp)
target_link_libraries(rlc_serve PRIVATE
  rlc_svc rlc_scenario rlc_io rlc_exec rlc_core rlc_obs rlcopt_warnings)
set_target_properties(rlc_serve PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)

# Open-loop replay load generator against a running rlc_serve socket —
# Poisson arrivals, persistent connections, latency measured from the
# scheduled arrival time (coordinated-omission-free).  Writes the
# BENCH_load.json artifact.
add_executable(rlc_load bench/rlc_load.cpp)
target_link_libraries(rlc_load PRIVATE
  rlc_svc rlc_io rlc_obs rlcopt_warnings)
set_target_properties(rlc_load PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
