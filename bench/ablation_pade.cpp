/// Ablation 1 (DESIGN.md) — accuracy of the second-order Pade model
/// (the paper's approximation 1) against the exact Eq. (1) transfer
/// function, as a function of line inductance.  The exact 50% delays come
/// from the exact-waveform engine via exact_sweep (fanned over the thread
/// pool, with solver counters); the model delay from the two-pole closed
/// form.  Run at the RC-optimal sizing for both nodes.

#include <cstdio>
#include <cmath>
#include <vector>

#include "bench_util.hpp"
#include "rlc/core/delay.hpp"
#include "rlc/core/elmore.hpp"
#include "rlc/core/exact_delay.hpp"
#include "rlc/exec/counters.hpp"

int main() {
  using namespace rlc::core;
  bench::banner("ABLATION: PADE ORDER",
                "two-pole (Eq. 2) 50%-delay error vs exact Eq. (1), at (h_optRC, k_optRC)");

  rlc::exec::Counters counters;
  const std::vector<double> ls{0.0, 0.5e-6, 1e-6, 2e-6, 3e-6, 4e-6, 5e-6};
  for (const auto& tech : {Technology::nm250(), Technology::nm100()}) {
    const auto rc = rc_optimum(tech);
    ExactSweepOptions sweep;
    sweep.counters = &counters;
    const auto exact = exact_sweep(tech, ls, rc.h, rc.k, sweep);
    std::printf("\n--- %s ---\n", tech.name.c_str());
    std::printf("%12s %16s %16s %10s\n", "l (nH/mm)", "exact tau (ps)",
                "2-pole tau (ps)", "error");
    bench::rule();
    for (std::size_t i = 0; i < ls.size(); ++i) {
      const auto dr = segment_delay(tech.rep, tech.line(ls[i]), rc.h, rc.k);
      const double ex = exact[i].value();
      std::printf("%12.2f %16.2f %16.2f %9.2f%%\n",
                  bench::to_nH_per_mm(ls[i]), ex * 1e12, dr.tau * 1e12,
                  100.0 * (dr.tau - ex) / ex);
    }
  }
  bench::rule();
  bench::note("The two-pole model tracks the exact response to a few percent at low l\n"
              "and ~10-14%% at the top of the sweep (the cost of the paper's\n"
              "approximation 1); the optimizer's *relative* comparisons (Figs 5-8)\n"
              "are much less sensitive since both sides share the model.");
  bench::solver_summary(counters);
  return 0;
}
