/// Figure 2 — Step response of a second-order (RLC) system in the three
/// damping regimes.  Regenerates the three curves (overdamped, critically
/// damped, underdamped) as time series of the normalized step response,
/// and verifies the two-pole closed form against numerical inversion of the
/// exact Pade transfer function.

#include <cstdio>

#include "bench_util.hpp"
#include "rlc/core/two_pole.hpp"
#include "rlc/laplace/talbot.hpp"

int main() {
  using namespace rlc::core;
  bench::banner("FIGURE 2", "Step response of a second-order system (three damping regimes)");

  const double b1 = 2e-10;
  const double b2_crit = 0.25 * b1 * b1;
  struct Curve {
    const char* name;
    PadeCoeffs pc;
  };
  const Curve curves[] = {
      {"overdamped (b2 = 0.25 b2crit)", {b1, 0.25 * b2_crit}},
      {"critically damped            ", {b1, b2_crit}},
      {"underdamped (b2 = 6 b2crit)  ", {b1, 6.0 * b2_crit}},
  };

  std::printf("%-10s", "t/b1");
  for (const auto& c : curves) std::printf(" %14.14s", c.name);
  std::printf("\n");
  bench::rule();
  for (int i = 0; i <= 30; ++i) {
    const double t = b1 * i / 4.0;
    std::printf("%-10.2f", t / b1);
    for (const auto& c : curves) {
      std::printf(" %14.4f", TwoPole(c.pc).step_response(t));
    }
    std::printf("\n");
  }

  bench::rule();
  bench::note("Regime metrics (closed form):");
  for (const auto& c : curves) {
    const TwoPole sys(c.pc);
    std::printf("  %s  zeta=%6.3f  overshoot=%6.3f  undershoot=%6.3f\n",
                c.name, sys.damping_ratio(), sys.overshoot(), sys.undershoot());
  }

  bench::rule();
  bench::note("Cross-check vs numerical inverse Laplace of 1/(s(1+s b1+s^2 b2)):");
  for (const auto& c : curves) {
    double max_err = 0.0;
    for (int i = 1; i <= 24; ++i) {
      const double t = b1 * i / 3.0;
      const auto F = [&](std::complex<double> s) {
        return 1.0 / (s * (1.0 + s * c.pc.b1 + s * s * c.pc.b2));
      };
      max_err = std::max(max_err, std::abs(rlc::laplace::talbot_invert(F, t, 48) -
                                           TwoPole(c.pc).step_response(t)));
    }
    std::printf("  %s  max |closed-form - Talbot| = %.2e\n", c.name, max_err);
  }
  return 0;
}
