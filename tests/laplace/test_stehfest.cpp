#include "rlc/laplace/stehfest.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace rlc::laplace {
namespace {

TEST(Stehfest, WeightsSumToZero) {
  // Sum of Stehfest weights is 0 (constant Laplace image of 0 inverts to 0);
  // a classic self-check of the coefficient generation.
  for (int n : {8, 10, 12, 14, 16}) {
    const auto v = stehfest_weights(n);
    const double sum = std::accumulate(v.begin() + 1, v.end(), 0.0);
    EXPECT_NEAR(sum, 0.0, 1e-4 * std::abs(v[n / 2])) << "N = " << n;
  }
}

TEST(Stehfest, WeightsRejectOddOrSmallN) {
  EXPECT_THROW(stehfest_weights(7), std::invalid_argument);
  EXPECT_THROW(stehfest_weights(0), std::invalid_argument);
}

TEST(Stehfest, StepFunction) {
  const auto F = [](double s) { return 1.0 / s; };
  EXPECT_NEAR(stehfest_invert(F, 1.0), 1.0, 1e-8);
  EXPECT_NEAR(stehfest_invert(F, 17.0), 1.0, 1e-8);
}

TEST(Stehfest, Exponential) {
  const double a = 2.0;
  const auto F = [a](double s) { return 1.0 / (s + a); };
  for (double t : {0.1, 0.5, 1.0}) {
    EXPECT_NEAR(stehfest_invert(F, t), std::exp(-a * t), 1e-4) << t;
  }
}

TEST(Stehfest, Ramp) {
  const auto F = [](double s) { return 1.0 / (s * s); };
  EXPECT_NEAR(stehfest_invert(F, 3.0), 3.0, 1e-4);
}

TEST(Stehfest, KnownWeaknessOnOscillatoryResponses) {
  // Documented limitation: Gaver-Stehfest degrades on strongly oscillatory
  // f(t).  sin(10 t) at t where it matters: expect visible error (this test
  // asserts the limitation so users are not surprised).
  const double w = 10.0;
  const auto F = [w](double s) { return w / (s * s + w * w); };
  const double t = 2.0;
  const double err = std::abs(stehfest_invert(F, t, 14) - std::sin(w * t));
  EXPECT_GT(err, 1e-3);
}

TEST(Stehfest, InputValidation) {
  const auto F = [](double s) { return 1.0 / s; };
  EXPECT_THROW(stehfest_invert(F, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace rlc::laplace
