#include "rlc/laplace/stehfest.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numeric>
#include <vector>

#include "rlc/laplace/talbot.hpp"

namespace rlc::laplace {
namespace {

TEST(Stehfest, WeightsSumToZero) {
  // Sum of Stehfest weights is 0 (constant Laplace image of 0 inverts to 0);
  // a classic self-check of the coefficient generation.
  for (int n : {8, 10, 12, 14, 16}) {
    const auto v = stehfest_weights(n);
    const double sum = std::accumulate(v.begin() + 1, v.end(), 0.0);
    EXPECT_NEAR(sum, 0.0, 1e-4 * std::abs(v[n / 2])) << "N = " << n;
  }
}

TEST(Stehfest, WeightsRejectOddOrSmallN) {
  EXPECT_THROW(stehfest_weights(7), std::invalid_argument);
  EXPECT_THROW(stehfest_weights(0), std::invalid_argument);
}

TEST(Stehfest, StepFunction) {
  const auto F = [](double s) { return 1.0 / s; };
  EXPECT_NEAR(stehfest_invert(F, 1.0), 1.0, 1e-8);
  EXPECT_NEAR(stehfest_invert(F, 17.0), 1.0, 1e-8);
}

TEST(Stehfest, Exponential) {
  const double a = 2.0;
  const auto F = [a](double s) { return 1.0 / (s + a); };
  for (double t : {0.1, 0.5, 1.0}) {
    EXPECT_NEAR(stehfest_invert(F, t), std::exp(-a * t), 1e-4) << t;
  }
}

TEST(Stehfest, Ramp) {
  const auto F = [](double s) { return 1.0 / (s * s); };
  EXPECT_NEAR(stehfest_invert(F, 3.0), 3.0, 1e-4);
}

TEST(Stehfest, KnownWeaknessOnOscillatoryResponses) {
  // Documented limitation: Gaver-Stehfest degrades on strongly oscillatory
  // f(t).  sin(10 t) at t where it matters: expect visible error (this test
  // asserts the limitation so users are not surprised).
  const double w = 10.0;
  const auto F = [w](double s) { return w / (s * s + w * w); };
  const double t = 2.0;
  const double err = std::abs(stehfest_invert(F, t, 14) - std::sin(w * t));
  EXPECT_GT(err, 1e-3);
}

TEST(Stehfest, InputValidation) {
  const auto F = [](double s) { return 1.0 / s; };
  EXPECT_THROW(stehfest_invert(F, 0.0), std::invalid_argument);
}

TEST(Stehfest, MultiTimeOverloadMatchesScalar) {
  const double a = 2.0;
  const auto F = [a](double s) { return 1.0 / (s + a); };
  const std::vector<double> times{0.1, 0.5, 1.0, 2.0};
  const auto v = stehfest_invert(F, times, 14);
  ASSERT_EQ(v.size(), times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_DOUBLE_EQ(v[i], stehfest_invert(F, times[i], 14)) << times[i];
  }
  const auto empty = stehfest_invert(F, std::vector<double>{}, 14);
  EXPECT_TRUE(empty.empty());
}

TEST(Stehfest, CrossChecksWindowedTalbotOnSmoothResponse) {
  // Independent-method agreement: Gaver-Stehfest (real-axis samples) and
  // the shared-contour Talbot window must agree on a smooth RC-style step
  // response.  This guards both inverters at once — a systematic error in
  // either would break the match.
  const double a = 5.0;
  const auto F_real = [a](double s) { return a / (s * (s + a)); };
  const rlc::laplace::LaplaceFn F_cplx = [a](std::complex<double> s) {
    return a / (s * (s + a));
  };
  const double t_max = 1.6, lambda = 4.0;
  std::vector<double> times;
  for (int i = 0; i <= 8; ++i) {
    times.push_back(t_max / lambda * std::pow(lambda, i / 8.0));
  }
  const auto stehfest = stehfest_invert(F_real, times, 14);
  const auto talbot = talbot_invert_window(F_cplx, times, t_max, 48, lambda);
  ASSERT_EQ(stehfest.size(), talbot.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_NEAR(stehfest[i], talbot[i], 1e-4) << "t = " << times[i];
    EXPECT_NEAR(talbot[i], 1.0 - std::exp(-a * times[i]), 1e-6)
        << "t = " << times[i];
  }
}

}  // namespace
}  // namespace rlc::laplace
