// The Euler (Abate-Whitt) inverter: accuracy on known transforms —
// including the oscillatory ones the fixed-Talbot contour cannot handle —
// plus batch/per-point equivalence and argument validation.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "rlc/laplace/euler.hpp"
#include "rlc/laplace/talbot.hpp"

namespace {

using cplx = std::complex<double>;
using rlc::laplace::euler_invert;
using rlc::laplace::EulerOptions;
using rlc::laplace::LaplaceFnRef;

TEST(EulerInvert, StepAndExponential) {
  const auto step = [](cplx s) { return 1.0 / s; };
  const auto decay = [](cplx s) { return 1.0 / (s + 2.0); };
  for (double t : {0.1, 1.0, 5.0}) {
    EXPECT_NEAR(euler_invert(LaplaceFnRef(step), t), 1.0, 1e-7) << t;
    EXPECT_NEAR(euler_invert(LaplaceFnRef(decay), t), std::exp(-2.0 * t),
                1e-7)
        << t;
  }
}

TEST(EulerInvert, PureOscillationOverManyPeriods) {
  // sin(t) and cos(t): poles ON the imaginary axis.  The vertical Bromwich
  // contour handles them; this is the regime where fixed Talbot fails.
  const auto sine = [](cplx s) { return 1.0 / (s * s + 1.0); };
  const auto cosine = [](cplx s) { return s / (s * s + 1.0); };
  for (double t = 0.5; t < 25.0; t *= 1.7) {
    EXPECT_NEAR(euler_invert(LaplaceFnRef(sine), t), std::sin(t), 1e-6) << t;
    EXPECT_NEAR(euler_invert(LaplaceFnRef(cosine), t), std::cos(t), 1e-6)
        << t;
  }
}

TEST(EulerInvert, DampedOscillationBeatsFixedTalbot) {
  // e^{-t/4} cos(4t): the underdamped-RLC shape.  Euler stays at ~1e-7
  // while fixed Talbot drifts to ~1e-2 after a few periods.
  const auto f = [](cplx s) {
    const cplx sh = s + 0.25;
    return sh / (sh * sh + 16.0);
  };
  const double t = 7.0;  // ~4.5 periods in
  const double exact = std::exp(-t / 4.0) * std::cos(4.0 * t);
  EXPECT_NEAR(euler_invert(LaplaceFnRef(f), t), exact, 1e-6);
  const double talbot_err =
      std::abs(rlc::laplace::talbot_invert(LaplaceFnRef(f), t) - exact);
  const double euler_err =
      std::abs(euler_invert(LaplaceFnRef(f), t) - exact);
  EXPECT_LT(euler_err, 1e-3 * talbot_err);
}

TEST(EulerInvert, BatchMatchesPerPointBitExactly) {
  const auto f = [](cplx s) {
    const cplx sh = s + 0.5;
    return sh / (sh * sh + 9.0);
  };
  std::vector<double> times;
  for (double t = 0.2; t < 12.0; t *= 1.4) times.push_back(t);
  const auto batch = euler_invert(LaplaceFnRef(f), times);
  ASSERT_EQ(batch.size(), times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_EQ(batch[i], euler_invert(LaplaceFnRef(f), times[i])) << i;
  }
}

TEST(EulerInvert, OptionsTradeAccuracy) {
  const auto sine = [](cplx s) { return 1.0 / (s * s + 1.0); };
  EulerOptions coarse;
  coarse.burn_in = 8;
  coarse.terms = 6;
  coarse.decay = 9.0;
  const double t = 11.0;
  const double err_coarse =
      std::abs(euler_invert(LaplaceFnRef(sine), t, coarse) - std::sin(t));
  const double err_default =
      std::abs(euler_invert(LaplaceFnRef(sine), t) - std::sin(t));
  EXPECT_LT(err_default, err_coarse);
  EXPECT_EQ(rlc::laplace::euler_nodes(coarse), 15);
  EXPECT_EQ(rlc::laplace::euler_nodes(EulerOptions{}), 47);
}

TEST(EulerInvert, RejectsBadArguments) {
  const auto step = [](cplx s) { return 1.0 / s; };
  EXPECT_THROW(euler_invert(LaplaceFnRef(step), 0.0), std::invalid_argument);
  EXPECT_THROW(euler_invert(LaplaceFnRef(step), -1.0), std::invalid_argument);
  EulerOptions bad;
  bad.burn_in = 0;
  EXPECT_THROW(euler_invert(LaplaceFnRef(step), 1.0, bad),
               std::invalid_argument);
  bad = EulerOptions{};
  bad.terms = -1;
  EXPECT_THROW(euler_invert(LaplaceFnRef(step), 1.0, bad),
               std::invalid_argument);
  bad = EulerOptions{};
  bad.decay = 0.0;
  EXPECT_THROW(euler_invert(LaplaceFnRef(step), 1.0, bad),
               std::invalid_argument);
}

}  // namespace
