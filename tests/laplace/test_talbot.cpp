#include "rlc/laplace/talbot.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>

#include "rlc/core/pade.hpp"
#include "rlc/core/two_pole.hpp"

namespace rlc::laplace {
namespace {

using cplx = std::complex<double>;

TEST(Talbot, StepFunction) {
  // L^-1[1/s] = 1.
  const LaplaceFn F = [](cplx s) { return 1.0 / s; };
  for (double t : {0.1, 1.0, 10.0}) {
    EXPECT_NEAR(talbot_invert(F, t), 1.0, 1e-7) << t;
  }
}

TEST(Talbot, Exponential) {
  // L^-1[1/(s+a)] = exp(-a t).
  const double a = 3.0;
  const LaplaceFn F = [a](cplx s) { return 1.0 / (s + a); };
  for (double t : {0.05, 0.3, 1.0, 2.0}) {
    EXPECT_NEAR(talbot_invert(F, t), std::exp(-a * t), 1e-7) << t;
  }
}

TEST(Talbot, Ramp) {
  // L^-1[1/s^2] = t.
  const LaplaceFn F = [](cplx s) { return 1.0 / (s * s); };
  EXPECT_NEAR(talbot_invert(F, 2.5), 2.5, 1e-7);
}

TEST(Talbot, DampedOscillation) {
  // L^-1[w/((s+a)^2 + w^2)] = exp(-a t) sin(w t).
  const double a = 0.5, w = 4.0;
  const LaplaceFn F = [=](cplx s) { return w / ((s + a) * (s + a) + w * w); };
  for (double t : {0.2, 0.7, 1.9, 3.0}) {
    EXPECT_NEAR(talbot_invert(F, t, 64), std::exp(-a * t) * std::sin(w * t),
                2e-5) << t;
  }
}

TEST(Talbot, MatchesTwoPoleClosedFormStepResponse) {
  // The Pade step response has the closed form implemented in core::TwoPole;
  // inverting H(s)/s numerically must reproduce it.  Underdamped case.
  const rlc::core::PadeCoeffs pc{2e-10, 3e-20};  // disc = 4e-20 - 12e-20 < 0
  const rlc::core::TwoPole sys(pc);
  const LaplaceFn F = [&pc](cplx s) {
    return 1.0 / (s * (1.0 + s * pc.b1 + s * s * pc.b2));
  };
  for (double t : {1e-11, 1e-10, 3e-10, 1e-9}) {
    EXPECT_NEAR(talbot_invert(F, t, 64), sys.step_response(t), 2e-5) << t;
  }
}

TEST(Talbot, MatchesTwoPoleOverdamped) {
  const rlc::core::PadeCoeffs pc{5e-10, 1e-20};  // disc > 0
  const rlc::core::TwoPole sys(pc);
  const LaplaceFn F = [&pc](cplx s) {
    return 1.0 / (s * (1.0 + s * pc.b1 + s * s * pc.b2));
  };
  for (double t : {1e-11, 2e-10, 1e-9, 4e-9}) {
    EXPECT_NEAR(talbot_invert(F, t, 64), sys.step_response(t), 2e-5) << t;
  }
}

TEST(Talbot, VectorOverload) {
  const LaplaceFn F = [](cplx s) { return 1.0 / (s + 1.0); };
  const auto v = talbot_invert(F, std::vector<double>{0.5, 1.0}, 48);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_NEAR(v[0], std::exp(-0.5), 1e-7);
  EXPECT_NEAR(v[1], std::exp(-1.0), 1e-7);
}

TEST(Talbot, InputValidation) {
  const LaplaceFn F = [](cplx s) { return 1.0 / s; };
  EXPECT_THROW(talbot_invert(F, 0.0), std::invalid_argument);
  EXPECT_THROW(talbot_invert(F, -1.0), std::invalid_argument);
  EXPECT_THROW(talbot_invert(F, 1.0, 2), std::invalid_argument);
}

// ---- Shared-contour window inversion (TalbotContour). ----

TEST(TalbotWindow, MatchesPerTInversionAcrossTheWindow) {
  // One contour fixed at t_max must reproduce the per-t inversion for every
  // time in [t_max/lambda, t_max], including the window foot.
  const double a = 3.0;
  const LaplaceFn F = [a](cplx s) { return 1.0 / (s * (s + a)) * a; };
  const double t_max = 2.0, lambda = 4.0;
  std::vector<double> times;
  for (int i = 0; i <= 16; ++i) {
    times.push_back(t_max / lambda * std::pow(lambda, i / 16.0));
  }
  const auto windowed = talbot_invert_window(F, times, t_max, 48, lambda);
  ASSERT_EQ(windowed.size(), times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    const double exact = 1.0 - std::exp(-a * times[i]);
    EXPECT_NEAR(windowed[i], exact, 1e-6) << "t = " << times[i];
    EXPECT_NEAR(windowed[i], talbot_invert(F, times[i], 48), 1e-6)
        << "t = " << times[i];
  }
}

TEST(TalbotWindow, ContourCountsCostAndEvaluates) {
  // Construction samples F exactly M times; eval() afterwards is free of
  // further transfer evaluations.
  int calls = 0;
  const LaplaceFn F = [&calls](cplx s) {
    ++calls;
    return 1.0 / (s + 1.0);
  };
  const TalbotContour contour(F, 1.0, 32);
  EXPECT_EQ(calls, 32);
  EXPECT_EQ(contour.points(), 32);
  EXPECT_DOUBLE_EQ(contour.t_max(), 1.0);
  EXPECT_NEAR(contour.eval(1.0), std::exp(-1.0), 1e-7);
  EXPECT_NEAR(contour.eval(0.5), std::exp(-0.5), 1e-6);
  EXPECT_EQ(calls, 32);  // eval() reused the cached samples
}

TEST(TalbotWindow, FootAccuracyDegradesGracefully) {
  // A lambda = 4 window stays usable from top to foot.  For a smooth pole
  // the whole window is near the double-precision saturation plateau (the
  // top, where exp(Re s * t) roundoff amplification is largest, is a few
  // 1e-9 at M = 48); an oscillatory F with poles off the negative real
  // axis is where the foot visibly degrades, yet stays within ~1e-5.
  const LaplaceFn F = [](cplx s) { return 1.0 / (s + 1.0); };
  const TalbotContour contour(F, 4.0, 48);
  const double err_top = std::abs(contour.eval(4.0) - std::exp(-4.0));
  const double err_foot = std::abs(contour.eval(1.0) - std::exp(-1.0));
  EXPECT_LT(err_top, 2e-8);
  EXPECT_LT(err_foot, 1e-5);

  // Fast damped sine: f(t) = e^{-t} sin(15t), poles at -1 +/- 15i, i.e.
  // far off the negative real axis relative to the contour radius.  This
  // is the regime where sharing a contour costs accuracy: the anchor time
  // converges while the foot visibly degrades.
  const LaplaceFn G = [](cplx s) {
    return 15.0 / ((s + 1.0) * (s + 1.0) + 225.0);
  };
  const auto g = [](double t) { return std::exp(-t) * std::sin(15.0 * t); };
  const TalbotContour osc(G, 4.0, 48);
  const double osc_top = std::abs(osc.eval(4.0) - g(4.0));
  const double osc_foot = std::abs(osc.eval(1.0) - g(1.0));
  EXPECT_LT(osc_top, 0.02);
  EXPECT_GT(osc_foot, 10.0 * osc_top);
}

// ---- SoA batch evaluator plumbing (BatchLaplaceFnRef overloads). ----

namespace {
/// Batch form of 1/(s + a), counting span calls and total nodes.
struct BatchPole {
  double a;
  int* calls;
  std::size_t* nodes;
  void operator()(const double* sr, const double* si, double* fr, double* fi,
                  std::size_t n) const {
    ++*calls;
    *nodes += n;
    for (std::size_t i = 0; i < n; ++i) {
      const cplx v = 1.0 / (cplx{sr[i], si[i]} + a);
      fr[i] = v.real();
      fi[i] = v.imag();
    }
  }
};
}  // namespace

TEST(TalbotBatch, InvertMatchesPerPoint) {
  // The batch overload feeds all M nodes to F in ONE span call and must
  // reproduce the per-point inversion.  Agreement is bounded by the
  // contour's own cancellation roundoff, not ulps: the sum cancels terms
  // of magnitude exp(2M/5) ~ 2e8 down to O(1), so independently rounded
  // exp evaluations legitimately differ at the ~1e-8 absolute level —
  // the same noise floor the inversion accuracy itself sits on.
  const double a = 3.0;
  int calls = 0;
  std::size_t nodes = 0;
  const BatchPole batch{a, &calls, &nodes};
  const LaplaceFn point = [a](cplx s) { return 1.0 / (s + a); };
  for (double t : {0.05, 0.3, 1.0, 2.0}) {
    const double got = talbot_invert(BatchLaplaceFnRef(batch), t, 48);
    EXPECT_NEAR(got, std::exp(-a * t), 1e-7) << t;
    EXPECT_NEAR(got, talbot_invert(point, t, 48), 5e-8) << t;
  }
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(nodes, 4u * 48u);
}

TEST(TalbotBatch, ContourMatchesPerPointConstruction) {
  // A TalbotContour built from the batch evaluator carries the same cached
  // samples as one built per-point: eval() agrees bit-for-bit across the
  // whole window.
  const double a = 3.0;
  int calls = 0;
  std::size_t nodes = 0;
  const BatchPole batch{a, &calls, &nodes};
  const LaplaceFn point = [a](cplx s) { return 1.0 / (s + a); };
  const TalbotContour from_batch(BatchLaplaceFnRef(batch), 2.0, 48);
  const TalbotContour from_point(LaplaceFnRef(point), 2.0, 48);
  EXPECT_EQ(calls, 1);       // one span call covers the whole contour
  EXPECT_EQ(nodes, 48u);
  for (double t : {0.5, 0.9, 1.4, 2.0}) {
    EXPECT_DOUBLE_EQ(from_batch.eval(t), from_point.eval(t)) << t;
    EXPECT_NEAR(from_batch.eval(t), std::exp(-a * t), 1e-6) << t;
  }
}

TEST(TalbotBatch, VectorTimesOverload) {
  int calls = 0;
  std::size_t nodes = 0;
  const BatchPole batch{1.0, &calls, &nodes};
  const auto v = talbot_invert(BatchLaplaceFnRef(batch),
                               std::vector<double>{0.5, 1.0}, 48);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_NEAR(v[0], std::exp(-0.5), 1e-7);
  EXPECT_NEAR(v[1], std::exp(-1.0), 1e-7);
}

TEST(TalbotWindow, RejectsTimesOutsideTheWindow) {
  const LaplaceFn F = [](cplx s) { return 1.0 / s; };
  // lambda < 1 is rejected outright.
  EXPECT_THROW(talbot_invert_window(F, {1.0}, 1.0, 48, 0.5),
               std::invalid_argument);
  // Times below t_max/lambda or above t_max are rejected, not silently
  // extrapolated into the inaccurate deep-foot regime.
  EXPECT_THROW(talbot_invert_window(F, {0.1}, 1.0, 48, 4.0),
               std::invalid_argument);
  EXPECT_THROW(talbot_invert_window(F, {1.5}, 1.0, 48, 4.0),
               std::invalid_argument);
  EXPECT_NO_THROW(talbot_invert_window(F, {0.25, 1.0}, 1.0, 48, 4.0));
  // TalbotContour itself enforces (0, t_max].
  const TalbotContour contour(F, 1.0, 32);
  EXPECT_THROW(contour.eval(0.0), std::invalid_argument);
  EXPECT_THROW(contour.eval(1.1), std::invalid_argument);
  EXPECT_THROW(TalbotContour(F, 0.0, 32), std::invalid_argument);
  EXPECT_THROW(TalbotContour(F, 1.0, 3), std::invalid_argument);
}

}  // namespace
}  // namespace rlc::laplace
