#include "rlc/laplace/talbot.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rlc/core/pade.hpp"
#include "rlc/core/two_pole.hpp"

namespace rlc::laplace {
namespace {

using cplx = std::complex<double>;

TEST(Talbot, StepFunction) {
  // L^-1[1/s] = 1.
  const LaplaceFn F = [](cplx s) { return 1.0 / s; };
  for (double t : {0.1, 1.0, 10.0}) {
    EXPECT_NEAR(talbot_invert(F, t), 1.0, 1e-7) << t;
  }
}

TEST(Talbot, Exponential) {
  // L^-1[1/(s+a)] = exp(-a t).
  const double a = 3.0;
  const LaplaceFn F = [a](cplx s) { return 1.0 / (s + a); };
  for (double t : {0.05, 0.3, 1.0, 2.0}) {
    EXPECT_NEAR(talbot_invert(F, t), std::exp(-a * t), 1e-7) << t;
  }
}

TEST(Talbot, Ramp) {
  // L^-1[1/s^2] = t.
  const LaplaceFn F = [](cplx s) { return 1.0 / (s * s); };
  EXPECT_NEAR(talbot_invert(F, 2.5), 2.5, 1e-7);
}

TEST(Talbot, DampedOscillation) {
  // L^-1[w/((s+a)^2 + w^2)] = exp(-a t) sin(w t).
  const double a = 0.5, w = 4.0;
  const LaplaceFn F = [=](cplx s) { return w / ((s + a) * (s + a) + w * w); };
  for (double t : {0.2, 0.7, 1.9, 3.0}) {
    EXPECT_NEAR(talbot_invert(F, t, 64), std::exp(-a * t) * std::sin(w * t),
                2e-5) << t;
  }
}

TEST(Talbot, MatchesTwoPoleClosedFormStepResponse) {
  // The Pade step response has the closed form implemented in core::TwoPole;
  // inverting H(s)/s numerically must reproduce it.  Underdamped case.
  const rlc::core::PadeCoeffs pc{2e-10, 3e-20};  // disc = 4e-20 - 12e-20 < 0
  const rlc::core::TwoPole sys(pc);
  const LaplaceFn F = [&pc](cplx s) {
    return 1.0 / (s * (1.0 + s * pc.b1 + s * s * pc.b2));
  };
  for (double t : {1e-11, 1e-10, 3e-10, 1e-9}) {
    EXPECT_NEAR(talbot_invert(F, t, 64), sys.step_response(t), 2e-5) << t;
  }
}

TEST(Talbot, MatchesTwoPoleOverdamped) {
  const rlc::core::PadeCoeffs pc{5e-10, 1e-20};  // disc > 0
  const rlc::core::TwoPole sys(pc);
  const LaplaceFn F = [&pc](cplx s) {
    return 1.0 / (s * (1.0 + s * pc.b1 + s * s * pc.b2));
  };
  for (double t : {1e-11, 2e-10, 1e-9, 4e-9}) {
    EXPECT_NEAR(talbot_invert(F, t, 64), sys.step_response(t), 2e-5) << t;
  }
}

TEST(Talbot, VectorOverload) {
  const LaplaceFn F = [](cplx s) { return 1.0 / (s + 1.0); };
  const auto v = talbot_invert(F, std::vector<double>{0.5, 1.0}, 48);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_NEAR(v[0], std::exp(-0.5), 1e-7);
  EXPECT_NEAR(v[1], std::exp(-1.0), 1e-7);
}

TEST(Talbot, InputValidation) {
  const LaplaceFn F = [](cplx s) { return 1.0 / s; };
  EXPECT_THROW(talbot_invert(F, 0.0), std::invalid_argument);
  EXPECT_THROW(talbot_invert(F, -1.0), std::invalid_argument);
  EXPECT_THROW(talbot_invert(F, 1.0, 2), std::invalid_argument);
}

}  // namespace
}  // namespace rlc::laplace
