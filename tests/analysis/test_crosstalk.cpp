// Closed-form crosstalk metrics: Miller capacitance range, the
// two-exponential modal surrogate (peak / t_peak / width closed forms vs a
// brute-force scan), sampled-record metrics, and the surrogate's agreement
// with the exact coupled engine on a mildly coupled bus.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rlc/analysis/crosstalk.hpp"
#include "rlc/core/delay.hpp"
#include "rlc/core/elmore.hpp"
#include "rlc/core/exact_delay.hpp"
#include "rlc/core/technology.hpp"
#include "rlc/tline/coupled_line.hpp"

namespace {

using rlc::analysis::miller_effective_capacitance;
using rlc::analysis::modal_victim_noise;
using rlc::analysis::NoiseEstimate;
using rlc::analysis::peak_noise_metrics;
using rlc::analysis::SwitchingMode;
using rlc::analysis::two_exponential_noise;

TEST(MillerCapacitance, CoversThePaperRange) {
  const double c = 2.0e-10, cc = 6.0e-11;
  const double quiet =
      miller_effective_capacitance(c, cc, SwitchingMode::kVictimQuiet);
  const double inphase =
      miller_effective_capacitance(c, cc, SwitchingMode::kInPhase);
  const double anti =
      miller_effective_capacitance(c, cc, SwitchingMode::kAntiPhase);
  EXPECT_DOUBLE_EQ(inphase, c);
  EXPECT_DOUBLE_EQ(quiet, c + cc);
  EXPECT_DOUBLE_EQ(anti, c + 2.0 * cc);
  // Bus interior conductor: two neighbours double the coupling term.
  EXPECT_DOUBLE_EQ(
      miller_effective_capacitance(c, cc, SwitchingMode::kAntiPhase, 2),
      c + 4.0 * cc);
  EXPECT_THROW(miller_effective_capacitance(-1.0, cc, SwitchingMode::kInPhase),
               std::domain_error);
  EXPECT_THROW(
      miller_effective_capacitance(c, cc, SwitchingMode::kInPhase, -1),
      std::domain_error);
}

TEST(TwoExponentialNoise, ClosedFormMatchesBruteForceScan) {
  const double tau_f = 2.0e-12, tau_s = 5.0e-12, a = 0.5;
  const NoiseEstimate est = two_exponential_noise(tau_f, tau_s, a);

  double peak = 0.0, t_peak = 0.0;
  const auto v = [&](double t) {
    return a * (std::exp(-t / tau_s) - std::exp(-t / tau_f));
  };
  for (double t = 0.0; t < 50.0e-12; t += 1.0e-15) {
    if (v(t) > peak) {
      peak = v(t);
      t_peak = t;
    }
  }
  EXPECT_NEAR(est.peak, peak, 1e-6 * peak);
  EXPECT_NEAR(est.t_peak, t_peak, 2e-15);
  // Width: scan the half-magnitude interval.
  double t_l = 0.0, t_r = 0.0;
  for (double t = 0.0; t < 50.0e-12; t += 1.0e-15) {
    if (v(t) >= 0.5 * peak) {
      if (t_l == 0.0) t_l = t;
      t_r = t;
    }
  }
  EXPECT_NEAR(est.width, t_r - t_l, 5e-15);
  // Order of the time constants is irrelevant; sign of the amplitude too.
  const NoiseEstimate swapped = two_exponential_noise(tau_s, tau_f, -a);
  EXPECT_DOUBLE_EQ(swapped.peak, est.peak);
  EXPECT_DOUBLE_EQ(swapped.t_peak, est.t_peak);
}

TEST(TwoExponentialNoise, DegenerateAndInvalidInputs) {
  const NoiseEstimate zero = two_exponential_noise(1e-12, 1e-12, 0.5);
  EXPECT_EQ(zero.peak, 0.0);
  EXPECT_EQ(zero.width, 0.0);
  EXPECT_EQ(two_exponential_noise(1e-12, 2e-12, 0.0).peak, 0.0);
  EXPECT_THROW(two_exponential_noise(0.0, 1e-12, 0.5), std::domain_error);
  EXPECT_THROW(two_exponential_noise(1e-12, -1.0, 0.5), std::domain_error);
}

TEST(PeakNoiseMetrics, RecoversTheClosedFormFromSamples) {
  const double tau_f = 1.5e-12, tau_s = 6.0e-12, a = 0.4;
  const NoiseEstimate exact = two_exponential_noise(tau_f, tau_s, a);
  std::vector<double> t, v;
  const double base = 0.7;  // nonzero baseline exercises the deviation path
  for (double x = 0.0; x < 60.0e-12; x += 2.0e-14) {
    t.push_back(x);
    v.push_back(base + a * (std::exp(-x / tau_s) - std::exp(-x / tau_f)));
  }
  const NoiseEstimate m = peak_noise_metrics(t, v, base);
  EXPECT_NEAR(m.peak, exact.peak, 1e-3 * exact.peak);
  EXPECT_NEAR(m.t_peak, exact.t_peak, 4e-14);
  EXPECT_NEAR(m.width, exact.width, 1e-2 * exact.width);
}

TEST(PeakNoiseMetrics, NegativePulseAndValidation) {
  std::vector<double> t{0.0, 1.0, 2.0, 3.0, 4.0};
  std::vector<double> v{0.0, -0.2, -1.0, -0.2, 0.0};
  const NoiseEstimate m = peak_noise_metrics(t, v, 0.0);
  EXPECT_DOUBLE_EQ(m.peak, 1.0);
  EXPECT_DOUBLE_EQ(m.t_peak, 2.0);
  EXPECT_NEAR(m.width, 1.25, 1e-12);  // interpolated half crossings

  EXPECT_EQ(peak_noise_metrics({}, {}, 0.0).peak, 0.0);
  std::vector<double> bad_t{0.0, 0.0, 1.0};
  std::vector<double> bad_v{0.0, 1.0, 0.0};
  EXPECT_THROW(peak_noise_metrics(bad_t, bad_v, 0.0), std::invalid_argument);
  EXPECT_THROW(peak_noise_metrics(t, bad_v, 0.0), std::invalid_argument);
}

TEST(ModalVictimNoise, TracksTheExactEngineOnAMildBus) {
  // The surrogate feeds optimizer seeding, so it must sit in the right
  // ballpark (tens of percent), not match exactly.
  const auto tech = rlc::core::Technology::nm250();
  const auto rc = rlc::core::rc_optimum(tech.rep, tech.r, tech.c);
  const auto line = tech.line(5.0e-7);
  const double cc = 0.25 * line.c;
  const auto bus = rlc::tline::symmetric_bus(line, cc, 0.1, 2);
  const auto modal = rlc::tline::modal_decomposition(bus);

  const auto d_even =
      rlc::core::segment_delay(tech.rep, modal.modes[0], rc.h, rc.k);
  const auto d_odd =
      rlc::core::segment_delay(tech.rep, modal.modes[1], rc.h, rc.k);
  ASSERT_TRUE(d_even.converged);
  ASSERT_TRUE(d_odd.converged);
  const NoiseEstimate est = modal_victim_noise(d_even.tau, d_odd.tau);
  ASSERT_GT(est.peak, 0.0);

  rlc::tline::LineParams eff = line;
  eff.c += 2.0 * cc;
  const auto d = rlc::core::segment_delay(tech.rep, eff, rc.h, rc.k);
  const rlc::core::CoupledExcitation exc{{0.0, 0.0}, {1.0, 0.0}};
  const auto exact = rlc::core::exact_coupled_victim_noise(
      bus, rc.h, tech.rep.scaled(rc.k), exc, 1, d.tau);
  ASSERT_GT(exact.peak, 0.0);
  // One-pole modal edges are softer than the true two-pole/RLC ones, so
  // the surrogate reads low; it must stay within a small factor to be a
  // useful seed.
  EXPECT_GT(est.peak, 0.25 * exact.peak);
  EXPECT_LT(est.peak, 2.0 * exact.peak);
  EXPECT_GT(est.t_peak, 0.25 * exact.t_peak);
  EXPECT_LT(est.t_peak, 4.0 * exact.t_peak);
}

}  // namespace
