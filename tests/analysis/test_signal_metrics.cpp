#include "rlc/analysis/signal_metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rlc/math/constants.hpp"

namespace rlc::analysis {
namespace {

struct Wave {
  std::vector<double> t, y;
};

Wave sine_wave(double freq, double amp, double offset, double tstop, int n) {
  Wave w;
  for (int i = 0; i < n; ++i) {
    const double tt = tstop * i / (n - 1);
    w.t.push_back(tt);
    w.y.push_back(offset + amp * std::sin(2.0 * rlc::math::kPi * freq * tt));
  }
  return w;
}

TEST(SignalMetrics, RisingCrossingsOfSine) {
  // 5.5 periods of a 1 MHz sine: upward crossings of the offset level fall
  // at t = k/f for k = 1..5 (the t = 0 start point is not a crossing).
  const auto w = sine_wave(1e6, 1.0, 0.5, 5.5e-6, 55001);
  const auto xs = threshold_crossings(w.t, w.y, 0.5, Edge::kRising);
  ASSERT_EQ(xs.size(), 5u);
  EXPECT_NEAR(xs[0], 1e-6, 2e-9);
  EXPECT_NEAR(xs[1] - xs[0], 1e-6, 2e-9);
}

TEST(SignalMetrics, CrossingInterpolationIsAccurate) {
  // Linear ramp crossing 0.5 exactly at t = 0.5.
  const std::vector<double> t{0.0, 1.0};
  const std::vector<double> y{0.0, 1.0};
  const auto xs = threshold_crossings(t, y, 0.5, Edge::kRising);
  ASSERT_EQ(xs.size(), 1u);
  EXPECT_NEAR(xs[0], 0.5, 1e-12);
}

TEST(SignalMetrics, FallingEdge) {
  const std::vector<double> t{0.0, 1.0, 2.0};
  const std::vector<double> y{1.0, -1.0, 1.0};
  EXPECT_EQ(threshold_crossings(t, y, 0.0, Edge::kFalling).size(), 1u);
  EXPECT_EQ(threshold_crossings(t, y, 0.0, Edge::kRising).size(), 1u);
}

TEST(SignalMetrics, FirstCrossingAfter) {
  const auto w = sine_wave(1e6, 1.0, 0.0, 5e-6, 50001);
  const auto x = first_crossing_after(w.t, w.y, 0.0, Edge::kRising, 2.2e-6);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR(*x, 3e-6, 2e-9);
  EXPECT_FALSE(
      first_crossing_after(w.t, w.y, 0.0, Edge::kRising, 9e-6).has_value());
}

TEST(SignalMetrics, OscillationPeriodOfSine) {
  const auto w = sine_wave(2.5e6, 1.0, 0.0, 4e-6, 40001);
  const auto p = oscillation_period(w.t, w.y, 0.0, 0.0, 3);
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(*p, 0.4e-6, 1e-9);
}

TEST(SignalMetrics, PeriodRequiresEnoughCycles) {
  const auto w = sine_wave(1e6, 1.0, 0.0, 2.5e-6, 25001);  // only 2 crossings
  EXPECT_FALSE(oscillation_period(w.t, w.y, 0.0, 0.0, 3).has_value());
}

TEST(SignalMetrics, PeriodIgnoresSamplesBeforeTBegin) {
  // Fast garbage before t_begin must not contaminate the estimate.
  Wave w = sine_wave(1e6, 1.0, 0.0, 6e-6, 60001);
  const auto p = oscillation_period(w.t, w.y, 0.0, 2e-6, 3);
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(*p, 1e-6, 2e-9);
}

TEST(SignalMetrics, RailExcursion) {
  const std::vector<double> y{-0.3, 0.5, 1.4, 1.0, 0.0};
  const auto r = rail_excursion(y, 1.2);
  EXPECT_NEAR(r.overshoot, 0.2, 1e-12);
  EXPECT_NEAR(r.undershoot, 0.3, 1e-12);
  EXPECT_DOUBLE_EQ(r.v_max, 1.4);
  EXPECT_DOUBLE_EQ(r.v_min, -0.3);
}

TEST(SignalMetrics, RailExcursionCleanSignal) {
  const std::vector<double> y{0.0, 0.6, 1.2};
  const auto r = rail_excursion(y, 1.2);
  EXPECT_DOUBLE_EQ(r.overshoot, 0.0);
  EXPECT_DOUBLE_EQ(r.undershoot, 0.0);
}

TEST(SignalMetrics, GlitchCountSeesRinging) {
  // Square-ish wave with a ringing dip through the threshold: extra
  // crossing pair shows up in the counts.
  const std::vector<double> t{0, 1, 2, 3, 4, 5, 6, 7};
  const std::vector<double> y{0, 1, 0.4, 1, 1, 0, 0, 0};  // dip at t=2
  const auto g = count_crossings(t, y, 0.5);
  EXPECT_EQ(g.rising, 2);   // genuine rise + recovery from dip
  EXPECT_EQ(g.falling, 2);  // dip + genuine fall
}

TEST(SignalMetrics, RiseTimeOfExponential) {
  // 10-90% rise time of 1 - e^{-t/tau} is tau (ln 0.9/0.1... ) = tau ln 9.
  std::vector<double> t, y;
  const double tau = 1e-9;
  for (int i = 0; i <= 20000; ++i) {
    const double tt = 10e-9 * i / 20000;
    t.push_back(tt);
    y.push_back(1.0 - std::exp(-tt / tau));
  }
  const auto rt = rise_time(t, y, 1.0);
  ASSERT_TRUE(rt.has_value());
  EXPECT_NEAR(*rt, tau * std::log(9.0), 1e-12 + 2e-3 * tau);
}

TEST(SignalMetrics, RiseTimeUnreachedLevel) {
  const std::vector<double> t{0.0, 1.0, 2.0};
  const std::vector<double> y{0.0, 0.5, 0.6};  // never reaches 0.9
  EXPECT_FALSE(rise_time(t, y, 1.0).has_value());
  EXPECT_THROW(rise_time(t, y, 1.0, 0.9, 0.1), std::invalid_argument);
}

TEST(SignalMetrics, SettlingTimeOfDampedRinging) {
  std::vector<double> t, y;
  for (int i = 0; i <= 40000; ++i) {
    const double tt = 20.0 * i / 40000;
    t.push_back(tt);
    y.push_back(1.0 + std::exp(-tt) * std::cos(8.0 * tt));
  }
  // |y - 1| = e^{-t} |cos| <= e^{-t}; 2% band entered for good at the last
  // excursion beyond 0.02, which occurs near t ~ ln(50) at a cos peak.
  const auto st = settling_time(t, y, 1.0, 0.02);
  ASSERT_TRUE(st.has_value());
  EXPECT_GT(*st, 2.5);
  EXPECT_LT(*st, std::log(50.0) + 0.1);
}

TEST(SignalMetrics, SettlingTimeEdgeCases) {
  const std::vector<double> t{0.0, 1.0, 2.0};
  const std::vector<double> settled{1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(*settling_time(t, settled, 1.0), 0.0);
  const std::vector<double> never{1.0, 1.0, 5.0};
  EXPECT_FALSE(settling_time(t, never, 1.0).has_value());
  EXPECT_THROW(settling_time(t, settled, 1.0, 0.0), std::invalid_argument);
}

TEST(SignalMetrics, SizeMismatchThrows) {
  const std::vector<double> t{0.0, 1.0};
  const std::vector<double> y{0.0};
  EXPECT_THROW(threshold_crossings(t, y, 0.5, Edge::kRising),
               std::invalid_argument);
}

}  // namespace
}  // namespace rlc::analysis
