#include "rlc/analysis/reliability.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rlc::analysis {
namespace {

TEST(OxideStress, CleanWaveformWithinMargin) {
  const std::vector<double> v{0.0, 0.6, 1.2, 1.25};
  const auto s = oxide_stress(v, 1.2);
  EXPECT_NEAR(s.v_peak, 1.25, 1e-12);
  EXPECT_NEAR(s.overstress_ratio, 1.25 / 1.2, 1e-12);
  EXPECT_FALSE(s.exceeds_margin);  // within the 10% budget
}

TEST(OxideStress, OvershootBeyondMarginFlagged) {
  const std::vector<double> v{0.0, 1.2, 1.5};
  const auto s = oxide_stress(v, 1.2);
  EXPECT_TRUE(s.exceeds_margin);
}

TEST(OxideStress, NegativeExcursionsCountViaMagnitude) {
  // A -1.4 V undershoot stresses the oxide exactly like +1.4 V.
  const std::vector<double> v{0.0, -1.4};
  const auto s = oxide_stress(v, 1.2);
  EXPECT_NEAR(s.v_peak, 1.4, 1e-12);
  EXPECT_TRUE(s.exceeds_margin);
}

TEST(OxideStress, CustomMargin) {
  const std::vector<double> v{1.3};
  EXPECT_FALSE(oxide_stress(v, 1.2, 1.2).exceeds_margin);
  EXPECT_TRUE(oxide_stress(v, 1.2, 1.05).exceeds_margin);
  EXPECT_THROW(oxide_stress(v, 0.0), std::domain_error);
}

TEST(CurrentDensity, DcWaveform) {
  const std::vector<double> t{0.0, 1.0};
  const std::vector<double> i{1e-3, 1e-3};
  const double area = 5e-12;  // 2 um x 2.5 um
  const auto cd = current_density(t, i, area);
  EXPECT_NEAR(cd.j_peak, 2e8, 1.0);
  EXPECT_NEAR(cd.j_rms, 2e8, 1.0);
  EXPECT_FALSE(cd.em_concern);
  EXPECT_FALSE(cd.joule_concern);
}

TEST(CurrentDensity, BudgetsTrigger) {
  const std::vector<double> t{0.0, 1.0};
  const std::vector<double> i{0.5, 0.5};  // 0.5 A through 5 um^2: 1e11 A/m^2
  const auto cd = current_density(t, i, 5e-12);
  EXPECT_TRUE(cd.em_concern);
  EXPECT_FALSE(cd.joule_concern);  // peak budget 1e12 not hit
  const auto cd2 = current_density(t, i, 4e-13);
  EXPECT_TRUE(cd2.joule_concern);
}

TEST(CurrentDensity, PeakSeesTransientRmsDoesNot) {
  // A short spike dominates the peak but barely moves the rms.
  std::vector<double> t, i;
  for (int n = 0; n <= 1000; ++n) {
    t.push_back(n * 1e-3);
    i.push_back(n == 500 ? 1.0 : 1e-3);
  }
  const auto cd = current_density(t, i, 1e-12);
  EXPECT_NEAR(cd.j_peak, 1e12, 1e9);
  EXPECT_LT(cd.j_rms, 0.1 * cd.j_peak);
}

TEST(CurrentDensity, InputValidation) {
  const std::vector<double> t{0.0, 1.0};
  const std::vector<double> i{1.0, 1.0};
  EXPECT_THROW(current_density(t, i, 0.0), std::domain_error);
}

}  // namespace
}  // namespace rlc::analysis
