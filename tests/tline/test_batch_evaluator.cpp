#include "rlc/tline/batch_evaluator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <limits>
#include <random>
#include <vector>

#include "rlc/base/simd.hpp"
#include "rlc/core/technology.hpp"
#include "rlc/tline/evaluator.hpp"
#include "rlc/tline/transfer.hpp"

namespace rlc::tline {
namespace {

using cplx = std::complex<double>;

struct Case {
  LineParams line;
  double h;
  DriverLoad dl;
};

Case paper_case(double l) {
  const auto tech = rlc::core::Technology::nm250();
  Case c;
  c.line = tech.line(l);
  c.h = 0.0144;
  c.dl = tech.rep.scaled(578.0);
  return c;
}

/// Max relative disagreement between the batch output and a per-point
/// reference, with the overflow-saturation contract folded in: lanes where
/// the reference collapsed to ~0 (|ref| below tiny) must also be ~0 in the
/// batch output, rather than contributing a meaningless relative error.
double max_rel_err(const std::vector<cplx>& ref, const std::vector<double>& hr,
                   const std::vector<double>& hi) {
  double worst = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const double rm = std::abs(ref[i]);
    const double gm = std::hypot(hr[i], hi[i]);
    EXPECT_TRUE(std::isfinite(gm)) << "batch lane " << i << " not finite";
    if (!std::isfinite(rm) || rm < 1e-280) {
      EXPECT_LT(gm, 1e-280) << "lane " << i << ": ref saturated, batch not";
      continue;
    }
    worst = std::max(worst, std::abs(cplx{hr[i], hi[i]} - ref[i]) / rm);
  }
  return worst;
}

TEST(BatchTransferEvaluator, MatchesPerPointEvaluatorOnContourNodes) {
  // Talbot-contour-shaped probe sets (the real workload): nodes along the
  // cotangent contour for a spread of anchor times, all three inductance
  // regimes.  Scalar batch vs memoized per-point must agree to 1e-12.
  std::mt19937_64 rng(7);
  for (double l : {0.0, 1e-6, 5e-6}) {
    const Case c = paper_case(l);
    const TransferEvaluator ref_ev(c.line, c.h, c.dl);
    const BatchTransferEvaluator batch(c.line, c.h, c.dl,
                                       simd::Level::kScalar);
    std::vector<double> sr, si;
    std::uniform_real_distribution<double> scale(8.0, 13.0);
    for (int contour = 0; contour < 12; ++contour) {
      const double r = std::pow(10.0, scale(rng));  // contour radius ~ 1/t
      for (int k = 0; k < 48; ++k) {
        const double theta = (k + 0.5) * M_PI / 48.0 - M_PI / 2.0;
        // r * theta * cot(theta) + i * r * theta, the fixed-Talbot node.
        const double tc = theta == 0.0 ? 1.0 : theta / std::tan(theta);
        sr.push_back(r * tc);
        si.push_back(r * theta);
      }
    }
    std::vector<cplx> ref(sr.size());
    for (std::size_t i = 0; i < sr.size(); ++i) {
      ref[i] = ref_ev.transfer(cplx{sr[i], si[i]});
    }
    std::vector<double> hr(sr.size()), hi(sr.size());
    batch.transfer(sr.data(), si.data(), hr.data(), hi.data(), sr.size());
    EXPECT_LT(max_rel_err(ref, hr, hi), 1e-12) << "l = " << l;
    EXPECT_EQ(batch.evaluations(), sr.size());
    EXPECT_EQ(batch.passes(), 1u);
  }
}

TEST(BatchTransferEvaluator, SimdLevelAgreesWithScalarLevel) {
  if (simd::detected_level() != simd::Level::kAvx2) {
    GTEST_SKIP() << "host has no AVX2; nothing to cross-check";
  }
  // Property-based sweep: random lines, random drivers, random nodes.
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  const auto tech = rlc::core::Technology::nm250();
  for (int trial = 0; trial < 20; ++trial) {
    Case c = paper_case(5e-6 * u(rng));
    c.h *= 0.25 + 2.0 * u(rng);
    c.dl = tech.rep.scaled(100.0 + 900.0 * u(rng));
    const BatchTransferEvaluator scalar(c.line, c.h, c.dl,
                                        simd::Level::kScalar);
    const BatchTransferEvaluator vector(c.line, c.h, c.dl,
                                        simd::Level::kAvx2);
    ASSERT_EQ(vector.level(), simd::Level::kAvx2);
    std::vector<double> sr(301), si(301);
    for (std::size_t i = 0; i < sr.size(); ++i) {
      const double mag = std::pow(10.0, 6.0 + 7.0 * u(rng));
      const double ang = M_PI * (u(rng) - 0.5);
      sr[i] = mag * std::cos(ang);
      si[i] = mag * std::sin(ang);
    }
    std::vector<double> ar(sr.size()), ai(sr.size());
    std::vector<double> br(sr.size()), bi(sr.size());
    scalar.step(sr.data(), si.data(), ar.data(), ai.data(), sr.size());
    vector.step(sr.data(), si.data(), br.data(), bi.data(), sr.size());
    for (std::size_t i = 0; i < sr.size(); ++i) {
      const double rm = std::hypot(ar[i], ai[i]);
      if (rm < 1e-280) {
        EXPECT_LT(std::hypot(br[i], bi[i]), 1e-280) << "trial " << trial;
        continue;
      }
      EXPECT_NEAR(br[i], ar[i], 1e-12 * rm) << "trial " << trial;
      EXPECT_NEAR(bi[i], ai[i], 1e-12 * rm) << "trial " << trial;
    }
  }
}

TEST(BatchTransferEvaluator, SeriesGuardIsSeamlessThroughThetaZero) {
  // |theta h| -> 0: the cosh/sinhc series guard must hand over to the
  // exp-based form with no jump, including exactly at the near-DC node.
  const Case c = paper_case(1e-6);
  const TransferEvaluator ref_ev(c.line, c.h, c.dl);
  const BatchTransferEvaluator batch(c.line, c.h, c.dl, simd::Level::kScalar);
  std::vector<double> sr, si;
  // Sweep |s| across the guard threshold (|theta h| = 1e-4 maps to some
  // |s| for this line; bracket it by orders of magnitude on both sides).
  for (int e = -6; e <= 10; ++e) {
    const double mag = std::pow(10.0, e);
    sr.push_back(mag);
    si.push_back(0.0);
    sr.push_back(0.0);
    si.push_back(mag);
    sr.push_back(mag * 0.6);
    si.push_back(-mag * 0.8);
  }
  std::vector<cplx> ref(sr.size());
  for (std::size_t i = 0; i < sr.size(); ++i) {
    ref[i] = ref_ev.transfer(cplx{sr[i], si[i]});
  }
  std::vector<double> hr(sr.size()), hi(sr.size());
  batch.transfer(sr.data(), si.data(), hr.data(), hi.data(), sr.size());
  EXPECT_LT(max_rel_err(ref, hr, hi), 1e-12);
}

TEST(BatchTransferEvaluator, DenormalAndHugeNodesStayFinite) {
  // Denormal |s| must behave like DC (H -> 1); huge |s| lanes where
  // exp(theta h) or the denominator overflows must saturate to exactly 0
  // (the per-point path reaches ~0 through IEEE inf arithmetic).
  const Case c = paper_case(1e-6);
  const TransferEvaluator ref_ev(c.line, c.h, c.dl);
  for (simd::Level level :
       {simd::Level::kScalar, simd::detected_level()}) {
    const BatchTransferEvaluator batch(c.line, c.h, c.dl, level);
    const std::vector<double> sr = {
        std::numeric_limits<double>::denorm_min(), 1e-300, 0.0,
        -3.4e13, 1e15, 1e18};
    const std::vector<double> si = {0.0, 1e-300, 4.9e-324,
                                    2.2e12, -1e15, 1e18};
    std::vector<double> hr(sr.size()), hi(sr.size());
    batch.transfer(sr.data(), si.data(), hr.data(), hi.data(), sr.size());
    for (std::size_t i = 0; i < sr.size(); ++i) {
      EXPECT_TRUE(std::isfinite(hr[i]) && std::isfinite(hi[i]))
          << "lane " << i << " at level " << simd::level_name(level);
      const cplx ref = ref_ev.transfer(cplx{sr[i], si[i]});
      const double rm = std::abs(ref);
      const double gm = std::hypot(hr[i], hi[i]);
      if (!std::isfinite(rm) || rm < 1e-280) {
        EXPECT_LT(gm, 1e-280) << "lane " << i;
      } else {
        EXPECT_NEAR(gm, rm, 1e-12 * rm) << "lane " << i;
      }
    }
  }
}

TEST(BatchTransferEvaluator, SinglePointOverloadsMatchSpans) {
  const Case c = paper_case(2e-6);
  const BatchTransferEvaluator batch(c.line, c.h, c.dl);
  const cplx s{1e8, 5e9};
  const double sr = s.real(), si = s.imag();
  double hr = 0.0, hi = 0.0;
  batch.transfer(&sr, &si, &hr, &hi, 1);
  EXPECT_EQ(batch.transfer(s), (cplx{hr, hi}));
  double fr = 0.0, fi = 0.0;
  batch.step(&sr, &si, &fr, &fi, 1);
  EXPECT_EQ(batch.step(s), (cplx{fr, fi}));
  // step = transfer / s, to roundoff of the two division orders.
  const cplx q = cplx{hr, hi} / s;
  EXPECT_NEAR(std::abs(cplx{fr, fi} - q), 0.0, 1e-14 * std::abs(q));
}

TEST(BatchTransferEvaluator, ValidatesTheLine) {
  Case c = paper_case(1e-6);
  c.line.r = -1.0;
  EXPECT_THROW(BatchTransferEvaluator(c.line, c.h, c.dl), std::domain_error);
}

TEST(BatchTransferEvaluator, BlockBoundariesAreInvisible) {
  // Spans longer than the internal block size must give identical results
  // to evaluating the same nodes in separate short calls.  Pinned at the
  // scalar level: the vector level's sub-width tail lanes legitimately go
  // through a different (libm) code path, so bit-identity only holds when
  // every lane uses the same kernel.
  const Case c = paper_case(1e-6);
  const BatchTransferEvaluator batch(c.line, c.h, c.dl, simd::Level::kScalar);
  std::mt19937_64 rng(13);
  std::uniform_real_distribution<double> u(8.0, 12.0);
  const std::size_t n = 3 * 128 + 17;  // crosses several kBlock boundaries
  std::vector<double> sr(n), si(n);
  for (std::size_t i = 0; i < n; ++i) {
    sr[i] = std::pow(10.0, u(rng));
    si[i] = std::pow(10.0, u(rng));
  }
  std::vector<double> ar(n), ai(n), br(n), bi(n);
  batch.transfer(sr.data(), si.data(), ar.data(), ai.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    batch.transfer(&sr[i], &si[i], &br[i], &bi[i], 1);
  }
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(ar[i], br[i]) << i;
    EXPECT_EQ(ai[i], bi[i]) << i;
  }
}

}  // namespace
}  // namespace rlc::tline
