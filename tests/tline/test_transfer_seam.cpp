// Seam test for the theta*h series-guard threshold shared between the
// scalar TransferEvaluator path (detail::cosh_sinhc, |th| test) and the SoA
// BatchTransferEvaluator (|th^2| test): both must read the ONE constant in
// transfer_detail.hpp, and the two kernels must agree across the switch.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "../../src/tline/src/transfer_detail.hpp"
#include "rlc/tline/batch_evaluator.hpp"
#include "rlc/tline/evaluator.hpp"

namespace {

using cplx = std::complex<double>;
using rlc::tline::BatchTransferEvaluator;
using rlc::tline::DriverLoad;
using rlc::tline::LineParams;
using rlc::tline::TransferEvaluator;
namespace detail = rlc::tline::detail;

TEST(SeriesGuardSeam, SquaredSpellingIsExactlyTheSquare) {
  EXPECT_EQ(detail::kSeriesGuardThresholdSq,
            detail::kSeriesGuardThreshold * detail::kSeriesGuardThreshold);
}

TEST(SeriesGuardSeam, CoshSinhcContinuousAcrossGuard) {
  // Just inside the guard the Taylor series runs; just outside, the exp
  // path.  Series truncation at |x| = 1e-4 is ~1e-28 while the exp path's
  // (e - 1/e) cancellation costs ~5e-13 there — the guard exists precisely
  // to cap that — so both branches must sit within ~1e-12 of libm.
  const double t = detail::kSeriesGuardThreshold;
  for (double phase : {0.0, 0.7, 1.9, 3.1, 4.4, 5.8}) {
    const cplx dir = std::polar(1.0, phase);
    for (double mag : {t * (1.0 - 1e-9), t * (1.0 + 1e-9)}) {
      const cplx x = mag * dir;
      cplx ch, shc;
      detail::cosh_sinhc(x, ch, shc);
      const cplx ch_ref = std::cosh(x);
      const cplx shc_ref = std::sinh(x) / x;
      EXPECT_NEAR(std::abs(ch - ch_ref), 0.0, 2e-12);
      EXPECT_NEAR(std::abs(shc - shc_ref), 0.0, 2e-12);
    }
  }
}

TEST(SeriesGuardSeam, ScalarAndBatchAgreeAcrossGuardBoundary) {
  // Line sized so |theta h| sweeps through the guard threshold as |s|
  // varies: theta h ~ sqrt(r c s) h = 1e-6 sqrt(s), so the seam sits at
  // s ~ 1e4.  Scan two decades around it on both axes.
  const LineParams line{1.0e4, 1.0e-9, 1.0e-10};
  const double h = 1.0e-3;
  const DriverLoad dl{120.0, 3.0e-15, 8.0e-15};

  TransferEvaluator scalar(line, h, dl);
  BatchTransferEvaluator batch(line, h, dl, rlc::simd::Level::kScalar);

  std::vector<double> sre, sim;
  for (double mag = 1.0e3; mag <= 1.0e5; mag *= 1.3) {
    sre.push_back(mag);
    sim.push_back(0.25 * mag);
  }
  std::vector<double> hre(sre.size()), him(sre.size());
  batch.transfer(sre.data(), sim.data(), hre.data(), him.data(), sre.size());
  for (std::size_t i = 0; i < sre.size(); ++i) {
    const cplx ref = scalar.transfer(cplx(sre[i], sim[i]));
    const cplx got(hre[i], him[i]);
    EXPECT_LE(std::abs(got - ref), 1e-12 * std::abs(ref))
        << "s = (" << sre[i] << ", " << sim[i] << ")";
  }
}

}  // namespace
