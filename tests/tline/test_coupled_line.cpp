#include "rlc/tline/coupled_line.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using rlc::tline::CoupledLine;
using rlc::tline::LineParams;
using rlc::tline::modal_decomposition;
using rlc::tline::ModalDecomposition;
using rlc::tline::symmetric_bus;

const LineParams kBase{25.0e3, 5.0e-7, 2.0e-10};  // ~paper-scale per-metre

TEST(CoupledLine, SingleConductorDegeneratesToLineParams) {
  CoupledLine line = symmetric_bus(kBase, 0.5, 0.5, 1);
  EXPECT_EQ(line.conductors(), 1u);
  EXPECT_DOUBLE_EQ(line.inductance(0, 0), kBase.l);
  EXPECT_DOUBLE_EQ(line.capacitance(0, 0), kBase.c);

  ModalDecomposition d = modal_decomposition(line);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_DOUBLE_EQ(d.modes[0].r, kBase.r);
  EXPECT_DOUBLE_EQ(d.modes[0].l, kBase.l);
  EXPECT_DOUBLE_EQ(d.modes[0].c, kBase.c);
  EXPECT_DOUBLE_EQ(d.vectors(0, 0), 1.0);
}

TEST(CoupledLine, TwoConductorMatricesMatchLadderTopology) {
  const double cc = 0.3 * kBase.c;
  const double km = 0.4;
  CoupledLine line = symmetric_bus(kBase, cc, km, 2);
  // C_ii = c + cc, C_ij = -cc — exactly add_coupled_ladders' junction caps.
  EXPECT_DOUBLE_EQ(line.capacitance(0, 0), kBase.c + cc);
  EXPECT_DOUBLE_EQ(line.capacitance(1, 1), kBase.c + cc);
  EXPECT_DOUBLE_EQ(line.capacitance(0, 1), -cc);
  EXPECT_DOUBLE_EQ(line.inductance(0, 0), kBase.l);
  EXPECT_DOUBLE_EQ(line.inductance(0, 1), km * kBase.l);
}

TEST(CoupledLine, TwoConductorEvenOddModes) {
  const double cc = 0.3 * kBase.c;
  const double km = 0.4;
  ModalDecomposition d = modal_decomposition(symmetric_bus(kBase, cc, km, 2));
  ASSERT_EQ(d.size(), 2u);
  // Mode 0 (smaller modal c) = even/in-phase: (r, l(1+km), c).
  EXPECT_NEAR(d.modes[0].c, kBase.c, 1e-9 * kBase.c);
  EXPECT_NEAR(d.modes[0].l, kBase.l * (1.0 + km), 1e-9 * kBase.l);
  // Mode 1 = odd/anti-phase: (r, l(1-km), c+2cc).
  EXPECT_NEAR(d.modes[1].c, kBase.c + 2.0 * cc, 1e-9 * kBase.c);
  EXPECT_NEAR(d.modes[1].l, kBase.l * (1.0 - km), 1e-9 * kBase.l);
  // Even column is (1,1)/sqrt2 up to sign, odd is (1,-1)/sqrt2.
  const double s2 = std::sqrt(0.5);
  EXPECT_NEAR(std::abs(d.vectors(0, 0)), s2, 1e-12);
  EXPECT_NEAR(d.vectors(0, 0), d.vectors(1, 0), 1e-12);
  EXPECT_NEAR(d.vectors(0, 1), -d.vectors(1, 1), 1e-12);
}

TEST(CoupledLine, WeightsAndRecomposeRoundTrip) {
  ModalDecomposition d =
      modal_decomposition(symmetric_bus(kBase, 0.2 * kBase.c, 0.25, 3));
  const std::vector<double> x{1.0, 0.0, -1.0};
  auto w = d.modal_weights(x);
  auto back = d.recompose(w);
  ASSERT_EQ(back.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(back[i], x[i], 1e-12);
}

TEST(CoupledLine, ThreeConductorModesPairConsistently) {
  const double cc = 0.25 * kBase.c;
  const double km = 0.3;
  ModalDecomposition d = modal_decomposition(symmetric_bus(kBase, cc, km, 3));
  ASSERT_EQ(d.size(), 3u);
  // Path-graph adjacency eigenvalues are {sqrt2, 0, -sqrt2}; each mode must
  // pair c_j = (c + 2cc) - cc*lam with l_j = l (1 + km*lam) for the SAME lam.
  for (const auto& m : d.modes) {
    const double lam_from_c = (kBase.c + 2.0 * cc - m.c) / cc;
    const double lam_from_l = (m.l / kBase.l - 1.0) / km;
    EXPECT_NEAR(lam_from_c, lam_from_l, 1e-9);
    EXPECT_NEAR(std::abs(lam_from_c) * (std::abs(lam_from_c) > 0.5 ? 1.0 : 0.0),
                std::abs(lam_from_c) > 0.5 ? std::sqrt(2.0) : 0.0, 1e-9);
  }
  // Sorted by ascending modal capacitance.
  EXPECT_LT(d.modes[0].c, d.modes[1].c);
  EXPECT_LT(d.modes[1].c, d.modes[2].c);
}

TEST(CoupledLine, UncoupledBusIsIdentityBasis) {
  ModalDecomposition d = modal_decomposition(symmetric_bus(kBase, 0.0, 0.0, 3));
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_DOUBLE_EQ(d.modes[j].l, kBase.l);
    EXPECT_DOUBLE_EQ(d.modes[j].c, kBase.c);
    for (std::size_t i = 0; i < 3; ++i)
      EXPECT_NEAR(std::abs(d.vectors(i, j)), i == j ? 1.0 : 0.0, 1e-12);
  }
}

TEST(CoupledLine, ValidateRejectsBadInput) {
  EXPECT_THROW(symmetric_bus(kBase, -1e-12, 0.0, 2), std::domain_error);
  EXPECT_THROW(symmetric_bus(kBase, 0.0, 1.0, 2), std::domain_error);
  EXPECT_THROW(symmetric_bus(kBase, 0.0, 0.0, 0), std::domain_error);
  EXPECT_THROW(symmetric_bus(kBase, 0.0, 0.0, 9), std::domain_error);

  CoupledLine bad = symmetric_bus(kBase, 0.1 * kBase.c, 0.1, 2);
  bad.r = 0.0;
  EXPECT_THROW(bad.validate(), std::domain_error);

  CoupledLine asym = symmetric_bus(kBase, 0.1 * kBase.c, 0.1, 2);
  asym.inductance(0, 1) = 2.0 * asym.inductance(1, 0);
  EXPECT_THROW(asym.validate(), std::domain_error);
}

TEST(CoupledLine, StrongMutualOnWideBusThrowsUnphysicalMode) {
  // n = 3: extreme adjacency eigenvalue sqrt2, so km = 0.8 drives the
  // fastest mode's inductance l (1 - 0.8 sqrt2) < 0.
  EXPECT_THROW(modal_decomposition(symmetric_bus(kBase, 0.1 * kBase.c, 0.8, 3)),
               std::domain_error);
}

TEST(CoupledLine, NonCommutingPairThrows) {
  CoupledLine line = symmetric_bus(kBase, 0.2 * kBase.c, 0.0, 3);
  // Break the homogenization: edge conductors lose the shield cap, C is no
  // longer a polynomial in the adjacency and [C, L] != 0 once km != 0.
  line.inductance(0, 1) = line.inductance(1, 0) = 0.3 * kBase.l;
  line.inductance(1, 2) = line.inductance(2, 1) = 0.3 * kBase.l;
  line.capacitance(0, 0) = kBase.c + 0.2 * kBase.c;  // de-homogenize
  EXPECT_THROW(modal_decomposition(line), std::runtime_error);
}

}  // namespace
