#include "rlc/tline/abcd.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rlc::tline {
namespace {

using cplx = std::complex<double>;

TEST(Abcd, IdentityCascade) {
  const Abcd i = Abcd::identity();
  const Abcd z = Abcd::series_impedance({5.0, 1.0});
  const Abcd c = i.cascade(z);
  EXPECT_EQ(c.b, z.b);
  EXPECT_EQ(c.a, z.a);
}

TEST(Abcd, SeriesThenShuntMatchesHandComputation) {
  // [[1, Z], [0, 1]] * [[1, 0], [Y, 1]] = [[1 + ZY, Z], [Y, 1]]
  const cplx Z{2.0, 1.0}, Y{0.5, -0.25};
  const Abcd c = Abcd::series_impedance(Z).cascade(Abcd::shunt_admittance(Y));
  EXPECT_NEAR(std::abs(c.a - (1.0 + Z * Y)), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(c.b - Z), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(c.c - Y), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(c.d - cplx{1.0, 0.0}), 0.0, 1e-15);
}

TEST(Abcd, LineIsReciprocal) {
  // A reciprocal two-port satisfies AD - BC = 1; the RLC line must.
  const LineParams line{4400.0, 1e-6, 2e-10};
  const cplx s{1e8, 2.0e9};
  const Abcd m = Abcd::rlc_line(line, 0.01, s);
  const cplx det = m.a * m.d - m.b * m.c;
  EXPECT_NEAR(std::abs(det - cplx{1.0, 0.0}), 0.0, 1e-9);
}

TEST(Abcd, LineIsSymmetric) {
  const LineParams line{4400.0, 5e-7, 2e-10};
  const Abcd m = Abcd::rlc_line(line, 0.005, {0.0, 1e9});
  EXPECT_NEAR(std::abs(m.a - m.d), 0.0, 1e-12);
}

TEST(Abcd, TwoHalvesCascadeToWhole) {
  // Cascading two length-h/2 lines must equal one length-h line.
  const LineParams line{4400.0, 1e-6, 2e-10};
  const cplx s{5e7, 1e9};
  const Abcd whole = Abcd::rlc_line(line, 0.01, s);
  const Abcd half = Abcd::rlc_line(line, 0.005, s);
  const Abcd two = half.cascade(half);
  EXPECT_NEAR(std::abs(two.a - whole.a) / std::abs(whole.a), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(two.b - whole.b) / std::abs(whole.b), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(two.c - whole.c) / std::abs(whole.c), 0.0, 1e-12);
}

TEST(LineParams, SecondaryParameters) {
  const LineParams line{4400.0, 1e-6, 2e-10};
  EXPECT_NEAR(line.z0_lossless(), std::sqrt(1e-6 / 2e-10), 1e-9);
  EXPECT_NEAR(line.time_of_flight(), std::sqrt(1e-6 * 2e-10), 1e-20);
  // At very high frequency Z0 -> sqrt(l/c).
  const cplx z0hf = line.z0({0.0, 1e14});
  EXPECT_NEAR(z0hf.real(), line.z0_lossless(), 0.01 * line.z0_lossless());
}

TEST(LineParams, Validation) {
  EXPECT_THROW((LineParams{0.0, 1e-6, 2e-10}).validate(), std::domain_error);
  EXPECT_THROW((LineParams{1.0, -1e-6, 2e-10}).validate(), std::domain_error);
  EXPECT_THROW((LineParams{1.0, 1e-6, 0.0}).validate(), std::domain_error);
  EXPECT_NO_THROW((LineParams{1.0, 0.0, 2e-10}).validate());
  EXPECT_THROW((LineParams{1.0, 0.0, 1e-10}).z0_lossless(), std::domain_error);
}

}  // namespace
}  // namespace rlc::tline
