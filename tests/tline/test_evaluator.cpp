#include "rlc/tline/evaluator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <type_traits>

#include "rlc/core/technology.hpp"
#include "rlc/tline/transfer.hpp"

namespace rlc::tline {
namespace {

using cplx = std::complex<double>;

struct Case {
  LineParams line;
  double h;
  DriverLoad dl;
};

Case paper_case(double l) {
  const auto tech = rlc::core::Technology::nm250();
  Case c;
  c.line = tech.line(l);
  c.h = 0.0144;
  c.dl = tech.rep.scaled(578.0);
  return c;
}

TEST(TransferEvaluator, MatchesDcSafeTransferEverywhere) {
  // The hoisted-invariant + single-exp evaluation must agree with the
  // reference exact_transfer_dc_safe to roundoff, RC and RLC alike,
  // from near-DC to deep rolloff.
  for (double l : {0.0, 1e-6, 5e-6}) {
    const Case c = paper_case(l);
    const TransferEvaluator ev(c.line, c.h, c.dl);
    for (const cplx s : {cplx{1e-3, 0.0}, cplx{1e6, 0.0}, cplx{1e8, 5e9},
                         cplx{0.0, 1e10}, cplx{3e9, -2e9}, cplx{1e11, 1e11}}) {
      const cplx ref = exact_transfer_dc_safe(c.line, c.h, c.dl, s);
      const cplx got = ev.transfer(s);
      EXPECT_NEAR(std::abs(got - ref), 0.0, 1e-12 * std::abs(ref))
          << "l = " << l << ", s = " << s.real() << " + " << s.imag() << "i";
    }
  }
}

TEST(TransferEvaluator, StepIsTransferOverS) {
  const Case c = paper_case(1e-6);
  const TransferEvaluator ev(c.line, c.h, c.dl);
  const cplx s{1e8, 5e9};
  EXPECT_EQ(ev.step(s), ev.transfer(s) / s);
  const auto fn = ev.step_fn();
  EXPECT_EQ(fn(s), ev.step(s));
}

TEST(TransferEvaluator, MemoizesRepeatProbes) {
  const Case c = paper_case(1e-6);
  const TransferEvaluator ev(c.line, c.h, c.dl);
  const cplx s1{1e8, 5e9}, s2{2e8, -3e9};
  const cplx first = ev.transfer(s1);
  EXPECT_EQ(ev.evaluations(), 1u);
  EXPECT_EQ(ev.cache_hits(), 0u);
  // Same argument: served from the memo, bit-identical.
  EXPECT_EQ(ev.transfer(s1), first);
  EXPECT_EQ(ev.evaluations(), 1u);
  EXPECT_EQ(ev.cache_hits(), 1u);
  // New argument: fresh evaluation.
  ev.transfer(s2);
  EXPECT_EQ(ev.evaluations(), 2u);
  EXPECT_EQ(ev.cache_hits(), 1u);
  // step() routes through the same memo.
  ev.step(s2);
  EXPECT_EQ(ev.evaluations(), 2u);
  EXPECT_EQ(ev.cache_hits(), 2u);
}

TEST(TransferEvaluator, SignedZeroKeysHitTheSameMemoSlot) {
  // -0.0 == +0.0, so the memo's key equality says the probes are the same
  // node — the hash must agree, or the equal key can land in a different
  // bucket and silently re-evaluate (the old bit_cast-of-raw-double hash
  // separated the two zero encodings).
  const Case c = paper_case(1e-6);
  const TransferEvaluator ev(c.line, c.h, c.dl);
  const cplx pos = ev.transfer(cplx{+0.0, 1e9});
  EXPECT_EQ(ev.evaluations(), 1u);
  EXPECT_EQ(ev.transfer(cplx{-0.0, 1e9}), pos);
  EXPECT_EQ(ev.evaluations(), 1u);
  EXPECT_EQ(ev.cache_hits(), 1u);
  // Same on the imaginary axis component.
  ev.transfer(cplx{1e8, +0.0});
  EXPECT_EQ(ev.evaluations(), 2u);
  ev.transfer(cplx{1e8, -0.0});
  EXPECT_EQ(ev.evaluations(), 2u);
  EXPECT_EQ(ev.cache_hits(), 2u);
}

TEST(TransferEvaluator, StepRefAvoidsAllocationAndMatchesStepFn) {
  // step_ref() is the hot-path handle: a two-word functor with no
  // std::function type-erasure, binding implicitly to the per-point
  // FunctionRef overloads of talbot_invert/TalbotContour.
  const Case c = paper_case(1e-6);
  const TransferEvaluator ev(c.line, c.h, c.dl);
  const auto ref = ev.step_ref();
  const cplx s{1e8, 5e9};
  EXPECT_EQ(ref(s), ev.step(s));
  EXPECT_EQ(ref(s), ev.step_fn()(s));
  static_assert(sizeof(ref) == sizeof(const TransferEvaluator*));
  static_assert(std::is_trivially_copyable_v<decltype(ref)>);
}

TEST(TransferEvaluator, ValidatesTheLine) {
  Case c = paper_case(1e-6);
  c.line.r = -1.0;
  EXPECT_THROW(TransferEvaluator(c.line, c.h, c.dl), std::domain_error);
}

}  // namespace
}  // namespace rlc::tline
