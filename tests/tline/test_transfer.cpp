#include "rlc/tline/transfer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rlc/core/technology.hpp"

namespace rlc::tline {
namespace {

using cplx = std::complex<double>;

struct Case {
  LineParams line;
  double h;
  DriverLoad dl;
};

Case paper_case(double l) {
  const auto tech = rlc::core::Technology::nm250();
  Case c;
  c.line = tech.line(l);
  c.h = 0.0144;
  c.dl = tech.rep.scaled(578.0);
  return c;
}

TEST(Transfer, ExactEqualsAbcdCascade) {
  const Case c = paper_case(1e-6);
  for (const cplx s : {cplx{1e8, 0.0}, cplx{1e7, 5e9}, cplx{0.0, 1e10},
                       cplx{3e9, -2e9}}) {
    const cplx he = exact_transfer(c.line, c.h, c.dl, s);
    const cplx ha = abcd_transfer(c.line, c.h, c.dl, s);
    EXPECT_NEAR(std::abs(he - ha) / std::abs(he), 0.0, 1e-10)
        << "s = " << s.real() << " + " << s.imag() << "i";
  }
}

TEST(Transfer, DcSafeFormAgreesAwayFromZero) {
  const Case c = paper_case(2e-6);
  const cplx s{1e6, 4e9};
  const cplx a = exact_transfer(c.line, c.h, c.dl, s);
  const cplx b = exact_transfer_dc_safe(c.line, c.h, c.dl, s);
  EXPECT_NEAR(std::abs(a - b) / std::abs(a), 0.0, 1e-10);
}

TEST(Transfer, UnityAtDc) {
  // H(0) = 1: a step eventually propagates at full amplitude.
  const Case c = paper_case(1e-6);
  const cplx h0 = exact_transfer_dc_safe(c.line, c.h, c.dl, {0.0, 0.0});
  EXPECT_NEAR(h0.real(), 1.0, 1e-12);
  EXPECT_NEAR(h0.imag(), 0.0, 1e-12);
}

TEST(Transfer, ContinuousThroughSmallS) {
  const Case c = paper_case(1e-6);
  const cplx near0 = exact_transfer_dc_safe(c.line, c.h, c.dl, {1e-3, 0.0});
  EXPECT_NEAR(near0.real(), 1.0, 1e-9);
}

TEST(Transfer, DcSafeSeriesBranchMatchesClosedFormAcrossGuard) {
  // Regression for the shared cosh/sinhc helper (transfer_detail): the
  // series branch engages for small |theta h|.  Sweep s across the guard
  // boundary and pin the dc-safe form against the independent ABCD cascade
  // — a broken series expansion would show up as a jump here.
  const Case c = paper_case(1e-6);
  for (double mag : {1e-2, 1.0, 1e2, 1e4, 1e6}) {
    for (const cplx dir : {cplx{1.0, 0.0}, cplx{0.6, 0.8}, cplx{0.0, 1.0}}) {
      const cplx s = mag * dir;
      const cplx safe = exact_transfer_dc_safe(c.line, c.h, c.dl, s);
      const cplx abcd = abcd_transfer(c.line, c.h, c.dl, s);
      EXPECT_NEAR(std::abs(safe - abcd), 0.0, 1e-10 * std::abs(safe))
          << "s = " << s.real() << " + " << s.imag() << "i";
    }
  }
  // And the limit itself: the series branch must hit the exact DC value.
  EXPECT_NEAR(
      std::abs(exact_transfer_dc_safe(c.line, c.h, c.dl, {1e-6, 0.0}) - 1.0),
      0.0, 1e-10);
}

TEST(Transfer, MagnitudeRollsOff) {
  // |H| must decrease from 1 toward 0 along the imaginary axis (low-pass).
  const Case c = paper_case(1e-6);
  const double m1 = std::abs(exact_transfer(c.line, c.h, c.dl, {0.0, 1e8}));
  const double m2 = std::abs(exact_transfer(c.line, c.h, c.dl, {0.0, 1e10}));
  const double m3 = std::abs(exact_transfer(c.line, c.h, c.dl, {0.0, 1e12}));
  EXPECT_GT(m1, m2);
  EXPECT_GT(m2, m3);
  EXPECT_LT(m3, 1e-2);
}

TEST(Transfer, ConjugateSymmetry) {
  // H(conj(s)) = conj(H(s)) — required for a real impulse response.
  const Case c = paper_case(3e-6);
  const cplx s{1e8, 7e9};
  const cplx h1 = exact_transfer(c.line, c.h, c.dl, s);
  const cplx h2 = exact_transfer(c.line, c.h, c.dl, std::conj(s));
  EXPECT_NEAR(std::abs(h2 - std::conj(h1)), 0.0, 1e-12 * std::abs(h1));
}

TEST(TransferSkin, ReducesToDcModelAtLowFrequency) {
  const Case c = paper_case(1e-6);
  const double ws = skin_crossover_angular_frequency(1.72e-8, 2e-6, 2.5e-6);
  // Far below the crossover the skin model must match the DC-r model.
  const cplx s{0.0, ws * 1e-3};
  const cplx a = exact_transfer_dc_safe(c.line, c.h, c.dl, s);
  const cplx b = exact_transfer_skin(c.line, c.h, c.dl, ws, s);
  EXPECT_NEAR(std::abs(a - b) / std::abs(a), 0.0, 1e-3);
}

TEST(TransferSkin, AddsLossAboveCrossover) {
  // Above the crossover the extra resistance damps the response: |H_skin|
  // < |H_dc| near the resonant peak.
  const Case c = paper_case(2e-6);
  const double ws = skin_crossover_angular_frequency(1.72e-8, 2e-6, 2.5e-6);
  const cplx s{0.0, 4.0 * ws};
  const double mag_dc = std::abs(exact_transfer_dc_safe(c.line, c.h, c.dl, s));
  const double mag_skin = std::abs(exact_transfer_skin(c.line, c.h, c.dl, ws, s));
  EXPECT_LT(mag_skin, mag_dc);
}

TEST(TransferSkin, CrossoverFrequencyValue) {
  // Copper, 2 x 2.5 um: w_s = 8 rho / (mu0 d^2) with d = 2 um.
  const double ws = skin_crossover_angular_frequency(1.72e-8, 2e-6, 2.5e-6);
  EXPECT_NEAR(ws, 8.0 * 1.72e-8 / (1.25663706212e-6 * 4e-12), 1e-3 * ws);
  // ~ 4.4 GHz as an ordinary frequency: the DC model is fine below that,
  // which covers the paper's switching spectra.
  EXPECT_NEAR(ws / (2.0 * 3.14159265), 4.36e9, 0.05e9);
  EXPECT_THROW(skin_crossover_angular_frequency(0.0, 1e-6, 1e-6),
               std::domain_error);
}

TEST(TransferSkin, RejectsBadCrossover) {
  const Case c = paper_case(1e-6);
  EXPECT_THROW(exact_transfer_skin(c.line, c.h, c.dl, 0.0, {0.0, 1e9}),
               std::domain_error);
}

// Parameterized over inductance: the first two Taylor moments of the exact
// H(s) must match the Pade b1 (and b1^2 - b2 relation) — checked indirectly
// in core tests; here we verify H stays finite and unity-DC across the
// paper's entire sweep range.
class TransferSweep : public ::testing::TestWithParam<double> {};

TEST_P(TransferSweep, WellBehavedAcrossInductanceRange) {
  const Case c = paper_case(GetParam());
  EXPECT_NEAR(std::abs(exact_transfer_dc_safe(c.line, c.h, c.dl, {0.0, 0.0})),
              1.0, 1e-10);
  const cplx h = exact_transfer(c.line, c.h, c.dl, {0.0, 2e9});
  EXPECT_TRUE(std::isfinite(h.real()) && std::isfinite(h.imag()));
  EXPECT_LT(std::abs(h), 10.0);  // passive network: bounded resonance
}

INSTANTIATE_TEST_SUITE_P(InductanceSweep, TransferSweep,
                         ::testing::Values(0.0, 1e-7, 5e-7, 1e-6, 2e-6, 5e-6));

}  // namespace
}  // namespace rlc::tline
