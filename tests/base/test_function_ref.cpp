#include "rlc/base/function_ref.hpp"

#include <gtest/gtest.h>

#include <complex>
#include <cstddef>
#include <functional>
#include <type_traits>

namespace rlc {
namespace {

using cplx = std::complex<double>;
using PointRef = FunctionRef<cplx(cplx)>;
using BatchRef = FunctionRef<void(const double*, const double*, double*,
                                  double*, std::size_t)>;

int free_square(int x) { return x * x; }

TEST(FunctionRef, BindsLambdaFunctorAndFunctionPointer) {
  const FunctionRef<int(int)> from_ptr(free_square);
  EXPECT_EQ(from_ptr(7), 49);

  int captured = 10;
  const auto lam = [&captured](int x) { return x + captured; };
  const FunctionRef<int(int)> from_lambda(lam);
  EXPECT_EQ(from_lambda(5), 15);
  captured = 20;  // non-owning: sees the live capture, not a copy
  EXPECT_EQ(from_lambda(5), 25);

  const std::function<int(int)> fn = [](int x) { return x - 1; };
  const FunctionRef<int(int)> from_std(fn);
  EXPECT_EQ(from_std(3), 2);
}

TEST(FunctionRef, IsTwoWordsAndTriviallyCopyable) {
  // The whole point of the hot-path replacement: no allocation, no
  // type-erasure buffer, trivially passable in registers.
  static_assert(sizeof(PointRef) == 2 * sizeof(void*));
  static_assert(std::is_trivially_copyable_v<PointRef>);
  static_assert(std::is_trivially_copyable_v<BatchRef>);
}

TEST(FunctionRef, PerPointAndBatchOverloadsDisambiguate) {
  // The talbot_invert/TalbotContour overload set takes either a per-point
  // evaluator or an SoA batch evaluator; the is_invocable_r constraint must
  // route each callable shape to exactly one overload.
  const auto point = [](cplx s) { return 1.0 / s; };
  const auto batch = [](const double* sr, const double* si, double* fr,
                        double* fi, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      const cplx v = 1.0 / cplx{sr[i], si[i]};
      fr[i] = v.real();
      fi[i] = v.imag();
    }
  };
  static_assert(std::is_convertible_v<decltype(point), PointRef>);
  static_assert(!std::is_convertible_v<decltype(point), BatchRef>);
  static_assert(std::is_convertible_v<decltype(batch), BatchRef>);
  static_assert(!std::is_convertible_v<decltype(batch), PointRef>);

  const PointRef p(point);
  EXPECT_EQ(p(cplx{2.0, 0.0}), (cplx{0.5, 0.0}));
  const BatchRef b(batch);
  const double sr = 4.0, si = 0.0;
  double fr = 0.0, fi = 1.0;
  b(&sr, &si, &fr, &fi, 1);
  EXPECT_DOUBLE_EQ(fr, 0.25);
  EXPECT_DOUBLE_EQ(fi, 0.0);
}

TEST(FunctionRef, TemporaryLivesThroughTheCallExpression) {
  // Passing a temporary functor to a function taking FunctionRef is the
  // canonical use; the temporary outlives the full call expression.
  struct Doubler {
    int operator()(int x) const { return 2 * x; }
  };
  const auto invoke = [](FunctionRef<int(int)> f) { return f(21); };
  EXPECT_EQ(invoke(Doubler{}), 42);
}

}  // namespace
}  // namespace rlc
