#include "rlc/base/status.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rlc/base/version.hpp"

namespace rlc {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  const Status s = Status::no_convergence("ran out of budget");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kNoConvergence);
  EXPECT_EQ(s.message(), "ran out of budget");
  EXPECT_EQ(s.to_string(), "no_convergence: ran out of budget");
}

TEST(Status, CodeNamesAreStable) {
  // These spellings and integers go over the rlc_serve wire; a change here
  // is a protocol break, not a refactor.
  EXPECT_STREQ(status_code_name(StatusCode::kOk), "ok");
  EXPECT_STREQ(status_code_name(StatusCode::kInvalidArgument),
               "invalid_argument");
  EXPECT_STREQ(status_code_name(StatusCode::kNotFound), "not_found");
  EXPECT_STREQ(status_code_name(StatusCode::kNoConvergence),
               "no_convergence");
  EXPECT_STREQ(status_code_name(StatusCode::kDeadlineExceeded),
               "deadline_exceeded");
  EXPECT_STREQ(status_code_name(StatusCode::kCancelled), "cancelled");
  EXPECT_STREQ(status_code_name(StatusCode::kInternal), "internal");
  EXPECT_EQ(static_cast<int>(StatusCode::kInvalidArgument), 1);
  EXPECT_EQ(static_cast<int>(StatusCode::kNotFound), 2);
  EXPECT_EQ(static_cast<int>(StatusCode::kNoConvergence), 3);
  EXPECT_EQ(static_cast<int>(StatusCode::kDeadlineExceeded), 4);
  EXPECT_EQ(static_cast<int>(StatusCode::kCancelled), 5);
  EXPECT_EQ(static_cast<int>(StatusCode::kInternal), 6);
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> r = Status::invalid_argument("nope");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_THROW(r.value(), BadStatusAccess);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(StatusOr, OkStatusIsALogicError) {
  EXPECT_THROW(StatusOr<int>{Status::ok()}, std::logic_error);
}

TEST(StatusOr, CopiesAndMovesNonTrivialPayloads) {
  StatusOr<std::vector<std::string>> a =
      std::vector<std::string>{"x", "y", "z"};
  StatusOr<std::vector<std::string>> b = a;  // copy
  EXPECT_EQ(b.value().size(), 3u);
  StatusOr<std::vector<std::string>> c = std::move(a);
  EXPECT_EQ(c.value()[2], "z");
  c = Status::internal("overwritten");
  EXPECT_FALSE(c.is_ok());
  b = c;  // value -> error assignment
  EXPECT_EQ(b.status().code(), StatusCode::kInternal);
}

// A payload whose copy constructor throws on demand: assignment must leave
// the target valueless (never "has_value_ over garbage storage") when the
// payload copy throws mid-assignment.
struct ThrowOnCopy {
  static inline bool armed = false;
  std::string tag;
  explicit ThrowOnCopy(std::string t) : tag(std::move(t)) {}
  ThrowOnCopy(const ThrowOnCopy& o) : tag(o.tag) {
    if (armed) throw std::runtime_error("copy blew up");
  }
  ThrowOnCopy(ThrowOnCopy&&) = default;
  ThrowOnCopy& operator=(const ThrowOnCopy&) = default;
  ThrowOnCopy& operator=(ThrowOnCopy&&) = default;
};

TEST(StatusOr, ThrowingCopyAssignmentLeavesTargetValueless) {
  ThrowOnCopy::armed = false;
  StatusOr<ThrowOnCopy> src = ThrowOnCopy("fresh");
  StatusOr<ThrowOnCopy> dst = ThrowOnCopy("stale");
  ThrowOnCopy::armed = true;
  EXPECT_THROW(dst = src, std::runtime_error);
  ThrowOnCopy::armed = false;
  // The old value is gone and no new one was constructed; destroying dst
  // (end of scope) must not run ~ThrowOnCopy on uninitialized storage.
  EXPECT_FALSE(dst.is_ok());
  dst = src;  // recoverable: a later assignment works
  ASSERT_TRUE(dst.is_ok());
  EXPECT_EQ(dst->tag, "fresh");
}

TEST(StatusOr, MoveAssignmentNoexceptTracksPayload) {
  static_assert(
      std::is_nothrow_move_assignable_v<StatusOr<std::vector<int>>>);
  static_assert(
      std::is_nothrow_move_constructible_v<StatusOr<std::vector<int>>>);
  // ThrowOnCopy's move ctor is noexcept, so its StatusOr stays noexcept.
  static_assert(std::is_nothrow_move_assignable_v<StatusOr<ThrowOnCopy>>);
}

TEST(Version, LooksLikeSemver) {
  const std::string v = version();
  // PROJECT_VERSION from CMake: digits and dots, at least "X.Y".
  EXPECT_NE(v.find('.'), std::string::npos) << v;
  EXPECT_TRUE(v.find_first_not_of("0123456789.") == std::string::npos) << v;
  EXPECT_GE(kApiVersion, 1);
}

}  // namespace
}  // namespace rlc
