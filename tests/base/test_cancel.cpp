#include "rlc/base/cancel.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace rlc {
namespace {

TEST(CancelToken, DefaultNeverFires) {
  CancelToken t;
  EXPECT_FALSE(t.can_fire());
  EXPECT_FALSE(t.cancel_requested());
}

TEST(CancelSource, IsStickyAndSharedAcrossCopies) {
  CancelSource src;
  CancelToken before = src.token();
  EXPECT_FALSE(before.cancel_requested());
  src.request_cancel();
  CancelToken after = src.token();
  EXPECT_TRUE(before.cancel_requested());
  EXPECT_TRUE(after.cancel_requested());
  src.request_cancel();  // idempotent
  EXPECT_TRUE(src.cancel_requested());
}

TEST(Deadline, NoneNeverExpires) {
  EXPECT_FALSE(Deadline::none().has_deadline());
  EXPECT_FALSE(Deadline::none().expired());
  EXPECT_FALSE(Deadline::after(
                   std::numeric_limits<double>::infinity()).has_deadline());
  EXPECT_FALSE(Deadline::after(1e12).has_deadline());  // absurd == none
}

TEST(Deadline, ZeroIsAlreadyExpired) {
  const Deadline d = Deadline::after(0.0);
  EXPECT_TRUE(d.has_deadline());
  EXPECT_TRUE(d.expired());
}

TEST(Deadline, FutureDeadlineNotYetExpired) {
  EXPECT_FALSE(Deadline::after(60.0).expired());
}

TEST(Checkpoint, NoScopeIsANoOp) {
  EXPECT_NO_THROW(checkpoint());
  EXPECT_FALSE(stop_requested());
}

TEST(Checkpoint, ThrowsCancelledWhenTokenFires) {
  CancelSource src;
  ExecScope scope(src.token(), Deadline::none());
  EXPECT_NO_THROW(checkpoint());
  src.request_cancel();
  EXPECT_TRUE(stop_requested());
  try {
    checkpoint();
    FAIL() << "checkpoint() did not throw";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.code(), StatusCode::kCancelled);
    EXPECT_EQ(e.to_status().code(), StatusCode::kCancelled);
  }
}

TEST(Checkpoint, ThrowsDeadlineExceededWhenExpired) {
  ExecScope scope(CancelToken{}, Deadline::after(0.0));
  try {
    checkpoint();
    FAIL() << "checkpoint() did not throw";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.code(), StatusCode::kDeadlineExceeded);
  }
}

TEST(ExecScope, NestsAndRestores) {
  CancelSource outer;
  ExecScope a(outer.token(), Deadline::none());
  {
    // Inner scope replaces the outer: an un-cancelled inner token masks the
    // fired outer one until the inner scope unwinds.
    CancelSource inner;
    ExecScope b(inner.token(), Deadline::none());
    outer.request_cancel();
    EXPECT_FALSE(stop_requested());
  }
  EXPECT_TRUE(stop_requested());
}

TEST(ExecScope, StateIsPerThread) {
  CancelSource src;
  src.request_cancel();
  ExecScope scope(src.token(), Deadline::none());
  ASSERT_TRUE(stop_requested());
  bool seen_on_other_thread = true;
  std::thread([&] { seen_on_other_thread = stop_requested(); }).join();
  EXPECT_FALSE(seen_on_other_thread);  // scopes do not leak across threads
}

TEST(CurrentExecState, SnapshotsTheActiveScope) {
  EXPECT_FALSE(current_exec_state().armed());
  CancelSource src;
  ExecScope scope(src.token(), Deadline::none());
  ExecState snap = current_exec_state();
  EXPECT_TRUE(snap.armed());
  // The snapshot can be re-installed elsewhere (what the pool does) and
  // still observes the original token.
  src.request_cancel();
  bool fired_on_other_thread = false;
  std::thread([&] {
    ExecScope carried(snap);
    fired_on_other_thread = stop_requested();
  }).join();
  EXPECT_TRUE(fired_on_other_thread);
}

}  // namespace
}  // namespace rlc
