#include "rlc/base/simd.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

namespace rlc::simd {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kDenormMin = std::numeric_limits<double>::denorm_min();

// ---- RLC_SIMD parsing (resolve_level is pure: env string in, Level out).

TEST(SimdResolve, UnsetAndAutoUseDetected) {
  for (const char* v : {static_cast<const char*>(nullptr), "on", "auto"}) {
    EXPECT_EQ(resolve_level(v, Level::kAvx2), Level::kAvx2);
    EXPECT_EQ(resolve_level(v, Level::kScalar), Level::kScalar);
  }
}

TEST(SimdResolve, OffForcesScalar) {
  for (const char* v : {"off", "scalar", "0"}) {
    EXPECT_EQ(resolve_level(v, Level::kAvx2), Level::kScalar) << v;
    EXPECT_EQ(resolve_level(v, Level::kScalar), Level::kScalar) << v;
  }
}

TEST(SimdResolve, Avx2RequestIsCappedByDetection) {
  EXPECT_EQ(resolve_level("avx2", Level::kAvx2), Level::kAvx2);
  // Requesting AVX2 on a host without it must not crash the process later:
  // the resolver degrades to scalar instead of dispatching illegal ops.
  EXPECT_EQ(resolve_level("avx2", Level::kScalar), Level::kScalar);
}

TEST(SimdResolve, UnknownSpellingThrows) {
  // Same strict contract as RLC_NUM_THREADS: a typo is an error, not a
  // silent fallback that quietly changes which kernels a benchmark ran.
  for (const char* v : {"fast", "AVX512", "1", "onn"}) {
    EXPECT_THROW(resolve_level(v, Level::kAvx2), std::invalid_argument) << v;
  }
  // `RLC_SIMD=` (set but empty) behaves like unset.
  EXPECT_EQ(resolve_level("", Level::kAvx2), Level::kAvx2);
}

TEST(SimdResolve, LevelNamesMatchTheArtifactSchema) {
  // scripts/validate_bench_json.py checks simd in {"avx2", "scalar"}.
  EXPECT_STREQ(level_name(Level::kScalar), "scalar");
  EXPECT_STREQ(level_name(Level::kAvx2), "avx2");
  const std::string active = active_level_name();
  EXPECT_TRUE(active == "scalar" || active == "avx2") << active;
  EXPECT_EQ(active, level_name(active_level()));
}

// ---- Scalar kernel correctness against libm (any host).

TEST(SimdKernels, ScalarExpMatchesLibm) {
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> dist(-700.0, 700.0);
  std::vector<double> x(257), out(257);
  for (auto& v : x) v = dist(rng);
  exp_pd(Level::kScalar, x.data(), out.data(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double ref = std::exp(x[i]);
    EXPECT_NEAR(out[i], ref, 1e-12 * ref) << "x = " << x[i];
  }
}

TEST(SimdKernels, ScalarSincosMatchesLibm) {
  std::mt19937_64 rng(43);
  std::uniform_real_distribution<double> dist(-100.0, 100.0);
  std::vector<double> x(257), s(257), c(257);
  for (auto& v : x) v = dist(rng);
  sincos_pd(Level::kScalar, x.data(), s.data(), c.data(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(s[i], std::sin(x[i]), 1e-12) << x[i];
    EXPECT_NEAR(c[i], std::cos(x[i]), 1e-12) << x[i];
  }
}

// ---- Vector-vs-scalar agreement (pins the AVX2 kernels when present).

TEST(SimdKernels, VectorExpAgreesWithScalar) {
  if (detected_level() != Level::kAvx2) {
    GTEST_SKIP() << "host has no AVX2; scalar path is the only path";
  }
  std::mt19937_64 rng(44);
  std::uniform_real_distribution<double> dist(-745.0, 709.0);
  // Odd length exercises the vector kernel's scalar tail.
  std::vector<double> x(1031), a(1031), b(1031);
  for (auto& v : x) v = dist(rng);
  exp_pd(Level::kScalar, x.data(), a.data(), x.size());
  exp_pd(Level::kAvx2, x.data(), b.data(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (a[i] == 0.0) {
      EXPECT_EQ(b[i], 0.0) << "x = " << x[i];
    } else {
      EXPECT_NEAR(b[i], a[i], 1e-12 * a[i]) << "x = " << x[i];
    }
  }
}

TEST(SimdKernels, VectorSincosAgreesWithScalar) {
  if (detected_level() != Level::kAvx2) {
    GTEST_SKIP() << "host has no AVX2; scalar path is the only path";
  }
  std::mt19937_64 rng(45);
  std::uniform_real_distribution<double> dist(-1e4, 1e4);
  std::vector<double> x(1031);
  for (auto& v : x) v = dist(rng);
  // Include the huge-argument lanes that must fall back to libm per lane.
  x[0] = 1e9;
  x[1] = -3.7e12;
  x[2] = 2.5e15;
  std::vector<double> ss(x.size()), cs(x.size()), sv(x.size()), cv(x.size());
  sincos_pd(Level::kScalar, x.data(), ss.data(), cs.data(), x.size());
  sincos_pd(Level::kAvx2, x.data(), sv.data(), cv.data(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(sv[i], ss[i], 1e-12) << "x = " << x[i];
    EXPECT_NEAR(cv[i], cs[i], 1e-12) << "x = " << x[i];
  }
}

TEST(SimdKernels, VectorCexpAgreesWithScalar) {
  if (detected_level() != Level::kAvx2) {
    GTEST_SKIP() << "host has no AVX2; scalar path is the only path";
  }
  std::mt19937_64 rng(46);
  std::uniform_real_distribution<double> re(-50.0, 50.0);
  std::uniform_real_distribution<double> im(-1e3, 1e3);
  std::vector<double> xr(517), xi(517);
  for (std::size_t i = 0; i < xr.size(); ++i) {
    xr[i] = re(rng);
    xi[i] = im(rng);
  }
  std::vector<double> ar(xr.size()), ai(xr.size());
  std::vector<double> br(xr.size()), bi(xr.size());
  cexp_pd(Level::kScalar, xr.data(), xi.data(), ar.data(), ai.data(),
          xr.size());
  cexp_pd(Level::kAvx2, xr.data(), xi.data(), br.data(), bi.data(),
          xr.size());
  for (std::size_t i = 0; i < xr.size(); ++i) {
    const double mag = std::hypot(ar[i], ai[i]);
    EXPECT_NEAR(br[i], ar[i], 1e-12 * mag) << xr[i] << " + " << xi[i] << "i";
    EXPECT_NEAR(bi[i], ai[i], 1e-12 * mag) << xr[i] << " + " << xi[i] << "i";
  }
}

// ---- Edge cases, run at every level the host supports.

std::vector<Level> levels_to_test() {
  std::vector<Level> out{Level::kScalar};
  if (detected_level() == Level::kAvx2) out.push_back(Level::kAvx2);
  return out;
}

TEST(SimdKernels, ExpEdgeCases) {
  const std::vector<double> x = {
      +0.0, -0.0, kDenormMin, -kDenormMin, 1.0, -1.0,
      709.7,    // just below the overflow clamp
      710.0,    // overflows to inf
      -745.0,   // subnormal result
      -746.0,   // underflows to 0
      kInf, -kInf, kNan};
  for (Level level : levels_to_test()) {
    std::vector<double> out(x.size());
    exp_pd(level, x.data(), out.data(), x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double ref = std::exp(x[i]);
      if (std::isnan(ref)) {
        EXPECT_TRUE(std::isnan(out[i])) << level_name(level) << " " << x[i];
      } else if (std::isinf(ref) || ref == 0.0) {
        EXPECT_EQ(out[i], ref) << level_name(level) << " " << x[i];
      } else {
        EXPECT_NEAR(out[i], ref, 1e-12 * ref + 1e-300)
            << level_name(level) << " x = " << x[i];
      }
    }
  }
}

TEST(SimdKernels, SincosEdgeCases) {
  const std::vector<double> x = {+0.0, -0.0,  kDenormMin, 1e-300, M_PI,
                                 -M_PI, M_PI_2, 1e8,        1e16,   -1e16};
  for (Level level : levels_to_test()) {
    std::vector<double> s(x.size()), c(x.size());
    sincos_pd(level, x.data(), s.data(), c.data(), x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_NEAR(s[i], std::sin(x[i]), 1e-12)
          << level_name(level) << " " << x[i];
      EXPECT_NEAR(c[i], std::cos(x[i]), 1e-12)
          << level_name(level) << " " << x[i];
    }
    // Both zero encodings land exactly on (sin, cos) = (0, 1); the sign of
    // the zero itself is unspecified across kernel levels.
    EXPECT_EQ(s[0], 0.0);
    EXPECT_EQ(s[1], 0.0);
    EXPECT_EQ(c[0], 1.0);
    EXPECT_EQ(c[1], 1.0);
  }
}

TEST(SimdKernels, CexpOverflowAndZeroLanes) {
  // Lanes whose real part overflows/underflows exp must produce the same
  // inf/0 pattern at every level — the batch transfer kernel's saturation
  // guard keys off these.
  const std::vector<double> re = {800.0, -800.0, 0.0, 709.0};
  const std::vector<double> im = {1.0, 1.0, 0.0, 2.0};
  for (Level level : levels_to_test()) {
    std::vector<double> or_(re.size()), oi(re.size());
    cexp_pd(level, re.data(), im.data(), or_.data(), oi.data(), re.size());
    EXPECT_FALSE(std::isfinite(or_[0])) << level_name(level);
    EXPECT_EQ(or_[1], 0.0) << level_name(level);
    EXPECT_EQ(oi[1], 0.0) << level_name(level);
    EXPECT_DOUBLE_EQ(or_[2], 1.0) << level_name(level);
    EXPECT_DOUBLE_EQ(oi[2], 0.0) << level_name(level);
    const double mag = std::exp(709.0);
    EXPECT_NEAR(or_[3], mag * std::cos(2.0), 1e-12 * mag)
        << level_name(level);
    EXPECT_NEAR(oi[3], mag * std::sin(2.0), 1e-12 * mag)
        << level_name(level);
  }
}

TEST(SimdKernels, ZeroLengthIsANoop) {
  double sentinel = 123.0;
  for (Level level : levels_to_test()) {
    exp_pd(level, nullptr, &sentinel, 0);
    sincos_pd(level, nullptr, &sentinel, &sentinel, 0);
    cexp_pd(level, nullptr, nullptr, &sentinel, &sentinel, 0);
    EXPECT_EQ(sentinel, 123.0);
  }
}

}  // namespace
}  // namespace rlc::simd
