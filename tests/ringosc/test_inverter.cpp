#include "rlc/ringosc/inverter.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rlc/spice/dcop.hpp"

namespace rlc::ringosc {
namespace {

using rlc::core::Technology;
using rlc::spice::Circuit;
using rlc::spice::DcSpec;

TEST(Inverter, BetaCalibrationFormula) {
  const auto tech = Technology::nm100();
  const double vt = kVtFraction * tech.vdd;
  const double beta = unit_beta(tech);
  // R_eff = 3 VDD / (4 * Idsat) with Idsat = 0.5 beta (VDD - VT)^2 == rs.
  const double idsat = 0.5 * beta * (tech.vdd - vt) * (tech.vdd - vt);
  EXPECT_NEAR(3.0 * tech.vdd / (4.0 * idsat), tech.rep.rs,
              1e-9 * tech.rep.rs);
}

TEST(Inverter, StrongerDriversAtOlderNode) {
  // rs(250nm) > rs(100nm) but VDD also differs; beta just has to be
  // positive and finite for both.
  EXPECT_GT(unit_beta(Technology::nm250()), 0.0);
  EXPECT_GT(unit_beta(Technology::nm100()), 0.0);
}

TEST(Inverter, DcTransferEndpointsAndThreshold) {
  const auto tech = Technology::nm100();
  for (double vin_frac : {0.0, 0.5, 1.0}) {
    Circuit ckt;
    const auto vdd = ckt.node("vdd"), in = ckt.node("in"), out = ckt.node("out");
    ckt.add_vsource("Vdd", vdd, ckt.ground(), DcSpec{tech.vdd});
    ckt.add_vsource("Vin", in, ckt.ground(), DcSpec{vin_frac * tech.vdd});
    add_inverter(ckt, "inv", in, out, vdd, tech, 100.0);
    const auto dc = rlc::spice::dc_operating_point(ckt);
    ASSERT_TRUE(dc.converged) << vin_frac;
    if (vin_frac == 0.0) {
      EXPECT_NEAR(dc.voltage(out), tech.vdd, 0.01 * tech.vdd);
    }
    if (vin_frac == 1.0) {
      EXPECT_NEAR(dc.voltage(out), 0.0, 0.01 * tech.vdd);
    }
    if (vin_frac == 0.5) {
      EXPECT_NEAR(dc.voltage(out), inverter_switching_threshold(tech),
                  0.05 * tech.vdd);
    }
  }
}

TEST(Inverter, EffectiveResistanceNearCalibrationTarget) {
  // Measure the pull-down resistance at the mid-transition point: drive the
  // output with a current and check V/I against rs/k within the tolerance
  // of the averaged-resistance model.
  const auto tech = Technology::nm100();
  const double k = 50.0;
  Circuit ckt;
  const auto vdd = ckt.node("vdd"), in = ckt.node("in"), out = ckt.node("out");
  ckt.add_vsource("Vdd", vdd, ckt.ground(), DcSpec{tech.vdd});
  ckt.add_vsource("Vin", in, ckt.ground(), DcSpec{tech.vdd});  // NMOS on
  add_inverter(ckt, "inv", in, out, vdd, tech, k);
  // Inject current and read the output voltage: R_eff = V/I averaged over
  // the transition is within ~2x of rs/k (model-level agreement).
  const double itest = 0.25 * tech.vdd / (tech.rep.rs / k);
  ckt.add_isource("Itest", ckt.ground(), out, DcSpec{itest});
  const auto dc = rlc::spice::dc_operating_point(ckt);
  ASSERT_TRUE(dc.converged);
  const double reff = dc.voltage(out) / itest;
  EXPECT_GT(reff, 0.3 * tech.rep.rs / k);
  EXPECT_LT(reff, 3.0 * tech.rep.rs / k);
}

TEST(Inverter, CellCapacitorsMatchRepeaterAbstraction) {
  const auto tech = Technology::nm250();
  Circuit ckt;
  const auto vdd = ckt.node("vdd"), in = ckt.node("in"), out = ckt.node("out");
  ckt.add_vsource("Vdd", vdd, ckt.ground(), DcSpec{tech.vdd});
  const auto cell = add_inverter(ckt, "inv", in, out, vdd, tech, 40.0);
  EXPECT_NEAR(cell.cin->capacitance(), tech.rep.c0 * 40.0, 1e-22);
  EXPECT_NEAR(cell.cout->capacitance(), tech.rep.cp * 40.0, 1e-22);
  EXPECT_EQ(cell.pmos->params().type, rlc::spice::MosType::kPmos);
  EXPECT_EQ(cell.nmos->params().type, rlc::spice::MosType::kNmos);
}

}  // namespace
}  // namespace rlc::ringosc
