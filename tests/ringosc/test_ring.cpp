#include "rlc/ringosc/ring.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rlc/core/elmore.hpp"

namespace rlc::ringosc {
namespace {

using rlc::core::Technology;

// Small, fast configurations: 3 stages, short lines, coarse ladders.  The
// full Figure 9-12 setups run in the bench harness.
RingParams fast_params(const Technology& tech, double l) {
  const auto rc = rlc::core::rc_optimum(tech);
  RingParams p;
  p.stages = 3;
  p.segments_per_line = 8;
  p.l = l;
  p.h = 0.5 * rc.h;
  p.k = 0.5 * rc.k;
  return p;
}

TEST(Ring, OscillatesNearEstimatedPeriod) {
  const auto tech = Technology::nm100();
  const auto p = fast_params(tech, 0.2e-6);
  const auto r = simulate_ring(tech, p);
  ASSERT_TRUE(r.completed);
  ASSERT_TRUE(r.period.has_value());
  // Fundamental mode: within a factor ~2 of the 2*N*tau estimate.
  EXPECT_GT(*r.period, 0.5 * r.t_estimate);
  EXPECT_LT(*r.period, 2.0 * r.t_estimate);
}

TEST(Ring, OutputSwingsRailToRail) {
  const auto tech = Technology::nm100();
  const auto r = simulate_ring(tech, fast_params(tech, 0.2e-6));
  ASSERT_TRUE(r.completed);
  double vmin = 1e9, vmax = -1e9;
  for (double v : r.v_out) {
    vmin = std::min(vmin, v);
    vmax = std::max(vmax, v);
  }
  EXPECT_LT(vmin, 0.15 * tech.vdd);
  EXPECT_GT(vmax, 0.85 * tech.vdd);
}

TEST(Ring, InductanceIncreasesInputRinging) {
  const auto tech = Technology::nm100();
  const auto lo = simulate_ring(tech, fast_params(tech, 0.1e-6));
  const auto hi = simulate_ring(tech, fast_params(tech, 1.5e-6));
  ASSERT_TRUE(lo.completed);
  ASSERT_TRUE(hi.completed);
  const double ring_lo = lo.input_excursion.overshoot + lo.input_excursion.undershoot;
  const double ring_hi = hi.input_excursion.overshoot + hi.input_excursion.undershoot;
  EXPECT_GT(ring_hi, ring_lo);
}

TEST(Ring, CurrentDensityComputedFromMidWire) {
  const auto tech = Technology::nm100();
  const auto r = simulate_ring(tech, fast_params(tech, 0.2e-6));
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.wire_density.j_peak, 0.0);
  EXPECT_GT(r.wire_density.j_rms, 0.0);
  EXPECT_GE(r.wire_density.j_peak, r.wire_density.j_rms);
}

TEST(Ring, ParameterValidation) {
  const auto tech = Technology::nm100();
  RingParams p = fast_params(tech, 0.0);
  p.stages = 4;  // even: not a ring oscillator
  EXPECT_THROW(simulate_ring(tech, p), std::invalid_argument);
  p = fast_params(tech, 0.0);
  p.h = 0.0;
  EXPECT_THROW(simulate_ring(tech, p), std::invalid_argument);
  p = fast_params(tech, 0.0);
  p.l = -1.0;
  EXPECT_THROW(simulate_ring(tech, p), std::invalid_argument);
}

TEST(BufferedLine, CleanAtLowInductance) {
  const auto tech = Technology::nm100();
  const auto p = fast_params(tech, 0.2e-6);
  // Drive period comfortably longer than the chain delay.
  const double period = 24.0 * p.stages *
                        rlc::core::rc_optimum(tech).tau;
  const auto r = simulate_buffered_line(tech, p, period, 4);
  ASSERT_TRUE(r.completed);
  // One output transition per drive transition (within measurement slack).
  EXPECT_NEAR(r.transition_ratio, 1.0, 0.45);
}

TEST(BufferedLine, ValidatesDriveSpec) {
  const auto tech = Technology::nm100();
  const auto p = fast_params(tech, 0.2e-6);
  EXPECT_THROW(simulate_buffered_line(tech, p, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(simulate_buffered_line(tech, p, 1e-9, 0), std::invalid_argument);
}

}  // namespace
}  // namespace rlc::ringosc
