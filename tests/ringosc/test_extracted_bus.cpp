#include "rlc/ringosc/extracted_bus.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rlc/analysis/signal_metrics.hpp"
#include "rlc/core/elmore.hpp"
#include "rlc/spice/transient.hpp"

namespace rlc::ringosc {
namespace {

using rlc::core::Technology;
using rlc::spice::Circuit;
using rlc::spice::NodeId;

struct BusFixture {
  Circuit ckt;
  std::vector<std::pair<NodeId, NodeId>> ends;

  explicit BusFixture(int n) {
    for (int i = 0; i < n; ++i) {
      ends.emplace_back(ckt.node("in" + std::to_string(i)),
                        ckt.node("out" + std::to_string(i)));
    }
  }
};

TEST(ExtractedBus, StructureAndExtractionSanity) {
  BusFixture f(3);
  ExtractedBusOptions opts;
  opts.nseg = 6;
  opts.bem_panels = 8;
  const auto tech = Technology::nm100();
  const auto bus =
      add_extracted_bus(f.ckt, "bus", f.ends, tech, 2e-3, opts);
  ASSERT_EQ(bus.lines.size(), 3u);
  EXPECT_EQ(bus.lines[0].resistors.size(), 6u);
  // Extracted quantities in physically sensible ranges.
  EXPECT_GT(bus.l_self, 0.5e-6);       // ~1-2 nH/mm partial self
  EXPECT_LT(bus.l_self, 3e-6);
  EXPECT_GT(bus.cmatrix(1, 1), 50e-12);  // middle wire total > 50 pF/m
  EXPECT_LT(bus.cmatrix(1, 0), 0.0);     // Maxwell off-diagonals negative
  // Coupling coefficient of adjacent wires below 1 (validity of K element).
  const double km = bus.lmatrix(0, 1) /
                    std::sqrt(bus.lmatrix(0, 0) * bus.lmatrix(1, 1));
  EXPECT_GT(km, 0.3);  // long parallel wires couple strongly
  EXPECT_LT(km, 1.0);
}

TEST(ExtractedBus, VictimNoiseFromSwitchingAggressors) {
  // 3-wire bus, outer wires switch, middle is quiet: the victim must see
  // nonzero coupled noise that is bounded by the rail.
  BusFixture f(3);
  const auto tech = Technology::nm100();
  ExtractedBusOptions opts;
  opts.nseg = 6;
  opts.bem_panels = 6;
  const double len = 1e-3;
  const auto bus = add_extracted_bus(f.ckt, "bus", f.ends, tech, len, opts);
  (void)bus;

  const double k = 60.0;
  const auto dl = tech.rep.scaled(k);
  const rlc::spice::PulseSpec step{0, 1, 0, 20e-12, 20e-12, 1, 0};
  for (int i = 0; i < 3; ++i) {
    const auto src = f.ckt.node("src" + std::to_string(i));
    if (i == 1) {
      f.ckt.add_vsource("V1", src, f.ckt.ground(), rlc::spice::DcSpec{0.0});
    } else {
      f.ckt.add_vsource("V" + std::to_string(i), src, f.ckt.ground(), step);
    }
    f.ckt.add_resistor("Rs" + std::to_string(i), src, f.ends[i].first,
                       dl.rs_eff);
    f.ckt.add_capacitor("Cl" + std::to_string(i), f.ends[i].second,
                        f.ckt.ground(), dl.cl_eff);
  }
  rlc::spice::TransientOptions o;
  o.tstop = 1.2e-9;
  o.dt = 1e-12;
  o.probes = {rlc::spice::Probe::node_voltage(f.ends[1].second, "victim"),
              rlc::spice::Probe::node_voltage(f.ends[0].second, "aggr")};
  const auto r = run_transient(f.ckt, o);
  ASSERT_TRUE(r.completed);
  const auto exc = rlc::analysis::rail_excursion(r.signal("victim"), 1.0);
  const double noise = std::max(exc.v_max, -exc.v_min);
  EXPECT_GT(noise, 0.02);  // clearly visible coupled noise
  EXPECT_LT(noise, 1.0);   // but bounded
  // The aggressor itself completes its transition.
  EXPECT_NEAR(r.signal("aggr").back(), 1.0, 0.1);
}

TEST(ExtractedBus, CapacitiveTruncationStaysPassiveAndClose) {
  // Truncating CAPACITIVE coupling to nearest neighbours is a legitimate
  // approximation (electric fields are short-range): the simulation stays
  // stable and the victim noise barely changes.  Mutual inductance is kept
  // all-pairs in both cases — truncating it would make the inductance
  // matrix indefinite (see ExtractedBusOptions docs).
  const auto tech = Technology::nm100();
  double noise_all = 0.0, noise_nn = 0.0;
  for (const bool all_pairs : {true, false}) {
    BusFixture f(3);
    ExtractedBusOptions opts;
    opts.nseg = 4;
    opts.bem_panels = 6;
    opts.couple_all_pairs = all_pairs;
    add_extracted_bus(f.ckt, "bus", f.ends, tech, 1e-3, opts);
    const rlc::spice::PulseSpec step{0, 1, 0, 20e-12, 20e-12, 1, 0};
    f.ckt.add_vsource("V0", f.ends[0].first, f.ckt.ground(), step);
    f.ckt.add_resistor("R1t", f.ends[1].first, f.ckt.ground(), 50.0);
    f.ckt.add_resistor("R2t", f.ends[2].first, f.ckt.ground(), 50.0);
    rlc::spice::TransientOptions o;
    o.tstop = 0.6e-9;
    o.dt = 1e-12;
    o.probes = {rlc::spice::Probe::node_voltage(f.ends[2].second, "v2")};
    const auto r = run_transient(f.ckt, o);
    ASSERT_TRUE(r.completed) << "all_pairs=" << all_pairs;
    const auto exc = rlc::analysis::rail_excursion(r.signal("v2"), 1.0);
    (all_pairs ? noise_all : noise_nn) = std::max(exc.v_max, -exc.v_min);
  }
  EXPECT_GT(noise_all, 0.0);
  EXPECT_GT(noise_nn, 0.0);
  // The far-pair capacitance is small: truncation changes noise by < 30%.
  EXPECT_NEAR(noise_nn, noise_all, 0.3 * noise_all);
}

TEST(ExtractedBus, Validation) {
  BusFixture f(1);
  const auto tech = Technology::nm100();
  EXPECT_THROW(add_extracted_bus(f.ckt, "b", {}, tech, 1e-3),
               std::invalid_argument);
  EXPECT_THROW(add_extracted_bus(f.ckt, "b", f.ends, tech, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace rlc::ringosc
