#include "rlc/ringosc/ladder.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rlc/core/delay.hpp"
#include "rlc/core/technology.hpp"
#include "rlc/spice/dcop.hpp"
#include "rlc/spice/transient.hpp"

namespace rlc::ringosc {
namespace {

using rlc::spice::Circuit;
using rlc::spice::DcSpec;
using rlc::spice::PulseSpec;

TEST(Ladder, StructureCounts) {
  Circuit ckt;
  const auto a = ckt.node("a"), b = ckt.node("b");
  const auto lad = add_rlc_ladder(ckt, "ln", a, b, {4400.0, 1e-6, 2e-10},
                                  0.01, 8);
  EXPECT_EQ(lad.nodes.size(), 9u);
  EXPECT_EQ(lad.resistors.size(), 8u);
  EXPECT_EQ(lad.inductors.size(), 8u);
  EXPECT_EQ(lad.mid_nodes.size(), 8u);
  EXPECT_EQ(lad.nodes.front(), a);
  EXPECT_EQ(lad.nodes.back(), b);
  // interior: 7 junctions + 8 mids
  EXPECT_EQ(lad.interior_nodes().size(), 15u);
}

TEST(Ladder, RcOnlyWhenInductanceZero) {
  Circuit ckt;
  const auto a = ckt.node("a"), b = ckt.node("b");
  const auto lad = add_rlc_ladder(ckt, "ln", a, b, {4400.0, 0.0, 2e-10},
                                  0.01, 8);
  EXPECT_TRUE(lad.inductors.empty());
  EXPECT_TRUE(lad.mid_nodes.empty());
  EXPECT_EQ(lad.resistors.size(), 8u);
}

TEST(Ladder, TotalSeriesResistanceAtDc) {
  // End-to-end DC resistance must be exactly r * length.
  Circuit ckt;
  const auto a = ckt.node("a"), b = ckt.node("b");
  add_rlc_ladder(ckt, "ln", a, b, {4400.0, 1e-6, 2e-10}, 0.0144, 16);
  ckt.add_vsource("V1", a, ckt.ground(), DcSpec{1.0});
  ckt.add_resistor("Rterm", b, ckt.ground(), 100.0);
  const auto dc = rlc::spice::dc_operating_point(ckt);
  ASSERT_TRUE(dc.converged);
  const double rline = 4400.0 * 0.0144;
  EXPECT_NEAR(dc.voltage(b), 100.0 / (100.0 + rline), 1e-6);
}

TEST(Ladder, FiftyPercentDelayNearTwoPolePrediction) {
  // Drive a Table-1-style segment with an ideal source through Rs and load
  // with Cl: the simulated 50% delay must sit close to the two-pole model's
  // (the spatial discretization and the Pade truncation both contribute a
  // few percent).
  const auto tech = rlc::core::Technology::nm250();
  const double h = 0.0144, k = 578.0;
  const auto dl = tech.rep.scaled(k);
  const double l = 1e-6;

  Circuit ckt;
  const auto src = ckt.node("src"), drv = ckt.node("drv"), end = ckt.node("end");
  ckt.add_vsource("V1", src, ckt.ground(),
                  PulseSpec{0, 1, 0, 1e-13, 1e-13, 1, 0});
  ckt.add_resistor("Rs", src, drv, dl.rs_eff);
  ckt.add_capacitor("Cp", drv, ckt.ground(), dl.cp_eff);
  add_rlc_ladder(ckt, "ln", drv, end, tech.line(l), h, 32);
  ckt.add_capacitor("Cl", end, ckt.ground(), dl.cl_eff);

  rlc::spice::TransientOptions o;
  o.tstop = 2e-9;
  o.dt = 1e-12;
  o.probes = {rlc::spice::Probe::node_voltage(end, "vend")};
  const auto r = run_transient(ckt, o);
  ASSERT_TRUE(r.completed);
  const auto& v = r.signal("vend");
  double t50 = -1.0;
  for (std::size_t i = 1; i < r.time.size(); ++i) {
    if (v[i - 1] < 0.5 && v[i] >= 0.5) {
      const double f = (0.5 - v[i - 1]) / (v[i] - v[i - 1]);
      t50 = r.time[i - 1] + f * (r.time[i] - r.time[i - 1]);
      break;
    }
  }
  ASSERT_GT(t50, 0.0);
  const auto dr = rlc::core::segment_delay(tech.rep, tech.line(l), h, k);
  ASSERT_TRUE(dr.converged);
  EXPECT_NEAR(t50, dr.tau, 0.15 * dr.tau);
}

TEST(Ladder, InputValidation) {
  Circuit ckt;
  const auto a = ckt.node("a"), b = ckt.node("b");
  EXPECT_THROW(add_rlc_ladder(ckt, "x", a, b, {1.0, 0.0, 1e-10}, 0.01, 0),
               std::invalid_argument);
  EXPECT_THROW(add_rlc_ladder(ckt, "x", a, b, {1.0, 0.0, 1e-10}, 0.0, 4),
               std::invalid_argument);
  EXPECT_THROW(add_rlc_ladder(ckt, "x", a, b, {0.0, 0.0, 1e-10}, 0.01, 4),
               std::invalid_argument);
}

}  // namespace
}  // namespace rlc::ringosc
