#include "rlc/ringosc/coupled_bus.hpp"

#include <gtest/gtest.h>

#include "rlc/core/elmore.hpp"
#include "rlc/spice/transient.hpp"

namespace rlc::ringosc {
namespace {

using rlc::core::Technology;

TEST(CoupledBus, StructureAndValidation) {
  rlc::spice::Circuit ckt;
  const auto a1 = ckt.node("a1"), a2 = ckt.node("a2");
  const auto v1 = ckt.node("v1"), v2 = ckt.node("v2");
  const rlc::tline::LineParams line{4400.0, 1e-6, 1.5e-10};
  const CouplingParams cp{5e-11, 0.4};
  const auto bus =
      add_coupled_ladders(ckt, "b", a1, a2, v1, v2, line, cp, 0.01, 8);
  EXPECT_EQ(bus.aggressor.resistors.size(), 8u);
  EXPECT_EQ(bus.victim.resistors.size(), 8u);

  const CouplingParams bad_k{0.0, 1.5};
  EXPECT_THROW(
      add_coupled_ladders(ckt, "x", a1, a2, v1, v2, line, bad_k, 0.01, 4),
      std::invalid_argument);
  const rlc::tline::LineParams rc_line{4400.0, 0.0, 1.5e-10};
  const CouplingParams needs_l{0.0, 0.4};
  EXPECT_THROW(add_coupled_ladders(ckt, "y", a1, a2, v1, v2, rc_line, needs_l,
                                   0.01, 4),
               std::invalid_argument);
}

class CrosstalkTest : public ::testing::Test {
 protected:
  static CrosstalkResult run(double cc_frac, double km) {
    const auto tech = Technology::nm100();
    const auto rc = rlc::core::rc_optimum(tech);
    CouplingParams cp;
    cp.cc = cc_frac * tech.c;
    cp.km = km;
    return run_crosstalk(tech, cp, 1e-6, 0.5 * rc.h, 0.5 * rc.k, 10);
  }
};

TEST_F(CrosstalkTest, MillerOrderingOfDelays) {
  // Anti-phase neighbour switching slows the aggressor, in-phase speeds it
  // up: delay_inphase < delay_quiet < delay_antiphase (Section 3 Miller
  // discussion).
  const auto r = run(0.3, 0.0);
  ASSERT_TRUE(r.completed);
  EXPECT_LT(r.delay_inphase, r.delay_quiet);
  EXPECT_LT(r.delay_quiet, r.delay_antiphase);
  // The spread is substantial for 30% coupling.
  EXPECT_GT(r.delay_antiphase / r.delay_inphase, 1.1);
}

TEST_F(CrosstalkTest, VictimNoiseGrowsWithCoupling) {
  const auto weak = run(0.1, 0.0);
  const auto strong = run(0.4, 0.0);
  ASSERT_TRUE(weak.completed);
  ASSERT_TRUE(strong.completed);
  EXPECT_GT(strong.victim_peak_noise, weak.victim_peak_noise);
  EXPECT_GT(weak.victim_peak_noise, 0.0);
}

TEST_F(CrosstalkTest, InductiveCouplingAddsNoise) {
  const auto cap_only = run(0.2, 0.0);
  const auto both = run(0.2, 0.4);
  ASSERT_TRUE(cap_only.completed);
  ASSERT_TRUE(both.completed);
  // Magnetic coupling injects additional victim noise on top of the
  // capacitive component (long current return loops — the paper's
  // Section 1.1 motivation).
  EXPECT_GT(both.victim_peak_noise, cap_only.victim_peak_noise);
}

}  // namespace
}  // namespace rlc::ringosc
