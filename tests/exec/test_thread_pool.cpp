/// rlc::exec unit tests: pool sizing (including the RLC_NUM_THREADS
/// override), exact coverage and ordering of parallel_for / parallel_map,
/// exception propagation, nested loops, and concurrent counter updates.
/// This suite is the one CI runs under ThreadSanitizer.

#include "rlc/exec/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "rlc/exec/counters.hpp"

namespace {

using rlc::exec::Counters;
using rlc::exec::ThreadPool;

/// Scoped setenv/unsetenv so env-sensitive tests cannot leak state.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) old_ = old;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (old_) {
      ::setenv(name_, old_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> old_;
};

TEST(ThreadPool, DefaultThreadCountHonorsEnvOverride) {
  {
    ScopedEnv env("RLC_NUM_THREADS", "3");
    EXPECT_EQ(rlc::exec::default_thread_count(), 3u);
    const ThreadPool pool;  // default-constructed pools pick it up too
    EXPECT_EQ(pool.size(), 3u);
  }
  {
    ScopedEnv env("RLC_NUM_THREADS", "1");
    EXPECT_EQ(rlc::exec::default_thread_count(), 1u);
  }
  // Garbage and non-positive values fall back to hardware concurrency.
  for (const char* bad : {"0", "-4", "abc", "2x", ""}) {
    ScopedEnv env("RLC_NUM_THREADS", bad);
    EXPECT_GE(rlc::exec::default_thread_count(), 1u) << bad;
    EXPECT_NE(rlc::exec::default_thread_count(), 0u) << bad;
  }
}

TEST(ThreadPool, ParseThreadCountAcceptsPositiveIntegers) {
  std::string warning;
  EXPECT_EQ(rlc::exec::parse_thread_count("1", &warning), 1u);
  EXPECT_EQ(rlc::exec::parse_thread_count("4", &warning), 4u);
  EXPECT_EQ(rlc::exec::parse_thread_count("  16", &warning), 16u);
  EXPECT_EQ(rlc::exec::parse_thread_count("4096", &warning), 4096u);
  EXPECT_TRUE(warning.empty()) << warning;
}

TEST(ThreadPool, ParseThreadCountRejectsMalformedInputWithWarning) {
  // Each malformed value maps to 0 ("use the default") and explains itself.
  const char* bad[] = {"0",    "-3",   "abc", "4abc", "",
                       "1e3",  " ",    "+",   "4097",
                       "99999999999999999999"};  // ERANGE overflow
  for (const char* text : bad) {
    std::string warning;
    EXPECT_EQ(rlc::exec::parse_thread_count(text, &warning), 0u) << text;
    EXPECT_NE(warning.find("RLC_NUM_THREADS"), std::string::npos) << text;
    EXPECT_NE(warning.find("hardware concurrency"), std::string::npos) << text;
  }
}

TEST(ThreadPool, ParseThreadCountNullIsSilentDefault) {
  std::string warning;
  EXPECT_EQ(rlc::exec::parse_thread_count(nullptr, &warning), 0u);
  EXPECT_TRUE(warning.empty());  // unset env is not an error
}

TEST(ThreadPool, ParallelForRunsEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 3u, 7u}) {
    ThreadPool pool(threads);
    ASSERT_EQ(pool.size(), threads);
    const std::size_t n = 997;  // prime, so chunks never divide evenly
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "threads " << threads << " index " << i;
    }
  }
}

TEST(ThreadPool, ParallelForHandlesEdgeShapes) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // n == 1 runs inline on the caller.
  std::atomic<int> one{0};
  pool.parallel_for(1, [&](std::size_t i) { one += static_cast<int>(i) + 1; });
  EXPECT_EQ(one.load(), 1);
  // Grain far larger than n still covers everything.
  std::vector<std::atomic<int>> hits(5);
  pool.parallel_for(
      5, [&](std::size_t i) { hits[i].fetch_add(1); }, /*grain=*/1000);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelMapIsOrderedAndDeterministic) {
  std::vector<int> items(512);
  std::iota(items.begin(), items.end(), 0);
  const auto expect = [&] {
    std::vector<long> out;
    for (int v : items) out.push_back(3L * v + 1);
    return out;
  }();
  for (const std::size_t threads : {1u, 2u, 5u}) {
    ThreadPool pool(threads);
    const auto got = rlc::exec::parallel_map(
        pool, items, [](const int& v) { return 3L * v + 1; });
    EXPECT_EQ(got, expect) << "threads " << threads;
  }
}

TEST(ThreadPool, FirstExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  const auto boom = [](std::size_t i) {
    if (i == 137) throw std::runtime_error("boom at 137");
  };
  EXPECT_THROW(pool.parallel_for(1000, boom), std::runtime_error);
  // The pool must remain fully usable after a failed loop.
  std::atomic<long> sum{0};
  pool.parallel_for(100, [&](std::size_t i) {
    sum.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 99L * 100L / 2L);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<long> total{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(16, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(Counters, ConcurrentRecordingAggregatesExactly) {
  Counters counters;
  ThreadPool pool(8);
  const std::size_t n = 20000;
  pool.parallel_for(n, [&](std::size_t i) {
    counters.record_solve(static_cast<std::int64_t>(i % 5), i % 7 == 0,
                          i % 13 == 0, 1e-6);
  });
  const auto s = counters.snapshot();
  std::int64_t iters = 0, fallbacks = 0, failures = 0;
  for (std::size_t i = 0; i < n; ++i) {
    iters += static_cast<std::int64_t>(i % 5);
    if (i % 7 == 0) ++fallbacks;
    if (i % 13 == 0) ++failures;
  }
  EXPECT_EQ(s.tasks, static_cast<std::int64_t>(n));
  EXPECT_EQ(s.newton_iterations, iters);
  EXPECT_EQ(s.fallbacks, fallbacks);
  EXPECT_EQ(s.failures, failures);
  EXPECT_NEAR(s.wall_total_s, 1e-6 * static_cast<double>(n), 1e-9 * n);
  EXPECT_NEAR(s.wall_min_s, 1e-6, 2e-9);
  EXPECT_NEAR(s.wall_max_s, 1e-6, 2e-9);
  EXPECT_NEAR(s.wall_mean_s(), 1e-6, 2e-9);

  const std::string text = counters.summary("unit");
  EXPECT_NE(text.find("unit"), std::string::npos);
  EXPECT_NE(text.find("tasks 20000"), std::string::npos);

  counters.reset();
  const auto z = counters.snapshot();
  EXPECT_EQ(z.tasks, 0);
  EXPECT_EQ(z.newton_iterations, 0);
  EXPECT_EQ(z.wall_min_s, 0.0);
  EXPECT_EQ(z.wall_mean_s(), 0.0);
}

TEST(Counters, EmptySummaryIsWellFormed) {
  const Counters counters;
  const auto s = counters.snapshot();
  EXPECT_EQ(s.tasks, 0);
  EXPECT_EQ(s.wall_min_s, 0.0);
  EXPECT_EQ(counters.summary().find("[solver counters]"), 0u);
}

}  // namespace
