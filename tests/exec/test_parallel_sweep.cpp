/// Determinism regression for the parallel sweep path: the chunked-
/// continuation parallel optimize_rlc_sweep must agree with the serial
/// warm-start reference point-for-point (h, k, tau within 1e-9 relative)
/// across the Figure 4-7 inductance grids at both technology nodes, and
/// must return results in input order for any thread count — including a
/// pool forced to one thread via RLC_NUM_THREADS.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "rlc/core/optimizer.hpp"
#include "rlc/exec/counters.hpp"
#include "rlc/exec/thread_pool.hpp"

namespace {

using namespace rlc::core;

/// The grid behind Figures 4-7: 0..5 nH/mm in 26 points.
std::vector<double> figure_grid() {
  std::vector<double> ls;
  for (int i = 0; i <= 25; ++i) ls.push_back(5.0e-6 * i / 25.0);
  return ls;
}

void expect_pointwise_match(const std::vector<OptimResult>& ref,
                            const std::vector<OptimResult>& got,
                            double rel_tol, const std::string& what) {
  ASSERT_EQ(ref.size(), got.size()) << what;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(ref[i].converged, got[i].converged) << what << " point " << i;
    if (!ref[i].converged) continue;
    EXPECT_NEAR(got[i].h, ref[i].h, rel_tol * std::abs(ref[i].h))
        << what << " point " << i;
    EXPECT_NEAR(got[i].k, ref[i].k, rel_tol * std::abs(ref[i].k))
        << what << " point " << i;
    EXPECT_NEAR(got[i].tau, ref[i].tau, rel_tol * std::abs(ref[i].tau))
        << what << " point " << i;
  }
}

TEST(ParallelSweep, MatchesSerialOnFigureGridsAtBothNodes) {
  const auto ls = figure_grid();
  for (const auto& tech : {Technology::nm250(), Technology::nm100()}) {
    const auto serial = optimize_rlc_sweep(tech, ls);  // reference path
    for (const std::size_t threads : {1u, 2u, 3u, 8u}) {
      rlc::exec::ThreadPool pool(threads);
      SweepOptions sweep;
      sweep.pool = &pool;
      const auto par = optimize_rlc_sweep(tech, ls, sweep);
      expect_pointwise_match(serial, par, 1e-9,
                             tech.name + " x" + std::to_string(threads));
    }
  }
}

TEST(ParallelSweep, ResultsAreInInputOrderForReversedGrid) {
  // Feed the grid backwards: output i must correspond to input i (checked
  // against per-point independent solves), so collection is input-ordered
  // rather than completion-ordered.
  auto ls = figure_grid();
  std::reverse(ls.begin(), ls.end());
  rlc::exec::ThreadPool pool(4);
  SweepOptions sweep;
  sweep.pool = &pool;
  sweep.chunk = 3;
  const auto tech = Technology::nm250();
  const auto par = optimize_rlc_sweep(tech, ls, sweep);
  ASSERT_EQ(par.size(), ls.size());
  for (std::size_t i = 0; i < ls.size(); ++i) {
    ASSERT_TRUE(par[i].converged) << i;
    const auto solo = optimize_rlc(tech, ls[i]);
    ASSERT_TRUE(solo.converged) << i;
    EXPECT_NEAR(par[i].h, solo.h, 1e-6 * solo.h) << i;
    EXPECT_NEAR(par[i].k, solo.k, 1e-6 * solo.k) << i;
  }
}

TEST(ParallelSweep, ParallelPathIsBitIdenticalForAnyThreadCount) {
  // The parallel path must not depend on the pool size AT ALL — including a
  // pool forced to one thread via RLC_NUM_THREADS.  (It is allowed to differ
  // from the parallel=false serial reference at rounding level, because the
  // chunk seeds warm-start differently; what may not vary is the answer for
  // a given chunking as threads change.)
  ::setenv("RLC_NUM_THREADS", "1", 1);
  rlc::exec::ThreadPool pool1;  // sized from the env override
  ::unsetenv("RLC_NUM_THREADS");
  ASSERT_EQ(pool1.size(), 1u);
  const auto ls = figure_grid();
  const auto tech = Technology::nm100();
  SweepOptions sweep;
  sweep.pool = &pool1;
  const auto one = optimize_rlc_sweep(tech, ls, sweep);
  for (const std::size_t threads : {2u, 5u}) {
    rlc::exec::ThreadPool pool(threads);
    sweep.pool = &pool;
    const auto par = optimize_rlc_sweep(tech, ls, sweep);
    ASSERT_EQ(par.size(), one.size());
    for (std::size_t i = 0; i < one.size(); ++i) {
      EXPECT_EQ(par[i].h, one[i].h) << i;
      EXPECT_EQ(par[i].k, one[i].k) << i;
      EXPECT_EQ(par[i].tau, one[i].tau) << i;
      EXPECT_EQ(par[i].newton_iterations, one[i].newton_iterations) << i;
    }
  }
}

TEST(ParallelSweep, CountersSeeEverySolveExactlyOnce) {
  const auto ls = figure_grid();
  const auto tech = Technology::nm250();
  for (const bool parallel : {false, true}) {
    rlc::exec::ThreadPool pool(4);
    rlc::exec::Counters counters;
    SweepOptions sweep;
    sweep.parallel = parallel;
    sweep.pool = &pool;
    sweep.counters = &counters;
    const auto rs = optimize_rlc_sweep(tech, ls, sweep);
    ASSERT_EQ(rs.size(), ls.size());
    const auto s = counters.snapshot();
    EXPECT_EQ(s.tasks, static_cast<std::int64_t>(ls.size())) << parallel;
    EXPECT_EQ(s.failures, 0) << parallel;
    EXPECT_EQ(s.fallbacks, 0) << parallel;
    EXPECT_GT(s.newton_iterations, 0) << parallel;
    EXPECT_GT(s.wall_total_s, 0.0) << parallel;
    EXPECT_GE(s.wall_max_s, s.wall_min_s) << parallel;
  }
}

TEST(ParallelSweep, ChunkSizeDoesNotChangeResults) {
  const auto ls = figure_grid();
  const auto tech = Technology::nm100();
  const auto serial = optimize_rlc_sweep(tech, ls);
  for (const std::size_t chunk : {1u, 2u, 5u, 26u, 100u}) {
    rlc::exec::ThreadPool pool(3);
    SweepOptions sweep;
    sweep.pool = &pool;
    sweep.chunk = chunk;
    const auto par = optimize_rlc_sweep(tech, ls, sweep);
    expect_pointwise_match(serial, par, 1e-9,
                           "chunk " + std::to_string(chunk));
  }
}

}  // namespace
