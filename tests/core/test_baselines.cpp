#include "rlc/core/baselines.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rlc/core/delay.hpp"
#include "rlc/core/elmore.hpp"
#include "rlc/core/optimizer.hpp"

namespace rlc::core {
namespace {

TEST(KahngMuddu, CriticallyDampedDelayClosedForm) {
  // (1 + x) e^{-x} = 0.5 at x = 1.67835; tau = x b1 / 2.
  const PadeCoeffs pc{2e-10, 1e-20};
  EXPECT_NEAR(critically_damped_delay(pc), 0.5 * 1.6783469900166605 * 2e-10,
              1e-18);
}

TEST(KahngMuddu, MatchesExactSolverWhenCriticallyDamped) {
  const double b1 = 3e-10;
  const TwoPole sys(PadeCoeffs{b1, 0.25 * b1 * b1});
  const auto exact = threshold_delay(sys);
  ASSERT_TRUE(exact.converged);
  EXPECT_NEAR(critically_damped_delay({b1, 0.25 * b1 * b1}), exact.tau,
              1e-6 * exact.tau);
}

TEST(KahngMuddu, BlindToInductanceTheExactSolverSees) {
  // The paper's Section 2.1 criticism, as a test: b1 has no l term, so the
  // critically-damped approximation returns the same delay for any l while
  // the true delay changes by tens of percent.
  const auto tech = Technology::nm100();
  const auto rc = rc_optimum(tech);
  const auto pc0 = pade_coeffs_hk(tech.rep, tech.line(0.0), rc.h, rc.k);
  const auto pc5 = pade_coeffs_hk(tech.rep, tech.line(5e-6), rc.h, rc.k);
  EXPECT_DOUBLE_EQ(critically_damped_delay(pc0), critically_damped_delay(pc5));
  const double t0 = threshold_delay(TwoPole(pc0)).tau;
  const double t5 = threshold_delay(TwoPole(pc5)).tau;
  EXPECT_GT(t5 / t0, 1.5);
}

TEST(KahngMuddu, ThresholdValidation) {
  EXPECT_THROW(critically_damped_delay({1e-10, 1e-21}, 0.0), std::domain_error);
  EXPECT_THROW(critically_damped_delay({1e-10, 1e-21}, 1.0), std::domain_error);
}

TEST(InductanceParameter, DimensionlessAndMonotone) {
  const auto tech = Technology::nm250();
  EXPECT_DOUBLE_EQ(inductance_parameter(tech, 0.0), 0.0);
  EXPECT_GT(inductance_parameter(tech, 2e-6), inductance_parameter(tech, 1e-6));
  EXPECT_THROW(inductance_parameter(tech, -1.0), std::domain_error);
}

class CurveFitTest : public ::testing::Test {
 protected:
  static std::vector<double> training_ls() {
    std::vector<double> ls;
    for (int i = 1; i <= 10; ++i) ls.push_back(i * 0.5e-6);
    return ls;
  }
};

TEST_F(CurveFitTest, FitsTrainingRangeWell) {
  const auto tech = Technology::nm250();
  const auto fitb = CurveFitBaseline::fit(tech, training_ls());
  // Inside the fitted range the curve-fit tracks the exact optimizer's h
  // and k within a few percent (the Ismail-Friedman claim).
  OptimOptions opts;
  for (double l : {1e-6, 2.5e-6, 4e-6}) {
    const auto exact = optimize_rlc(tech, l, opts);
    ASSERT_TRUE(exact.converged);
    opts.h0 = exact.h;
    opts.k0 = exact.k;
    EXPECT_NEAR(fitb.h_opt(tech, l), exact.h, 0.06 * exact.h) << l;
    EXPECT_NEAR(fitb.k_opt(tech, l), exact.k, 0.06 * exact.k) << l;
  }
}

TEST_F(CurveFitTest, MissesThePadeEffectAtZeroInductance) {
  // At l = 0 the fitted family forces h = h_optRC exactly, but the true
  // optimum is ~5% shorter — the effect the paper highlights as invisible
  // to curve-fitted formulas (Figure 5 discussion).
  const auto tech = Technology::nm250();
  const auto fitb = CurveFitBaseline::fit(tech, training_ls());
  const auto rc = rc_optimum(tech);
  EXPECT_DOUBLE_EQ(fitb.h_opt(tech, 0.0), rc.h);
  const auto exact = optimize_rlc(tech, 0.0);
  ASSERT_TRUE(exact.converged);
  EXPECT_LT(exact.h, 0.97 * rc.h);
}

TEST_F(CurveFitTest, CostsDelayOutsideItsComfortZone) {
  // Using the curve-fitted (h, k) must never beat the exact optimizer, and
  // its delay penalty is measurable.
  const auto tech = Technology::nm250();
  const auto fitb = CurveFitBaseline::fit(tech, training_ls());
  for (double l : {0.5e-6, 2e-6, 5e-6}) {
    const auto exact = optimize_rlc(tech, l);
    const double fit_dpl = delay_per_length(
        tech.rep, tech.line(l), fitb.h_opt(tech, l), fitb.k_opt(tech, l));
    EXPECT_GE(fit_dpl, exact.delay_per_length * (1.0 - 1e-9)) << l;
  }
}

TEST_F(CurveFitTest, RequiresEnoughPoints) {
  const auto tech = Technology::nm250();
  EXPECT_THROW(CurveFitBaseline::fit(tech, {0.0, 1e-6}), std::invalid_argument);
}

TEST_F(CurveFitTest, ReportsFittedRange) {
  const auto tech = Technology::nm250();
  const auto fitb = CurveFitBaseline::fit(tech, training_ls());
  EXPECT_GT(fitb.x_min(), 0.0);
  EXPECT_GT(fitb.x_max(), fitb.x_min());
  EXPECT_GT(fitb.a_h(), 0.0);
  EXPECT_GT(fitb.a_k(), 0.0);
}

}  // namespace
}  // namespace rlc::core
