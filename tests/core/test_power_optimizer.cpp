#include "rlc/core/optimize_api.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "rlc/core/delay.hpp"
#include "rlc/core/power.hpp"

namespace rlc::core {
namespace {

constexpr double kL = 1.0e-6;  // 1 nH/mm
constexpr double kInf = std::numeric_limits<double>::infinity();

OptimizeRequest power_request(double eps) {
  OptimizeRequest req;
  req.objective = Objective::kPower;
  req.l = kL;
  req.constraints.delay_slack_eps = eps;
  return req;
}

/// Brute-force grid evaluation over the request's own domain.
struct Grid {
  std::vector<double> hg, kg;
  OptimResult un;
};

Grid make_grid(const Technology& tech, const OptimizeRequest& req) {
  Grid g;
  g.un = optimize_rlc(tech, req.l, req.optim);
  EXPECT_TRUE(g.un.converged);
  g.hg = log_grid(g.un.h, req.domain.h_min_scale, req.domain.h_max_scale,
                  req.domain.h_points);
  g.kg = log_grid(g.un.k, req.domain.k_min_scale, req.domain.k_max_scale,
                  req.domain.k_points);
  return g;
}

double grid_dpl(const Technology& tech, double h, double k, double f) {
  DelayOptions d;
  d.f = f;
  const DelayResult dr = segment_delay(tech.rep, tech.line(kL), h, k, d);
  return dr.converged ? dr.tau / h : kInf;
}

TEST(OptimizeApi, DelayObjectiveMatchesLegacyWrapperBitwise) {
  for (const auto& tech : {Technology::nm250(), Technology::nm100()}) {
    OptimizeRequest req;
    req.l = kL;
    const auto resp = optimize(tech, req);
    ASSERT_TRUE(resp.is_ok()) << tech.name;
    const OptimResult direct = optimize_rlc(tech, kL);
    EXPECT_EQ(resp->sizing.h, direct.h) << tech.name;
    EXPECT_EQ(resp->sizing.k, direct.k) << tech.name;
    EXPECT_EQ(resp->sizing.tau, direct.tau) << tech.name;
    EXPECT_EQ(resp->sizing.delay_per_length, direct.delay_per_length);
    EXPECT_FALSE(resp->has_power);
    EXPECT_FALSE(resp->has_noise);
    const auto wrapped = try_optimize_rlc(tech, kL);
    ASSERT_TRUE(wrapped.is_ok());
    EXPECT_EQ(wrapped->h, direct.h);
    EXPECT_EQ(wrapped->k, direct.k);
  }
}

TEST(OptimizeApi, ZeroSlackReturnsDelayOptimumBitwise) {
  const auto tech = Technology::nm100();
  const auto resp = optimize(tech, power_request(0.0));
  ASSERT_TRUE(resp.is_ok());
  const OptimResult un = optimize_rlc(tech, kL);
  EXPECT_EQ(resp->sizing.h, un.h);
  EXPECT_EQ(resp->sizing.k, un.k);
  EXPECT_EQ(resp->sizing.tau, un.tau);
  EXPECT_EQ(resp->sizing.delay_per_length, un.delay_per_length);
  EXPECT_TRUE(resp->delay_constraint_active);
  EXPECT_TRUE(resp->has_power);
  EXPECT_EQ(resp->power.total(), resp->power_ref);
  EXPECT_EQ(resp->delay_ref, un.delay_per_length);
}

TEST(OptimizeApi, InfiniteSlackIsTheMinimumPowerGridPointBitwise) {
  for (const auto& tech : {Technology::nm250(), Technology::nm100()}) {
    const OptimizeRequest req = power_request(kInf);
    const auto resp = optimize(tech, req);
    ASSERT_TRUE(resp.is_ok()) << tech.name;
    const Grid g = make_grid(tech, req);
    // The unconstrained minimum is the (h_max, k_min) corner of the shared
    // log grid — same arithmetic, so bitwise equal.
    EXPECT_EQ(resp->sizing.h, g.hg.back()) << tech.name;
    EXPECT_EQ(resp->sizing.k, g.kg.front()) << tech.name;
    EXPECT_FALSE(resp->delay_constraint_active);
    // And it really is the cheapest grid point.
    double min_power = kInf;
    for (double k : g.kg) {
      for (double h : g.hg) {
        min_power = std::min(min_power, chain_power_per_length(tech, h, k));
      }
    }
    EXPECT_EQ(resp->power.total(), min_power) << tech.name;
  }
}

TEST(OptimizeApi, SlackConstraintIsMetAndBeatsTheGrid) {
  for (const auto& tech : {Technology::nm250(), Technology::nm100()}) {
    for (const double eps : {0.05, 0.10}) {
      const OptimizeRequest req = power_request(eps);
      const auto resp = optimize(tech, req);
      ASSERT_TRUE(resp.is_ok()) << tech.name << " eps=" << eps;
      const double bound = (1.0 + eps) * resp->delay_ref;
      EXPECT_LE(resp->sizing.delay_per_length, bound * (1.0 + 1e-9));
      EXPECT_LT(resp->power.total(), resp->power_ref);
      EXPECT_TRUE(resp->delay_constraint_active);
      // Brute-force cross-check: the continuous boundary solve must do at
      // least as well as every feasible point of the shared grid.
      const Grid g = make_grid(tech, req);
      double grid_best = kInf;
      for (double k : g.kg) {
        for (double h : g.hg) {
          if (grid_dpl(tech, h, k, req.optim.f) > bound) continue;
          grid_best =
              std::min(grid_best, chain_power_per_length(tech, h, k));
        }
      }
      ASSERT_TRUE(std::isfinite(grid_best));
      EXPECT_LE(resp->power.total(), grid_best * (1.0 + 1e-12))
          << tech.name << " eps=" << eps;
    }
  }
}

TEST(OptimizeApi, PowerFallsMonotonicallyWithSlack) {
  const auto tech = Technology::nm100();
  double prev = kInf;
  for (const double eps : {0.0, 0.02, 0.05, 0.10, 0.20}) {
    const auto resp = optimize(tech, power_request(eps));
    ASSERT_TRUE(resp.is_ok()) << eps;
    EXPECT_LE(resp->power.total(), prev * (1.0 + 1e-12)) << eps;
    prev = resp->power.total();
  }
}

TEST(OptimizeApi, ParetoFrontIsNonDominatedAndOrdered) {
  const auto tech = Technology::nm100();
  OptimizeRequest req = power_request(kInf);
  req.domain.h_points = 13;
  req.domain.k_points = 13;
  const auto front = pareto_front(tech, req);
  ASSERT_TRUE(front.is_ok());
  ASSERT_GE(front->size(), 3u);
  for (std::size_t i = 1; i < front->size(); ++i) {
    EXPECT_GT((*front)[i].delay_per_length, (*front)[i - 1].delay_per_length);
    EXPECT_LT((*front)[i].power_per_length, (*front)[i - 1].power_per_length);
  }
  // No point dominates another (quadratic check is fine at this size).
  for (const auto& a : *front) {
    for (const auto& b : *front) {
      if (&a == &b) continue;
      const bool a_dominates_b =
          a.delay_per_length <= b.delay_per_length &&
          a.power_per_length <= b.power_per_length &&
          (a.delay_per_length < b.delay_per_length ||
           a.power_per_length < b.power_per_length);
      EXPECT_FALSE(a_dominates_b) << "dominated point on front";
    }
  }
  // The frugal end is the eps = inf answer, bitwise.
  const auto resp = optimize(tech, req);
  ASSERT_TRUE(resp.is_ok());
  EXPECT_EQ(front->back().h, resp->sizing.h);
  EXPECT_EQ(front->back().k, resp->sizing.k);
  EXPECT_EQ(front->back().power_per_length, resp->power.total());
}

TEST(OptimizeApi, ParetoFrontIsThreadCountInvariant) {
  const auto tech = Technology::nm250();
  OptimizeRequest req = power_request(kInf);
  req.domain.h_points = 9;
  req.domain.k_points = 9;
  exec::ThreadPool pool1(1), pool3(3);
  const auto f1 = pareto_front(tech, req, &pool1);
  const auto f3 = pareto_front(tech, req, &pool3);
  ASSERT_TRUE(f1.is_ok());
  ASSERT_TRUE(f3.is_ok());
  ASSERT_EQ(f1->size(), f3->size());
  for (std::size_t i = 0; i < f1->size(); ++i) {
    EXPECT_EQ((*f1)[i].h, (*f3)[i].h);
    EXPECT_EQ((*f1)[i].k, (*f3)[i].k);
    EXPECT_EQ((*f1)[i].delay_per_length, (*f3)[i].delay_per_length);
    EXPECT_EQ((*f1)[i].power_per_length, (*f3)[i].power_per_length);
  }
}

TEST(OptimizeApi, RejectsInvalidRequestsWithTypedStatus) {
  const auto tech = Technology::nm100();
  {
    OptimizeRequest req = power_request(0.05);
    req.conductors = 2;
    req.coupling_cc = 1e-12;
    const auto resp = optimize(tech, req);
    ASSERT_FALSE(resp.is_ok());
    EXPECT_EQ(resp.status().code(), StatusCode::kInvalidArgument);
  }
  {
    OptimizeRequest req = power_request(-0.1);
    EXPECT_EQ(optimize(tech, req).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    OptimizeRequest req =
        power_request(std::numeric_limits<double>::quiet_NaN());
    EXPECT_EQ(optimize(tech, req).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    OptimizeRequest req = power_request(0.05);
    req.domain.h_points = 1;
    EXPECT_EQ(optimize(tech, req).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(pareto_front(tech, req).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    OptimizeRequest req = power_request(0.05);
    req.power.activity = 0.0;
    EXPECT_EQ(optimize(tech, req).status().code(),
              StatusCode::kInvalidArgument);
  }
}

}  // namespace
}  // namespace rlc::core
