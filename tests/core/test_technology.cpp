#include "rlc/core/technology.hpp"

#include <gtest/gtest.h>

namespace rlc::core {
namespace {

TEST(Technology, Table1Values250nm) {
  const auto t = Technology::nm250();
  EXPECT_DOUBLE_EQ(t.r, 4.4e3);          // 4.4 Ohm/mm
  EXPECT_DOUBLE_EQ(t.c, 203.50e-12);     // 203.50 pF/m
  EXPECT_DOUBLE_EQ(t.eps_r, 3.3);
  EXPECT_DOUBLE_EQ(t.width, 2e-6);
  EXPECT_DOUBLE_EQ(t.pitch, 4e-6);
  EXPECT_DOUBLE_EQ(t.thickness, 2.5e-6);
  EXPECT_DOUBLE_EQ(t.t_ins, 13.9e-6);
  EXPECT_DOUBLE_EQ(t.rep.rs, 11.784e3);
  EXPECT_DOUBLE_EQ(t.rep.c0, 1.6314e-15);
  EXPECT_DOUBLE_EQ(t.rep.cp, 6.2474e-15);
}

TEST(Technology, Table1Values100nm) {
  const auto t = Technology::nm100();
  EXPECT_DOUBLE_EQ(t.c, 123.33e-12);
  EXPECT_DOUBLE_EQ(t.eps_r, 2.0);
  EXPECT_DOUBLE_EQ(t.t_ins, 15.4e-6);
  EXPECT_DOUBLE_EQ(t.rep.rs, 7.534e3);
  EXPECT_DOUBLE_EQ(t.rep.c0, 0.758e-15);
  EXPECT_DOUBLE_EQ(t.rep.cp, 3.68e-15);
}

TEST(Technology, ScalingTrendsMatchThePaper) {
  // The paper's central claim attributes growing inductance sensitivity to
  // the reduction of driver capacitance and output resistance with scaling.
  const auto a = Technology::nm250();
  const auto b = Technology::nm100();
  EXPECT_LT(b.rep.rs, a.rep.rs);
  EXPECT_LT(b.rep.c0, a.rep.c0);
  EXPECT_LT(b.rep.cp, a.rep.cp);
  EXPECT_LT(b.c, a.c);  // lower-k dielectric at 100 nm
  EXPECT_DOUBLE_EQ(a.r, b.r);  // same top-metal geometry
}

TEST(Technology, ArtificialDielectricVariant) {
  const auto v = Technology::nm100_with_250nm_dielectric();
  const auto ref250 = Technology::nm250();
  const auto ref100 = Technology::nm100();
  EXPECT_DOUBLE_EQ(v.c, ref250.c);
  EXPECT_DOUBLE_EQ(v.eps_r, ref250.eps_r);
  // Driver parameters stay those of the 100 nm node.
  EXPECT_DOUBLE_EQ(v.rep.rs, ref100.rep.rs);
  EXPECT_DOUBLE_EQ(v.rep.c0, ref100.rep.c0);
}

TEST(Technology, LineBuildsWithGivenInductance) {
  const auto t = Technology::nm250();
  const auto line = t.line(2e-6);
  EXPECT_DOUBLE_EQ(line.r, t.r);
  EXPECT_DOUBLE_EQ(line.c, t.c);
  EXPECT_DOUBLE_EQ(line.l, 2e-6);
}

TEST(Repeater, ScalingLaw) {
  const Repeater rep{1000.0, 1e-15, 4e-15};
  const auto dl = rep.scaled(10.0);
  EXPECT_DOUBLE_EQ(dl.rs_eff, 100.0);
  EXPECT_DOUBLE_EQ(dl.cp_eff, 4e-14);
  EXPECT_DOUBLE_EQ(dl.cl_eff, 1e-14);
  EXPECT_THROW(rep.scaled(0.0), std::domain_error);
  EXPECT_THROW(rep.scaled(-2.0), std::domain_error);
}

TEST(Technology, InterpolationRecoversAnchors) {
  const auto a = Technology::interpolated(250e-9);
  const auto ref_a = Technology::nm250();
  EXPECT_NEAR(a.rep.rs, ref_a.rep.rs, 1e-6 * ref_a.rep.rs);
  EXPECT_NEAR(a.c, ref_a.c, 1e-6 * ref_a.c);
  EXPECT_NEAR(a.vdd, ref_a.vdd, 1e-9);
  const auto b = Technology::interpolated(100e-9);
  const auto ref_b = Technology::nm100();
  EXPECT_NEAR(b.rep.c0, ref_b.rep.c0, 1e-6 * ref_b.rep.c0);
  EXPECT_NEAR(b.vdd, ref_b.vdd, 1e-9);
}

TEST(Technology, InterpolationIsMonotoneBetweenAnchors) {
  double prev_rs = Technology::nm250().rep.rs + 1.0;
  for (double node : {250e-9, 180e-9, 130e-9, 100e-9, 70e-9}) {
    const auto t = Technology::interpolated(node);
    EXPECT_LT(t.rep.rs, prev_rs) << node;
    prev_rs = t.rep.rs;
    EXPECT_NO_THROW(t.validate());
  }
}

TEST(Technology, InterpolationRejectsAbsurdNodes) {
  EXPECT_THROW(Technology::interpolated(1e-9), std::domain_error);
  EXPECT_THROW(Technology::interpolated(5e-6), std::domain_error);
}

TEST(Technology, ValidateCatchesCorruption) {
  auto t = Technology::nm250();
  t.c = -1.0;
  EXPECT_THROW(t.validate(), std::domain_error);
  t = Technology::nm250();
  t.pitch = 0.5 * t.width;
  EXPECT_THROW(t.validate(), std::domain_error);
}

}  // namespace
}  // namespace rlc::core
