#include "rlc/core/pade.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "rlc/math/derivative.hpp"
#include "rlc/tline/transfer.hpp"

namespace rlc::core {
namespace {

TEST(Pade, HandComputedCoefficientsNoDriver) {
  // Negligible driver/load: b1 = r c h^2/2, b2 = l c h^2/2 + (r c h^2)^2/24.
  const tline::LineParams line{100.0, 1e-7, 1e-10};
  const double h = 0.01;
  const tline::DriverLoad dl{1e-9, 1e-21, 1e-21};  // effectively absent
  const auto pc = pade_coeffs(line, h, dl);
  const double rch2 = 100.0 * 1e-10 * h * h;
  EXPECT_NEAR(pc.b1, rch2 / 2.0, 1e-6 * rch2);
  const double b2_expect = 1e-7 * 1e-10 * h * h / 2.0 + rch2 * rch2 / 24.0;
  EXPECT_NEAR(pc.b2, b2_expect, 1e-6 * b2_expect);
}

TEST(Pade, MatchesExactTransferTaylorMoments) {
  // H_exact(s) = 1 - b1 s + (b1^2 - b2) s^2 + O(s^3): recover the moments by
  // finite differences of the exact transfer function at s = 0 and compare
  // with the closed-form coefficients (this validates the Eq. 2 expansion
  // against the Eq. 1 transfer function, the paper's own derivation).
  const auto tech = Technology::nm250();
  const double h = 0.0144, k = 578.0;
  const auto line = tech.line(1e-6);
  const auto dl = tech.rep.scaled(k);
  const auto pc = pade_coeffs(line, h, dl);

  const double s0 = 1.0 / pc.b1;  // natural frequency scale
  const auto H = [&](double x) {
    return tline::exact_transfer_dc_safe(line, h, dl, {x, 0.0}).real();
  };
  const double ds = 1e-3 * s0;
  const double m1 = (H(ds) - H(-ds)) / (2.0 * ds);               // -b1
  const double m2 = (H(ds) - 2.0 * H(0.0) + H(-ds)) / (ds * ds); // 2(b1^2-b2)
  EXPECT_NEAR(m1, -pc.b1, 1e-5 * pc.b1);
  EXPECT_NEAR(0.5 * m2, pc.b1 * pc.b1 - pc.b2,
              1e-4 * std::abs(pc.b1 * pc.b1 - pc.b2));
}

TEST(Pade, TransferEvaluation) {
  const PadeCoeffs pc{1e-10, 1e-21};
  const auto h0 = pade_transfer(pc, {0.0, 0.0});
  EXPECT_DOUBLE_EQ(h0.real(), 1.0);
  const auto h1 = pade_transfer(pc, {0.0, 1e10});
  EXPECT_LT(std::abs(h1), 1.0);
}

TEST(Pade, InputValidation) {
  const tline::LineParams line{100.0, 1e-7, 1e-10};
  EXPECT_THROW(pade_coeffs(line, 0.0, {}), std::domain_error);
  EXPECT_THROW(pade_coeffs({0.0, 1e-7, 1e-10}, 1.0, {}), std::domain_error);
  const Repeater rep{1e3, 1e-15, 1e-15};
  EXPECT_THROW(pade_derivs_hk(rep, line, 0.01, 0.0), std::domain_error);
}

// ---- Analytic derivative verification (property-style sweep). ----

using DerivCase = std::tuple<double, double, double>;  // (l, h, k)

class PadeDerivSweep : public ::testing::TestWithParam<DerivCase> {};

TEST_P(PadeDerivSweep, AnalyticDerivativesMatchFiniteDifferences) {
  const auto [l, h, k] = GetParam();
  const auto tech = Technology::nm100();
  const auto line = tech.line(l);
  const auto d = pade_derivs_hk(tech.rep, line, h, k);

  const auto b1_of_h = [&](double hh) {
    return pade_coeffs_hk(tech.rep, line, hh, k).b1;
  };
  const auto b2_of_h = [&](double hh) {
    return pade_coeffs_hk(tech.rep, line, hh, k).b2;
  };
  const auto b1_of_k = [&](double kk) {
    return pade_coeffs_hk(tech.rep, line, h, kk).b1;
  };
  const auto b2_of_k = [&](double kk) {
    return pade_coeffs_hk(tech.rep, line, h, kk).b2;
  };
  const double fd_b1h = rlc::math::richardson_diff(b1_of_h, h);
  const double fd_b2h = rlc::math::richardson_diff(b2_of_h, h);
  const double fd_b1k = rlc::math::richardson_diff(b1_of_k, k);
  const double fd_b2k = rlc::math::richardson_diff(b2_of_k, k);
  EXPECT_NEAR(d.db1_dh, fd_b1h, 1e-6 * std::abs(fd_b1h));
  EXPECT_NEAR(d.db2_dh, fd_b2h, 1e-6 * std::abs(fd_b2h));
  EXPECT_NEAR(d.db1_dk, fd_b1k, 1e-5 * std::abs(fd_b1k) + 1e-30);
  EXPECT_NEAR(d.db2_dk, fd_b2k, 1e-5 * std::abs(fd_b2k) + 1e-40);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PadeDerivSweep,
    ::testing::Combine(::testing::Values(0.0, 5e-7, 2e-6, 5e-6),   // l [H/m]
                       ::testing::Values(0.004, 0.011, 0.02),      // h [m]
                       ::testing::Values(50.0, 300.0, 800.0)));    // k

TEST(Pade, B1IndependentOfInductance) {
  // Eq. (2): b1 carries no l term — the reason the Kahng-Muddu critically
  // damped approximation cannot see inductance (Section 2.1).
  const auto tech = Technology::nm250();
  const auto a = pade_coeffs_hk(tech.rep, tech.line(0.0), 0.01, 300.0);
  const auto b = pade_coeffs_hk(tech.rep, tech.line(5e-6), 0.01, 300.0);
  EXPECT_DOUBLE_EQ(a.b1, b.b1);
  EXPECT_GT(b.b2, a.b2);
}

TEST(Pade, B2LinearInInductance) {
  const auto tech = Technology::nm250();
  const double h = 0.012, k = 400.0;
  const auto c0 = pade_coeffs_hk(tech.rep, tech.line(0.0), h, k);
  const auto c1 = pade_coeffs_hk(tech.rep, tech.line(1e-6), h, k);
  const auto c2 = pade_coeffs_hk(tech.rep, tech.line(2e-6), h, k);
  EXPECT_NEAR(c2.b2 - c1.b2, c1.b2 - c0.b2, 1e-9 * c2.b2);
}

}  // namespace
}  // namespace rlc::core
