#include "rlc/core/exact_delay.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "rlc/core/delay.hpp"
#include "rlc/core/elmore.hpp"
#include "rlc/exec/counters.hpp"
#include "rlc/exec/thread_pool.hpp"

namespace rlc::core {
namespace {

TEST(ExactDelay, StepResponseMonotoneEndpoints) {
  const auto tech = Technology::nm250();
  const auto rc = rc_optimum(tech);
  const auto dl = tech.rep.scaled(rc.k);
  const auto est = segment_delay(tech.rep, tech.line(1e-6), rc.h, rc.k);
  const auto v = exact_step_response(tech.line(1e-6), rc.h, dl,
                                     {0.1 * est.tau, est.tau, 8.0 * est.tau});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_LT(v[0], 0.3);           // barely started
  EXPECT_NEAR(v[2], 1.0, 5e-3);   // settled to the rail
  EXPECT_GT(v[1], v[0]);
}

TEST(ExactDelay, AgreesWithTwoPoleAtLowInductance) {
  const auto tech = Technology::nm250();
  const auto rc = rc_optimum(tech);
  const auto est = segment_delay(tech.rep, tech.line(0.0), rc.h, rc.k);
  const auto ex = exact_threshold_delay(tech, 0.0, rc.h, rc.k, est.tau);
  ASSERT_TRUE(ex.has_value());
  EXPECT_NEAR(*ex, est.tau, 0.05 * est.tau);
}

TEST(ExactDelay, ThresholdMonotoneInF) {
  const auto tech = Technology::nm100();
  const auto rc = rc_optimum(tech);
  const auto est = segment_delay(tech.rep, tech.line(1e-6), rc.h, rc.k);
  const auto t25 = exact_threshold_delay(tech, 1e-6, rc.h, rc.k, est.tau, 0.25);
  const auto t50 = exact_threshold_delay(tech, 1e-6, rc.h, rc.k, est.tau, 0.50);
  const auto t75 = exact_threshold_delay(tech, 1e-6, rc.h, rc.k, est.tau, 0.75);
  ASSERT_TRUE(t25 && t50 && t75);
  EXPECT_LT(*t25, *t50);
  EXPECT_LT(*t50, *t75);
}

TEST(ExactDelay, Validation) {
  const auto tech = Technology::nm100();
  const auto rc = rc_optimum(tech);
  EXPECT_THROW(
      exact_threshold_delay(tech, 1e-6, rc.h, rc.k, rc.tau, /*f=*/1.5),
      std::domain_error);
  EXPECT_THROW(exact_threshold_delay(tech, 1e-6, rc.h, rc.k, /*scale=*/0.0),
               std::domain_error);
  // Window that misses the crossing (everything already settled at the
  // lower edge): nullopt rather than a bogus root.
  const auto est = segment_delay(tech.rep, tech.line(1e-6), rc.h, rc.k);
  EXPECT_FALSE(
      exact_threshold_delay(tech, 1e-6, rc.h, rc.k, 1e3 * est.tau).has_value());
}

// ---- Fast exact-waveform engine vs the legacy per-t reference. ----

struct EngineCase {
  Technology tech;
  double l = 0.0, h = 0.0, k = 0.0, tau = 0.0;
};

EngineCase engine_case(const Technology& tech, double l) {
  EngineCase c{tech, l, 0.0, 0.0, 0.0};
  const auto rc = rc_optimum(tech);
  c.h = rc.h;
  c.k = rc.k;
  c.tau = segment_delay(tech.rep, tech.line(l), rc.h, rc.k).tau;
  return c;
}

TEST(ExactEngine, MatchesLegacyWithTenfoldFewerTransferEvals) {
  // The PR's acceptance pair, asserted structurally (eval counts are
  // deterministic, unlike wall time): the engine agrees with the legacy
  // bisection to 1e-3 relative while spending at most a tenth of its
  // Eq. (1) evaluations.  Both technology nodes, RC and ringing RLC.
  for (const auto& tech : {Technology::nm250(), Technology::nm100()}) {
    for (double l : {0.0, 1e-6, 3e-6}) {
      const auto c = engine_case(tech, l);
      ExactOptions legacy;
      legacy.legacy_bisection = true;
      ExactStats ls, es;
      const auto d_legacy =
          exact_threshold_delay(c.tech, c.l, c.h, c.k, c.tau, 0.5, legacy, &ls);
      const auto d_engine = exact_threshold_delay(c.tech, c.l, c.h, c.k, c.tau,
                                                  0.5, ExactOptions{}, &es);
      ASSERT_TRUE(d_legacy.has_value()) << tech.name << " l = " << l;
      ASSERT_TRUE(d_engine.has_value()) << tech.name << " l = " << l;
      EXPECT_NEAR(*d_engine, *d_legacy, 1e-3 * *d_legacy)
          << tech.name << " l = " << l;
      EXPECT_LE(es.transfer_evals * 10, ls.transfer_evals)
          << tech.name << " l = " << l << ": engine " << es.transfer_evals
          << " evals vs legacy " << ls.transfer_evals;
      EXPECT_EQ(es.legacy_fallbacks, 0) << tech.name << " l = " << l;
      EXPECT_GT(es.windows, 0) << tech.name << " l = " << l;
    }
  }
}

TEST(ExactEngine, WindowedWaveformMatchesPerT) {
  // Damped lines: shared-contour windows reproduce the per-t inversion.
  // On strongly ringing lines BOTH fixed-Talbot paths carry a ~1e-2
  // double-precision noise floor (per-t values at M = 48 vs 80 disagree by
  // that much), so only a loose agreement bound is meaningful there; the
  // threshold path recovers full accuracy via per-t refinement, pinned in
  // MatchesLegacyWithTenfoldFewerTransferEvals above.
  struct Case {
    Technology tech;
    double l, tol;
  };
  const std::vector<Case> cases{{Technology::nm250(), 0.0, 1e-6},
                                {Technology::nm250(), 0.25e-6, 1e-3},
                                {Technology::nm100(), 2e-6, 0.25}};
  for (const auto& cs : cases) {
    const auto c = engine_case(cs.tech, cs.l);
    const auto dl = c.tech.rep.scaled(c.k);
    const auto line = c.tech.line(c.l);
    std::vector<double> times;
    for (int i = 1; i <= 40; ++i) times.push_back(8.0 * c.tau * i / 40.0);
    const auto ref = exact_step_response(line, c.h, dl, times);
    ExactStats stats;
    const auto fast = exact_step_response_windowed(line, c.h, dl, times,
                                                   ExactOptions{}, &stats);
    ASSERT_EQ(fast.size(), ref.size());
    for (std::size_t i = 0; i < times.size(); ++i) {
      EXPECT_NEAR(fast[i], ref[i], cs.tol)
          << cs.tech.name << " l = " << cs.l << " t = " << times[i];
    }
    // Shared contours: far fewer transfer evaluations than 40 per-t
    // contours (40 x 48 = 1920 for the legacy path).
    EXPECT_LT(stats.transfer_evals, static_cast<std::int64_t>(40) * 48 / 4);
    EXPECT_GT(stats.windows, 0);
  }
}

TEST(ExactEngine, WaveformFootFarBelowTau) {
  // Deep foot of the waveform (t << tau): each window re-anchors at its own
  // t_max, so early times keep per-t-grade accuracy instead of inheriting a
  // distant contour.  (Below ~0.02 tau the exact kernel itself overflows --
  // the per-t path goes NaN there first, since its per-time contour radius
  // grows as 1/t while a shared window keeps the larger anchor time.)
  const auto c = engine_case(Technology::nm250(), 1e-6);
  const auto dl = c.tech.rep.scaled(c.k);
  const auto line = c.tech.line(c.l);
  const std::vector<double> times{0.03 * c.tau, 0.05 * c.tau, 0.1 * c.tau,
                                  0.3 * c.tau};
  const auto ref = exact_step_response(line, c.h, dl, times);
  const auto fast = exact_step_response_windowed(line, c.h, dl, times);
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_NEAR(fast[i], ref[i], 1e-4) << "t = " << times[i];
    EXPECT_GE(fast[i], -1e-4) << "t = " << times[i];  // foot: near zero
    EXPECT_LT(fast[i], 0.5) << "t = " << times[i];
  }
}

TEST(ExactEngine, NonBracketedReturnsNulloptOnBothPaths) {
  const auto c = engine_case(Technology::nm100(), 1e-6);
  ExactOptions legacy;
  legacy.legacy_bisection = true;
  // Scale so large the response settled long before the search window.
  EXPECT_FALSE(exact_threshold_delay(c.tech, c.l, c.h, c.k, 1e3 * c.tau, 0.5,
                                     legacy)
                   .has_value());
  EXPECT_FALSE(exact_threshold_delay(c.tech, c.l, c.h, c.k, 1e3 * c.tau, 0.5,
                                     ExactOptions{})
                   .has_value());
  // Scale so small the response has not moved inside the window.
  EXPECT_FALSE(exact_threshold_delay(c.tech, c.l, c.h, c.k, 1e-3 * c.tau, 0.5,
                                     legacy)
                   .has_value());
  EXPECT_FALSE(exact_threshold_delay(c.tech, c.l, c.h, c.k, 1e-3 * c.tau, 0.5,
                                     ExactOptions{})
                   .has_value());
}

TEST(ExactEngine, OptionValidation) {
  const auto c = engine_case(Technology::nm100(), 1e-6);
  ExactOptions o;
  o.window_ratio = 1.0;  // threshold descent needs strictly > 1
  EXPECT_THROW(exact_threshold_delay(c.tech, c.l, c.h, c.k, c.tau, 0.5, o),
               std::domain_error);
  // ...but exactly 1 is a legal (degenerate, one-time-per-window) sampling
  // window.
  const auto line = c.tech.line(c.l);
  const auto dl = c.tech.rep.scaled(c.k);
  EXPECT_NO_THROW(
      exact_step_response_windowed(line, c.h, dl, {c.tau, 2.0 * c.tau}, o));
  o.window_ratio = 0.5;
  EXPECT_THROW(exact_step_response_windowed(line, c.h, dl, {c.tau}, o),
               std::domain_error);
  o = ExactOptions{};
  o.grid_points_per_window = 1;
  EXPECT_THROW(exact_threshold_delay(c.tech, c.l, c.h, c.k, c.tau, 0.5, o),
               std::domain_error);
  o = ExactOptions{};
  o.window_points = 3;
  EXPECT_THROW(exact_threshold_delay(c.tech, c.l, c.h, c.k, c.tau, 0.5, o),
               std::domain_error);
  EXPECT_THROW(
      exact_step_response_windowed(line, c.h, dl, {-1.0}, ExactOptions{}),
      std::domain_error);
}

TEST(ExactEngine, SweepParallelMatchesSerialBitIdentical) {
  // exact_sweep must be deterministic: every task builds its own evaluator
  // and contours, so the parallel fan-out returns bit-identical delays to
  // the serial loop for any thread count, in input order.
  const auto tech = Technology::nm250();
  const auto rc = rc_optimum(tech);
  std::vector<double> ls;
  for (int i = 0; i <= 10; ++i) ls.push_back(5.0e-6 * i / 10.0);

  ExactSweepOptions serial;
  serial.parallel = false;
  ExactStats serial_stats;
  serial.stats = &serial_stats;
  const auto ref = exact_sweep(tech, ls, rc.h, rc.k, serial);
  ASSERT_EQ(ref.size(), ls.size());

  for (const std::size_t threads : {1u, 2u, 7u}) {
    rlc::exec::ThreadPool pool(threads);
    rlc::exec::Counters counters;
    ExactSweepOptions par;
    par.pool = &pool;
    par.counters = &counters;
    ExactStats par_stats;
    par.stats = &par_stats;
    const auto got = exact_sweep(tech, ls, rc.h, rc.k, par);
    ASSERT_EQ(got.size(), ref.size()) << threads << " threads";
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(ref[i].has_value(), got[i].has_value())
          << threads << " threads, point " << i;
      if (ref[i]) {
        EXPECT_EQ(*ref[i], *got[i]) << threads << " threads, point " << i;
      }
    }
    // Instrumentation: the counters saw every task, and the aggregated
    // engine stats are schedule-independent.
    const auto snap = counters.snapshot();
    EXPECT_EQ(snap.tasks, static_cast<std::int64_t>(ls.size()));
    EXPECT_EQ(snap.failures, 0);
    EXPECT_GT(snap.wall_total_s, 0.0);
    EXPECT_EQ(par_stats.transfer_evals, serial_stats.transfer_evals);
    EXPECT_EQ(par_stats.windows, serial_stats.windows);
    EXPECT_EQ(par_stats.brent_iterations, serial_stats.brent_iterations);
  }
}

}  // namespace
}  // namespace rlc::core
