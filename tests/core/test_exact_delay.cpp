#include "rlc/core/exact_delay.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rlc/core/delay.hpp"
#include "rlc/core/elmore.hpp"

namespace rlc::core {
namespace {

TEST(ExactDelay, StepResponseMonotoneEndpoints) {
  const auto tech = Technology::nm250();
  const auto rc = rc_optimum(tech);
  const auto dl = tech.rep.scaled(rc.k);
  const auto est = segment_delay(tech.rep, tech.line(1e-6), rc.h, rc.k);
  const auto v = exact_step_response(tech.line(1e-6), rc.h, dl,
                                     {0.1 * est.tau, est.tau, 8.0 * est.tau});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_LT(v[0], 0.3);           // barely started
  EXPECT_NEAR(v[2], 1.0, 5e-3);   // settled to the rail
  EXPECT_GT(v[1], v[0]);
}

TEST(ExactDelay, AgreesWithTwoPoleAtLowInductance) {
  const auto tech = Technology::nm250();
  const auto rc = rc_optimum(tech);
  const auto est = segment_delay(tech.rep, tech.line(0.0), rc.h, rc.k);
  const auto ex = exact_threshold_delay(tech, 0.0, rc.h, rc.k, est.tau);
  ASSERT_TRUE(ex.has_value());
  EXPECT_NEAR(*ex, est.tau, 0.05 * est.tau);
}

TEST(ExactDelay, ThresholdMonotoneInF) {
  const auto tech = Technology::nm100();
  const auto rc = rc_optimum(tech);
  const auto est = segment_delay(tech.rep, tech.line(1e-6), rc.h, rc.k);
  const auto t25 = exact_threshold_delay(tech, 1e-6, rc.h, rc.k, est.tau, 0.25);
  const auto t50 = exact_threshold_delay(tech, 1e-6, rc.h, rc.k, est.tau, 0.50);
  const auto t75 = exact_threshold_delay(tech, 1e-6, rc.h, rc.k, est.tau, 0.75);
  ASSERT_TRUE(t25 && t50 && t75);
  EXPECT_LT(*t25, *t50);
  EXPECT_LT(*t50, *t75);
}

TEST(ExactDelay, Validation) {
  const auto tech = Technology::nm100();
  const auto rc = rc_optimum(tech);
  EXPECT_THROW(
      exact_threshold_delay(tech, 1e-6, rc.h, rc.k, rc.tau, /*f=*/1.5),
      std::domain_error);
  EXPECT_THROW(exact_threshold_delay(tech, 1e-6, rc.h, rc.k, /*scale=*/0.0),
               std::domain_error);
  // Window that misses the crossing (everything already settled at the
  // lower edge): nullopt rather than a bogus root.
  const auto est = segment_delay(tech.rep, tech.line(1e-6), rc.h, rc.k);
  EXPECT_FALSE(
      exact_threshold_delay(tech, 1e-6, rc.h, rc.k, 1e3 * est.tau).has_value());
}

}  // namespace
}  // namespace rlc::core
