#include "rlc/core/tradeoff.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rlc/core/elmore.hpp"

namespace rlc::core {
namespace {

TEST(FixedK, MatchesUnconstrainedAtOptimalK) {
  const auto tech = Technology::nm100();
  const double l = 1e-6;
  const auto full = optimize_rlc(tech, l);
  ASSERT_TRUE(full.converged);
  const auto fixed = optimize_h_for_fixed_k(tech.rep, tech.line(l), full.k);
  ASSERT_TRUE(fixed.converged);
  EXPECT_NEAR(fixed.h, full.h, 1e-3 * full.h);
  EXPECT_NEAR(fixed.delay_per_length, full.delay_per_length,
              1e-6 * full.delay_per_length);
}

TEST(FixedK, SuboptimalKCostsDelay) {
  const auto tech = Technology::nm100();
  const double l = 1e-6;
  const auto full = optimize_rlc(tech, l);
  const auto half = optimize_h_for_fixed_k(tech.rep, tech.line(l), 0.5 * full.k);
  ASSERT_TRUE(half.converged);
  EXPECT_GT(half.delay_per_length, full.delay_per_length);
}

TEST(FixedH, MatchesUnconstrainedAtOptimalH) {
  const auto tech = Technology::nm250();
  const double l = 2e-6;
  const auto full = optimize_rlc(tech, l);
  ASSERT_TRUE(full.converged);
  const auto fixed = optimize_k_for_fixed_h(tech.rep, tech.line(l), full.h);
  ASSERT_TRUE(fixed.converged);
  EXPECT_NEAR(fixed.k, full.k, 2e-3 * full.k);
}

TEST(FixedVariants, InputValidation) {
  const auto tech = Technology::nm100();
  EXPECT_THROW(optimize_h_for_fixed_k(tech.rep, tech.line(1e-6), 0.0),
               std::domain_error);
  EXPECT_THROW(optimize_k_for_fixed_h(tech.rep, tech.line(1e-6), -1.0),
               std::domain_error);
}

TEST(Energy, FormulaAndMonotonicity) {
  const auto tech = Technology::nm100();
  const double h = 0.01, k = 300.0;
  const double expect =
      (tech.c + (tech.rep.c0 + tech.rep.cp) * k / h) * tech.vdd * tech.vdd;
  EXPECT_NEAR(energy_per_length(tech, h, k), expect, 1e-12 * expect);
  EXPECT_GT(energy_per_length(tech, h, 2.0 * k), energy_per_length(tech, h, k));
  EXPECT_THROW(energy_per_length(tech, 0.0, k), std::domain_error);
}

TEST(Tradeoff, ParetoFrontIsMonotone) {
  // Along the sweep from small k to the delay-optimal k: delay falls,
  // energy and area rise — a proper Pareto front.
  const auto tech = Technology::nm100();
  const auto pts = delay_energy_tradeoff(tech, 1.5e-6, 8);
  ASSERT_GE(pts.size(), 6u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GT(pts[i].k, pts[i - 1].k);
    EXPECT_LE(pts[i].delay_per_length, pts[i - 1].delay_per_length * (1 + 1e-9))
        << i;
    EXPECT_GT(pts[i].energy_per_length, pts[i - 1].energy_per_length) << i;
    EXPECT_GT(pts[i].area_per_length, pts[i - 1].area_per_length) << i;
  }
}

TEST(Tradeoff, SmallBuffersBuyLargeEnergySavings) {
  // The classic result: backing off ~20-30% in delay saves a large fraction
  // of the repeater energy.
  const auto tech = Technology::nm100();
  const auto pts = delay_energy_tradeoff(tech, 1.5e-6, 10, 0.2);
  const auto& slow = pts.front();   // smallest k
  const auto& fast = pts.back();    // delay-optimal k
  const double delay_cost = slow.delay_per_length / fast.delay_per_length;
  const double energy_save = 1.0 - slow.energy_per_length / fast.energy_per_length;
  EXPECT_LT(delay_cost, 1.6);
  EXPECT_GT(energy_save, 0.25);
}

TEST(Tradeoff, InputValidation) {
  const auto tech = Technology::nm100();
  EXPECT_THROW(delay_energy_tradeoff(tech, 1e-6, 1), std::invalid_argument);
  EXPECT_THROW(delay_energy_tradeoff(tech, 1e-6, 5, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace rlc::core
