#include "rlc/core/power.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "rlc/core/elmore.hpp"

namespace rlc::core {
namespace {

TEST(PowerModel, ComponentsArePositiveAtBothNodes) {
  for (const auto& tech : {Technology::nm250(), Technology::nm100()}) {
    const PowerModel m = PowerModel::from_technology(tech);
    const auto rc = rc_optimum(tech);
    const PowerBreakdown p = m.per_length(rc.h, rc.k);
    EXPECT_GT(p.dynamic, 0.0) << tech.name;
    EXPECT_GT(p.short_circuit, 0.0) << tech.name;
    EXPECT_GT(p.leakage, 0.0) << tech.name;
    EXPECT_DOUBLE_EQ(p.total(), p.dynamic + p.short_circuit + p.leakage);
    // Veendrick: the crowbar term is a correction, not the headline.
    EXPECT_LT(p.short_circuit, p.dynamic) << tech.name;
  }
}

TEST(PowerModel, LeakageAnchorsAndGenerationLaw) {
  EXPECT_NEAR(leakage_current_for_node(250e-9), 5e-9, 1e-15);
  EXPECT_NEAR(leakage_current_for_node(100e-9), 50e-9, 1e-14);
  // Constant ratio per generation: the law is geometric in log(node), so
  // the geometric-mean node carries the geometric-mean current.
  const double mid = std::sqrt(250e-9 * 100e-9);
  EXPECT_NEAR(leakage_current_for_node(mid), std::sqrt(5e-9 * 50e-9),
              1e-12);
  // Shrinking nodes leak more, including extrapolated ones.
  EXPECT_GT(leakage_current_for_node(35e-9), leakage_current_for_node(100e-9));
  EXPECT_LT(leakage_current_for_node(180e-9),
            leakage_current_for_node(100e-9));
}

TEST(PowerModel, EveryTermScalesWithRepeaterAreaPerLength) {
  // dynamic/sc ~ c + c_rep k/h, leakage ~ k/h: scaling h and k together
  // leaves the whole breakdown invariant, while k alone raises it and h
  // alone lowers it.
  const PowerModel m = PowerModel::from_technology(Technology::nm100());
  const PowerBreakdown a = m.per_length(1e-3, 100.0);
  const PowerBreakdown b = m.per_length(2e-3, 200.0);
  EXPECT_DOUBLE_EQ(a.dynamic, b.dynamic);
  EXPECT_DOUBLE_EQ(a.short_circuit, b.short_circuit);
  EXPECT_DOUBLE_EQ(a.leakage, b.leakage);
  EXPECT_GT(m.per_length(1e-3, 150.0).total(), a.total());
  EXPECT_LT(m.per_length(1.5e-3, 100.0).total(), a.total());
}

TEST(PowerModel, ChainHelperMatchesModel) {
  const auto tech = Technology::nm100();
  const PowerModel m = PowerModel::from_technology(tech);
  EXPECT_DOUBLE_EQ(chain_power_per_length(tech, 2e-3, 80.0),
                   m.per_length(2e-3, 80.0).total());
}

TEST(PowerModel, EnvScalesDynamicLinearly) {
  const auto tech = Technology::nm100();
  PowerEnv env;
  const PowerBreakdown base =
      PowerModel::from_technology(tech, env).per_length(1e-3, 100.0);
  env.f_clock *= 2.0;
  const PowerBreakdown fast =
      PowerModel::from_technology(tech, env).per_length(1e-3, 100.0);
  EXPECT_DOUBLE_EQ(fast.dynamic, 2.0 * base.dynamic);
  EXPECT_DOUBLE_EQ(fast.short_circuit, 2.0 * base.short_circuit);
  EXPECT_DOUBLE_EQ(fast.leakage, base.leakage);  // leakage is static
}

TEST(PowerModel, RejectsBadEnvironmentAndGeometry) {
  const auto tech = Technology::nm100();
  PowerEnv env;
  env.f_clock = 0.0;
  EXPECT_THROW(PowerModel::from_technology(tech, env), std::invalid_argument);
  env = {};
  env.activity = 1.5;
  EXPECT_THROW(PowerModel::from_technology(tech, env), std::invalid_argument);
  env = {};
  env.vt_fraction = 0.5;
  EXPECT_THROW(PowerModel::from_technology(tech, env), std::invalid_argument);
  const PowerModel m = PowerModel::from_technology(tech);
  EXPECT_THROW(m.per_length(0.0, 100.0), std::domain_error);
  EXPECT_THROW(m.per_length(1e-3, -1.0), std::domain_error);
}

}  // namespace
}  // namespace rlc::core
