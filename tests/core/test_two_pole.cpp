#include "rlc/core/two_pole.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rlc/math/constants.hpp"

namespace rlc::core {
namespace {

TEST(TwoPole, RejectsNonPassiveCoefficients) {
  EXPECT_THROW(TwoPole(PadeCoeffs{0.0, 1e-20}), std::domain_error);
  EXPECT_THROW(TwoPole(PadeCoeffs{1e-10, 0.0}), std::domain_error);
  EXPECT_THROW(TwoPole(PadeCoeffs{-1e-10, 1e-20}), std::domain_error);
}

TEST(TwoPole, DampingClassification) {
  // disc = b1^2 - 4 b2.
  EXPECT_EQ(TwoPole(PadeCoeffs{4e-10, 1e-20}).damping(), Damping::kOverdamped);
  EXPECT_EQ(TwoPole(PadeCoeffs{2e-10, 1e-20}).damping(),
            Damping::kCriticallyDamped);
  EXPECT_EQ(TwoPole(PadeCoeffs{1e-10, 1e-20}).damping(), Damping::kUnderdamped);
}

TEST(TwoPole, PolesSatisfyCharacteristicEquation) {
  for (const PadeCoeffs pc : {PadeCoeffs{4e-10, 1e-20}, PadeCoeffs{1e-10, 1e-20}}) {
    const TwoPole sys(pc);
    for (const auto s : {sys.s1(), sys.s2()}) {
      const auto resid = pc.b2 * s * s + pc.b1 * s + 1.0;
      EXPECT_NEAR(std::abs(resid), 0.0, 1e-9);
    }
    // Poles in the open left half plane (stable).
    EXPECT_LT(sys.s1().real(), 0.0);
    EXPECT_LT(sys.s2().real(), 0.0);
  }
}

TEST(TwoPole, StepResponseBoundaryValues) {
  const TwoPole sys(PadeCoeffs{3e-10, 1e-20});
  EXPECT_DOUBLE_EQ(sys.step_response(0.0), 0.0);
  EXPECT_DOUBLE_EQ(sys.step_response(-1e-9), 0.0);
  EXPECT_NEAR(sys.step_response(1e-7), 1.0, 1e-9);  // settles to the rail
}

TEST(TwoPole, OverdampedIsMonotonic) {
  const TwoPole sys(PadeCoeffs{5e-10, 1e-20});
  double prev = 0.0;
  for (int i = 1; i <= 300; ++i) {
    const double v = sys.step_response(i * 1e-11);
    EXPECT_GE(v, prev - 1e-12);
    prev = v;
  }
  EXPECT_LE(prev, 1.0 + 1e-9);
}

TEST(TwoPole, UnderdampedOvershootMatchesClosedForm) {
  // zeta = b1/(2 sqrt(b2)); peak value = 1 + exp(-zeta pi / sqrt(1 - zeta^2)).
  const TwoPole sys(PadeCoeffs{1e-10, 1e-20});
  const double zeta = sys.damping_ratio();
  ASSERT_LT(zeta, 1.0);
  double vmax = 0.0;
  for (int i = 1; i <= 4000; ++i) {
    vmax = std::max(vmax, sys.step_response(i * 2.5e-13));
  }
  const double expected =
      1.0 + std::exp(-zeta * rlc::math::kPi / std::sqrt(1.0 - zeta * zeta));
  EXPECT_NEAR(vmax, expected, 2e-4);
  EXPECT_NEAR(sys.overshoot(), expected - 1.0, 1e-12);
}

TEST(TwoPole, UndershootMatchesSampledMinimumAfterPeak) {
  const TwoPole sys(PadeCoeffs{0.8e-10, 1e-20});
  const double wd = sys.damped_frequency();
  ASSERT_GT(wd, 0.0);
  // First minimum at t = 2 pi / wd.
  const double tmin = 2.0 * rlc::math::kPi / wd;
  EXPECT_NEAR(1.0 - sys.step_response(tmin), sys.undershoot(), 1e-9);
}

TEST(TwoPole, DerivativeMatchesFiniteDifference) {
  for (const PadeCoeffs pc : {PadeCoeffs{5e-10, 1e-20}, PadeCoeffs{1e-10, 1e-20}}) {
    const TwoPole sys(pc);
    for (double t : {2e-11, 1e-10, 5e-10}) {
      const double dt = 1e-15;
      const double fd =
          (sys.step_response(t + dt) - sys.step_response(t - dt)) / (2.0 * dt);
      EXPECT_NEAR(sys.step_response_derivative(t), fd,
                  1e-5 * std::abs(fd) + 1e-3);
    }
  }
}

TEST(TwoPole, NearCriticalSeriesIsContinuous) {
  // Step response must vary smoothly as the discriminant crosses zero.
  const double b1 = 2e-10;
  const double b2c = b1 * b1 / 4.0;
  const double t = 1.5e-10;
  const double v_minus = TwoPole(PadeCoeffs{b1, b2c * (1.0 - 1e-9)}).step_response(t);
  const double v_exact = TwoPole(PadeCoeffs{b1, b2c}).step_response(t);
  const double v_plus = TwoPole(PadeCoeffs{b1, b2c * (1.0 + 1e-9)}).step_response(t);
  EXPECT_NEAR(v_minus, v_exact, 1e-7);
  EXPECT_NEAR(v_plus, v_exact, 1e-7);
}

TEST(TwoPole, CriticallyDampedClosedForm) {
  // v(t) = 1 - (1 + alpha t) exp(-alpha t) with alpha = 2/b1.
  const double b1 = 2e-10;
  const TwoPole sys(PadeCoeffs{b1, b1 * b1 / 4.0});
  const double alpha = 2.0 / b1;
  for (double t : {5e-11, 2e-10, 8e-10}) {
    const double expect = 1.0 - (1.0 + alpha * t) * std::exp(-alpha * t);
    EXPECT_NEAR(sys.step_response(t), expect, 1e-9);
  }
}

TEST(TwoPole, FrequenciesAndRatios) {
  const TwoPole sys(PadeCoeffs{1e-10, 1e-20});
  EXPECT_NEAR(sys.natural_frequency(), 1e10, 1e-3);
  EXPECT_NEAR(sys.damping_ratio(), 0.5, 1e-12);
  // wd = wn sqrt(1 - zeta^2)
  EXPECT_NEAR(sys.damped_frequency(), 1e10 * std::sqrt(0.75), 1e4);
  // Overdamped: no oscillation, no overshoot.
  const TwoPole od(PadeCoeffs{5e-10, 1e-20});
  EXPECT_DOUBLE_EQ(od.damped_frequency(), 0.0);
  EXPECT_DOUBLE_EQ(od.overshoot(), 0.0);
  EXPECT_DOUBLE_EQ(od.undershoot(), 0.0);
}

}  // namespace
}  // namespace rlc::core
