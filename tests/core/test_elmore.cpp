#include "rlc/core/elmore.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "rlc/math/derivative.hpp"

namespace rlc::core {
namespace {

TEST(Elmore, Table1RowsReproduced250nm) {
  const auto o = rc_optimum(Technology::nm250());
  EXPECT_NEAR(o.h, 14.4e-3, 0.05e-3);    // 14.4 mm
  EXPECT_NEAR(o.k, 578.0, 1.0);
  EXPECT_NEAR(o.tau, 305.17e-12, 0.5e-12);
}

TEST(Elmore, Table1RowsReproduced100nm) {
  const auto o = rc_optimum(Technology::nm100());
  EXPECT_NEAR(o.h, 11.1e-3, 0.05e-3);
  EXPECT_NEAR(o.k, 528.0, 1.0);
  EXPECT_NEAR(o.tau, 105.94e-12, 0.3e-12);
}

TEST(Elmore, SegmentDelayFormula) {
  const Repeater rep{1000.0, 2e-15, 6e-15};
  const double r = 4000.0, c = 2e-10, h = 0.01, k = 100.0;
  const double expect = (1000.0 / k) * (6e-15 * k + 2e-15 * k) +
                        (1000.0 / k) * c * h + r * h * 2e-15 * k +
                        0.5 * r * c * h * h;
  EXPECT_NEAR(elmore_segment_delay(rep, r, c, h, k), expect, 1e-18);
}

TEST(Elmore, ClosedFormIsTheTrueMinimum) {
  // The analytic optimum must be a stationary point of tau/h in both h and k.
  const auto tech = Technology::nm250();
  const auto o = rc_optimum(tech);
  const auto dpl_h = [&](double h) {
    return elmore_segment_delay(tech.rep, tech.r, tech.c, h, o.k) / h;
  };
  const auto dpl_k = [&](double k) {
    return elmore_segment_delay(tech.rep, tech.r, tech.c, o.h, k) / o.h;
  };
  EXPECT_NEAR(rlc::math::central_diff(dpl_h, o.h) * o.h / dpl_h(o.h), 0.0, 1e-6);
  EXPECT_NEAR(rlc::math::central_diff(dpl_k, o.k) * o.k / dpl_k(o.k), 0.0, 1e-6);
}

TEST(Elmore, TauIndependentOfWireLevel) {
  // tau_optRC depends only on the repeater: change (r, c) and it must not
  // move (Section 3.1: "it can be treated as a technology parameter").
  const auto tech = Technology::nm250();
  const auto o1 = rc_optimum(tech.rep, tech.r, tech.c);
  const auto o2 = rc_optimum(tech.rep, 3.0 * tech.r, 0.5 * tech.c);
  EXPECT_NEAR(o1.tau, o2.tau, 1e-18);
  EXPECT_NE(o1.h, o2.h);
}

TEST(Elmore, InferenceRoundTripOnTable1) {
  for (const auto& tech : {Technology::nm250(), Technology::nm100()}) {
    const auto o = rc_optimum(tech);
    const auto rep = infer_repeater_from_rc_optimum(tech.r, tech.c, o.h, o.k, o.tau);
    EXPECT_NEAR(rep.rs, tech.rep.rs, 1e-6 * tech.rep.rs) << tech.name;
    EXPECT_NEAR(rep.c0, tech.rep.c0, 1e-6 * tech.rep.c0) << tech.name;
    EXPECT_NEAR(rep.cp, tech.rep.cp, 1e-6 * tech.rep.cp) << tech.name;
  }
}

TEST(Elmore, InferenceRoundTripRandomized) {
  // Property: for random physical repeaters, optimum -> inference recovers
  // the repeater (the calibration flow the paper runs through SPICE).
  std::mt19937 rng(123);
  std::uniform_real_distribution<double> u(0.2, 5.0);
  for (int trial = 0; trial < 50; ++trial) {
    Repeater rep;
    rep.rs = 5e3 * u(rng);
    rep.c0 = 1e-15 * u(rng);
    rep.cp = 3e-15 * u(rng);
    const double r = 3e3 * u(rng), c = 1.5e-10 * u(rng);
    const auto o = rc_optimum(rep, r, c);
    const auto back = infer_repeater_from_rc_optimum(r, c, o.h, o.k, o.tau);
    EXPECT_NEAR(back.rs, rep.rs, 1e-8 * rep.rs) << trial;
    EXPECT_NEAR(back.c0, rep.c0, 1e-8 * rep.c0) << trial;
    EXPECT_NEAR(back.cp, rep.cp, 1e-8 * rep.cp) << trial;
  }
}

TEST(Elmore, InferenceRejectsInconsistentTriples) {
  const auto tech = Technology::nm250();
  const auto o = rc_optimum(tech);
  // tau too small (g <= 0) and tau too large (g >= sqrt 2) both violate the
  // closed-form relations.
  EXPECT_THROW(
      infer_repeater_from_rc_optimum(tech.r, tech.c, o.h, o.k, 0.4 * o.tau),
      std::domain_error);
  EXPECT_THROW(
      infer_repeater_from_rc_optimum(tech.r, tech.c, o.h, o.k, 5.0 * o.tau),
      std::domain_error);
  EXPECT_THROW(infer_repeater_from_rc_optimum(-1.0, tech.c, o.h, o.k, o.tau),
               std::domain_error);
}

TEST(Elmore, DelayPerLengthHelper) {
  const auto tech = Technology::nm100();
  const auto o = rc_optimum(tech);
  EXPECT_NEAR(o.delay_per_length(), o.tau / o.h, 1e-20);
}

}  // namespace
}  // namespace rlc::core
