// Noise-constrained (h, k) optimization: inactive constraint degenerates
// to the unconstrained optimum, active constraint meets the budget at the
// smallest delay cost, both technology nodes.

#include <gtest/gtest.h>

#include <stdexcept>

#include "rlc/core/optimizer.hpp"
#include "rlc/core/technology.hpp"

namespace {

using rlc::core::NoiseConstraintOptions;
using rlc::core::NoiseOptimResult;
using rlc::core::optimize_rlc;
using rlc::core::optimize_rlc_noise_constrained;
using rlc::core::OptimResult;
using rlc::core::Technology;

NoiseConstraintOptions coupling(double vmax) {
  NoiseConstraintOptions c;
  c.cc = 0.0;  // set per test from the line's own c
  c.km = 0.2;
  c.conductors = 2;
  c.vmax = vmax;
  return c;
}

class NoiseOptimizer : public ::testing::TestWithParam<const char*> {
 protected:
  Technology tech() const {
    return std::string(GetParam()) == "250nm" ? Technology::nm250()
                                              : Technology::nm100();
  }
};

TEST_P(NoiseOptimizer, InactiveConstraintMatchesUnconstrained) {
  const Technology t = tech();
  const double l = 1.0e-6;
  NoiseConstraintOptions c = coupling(/*vmax=*/0.9);  // never binding
  c.cc = 0.25 * t.line(l).c;

  const NoiseOptimResult r = optimize_rlc_noise_constrained(t, l, c);
  ASSERT_TRUE(r.converged);
  EXPECT_FALSE(r.constraint_active);
  EXPECT_LE(r.peak_noise, c.vmax);

  // Bitwise the unconstrained solve on the quiet-neighbour effective line
  // (delay trivially within the 1% acceptance bound).
  rlc::tline::LineParams eff = t.line(l);
  eff.c += c.cc;
  const OptimResult un = optimize_rlc(t.rep, eff, c.optim);
  ASSERT_TRUE(un.converged);
  EXPECT_EQ(r.sizing.h, un.h);
  EXPECT_EQ(r.sizing.k, un.k);
  EXPECT_NEAR(r.sizing.delay_per_length, un.delay_per_length,
              0.01 * un.delay_per_length);
}

TEST_P(NoiseOptimizer, ActiveConstraintMeetsTheBudget) {
  const Technology t = tech();
  const double l = 1.0e-6;
  NoiseConstraintOptions probe = coupling(/*vmax=*/0.9);
  probe.cc = 0.3 * t.line(l).c;
  probe.km = 0.3;
  const NoiseOptimResult free_run =
      optimize_rlc_noise_constrained(t, l, probe);
  ASSERT_TRUE(free_run.converged);
  ASSERT_GT(free_run.peak_noise, 0.0);

  // Budget at 60% of the unconstrained noise forces the boundary.
  NoiseConstraintOptions c = probe;
  c.vmax = 0.6 * free_run.peak_noise;
  const NoiseOptimResult r = optimize_rlc_noise_constrained(t, l, c);
  ASSERT_TRUE(r.converged);
  EXPECT_TRUE(r.constraint_active);
  EXPECT_LE(r.peak_noise, c.vmax * (1.0 + 1e-6));
  // The boundary solution sits on the budget, not far inside it.
  EXPECT_GT(r.peak_noise, 0.95 * c.vmax);
  // Constrained delay cannot beat the unconstrained optimum; the budget is
  // bought by upsizing the repeaters above the unconstrained size.
  EXPECT_GE(r.sizing.delay_per_length,
            free_run.sizing.delay_per_length * (1.0 - 1e-9));
  EXPECT_GT(r.sizing.k, free_run.sizing.k);
}

INSTANTIATE_TEST_SUITE_P(BothNodes, NoiseOptimizer,
                         ::testing::Values("250nm", "100nm"));

TEST(NoiseOptimizerValidation, RejectsBadRequests) {
  const Technology t = Technology::nm250();
  NoiseConstraintOptions c = coupling(0.1);
  c.conductors = 1;
  EXPECT_THROW(optimize_rlc_noise_constrained(t, 1e-6, c),
               std::invalid_argument);
  c = coupling(0.1);
  c.conductors = 9;
  EXPECT_THROW(optimize_rlc_noise_constrained(t, 1e-6, c),
               std::invalid_argument);
  c = coupling(0.1);
  c.cc = -1.0;
  EXPECT_THROW(optimize_rlc_noise_constrained(t, 1e-6, c),
               std::invalid_argument);
  c = coupling(0.1);
  c.km = 1.0;
  EXPECT_THROW(optimize_rlc_noise_constrained(t, 1e-6, c),
               std::invalid_argument);
  c = coupling(0.0);
  EXPECT_THROW(optimize_rlc_noise_constrained(t, 1e-6, c),
               std::invalid_argument);
}

}  // namespace
