#include "rlc/core/robust.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rlc/core/elmore.hpp"

namespace rlc::core {
namespace {

RobustOptions paper_box(const Technology& tech) {
  // Miller range ~ 2x in c, return-path range 0.5..2.5 nH/mm in l.
  RobustOptions o;
  o.c_min = 0.7 * tech.c;
  o.c_max = 1.4 * tech.c;
  o.l_min = 0.5e-6;
  o.l_max = 2.5e-6;
  return o;
}

TEST(Robust, RegretIsAtLeastOne) {
  const auto tech = Technology::nm100();
  const auto o = paper_box(tech);
  const auto rc = rc_optimum(tech);
  const double regret = worst_case_regret(tech.rep, tech.r, rc.h, rc.k, o);
  EXPECT_GE(regret, 1.0);
}

TEST(Robust, RobustSizingBeatsNominalOnWorstCase) {
  const auto tech = Technology::nm100();
  const auto o = paper_box(tech);
  const auto res = optimize_robust(tech.rep, tech.r, o);
  ASSERT_TRUE(res.converged);
  EXPECT_GE(res.worst_regret, 1.0);
  EXPECT_LE(res.worst_regret, res.nominal_regret + 1e-9);
  // With a ~2x box the regret should stay within a few percent — the
  // quantified version of the paper's Figure 8 message.
  EXPECT_LT(res.worst_regret, 1.10);
}

TEST(Robust, DegenerateBoxRecoversPointOptimum) {
  // A zero-size box must return (essentially) the plain optimizer's answer
  // with regret ~ 1.
  const auto tech = Technology::nm250();
  RobustOptions o;
  o.c_min = o.c_max = tech.c;
  o.l_min = o.l_max = 1e-6;
  o.n_c = o.n_l = 1;
  const auto res = optimize_robust(tech.rep, tech.r, o);
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.worst_regret, 1.0, 1e-4);
  const auto exact = optimize_rlc(tech, 1e-6);
  EXPECT_NEAR(res.h, exact.h, 0.02 * exact.h);
  EXPECT_NEAR(res.k, exact.k, 0.02 * exact.k);
}

TEST(Robust, WiderUncertaintyMeansMoreRegret) {
  const auto tech = Technology::nm100();
  RobustOptions narrow = paper_box(tech);
  narrow.l_min = 1.4e-6;
  narrow.l_max = 1.6e-6;
  narrow.c_min = 0.95 * tech.c;
  narrow.c_max = 1.05 * tech.c;
  const auto rn = optimize_robust(tech.rep, tech.r, narrow);
  const auto rw = optimize_robust(tech.rep, tech.r, paper_box(tech));
  ASSERT_TRUE(rn.converged && rw.converged);
  EXPECT_LT(rn.worst_regret, rw.worst_regret);
}

TEST(Robust, Validation) {
  const auto tech = Technology::nm100();
  RobustOptions o = paper_box(tech);
  o.c_max = 0.5 * o.c_min;
  EXPECT_THROW(optimize_robust(tech.rep, tech.r, o), std::invalid_argument);
  o = paper_box(tech);
  EXPECT_THROW(worst_case_regret(tech.rep, tech.r, 0.0, 100.0, o),
               std::domain_error);
}

}  // namespace
}  // namespace rlc::core
