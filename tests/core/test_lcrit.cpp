#include "rlc/core/lcrit.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rlc/core/pade.hpp"
#include "rlc/core/two_pole.hpp"

namespace rlc::core {
namespace {

TEST(Lcrit, SystemIsCriticallyDampedAtLcrit) {
  // Defining property of Eq. (4): b1^2 - 4 b2 = 0 exactly at l = l_crit.
  const auto tech = Technology::nm250();
  const double h = 0.0144, k = 578.0;
  const double lc = critical_inductance(tech, h, k);
  ASSERT_GT(lc, 0.0);
  const auto pc = pade_coeffs_hk(tech.rep, tech.line(lc), h, k);
  const double disc = pc.b1 * pc.b1 - 4.0 * pc.b2;
  EXPECT_NEAR(disc / (pc.b1 * pc.b1), 0.0, 1e-10);
}

TEST(Lcrit, SignOfDiscriminantFlipsAroundLcrit) {
  const auto tech = Technology::nm100();
  const double h = 0.0111, k = 528.0;
  const double lc = critical_inductance(tech, h, k);
  ASSERT_GT(lc, 0.0);
  const TwoPole below(pade_coeffs_hk(tech.rep, tech.line(0.5 * lc), h, k));
  const TwoPole above(pade_coeffs_hk(tech.rep, tech.line(2.0 * lc), h, k));
  EXPECT_EQ(below.damping(), Damping::kOverdamped);
  EXPECT_EQ(above.damping(), Damping::kUnderdamped);
}

TEST(Lcrit, SmallerAtScaledNode) {
  // Figure 4's observation: l_crit at 100 nm sits below l_crit at 250 nm for
  // comparable sizings, so scaled designs ring at smaller inductance.
  const auto t250 = Technology::nm250();
  const auto t100 = Technology::nm100();
  const double l250 = critical_inductance(t250, 0.0144, 578.0);
  const double l100 = critical_inductance(t100, 0.0111, 528.0);
  EXPECT_LT(l100, l250);
}

TEST(Lcrit, OverloadsAgree) {
  const auto tech = Technology::nm250();
  EXPECT_DOUBLE_EQ(critical_inductance(tech, 0.01, 300.0),
                   critical_inductance(tech.rep, tech.r, tech.c, 0.01, 300.0));
}

TEST(Lcrit, InputValidation) {
  const auto tech = Technology::nm250();
  EXPECT_THROW(critical_inductance(tech, 0.0, 300.0), std::domain_error);
  EXPECT_THROW(critical_inductance(tech, 0.01, 0.0), std::domain_error);
}

class LcritSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(LcritSweep, ConsistentWithDampingAcrossSizings) {
  const auto [h, k] = GetParam();
  const auto tech = Technology::nm100();
  const double lc = critical_inductance(tech, h, k);
  if (lc <= 0.0) {
    // Already underdamped at l = 0 — verify that claim.
    const TwoPole sys(pade_coeffs_hk(tech.rep, tech.line(0.0), h, k));
    EXPECT_EQ(sys.damping(), Damping::kUnderdamped);
    return;
  }
  const auto pc = pade_coeffs_hk(tech.rep, tech.line(lc), h, k);
  EXPECT_NEAR((pc.b1 * pc.b1 - 4.0 * pc.b2) / (pc.b1 * pc.b1), 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sizings, LcritSweep,
    ::testing::Combine(::testing::Values(0.003, 0.008, 0.0111, 0.02),
                       ::testing::Values(100.0, 300.0, 528.0, 900.0)));

}  // namespace
}  // namespace rlc::core
