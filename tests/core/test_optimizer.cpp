#include "rlc/core/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rlc::core {
namespace {

TEST(Optimizer, L0OptimumSitsBelowElmoreOptimum) {
  // Section 3.1 / Figure 5: at l = 0 the two-pole 50%-delay optimum gives a
  // slightly shorter segment than the Elmore optimum — an effect the
  // curve-fitted formulas of [21, 22] cannot predict.
  for (const auto& tech : {Technology::nm250(), Technology::nm100()}) {
    const auto rc = rc_optimum(tech);
    const auto r = optimize_rlc(tech, 0.0);
    ASSERT_TRUE(r.converged) << tech.name;
    EXPECT_LT(r.h, rc.h) << tech.name;
    EXPECT_GT(r.h, 0.8 * rc.h) << tech.name;
    EXPECT_LT(r.k, rc.k) << tech.name;
  }
}

TEST(Optimizer, ResultIsALocalMinimumOfDelayPerLength) {
  const auto tech = Technology::nm100();
  const auto line = tech.line(1.5e-6);
  const auto r = optimize_rlc(tech, 1.5e-6);
  ASSERT_TRUE(r.converged);
  const double base = delay_per_length(tech.rep, line, r.h, r.k);
  // Quadratic behaviour near the optimum: a perturbation of size eps may
  // lower the objective by at most O((residual error)^2) ~ 1e-6 relative.
  for (const double eps : {1e-3, 5e-3}) {
    EXPECT_GE(delay_per_length(tech.rep, line, r.h * (1 + eps), r.k), base * (1 - 1e-6));
    EXPECT_GE(delay_per_length(tech.rep, line, r.h * (1 - eps), r.k), base * (1 - 1e-6));
    EXPECT_GE(delay_per_length(tech.rep, line, r.h, r.k * (1 + eps)), base * (1 - 1e-6));
    EXPECT_GE(delay_per_length(tech.rep, line, r.h, r.k * (1 - eps)), base * (1 - 1e-6));
  }
  // A large perturbation must visibly hurt.
  EXPECT_GT(delay_per_length(tech.rep, line, 1.5 * r.h, r.k), base * 1.001);
}

TEST(Optimizer, StationarityResidualsVanishAtOptimum) {
  const auto tech = Technology::nm250();
  const auto r = optimize_rlc(tech, 1e-6);
  ASSERT_TRUE(r.converged);
  const auto sr = stationarity_residuals(tech.rep, tech.line(1e-6), r.h, r.k);
  ASSERT_TRUE(sr.valid);
  // Compare against the residual magnitude at a visibly suboptimal point.
  const auto far = stationarity_residuals(tech.rep, tech.line(1e-6), 1.3 * r.h,
                                          0.7 * r.k);
  ASSERT_TRUE(far.valid);
  EXPECT_LT(std::abs(sr.g1), 1e-5 * std::abs(far.g1));
  EXPECT_LT(std::abs(sr.g2), 1e-5 * std::abs(far.g2));
}

TEST(Optimizer, PaperResidualsMatchImplicitDifferentiation) {
  // g1 = 0 and g2 = 0 encode d(tau)/dh = tau/h and d(tau)/dk = 0; verify the
  // *sign structure* by finite differences of tau away from the optimum.
  const auto tech = Technology::nm100();
  const auto line = tech.line(0.8e-6);
  const double h = 0.009, k = 350.0;
  const auto tau_of = [&](double hh, double kk) {
    const auto dr = segment_delay(tech.rep, line, hh, kk);
    EXPECT_TRUE(dr.converged);
    return dr.tau;
  };
  const double dh = 1e-6 * h;
  const double dtau_dh = (tau_of(h + dh, k) - tau_of(h - dh, k)) / (2 * dh);
  const double g1_fd = dtau_dh - tau_of(h, k) / h;  // residual of Eq. (5)
  const auto sr = stationarity_residuals(tech.rep, line, h, k);
  ASSERT_TRUE(sr.valid);
  // Same zero set; compare signs (the scale differs by a positive factor
  // that depends on v'(tau) and normalization).
  EXPECT_NE(g1_fd, 0.0);
  EXPECT_NE(sr.g1, 0.0);
}

TEST(Optimizer, NewtonAndNelderMeadAgree) {
  const auto tech = Technology::nm250();
  for (double l : {0.0, 1e-6, 3e-6}) {
    OptimOptions newton_only;
    newton_only.allow_fallback = false;
    const auto a = optimize_rlc(tech, l, newton_only);
    ASSERT_TRUE(a.converged) << l;
    ASSERT_EQ(a.method, OptimMethod::kNewton);

    // Force the fallback path by making Newton give up immediately.
    OptimOptions nm_only;
    nm_only.max_newton_iterations = 1;
    const auto b = optimize_rlc(tech, l, nm_only);
    ASSERT_TRUE(b.converged) << l;
    // Nelder-Mead terminates on simplex size, so (h, k) agreement is looser
    // than the (flat-near-optimum) objective agreement.
    EXPECT_NEAR(a.h, b.h, 1e-2 * a.h) << l;
    EXPECT_NEAR(a.k, b.k, 1e-2 * a.k) << l;
    EXPECT_NEAR(a.delay_per_length, b.delay_per_length,
                1e-5 * a.delay_per_length) << l;
  }
}

TEST(Optimizer, SweepTrendsMatchFigures5And6) {
  // h_optRLC/h_optRC grows with l; k_optRLC/k_optRC falls with l.
  const auto tech = Technology::nm100();
  std::vector<double> ls;
  for (int i = 0; i <= 10; ++i) ls.push_back(i * 0.5e-6);
  const auto rs = optimize_rlc_sweep(tech, ls);
  for (std::size_t i = 1; i < rs.size(); ++i) {
    ASSERT_TRUE(rs[i].converged) << i;
    EXPECT_GT(rs[i].h, rs[i - 1].h) << i;
    EXPECT_LT(rs[i].k, rs[i - 1].k) << i;
    EXPECT_GT(rs[i].delay_per_length, rs[i - 1].delay_per_length) << i;
  }
}

TEST(Optimizer, SweepNewtonStaysWithinPaperIterationClaim) {
  // "convergence is achieved in less than six iterations in all cases" —
  // holds with warm-started continuation along the sweep.
  const auto tech = Technology::nm250();
  std::vector<double> ls;
  for (int i = 0; i <= 50; ++i) ls.push_back(i * 0.1e-6);
  const auto rs = optimize_rlc_sweep(tech, ls);
  for (std::size_t i = 0; i < rs.size(); ++i) {
    ASSERT_TRUE(rs[i].converged);
    EXPECT_EQ(rs[i].method, OptimMethod::kNewton) << "l index " << i;
    if (i > 0) {
      EXPECT_LE(rs[i].newton_iterations, 6) << "l index " << i;
    }
  }
}

TEST(Optimizer, KOptFlattensTowardAsymptote) {
  // Figure 6 discussion: with increasing l the optimal buffer size falls and
  // levels off toward the impedance-matched value (a slow approach — over
  // the paper's 0..5 nH/mm window we verify monotone decrease with shrinking
  // decrements, and that the optimal driver impedance rs/k grows with l as
  // the line gets more transmission-line-like).
  const auto tech = Technology::nm250();
  std::vector<double> ls;
  for (int i = 1; i <= 10; ++i) ls.push_back(i * 0.5e-6);
  const auto rs = optimize_rlc_sweep(tech, ls);
  for (std::size_t i = 1; i < ls.size(); ++i) {
    ASSERT_TRUE(rs[i].converged);
    const double drop_prev =
        (i >= 2) ? rs[i - 2].k - rs[i - 1].k : 1e18;
    const double drop = rs[i - 1].k - rs[i].k;
    EXPECT_GT(drop, 0.0) << i;                 // k keeps falling...
    EXPECT_LT(drop, drop_prev + 1e-9) << i;    // ...by ever-smaller steps
    EXPECT_GT(tech.rep.rs / rs[i].k, tech.rep.rs / rs[i - 1].k);
  }
}

TEST(Optimizer, CustomThresholdSupported) {
  // The methodology works "for any values of s1, s2 and f" — not just 50%.
  const auto tech = Technology::nm100();
  OptimOptions opts;
  opts.f = 0.9;
  const auto r = optimize_rlc(tech, 1e-6, opts);
  ASSERT_TRUE(r.converged);
  const auto line = tech.line(1e-6);
  const double base = delay_per_length(tech.rep, line, r.h, r.k, 0.9);
  EXPECT_GE(delay_per_length(tech.rep, line, 1.02 * r.h, r.k, 0.9), base);
  EXPECT_GE(delay_per_length(tech.rep, line, r.h, 1.02 * r.k, 0.9), base);
}

TEST(Optimizer, InvalidLineRejected) {
  const auto tech = Technology::nm250();
  EXPECT_THROW(optimize_rlc(tech.rep, tline::LineParams{0.0, 0.0, 1e-10}),
               std::domain_error);
}

}  // namespace
}  // namespace rlc::core
