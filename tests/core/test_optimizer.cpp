#include "rlc/core/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rlc::core {
namespace {

TEST(Optimizer, L0OptimumSitsBelowElmoreOptimum) {
  // Section 3.1 / Figure 5: at l = 0 the two-pole 50%-delay optimum gives a
  // slightly shorter segment than the Elmore optimum — an effect the
  // curve-fitted formulas of [21, 22] cannot predict.
  for (const auto& tech : {Technology::nm250(), Technology::nm100()}) {
    const auto rc = rc_optimum(tech);
    const auto r = optimize_rlc(tech, 0.0);
    ASSERT_TRUE(r.converged) << tech.name;
    EXPECT_LT(r.h, rc.h) << tech.name;
    EXPECT_GT(r.h, 0.8 * rc.h) << tech.name;
    EXPECT_LT(r.k, rc.k) << tech.name;
  }
}

TEST(Optimizer, ResultIsALocalMinimumOfDelayPerLength) {
  const auto tech = Technology::nm100();
  const auto line = tech.line(1.5e-6);
  const auto r = optimize_rlc(tech, 1.5e-6);
  ASSERT_TRUE(r.converged);
  const double base = delay_per_length(tech.rep, line, r.h, r.k);
  // Quadratic behaviour near the optimum: a perturbation of size eps may
  // lower the objective by at most O((residual error)^2) ~ 1e-6 relative.
  for (const double eps : {1e-3, 5e-3}) {
    EXPECT_GE(delay_per_length(tech.rep, line, r.h * (1 + eps), r.k), base * (1 - 1e-6));
    EXPECT_GE(delay_per_length(tech.rep, line, r.h * (1 - eps), r.k), base * (1 - 1e-6));
    EXPECT_GE(delay_per_length(tech.rep, line, r.h, r.k * (1 + eps)), base * (1 - 1e-6));
    EXPECT_GE(delay_per_length(tech.rep, line, r.h, r.k * (1 - eps)), base * (1 - 1e-6));
  }
  // A large perturbation must visibly hurt.
  EXPECT_GT(delay_per_length(tech.rep, line, 1.5 * r.h, r.k), base * 1.001);
}

TEST(Optimizer, StationarityResidualsVanishAtOptimum) {
  const auto tech = Technology::nm250();
  const auto r = optimize_rlc(tech, 1e-6);
  ASSERT_TRUE(r.converged);
  const auto sr = stationarity_residuals(tech.rep, tech.line(1e-6), r.h, r.k);
  ASSERT_TRUE(sr.valid);
  // Compare against the residual magnitude at a visibly suboptimal point.
  const auto far = stationarity_residuals(tech.rep, tech.line(1e-6), 1.3 * r.h,
                                          0.7 * r.k);
  ASSERT_TRUE(far.valid);
  EXPECT_LT(std::abs(sr.g1), 1e-5 * std::abs(far.g1));
  EXPECT_LT(std::abs(sr.g2), 1e-5 * std::abs(far.g2));
}

TEST(Optimizer, PaperResidualsMatchImplicitDifferentiation) {
  // g1 = 0 and g2 = 0 encode d(tau)/dh = tau/h and d(tau)/dk = 0; verify the
  // *sign structure* by finite differences of tau away from the optimum.
  const auto tech = Technology::nm100();
  const auto line = tech.line(0.8e-6);
  const double h = 0.009, k = 350.0;
  const auto tau_of = [&](double hh, double kk) {
    const auto dr = segment_delay(tech.rep, line, hh, kk);
    EXPECT_TRUE(dr.converged);
    return dr.tau;
  };
  const double dh = 1e-6 * h;
  const double dtau_dh = (tau_of(h + dh, k) - tau_of(h - dh, k)) / (2 * dh);
  const double g1_fd = dtau_dh - tau_of(h, k) / h;  // residual of Eq. (5)
  const auto sr = stationarity_residuals(tech.rep, line, h, k);
  ASSERT_TRUE(sr.valid);
  // Same zero set; compare signs (the scale differs by a positive factor
  // that depends on v'(tau) and normalization).
  EXPECT_NE(g1_fd, 0.0);
  EXPECT_NE(sr.g1, 0.0);
}

TEST(Optimizer, NewtonAndNelderMeadAgree) {
  const auto tech = Technology::nm250();
  for (double l : {0.0, 1e-6, 3e-6}) {
    OptimOptions newton_only;
    newton_only.allow_fallback = false;
    const auto a = optimize_rlc(tech, l, newton_only);
    ASSERT_TRUE(a.converged) << l;
    ASSERT_EQ(a.method, OptimMethod::kNewton);

    // Force the fallback path by making Newton give up immediately.
    OptimOptions nm_only;
    nm_only.max_iterations = 1;
    const auto b = optimize_rlc(tech, l, nm_only);
    ASSERT_TRUE(b.converged) << l;
    // Nelder-Mead terminates on simplex size, so (h, k) agreement is looser
    // than the (flat-near-optimum) objective agreement.
    EXPECT_NEAR(a.h, b.h, 1e-2 * a.h) << l;
    EXPECT_NEAR(a.k, b.k, 1e-2 * a.k) << l;
    EXPECT_NEAR(a.delay_per_length, b.delay_per_length,
                1e-5 * a.delay_per_length) << l;
  }
}

TEST(Optimizer, SweepTrendsMatchFigures5And6) {
  // h_optRLC/h_optRC grows with l; k_optRLC/k_optRC falls with l.
  const auto tech = Technology::nm100();
  std::vector<double> ls;
  for (int i = 0; i <= 10; ++i) ls.push_back(i * 0.5e-6);
  const auto rs = optimize_rlc_sweep(tech, ls);
  for (std::size_t i = 1; i < rs.size(); ++i) {
    ASSERT_TRUE(rs[i].converged) << i;
    EXPECT_GT(rs[i].h, rs[i - 1].h) << i;
    EXPECT_LT(rs[i].k, rs[i - 1].k) << i;
    EXPECT_GT(rs[i].delay_per_length, rs[i - 1].delay_per_length) << i;
  }
}

TEST(Optimizer, SweepNewtonStaysWithinPaperIterationClaim) {
  // "convergence is achieved in less than six iterations in all cases" —
  // holds with warm-started continuation along the sweep.
  const auto tech = Technology::nm250();
  std::vector<double> ls;
  for (int i = 0; i <= 50; ++i) ls.push_back(i * 0.1e-6);
  const auto rs = optimize_rlc_sweep(tech, ls);
  for (std::size_t i = 0; i < rs.size(); ++i) {
    ASSERT_TRUE(rs[i].converged);
    EXPECT_EQ(rs[i].method, OptimMethod::kNewton) << "l index " << i;
    if (i > 0) {
      EXPECT_LE(rs[i].newton_iterations, 6) << "l index " << i;
    }
  }
}

TEST(Optimizer, KOptFlattensTowardAsymptote) {
  // Figure 6 discussion: with increasing l the optimal buffer size falls and
  // levels off toward the impedance-matched value (a slow approach — over
  // the paper's 0..5 nH/mm window we verify monotone decrease with shrinking
  // decrements, and that the optimal driver impedance rs/k grows with l as
  // the line gets more transmission-line-like).
  const auto tech = Technology::nm250();
  std::vector<double> ls;
  for (int i = 1; i <= 10; ++i) ls.push_back(i * 0.5e-6);
  const auto rs = optimize_rlc_sweep(tech, ls);
  for (std::size_t i = 1; i < ls.size(); ++i) {
    ASSERT_TRUE(rs[i].converged);
    const double drop_prev =
        (i >= 2) ? rs[i - 2].k - rs[i - 1].k : 1e18;
    const double drop = rs[i - 1].k - rs[i].k;
    EXPECT_GT(drop, 0.0) << i;                 // k keeps falling...
    EXPECT_LT(drop, drop_prev + 1e-9) << i;    // ...by ever-smaller steps
    EXPECT_GT(tech.rep.rs / rs[i].k, tech.rep.rs / rs[i - 1].k);
  }
}

TEST(Optimizer, CustomThresholdSupported) {
  // The methodology works "for any values of s1, s2 and f" — not just 50%.
  const auto tech = Technology::nm100();
  OptimOptions opts;
  opts.f = 0.9;
  const auto r = optimize_rlc(tech, 1e-6, opts);
  ASSERT_TRUE(r.converged);
  const auto line = tech.line(1e-6);
  const double base = delay_per_length(tech.rep, line, r.h, r.k, 0.9);
  EXPECT_GE(delay_per_length(tech.rep, line, 1.02 * r.h, r.k, 0.9), base);
  EXPECT_GE(delay_per_length(tech.rep, line, r.h, 1.02 * r.k, 0.9), base);
}

TEST(Optimizer, InvalidLineRejected) {
  const auto tech = Technology::nm250();
  EXPECT_THROW(optimize_rlc(tech.rep, tline::LineParams{0.0, 0.0, 1e-10}),
               std::domain_error);
}

TEST(Optimizer, ResidualsInvalidNearCriticalDamping) {
  // The pole sensitivities divide by D = sqrt(b1^2 - 4 b2); at (h, k) where
  // the segment is near-critically damped the residual evaluation must
  // refuse (valid == false) instead of returning garbage.  Locate such an h
  // by bisecting the discriminant sign change along h at fixed k.
  const auto tech = Technology::nm100();
  const auto line = tech.line(5e-6);  // strongly inductive: both regimes exist
  const double k = rc_optimum(tech).k;
  const auto disc = [&](double h) {
    const PadeCoeffs pc = pade_coeffs_hk(tech.rep, line, h, k);
    return pc.b1 * pc.b1 - 4.0 * pc.b2;
  };
  // Multiplicative scan for a damping transition.
  const double h_ref = rc_optimum(tech).h;
  double lo = 0.0, hi = 0.0;
  double prev_h = 1e-3 * h_ref;
  double prev_d = disc(prev_h);
  for (double h = prev_h * 1.25; h < 100.0 * h_ref; h *= 1.25) {
    const double d = disc(h);
    if ((prev_d > 0.0) != (d > 0.0)) {
      lo = prev_h;
      hi = h;
      break;
    }
    prev_h = h;
    prev_d = d;
  }
  ASSERT_GT(hi, 0.0) << "no damping transition found along h";
  // Bisect to the float limit; the discriminant there is far inside the
  // near-critical guard band.
  double d_lo = disc(lo);
  for (int it = 0; it < 200 && hi - lo > 0.0; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (mid == lo || mid == hi) break;
    const double d_mid = disc(mid);
    if ((d_lo > 0.0) == (d_mid > 0.0)) {
      lo = mid;
      d_lo = d_mid;
    } else {
      hi = mid;
    }
  }
  const double h_crit = 0.5 * (lo + hi);
  const auto sr = stationarity_residuals(tech.rep, line, h_crit, k);
  EXPECT_FALSE(sr.valid);
  // And optimize_rlc seeded exactly there must still not throw.
  OptimOptions opts;
  opts.h0 = h_crit;
  opts.k0 = k;
  OptimResult r;
  EXPECT_NO_THROW(r = optimize_rlc(tech.rep, line, opts));
  EXPECT_TRUE(r.converged);  // the fallback rescues the near-critical seed
}

TEST(Optimizer, NewtonDivergenceExercisesNelderMeadFallback) {
  // At the 100 nm node with l = 2 nH/mm the cold-started Newton iteration
  // genuinely diverges (the default 0.9x-Elmore seed is far outside the
  // basin in the strongly inductive regime): the Nelder-Mead fallback must
  // produce the converged answer and be labelled as such.
  const auto tech = Technology::nm100();
  const auto fb = optimize_rlc(tech, 2e-6);
  ASSERT_TRUE(fb.converged);
  EXPECT_EQ(fb.method, OptimMethod::kNelderMead);
  EXPECT_GT(fb.newton_iterations, 0);  // Newton ran first, and failed

  // Cross-check against the warm-started continuation, where Newton does
  // converge: same optimum to fallback accuracy.
  std::vector<double> ls;
  for (int i = 0; i <= 4; ++i) ls.push_back(i * 0.5e-6);
  const auto sweep = optimize_rlc_sweep(tech, ls);
  const auto& ref = sweep.back();
  ASSERT_TRUE(ref.converged);
  ASSERT_EQ(ref.method, OptimMethod::kNewton);
  EXPECT_NEAR(fb.delay_per_length, ref.delay_per_length,
              1e-5 * ref.delay_per_length);
  EXPECT_NEAR(fb.h, ref.h, 1e-2 * ref.h);
  EXPECT_NEAR(fb.k, ref.k, 1e-2 * ref.k);
}

TEST(Optimizer, FallbackDisabledReturnsUnconvergedInsteadOfThrowing) {
  const auto tech = Technology::nm250();
  OptimOptions opts;
  opts.max_iterations = 1;  // Newton cannot converge in one step
  opts.allow_fallback = false;
  OptimResult r;
  EXPECT_NO_THROW(r = optimize_rlc(tech, 1e-6, opts));
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.method, OptimMethod::kNewton);
  // The unconverged result must be inert, not half-filled.
  EXPECT_EQ(r.h, 0.0);
  EXPECT_EQ(r.k, 0.0);
  EXPECT_EQ(r.delay_per_length, 0.0);
}

}  // namespace
}  // namespace rlc::core
