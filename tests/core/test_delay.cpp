#include "rlc/core/delay.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rlc/core/technology.hpp"

namespace rlc::core {
namespace {

TEST(Delay, CriticallyDampedAgainstClosedFormRoot) {
  // v(t) = 1 - (1 + a t) e^{-a t} = 0.5  =>  a t ~ 1.67835 (standard root).
  const double b1 = 2e-10;
  const TwoPole sys(PadeCoeffs{b1, b1 * b1 / 4.0});
  const auto r = threshold_delay(sys);
  ASSERT_TRUE(r.converged);
  const double alpha = 2.0 / b1;
  EXPECT_NEAR(alpha * r.tau, 1.6783469900166605, 1e-8);
}

TEST(Delay, ResidualIsZeroAtSolution) {
  const TwoPole sys(PadeCoeffs{3e-10, 1.5e-20});
  DelayOptions opts;
  opts.f = 0.7;
  const auto r = threshold_delay(sys, opts);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(sys.step_response(r.tau), 0.7, 1e-10);
}

TEST(Delay, UnderdampedTakesFirstCrossing) {
  // Strongly underdamped: v(t) crosses f many times; the delay must be the
  // FIRST crossing, which is earlier than b1-based estimates.
  const TwoPole sys(PadeCoeffs{0.2e-10, 1e-20});
  const auto r = threshold_delay(sys);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(sys.step_response(r.tau), 0.5, 1e-10);
  // No earlier crossing: v(t) < f strictly before tau.
  for (int i = 1; i < 100; ++i) {
    const double t = r.tau * i / 100.0;
    EXPECT_LT(sys.step_response(t), 0.5);
  }
}

TEST(Delay, MonotoneInThreshold) {
  const TwoPole sys(PadeCoeffs{3e-10, 1.2e-20});
  double prev = 0.0;
  for (double f : {0.1, 0.3, 0.5, 0.63, 0.8, 0.9}) {
    DelayOptions opts;
    opts.f = f;
    const auto r = threshold_delay(sys, opts);
    ASSERT_TRUE(r.converged) << f;
    EXPECT_GT(r.tau, prev);
    prev = r.tau;
  }
}

TEST(Delay, InvalidThresholdThrows) {
  const TwoPole sys(PadeCoeffs{3e-10, 1e-20});
  DelayOptions opts;
  opts.f = 0.0;
  EXPECT_THROW(threshold_delay(sys, opts), std::domain_error);
  opts.f = 1.0;
  EXPECT_THROW(threshold_delay(sys, opts), std::domain_error);
}

TEST(Delay, FewNewtonIterations) {
  // The paper: "convergence is achieved in less than four iterations in all
  // cases" for Eq. (3).  Our safeguarded Newton includes the bracketing
  // prelude; the polish itself must stay in the same ballpark.
  const auto tech = Technology::nm100();
  for (double l : {0.0, 1e-6, 3e-6, 5e-6}) {
    const auto r = segment_delay(tech.rep, tech.line(l), 0.011, 500.0);
    ASSERT_TRUE(r.converged) << l;
    EXPECT_LE(r.newton_iterations, 60) << l;
  }
}

TEST(Delay, Delay50Convenience) {
  const TwoPole sys(PadeCoeffs{3e-10, 1e-20});
  EXPECT_NEAR(sys.step_response(delay_50(sys)), 0.5, 1e-10);
}

TEST(Delay, IncreasesWithInductanceAtFixedSizing) {
  // At the RC-optimal sizing, adding inductance slows the segment (the
  // premise of Figure 8).
  const auto tech = Technology::nm100();
  double prev = 0.0;
  for (double l : {0.0, 1e-6, 2e-6, 4e-6}) {
    const auto r = segment_delay(tech.rep, tech.line(l), 0.0111, 528.0);
    ASSERT_TRUE(r.converged);
    EXPECT_GT(r.tau, prev);
    prev = r.tau;
  }
}

// Property sweep across damping regimes: delay solve always converges and
// lands exactly on the threshold.
class DelaySweep : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(DelaySweep, ConvergesAndSatisfiesEquation) {
  const auto [b2_over_crit, f] = GetParam();
  const double b1 = 2.5e-10;
  const PadeCoeffs pc{b1, b2_over_crit * b1 * b1 / 4.0};
  const TwoPole sys(pc);
  DelayOptions opts;
  opts.f = f;
  const auto r = threshold_delay(sys, opts);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(sys.step_response(r.tau), f, 1e-7);
  EXPECT_GT(r.tau, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    DampingAndThreshold, DelaySweep,
    ::testing::Combine(
        ::testing::Values(0.05, 0.5, 0.999, 1.0, 1.001, 2.0, 20.0),
        ::testing::Values(0.1, 0.5, 0.9)));

}  // namespace
}  // namespace rlc::core
