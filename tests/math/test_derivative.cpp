#include "rlc/math/derivative.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rlc::math {
namespace {

TEST(CentralDiff, Exponential) {
  EXPECT_NEAR(central_diff([](double x) { return std::exp(x); }, 1.0),
              std::exp(1.0), 1e-8);
}

TEST(CentralDiff, AtZeroUsesAbsoluteStep) {
  EXPECT_NEAR(central_diff([](double x) { return std::sin(x); }, 0.0), 1.0,
              1e-6);
}

TEST(RichardsonDiff, HigherAccuracyThanCentral) {
  const auto f = [](double x) { return std::sin(3.0 * x); };
  const double exact = 3.0 * std::cos(3.0 * 0.4);
  const double ec = std::abs(central_diff(f, 0.4, 1e-3) - exact);
  const double er = std::abs(richardson_diff(f, 0.4, 1e-3) - exact);
  EXPECT_LT(er, ec);
  EXPECT_NEAR(richardson_diff(f, 0.4, 1e-3), exact, 1e-10);
}

TEST(CentralDiff2, Quadratic) {
  EXPECT_NEAR(central_diff2([](double x) { return 3.0 * x * x; }, 5.0), 6.0,
              1e-5);
}

TEST(CentralDiff2, Cosine) {
  EXPECT_NEAR(central_diff2([](double x) { return std::cos(x); }, 0.7),
              -std::cos(0.7), 1e-5);
}

}  // namespace
}  // namespace rlc::math
