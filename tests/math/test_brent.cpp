#include "rlc/math/brent.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rlc::math {
namespace {

TEST(BrentRoot, Polynomial) {
  const auto f = [](double x) { return (x - 1.0) * (x + 2.0) * (x - 3.5); };
  const auto r = brent_root(f, 0.0, 2.0);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 1.0, 1e-12);
}

TEST(BrentRoot, EndpointRoot) {
  const auto f = [](double x) { return x; };
  const auto r = brent_root(f, 0.0, 1.0);
  ASSERT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.x, 0.0);
}

TEST(BrentRoot, NoSignChangeFails) {
  const auto f = [](double x) { return x * x + 1.0; };
  EXPECT_FALSE(brent_root(f, -1.0, 1.0).converged);
}

TEST(BrentRoot, SteepFunction) {
  const auto f = [](double x) { return std::tanh(1e4 * (x - 0.123)); };
  const auto r = brent_root(f, 0.0, 1.0);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 0.123, 1e-9);
}

TEST(ScanBracket, FindsFirstSignChange) {
  const auto f = [](double x) { return std::sin(x); };
  const auto b = scan_bracket(f, 1.0, 10.0, 100);
  ASSERT_TRUE(b.has_value());
  EXPECT_LE(b->first, 3.14159265);
  EXPECT_GE(b->second, 3.14159265);
}

TEST(ScanBracket, NoneWhenPositive) {
  const auto f = [](double x) { return 1.0 + x * x; };
  EXPECT_FALSE(scan_bracket(f, -5.0, 5.0, 64).has_value());
}

TEST(BrentMinimize, Parabola) {
  const auto f = [](double x) { return (x - 2.5) * (x - 2.5) + 7.0; };
  const auto r = brent_minimize(f, 0.0, 10.0);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 2.5, 1e-7);
  EXPECT_NEAR(r.fx, 7.0, 1e-12);
}

TEST(BrentMinimize, AsymmetricValley) {
  const auto f = [](double x) { return std::exp(x) - 3.0 * x; };  // min at ln 3
  const auto r = brent_minimize(f, 0.0, 3.0);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.x, std::log(3.0), 1e-7);
}

}  // namespace
}  // namespace rlc::math
