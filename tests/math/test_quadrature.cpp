#include "rlc/math/quadrature.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rlc/math/constants.hpp"

namespace rlc::math {
namespace {

// An n-point Gauss-Legendre rule integrates polynomials up to degree 2n-1
// exactly; verify for every tabulated order.
class GaussExactness : public ::testing::TestWithParam<int> {};

TEST_P(GaussExactness, IntegratesMaxDegreePolynomialExactly) {
  const int n = GetParam();
  const int deg = 2 * n - 1;
  const auto f = [deg](double x) { return std::pow(x, deg) + std::pow(x, deg - 1); };
  // integral over [0, 2] of x^d = 2^{d+1}/(d+1)
  const double exact = std::pow(2.0, deg + 1) / (deg + 1) +
                       std::pow(2.0, deg) / deg;
  EXPECT_NEAR(gauss_legendre(f, 0.0, 2.0, n), exact, 1e-9 * std::abs(exact));
}

INSTANTIATE_TEST_SUITE_P(Orders, GaussExactness,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 12, 16));

TEST(GaussLegendre, SineOverHalfPeriod) {
  const double v = gauss_legendre([](double x) { return std::sin(x); }, 0.0,
                                  kPi, 16);
  EXPECT_NEAR(v, 2.0, 1e-12);
}

TEST(GaussLegendre, ReversedIntervalFlipsSign) {
  const auto f = [](double x) { return x * x; };
  EXPECT_NEAR(gauss_legendre(f, 2.0, 0.0, 8), -gauss_legendre(f, 0.0, 2.0, 8),
              1e-14);
}

TEST(AdaptiveSimpson, SmoothFunction) {
  const double v =
      adaptive_simpson([](double x) { return std::exp(-x * x); }, -6.0, 6.0,
                       1e-12);
  EXPECT_NEAR(v, std::sqrt(kPi), 1e-10);
}

TEST(AdaptiveSimpson, SharplyPeaked) {
  // Lorentzian of width 1e-3 centered mid-interval.
  const double w = 1e-3;
  const auto f = [w](double x) { return w / (w * w + (x - 0.5) * (x - 0.5)); };
  const double v = adaptive_simpson(f, 0.0, 1.0, 1e-10);
  const double exact = std::atan(0.5 / w) - std::atan(-0.5 / w);
  EXPECT_NEAR(v, exact, 1e-7);
}

TEST(AdaptiveSimpson, IntegrableLogSingularityNearEdge) {
  const double v =
      adaptive_simpson([](double x) { return std::log(x); }, 1e-12, 1.0, 1e-10);
  EXPECT_NEAR(v, -1.0, 1e-4);
}

}  // namespace
}  // namespace rlc::math
