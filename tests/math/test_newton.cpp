#include "rlc/math/newton.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rlc::math {
namespace {

TEST(NewtonScalar, SqrtTwo) {
  const auto f = [](double x) { return x * x - 2.0; };
  const auto fp = [](double x) { return 2.0 * x; };
  const auto r = newton_scalar(f, fp, 1.0);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.x, std::sqrt(2.0), 1e-12);
  EXPECT_LE(r.iterations, 8);
}

TEST(NewtonScalar, CubicFromFlatRegionNeedsDamping) {
  // x^3 - x: near x = 1/sqrt(3) the derivative vanishes; damping keeps the
  // iteration bounded where pure Newton overshoots wildly.
  const auto f = [](double x) { return x * x * x - x; };
  const auto fp = [](double x) { return 3.0 * x * x - 1.0; };
  const auto r = newton_scalar(f, fp, 0.46);
  ASSERT_TRUE(r.converged);
  // Any of the three roots {-1, 0, 1} is a valid answer.
  EXPECT_NEAR(std::abs(r.x) * (std::abs(r.x) - 1.0), 0.0, 1e-9);
}

TEST(NewtonScalar, ReportsFailureOnNoRoot) {
  const auto f = [](double x) { return x * x + 1.0; };
  const auto fp = [](double x) { return 2.0 * x; };
  NewtonOptions opts;
  opts.max_iterations = 30;
  const auto r = newton_scalar(f, fp, 3.0, opts);
  EXPECT_FALSE(r.converged);
}

TEST(NewtonBisect, FindsRootWithinBracket) {
  const auto f = [](double x) { return std::cos(x) - x; };
  const auto fp = [](double x) { return -std::sin(x) - 1.0; };
  const auto r = newton_bisect_scalar(f, fp, 0.0, 1.5);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 0.7390851332151607, 1e-10);
}

TEST(NewtonBisect, RejectsBadBracket) {
  const auto f = [](double x) { return x * x + 1.0; };
  const auto fp = [](double x) { return 2.0 * x; };
  const auto r = newton_bisect_scalar(f, fp, -1.0, 1.0);
  EXPECT_FALSE(r.converged);
}

TEST(NewtonBisect, SurvivesPathologicalDerivative) {
  // Derivative callback lies (returns 0); solver must fall back to bisection.
  const auto f = [](double x) { return x - 0.25; };
  const auto fp = [](double) { return 0.0; };
  const auto r = newton_bisect_scalar(f, fp, 0.0, 1.0);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 0.25, 1e-9);
}

TEST(Newton2D, SolvesCoupledSystem) {
  // x^2 + y^2 = 4, x*y = 1.
  const Fn2 f = [](const std::array<double, 2>& v) {
    return std::array<double, 2>{v[0] * v[0] + v[1] * v[1] - 4.0,
                                 v[0] * v[1] - 1.0};
  };
  const Jac2 j = [](const std::array<double, 2>& v) {
    return std::array<std::array<double, 2>, 2>{
        std::array<double, 2>{2.0 * v[0], 2.0 * v[1]},
        std::array<double, 2>{v[1], v[0]}};
  };
  const auto r = newton_2d(f, j, {2.0, 0.3});
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0] * r.x[0] + r.x[1] * r.x[1], 4.0, 1e-9);
  EXPECT_NEAR(r.x[0] * r.x[1], 1.0, 1e-9);
}

TEST(Newton2D, FdJacobianMatchesAnalytic) {
  const Fn2 f = [](const std::array<double, 2>& v) {
    return std::array<double, 2>{std::exp(v[0]) - v[1],
                                 v[0] * v[0] + std::sin(v[1])};
  };
  const auto jfd = fd_jacobian_2d(f);
  const std::array<double, 2> x{0.7, -0.3};
  const auto J = jfd(x);
  EXPECT_NEAR(J[0][0], std::exp(0.7), 1e-6);
  EXPECT_NEAR(J[0][1], -1.0, 1e-6);
  EXPECT_NEAR(J[1][0], 2.0 * 0.7, 1e-6);
  EXPECT_NEAR(J[1][1], std::cos(-0.3), 1e-6);
}

TEST(Newton2D, RespectsLowerBounds) {
  // Root at (-1, -1) but bounds keep the iterate positive; the solve must
  // not converge to the out-of-bounds root and must never go non-positive.
  const Fn2 f = [](const std::array<double, 2>& v) {
    return std::array<double, 2>{v[0] + 1.0, v[1] + 1.0};
  };
  const auto r = newton_2d(f, fd_jacobian_2d(f), {1.0, 1.0}, {},
                           std::array<double, 2>{0.0, 0.0});
  EXPECT_FALSE(r.converged);
  EXPECT_GT(r.x[0], 0.0);
  EXPECT_GT(r.x[1], 0.0);
}

// Parameterized sweep: scalar Newton must converge for a family of shifted
// exponential equations exp(x) = a, any a > 0.
class NewtonExpSweep : public ::testing::TestWithParam<double> {};

TEST_P(NewtonExpSweep, ConvergesToLog) {
  const double a = GetParam();
  const auto f = [a](double x) { return std::exp(x) - a; };
  const auto fp = [](double x) { return std::exp(x); };
  NewtonOptions opts;
  // Large a needs many damped steps (the full Newton step overflows exp);
  // small a has |f'| << 1 near the root so the f-tolerance translates into
  // a looser x accuracy.
  opts.max_iterations = 500;
  opts.f_tolerance = 1e-12 * std::max(a, 1.0);
  const auto r = newton_scalar(f, fp, 0.0, opts);
  ASSERT_TRUE(r.converged) << "a = " << a;
  EXPECT_NEAR(r.x, std::log(a), 1e-7 * (1.0 + std::abs(std::log(a))));
}

INSTANTIATE_TEST_SUITE_P(Sweep, NewtonExpSweep,
                         ::testing::Values(1e-4, 0.1, 0.5, 1.0, 2.0, 10.0,
                                           1e3, 1e6));

}  // namespace
}  // namespace rlc::math
