#include "rlc/math/polynomial.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rlc::math {
namespace {

TEST(QuadraticRoots, DistinctReal) {
  // (x - 2)(x + 5) = x^2 + 3x - 10
  const auto [r1, r2] = quadratic_roots(1.0, 3.0, -10.0);
  const double lo = std::min(r1.real(), r2.real());
  const double hi = std::max(r1.real(), r2.real());
  EXPECT_NEAR(lo, -5.0, 1e-12);
  EXPECT_NEAR(hi, 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(r1.imag(), 0.0);
  EXPECT_DOUBLE_EQ(r2.imag(), 0.0);
}

TEST(QuadraticRoots, ComplexConjugate) {
  // x^2 + 2x + 5: roots -1 +- 2i
  const auto [r1, r2] = quadratic_roots(1.0, 2.0, 5.0);
  EXPECT_NEAR(r1.real(), -1.0, 1e-12);
  EXPECT_NEAR(std::abs(r1.imag()), 2.0, 1e-12);
  EXPECT_NEAR(r2.real(), -1.0, 1e-12);
  EXPECT_NEAR(r1.imag(), -r2.imag(), 1e-15);
}

TEST(QuadraticRoots, CancellationResistant) {
  // b >> 4ac: naive formula loses the small root to cancellation.
  const auto [r1, r2] = quadratic_roots(1.0, 1e8, 1.0);
  const double small = std::min(std::abs(r1.real()), std::abs(r2.real()));
  const double big = std::max(std::abs(r1.real()), std::abs(r2.real()));
  EXPECT_NEAR(small, 1e-8, 1e-14);
  EXPECT_NEAR(big, 1e8, 1.0);
}

TEST(QuadraticRoots, NearCriticalDamping) {
  // (x + 1)^2 + tiny perturbation.
  const auto [r1, r2] = quadratic_roots(1.0, 2.0, 1.0 + 1e-14);
  EXPECT_NEAR(r1.real(), -1.0, 1e-6);
  EXPECT_NEAR(r2.real(), -1.0, 1e-6);
}

TEST(QuadraticRoots, ThrowsOnDegenerateLeadingCoefficient) {
  EXPECT_THROW(quadratic_roots(0.0, 1.0, 1.0), std::invalid_argument);
}

TEST(QuadraticRoots, ProductAndSumIdentities) {
  // Vieta: r1 + r2 = -b/a, r1 * r2 = c/a, across a sweep of coefficients.
  for (double b : {-7.0, -0.5, 0.0, 0.5, 7.0}) {
    for (double c : {-3.0, 0.25, 2.0}) {
      const auto [r1, r2] = quadratic_roots(2.0, b, c);
      EXPECT_NEAR((r1 + r2).real(), -b / 2.0, 1e-10) << b << " " << c;
      EXPECT_NEAR((r1 * r2).real(), c / 2.0, 1e-10) << b << " " << c;
      EXPECT_NEAR((r1 + r2).imag(), 0.0, 1e-10);
      EXPECT_NEAR((r1 * r2).imag(), 0.0, 1e-10);
    }
  }
}

TEST(Polyval, MatchesHorner) {
  const std::vector<double> c{1.0, -2.0, 0.5, 3.0};  // 1 - 2x + 0.5x^2 + 3x^3
  EXPECT_NEAR(polyval(c, 2.0), 1.0 - 4.0 + 2.0 + 24.0, 1e-12);
  EXPECT_DOUBLE_EQ(polyval({}, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(polyval({42.0}, 5.0), 42.0);
}

TEST(Polyval, ComplexArgument) {
  const std::vector<double> c{0.0, 0.0, 1.0};  // x^2
  const auto v = polyval(c, std::complex<double>{0.0, 1.0});
  EXPECT_NEAR(v.real(), -1.0, 1e-15);
  EXPECT_NEAR(v.imag(), 0.0, 1e-15);
}

}  // namespace
}  // namespace rlc::math
