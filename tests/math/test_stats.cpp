#include "rlc/math/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rlc/math/constants.hpp"

namespace rlc::math {
namespace {

TEST(Stats, PeakAndExtremes) {
  const std::vector<double> y{-3.0, 1.0, 2.5, -0.5};
  EXPECT_DOUBLE_EQ(peak_abs(y), 3.0);
  EXPECT_DOUBLE_EQ(maximum(y), 2.5);
  EXPECT_DOUBLE_EQ(minimum(y), -3.0);
}

TEST(Stats, TrapzIntegralLinearRamp) {
  const std::vector<double> t{0.0, 1.0, 2.0, 4.0};
  const std::vector<double> y{0.0, 1.0, 2.0, 4.0};  // y = t
  EXPECT_NEAR(integral_trapz(t, y), 8.0, 1e-14);    // t^2/2 at 4
}

TEST(Stats, MeanOfConstantIsConstant) {
  const std::vector<double> t{0.0, 0.1, 0.7, 1.0};
  const std::vector<double> y{5.0, 5.0, 5.0, 5.0};
  EXPECT_NEAR(mean_trapz(t, y), 5.0, 1e-14);
  EXPECT_NEAR(rms_trapz(t, y), 5.0, 1e-14);
}

TEST(Stats, RmsOfSineIsAmplitudeOverSqrt2) {
  std::vector<double> t, y;
  const int n = 20001;
  for (int i = 0; i < n; ++i) {
    const double tt = 2.0 * kPi * i / (n - 1);
    t.push_back(tt);
    y.push_back(3.0 * std::sin(tt));
  }
  EXPECT_NEAR(rms_trapz(t, y), 3.0 / std::sqrt(2.0), 1e-4);
}

TEST(Stats, NonUniformSamplingHandled) {
  // y = t sampled very unevenly; trapz on a linear function is exact.
  const std::vector<double> t{0.0, 0.001, 0.5, 0.51, 3.0};
  const std::vector<double> y{0.0, 0.001, 0.5, 0.51, 3.0};
  EXPECT_NEAR(integral_trapz(t, y), 4.5, 1e-12);
  EXPECT_NEAR(mean_trapz(t, y), 1.5, 1e-12);
}

TEST(Stats, ThrowsOnBadInput) {
  const std::vector<double> t{0.0, 1.0};
  const std::vector<double> y1{1.0};
  EXPECT_THROW(integral_trapz(t, y1), std::invalid_argument);
  const std::vector<double> t_bad{1.0, 1.0};
  const std::vector<double> y{1.0, 1.0};
  EXPECT_THROW(mean_trapz(t_bad, y), std::invalid_argument);
}

}  // namespace
}  // namespace rlc::math
