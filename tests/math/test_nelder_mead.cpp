#include "rlc/math/nelder_mead.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace rlc::math {
namespace {

TEST(NelderMead, Quadratic2D) {
  const auto f = [](const std::vector<double>& x) {
    return (x[0] - 1.0) * (x[0] - 1.0) + 10.0 * (x[1] + 2.0) * (x[1] + 2.0);
  };
  const auto r = nelder_mead(f, {0.0, 0.0});
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 1.0, 1e-5);
  EXPECT_NEAR(r.x[1], -2.0, 1e-5);
}

TEST(NelderMead, Rosenbrock) {
  const auto f = [](const std::vector<double>& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  NelderMeadOptions opts;
  opts.max_iterations = 10000;
  const auto r = nelder_mead(f, {-1.2, 1.0}, opts);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 1.0, 1e-4);
  EXPECT_NEAR(r.x[1], 1.0, 1e-4);
}

TEST(NelderMead, HardConstraintViaNan) {
  // Minimize (x-3)^2 but only x > 0 is feasible (NaN outside); the optimum
  // is interior so the constraint must not break convergence.
  const auto f = [](const std::vector<double>& x) {
    if (x[0] <= 0.0) return std::numeric_limits<double>::quiet_NaN();
    return (x[0] - 3.0) * (x[0] - 3.0);
  };
  const auto r = nelder_mead(f, {0.5});
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 3.0, 1e-5);
}

TEST(NelderMead, ZeroInitialCoordinateGetsAbsoluteStep) {
  const auto f = [](const std::vector<double>& x) {
    return x[0] * x[0] + (x[1] - 0.5) * (x[1] - 0.5);
  };
  const auto r = nelder_mead(f, {0.0, 0.0});
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.x[1], 0.5, 1e-5);
}

TEST(NelderMead, EmptyInputReturnsUnconverged) {
  const auto f = [](const std::vector<double>&) { return 0.0; };
  EXPECT_FALSE(nelder_mead(f, {}).converged);
}

// 4-D sphere function: dimension scaling sanity.
TEST(NelderMead, Sphere4D) {
  const auto f = [](const std::vector<double>& x) {
    double s = 0.0;
    for (double v : x) s += v * v;
    return s;
  };
  NelderMeadOptions opts;
  opts.max_iterations = 20000;
  const auto r = nelder_mead(f, {1.0, -2.0, 0.5, 3.0}, opts);
  ASSERT_TRUE(r.converged);
  for (double v : r.x) EXPECT_NEAR(v, 0.0, 1e-4);
}

}  // namespace
}  // namespace rlc::math
