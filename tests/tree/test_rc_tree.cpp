#include "rlc/tree/rc_tree.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rlc/core/delay.hpp"
#include "rlc/spice/circuit.hpp"
#include "rlc/spice/transient.hpp"

namespace rlc::tree {
namespace {

TEST(RcTree, HandComputedElmoreChain) {
  // source --rs=100-- n0(c=1p) --r=200-- n1(c=2p) --r=300-- n2(c=3p)
  RcTree t(100.0, 1e-12);
  const auto n1 = t.add_node(0, 200.0, 2e-12);
  const auto n2 = t.add_node(n1, 300.0, 3e-12);
  const auto m1 = t.elmore_delays();
  // m1(n0) = 100 * 6p; m1(n1) = m1(n0) + 200 * 5p; m1(n2) = m1(n1) + 300*3p.
  EXPECT_NEAR(m1[0], 100.0 * 6e-12, 1e-22);
  EXPECT_NEAR(m1[n1], 100.0 * 6e-12 + 200.0 * 5e-12, 1e-22);
  EXPECT_NEAR(m1[n2], 100.0 * 6e-12 + 200.0 * 5e-12 + 300.0 * 3e-12, 1e-22);
}

TEST(RcTree, HandComputedElmoreBranch) {
  //        /-- r=100 -- a (c=1p)
  // n0(0p)
  //        \-- r=400 -- b (c=2p)
  RcTree t(50.0, 0.0);
  const auto a = t.add_node(0, 100.0, 1e-12);
  const auto b = t.add_node(0, 400.0, 2e-12);
  const auto m1 = t.elmore_delays();
  EXPECT_NEAR(m1[a], 50.0 * 3e-12 + 100.0 * 1e-12, 1e-22);
  EXPECT_NEAR(m1[b], 50.0 * 3e-12 + 400.0 * 2e-12, 1e-22);
}

TEST(RcTree, SecondMomentHandComputed) {
  // Single node beyond root: source -rs- root(c0) -r- n1(c1).
  const double rs = 100.0, r = 200.0, c0 = 1e-12, c1 = 2e-12;
  RcTree t(rs, c0);
  const auto n1 = t.add_node(0, r, c1);
  const auto ms = t.moments();
  const double m1_root = rs * (c0 + c1);
  const double m1_n1 = m1_root + r * c1;
  // m2(i) = sum_k R_ik C_k m1_k.
  const double m2_root = rs * (c0 * m1_root + c1 * m1_n1);
  const double m2_n1 = m2_root + r * c1 * m1_n1;
  EXPECT_NEAR(ms[0].m1, m1_root, 1e-24);
  EXPECT_NEAR(ms[n1].m1, m1_n1, 1e-24);
  EXPECT_NEAR(ms[0].m2, m2_root, 1e-34);
  EXPECT_NEAR(ms[n1].m2, m2_n1, 1e-34);
}

TEST(RcTree, WireBuilderPreservesTotals) {
  RcTree t(100.0);
  t.add_wire(0, 1000.0, 10e-12, 8);
  EXPECT_NEAR(t.total_cap(), 10e-12, 1e-24);
  // Elmore of a distributed line into nothing: rs*C + r*c/2 (continuum).
  const auto m1 = t.elmore_delays();
  const double expect = 100.0 * 10e-12 + 0.5 * 1000.0 * 10e-12;
  EXPECT_NEAR(m1.back(), expect, 0.01 * expect);
}

TEST(RcTree, TwoPoleDelayMatchesSpiceOnTree) {
  // A branching RC tree: compare the per-sink two-pole 50% delay estimate
  // against the MNA transient.  The 2-pole reduction is exact to two
  // moments, so a few percent agreement is expected.
  const double rs = 1e3;
  RcTree t(rs, 0.1e-12);
  const auto trunk = t.add_wire(0, 2e3, 4e-12, 6);
  const auto sink_a = t.add_wire(trunk, 1e3, 2e-12, 4);
  const auto sink_b = t.add_wire(trunk, 3e3, 3e-12, 4);
  t.add_cap(sink_a, 1e-12);
  t.add_cap(sink_b, 0.5e-12);

  // Mirror the tree in the circuit engine.
  rlc::spice::Circuit ckt;
  std::vector<rlc::spice::NodeId> nodes(t.size());
  const auto src = ckt.node("src");
  ckt.add_vsource("V", src, ckt.ground(),
                  rlc::spice::PulseSpec{0, 1, 0, 1e-14, 1e-14, 1, 0});
  nodes[0] = ckt.node("n0");
  ckt.add_resistor("Rs", src, nodes[0], rs);
  for (NodeId n = 1; n < t.size(); ++n) {
    nodes[n] = ckt.node("n" + std::to_string(n));
    ckt.add_resistor("R" + std::to_string(n), nodes[t.parent(n)], nodes[n],
                     t.edge_resistance(n));
  }
  for (NodeId n = 0; n < t.size(); ++n) {
    if (t.node_cap(n) > 0.0) {
      ckt.add_capacitor("C" + std::to_string(n), nodes[n], ckt.ground(),
                        t.node_cap(n));
    }
  }
  rlc::spice::TransientOptions o;
  o.tstop = 1e-7;
  o.dt = 2e-11;
  o.probes = {rlc::spice::Probe::node_voltage(nodes[sink_a], "a"),
              rlc::spice::Probe::node_voltage(nodes[sink_b], "b")};
  const auto r = run_transient(ckt, o);
  ASSERT_TRUE(r.completed);

  for (const auto& [sink, label] :
       {std::pair<NodeId, const char*>{sink_a, "a"}, {sink_b, "b"}}) {
    const rlc::core::TwoPole sys(t.two_pole_at(sink));
    const double tau_model = rlc::core::delay_50(sys);
    const auto& v = r.signal(label);
    double tau_sim = -1.0;
    for (std::size_t i = 1; i < r.time.size(); ++i) {
      if (v[i - 1] < 0.5 && v[i] >= 0.5) {
        const double f = (0.5 - v[i - 1]) / (v[i] - v[i - 1]);
        tau_sim = r.time[i - 1] + f * (r.time[i] - r.time[i - 1]);
        break;
      }
    }
    ASSERT_GT(tau_sim, 0.0) << label;
    EXPECT_NEAR(tau_model, tau_sim, 0.06 * tau_sim) << label;
  }
}

TEST(RcTree, TwoPoleNotReducibleForPureSinglePole) {
  // Driver + single lumped cap is a 1-pole system: b2 = m1^2 - m2 = 0, and
  // the reduction must refuse rather than fabricate a second pole.
  RcTree t(1e3, 1e-12);
  EXPECT_THROW(t.two_pole_at(0), std::runtime_error);
}

TEST(RcTree, Validation) {
  EXPECT_THROW(RcTree(0.0), std::domain_error);
  RcTree t(100.0);
  EXPECT_THROW(t.add_node(5, 1.0, 0.0), std::out_of_range);
  EXPECT_THROW(t.add_node(0, 0.0, 0.0), std::domain_error);
  EXPECT_THROW(t.add_node(0, 1.0, -1e-15), std::domain_error);
  EXPECT_THROW(t.add_wire(0, 1.0, 1e-12, 0), std::domain_error);
  EXPECT_THROW(t.add_cap(7, 1e-15), std::out_of_range);
  EXPECT_THROW(t.two_pole_at(-1), std::out_of_range);
}

TEST(RcTree, LeavesAndChildren) {
  RcTree t(10.0);
  const auto a = t.add_node(0, 1.0, 1e-15);
  const auto b = t.add_node(0, 1.0, 1e-15);
  const auto c = t.add_node(a, 1.0, 1e-15);
  const auto leaves = t.leaves();
  ASSERT_EQ(leaves.size(), 2u);
  EXPECT_EQ(leaves[0], b);
  EXPECT_EQ(leaves[1], c);
  EXPECT_EQ(t.children(0).size(), 2u);
}

}  // namespace
}  // namespace rlc::tree
