#include "rlc/tree/buffering.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rlc/core/elmore.hpp"

namespace rlc::tree {
namespace {

using rlc::core::Technology;

TEST(BufferCell, FromRepeaterScaling) {
  const rlc::core::Repeater rep{1000.0, 1e-15, 4e-15};
  const auto c = BufferCell::from_repeater(rep, 10.0);
  EXPECT_DOUBLE_EQ(c.rs, 100.0);
  EXPECT_DOUBLE_EQ(c.cin, 1e-14);
  EXPECT_DOUBLE_EQ(c.cp, 4e-14);
  EXPECT_DOUBLE_EQ(c.intrinsic, 100.0 * 4e-14);
  EXPECT_THROW(BufferCell::from_repeater(rep, 0.0), std::domain_error);
}

TEST(BufferLibrary, GeometricSizes) {
  const rlc::core::Repeater rep{1000.0, 1e-15, 4e-15};
  const auto lib = BufferLibrary::geometric(rep, 10.0, 2.0, 4);
  ASSERT_EQ(lib.cells.size(), 4u);
  EXPECT_DOUBLE_EQ(lib.cells[0].rs, 100.0);
  EXPECT_DOUBLE_EQ(lib.cells[3].rs, 12.5);
  EXPECT_THROW(BufferLibrary::geometric(rep, 1.0, 1.0, 3), std::domain_error);
}

TEST(VanGinneken, NeverWorseThanUnbuffered) {
  const auto tech = Technology::nm100();
  RcTree t(tech.rep.rs / 100.0);
  t.add_wire(0, 4.4e3 * 5e-3, 123e-12 * 5e-3, 20);  // 5 mm of wire
  const auto lib = BufferLibrary::geometric(tech.rep, 50.0, 1.6, 6);
  const auto res = van_ginneken(t, lib);
  EXPECT_LE(res.delay, unbuffered_delay(t) * (1.0 + 1e-12));
}

TEST(VanGinneken, LongLineWantsBuffers) {
  // A 60 mm 100nm-class line spans ~5.4 optimal segments; buffering must
  // insert several repeaters and beat the quadratic unbuffered delay
  // (ideal: ~5.4 * tau_optRC = 573 ps vs ~1 ns unbuffered).
  const auto tech = Technology::nm100();
  const double len = 60e-3;
  RcTree t(tech.rep.rs / 528.0);
  const auto end = t.add_wire(0, tech.r * len, tech.c * len, 80);
  t.add_cap(end, tech.rep.c0 * 528.0);
  const auto lib = BufferLibrary::geometric(tech.rep, 66.0, 2.0, 5);  // up to 1056
  const auto res = van_ginneken(t, lib);
  EXPECT_GE(res.placements.size(), 3u);
  EXPECT_LT(res.delay, 0.75 * unbuffered_delay(t));
}

TEST(VanGinneken, LineSolutionTracksClosedFormSegmentation) {
  // On a uniform line the DP should land near the closed-form optimum:
  // ~L/h_optRC buffers of ~k_optRC size, and a delay close to
  // (L/h) * tau_optRC.  The DP is restricted to discrete positions and
  // sizes, so allow a modest margin.
  const auto tech = Technology::nm250();
  const auto rc = rlc::core::rc_optimum(tech);
  const double len = 60e-3;  // ~4.2 optimal segments
  RcTree t(tech.rep.rs / rc.k);
  const auto end = t.add_wire(0, tech.r * len, tech.c * len, 80);
  t.add_cap(end, tech.rep.c0 * rc.k);
  // Library bracketing k_optRC.
  const auto lib = BufferLibrary::geometric(tech.rep, rc.k / 2.0, 1.26, 7);
  const auto res = van_ginneken(t, lib);
  const double n_segments_ideal = len / rc.h;
  EXPECT_NEAR(static_cast<double>(res.placements.size() + 1), n_segments_ideal,
              1.6);
  const double ideal_delay = n_segments_ideal * rc.tau;
  EXPECT_LT(res.delay, 1.35 * ideal_delay);
  EXPECT_GT(res.delay, 0.75 * ideal_delay);
}

TEST(VanGinneken, BranchSplitGetsDecoupled) {
  // A light critical sink and a huge side load: optimal buffering shields
  // the critical path by buffering the heavy branch.
  const auto tech = Technology::nm100();
  RcTree t(tech.rep.rs / 200.0);
  const auto split = t.add_wire(0, 1e3, 0.5e-12, 4);
  const auto fast = t.add_wire(split, 0.5e3, 0.2e-12, 2);
  t.add_cap(fast, 5e-15);
  const auto heavy_entry = t.add_node(split, 10.0, 0.0);
  t.add_cap(heavy_entry, 4e-12);  // big lump behind a short stub
  (void)fast;

  const auto lib = BufferLibrary::geometric(tech.rep, 20.0, 2.0, 4);
  BufferingOptions opts;
  opts.legal_nodes = {heavy_entry};  // only allowed to shield the lump
  const auto res = van_ginneken(t, lib, opts);
  EXPECT_EQ(res.placements.size(), 1u);
  EXPECT_EQ(res.placements[0].node, heavy_entry);
  EXPECT_LT(res.delay, unbuffered_delay(t));
}

TEST(VanGinneken, CandidateCapKeepsResultSane) {
  const auto tech = Technology::nm100();
  RcTree t(tech.rep.rs / 300.0);
  t.add_wire(0, 4.4e3 * 20e-3, 123e-12 * 20e-3, 40);
  const auto lib = BufferLibrary::geometric(tech.rep, 100.0, 1.5, 5);
  const auto full = van_ginneken(t, lib);
  BufferingOptions capped;
  capped.max_candidates = 8;
  const auto thin = van_ginneken(t, lib, capped);
  EXPECT_LE(full.delay, thin.delay * (1.0 + 1e-12));
  EXPECT_LT(thin.delay, 1.15 * full.delay);  // pruning costs only a little
}

TEST(VanGinneken, Validation) {
  RcTree t(100.0);
  t.add_node(0, 1.0, 1e-15);
  EXPECT_THROW(van_ginneken(t, BufferLibrary{}), std::invalid_argument);
  const rlc::core::Repeater rep{1000.0, 1e-15, 4e-15};
  const auto lib = BufferLibrary::geometric(rep, 1.0, 2.0, 2);
  BufferingOptions opts;
  opts.legal_nodes = {0};
  EXPECT_THROW(van_ginneken(t, lib, opts), std::out_of_range);
  opts.legal_nodes = {99};
  EXPECT_THROW(van_ginneken(t, lib, opts), std::out_of_range);
}

}  // namespace
}  // namespace rlc::tree
