/// rlc::obs tracer: capture/rollup semantics, depth attribution, Chrome
/// trace-event export (parsed back through the rlc::io reader), overflow
/// accounting, and the tracing-on/off numerical-determinism contract.
/// The concurrent tests double as race detectors under the CI TSan job.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "rlc/io/json_reader.hpp"
#include "rlc/obs/trace.hpp"
#include "rlc/scenario/registry.hpp"

namespace {

using rlc::obs::SpanGuard;
using rlc::obs::Tracer;

/// Busy-wait so every span has a measurable, strictly positive duration.
void spin_ns(std::int64_t ns) {
  const std::int64_t t0 = Tracer::now_ns();
  while (Tracer::now_ns() - t0 < ns) {
  }
}

const Tracer::SpanStats* find_span(const std::vector<Tracer::SpanStats>& roll,
                                   const std::string& name) {
  for (const auto& s : roll) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

/// Every trace test starts from a quiet, empty tracer and leaves it that
/// way so tests cannot observe each other's spans.
struct TracerQuiesce {
  TracerQuiesce() {
    Tracer::global().disable();
    Tracer::global().clear();
  }
  ~TracerQuiesce() {
    Tracer::global().disable();
    Tracer::global().clear();
  }
};

TEST(Trace, DisabledTracerCapturesNothing) {
  TracerQuiesce q;
  ASSERT_FALSE(Tracer::enabled());
  for (int i = 0; i < 100; ++i) {
    RLC_TRACE_SPAN("t_trace_disabled");
  }
  EXPECT_EQ(Tracer::global().span_count(), 0u);
  EXPECT_TRUE(Tracer::global().rollup().empty());
}

TEST(Trace, CapturesNestedSpansWithDepthAttribution) {
  TracerQuiesce q;
  Tracer::global().enable();
  for (int i = 0; i < 3; ++i) {
    SpanGuard outer("t_trace_outer");
    spin_ns(200'000);
    {
      SpanGuard inner("t_trace_inner");
      spin_ns(100'000);
    }
  }
  Tracer::global().disable();

  EXPECT_EQ(Tracer::global().span_count(), 6u);
  const auto roll = Tracer::global().rollup();
  const auto* outer = find_span(roll, "t_trace_outer");
  const auto* inner = find_span(roll, "t_trace_inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 3u);
  EXPECT_EQ(inner->count, 3u);
  // An outer span contains its inner span, so its total dominates...
  EXPECT_GT(outer->total_ns, inner->total_ns);
  // ...and only depth-0 spans contribute top-level time: all of the outer
  // time, none of the inner time.
  EXPECT_EQ(outer->top_level_ns, outer->total_ns);
  EXPECT_EQ(inner->top_level_ns, 0);
  EXPECT_GT(inner->total_ns, 0);

  // The rollup is sorted by total_ns descending.
  for (std::size_t i = 1; i < roll.size(); ++i) {
    EXPECT_GE(roll[i - 1].total_ns, roll[i].total_ns);
  }
}

TEST(Trace, ChromeTraceExportRoundTripsThroughJsonReader) {
  TracerQuiesce q;
  Tracer::global().enable();
  {
    SpanGuard s("t_trace_export");
    spin_ns(50'000);
  }
  std::thread worker([] {
    SpanGuard s("t_trace_export_worker");
    spin_ns(50'000);
  });
  worker.join();
  Tracer::global().disable();

  const std::string path = testing::TempDir() + "rlc_obs_trace_test.json";
  ASSERT_TRUE(Tracer::global().write_chrome_trace(path));
  const rlc::io::JsonValue doc = rlc::io::parse_json_file(path);

  const rlc::io::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::size_t x_events = 0, meta_events = 0;
  bool saw_main = false, saw_worker_span = false;
  for (const auto& e : events->items()) {
    const std::string ph = e.string_or("ph", "");
    if (ph == "X") {
      ++x_events;
      EXPECT_GE(e.number_or("ts", -1.0), 0.0);  // relative to the epoch
      EXPECT_GT(e.number_or("dur", -1.0), 0.0);
      if (e.string_or("name", "") == "t_trace_export_worker") {
        saw_worker_span = true;
      }
    } else if (ph == "M") {
      ++meta_events;
      EXPECT_EQ(e.string_or("name", ""), "thread_name");
      const rlc::io::JsonValue* args = e.find("args");
      ASSERT_NE(args, nullptr);
      if (args->string_or("name", "") == "main") saw_main = true;
    }
  }
  EXPECT_EQ(x_events, 2u);  // one span per thread
  EXPECT_GE(meta_events, 2u);
  EXPECT_TRUE(saw_main);
  EXPECT_TRUE(saw_worker_span);
  const rlc::io::JsonValue* other = doc.find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->int_or("dropped_spans", -1), 0);
}

TEST(Trace, ClearDropsSpansButKeepsCapturing) {
  TracerQuiesce q;
  Tracer::global().enable();
  {
    RLC_TRACE_SPAN("t_trace_before_clear");
  }
  ASSERT_EQ(Tracer::global().span_count(), 1u);
  Tracer::global().clear();
  EXPECT_EQ(Tracer::global().span_count(), 0u);
  EXPECT_TRUE(Tracer::global().rollup().empty());
  // The rings stay armed: new spans record into the cleared buffers.
  {
    RLC_TRACE_SPAN("t_trace_after_clear");
  }
  Tracer::global().disable();
  EXPECT_EQ(Tracer::global().span_count(), 1u);
  const auto roll = Tracer::global().rollup();
  ASSERT_EQ(roll.size(), 1u);
  EXPECT_EQ(roll[0].name, "t_trace_after_clear");
}

TEST(Trace, FullRingDropsNewestAndCountsThem) {
  TracerQuiesce q;
  Tracer::global().enable();
  const std::size_t attempts = Tracer::kRingCapacity + 100;
  for (std::size_t i = 0; i < attempts; ++i) {
    RLC_TRACE_SPAN("t_trace_flood");
  }
  Tracer::global().disable();
  EXPECT_EQ(Tracer::global().span_count(), Tracer::kRingCapacity);
  EXPECT_EQ(Tracer::global().dropped(), 100u);
  // The retained spans still roll up; the overflow only cost the newest.
  const auto roll = Tracer::global().rollup();
  const auto* flood = find_span(roll, "t_trace_flood");
  ASSERT_NE(flood, nullptr);
  EXPECT_EQ(flood->count, Tracer::kRingCapacity);
}

/// Several threads record while a reader drains rollups and exports: each
/// thread owns its ring, so nothing is lost and nothing races (TSan).
TEST(Trace, ConcurrentRecordingAndDrainingIsExact) {
  TracerQuiesce q;
  Tracer::global().enable();
  constexpr int kThreads = 4;
  constexpr int kSpans = 2000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)Tracer::global().rollup();
      (void)Tracer::global().chrome_trace_json();
      (void)Tracer::global().span_count();
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([] {
      for (int i = 0; i < kSpans; ++i) {
        SpanGuard outer("t_trace_conc_outer");
        if (i % 4 == 0) {
          SpanGuard inner("t_trace_conc_inner");
        }
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  Tracer::global().disable();

  const auto roll = Tracer::global().rollup();
  const auto* outer = find_span(roll, "t_trace_conc_outer");
  const auto* inner = find_span(roll, "t_trace_conc_inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, static_cast<std::uint64_t>(kThreads) * kSpans);
  EXPECT_EQ(inner->count, static_cast<std::uint64_t>(kThreads) * kSpans / 4);
  EXPECT_EQ(Tracer::global().dropped(), 0u);
}

/// The observability contract rlc_run relies on: running a scenario with
/// tracing on must not change a single bit of its numbers, and the traced
/// run's envelope attributes its spans.
TEST(TraceDeterminism, ScenarioNumbersAreIdenticalWithTracingOnAndOff) {
  using namespace rlc::scenario;
  TracerQuiesce q;
  register_all_scenarios();
  const Scenario* s = ScenarioRegistry::global().find("fig7");
  ASSERT_NE(s, nullptr);
  const ScenarioSpec spec = quick_spec(s->defaults);

  const ScenarioResult off = run_scenario(*s, spec);
  Tracer::global().enable();
  const ScenarioResult on = run_scenario(*s, spec);
  Tracer::global().disable();

  ASSERT_TRUE(off.error.empty()) << off.error;
  ASSERT_TRUE(on.error.empty()) << on.error;
  EXPECT_EQ(on.numeric_fingerprint(), off.numeric_fingerprint());

  EXPECT_FALSE(off.observability.tracing);
  EXPECT_TRUE(off.observability.spans.empty());
  EXPECT_TRUE(on.observability.tracing);
  const auto* scenario_span = find_span(on.observability.spans, "fig7");
  ASSERT_NE(scenario_span, nullptr);
  EXPECT_EQ(scenario_span->count, 1u);
  const auto* newton_span = find_span(on.observability.spans, "newton_2d");
  ASSERT_NE(newton_span, nullptr);
  EXPECT_GT(newton_span->count, 0u);
}

// RLC_TRACE_RING parsing is strict for the same reason RLC_NUM_THREADS is:
// a garbled ring size is a configuration error worth stopping for, not
// something to paper over with the default.  (The drivers exit 2 on a bad
// value; the library constructor falls back to the default with a warning.)
TEST(TraceRingEnv, UnsetMeansDefault) {
  const auto parsed = Tracer::parse_ring_capacity_strict(nullptr);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(*parsed, 0u);  // 0 = "use the compiled-in default"
}

TEST(TraceRingEnv, AcceptsPlainPositiveIntegers) {
  const auto parsed = Tracer::parse_ring_capacity_strict("4096");
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(*parsed, 4096u);
  const auto one = Tracer::parse_ring_capacity_strict("1");
  ASSERT_TRUE(one.is_ok());
  EXPECT_EQ(*one, 1u);
  const auto max = Tracer::parse_ring_capacity_strict(
      std::to_string(Tracer::kMaxRingCapacity).c_str());
  ASSERT_TRUE(max.is_ok());
  EXPECT_EQ(*max, Tracer::kMaxRingCapacity);
}

TEST(TraceRingEnv, RejectsGarbageZeroNegativeAndOversize) {
  EXPECT_FALSE(Tracer::parse_ring_capacity_strict("").is_ok());
  EXPECT_FALSE(Tracer::parse_ring_capacity_strict("  ").is_ok());
  EXPECT_FALSE(Tracer::parse_ring_capacity_strict("abc").is_ok());
  EXPECT_FALSE(Tracer::parse_ring_capacity_strict("12abc").is_ok());
  EXPECT_FALSE(Tracer::parse_ring_capacity_strict("4096.5").is_ok());
  EXPECT_FALSE(Tracer::parse_ring_capacity_strict("0").is_ok());
  EXPECT_FALSE(Tracer::parse_ring_capacity_strict("-1").is_ok());
  EXPECT_FALSE(
      Tracer::parse_ring_capacity_strict("99999999999999999999").is_ok());
  EXPECT_FALSE(Tracer::parse_ring_capacity_strict(
                   std::to_string(Tracer::kMaxRingCapacity + 1).c_str())
                   .is_ok());
}

TEST(TraceRingEnv, DefaultRingCapacityMatchesTheCompiledConstant) {
  // The suite runs without RLC_TRACE_RING set, so the live tracer must
  // report the compiled-in default (FullRingDropsNewestAndCountsThem
  // depends on exactly this).
  EXPECT_EQ(Tracer::global().ring_capacity(), Tracer::kRingCapacity);
}

}  // namespace
