/// rlc::exec::Counters as a façade over the rlc::obs registry: per-sweep
/// instance totals keep their historical semantics, every record also
/// lands under the sweep.* registry metrics, and the zero-solve summary
/// renders a plain marker instead of 0-task division artifacts.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "rlc/exec/counters.hpp"
#include "rlc/obs/metrics.hpp"

namespace {

using rlc::exec::Counters;
using rlc::obs::MetricsSnapshot;
using rlc::obs::Registry;

std::int64_t counter_value(const MetricsSnapshot& s, const std::string& name) {
  for (const auto& [n, v] : s.counters) {
    if (n == name) return v;
  }
  return 0;
}

const rlc::obs::HistogramSnapshot* find_hist(const MetricsSnapshot& s,
                                             const std::string& name) {
  for (const auto& h : s.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

TEST(CountersFacade, ZeroSolveSummaryRendersPlainMarker) {
  const Counters c;
  for (const std::string& text :
       {c.summary(), c.summary("empty sweep"),
        Counters::summary(Counters::Snapshot{}, "from snapshot")}) {
    EXPECT_NE(text.find("no solves recorded"), std::string::npos) << text;
    // The regression this pins: no 0-task ratios or division artifacts.
    EXPECT_EQ(text.find("nan"), std::string::npos) << text;
    EXPECT_EQ(text.find("inf"), std::string::npos) << text;
    EXPECT_EQ(text.find("/solve"), std::string::npos) << text;
  }
  EXPECT_NE(c.summary("empty sweep").find("empty sweep"), std::string::npos);
  // The snapshot itself is all zeros with a well-defined mean.
  const Counters::Snapshot s = c.snapshot();
  EXPECT_EQ(s.tasks, 0);
  EXPECT_EQ(s.wall_min_s, 0.0);
  EXPECT_EQ(s.wall_mean_s(), 0.0);
}

TEST(CountersFacade, SolveSummaryStillRendersRatios) {
  Counters c;
  c.record_solve(4, false, false, 1e-3);
  c.record_solve(6, true, false, 3e-3);
  const std::string text = c.summary("sweep");
  EXPECT_NE(text.find("tasks 2"), std::string::npos) << text;
  EXPECT_NE(text.find("newton iters 10 (5.0/solve)"), std::string::npos)
      << text;
  EXPECT_NE(text.find("nm fallbacks 1"), std::string::npos) << text;
}

TEST(CountersFacade, RecordSolveForwardsToSweepRegistryMetrics) {
  Counters c;
  const MetricsSnapshot before = Registry::global().snapshot();
  c.record_solve(4, false, false, 1e-4);
  c.record_solve(5, true, false, 2e-4);
  c.record_solve(3, false, true, 3e-4);
  const MetricsSnapshot delta = Registry::global().snapshot().delta_since(before);

  EXPECT_EQ(counter_value(delta, "sweep.tasks"), 3);
  EXPECT_EQ(counter_value(delta, "sweep.newton_iters"), 12);
  EXPECT_EQ(counter_value(delta, "sweep.fallbacks"), 1);
  EXPECT_EQ(counter_value(delta, "sweep.failures"), 1);
  const auto* wall = find_hist(delta, "sweep.task_wall_s");
  ASSERT_NE(wall, nullptr);
  EXPECT_EQ(wall->count, 3u);

  // The per-instance envelope saw the same activity.
  const Counters::Snapshot s = c.snapshot();
  EXPECT_EQ(s.tasks, 3);
  EXPECT_EQ(s.newton_iterations, 12);
  EXPECT_EQ(s.fallbacks, 1);
  EXPECT_EQ(s.failures, 1);
  EXPECT_NEAR(s.wall_total_s, 6e-4, 1e-9);
  EXPECT_NEAR(s.wall_min_s, 1e-4, 1e-9);
  EXPECT_NEAR(s.wall_max_s, 3e-4, 1e-9);
}

TEST(CountersFacade, InstancesStayIsolatedFromEachOther) {
  Counters a, b;
  a.record_solve(7, false, false, 1e-3);
  EXPECT_EQ(a.snapshot().tasks, 1);
  EXPECT_EQ(b.snapshot().tasks, 0);
  b.reset();  // resetting one instance never touches another
  EXPECT_EQ(a.snapshot().tasks, 1);
  a.reset();
  EXPECT_EQ(a.snapshot().tasks, 0);
  EXPECT_NE(a.summary().find("no solves recorded"), std::string::npos);
}

TEST(CountersFacade, RecordWallCountsATaskWithoutIterations) {
  Counters c;
  const MetricsSnapshot before = Registry::global().snapshot();
  c.record_wall(5e-4);
  const MetricsSnapshot delta = Registry::global().snapshot().delta_since(before);
  EXPECT_EQ(counter_value(delta, "sweep.tasks"), 1);
  EXPECT_EQ(counter_value(delta, "sweep.newton_iters"), 0);
  const Counters::Snapshot s = c.snapshot();
  EXPECT_EQ(s.tasks, 1);
  EXPECT_EQ(s.newton_iterations, 0);
  EXPECT_NEAR(s.wall_min_s, 5e-4, 1e-9);
}

}  // namespace
