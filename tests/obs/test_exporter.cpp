/// rlc::obs::Exporter: the single formatting authority for metrics.
/// Golden Prometheus text for a hand-built snapshot, name sanitization of
/// the registry's dotted names, bucket cumulativity of the histogram
/// family, collision disambiguation, snapshot filtering, and a
/// scrape-under-load race (renderers vs live recorders — run under TSan
/// in CI).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "rlc/obs/exporter.hpp"
#include "rlc/obs/metrics.hpp"

namespace {

using rlc::obs::Exporter;
using rlc::obs::HistogramSnapshot;
using rlc::obs::MetricsSnapshot;
using rlc::obs::Registry;

HistogramSnapshot make_hist(const std::string& name,
                            const std::vector<double>& samples, double lo,
                            double hi, int n) {
  HistogramSnapshot h;
  h.name = name;
  h.lo = lo;
  h.hi = hi;
  h.bins.assign(static_cast<std::size_t>(n) + 2, 0);
  for (double v : samples) {
    ++h.bins[HistogramSnapshot::bin_index(lo, hi, n, v)];
    ++h.count;
    h.sum += v;
    h.min = h.count == 1 ? v : std::min(h.min, v);
    h.max = h.count == 1 ? v : std::max(h.max, v);
  }
  return h;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) out.push_back(line);
  return out;
}

TEST(ExporterNames, SanitizesDotsDashesAndBadStarts) {
  EXPECT_EQ(Exporter::sanitize_metric_name("svc.cache.hits"),
            "svc_cache_hits");
  EXPECT_EQ(Exporter::sanitize_metric_name("load-latency.us"),
            "load_latency_us");
  EXPECT_EQ(Exporter::sanitize_metric_name("newton.2d.solves"),
            "newton_2d_solves");
  EXPECT_EQ(Exporter::sanitize_metric_name("9lives"), "_9lives");
  EXPECT_EQ(Exporter::sanitize_metric_name(""), "_");
  EXPECT_EQ(Exporter::sanitize_metric_name("already_fine:ok"),
            "already_fine:ok");
  EXPECT_EQ(Exporter::sanitize_metric_name("sp ace/slash"),
            "sp_ace_slash");
}

TEST(ExporterNames, EscapesLabelValues) {
  EXPECT_EQ(Exporter::escape_label_value("plain"), "plain");
  EXPECT_EQ(Exporter::escape_label_value("a\"b"), "a\\\"b");
  EXPECT_EQ(Exporter::escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(Exporter::escape_label_value("a\nb"), "a\\nb");
}

TEST(ExporterPrometheus, GoldenCounterAndGauge) {
  MetricsSnapshot snap;
  snap.counters.emplace_back("svc.requests", 42);
  snap.gauges.emplace_back("pool.pending", 7);
  EXPECT_EQ(Exporter::prometheus(snap),
            "# TYPE svc_requests counter\n"
            "svc_requests 42\n"
            "# TYPE pool_pending gauge\n"
            "pool_pending 7\n");
}

TEST(ExporterPrometheus, HistogramBucketsAreCumulativeAndEndAtInf) {
  MetricsSnapshot snap;
  // 4 interior bins over [1, 16]: edges 1, 2, 4, 8, 16.  One underflow
  // sample (0.5), one overflow sample (100), interior samples 1.5 and 3.
  snap.histograms.push_back(
      make_hist("svc.latency.us", {0.5, 1.5, 3.0, 100.0}, 1.0, 16.0, 4));
  const std::string out = Exporter::prometheus(snap);
  const std::vector<std::string> lines = lines_of(out);
  ASSERT_EQ(lines.size(), 9u);
  EXPECT_EQ(lines[0], "# TYPE svc_latency_us histogram");
  // Underflow counts under every finite edge; overflow only under +Inf.
  EXPECT_EQ(lines[1], "svc_latency_us_bucket{le=\"1\"} 1");
  EXPECT_EQ(lines[2], "svc_latency_us_bucket{le=\"2\"} 2");
  EXPECT_EQ(lines[3], "svc_latency_us_bucket{le=\"4\"} 3");
  EXPECT_EQ(lines[4], "svc_latency_us_bucket{le=\"8\"} 3");
  EXPECT_EQ(lines[5], "svc_latency_us_bucket{le=\"16\"} 3");
  EXPECT_EQ(lines[6], "svc_latency_us_bucket{le=\"+Inf\"} 4");
  EXPECT_EQ(lines[7], "svc_latency_us_sum 105");
  EXPECT_EQ(lines[8], "svc_latency_us_count 4");
}

TEST(ExporterPrometheus, BucketCountsNeverDecrease) {
  MetricsSnapshot snap;
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) samples.push_back(0.01 * (i + 1) * (i + 1));
  snap.histograms.push_back(make_hist("h", samples, 1.0, 1000.0, 24));
  std::uint64_t prev = 0;
  bool saw_inf = false;
  for (const std::string& line : lines_of(Exporter::prometheus(snap))) {
    if (line.rfind("h_bucket", 0) != 0) continue;
    const std::uint64_t v = std::stoull(line.substr(line.rfind(' ') + 1));
    EXPECT_GE(v, prev) << line;
    prev = v;
    saw_inf = saw_inf || line.find("le=\"+Inf\"") != std::string::npos;
  }
  EXPECT_TRUE(saw_inf);
  EXPECT_EQ(prev, snap.histograms[0].count);  // +Inf bucket is the total
}

TEST(ExporterPrometheus, CollidingSanitizedNamesGetDistinctSeries) {
  MetricsSnapshot snap;
  snap.counters.emplace_back("svc.cache.hits", 1);
  snap.counters.emplace_back("svc.cache-hits", 2);
  snap.counters.emplace_back("svc.cache_hits", 3);
  const std::string out = Exporter::prometheus(snap);
  // All three must appear, under three distinct names.
  std::vector<std::string> sample_names;
  for (const std::string& line : lines_of(out)) {
    if (line.empty() || line[0] == '#') continue;
    sample_names.push_back(line.substr(0, line.find(' ')));
  }
  ASSERT_EQ(sample_names.size(), 3u);
  EXPECT_NE(sample_names[0], sample_names[1]);
  EXPECT_NE(sample_names[1], sample_names[2]);
  EXPECT_NE(sample_names[0], sample_names[2]);
}

TEST(ExporterJson, DelegatesToSnapshotToJson) {
  MetricsSnapshot snap;
  snap.counters.emplace_back("a.b", 5);
  EXPECT_EQ(Exporter::json(snap).str(), snap.to_json().str());
}

TEST(ExporterText, TableDelegatesToText) {
  MetricsSnapshot snap;
  snap.counters.emplace_back("a.b", 5);
  snap.gauges.emplace_back("g", -2);
  EXPECT_EQ(snap.table(), Exporter::text(snap));
  EXPECT_NE(Exporter::text(snap).find("a.b"), std::string::npos);
}

TEST(ExporterFilter, KeepsOnlyThePrefix) {
  MetricsSnapshot snap;
  snap.counters.emplace_back("svc.requests", 1);
  snap.counters.emplace_back("newton.solves", 2);
  snap.gauges.emplace_back("svc.open", 3);
  snap.gauges.emplace_back("pool.pending", 4);
  snap.histograms.push_back(make_hist("svc.lat", {1.0}, 1.0, 10.0, 4));
  snap.histograms.push_back(make_hist("load.lat", {1.0}, 1.0, 10.0, 4));
  const MetricsSnapshot kept = Exporter::filter(snap, "svc.");
  ASSERT_EQ(kept.counters.size(), 1u);
  EXPECT_EQ(kept.counters[0].first, "svc.requests");
  ASSERT_EQ(kept.gauges.size(), 1u);
  EXPECT_EQ(kept.gauges[0].first, "svc.open");
  ASSERT_EQ(kept.histograms.size(), 1u);
  EXPECT_EQ(kept.histograms[0].name, "svc.lat");
}

TEST(ExporterPrometheus, EmptySnapshotRendersEmpty) {
  EXPECT_EQ(Exporter::prometheus(MetricsSnapshot{}), "");
}

// The admin endpoint renders snapshots while the serving plane records —
// this is exactly the scrape-under-load pattern, and it must be race-free
// (TSan runs this binary in CI).
TEST(ExporterConcurrency, ScrapeWhileRecordingIsClean) {
  auto& reg = Registry::global();
  const int c = reg.counter("exporter.race.count");
  const int h = reg.histogram("exporter.race.lat", 1.0, 1.0e6, 16);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        reg.add(c);
        reg.record(h, 123.0);
      }
    });
  }
  std::string last;
  for (int i = 0; i < 200; ++i) {
    last = Exporter::prometheus(reg.snapshot());
  }
  stop.store(true);
  for (auto& th : writers) th.join();
  EXPECT_NE(last.find("exporter_race_count"), std::string::npos);
  EXPECT_NE(last.find("exporter_race_lat_bucket"), std::string::npos);
}

}  // namespace
