/// rlc::obs metrics registry: histogram math against brute-force
/// references, shard-merge algebra, interning contracts, and the
/// thread-safety guarantees the header promises (this binary is also run
/// under TSan in CI, so the concurrent tests double as race detectors).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "rlc/obs/metrics.hpp"

namespace {

using rlc::obs::HistogramSnapshot;
using rlc::obs::MetricsSnapshot;
using rlc::obs::Registry;

std::int64_t counter_value(const MetricsSnapshot& s, const std::string& name) {
  for (const auto& [n, v] : s.counters) {
    if (n == name) return v;
  }
  return std::numeric_limits<std::int64_t>::min();
}

std::int64_t gauge_value(const MetricsSnapshot& s, const std::string& name) {
  for (const auto& [n, v] : s.gauges) {
    if (n == name) return v;
  }
  return std::numeric_limits<std::int64_t>::min();
}

const HistogramSnapshot* find_hist(const MetricsSnapshot& s,
                                   const std::string& name) {
  for (const auto& h : s.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

/// Build a snapshot by hand from raw samples, the same way a shard would.
HistogramSnapshot make_hist(const std::vector<double>& samples, double lo,
                            double hi, int n) {
  HistogramSnapshot h;
  h.name = "ref";
  h.lo = lo;
  h.hi = hi;
  h.bins.assign(static_cast<std::size_t>(n) + 2, 0);
  for (double v : samples) {
    ++h.bins[HistogramSnapshot::bin_index(lo, hi, n, v)];
    ++h.count;
    h.sum += v;
    h.min = h.count == 1 ? v : std::min(h.min, v);
    h.max = h.count == 1 ? v : std::max(h.max, v);
  }
  return h;
}

/// The quantile definition the header promises: rank = max(1, ceil(q*n)),
/// answered from the sorted samples.
double brute_force_quantile(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  const auto n = static_cast<double>(samples.size());
  auto rank = static_cast<std::size_t>(std::ceil(q * n));
  rank = std::max<std::size_t>(rank, 1);
  return samples[rank - 1];
}

TEST(HistogramMath, BinEdgesAreStrictlyIncreasingAndPinned) {
  for (const auto& [lo, hi, n] : {std::tuple{1.0, 256.0, 24},
                                  std::tuple{1e-7, 10.0, 32},
                                  std::tuple{4.0, 4096.0, 20},
                                  std::tuple{1.0, 2.0, 1},
                                  std::tuple{1e-12, 1e12, 512}}) {
    const std::vector<double> edges = HistogramSnapshot::bin_edges(lo, hi, n);
    ASSERT_EQ(edges.size(), static_cast<std::size_t>(n) + 1);
    EXPECT_EQ(edges.front(), lo);
    EXPECT_EQ(edges.back(), hi);
    for (std::size_t i = 1; i < edges.size(); ++i) {
      EXPECT_LT(edges[i - 1], edges[i]) << "lo=" << lo << " hi=" << hi;
    }
  }
}

TEST(HistogramMath, BinIndexRoutesEveryValueSomewhere) {
  const double lo = 1.0, hi = 256.0;
  const int n = 8;
  // Underflow: below lo, zero, negative, NaN all land in bin 0.
  EXPECT_EQ(HistogramSnapshot::bin_index(lo, hi, n, 0.5), 0u);
  EXPECT_EQ(HistogramSnapshot::bin_index(lo, hi, n, 0.0), 0u);
  EXPECT_EQ(HistogramSnapshot::bin_index(lo, hi, n, -3.0), 0u);
  EXPECT_EQ(HistogramSnapshot::bin_index(
                lo, hi, n, std::numeric_limits<double>::quiet_NaN()),
            0u);
  // Overflow: >= hi.
  EXPECT_EQ(HistogramSnapshot::bin_index(lo, hi, n, hi),
            static_cast<std::size_t>(n) + 1);
  EXPECT_EQ(HistogramSnapshot::bin_index(
                lo, hi, n, std::numeric_limits<double>::infinity()),
            static_cast<std::size_t>(n) + 1);
  // Interior: a value between edges i and i+1 lands in interior bin i + 1,
  // and a value exactly on an edge belongs to the bin above it.
  const std::vector<double> edges = HistogramSnapshot::bin_edges(lo, hi, n);
  for (int i = 0; i < n; ++i) {
    const double mid = std::sqrt(edges[i] * edges[i + 1]);
    EXPECT_EQ(HistogramSnapshot::bin_index(lo, hi, n, mid),
              static_cast<std::size_t>(i) + 1)
        << "mid of bin " << i;
  }
  EXPECT_EQ(HistogramSnapshot::bin_index(lo, hi, n, lo), 1u);
}

TEST(HistogramMath, QuantilesMatchBruteForceWithinOneBin) {
  const double lo = 1e-6, hi = 1e2;
  const int n = 48;
  // One bin spans a geometric factor of (hi/lo)^(1/n); the estimate and the
  // true rank sample always share a bin, so their ratio is bounded by it.
  const double bin_ratio = std::pow(hi / lo, 1.0 / n);
  std::mt19937_64 rng(20260806);
  std::uniform_real_distribution<double> log_u(std::log(lo * 1.01),
                                               std::log(hi * 0.99));
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<double> samples;
    const int count = 10 + trial * 137;
    samples.reserve(count);
    for (int i = 0; i < count; ++i) samples.push_back(std::exp(log_u(rng)));
    const HistogramSnapshot h = make_hist(samples, lo, hi, n);
    for (double q : {0.5, 0.9, 0.99}) {
      const double ref = brute_force_quantile(samples, q);
      const double est = h.quantile(q);
      EXPECT_GT(est, ref / (bin_ratio * 1.0000001))
          << "trial " << trial << " q " << q;
      EXPECT_LT(est, ref * bin_ratio * 1.0000001)
          << "trial " << trial << " q " << q;
    }
  }
}

TEST(HistogramMath, QuantilesAreMonotoneAndClampedToObservedRange) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> u(0.5, 400.0);  // spills both ends
  std::vector<double> samples = {0.6, 300.0};  // pin under/overflow occupancy
  for (int i = 0; i < 500; ++i) samples.push_back(u(rng));
  const HistogramSnapshot h = make_hist(samples, 1.0, 256.0, 16);
  double prev = -1.0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const double v = h.quantile(q);
    EXPECT_GE(v, h.min);
    EXPECT_LE(v, h.max);
    EXPECT_GE(v, prev) << "q " << q;
    prev = v;
  }
  // The extreme quantiles answer with the exact extremes even though those
  // samples live in the under/overflow bins.
  EXPECT_EQ(h.quantile(0.0), h.min);
  EXPECT_EQ(h.quantile(1.0), h.max);
}

TEST(HistogramMath, EmptyHistogramIsInert) {
  const HistogramSnapshot h = make_hist({}, 1.0, 10.0, 4);
  EXPECT_EQ(h.count, 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(HistogramMath, MergeOfShardsIsAssociative) {
  const double lo = 1.0, hi = 1e3;
  const int n = 12;
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> u(0.1, 2e3);
  std::vector<double> sa, sb, sc;
  for (int i = 0; i < 300; ++i) {
    (i % 3 == 0 ? sa : i % 3 == 1 ? sb : sc).push_back(u(rng));
  }
  const HistogramSnapshot a = make_hist(sa, lo, hi, n);
  const HistogramSnapshot b = make_hist(sb, lo, hi, n);
  const HistogramSnapshot c = make_hist(sc, lo, hi, n);

  HistogramSnapshot left = a;
  left.merge(b);
  left.merge(c);
  HistogramSnapshot bc = b;
  bc.merge(c);
  HistogramSnapshot right = a;
  right.merge(bc);

  // Integer fields are exactly associative; sum is floating addition, so
  // near-equality is the contract there.
  EXPECT_EQ(left.bins, right.bins);
  EXPECT_EQ(left.count, right.count);
  EXPECT_EQ(left.min, right.min);
  EXPECT_EQ(left.max, right.max);
  EXPECT_NEAR(left.sum, right.sum, 1e-9 * std::abs(left.sum));

  // And the merged totals match a single-shard pass over all samples.
  std::vector<double> all = sa;
  all.insert(all.end(), sb.begin(), sb.end());
  all.insert(all.end(), sc.begin(), sc.end());
  const HistogramSnapshot whole = make_hist(all, lo, hi, n);
  EXPECT_EQ(left.bins, whole.bins);
  EXPECT_EQ(left.count, whole.count);
  EXPECT_EQ(left.min, whole.min);
  EXPECT_EQ(left.max, whole.max);
}

TEST(HistogramMath, MergeWithEmptySideKeepsExtremes) {
  const HistogramSnapshot full = make_hist({2.0, 8.0}, 1.0, 10.0, 4);
  HistogramSnapshot acc = make_hist({}, 1.0, 10.0, 4);
  acc.name = full.name;
  acc.merge(full);
  EXPECT_EQ(acc.min, 2.0);
  EXPECT_EQ(acc.max, 8.0);
  HistogramSnapshot acc2 = full;
  acc2.merge(make_hist({}, 1.0, 10.0, 4));
  EXPECT_EQ(acc2.min, 2.0);
  EXPECT_EQ(acc2.max, 8.0);
}

TEST(HistogramMath, MergeRejectsShapeMismatch) {
  HistogramSnapshot a = make_hist({2.0}, 1.0, 10.0, 4);
  const HistogramSnapshot b = make_hist({2.0}, 1.0, 10.0, 8);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(MetricsRegistry, InterningIsIdempotentAndKindChecked) {
  Registry& reg = Registry::global();
  const int c1 = reg.counter("t.metrics.intern.counter");
  const int c2 = reg.counter("t.metrics.intern.counter");
  EXPECT_EQ(c1, c2);
  const int h1 = reg.histogram("t.metrics.intern.hist", 1.0, 100.0, 8);
  const int h2 = reg.histogram("t.metrics.intern.hist", 1.0, 100.0, 8);
  EXPECT_EQ(h1, h2);

  EXPECT_THROW(reg.counter(""), std::invalid_argument);
  // A name cannot change kind...
  EXPECT_THROW(reg.gauge("t.metrics.intern.counter"), std::invalid_argument);
  EXPECT_THROW(reg.counter("t.metrics.intern.hist"), std::invalid_argument);
  // ...and a histogram cannot change shape.
  EXPECT_THROW(reg.histogram("t.metrics.intern.hist", 1.0, 100.0, 16),
               std::invalid_argument);
  EXPECT_THROW(reg.histogram("t.metrics.intern.hist", 2.0, 100.0, 8),
               std::invalid_argument);
  // Degenerate shapes are rejected outright.
  EXPECT_THROW(reg.histogram("t.metrics.bad.shape", 10.0, 1.0, 8),
               std::invalid_argument);
  EXPECT_THROW(reg.histogram("t.metrics.bad.bins", 1.0, 10.0, 0),
               std::invalid_argument);
}

TEST(MetricsRegistry, CountersGaugesHistogramsRoundTripThroughSnapshot) {
  Registry& reg = Registry::global();
  const int c = reg.counter("t.metrics.rt.counter");
  const int g = reg.gauge("t.metrics.rt.gauge");
  const int h = reg.histogram("t.metrics.rt.hist", 1.0, 1000.0, 10);

  const MetricsSnapshot before = reg.snapshot();
  reg.add(c);
  reg.add(c, 41);
  reg.gauge_add(g, 5);
  reg.gauge_add(g, -2);
  reg.gauge_max(g, 2);  // raise-only: 2 < 3 leaves the level alone
  reg.record(h, 10.0);
  reg.record(h, 100.0);
  reg.record(h, 0.5);  // underflow, still counted
  const MetricsSnapshot delta = reg.snapshot().delta_since(before);

  EXPECT_EQ(counter_value(delta, "t.metrics.rt.counter"), 42);
  EXPECT_EQ(gauge_value(delta, "t.metrics.rt.gauge"), 3);
  const HistogramSnapshot* hs = find_hist(delta, "t.metrics.rt.hist");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 3u);
  EXPECT_NEAR(hs->sum, 110.5, 1e-12);
  EXPECT_EQ(hs->min, 0.5);
  EXPECT_EQ(hs->max, 100.0);

  // Out-of-range ids are ignored, never UB.
  reg.add(-1);
  reg.add(1 << 20);
  reg.record(-1, 1.0);
  reg.gauge_add(1 << 20, 7);
}

TEST(MetricsRegistry, WithoutZerosDropsIdleMetrics) {
  Registry& reg = Registry::global();
  const int used = reg.counter("t.metrics.wz.used");
  (void)reg.counter("t.metrics.wz.idle");
  (void)reg.histogram("t.metrics.wz.empty", 1.0, 10.0, 4);
  const MetricsSnapshot before = reg.snapshot();
  reg.add(used, 3);
  const MetricsSnapshot delta = reg.snapshot().delta_since(before).without_zeros();
  EXPECT_EQ(counter_value(delta, "t.metrics.wz.used"), 3);
  EXPECT_EQ(counter_value(delta, "t.metrics.wz.idle"),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(find_hist(delta, "t.metrics.wz.empty"), nullptr);
}

TEST(MetricsRegistry, ExitedThreadsShardIsRetainedInSnapshots) {
  Registry& reg = Registry::global();
  const int c = reg.counter("t.metrics.retire.counter");
  const int h = reg.histogram("t.metrics.retire.hist", 1.0, 100.0, 8);
  const MetricsSnapshot before = reg.snapshot();
  std::thread worker([&] {
    for (int i = 0; i < 1000; ++i) {
      reg.add(c);
      reg.record(h, 7.5);
    }
  });
  worker.join();  // the worker's shard is retired at thread exit
  const MetricsSnapshot delta = reg.snapshot().delta_since(before);
  EXPECT_EQ(counter_value(delta, "t.metrics.retire.counter"), 1000);
  const HistogramSnapshot* hs = find_hist(delta, "t.metrics.retire.hist");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 1000u);
}

/// Many threads hammering the same metrics while a reader snapshots: the
/// final totals must be exact and the interleaving race-free (TSan).
TEST(MetricsRegistry, ConcurrentRecordingLosesNothing) {
  Registry& reg = Registry::global();
  const int c = reg.counter("t.metrics.conc.counter");
  const int h = reg.histogram("t.metrics.conc.hist", 1.0, 1e6, 24);
  const int g = reg.gauge("t.metrics.conc.gauge");
  const MetricsSnapshot before = reg.snapshot();

  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads + 1);
  std::atomic<bool> stop{false};
  // A concurrent reader exercises the snapshot-while-recording path.
  workers.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) (void)reg.snapshot();
  });
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        reg.add(c);
        reg.record(h, static_cast<double>(1 + (t * kIters + i) % 100000));
        reg.gauge_add(g, 1);
        reg.gauge_add(g, -1);
      }
    });
  }
  for (std::size_t i = 1; i < workers.size(); ++i) workers[i].join();
  stop.store(true, std::memory_order_relaxed);
  workers[0].join();

  const MetricsSnapshot delta = reg.snapshot().delta_since(before);
  EXPECT_EQ(counter_value(delta, "t.metrics.conc.counter"),
            std::int64_t{kThreads} * kIters);
  const HistogramSnapshot* hs = find_hist(delta, "t.metrics.conc.hist");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(gauge_value(reg.snapshot(), "t.metrics.conc.gauge"),
            gauge_value(before, "t.metrics.conc.gauge"));
}

TEST(MetricsRegistry, SnapshotRendersAsTableAndJson) {
  Registry& reg = Registry::global();
  const int c = reg.counter("t.metrics.render.counter");
  const int h = reg.histogram("t.metrics.render.hist", 1.0, 100.0, 8);
  const MetricsSnapshot before = reg.snapshot();
  reg.add(c, 7);
  for (double v : {2.0, 4.0, 8.0, 16.0, 32.0}) reg.record(h, v);
  const MetricsSnapshot delta = reg.snapshot().delta_since(before).without_zeros();

  const std::string table = delta.table();
  EXPECT_NE(table.find("t.metrics.render.counter"), std::string::npos);
  EXPECT_NE(table.find("t.metrics.render.hist"), std::string::npos);

  const std::string json = delta.to_json().str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

}  // namespace
