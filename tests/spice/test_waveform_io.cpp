#include "rlc/spice/waveform_io.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "rlc/spice/circuit.hpp"

namespace rlc::spice {
namespace {

TransientResult small_transient() {
  Circuit c;
  const auto in = c.node("in"), out = c.node("out");
  c.add_vsource("V1", in, c.ground(), PulseSpec{0, 1, 0, 1e-12, 1e-12, 1, 0});
  c.add_resistor("R1", in, out, 1e3);
  c.add_capacitor("C1", out, c.ground(), 1e-9);
  TransientOptions o;
  o.tstop = 1e-7;
  o.dt = 1e-9;
  return run_transient(c, o);
}

TEST(WaveformIo, TransientRoundTripIsLossless) {
  const auto r = small_transient();
  ASSERT_TRUE(r.completed);
  std::ostringstream out;
  write_csv(out, r);
  std::istringstream in(out.str());
  const auto t = read_csv(in);
  ASSERT_EQ(t.labels.size(), r.labels.size());
  ASSERT_EQ(t.axis.size(), r.time.size());
  for (std::size_t i = 0; i < r.time.size(); ++i) {
    EXPECT_EQ(t.axis[i], r.time[i]);  // bitwise: %.17g round trip
    for (std::size_t j = 0; j < r.labels.size(); ++j) {
      EXPECT_EQ(t.columns[j][i], r.signals[j][i]);
    }
  }
  EXPECT_EQ(t.column("v(out)").size(), r.time.size());
}

TEST(WaveformIo, AcCsvHasMagnitudeAndPhase) {
  AcResult r;
  r.freq = {1e6, 1e7};
  r.labels = {"vout"};
  r.signals = {{{0.0, 1.0}, {-1.0, 0.0}}};  // j and -1
  std::ostringstream out;
  write_csv(out, r);
  std::istringstream in(out.str());
  const auto t = read_csv(in);
  ASSERT_EQ(t.labels.size(), 2u);
  EXPECT_EQ(t.labels[0], "|vout|");
  EXPECT_EQ(t.labels[1], "arg(vout)");
  EXPECT_NEAR(t.column("|vout|")[0], 1.0, 1e-15);
  EXPECT_NEAR(t.column("arg(vout)")[0], 1.5707963267948966, 1e-15);
  EXPECT_NEAR(t.column("arg(vout)")[1], 3.141592653589793, 1e-15);
}

TEST(WaveformIo, FileRoundTrip) {
  const auto r = small_transient();
  const std::string path = "/tmp/rlcopt_wave_io_test.csv";
  write_csv_file(path, r);
  const auto t = read_csv_file(path);
  EXPECT_EQ(t.axis.size(), r.time.size());
  EXPECT_THROW(read_csv_file("/nonexistent/x.csv"), std::runtime_error);
}

TEST(WaveformIo, RejectsMalformedCsv) {
  {
    std::istringstream in("");
    EXPECT_THROW(read_csv(in), std::runtime_error);
  }
  {
    std::istringstream in("time,a\n1.0,notanumber\n");
    EXPECT_THROW(read_csv(in), std::runtime_error);
  }
  {
    std::istringstream in("time,a\n1.0\n");
    EXPECT_THROW(read_csv(in), std::runtime_error);  // missing column
  }
  {
    std::istringstream in("time,a\n1.0,2.0,3.0\n");
    EXPECT_THROW(read_csv(in), std::runtime_error);  // extra column
  }
  {
    std::istringstream in("time,a\n1.0,2.0\n");
    const auto t = read_csv(in);
    EXPECT_THROW(t.column("b"), std::out_of_range);
  }
}

}  // namespace
}  // namespace rlc::spice
