#include "rlc/spice/dcop.hpp"

#include <gtest/gtest.h>

#include "rlc/spice/circuit.hpp"

namespace rlc::spice {
namespace {

TEST(DcOp, VoltageDivider) {
  Circuit c;
  const auto in = c.node("in"), mid = c.node("mid");
  c.add_vsource("V1", in, c.ground(), DcSpec{10.0});
  c.add_resistor("R1", in, mid, 1e3);
  c.add_resistor("R2", mid, c.ground(), 2e3);
  const auto dc = dc_operating_point(c);
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(dc.voltage(mid), 20.0 / 3.0, 1e-6);  // gmin shunt offset
  EXPECT_NEAR(dc.voltage(in), 10.0, 1e-12);
}

TEST(DcOp, CurrentSourceIntoResistor) {
  Circuit c;
  const auto n = c.node("n");
  // 1 mA pulled from ground into n... convention: current flows p -> n
  // through the source; p = ground, so current is pushed INTO node n.
  c.add_isource("I1", c.ground(), n, DcSpec{1e-3});
  c.add_resistor("R1", n, c.ground(), 4.7e3);
  const auto dc = dc_operating_point(c);
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(dc.voltage(n), 4.7, 1e-6);  // gmin shunt offset
}

TEST(DcOp, VsourceBranchCurrentSign) {
  Circuit c;
  const auto p = c.node("p");
  auto& v = c.add_vsource("V1", p, c.ground(), DcSpec{5.0});
  c.add_resistor("R1", p, c.ground(), 1e3);
  const auto dc = dc_operating_point(c);
  ASSERT_TRUE(dc.converged);
  // 5 mA flows out of the + terminal into R1, i.e. through the source from
  // p to ground internally: branch current = +5 mA by the SPICE convention?
  // Our convention: positive branch current flows from node p through the
  // source to node n, i.e. INTO the + node from the source: the solved value
  // must be -(-5 mA)... assert the actual sign so regressions are caught.
  EXPECT_NEAR(dc.x[v.branch_base()], -5e-3, 1e-9);
}

TEST(DcOp, InductorIsDcShort) {
  Circuit c;
  const auto a = c.node("a"), b = c.node("b");
  c.add_vsource("V1", a, c.ground(), DcSpec{1.0});
  c.add_inductor("L1", a, b, 1e-9);
  c.add_resistor("R1", b, c.ground(), 100.0);
  const auto dc = dc_operating_point(c);
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(dc.voltage(b), 1.0, 1e-9);
}

TEST(DcOp, CapacitorIsDcOpen) {
  Circuit c;
  const auto a = c.node("a"), b = c.node("b");
  c.add_vsource("V1", a, c.ground(), DcSpec{1.0});
  c.add_resistor("R1", a, b, 1e3);
  c.add_capacitor("C1", b, c.ground(), 1e-12);
  const auto dc = dc_operating_point(c);
  ASSERT_TRUE(dc.converged);
  // No DC path from b except through R1: node floats to the source value
  // (gmin provides the reference).
  EXPECT_NEAR(dc.voltage(b), 1.0, 1e-5);
}

TEST(DcOp, SeriesVsourcesStack) {
  Circuit c;
  const auto a = c.node("a"), b = c.node("b");
  c.add_vsource("V1", a, c.ground(), DcSpec{1.5});
  c.add_vsource("V2", b, a, DcSpec{2.5});
  c.add_resistor("R1", b, c.ground(), 1e3);
  const auto dc = dc_operating_point(c);
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(dc.voltage(b), 4.0, 1e-9);
}

TEST(DcOp, LinearNetworkSolvedInOneIteration) {
  Circuit c;
  const auto a = c.node("a");
  c.add_vsource("V1", a, c.ground(), DcSpec{1.0});
  c.add_resistor("R1", a, c.ground(), 50.0);
  const auto dc = dc_operating_point(c);
  ASSERT_TRUE(dc.converged);
  EXPECT_EQ(dc.iterations, 1);
}

TEST(Circuit, NodeNamingAndGroundAliases) {
  Circuit c;
  EXPECT_EQ(c.node("0"), 0);
  EXPECT_EQ(c.node("gnd"), 0);
  EXPECT_EQ(c.node("GND"), 0);
  const auto a = c.node("a");
  EXPECT_EQ(c.node("a"), a);
  EXPECT_EQ(c.node_name(a), "a");
  EXPECT_THROW(c.node_name(99), std::out_of_range);
}

TEST(Circuit, FindDeviceByName) {
  Circuit c;
  const auto a = c.node("a");
  c.add_resistor("Rload", a, c.ground(), 1.0);
  EXPECT_NE(c.find("Rload"), nullptr);
  EXPECT_EQ(c.find("nothere"), nullptr);
}

TEST(Circuit, UnknownCountAfterFinalize) {
  Circuit c;
  const auto a = c.node("a"), b = c.node("b");
  c.add_vsource("V1", a, c.ground(), DcSpec{1.0});  // +1 branch
  c.add_inductor("L1", a, b, 1e-9);                 // +1 branch
  c.add_resistor("R1", b, c.ground(), 1.0);
  EXPECT_THROW(c.unknown_count(), std::logic_error);
  c.finalize();
  EXPECT_EQ(c.unknown_count(), 2 + 2);  // two nodes + two branches
}

TEST(Circuit, DeviceValidation) {
  Circuit c;
  const auto a = c.node("a");
  EXPECT_THROW(c.add_resistor("R", a, c.ground(), 0.0), std::domain_error);
  EXPECT_THROW(c.add_capacitor("C", a, c.ground(), -1e-12), std::domain_error);
  EXPECT_THROW(c.add_inductor("L", a, c.ground(), 0.0), std::domain_error);
}

}  // namespace
}  // namespace rlc::spice
