#include "rlc/spice/netlist_parser.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rlc/spice/dcop.hpp"

namespace rlc::spice {
namespace {

TEST(SpiceNumber, EngineeringSuffixes) {
  EXPECT_DOUBLE_EQ(parse_spice_number("2.2k"), 2200.0);
  EXPECT_DOUBLE_EQ(parse_spice_number("10MEG"), 1e7);
  EXPECT_DOUBLE_EQ(parse_spice_number("1.5p"), 1.5e-12);
  EXPECT_DOUBLE_EQ(parse_spice_number("3n"), 3e-9);
  EXPECT_DOUBLE_EQ(parse_spice_number("4u"), 4e-6);
  EXPECT_DOUBLE_EQ(parse_spice_number("5m"), 5e-3);
  EXPECT_DOUBLE_EQ(parse_spice_number("6f"), 6e-15);
  EXPECT_DOUBLE_EQ(parse_spice_number("7g"), 7e9);
  EXPECT_DOUBLE_EQ(parse_spice_number("1e-9"), 1e-9);
  EXPECT_DOUBLE_EQ(parse_spice_number("-3.5"), -3.5);
  EXPECT_THROW(parse_spice_number("abc"), std::invalid_argument);
  EXPECT_THROW(parse_spice_number("1.5x"), std::invalid_argument);
}

TEST(Netlist, DividerParsesAndSolves) {
  const auto deck = parse_netlist(R"(simple divider
V1 in 0 dc 10
R1 in mid 1k
R2 mid 0 2k
.end
)");
  EXPECT_EQ(deck.title, "simple divider");
  Circuit& c = const_cast<Circuit&>(deck.circuit);
  const auto dc = dc_operating_point(c);
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(dc.voltage(c.node("mid")), 20.0 / 3.0, 1e-6);
}

TEST(Netlist, CommentsAndContinuations) {
  const auto deck = parse_netlist(R"(title
* a comment line
R1 a 0
+ 4.7k    ; trailing comment
V1 a 0 dc 1 $ another trailing comment
)");
  EXPECT_NE(deck.circuit.find("R1"), nullptr);
  const auto* r = dynamic_cast<const Resistor*>(deck.circuit.find("R1"));
  ASSERT_NE(r, nullptr);
  EXPECT_DOUBLE_EQ(r->resistance(), 4700.0);
}

TEST(Netlist, SourceSyntaxes) {
  const auto deck = parse_netlist(R"(sources
Vdc  a 0 dc 3.3
Vbare b 0 2.5
Vp   c 0 pulse(0 1.2 1n 50p 50p 4n 10n) ac 1
Vpwl d 0 pwl(0 0 1n 1 2n 0.5)
Vsin e 0 sin(0.6 0.6 1g)
Itest f 0 dc 1m ac 2
)");
  const auto* vp = dynamic_cast<const VSource*>(deck.circuit.find("Vp"));
  ASSERT_NE(vp, nullptr);
  EXPECT_DOUBLE_EQ(vp->ac_magnitude(), 1.0);
  EXPECT_NEAR(vp->value_at(3e-9), 1.2, 1e-12);  // inside the pulse
  const auto* vpwl = dynamic_cast<const VSource*>(deck.circuit.find("Vpwl"));
  ASSERT_NE(vpwl, nullptr);
  EXPECT_NEAR(vpwl->value_at(0.5e-9), 0.5, 1e-12);
  const auto* vsin = dynamic_cast<const VSource*>(deck.circuit.find("Vsin"));
  ASSERT_NE(vsin, nullptr);
  EXPECT_NEAR(vsin->value_at(0.25e-9), 1.2, 1e-9);
  const auto* vb = dynamic_cast<const VSource*>(deck.circuit.find("Vbare"));
  ASSERT_NE(vb, nullptr);
  EXPECT_DOUBLE_EQ(vb->value_at(0.0), 2.5);
}

TEST(Netlist, RlcWithIcsAndTran) {
  const auto deck = parse_netlist(R"(rlc
L1 a b 1u ic=1m
C1 b 0 1n ic=0.5
R1 a 0 50
.ic v(b)=0.5
.tran 10p 5n
)");
  ASSERT_TRUE(deck.tran.has_value());
  EXPECT_DOUBLE_EQ(deck.tran->dt, 1e-11);
  EXPECT_DOUBLE_EQ(deck.tran->tstop, 5e-9);
  ASSERT_EQ(deck.tran->initial_voltages.size(), 1u);
  EXPECT_DOUBLE_EQ(deck.tran->initial_voltages[0].second, 0.5);
  const auto* l = dynamic_cast<const Inductor*>(deck.circuit.find("L1"));
  ASSERT_NE(l, nullptr);
  EXPECT_DOUBLE_EQ(l->initial_current(), 1e-3);
}

TEST(Netlist, ControlledSourcesAndMutual) {
  const auto deck = parse_netlist(R"(coupled
L1 a 0 1u
L2 b 0 1u
K1 L1 L2 0.8
E1 c 0 a 0 2.0
G1 d 0 b 0 1m
R1 c 0 1k
R2 d 0 1k
)");
  EXPECT_NE(deck.circuit.find("K1"), nullptr);
  EXPECT_NE(deck.circuit.find("E1"), nullptr);
  EXPECT_NE(deck.circuit.find("G1"), nullptr);
}

TEST(Netlist, MosfetWithModelCard) {
  auto deck = parse_netlist(R"(inverter
.model nch nmos vt=0.3 beta=1m lambda=0.05
.model pch pmos vt=0.3 beta=1m
Vdd vdd 0 dc 1.2
Vin in 0 dc 0
Mp out in vdd pch m=20
Mn out in 0 nch m=20
)");
  const auto dc = dc_operating_point(deck.circuit);
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(dc.voltage(deck.circuit.node("out")), 1.2, 0.02);
  const auto* m = dynamic_cast<const Mosfet*>(deck.circuit.find("Mn"));
  ASSERT_NE(m, nullptr);
  EXPECT_DOUBLE_EQ(m->size(), 20.0);
  EXPECT_DOUBLE_EQ(m->params().lambda, 0.05);
}

TEST(Netlist, AcCard) {
  const auto deck = parse_netlist(R"(ac sweep
V1 in 0 dc 0 ac 1
R1 in out 1k
C1 out 0 1n
.ac dec 10 1k 1meg
)");
  ASSERT_TRUE(deck.ac.has_value());
  EXPECT_EQ(deck.ac->frequencies.size(), 31u);
  EXPECT_DOUBLE_EQ(deck.ac->frequencies.front(), 1e3);
}

TEST(Netlist, ErrorsCarryLineNumbers) {
  try {
    parse_netlist("title\nR1 a 0 1k\nXsub a b weird\n");
    FAIL() << "expected NetlistError";
  } catch (const NetlistError& e) {
    EXPECT_EQ(e.line(), 3);
  }
  try {
    parse_netlist("title\nK1 L1 L2 0.5\n");
    FAIL() << "expected NetlistError (unknown inductors)";
  } catch (const NetlistError& e) {
    EXPECT_EQ(e.line(), 2);
  }
  EXPECT_THROW(parse_netlist("title\nM1 d g s nosuchmodel\n"), NetlistError);
  EXPECT_THROW(parse_netlist("title\n.tran\n"), NetlistError);
  EXPECT_THROW(parse_netlist("title\n.frobnicate 1 2\n"), NetlistError);
}

TEST(Netlist, StopsAtEnd) {
  const auto deck = parse_netlist(R"(deck
R1 a 0 1k
.end
R2 b 0 1k
)");
  EXPECT_NE(deck.circuit.find("R1"), nullptr);
  EXPECT_EQ(deck.circuit.find("R2"), nullptr);
}

TEST(Netlist, SubcktExpansion) {
  auto deck = parse_netlist(R"(subckt demo
.subckt divider top bot mid
R1 top mid 1k
R2 mid bot 2k
.ends
V1 in 0 dc 9
Xdiv in 0 out divider
Rload out 0 1meg
)");
  // Devices are namespaced by instance.
  EXPECT_NE(deck.circuit.find("Xdiv.R1"), nullptr);
  EXPECT_NE(deck.circuit.find("Xdiv.R2"), nullptr);
  const auto dc = dc_operating_point(deck.circuit);
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(dc.voltage(deck.circuit.node("out")), 6.0, 0.01);
}

TEST(Netlist, SubcktLocalNodesAreNamespaced) {
  auto deck = parse_netlist(R"(two instances
.subckt rcstage in out
Rs in mid 1k
Rm mid out 1k
Cm mid 0 1p
.ends
V1 a 0 dc 2
X1 a b rcstage
X2 b c rcstage
Rterm c 0 2k
)");
  // Each instance gets its own "mid" node.
  const auto n1 = deck.circuit.node("X1.mid");
  const auto n2 = deck.circuit.node("X2.mid");
  EXPECT_NE(n1, n2);
  const auto dc = dc_operating_point(deck.circuit);
  ASSERT_TRUE(dc.converged);
  // Chain: 4k series into 2k load -> v(c) = 2 * 2/6.
  EXPECT_NEAR(dc.voltage(deck.circuit.node("c")), 2.0 / 3.0, 1e-3);
}

TEST(Netlist, NestedSubcktInstances) {
  auto deck = parse_netlist(R"(nested
.subckt unit a b
Ru a b 1k
.ends
.subckt pair x y
X1 x m unit
X2 m y unit
.ends
V1 in 0 dc 1
Xp in out pair
Rload out 0 2k
)");
  EXPECT_NE(deck.circuit.find("Xp.X1.Ru"), nullptr);
  const auto dc = dc_operating_point(deck.circuit);
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(dc.voltage(deck.circuit.node("out")), 0.5, 1e-6);
}

TEST(Netlist, SubcktErrors) {
  EXPECT_THROW(parse_netlist("t\nX1 a b nosuch\n"), NetlistError);
  EXPECT_THROW(parse_netlist("t\n.subckt s a\nR1 a 0 1k\n"), NetlistError);
  EXPECT_THROW(parse_netlist(R"(t
.subckt s a b
R1 a b 1k
.ends
X1 onlyone s
)"), NetlistError);
  // Direct recursion is caught by the depth limit.
  EXPECT_THROW(parse_netlist(R"(t
.subckt loop a b
X1 a b loop
.ends
X0 x y loop
)"), NetlistError);
}

TEST(Netlist, MissingFileThrows) {
  EXPECT_THROW(parse_netlist_file("/nonexistent/deck.sp"), std::runtime_error);
}

}  // namespace
}  // namespace rlc::spice
