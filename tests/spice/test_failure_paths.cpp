/// Failure injection: the analyses must fail *cleanly* (flags, not crashes
/// or garbage) when pushed past their limits, and the convergence-aid
/// ladders must rescue the hard-but-solvable cases.

#include <gtest/gtest.h>

#include "rlc/spice/dcop.hpp"
#include "rlc/spice/transient.hpp"

namespace rlc::spice {
namespace {

TEST(FailurePaths, TransientReportsIncompleteWhenNewtonStarved) {
  // One Newton iteration is not enough for a MOSFET circuit: every step is
  // rejected, the step size bottoms out, and the run reports completed =
  // false instead of looping forever or returning junk.
  Circuit c;
  const auto vdd = c.node("vdd"), in = c.node("in"), out = c.node("out");
  c.add_vsource("Vdd", vdd, c.ground(), DcSpec{2.5});
  c.add_vsource("Vin", in, c.ground(),
                PulseSpec{0, 2.5, 0, 1e-10, 1e-10, 1e-9, 2e-9});
  c.add_mosfet("MP", out, in, vdd, {MosType::kPmos, 0.5, 2e-3, 0.05});
  c.add_mosfet("MN", out, in, c.ground(), {MosType::kNmos, 0.5, 2e-3, 0.05});
  c.add_capacitor("CL", out, c.ground(), 10e-15);
  TransientOptions o;
  o.tstop = 4e-9;
  o.dt = 1e-11;
  o.max_newton = 1;          // starve Newton
  o.max_step_halvings = 4;   // give up quickly
  const auto r = run_transient(c, o);
  EXPECT_FALSE(r.completed);
  EXPECT_GT(r.steps_rejected, 0);
}

TEST(FailurePaths, SameCircuitCompletesWithSaneBudget) {
  Circuit c;
  const auto vdd = c.node("vdd"), in = c.node("in"), out = c.node("out");
  c.add_vsource("Vdd", vdd, c.ground(), DcSpec{2.5});
  c.add_vsource("Vin", in, c.ground(),
                PulseSpec{0, 2.5, 0, 1e-10, 1e-10, 1e-9, 2e-9});
  c.add_mosfet("MP", out, in, vdd, {MosType::kPmos, 0.5, 2e-3, 0.05});
  c.add_mosfet("MN", out, in, c.ground(), {MosType::kNmos, 0.5, 2e-3, 0.05});
  c.add_capacitor("CL", out, c.ground(), 10e-15);
  TransientOptions o;
  o.tstop = 4e-9;
  o.dt = 1e-11;
  const auto r = run_transient(c, o);
  ASSERT_TRUE(r.completed);
  // tstop = 4 ns = two full input periods: the input has just wrapped to
  // low, so the inverter output ends high.
  EXPECT_GT(r.signal("v(out)").back(), 2.0);
}

TEST(FailurePaths, CrossCoupledLatchDcConverges) {
  // Bistable cross-coupled inverters: a classic hard DC case.  Whatever
  // homotopy path the solver takes, it must land on a valid equilibrium
  // (both nodes on rails complementarily, or both at the metastable point).
  Circuit c;
  const auto vdd = c.node("vdd"), a = c.node("a"), b = c.node("b");
  c.add_vsource("Vdd", vdd, c.ground(), DcSpec{2.5});
  const MosParams pn{MosType::kNmos, 0.5, 2e-3, 0.05};
  const MosParams pp{MosType::kPmos, 0.5, 2e-3, 0.05};
  c.add_mosfet("MP1", a, b, vdd, pp);
  c.add_mosfet("MN1", a, b, c.ground(), pn);
  c.add_mosfet("MP2", b, a, vdd, pp);
  c.add_mosfet("MN2", b, a, c.ground(), pn);
  const auto dc = dc_operating_point(c);
  ASSERT_TRUE(dc.converged);
  const double va = dc.voltage(a), vb = dc.voltage(b);
  // Valid equilibria: (hi, lo), (lo, hi), or the metastable midpoint.
  const bool complementary =
      (va > 2.3 && vb < 0.2) || (va < 0.2 && vb > 2.3);
  const bool metastable = std::abs(va - 1.25) < 0.1 && std::abs(vb - 1.25) < 0.1;
  EXPECT_TRUE(complementary || metastable) << va << " " << vb;
}

TEST(FailurePaths, StartFromDcThrowsWhenDcImpossible) {
  // A current source into a capacitor has no DC solution (the gmin shunt
  // makes it *technically* solvable at an absurd voltage; starve the
  // iteration budget to force the failure path deterministically).
  Circuit c;
  const auto vdd = c.node("vdd"), a = c.node("a"), b = c.node("b");
  c.add_vsource("Vdd", vdd, c.ground(), DcSpec{2.5});
  const MosParams pn{MosType::kNmos, 0.5, 2e-3, 0.05};
  const MosParams pp{MosType::kPmos, 0.5, 2e-3, 0.05};
  c.add_mosfet("MP1", a, b, vdd, pp);
  c.add_mosfet("MN1", a, b, c.ground(), pn);
  c.add_mosfet("MP2", b, a, vdd, pp);
  c.add_mosfet("MN2", b, a, c.ground(), pn);
  DcOptions d;
  d.max_iterations = 1;
  const auto dc = dc_operating_point(c, d);
  EXPECT_FALSE(dc.converged);
}

TEST(FailurePaths, SingularTopologyThrowsCleanly) {
  // A current source driving an otherwise unconnected node pair is held up
  // only by the gmin shunt: the solve must either converge (tiny gmin keeps
  // it regular) or throw a typed error — never crash.  With a V-source loop
  // (two ideal sources in parallel with different values) the matrix is
  // truly singular and SparseLU must throw.
  Circuit c;
  const auto a = c.node("a");
  c.add_vsource("V1", a, c.ground(), DcSpec{1.0});
  c.add_vsource("V2", a, c.ground(), DcSpec{2.0});  // contradictory loop
  EXPECT_THROW(
      {
        const auto dc = dc_operating_point(c);
        (void)dc;
      },
      std::runtime_error);
}

TEST(FailurePaths, UnknownProbeKindThrowsInsteadOfRecordingZeros) {
  // The probe recorder's switch is exhaustive over Probe::Kind; a kind it
  // does not understand (e.g. from a future enum grown without updating
  // eval_probe) must fail loudly, not silently log zeros.
  Circuit c;
  const auto in = c.node("in"), out = c.node("out");
  c.add_vsource("Vin", in, c.ground(), DcSpec{1.0});
  c.add_resistor("R1", in, out, 1e3);
  c.add_capacitor("C1", out, c.ground(), 1e-12);
  TransientOptions o;
  o.tstop = 1e-9;
  o.dt = 1e-10;
  Probe bad = Probe::node_voltage(out, "v(out)");
  bad.kind = static_cast<Probe::Kind>(99);
  bad.label = "bogus";
  o.probes = {bad};
  EXPECT_THROW(run_transient(c, o), std::logic_error);
}

}  // namespace
}  // namespace rlc::spice
