#include "rlc/spice/transient.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rlc/core/pade.hpp"
#include "rlc/core/two_pole.hpp"
#include "rlc/spice/circuit.hpp"

namespace rlc::spice {
namespace {

double value_at(const std::vector<double>& t, const std::vector<double>& y,
                double when) {
  for (std::size_t i = 1; i < t.size(); ++i) {
    if (t[i] >= when) {
      const double f = (when - t[i - 1]) / (t[i] - t[i - 1]);
      return y[i - 1] + f * (y[i] - y[i - 1]);
    }
  }
  return y.back();
}

TEST(Transient, RcChargingMatchesAnalytic) {
  Circuit c;
  const auto in = c.node("in"), out = c.node("out");
  c.add_vsource("V1", in, c.ground(), PulseSpec{0, 1, 0, 1e-13, 1e-13, 1, 0});
  c.add_resistor("R1", in, out, 1e3);
  c.add_capacitor("C1", out, c.ground(), 1e-9);
  TransientOptions o;
  o.tstop = 4e-6;
  o.dt = 2e-9;
  const auto r = run_transient(c, o);
  ASSERT_TRUE(r.completed);
  const auto& v = r.signal("v(out)");
  for (double frac : {0.5, 1.0, 2.0}) {
    const double t = frac * 1e-6;  // tau = 1 us
    EXPECT_NEAR(value_at(r.time, v, t), 1.0 - std::exp(-frac), 2e-3) << frac;
  }
}

TEST(Transient, TrapezoidalIsSecondOrderAccurate) {
  // Drive with a ramp whose breakpoints land on sample instants of BOTH
  // step sizes so the input discretization is identical; then halving dt
  // must cut the error by ~4x (order 2), not the ~2x of a first-order rule.
  const double T = 64e-9;   // ramp duration
  const double tau = 1e-6;  // RC
  const auto analytic = [&](double t) {
    const double a = 1.0 / T;
    if (t <= T) return a * (t - tau * (1.0 - std::exp(-t / tau)));
    const double vT = a * (T - tau * (1.0 - std::exp(-T / tau)));
    return 1.0 - (1.0 - vT) * std::exp(-(t - T) / tau);
  };
  const auto rc_error = [&](double dt) {
    Circuit c;
    const auto in = c.node("in"), out = c.node("out");
    c.add_vsource("V1", in, c.ground(), PwlSpec{{{0.0, 0.0}, {T, 1.0}}});
    c.add_resistor("R1", in, out, 1e3);
    c.add_capacitor("C1", out, c.ground(), 1e-9);
    TransientOptions o;
    o.tstop = 1e-6;
    o.dt = dt;
    o.be_startup_steps = 0;
    const auto r = run_transient(c, o);
    const auto& v = r.signal("v(out)");
    double emax = 0.0;
    for (std::size_t i = 0; i < r.time.size(); ++i) {
      emax = std::max(emax, std::abs(v[i] - analytic(r.time[i])));
    }
    return emax;
  };
  const double e1 = rc_error(8e-9);
  const double e2 = rc_error(4e-9);
  EXPECT_GT(e1 / e2, 3.2);
  EXPECT_LT(e1 / e2, 4.8);
}

TEST(Transient, RlCurrentRise) {
  // V/R (1 - e^{-t R/L}) through an RL branch.
  Circuit c;
  const auto in = c.node("in"), mid = c.node("mid");
  c.add_vsource("V1", in, c.ground(), PulseSpec{0, 1, 0, 1e-13, 1e-13, 1, 0});
  c.add_resistor("R1", in, mid, 10.0);
  auto& ind = c.add_inductor("L1", mid, c.ground(), 1e-6);
  TransientOptions o;
  o.tstop = 5e-7;
  o.dt = 5e-10;
  o.probes = {Probe::branch_current(ind, "iL")};
  const auto r = run_transient(c, o);
  ASSERT_TRUE(r.completed);
  const auto& i = r.signal("iL");
  const double tau = 1e-6 / 10.0;  // L/R = 100 ns
  EXPECT_NEAR(value_at(r.time, i, tau), 0.1 * (1.0 - std::exp(-1.0)), 2e-4);
  EXPECT_NEAR(i.back(), 0.1, 1e-3);
}

TEST(Transient, LcOscillationFrequencyAndAmplitude) {
  // Loss-free LC tank started from a charged capacitor: the trapezoidal
  // rule conserves the oscillation amplitude (A-stable, no numerical
  // damping) and the frequency must be 1/(2 pi sqrt(LC)).
  Circuit c;
  const auto n = c.node("n");
  c.add_capacitor("C1", n, c.ground(), 1e-9, /*ic=*/std::nullopt);
  c.add_inductor("L1", n, c.ground(), 1e-6);
  TransientOptions o;
  o.tstop = 2e-6;
  o.dt = 2e-10;
  o.be_startup_steps = 0;  // BE would damp the tank
  o.initial_voltages = {{n, 1.0}};
  const auto r = run_transient(c, o);
  ASSERT_TRUE(r.completed);
  const auto& v = r.signal("v(n)");
  // Amplitude at the end ~ 1 (no decay).
  double vmax_late = 0.0;
  for (std::size_t i = v.size() / 2; i < v.size(); ++i) {
    vmax_late = std::max(vmax_late, v[i]);
  }
  EXPECT_NEAR(vmax_late, 1.0, 5e-3);
  // Count zero crossings to estimate frequency.
  int crossings = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i - 1] < 0.0 && v[i] >= 0.0) ++crossings;
  }
  const double f_est = crossings / 2e-6;
  const double f_exact = 1.0 / (2.0 * 3.14159265358979 * std::sqrt(1e-6 * 1e-9));
  EXPECT_NEAR(f_est, f_exact, 0.02 * f_exact);
}

TEST(Transient, SeriesRlcMatchesTwoPoleModel) {
  // R-L-C driven by a step: exactly the second-order system of Figure 2
  // with b1 = RC, b2 = LC; the simulated node must track the closed form.
  const double R = 50.0, L = 1e-6, C = 1e-9;
  Circuit c;
  const auto in = c.node("in"), m = c.node("m"), out = c.node("out");
  c.add_vsource("V1", in, c.ground(), PulseSpec{0, 1, 0, 1e-14, 1e-14, 1, 0});
  c.add_resistor("R1", in, m, R);
  c.add_inductor("L1", m, out, L);
  c.add_capacitor("C1", out, c.ground(), C);
  TransientOptions o;
  o.tstop = 1.5e-6;
  o.dt = 1e-10;
  const auto r = run_transient(c, o);
  ASSERT_TRUE(r.completed);
  const rlc::core::TwoPole sys(rlc::core::PadeCoeffs{R * C, L * C});
  const auto& v = r.signal("v(out)");
  for (double t : {5e-8, 2e-7, 6e-7, 1.2e-6}) {
    EXPECT_NEAR(value_at(r.time, v, t), sys.step_response(t), 5e-3) << t;
  }
}

TEST(Transient, BackwardEulerDampsButConverges) {
  Circuit c;
  const auto in = c.node("in"), out = c.node("out");
  c.add_vsource("V1", in, c.ground(), DcSpec{1.0});
  c.add_resistor("R1", in, out, 1e3);
  c.add_capacitor("C1", out, c.ground(), 1e-9);
  TransientOptions o;
  o.tstop = 1e-5;
  o.dt = 1e-8;
  o.method = Integrator::kBackwardEuler;
  const auto r = run_transient(c, o);
  ASSERT_TRUE(r.completed);
  // tstop = 10 tau: compare against the analytic value, not the asymptote.
  EXPECT_NEAR(r.signal("v(out)").back(), 1.0 - std::exp(-10.0), 1e-4);
}

TEST(Transient, RecordStartDiscardsEarlySamples) {
  Circuit c;
  const auto n = c.node("n");
  c.add_vsource("V1", n, c.ground(), DcSpec{1.0});
  c.add_resistor("R1", n, c.ground(), 1.0);
  TransientOptions o;
  o.tstop = 1e-6;
  o.dt = 1e-8;
  o.record_start = 0.5e-6;
  const auto r = run_transient(c, o);
  ASSERT_TRUE(r.completed);
  ASSERT_FALSE(r.time.empty());
  EXPECT_GE(r.time.front(), 0.5e-6 - 1e-12);
}

TEST(Transient, ProbeSelectionAndLabels) {
  Circuit c;
  const auto a = c.node("a"), b = c.node("b");
  c.add_vsource("V1", a, c.ground(), DcSpec{2.0});
  auto& res = c.add_resistor("R1", a, b, 1e3);
  c.add_resistor("R2", b, c.ground(), 1e3);
  TransientOptions o;
  o.tstop = 1e-7;
  o.dt = 1e-9;
  o.probes = {Probe::node_voltage(b, "vb"), Probe::resistor_current(res, "ir")};
  const auto r = run_transient(c, o);
  ASSERT_TRUE(r.completed);
  EXPECT_NEAR(r.signal("vb").back(), 1.0, 1e-9);
  EXPECT_NEAR(r.signal("ir").back(), 1e-3, 1e-12);
  EXPECT_THROW(r.signal("nope"), std::out_of_range);
}

TEST(Transient, StartFromDcOperatingPoint) {
  Circuit c;
  const auto in = c.node("in"), out = c.node("out");
  c.add_vsource("V1", in, c.ground(), DcSpec{3.0});
  c.add_resistor("R1", in, out, 1e3);
  c.add_capacitor("C1", out, c.ground(), 1e-9);
  TransientOptions o;
  o.tstop = 1e-6;
  o.dt = 1e-8;
  o.start_from_dc = true;
  const auto r = run_transient(c, o);
  ASSERT_TRUE(r.completed);
  // Already settled: output stays at 3 V throughout.
  for (double v : r.signal("v(out)")) EXPECT_NEAR(v, 3.0, 1e-4);
}

TEST(Transient, AdaptiveLteKeepsAccuracyWithFewerSteps) {
  // RC step response: with LTE control the solver takes big steps on the
  // flat tail while matching the analytic curve at the requested tolerance.
  const auto run = [](bool adaptive) {
    Circuit c;
    const auto in = c.node("in"), out = c.node("out");
    c.add_vsource("V1", in, c.ground(), PwlSpec{{{0.0, 0.0}, {16e-9, 1.0}}});
    c.add_resistor("R1", in, out, 1e3);
    c.add_capacitor("C1", out, c.ground(), 1e-9);
    TransientOptions o;
    o.tstop = 10e-6;        // 10 time constants: long flat tail
    o.dt = 8e-9;            // max step
    o.adaptive_lte = adaptive;
    o.lte_reltol = 1e-3;
    return run_transient(c, o);
  };
  const auto fixed = run(false);
  const auto lte = run(true);
  ASSERT_TRUE(fixed.completed);
  ASSERT_TRUE(lte.completed);
  // Accuracy preserved on the adaptive run.
  const auto& v = lte.signal("v(out)");
  double emax = 0.0;
  for (std::size_t i = 0; i < lte.time.size(); ++i) {
    const double T = 16e-9, tau = 1e-6, tt = lte.time[i];
    const double a = 1.0 / T;
    const double exact =
        tt <= T ? a * (tt - tau * (1.0 - std::exp(-tt / tau)))
                : 1.0 - (1.0 - a * (T - tau * (1.0 - std::exp(-T / tau)))) *
                            std::exp(-(tt - T) / tau);
    emax = std::max(emax, std::abs(v[i] - exact));
  }
  EXPECT_LT(emax, 5e-3);
  // Step counts comparable or better (LTE never exceeds the base dt, so on
  // this smooth problem it should not take substantially more steps).
  EXPECT_LE(lte.steps_accepted, fixed.steps_accepted * 1.2);
}

TEST(Transient, AdaptiveLteRefinesFastEdges) {
  // A sharp pulse inside a long window: the adaptive run must spend extra
  // (smaller) steps around the edges — i.e. reject and refine there.
  Circuit c;
  const auto in = c.node("in"), out = c.node("out");
  c.add_vsource("V1", in, c.ground(),
                PulseSpec{0, 1, 4e-6, 5e-9, 5e-9, 1e-6, 0});
  c.add_resistor("R1", in, out, 100.0);
  c.add_capacitor("C1", out, c.ground(), 1e-9);
  TransientOptions o;
  o.tstop = 10e-6;
  o.dt = 50e-9;
  o.adaptive_lte = true;
  o.lte_reltol = 1e-3;
  const auto r = run_transient(c, o);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.steps_rejected, 0);  // the edge forced refinement
  // The fast edge is resolved: output reaches the rail inside the pulse.
  double vmax = 0.0;
  for (double v : r.signal("v(out)")) vmax = std::max(vmax, v);
  EXPECT_GT(vmax, 0.99);
}

TEST(Transient, OptionValidation) {
  Circuit c;
  const auto n = c.node("n");
  c.add_resistor("R", n, c.ground(), 1.0);
  TransientOptions o;
  o.tstop = 0.0;
  o.dt = 1e-9;
  EXPECT_THROW(run_transient(c, o), std::invalid_argument);
  o.tstop = 1e-9;
  o.dt = 1e-8;  // dt > tstop
  EXPECT_THROW(run_transient(c, o), std::invalid_argument);
}

}  // namespace
}  // namespace rlc::spice
