#include "rlc/spice/ac.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rlc/core/technology.hpp"
#include "rlc/math/constants.hpp"
#include "rlc/ringosc/ladder.hpp"
#include "rlc/tline/transfer.hpp"

namespace rlc::spice {
namespace {

using cplx = std::complex<double>;

TEST(Ac, RcLowPassPole) {
  // |H| = 1/sqrt(2) and phase -45 deg at f = 1/(2 pi RC).
  Circuit c;
  const auto in = c.node("in"), out = c.node("out");
  c.add_vsource("V1", in, c.ground(), DcSpec{0.0}, /*ac=*/1.0);
  c.add_resistor("R1", in, out, 1e3);
  c.add_capacitor("C1", out, c.ground(), 1e-9);
  const double fc = 1.0 / (2.0 * rlc::math::kPi * 1e3 * 1e-9);
  AcOptions o;
  o.frequencies = {fc / 100.0, fc, fc * 100.0};
  o.compute_dc_op = false;
  const auto r = run_ac(c, o);
  ASSERT_TRUE(r.completed);
  const auto& h = r.signal("v(out)");
  EXPECT_NEAR(std::abs(h[0]), 1.0, 1e-3);
  EXPECT_NEAR(std::abs(h[1]), 1.0 / std::sqrt(2.0), 1e-6);
  EXPECT_NEAR(std::arg(h[1]), -rlc::math::kPi / 4.0, 1e-6);
  EXPECT_NEAR(std::abs(h[2]), 0.01, 1e-4);
}

TEST(Ac, RlcSeriesResonance) {
  // Series RLC: voltage across C peaks near f0 = 1/(2 pi sqrt(LC)) with
  // quality factor Q = (1/R) sqrt(L/C).
  Circuit c;
  const auto in = c.node("in"), m = c.node("m"), out = c.node("out");
  c.add_vsource("V1", in, c.ground(), DcSpec{0.0}, 1.0);
  c.add_resistor("R1", in, m, 10.0);
  c.add_inductor("L1", m, out, 1e-6);
  c.add_capacitor("C1", out, c.ground(), 1e-9);
  const double f0 = 1.0 / (2.0 * rlc::math::kPi * std::sqrt(1e-6 * 1e-9));
  const double q = std::sqrt(1e-6 / 1e-9) / 10.0;
  AcOptions o;
  o.frequencies = {f0};
  o.compute_dc_op = false;
  const auto r = run_ac(c, o);
  EXPECT_NEAR(std::abs(r.signal("v(out)")[0]), q, 0.02 * q);
}

TEST(Ac, LadderMatchesExactTransferFunction) {
  // The 32-segment pi-ladder driven through Rs/Cp into Cl must track the
  // exact distributed-line H(j w) of Eq. (1) at frequencies into the GHz.
  const auto tech = rlc::core::Technology::nm250();
  const double h = 0.0144, k = 578.0, l = 1.5e-6;
  const auto dl = tech.rep.scaled(k);

  Circuit c;
  const auto src = c.node("src"), drv = c.node("drv"), end = c.node("end");
  c.add_vsource("V1", src, c.ground(), DcSpec{0.0}, 1.0);
  c.add_resistor("Rs", src, drv, dl.rs_eff);
  c.add_capacitor("Cp", drv, c.ground(), dl.cp_eff);
  rlc::ringosc::add_rlc_ladder(c, "ln", drv, end, tech.line(l), h, 32);
  c.add_capacitor("Cl", end, c.ground(), dl.cl_eff);

  AcOptions o;
  o.frequencies = {1e8, 5e8, 1e9, 2e9};
  o.compute_dc_op = false;
  o.probes = {Probe::node_voltage(end, "vend")};
  const auto r = run_ac(c, o);
  for (std::size_t i = 0; i < o.frequencies.size(); ++i) {
    const cplx s{0.0, 2.0 * rlc::math::kPi * o.frequencies[i]};
    const cplx exact = rlc::tline::exact_transfer_dc_safe(tech.line(l), h, dl, s);
    const cplx sim = r.signal("vend")[i];
    EXPECT_NEAR(std::abs(sim - exact), 0.0, 0.05 * std::abs(exact))
        << "f = " << o.frequencies[i];
  }
}

TEST(Ac, MosfetLinearizedAmplifier) {
  // Common-source stage: NMOS in saturation with drain resistor RD;
  // small-signal gain = -gm RD (low frequency).
  Circuit c;
  const auto vdd = c.node("vdd"), g = c.node("g"), d = c.node("d");
  c.add_vsource("Vdd", vdd, c.ground(), DcSpec{3.0});
  c.add_vsource("Vg", g, c.ground(), DcSpec{1.5}, /*ac=*/1.0);
  c.add_resistor("RD", vdd, d, 5e3);
  c.add_mosfet("M1", d, g, c.ground(), {MosType::kNmos, 0.5, 1e-4, 0.0});
  AcOptions o;
  o.frequencies = {1e3};
  const auto r = run_ac(c, o);
  // gm = beta * vov = 1e-4 * 1.0 = 1e-4; gain = -0.5.
  const cplx gain = r.signal("v(d)")[0];
  EXPECT_NEAR(gain.real(), -0.5, 0.02);
  EXPECT_NEAR(gain.imag(), 0.0, 1e-6);
}

TEST(Ac, QuietSourcesContributeNothing) {
  Circuit c;
  const auto in = c.node("in"), out = c.node("out");
  c.add_vsource("V1", in, c.ground(), DcSpec{5.0});  // ac_magnitude = 0
  c.add_resistor("R1", in, out, 1e3);
  c.add_resistor("R2", out, c.ground(), 1e3);
  AcOptions o;
  o.frequencies = {1e6};
  o.compute_dc_op = false;
  const auto r = run_ac(c, o);
  EXPECT_NEAR(std::abs(r.signal("v(out)")[0]), 0.0, 1e-12);
}

TEST(Ac, LogFrequencyGrid) {
  const auto f = log_frequencies(1e3, 1e6, 10);
  ASSERT_EQ(f.size(), 31u);
  EXPECT_DOUBLE_EQ(f.front(), 1e3);
  EXPECT_NEAR(f.back(), 1e6, 1e-6 * 1e6);
  for (std::size_t i = 1; i < f.size(); ++i) EXPECT_GT(f[i], f[i - 1]);
  EXPECT_THROW(log_frequencies(0.0, 1e6, 10), std::invalid_argument);
  EXPECT_THROW(log_frequencies(1e6, 1e3, 10), std::invalid_argument);
}

TEST(Ac, InputValidation) {
  Circuit c;
  const auto n = c.node("n");
  c.add_resistor("R", n, c.ground(), 1.0);
  AcOptions o;
  EXPECT_THROW(run_ac(c, o), std::invalid_argument);  // no frequencies
  o.frequencies = {-1.0};
  EXPECT_THROW(run_ac(c, o), std::invalid_argument);
}

}  // namespace
}  // namespace rlc::spice
