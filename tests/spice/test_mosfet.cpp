#include "rlc/spice/mosfet.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rlc/spice/circuit.hpp"
#include "rlc/spice/dcop.hpp"

namespace rlc::spice {
namespace {

MosParams nmos() { return {MosType::kNmos, 0.5, 1e-3, 0.0}; }
MosParams nmos_clm() { return {MosType::kNmos, 0.5, 1e-3, 0.05}; }

TEST(MosEval, CutoffBelowThreshold) {
  const auto e = mos_eval(nmos(), 0.4, 1.0);
  EXPECT_DOUBLE_EQ(e.ids, 0.0);
  EXPECT_DOUBLE_EQ(e.gm, 0.0);
  EXPECT_DOUBLE_EQ(e.gds, 0.0);
}

TEST(MosEval, TriodeRegion) {
  // vgs = 1.5, vds = 0.3 < vov = 1.0: i = beta (vov vds - vds^2/2).
  const auto e = mos_eval(nmos(), 1.5, 0.3);
  EXPECT_NEAR(e.ids, 1e-3 * (1.0 * 0.3 - 0.045), 1e-12);
  EXPECT_NEAR(e.gm, 1e-3 * 0.3, 1e-12);
  EXPECT_NEAR(e.gds, 1e-3 * (1.0 - 0.3), 1e-12);
}

TEST(MosEval, SaturationRegion) {
  const auto e = mos_eval(nmos(), 1.5, 2.0);
  EXPECT_NEAR(e.ids, 0.5e-3, 1e-12);
  EXPECT_NEAR(e.gm, 1e-3, 1e-12);
  EXPECT_DOUBLE_EQ(e.gds, 0.0);  // no CLM
}

TEST(MosEval, ContinuousAcrossTriodeSaturationBoundary) {
  const double vgs = 1.5, vov = 1.0;
  const auto below = mos_eval(nmos_clm(), vgs, vov - 1e-9);
  const auto above = mos_eval(nmos_clm(), vgs, vov + 1e-9);
  EXPECT_NEAR(below.ids, above.ids, 1e-12);
  EXPECT_NEAR(below.gm, above.gm, 1e-9);
}

TEST(MosEval, ReverseModeAntisymmetric) {
  // Swapping source and drain: I(vgs, vds) = -I(vgs - vds, -vds).
  const double vgs = 1.2, vds = -0.8;
  const auto rev = mos_eval(nmos_clm(), vgs, vds);
  const auto fwd = mos_eval(nmos_clm(), vgs - vds, -vds);
  EXPECT_NEAR(rev.ids, -fwd.ids, 1e-15);
  EXPECT_LT(rev.ids, 0.0);
}

TEST(MosEval, DerivativesMatchFiniteDifferencesEverywhere) {
  const auto p = nmos_clm();
  const double dv = 1e-7;
  for (double vgs : {0.2, 0.8, 1.2, 2.0}) {
    for (double vds : {-1.5, -0.4, 0.0, 0.3, 1.0, 2.5}) {
      const auto e = mos_eval(p, vgs, vds);
      const double gm_fd =
          (mos_eval(p, vgs + dv, vds).ids - mos_eval(p, vgs - dv, vds).ids) /
          (2 * dv);
      const double gds_fd =
          (mos_eval(p, vgs, vds + dv).ids - mos_eval(p, vgs, vds - dv).ids) /
          (2 * dv);
      EXPECT_NEAR(e.gm, gm_fd, 1e-6 * std::abs(gm_fd) + 1e-10)
          << vgs << " " << vds;
      EXPECT_NEAR(e.gds, gds_fd, 1e-6 * std::abs(gds_fd) + 1e-10)
          << vgs << " " << vds;
    }
  }
}

TEST(MosEval, PmosMirrorsNmos) {
  const MosParams pp{MosType::kPmos, 0.5, 1e-3, 0.05};
  const MosParams np{MosType::kNmos, 0.5, 1e-3, 0.05};
  // PMOS conducting: vgs = -1.5, vds = -2.0.
  const auto pe = mos_eval(pp, -1.5, -2.0);
  const auto ne = mos_eval(np, 1.5, 2.0);
  EXPECT_NEAR(pe.ids, -ne.ids, 1e-15);
  EXPECT_NEAR(pe.gm, ne.gm, 1e-15);
  EXPECT_NEAR(pe.gds, ne.gds, 1e-15);
  // PMOS off when gate high.
  EXPECT_DOUBLE_EQ(mos_eval(pp, 0.0, -1.0).ids, 0.0);
}

TEST(Mosfet, InverterVtcEndpoints) {
  // CMOS inverter: in = 0 -> out = VDD; in = VDD -> out = 0.
  const double vdd = 2.5;
  for (double vin : {0.0, vdd}) {
    Circuit c;
    const auto nvdd = c.node("vdd"), in = c.node("in"), out = c.node("out");
    c.add_vsource("Vdd", nvdd, c.ground(), DcSpec{vdd});
    c.add_vsource("Vin", in, c.ground(), DcSpec{vin});
    c.add_mosfet("MP", out, in, nvdd, {MosType::kPmos, 0.5, 2e-3, 0.05});
    c.add_mosfet("MN", out, in, c.ground(), {MosType::kNmos, 0.5, 2e-3, 0.05});
    const auto dc = dc_operating_point(c);
    ASSERT_TRUE(dc.converged) << vin;
    EXPECT_NEAR(dc.voltage(out), vdd - vin, 1e-3) << vin;
  }
}

TEST(Mosfet, SymmetricInverterSwitchesAtMidRail) {
  const double vdd = 2.5;
  Circuit c;
  const auto nvdd = c.node("vdd"), in = c.node("in"), out = c.node("out");
  c.add_vsource("Vdd", nvdd, c.ground(), DcSpec{vdd});
  c.add_vsource("Vin", in, c.ground(), DcSpec{0.5 * vdd});
  c.add_mosfet("MP", out, in, nvdd, {MosType::kPmos, 0.5, 2e-3, 0.05});
  c.add_mosfet("MN", out, in, c.ground(), {MosType::kNmos, 0.5, 2e-3, 0.05});
  const auto dc = dc_operating_point(c);
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(dc.voltage(out), 0.5 * vdd, 0.01 * vdd);
}

TEST(Mosfet, SizeScalesCurrent) {
  const auto p = nmos();
  Circuit c;
  const auto d = c.node("d"), g = c.node("g");
  c.add_vsource("Vd", d, c.ground(), DcSpec{2.0});
  c.add_vsource("Vg", g, c.ground(), DcSpec{1.5});
  auto& m = c.add_mosfet("M1", d, g, c.ground(), p, 8.0);
  const auto dc = dc_operating_point(c);
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(m.drain_current(dc.x), 8.0 * 0.5e-3, 1e-9);
}

TEST(Mosfet, ParameterValidation) {
  Circuit c;
  const auto a = c.node("a");
  EXPECT_THROW(
      c.add_mosfet("M", a, a, c.ground(), {MosType::kNmos, 0.0, 1e-3, 0.0}),
      std::domain_error);
  EXPECT_THROW(
      c.add_mosfet("M", a, a, c.ground(), {MosType::kNmos, 0.5, 1e-3, 0.0}, 0.0),
      std::domain_error);
}

}  // namespace
}  // namespace rlc::spice
