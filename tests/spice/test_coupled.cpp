#include "rlc/spice/coupled.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rlc/math/constants.hpp"
#include "rlc/spice/ac.hpp"
#include "rlc/spice/dcop.hpp"
#include "rlc/spice/transient.hpp"

namespace rlc::spice {
namespace {

TEST(Vcvs, DcGain) {
  Circuit c;
  const auto in = c.node("in"), out = c.node("out");
  c.add_vsource("V1", in, c.ground(), DcSpec{2.0});
  c.add_vcvs("E1", out, c.ground(), in, c.ground(), 3.5);
  c.add_resistor("RL", out, c.ground(), 1e3);
  const auto dc = dc_operating_point(c);
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(dc.voltage(out), 7.0, 1e-9);
}

TEST(Vcvs, DifferentialControl) {
  Circuit c;
  const auto a = c.node("a"), b = c.node("b"), out = c.node("out");
  c.add_vsource("V1", a, c.ground(), DcSpec{3.0});
  c.add_vsource("V2", b, c.ground(), DcSpec{1.0});
  c.add_vcvs("E1", out, c.ground(), a, b, 2.0);
  c.add_resistor("RL", out, c.ground(), 1e3);
  const auto dc = dc_operating_point(c);
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(dc.voltage(out), 4.0, 1e-9);
}

TEST(Vccs, DcTransconductance) {
  Circuit c;
  const auto in = c.node("in"), out = c.node("out");
  c.add_vsource("V1", in, c.ground(), DcSpec{2.0});
  // i(out -> gnd through the source) = gm * v(in): with gm = 1 mS the
  // source pulls 2 mA OUT of node out; through RL = 1k that is -2 V.
  c.add_vccs("G1", out, c.ground(), in, c.ground(), 1e-3);
  c.add_resistor("RL", out, c.ground(), 1e3);
  const auto dc = dc_operating_point(c);
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(dc.voltage(out), -2.0, 1e-6);  // gmin shunt offset
}

TEST(Mutual, ValidatesCoupling) {
  Circuit c;
  const auto a = c.node("a"), b = c.node("b");
  auto& l1 = c.add_inductor("L1", a, c.ground(), 1e-6);
  auto& l2 = c.add_inductor("L2", b, c.ground(), 1e-6);
  EXPECT_THROW(c.add_mutual("K1", l1, l2, 1.0), std::domain_error);
  EXPECT_THROW(c.add_mutual("K1", l1, l2, 0.0), std::domain_error);
  EXPECT_NO_THROW(c.add_mutual("K1", l1, l2, -0.5));
}

TEST(Mutual, AcTransformerCoupling) {
  // Transformer with k = 0.5, driven primary, open secondary (load R):
  // V2/V1 at high frequency -> k * sqrt(L2/L1) (ideal transformer limit).
  Circuit c;
  const auto p = c.node("p"), s = c.node("s");
  c.add_vsource("V1", p, c.ground(), DcSpec{0.0}, 1.0);
  auto& l1 = c.add_inductor("L1", p, c.ground(), 1e-6);
  auto& l2 = c.add_inductor("L2", s, c.ground(), 4e-6);
  c.add_mutual("K1", l1, l2, 0.5);
  c.add_resistor("RL", s, c.ground(), 1e9);  // effectively open
  AcOptions o;
  o.frequencies = {1e9};
  o.compute_dc_op = false;
  const auto r = run_ac(c, o);
  // Open-secondary transfer: V2 = (M / L1) V1 = k sqrt(L2/L1) = 1.0.
  EXPECT_NEAR(std::abs(r.signal("v(s)")[0]), 1.0, 1e-3);
}

TEST(Mutual, TransientEnergyTransfer) {
  // Step the primary through a resistor; the coupled secondary must develop
  // a voltage with the polarity of the coupling and settle back to zero.
  Circuit c;
  const auto in = c.node("in"), p = c.node("p"), s = c.node("s");
  c.add_vsource("V1", in, c.ground(), PulseSpec{0, 1, 0, 1e-9, 1e-9, 1, 0});
  c.add_resistor("R1", in, p, 50.0);
  auto& l1 = c.add_inductor("L1", p, c.ground(), 1e-6);
  auto& l2 = c.add_inductor("L2", s, c.ground(), 1e-6);
  c.add_mutual("K1", l1, l2, 0.8);
  c.add_resistor("R2", s, c.ground(), 50.0);
  TransientOptions o;
  // Coupled decay constant ~ L(1+k)/R = 36 ns; run 5e-7 so it fully dies.
  o.tstop = 5e-7;
  o.dt = 2e-11;
  const auto r = run_transient(c, o);
  ASSERT_TRUE(r.completed);
  const auto& vs = r.signal("v(s)");
  double peak = 0.0;
  for (double v : vs) peak = std::max(peak, std::abs(v));
  EXPECT_GT(peak, 0.05);            // coupling transfers energy
  EXPECT_NEAR(vs.back(), 0.0, 1e-3);  // and dies off at DC
}

TEST(Mutual, SymmetricCoupledLinesSplitModes) {
  // Two identical LC lines coupled magnetically have even/odd mode
  // frequencies f_even = f0/sqrt(1+k), f_odd = f0/sqrt(1-k).  Drive one
  // line and check the beat produces energy in the second.
  Circuit c;
  const auto a = c.node("a"), b = c.node("b");
  auto& l1 = c.add_inductor("L1", a, c.ground(), 1e-6);
  auto& l2 = c.add_inductor("L2", b, c.ground(), 1e-6);
  c.add_capacitor("C1", a, c.ground(), 1e-9);
  c.add_capacitor("C2", b, c.ground(), 1e-9);
  c.add_mutual("K", l1, l2, 0.3);
  TransientOptions o;
  o.tstop = 3e-6;
  o.dt = 3e-10;
  o.be_startup_steps = 0;
  o.initial_voltages = {{a, 1.0}};
  const auto r = run_transient(c, o);
  ASSERT_TRUE(r.completed);
  double peak_b = 0.0;
  for (double v : r.signal("v(b)")) peak_b = std::max(peak_b, std::abs(v));
  EXPECT_GT(peak_b, 0.3);  // strong beat transfer between the lines
}

}  // namespace
}  // namespace rlc::spice
