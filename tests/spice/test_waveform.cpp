#include "rlc/spice/waveform.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rlc/math/constants.hpp"

namespace rlc::spice {
namespace {

TEST(Waveform, Dc) {
  const Waveform w = DcSpec{3.3};
  EXPECT_DOUBLE_EQ(waveform_value(w, 0.0), 3.3);
  EXPECT_DOUBLE_EQ(waveform_value(w, 1e9), 3.3);
  EXPECT_DOUBLE_EQ(waveform_dc_value(w), 3.3);
}

TEST(Waveform, PulseSingleShot) {
  // 0 -> 1 after 1ns delay, 1ns rise, 2ns width, 1ns fall, no repeat.
  const Waveform w = PulseSpec{0.0, 1.0, 1e-9, 1e-9, 1e-9, 2e-9, 0.0};
  EXPECT_DOUBLE_EQ(waveform_value(w, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(waveform_value(w, 0.999e-9), 0.0);
  EXPECT_NEAR(waveform_value(w, 1.5e-9), 0.5, 1e-12);   // mid-rise
  EXPECT_DOUBLE_EQ(waveform_value(w, 2.5e-9), 1.0);     // plateau
  EXPECT_NEAR(waveform_value(w, 4.5e-9), 0.5, 1e-12);   // mid-fall
  EXPECT_DOUBLE_EQ(waveform_value(w, 10e-9), 0.0);      // back to v1
}

TEST(Waveform, PulsePeriodic) {
  const Waveform w = PulseSpec{0.0, 2.0, 0.0, 1e-9, 1e-9, 3e-9, 10e-9};
  // Same phase one period later.
  for (double t : {0.5e-9, 2e-9, 4.5e-9, 9e-9}) {
    EXPECT_NEAR(waveform_value(w, t), waveform_value(w, t + 10e-9), 1e-12) << t;
    EXPECT_NEAR(waveform_value(w, t), waveform_value(w, t + 30e-9), 1e-12) << t;
  }
}

TEST(Waveform, PwlInterpolatesAndClamps) {
  const Waveform w = PwlSpec{{{1.0, 0.0}, {2.0, 10.0}, {4.0, -10.0}}};
  EXPECT_DOUBLE_EQ(waveform_value(w, 0.0), 0.0);    // clamp left
  EXPECT_NEAR(waveform_value(w, 1.5), 5.0, 1e-12);  // interp
  EXPECT_NEAR(waveform_value(w, 3.0), 0.0, 1e-12);  // interp down
  EXPECT_DOUBLE_EQ(waveform_value(w, 9.0), -10.0);  // clamp right
}

TEST(Waveform, PwlEmptyAndSinglePoint) {
  EXPECT_DOUBLE_EQ(waveform_value(PwlSpec{}, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(waveform_value(PwlSpec{{{0.0, 7.0}}}, 5.0), 7.0);
}

TEST(Waveform, Sine) {
  const Waveform w = SinSpec{1.0, 2.0, 1e6, 0.0, 0.0};
  EXPECT_NEAR(waveform_value(w, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(waveform_value(w, 0.25e-6), 3.0, 1e-9);  // quarter period peak
  EXPECT_NEAR(waveform_value(w, 0.75e-6), -1.0, 1e-9);
}

TEST(Waveform, DampedSineWithDelay) {
  const Waveform w = SinSpec{0.0, 1.0, 1e6, 1e-6, 1e6};
  EXPECT_DOUBLE_EQ(waveform_value(w, 0.5e-6), 0.0);  // before delay
  const double t = 1.25e-6;  // quarter period after delay
  EXPECT_NEAR(waveform_value(w, t), std::exp(-0.25) * 1.0, 1e-9);
}

}  // namespace
}  // namespace rlc::spice
