#include "rlc/linalg/eigen.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using rlc::linalg::jacobi_eigensolve;
using rlc::linalg::MatrixD;
using rlc::linalg::simultaneous_diagonalize;

MatrixD reconstruct(const rlc::linalg::EigenResult& r) {
  const std::size_t n = r.values.size();
  MatrixD a(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t k = 0; k < n; ++k)
        a(i, j) += r.vectors(i, k) * r.values[k] * r.vectors(j, k);
  return a;
}

TEST(JacobiEigen, DiagonalMatrixIsItsOwnDecomposition) {
  MatrixD a(3, 3, 0.0);
  a(0, 0) = 3.0;
  a(1, 1) = 1.0;
  a(2, 2) = 2.0;
  auto r = jacobi_eigensolve(a);
  ASSERT_EQ(r.values.size(), 3u);
  EXPECT_DOUBLE_EQ(r.values[0], 1.0);
  EXPECT_DOUBLE_EQ(r.values[1], 2.0);
  EXPECT_DOUBLE_EQ(r.values[2], 3.0);
}

TEST(JacobiEigen, TwoByTwoAnalytic) {
  // [[2, 1], [1, 2]] has eigenvalues 1 and 3 with (1,-1)/sqrt2, (1,1)/sqrt2.
  MatrixD a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 2.0;
  auto r = jacobi_eigensolve(a);
  EXPECT_NEAR(r.values[0], 1.0, 1e-14);
  EXPECT_NEAR(r.values[1], 3.0, 1e-14);
  EXPECT_NEAR(std::abs(r.vectors(0, 1)), std::sqrt(0.5), 1e-14);
  EXPECT_NEAR(std::abs(r.vectors(1, 1)), std::sqrt(0.5), 1e-14);
}

TEST(JacobiEigen, ReconstructsAndIsOrthonormal) {
  MatrixD a(4, 4, 0.0);
  // Symmetric tridiagonal with a corner entry.
  for (std::size_t i = 0; i < 4; ++i) a(i, i) = 2.0 + 0.1 * double(i);
  for (std::size_t i = 0; i + 1 < 4; ++i) {
    a(i, i + 1) = -0.7;
    a(i + 1, i) = -0.7;
  }
  a(0, 3) = 0.05;
  a(3, 0) = 0.05;
  auto r = jacobi_eigensolve(a);
  MatrixD back = reconstruct(r);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      EXPECT_NEAR(back(i, j), a(i, j), 1e-12);
  // W^T W = I.
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) {
      double dot = 0.0;
      for (std::size_t k = 0; k < 4; ++k)
        dot += r.vectors(k, i) * r.vectors(k, j);
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-13);
    }
  // Ascending order.
  for (std::size_t i = 0; i + 1 < 4; ++i) EXPECT_LE(r.values[i], r.values[i + 1]);
}

TEST(JacobiEigen, RejectsNonSymmetric) {
  MatrixD a(2, 2, 0.0);
  a(0, 1) = 1.0;
  a(1, 0) = 2.0;
  EXPECT_THROW(jacobi_eigensolve(a), std::invalid_argument);
  EXPECT_THROW(jacobi_eigensolve(MatrixD(2, 3)), std::invalid_argument);
  EXPECT_THROW(jacobi_eigensolve(MatrixD{}), std::invalid_argument);
}

TEST(SimultaneousDiag, CommutingPairSharedBasis) {
  // Both polynomials in the path adjacency => commuting.
  const std::size_t n = 3;
  MatrixD adj(n, n, 0.0);
  adj(0, 1) = adj(1, 0) = adj(1, 2) = adj(2, 1) = 1.0;
  MatrixD a(n, n, 0.0), b(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = 2.0;
    b(i, i) = 5.0;
  }
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) += 0.3 * adj(i, j);
      b(i, j) += -1.1 * adj(i, j);
    }
  auto r = simultaneous_diagonalize(a, b);
  // Check W^T A W and W^T B W are the reported diagonals.
  for (std::size_t j = 0; j < n; ++j) {
    std::vector<double> col(n);
    for (std::size_t i = 0; i < n; ++i) col[i] = r.vectors(i, j);
    auto av = a.multiply(col);
    auto bv = b.multiply(col);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(av[i], r.a_values[j] * col[i], 1e-12);
      EXPECT_NEAR(bv[i], r.b_values[j] * col[i], 1e-12);
    }
  }
}

TEST(SimultaneousDiag, DegenerateAClusterStillDiagonalizesB) {
  // A = I (fully degenerate): any basis diagonalizes A, so the cluster pass
  // must pick the one that diagonalizes B.
  MatrixD a(3, 3, 0.0), b(3, 3, 0.0);
  for (std::size_t i = 0; i < 3; ++i) a(i, i) = 4.0;
  b(0, 0) = 1.0;
  b(1, 1) = 2.0;
  b(2, 2) = 3.0;
  b(0, 1) = b(1, 0) = 0.5;
  b(1, 2) = b(2, 1) = -0.25;
  auto r = simultaneous_diagonalize(a, b);
  for (std::size_t j = 0; j < 3; ++j) EXPECT_NEAR(r.a_values[j], 4.0, 1e-13);
  // b_values must be the eigenvalues of b.
  auto eb = jacobi_eigensolve(b);
  std::vector<double> got = r.b_values;
  std::sort(got.begin(), got.end());
  for (std::size_t j = 0; j < 3; ++j) EXPECT_NEAR(got[j], eb.values[j], 1e-12);
}

TEST(SimultaneousDiag, NonCommutingPairThrows) {
  MatrixD a(2, 2, 0.0), b(2, 2, 0.0);
  a(0, 0) = 1.0;
  a(1, 1) = 2.0;  // distinct eigenvalues, basis is e1/e2
  b(0, 0) = 1.0;
  b(1, 1) = 1.0;
  b(0, 1) = b(1, 0) = 0.7;  // not diagonal in that basis
  EXPECT_THROW(simultaneous_diagonalize(a, b), std::runtime_error);
}

}  // namespace
