#include "rlc/linalg/sparse.hpp"

#include <gtest/gtest.h>

namespace rlc::linalg {
namespace {

TEST(CscMatrix, FromTripletsSumsDuplicates) {
  // MNA stamping appends duplicate (i, j) entries that must accumulate.
  const std::vector<Triplet> t{{0, 0, 1.0}, {0, 0, 2.0}, {1, 0, -1.0},
                               {1, 1, 4.0}};
  const auto m = CscMatrix::from_triplets(2, 2, t);
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 4.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
}

TEST(CscMatrix, KeepsExplicitZerosByDefault) {
  const std::vector<Triplet> t{{0, 0, 1.0}, {1, 1, 1.0}, {0, 1, 0.0}};
  EXPECT_EQ(CscMatrix::from_triplets(2, 2, t).nnz(), 3);
  EXPECT_EQ(CscMatrix::from_triplets(2, 2, t, /*drop_zeros=*/true).nnz(), 2);
}

TEST(CscMatrix, CancellingDuplicatesDropOnlyWhenRequested) {
  const std::vector<Triplet> t{{0, 0, 1.0}, {0, 0, -1.0}, {1, 1, 1.0}};
  EXPECT_EQ(CscMatrix::from_triplets(2, 2, t).nnz(), 2);
  EXPECT_EQ(CscMatrix::from_triplets(2, 2, t, true).nnz(), 1);
}

TEST(CscMatrix, RowsSortedWithinColumns) {
  const std::vector<Triplet> t{{2, 0, 3.0}, {0, 0, 1.0}, {1, 0, 2.0}};
  const auto m = CscMatrix::from_triplets(3, 1, t);
  ASSERT_EQ(m.nnz(), 3);
  EXPECT_EQ(m.row_idx()[0], 0);
  EXPECT_EQ(m.row_idx()[1], 1);
  EXPECT_EQ(m.row_idx()[2], 2);
}

TEST(CscMatrix, Multiply) {
  // [[1, 2], [0, 3]] * [1, 2] = [5, 6]
  const std::vector<Triplet> t{{0, 0, 1.0}, {0, 1, 2.0}, {1, 1, 3.0}};
  const auto m = CscMatrix::from_triplets(2, 2, t);
  const auto y = m.multiply({1.0, 2.0});
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
}

TEST(CscMatrix, OutOfRangeTripletThrows) {
  EXPECT_THROW(CscMatrix::from_triplets(2, 2, {{2, 0, 1.0}}),
               std::out_of_range);
  EXPECT_THROW(CscMatrix::from_triplets(2, 2, {{0, -1, 1.0}}),
               std::out_of_range);
}

TEST(TripletCompressor, ReusesMappingForIdenticalStructure) {
  TripletCompressor tc;
  std::vector<Triplet> t{{0, 0, 1.0}, {1, 1, 2.0}, {0, 1, 3.0}, {0, 0, 4.0}};
  const auto& m1 = tc.compress(2, 2, t);
  EXPECT_FALSE(tc.reused());
  EXPECT_DOUBLE_EQ(m1.at(0, 0), 5.0);  // duplicates summed
  // Same structure, new values: must reuse and produce correct sums.
  t[0].value = 10.0;
  t[3].value = 1.0;
  const auto& m2 = tc.compress(2, 2, t);
  EXPECT_TRUE(tc.reused());
  EXPECT_DOUBLE_EQ(m2.at(0, 0), 11.0);
  EXPECT_DOUBLE_EQ(m2.at(1, 1), 2.0);
}

TEST(TripletCompressor, DetectsStructureChange) {
  TripletCompressor tc;
  std::vector<Triplet> t{{0, 0, 1.0}, {1, 1, 2.0}};
  tc.compress(2, 2, t);
  t.push_back({1, 0, -1.0});  // new entry
  const auto& m = tc.compress(2, 2, t);
  EXPECT_FALSE(tc.reused());
  EXPECT_DOUBLE_EQ(m.at(1, 0), -1.0);
  // Changed position with same count also triggers rebuild.
  std::vector<Triplet> t2{{0, 0, 1.0}, {1, 1, 2.0}, {0, 1, -1.0}};
  tc.compress(2, 2, t2);
  EXPECT_FALSE(tc.reused());
}

TEST(TripletCompressor, MatchesFromTripletsOnRandomPatterns) {
  TripletCompressor tc;
  std::vector<Triplet> t;
  for (int i = 0; i < 50; ++i) {
    t.push_back({(i * 7) % 10, (i * 3) % 10, 0.1 * i - 2.0});
  }
  const auto ref = CscMatrix::from_triplets(10, 10, t);
  tc.compress(10, 10, t);
  for (auto& tr : t) tr.value *= -1.5;
  const auto& m = tc.compress(10, 10, t);
  ASSERT_TRUE(tc.reused());
  for (int i = 0; i < 10; ++i) {
    for (int j = 0; j < 10; ++j) {
      EXPECT_NEAR(m.at(i, j), -1.5 * ref.at(i, j), 1e-12) << i << "," << j;
    }
  }
}

TEST(CscMatrix, EmptyMatrix) {
  const auto m = CscMatrix::from_triplets(3, 3, {});
  EXPECT_EQ(m.nnz(), 0);
  const auto y = m.multiply({1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 0.0);
}

}  // namespace
}  // namespace rlc::linalg
