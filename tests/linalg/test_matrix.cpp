#include "rlc/linalg/matrix.hpp"

#include <gtest/gtest.h>

namespace rlc::linalg {
namespace {

TEST(Matrix, ConstructAndIndex) {
  MatrixD m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -4.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -4.0);
}

TEST(Matrix, AtThrowsOutOfRange) {
  MatrixD m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
  EXPECT_NO_THROW(m.at(1, 1));
}

TEST(Matrix, Multiply) {
  MatrixD m(2, 3);
  // [1 2 3; 4 5 6] * [1, 0, -1] = [-2, -2]
  m(0, 0) = 1; m(0, 1) = 2; m(0, 2) = 3;
  m(1, 0) = 4; m(1, 1) = 5; m(1, 2) = 6;
  const auto y = m.multiply({1.0, 0.0, -1.0});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
}

TEST(Matrix, MultiplySizeMismatchThrows) {
  MatrixD m(2, 3);
  EXPECT_THROW(m.multiply({1.0, 2.0}), std::invalid_argument);
}

TEST(Matrix, ComplexSupport) {
  MatrixC m(1, 1);
  m(0, 0) = {0.0, 1.0};
  const auto y = m.multiply({{0.0, 1.0}});
  EXPECT_DOUBLE_EQ(y[0].real(), -1.0);
  EXPECT_DOUBLE_EQ(y[0].imag(), 0.0);
}

TEST(Matrix, SetZero) {
  MatrixD m(2, 2, 3.0);
  m.set_zero();
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 0.0);
}

}  // namespace
}  // namespace rlc::linalg
