#include "rlc/linalg/lu.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace rlc::linalg {
namespace {

TEST(DenseLU, Solves2x2) {
  MatrixD a(2, 2);
  a(0, 0) = 3.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 2.0;
  const LUD lu(a);
  const auto x = lu.solve({9.0, 8.0});
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(DenseLU, RequiresPivoting) {
  // Zero on the leading diagonal: fails without row pivoting.
  MatrixD a(2, 2);
  a(0, 0) = 0.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 0.0;
  const LUD lu(a);
  const auto x = lu.solve({5.0, 7.0});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 5.0, 1e-12);
}

TEST(DenseLU, SingularThrows) {
  MatrixD a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0;
  a(1, 0) = 2.0; a(1, 1) = 4.0;
  EXPECT_THROW(LUD{a}, std::runtime_error);
}

TEST(DenseLU, NonSquareThrows) {
  MatrixD a(2, 3);
  EXPECT_THROW(LUD{a}, std::invalid_argument);
}

TEST(DenseLU, RandomResidualSmall) {
  std::mt19937 rng(42);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  const std::size_t n = 60;
  MatrixD a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = dist(rng);
    a(i, i) += 3.0;  // keep it comfortably nonsingular
  }
  std::vector<double> xref(n);
  for (auto& v : xref) v = dist(rng);
  const auto b = a.multiply(xref);
  const LUD lu(a);
  const auto x = lu.solve(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xref[i], 1e-9);
}

TEST(DenseLU, MultipleRhsReuse) {
  MatrixD a(2, 2);
  a(0, 0) = 2.0; a(0, 1) = 0.0;
  a(1, 0) = 0.0; a(1, 1) = 4.0;
  const LUD lu(a);
  EXPECT_NEAR(lu.solve({2.0, 4.0})[0], 1.0, 1e-14);
  EXPECT_NEAR(lu.solve({6.0, 8.0})[1], 2.0, 1e-14);
}

TEST(DenseLU, ComplexSystem) {
  using cplx = std::complex<double>;
  MatrixC a(2, 2);
  a(0, 0) = {1.0, 1.0}; a(0, 1) = {0.0, -1.0};
  a(1, 0) = {2.0, 0.0}; a(1, 1) = {1.0, 0.0};
  const std::vector<cplx> xref{{1.0, -1.0}, {0.5, 2.0}};
  const auto b = a.multiply(xref);
  const LUC lu(a);
  const auto x = lu.solve(b);
  EXPECT_NEAR(std::abs(x[0] - xref[0]), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(x[1] - xref[1]), 0.0, 1e-12);
}

TEST(DenseLU, SolveSizeMismatchThrows) {
  MatrixD a(2, 2);
  a(0, 0) = a(1, 1) = 1.0;
  const LUD lu(a);
  EXPECT_THROW(lu.solve({1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace rlc::linalg
