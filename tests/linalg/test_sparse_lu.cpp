#include "rlc/linalg/sparse_lu.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "rlc/linalg/lu.hpp"

namespace rlc::linalg {
namespace {

CscMatrix dense_to_csc(const MatrixD& a) {
  std::vector<Triplet> t;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (a(i, j) != 0.0) {
        t.push_back({static_cast<int>(i), static_cast<int>(j), a(i, j)});
      }
    }
  }
  return CscMatrix::from_triplets(static_cast<int>(a.rows()),
                                  static_cast<int>(a.cols()), t);
}

TEST(SparseLU, Diagonal) {
  const auto m = CscMatrix::from_triplets(
      3, 3, {{0, 0, 2.0}, {1, 1, 4.0}, {2, 2, 8.0}});
  const SparseLU lu(m);
  const auto x = lu.solve({2.0, 4.0, 8.0});
  EXPECT_NEAR(x[0], 1.0, 1e-14);
  EXPECT_NEAR(x[1], 1.0, 1e-14);
  EXPECT_NEAR(x[2], 1.0, 1e-14);
}

TEST(SparseLU, RequiresPivoting) {
  // [[0, 1], [1, 0]]: structural zero on the first diagonal.
  const auto m =
      CscMatrix::from_triplets(2, 2, {{0, 1, 1.0}, {1, 0, 1.0}});
  const SparseLU lu(m);
  const auto x = lu.solve({3.0, 5.0});
  EXPECT_NEAR(x[0], 5.0, 1e-14);
  EXPECT_NEAR(x[1], 3.0, 1e-14);
}

TEST(SparseLU, SingularThrows) {
  const auto m = CscMatrix::from_triplets(
      2, 2, {{0, 0, 1.0}, {0, 1, 2.0}, {1, 0, 2.0}, {1, 1, 4.0}});
  EXPECT_THROW(SparseLU{m}, std::runtime_error);
}

TEST(SparseLU, SingularWithStaleDiagonalCandidateThrows) {
  // Regression: two identical rows (a contradictory ideal-voltage-source
  // loop in MNA form).  The diagonal-preference pivot check used to read a
  // stale x[k] from the previous column for a row OUTSIDE the current
  // pattern, silently "solving" this singular system.
  const auto m = CscMatrix::from_triplets(
      3, 3,
      {{0, 0, 1e-12}, {1, 0, 1.0}, {2, 0, 1.0}, {0, 1, 1.0}, {0, 2, 1.0}});
  EXPECT_THROW(SparseLU{m}, std::runtime_error);
}

TEST(SparseLU, StructurallySingularThrows) {
  // Empty column 1.
  const auto m = CscMatrix::from_triplets(2, 2, {{0, 0, 1.0}, {1, 0, 1.0}});
  EXPECT_THROW(SparseLU{m}, std::runtime_error);
}

TEST(SparseLU, MatchesDenseOnRandomSparseSystems) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> val(-2.0, 2.0);
  std::uniform_int_distribution<int> idx(0, 39);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 40;
    MatrixD a(n, n);
    for (int i = 0; i < n; ++i) a(i, i) = 4.0 + val(rng);
    for (int e = 0; e < 6 * n; ++e) a(idx(rng), idx(rng)) = val(rng);
    std::vector<double> xref(n);
    for (auto& v : xref) v = val(rng);
    const auto b = a.multiply(xref);

    const SparseLU slu(dense_to_csc(a));
    const auto xs = slu.solve(b);
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(xs[i], xref[i], 1e-8) << "trial " << trial << " i " << i;
    }
  }
}

TEST(SparseLU, LadderStructureLowFill) {
  // Tridiagonal ladder (the dominant structure in the RLC line circuits):
  // fill-in should stay essentially zero.
  const int n = 200;
  std::vector<Triplet> t;
  for (int i = 0; i < n; ++i) {
    t.push_back({i, i, 2.1});
    if (i > 0) t.push_back({i, i - 1, -1.0});
    if (i + 1 < n) t.push_back({i, i + 1, -1.0});
  }
  const auto m = CscMatrix::from_triplets(n, n, t);
  const SparseLU lu(m);
  EXPECT_LE(lu.l_nnz(), 2 * n);  // unit diag + one subdiagonal
  EXPECT_LE(lu.u_nnz(), 2 * n);
  // Spot-check the solve against a known vector.
  std::vector<double> xref(n, 1.0);
  const auto b = m.multiply(xref);
  const auto x = lu.solve(b);
  for (int i = 0; i < n; i += 17) EXPECT_NEAR(x[i], 1.0, 1e-10);
}

TEST(SparseLU, ThresholdPivotingStillAccurate) {
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  const int n = 30;
  MatrixD a(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) a(i, j) = val(rng);
    a(i, i) += 5.0;
  }
  std::vector<double> xref(n, 0.5);
  const auto b = a.multiply(xref);
  const SparseLU lu(dense_to_csc(a), /*pivot_tol=*/0.1);
  const auto x = lu.solve(b);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x[i], 0.5, 1e-8);
}

TEST(SparseLU, RefactorMatchesFreshFactorization) {
  std::mt19937 rng(17);
  std::uniform_real_distribution<double> val(-2.0, 2.0);
  const int n = 35;
  MatrixD a(n, n);
  for (int i = 0; i < n; ++i) {
    a(i, i) = 5.0 + val(rng);
    a(i, (i + 3) % n) = val(rng);
    a((i + 7) % n, i) = val(rng);
  }
  const auto m1 = dense_to_csc(a);
  SparseLU lu(m1);
  // Same pattern, new values.
  MatrixD b = a;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (b(i, j) != 0.0) b(i, j) *= (1.0 + 0.1 * val(rng));
    }
  }
  const auto m2 = dense_to_csc(b);
  ASSERT_EQ(m2.nnz(), m1.nnz());
  ASSERT_TRUE(lu.refactor(m2));
  std::vector<double> xref(n);
  for (auto& v : xref) v = val(rng);
  const auto rhs = b.multiply(xref);
  const auto x = lu.solve(rhs);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x[i], xref[i], 1e-8) << i;
}

TEST(SparseLU, RefactorRepeatedlyStaysAccurate) {
  // MNA usage pattern: many refactorizations of a drifting matrix.
  const int n = 60;
  std::vector<Triplet> t;
  for (int i = 0; i < n; ++i) {
    t.push_back({i, i, 3.0});
    if (i > 0) t.push_back({i, i - 1, -1.0});
    if (i + 1 < n) t.push_back({i, i + 1, -1.0});
  }
  auto m = CscMatrix::from_triplets(n, n, t);
  SparseLU lu(m);
  std::vector<double> xref(n, 1.0);
  for (int round = 1; round <= 20; ++round) {
    for (auto& v : m.values()) {
      if (v > 0.0) v = 3.0 + 0.05 * round;  // diagonal drift
    }
    ASSERT_TRUE(lu.refactor(m)) << round;
    const auto b = m.multiply(xref);
    const auto x = lu.solve(b);
    for (int i = 0; i < n; i += 13) EXPECT_NEAR(x[i], 1.0, 1e-10) << round;
  }
}

TEST(SparseLU, RefactorSignalsPivotCollapse) {
  // Factor with a healthy diagonal, then zero the entry the pivot order
  // relies on: refactor must refuse rather than divide by ~0.
  const auto m1 = CscMatrix::from_triplets(
      2, 2, {{0, 0, 4.0}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 4.0}});
  SparseLU lu(m1);
  const auto m2 = CscMatrix::from_triplets(
      2, 2, {{0, 0, 0.0}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 4.0}});
  EXPECT_FALSE(lu.refactor(m2));
}

TEST(SparseLU, RefactorSizeMismatchThrows) {
  const auto m = CscMatrix::from_triplets(2, 2, {{0, 0, 1.0}, {1, 1, 1.0}});
  SparseLU lu(m);
  const auto bad = CscMatrix::from_triplets(3, 3, {{0, 0, 1.0}, {1, 1, 1.0},
                                                   {2, 2, 1.0}});
  EXPECT_THROW(lu.refactor(bad), std::invalid_argument);
}

TEST(SparseLU, RejectsBadInputs) {
  const auto rect = CscMatrix::from_triplets(2, 3, {{0, 0, 1.0}});
  EXPECT_THROW(SparseLU{rect}, std::invalid_argument);
  const auto ok = CscMatrix::from_triplets(1, 1, {{0, 0, 1.0}});
  EXPECT_THROW(SparseLU(ok, 0.0), std::invalid_argument);
  EXPECT_THROW(SparseLU(ok, 1.5), std::invalid_argument);
  const SparseLU lu(ok);
  EXPECT_THROW(lu.solve({1.0, 2.0}), std::invalid_argument);
}

}  // namespace
}  // namespace rlc::linalg
