#include "rlc/svc/router.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

namespace rlc::svc {
namespace {

/// A spread of distinct query keys: both technologies over the inductance
/// range, with a few engine/threshold variants mixed in.
std::vector<QueryRequest> distinct_requests(int n) {
  std::vector<QueryRequest> reqs;
  reqs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    QueryRequest q;
    q.technology = (i % 2 == 0) ? "250nm" : "100nm";
    q.l = 5.0e-6 * i / std::max(n - 1, 1);
    if (i % 7 == 3) q.with_exact_delay = true;
    reqs.push_back(q);
  }
  return reqs;
}

TEST(Placement, InRangeAndDeterministic) {
  // The placement function is pure: same (hash, shards) -> same shard, on
  // every call, for any shard count.
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (int trial = 0; trial < 1000; ++trial) {
    h = h * 6364136223846793005ULL + 1442695040888963407ULL;
    for (std::size_t shards : {1u, 2u, 3u, 5u, 8u, 16u, 64u}) {
      const std::size_t first = ShardRouter::placement(h, shards);
      EXPECT_LT(first, shards);
      EXPECT_EQ(ShardRouter::placement(h, shards), first);
    }
  }
}

TEST(Placement, ZeroAndOneShardAlwaysLandOnShardZero) {
  EXPECT_EQ(ShardRouter::placement(123456789ULL, 0), 0u);
  EXPECT_EQ(ShardRouter::placement(123456789ULL, 1), 0u);
}

TEST(Placement, SpreadsKeysAcrossShards) {
  // Not a statistical test — just that no shard is starved or hogged
  // outrageously for a well-mixed key stream.
  const std::size_t shards = 8;
  std::vector<int> counts(shards, 0);
  std::uint64_t h = 1;
  const int keys = 8000;
  for (int i = 0; i < keys; ++i) {
    h = h * 6364136223846793005ULL + 1442695040888963407ULL;
    ++counts[ShardRouter::placement(h, shards)];
  }
  for (std::size_t s = 0; s < shards; ++s) {
    EXPECT_GT(counts[s], keys / static_cast<int>(shards) / 2) << "shard " << s;
    EXPECT_LT(counts[s], keys * 2 / static_cast<int>(shards)) << "shard " << s;
  }
}

TEST(Placement, GrowingTheShardCountOnlyMovesKeysToTheNewShard) {
  // The jump-consistent-hash contract: going from S to S+1 shards, a key
  // either stays where it was or moves to the NEW shard — and only about
  // 1/(S+1) of keys move.  This is why a resized deployment keeps its warm
  // caches.
  std::uint64_t h = 42;
  const int keys = 10000;
  for (std::size_t s : {2u, 4u, 8u}) {
    int moved = 0;
    std::uint64_t x = h;
    for (int i = 0; i < keys; ++i) {
      x = x * 6364136223846793005ULL + 1442695040888963407ULL;
      const std::size_t before = ShardRouter::placement(x, s);
      const std::size_t after = ShardRouter::placement(x, s + 1);
      if (after != before) {
        EXPECT_EQ(after, s) << "a moved key must land on the new shard";
        ++moved;
      }
    }
    const double frac = static_cast<double>(moved) / keys;
    EXPECT_LT(frac, 2.0 / static_cast<double>(s + 1)) << "shards " << s;
    EXPECT_GT(frac, 0.0) << "shards " << s;
  }
}

TEST(Router, ShardOfIsStableAcrossRouterInstances) {
  const auto reqs = distinct_requests(32);
  RouterOptions opts;
  opts.shards = 4;
  opts.threads_per_shard = 1;
  opts.cache_capacity = 0;
  ShardRouter a(opts);
  ShardRouter b(opts);
  for (const QueryRequest& q : reqs) {
    EXPECT_EQ(a.shard_of(q), b.shard_of(q));
    EXPECT_LT(a.shard_of(q), a.shards());
  }
}

TEST(Router, ZeroShardsIsPromotedToOne) {
  RouterOptions opts;
  opts.shards = 0;
  opts.threads_per_shard = 1;
  ShardRouter r(opts);
  EXPECT_EQ(r.shards(), 1u);
  EXPECT_EQ(r.threads(), 1u);
}

TEST(Router, ThreadsSumsTheShardPools) {
  RouterOptions opts;
  opts.shards = 3;
  opts.threads_per_shard = 2;
  ShardRouter r(opts);
  EXPECT_EQ(r.threads(), 6u);
}

TEST(Router, SameKeyHitsTheSameShardCache) {
  RouterOptions opts;
  opts.shards = 4;
  opts.threads_per_shard = 1;
  opts.cache_capacity = 64;
  ShardRouter r(opts);

  QueryRequest q;
  q.l = 2.0e-6;
  const std::size_t home = r.shard_of(q);

  const auto cold = r.submit(q);
  ASSERT_TRUE(cold.is_ok()) << cold.status().to_string();
  EXPECT_FALSE(cold->from_cache);
  const auto warm = r.submit(q);
  ASSERT_TRUE(warm.is_ok());
  EXPECT_TRUE(warm->from_cache);
  EXPECT_TRUE(warm->same_answer(*cold));

  // All traffic for the key went to its home shard; the others never saw
  // the request at all.
  for (std::size_t s = 0; s < r.shards(); ++s) {
    const auto stats = r.shard(s).cache_stats();
    if (s == home) {
      EXPECT_EQ(stats.hits, 1u);
      EXPECT_EQ(stats.misses, 1u);
    } else {
      EXPECT_EQ(stats.hits + stats.misses, 0u) << "shard " << s;
    }
  }
}

TEST(Router, SubmitBatchMatchesSerialSubmitBitForBit) {
  const auto reqs = distinct_requests(24);

  RouterOptions serial_opts;
  serial_opts.shards = 1;
  serial_opts.threads_per_shard = 1;
  serial_opts.cache_capacity = 0;
  ShardRouter serial(serial_opts);
  std::vector<QueryResult> expected;
  for (const QueryRequest& q : reqs) {
    auto r = serial.submit(q);
    ASSERT_TRUE(r.is_ok()) << r.status().to_string();
    expected.push_back(*r);
  }

  for (const std::size_t shards : {std::size_t{2}, std::size_t{5}}) {
    RouterOptions opts;
    opts.shards = shards;
    opts.threads_per_shard = 2;
    opts.cache_capacity = 64;
    ShardRouter r(opts);
    const auto batch = r.submit_batch(reqs);
    ASSERT_EQ(batch.size(), reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      ASSERT_TRUE(batch[i].is_ok())
          << "shards=" << shards << " i=" << i << ": "
          << batch[i].status().to_string();
      EXPECT_TRUE(batch[i]->same_answer(expected[i]))
          << "shards=" << shards << " i=" << i;
    }
  }
}

TEST(Router, BatchWithInvalidElementKeepsSlotAlignment) {
  // A typed per-request failure stays in its slot; neighbours answer.
  std::vector<QueryRequest> reqs = distinct_requests(6);
  reqs[2].threshold = 2.0;  // invalid
  RouterOptions opts;
  opts.shards = 3;
  opts.threads_per_shard = 1;
  ShardRouter r(opts);
  const auto out = r.submit_batch(reqs);
  ASSERT_EQ(out.size(), reqs.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (i == 2) {
      EXPECT_EQ(out[i].status().code(), StatusCode::kInvalidArgument);
    } else {
      EXPECT_TRUE(out[i].is_ok()) << i << ": " << out[i].status().to_string();
    }
  }
}

TEST(Router, EmptyBatchIsEmpty) {
  ShardRouter r(RouterOptions{2, 1, 0});
  EXPECT_TRUE(r.submit_batch({}).empty());
}

}  // namespace
}  // namespace rlc::svc
