#include "rlc/svc/session.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "rlc/core/optimize_api.hpp"
#include "rlc/io/json_reader.hpp"
#include "rlc/obs/metrics.hpp"
#include "rlc/scenario/registry.hpp"
#include "rlc/scenario/spec.hpp"

namespace rlc::svc {
namespace {

/// A representative coupled request: 30% capacitive + 0.3 inductive
/// coupling at the paper's 1 nH/mm operating point.
QueryRequest coupled_request(const char* tech, int conductors) {
  QueryRequest q;
  q.technology = tech;
  q.l = 1.0e-6;
  q.n_conductors = conductors;
  q.coupling_cc =
      0.3 * scenario::technology_by_name(tech).line(q.l).c;
  q.coupling_km = 0.3;
  return q;
}

/// The workload of the determinism tests: both technologies over the
/// paper's inductance range, a couple of exact-engine and total-delay
/// variants mixed in.
std::vector<QueryRequest> grid_requests() {
  std::vector<QueryRequest> reqs;
  for (const char* tech : {"250nm", "100nm"}) {
    for (int i = 0; i < 8; ++i) {
      QueryRequest q;
      q.technology = tech;
      q.l = 5.0e-6 * i / 7;
      reqs.push_back(q);
    }
  }
  QueryRequest exact;
  exact.with_exact_delay = true;
  exact.l = 2.0e-6;
  reqs.push_back(exact);
  QueryRequest total;
  total.l = 1.0e-6;
  total.line_length = 0.01;
  reqs.push_back(total);
  // Coupled-bus variants: plain 2- and 3-wire queries plus one
  // noise-constrained solve, so batch determinism covers the coupled path.
  reqs.push_back(coupled_request("100nm", 2));
  reqs.push_back(coupled_request("250nm", 3));
  QueryRequest constrained = coupled_request("100nm", 2);
  constrained.noise_vmax = 0.12;
  reqs.push_back(constrained);
  // Power-objective variant, so batch determinism covers the power path.
  QueryRequest power;
  power.objective = "power";
  power.l = 1.0e-6;
  power.delay_slack_eps = 0.10;
  reqs.push_back(power);
  return reqs;
}

TEST(Session, SubmitAnswersAQuery) {
  Session session(SessionOptions{1, 0});
  QueryRequest q;
  q.l = 2.0e-6;
  const rlc::StatusOr<QueryResult> r = session.submit(q);
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_GT(r->h, 0.0);
  EXPECT_GT(r->k, 0.0);
  EXPECT_GT(r->delay_per_length, 0.0);
  EXPECT_NEAR(r->delay_per_length, r->tau / r->h, 1e-22);
  EXPECT_FALSE(r->from_cache);
}

TEST(Session, TotalDelayScalesWithLineLength) {
  Session session(SessionOptions{1, 0});
  QueryRequest q;
  q.l = 1.0e-6;
  q.line_length = 0.01;
  const auto r = session.submit(q);
  ASSERT_TRUE(r.is_ok());
  EXPECT_NEAR(r->total_delay, r->delay_per_length * 0.01, 1e-22);
}

TEST(Session, PowerObjectiveCarriesThePowerBlock) {
  Session session(SessionOptions{1, 0});
  QueryRequest q;
  q.objective = "power";
  q.l = 1.0e-6;
  q.delay_slack_eps = 0.05;
  const auto r = session.submit(q);
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  ASSERT_TRUE(r->has_power);
  EXPECT_GT(r->power_total, 0.0);
  EXPECT_NEAR(r->power_total,
              r->power_dynamic + r->power_short_circuit + r->power_leakage,
              1e-12 * r->power_total);
  // The slack bound holds and the slack bought real power.
  EXPECT_LE(r->delay_per_length, 1.05 * r->delay_ref * (1.0 + 1e-9));
  EXPECT_LT(r->power_total, r->power_ref);
  EXPECT_TRUE(r->power_constraint_active);
  // Session is a thin wrapper: the answer is bitwise core::optimize's.
  core::OptimizeRequest oreq;
  oreq.objective = core::Objective::kPower;
  oreq.l = q.l;
  oreq.constraints.delay_slack_eps = q.delay_slack_eps;
  const auto direct = core::optimize(
      scenario::technology_by_name(q.technology), oreq);
  ASSERT_TRUE(direct.is_ok());
  EXPECT_EQ(r->h, direct->sizing.h);
  EXPECT_EQ(r->k, direct->sizing.k);
  EXPECT_EQ(r->power_total, direct->power.total());
}

// The wire pin of the objective extension: a scalar query with the
// objective omitted answers byte-identically (same to_json bytes, modulo
// delivery metadata) to one that spells objective "delay" — and carries no
// power block at all.
TEST(Session, OmittedObjectiveIsByteIdenticalOnTheWire) {
  const char* base = "{\"technology\": \"100nm\", \"l\": 2e-06}";
  const char* explicit_delay =
      "{\"technology\": \"100nm\", \"l\": 2e-06, \"objective\": \"delay\"}";
  const auto qa = QueryRequest::from_json(io::parse_json(base));
  const auto qb = QueryRequest::from_json(io::parse_json(explicit_delay));
  ASSERT_TRUE(qa.is_ok());
  ASSERT_TRUE(qb.is_ok());
  EXPECT_EQ(*qa, *qb);
  EXPECT_EQ(qa->cache_key(), qb->cache_key());

  Session sa(SessionOptions{1, 0});
  Session sb(SessionOptions{1, 0});
  auto ra = sa.submit(*qa);
  auto rb = sb.submit(*qb);
  ASSERT_TRUE(ra.is_ok());
  ASSERT_TRUE(rb.is_ok());
  // Strip delivery metadata (timing differs run to run), then compare the
  // rendered wire bytes exactly.
  ra->wall_seconds = rb->wall_seconds = 0.0;
  EXPECT_EQ(ra->to_json().str(), rb->to_json().str());
  EXPECT_EQ(ra->to_json().str().find("power"), std::string::npos);
}

TEST(Session, BatchMatchesSerialBitForBitAcrossThreadCounts) {
  const std::vector<QueryRequest> reqs = grid_requests();

  // Reference: serial single-shot submits, caching off.
  Session serial(SessionOptions{1, 0});
  std::vector<QueryResult> expected;
  for (const QueryRequest& q : reqs) {
    rlc::StatusOr<QueryResult> r = serial.submit(q);
    ASSERT_TRUE(r.is_ok()) << r.status().to_string();
    expected.push_back(*r);
  }

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    Session session(SessionOptions{threads, 1024});
    const auto batch = session.submit_batch(reqs);
    ASSERT_EQ(batch.size(), reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      ASSERT_TRUE(batch[i].is_ok())
          << "threads=" << threads << " i=" << i << ": "
          << batch[i].status().to_string();
      EXPECT_TRUE(batch[i]->same_answer(expected[i]))
          << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(Session, BatchGroupsDuplicateKeysThroughTheCache) {
  // A batch with repeated cache keys: each distinct key solves exactly once
  // (the leader pass), every duplicate is served from the cache the leaders
  // filled, the svc.batch.grouped counter records the follower count, and
  // the grouping is deterministic for any pool size because it follows
  // request order.
  std::vector<QueryRequest> reqs;
  for (int rep = 0; rep < 3; ++rep) {
    for (int i = 0; i < 4; ++i) {
      QueryRequest q;
      q.l = 1.0e-6 * i;
      reqs.push_back(q);
    }
  }
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    Session session(SessionOptions{threads, 256});
    const auto before = obs::Registry::global().snapshot();
    const auto batch = session.submit_batch(reqs);
    const auto grouped =
        obs::Registry::global().snapshot().delta_since(before);
    ASSERT_EQ(batch.size(), reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      ASSERT_TRUE(batch[i].is_ok()) << i;
      // First occurrence of each key is the cold leader; the two repeats
      // are cache hits — exactly as serial submission would have flagged.
      EXPECT_EQ(batch[i]->from_cache, i >= 4u) << "threads=" << threads
                                               << " i=" << i;
      EXPECT_TRUE(batch[i]->same_answer(*batch[i % 4]))
          << "threads=" << threads << " i=" << i;
    }
    const auto stats = session.cache_stats();
    EXPECT_EQ(stats.misses, 4u);
    EXPECT_EQ(stats.hits, 8u);
    std::int64_t grouped_count = -1;
    for (const auto& [name, value] : grouped.counters) {
      if (name == "svc.batch.grouped") grouped_count = value;
    }
    EXPECT_EQ(grouped_count, 8) << "threads=" << threads;
  }
}

TEST(Session, CacheHitsServeTheSameAnswer) {
  Session session(SessionOptions{1, 64});
  QueryRequest q;
  q.l = 2.0e-6;
  const auto cold = session.submit(q);
  ASSERT_TRUE(cold.is_ok());
  EXPECT_FALSE(cold->from_cache);
  const auto warm = session.submit(q);
  ASSERT_TRUE(warm.is_ok());
  EXPECT_TRUE(warm->from_cache);
  EXPECT_TRUE(warm->same_answer(*cold));
  const auto stats = session.cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);

  // A result-affecting change is a different entry...
  QueryRequest q2 = q;
  q2.threshold = 0.4;
  const auto other = session.submit(q2);
  ASSERT_TRUE(other.is_ok());
  EXPECT_FALSE(other->from_cache);
  EXPECT_FALSE(other->same_answer(*cold));

  // ...and clear_cache invalidates: the next submit recomputes.
  session.clear_cache();
  const auto recomputed = session.submit(q);
  ASSERT_TRUE(recomputed.is_ok());
  EXPECT_FALSE(recomputed->from_cache);
  EXPECT_TRUE(recomputed->same_answer(*cold));
}

TEST(Session, DeadlineZeroReturnsDeadlineExceededWithoutWork) {
  Session session(SessionOptions{1, 64});
  QueryRequest q;
  q.l = 2.0e-6;
  q.deadline_seconds = 0.0;
  const auto r = session.submit(q);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  // No partial write: the cache never saw the request.
  EXPECT_EQ(session.cache_stats().hits + session.cache_stats().misses, 0u);
  // The same request with the deadline lifted computes normally (the
  // deadline is not part of the cache key, so nothing stale can surface).
  q.deadline_seconds = Session::kNoDeadline;
  const auto ok = session.submit(q);
  ASSERT_TRUE(ok.is_ok()) << ok.status().to_string();
  EXPECT_FALSE(ok->from_cache);
}

TEST(Session, TinyDeadlineExpiresDuringTheRequest) {
  // A 1 ns budget can expire before the solve starts or at the first
  // checkpoint inside it; either way the typed code is the same and no
  // partial result leaks out.
  Session session(SessionOptions{1, 0});
  QueryRequest q;
  q.l = 2.0e-6;
  q.with_exact_delay = true;
  q.deadline_seconds = 1.0e-9;
  const auto r = session.submit(q);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(Session, PreCancelledTokenShortCircuits) {
  Session session(SessionOptions{1, 64});
  CancelSource src;
  src.request_cancel();
  QueryRequest q;
  q.l = 2.0e-6;
  const auto r = session.submit(q, src.token());
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(session.cache_stats().hits + session.cache_stats().misses, 0u);
}

TEST(Session, MidBatchCancellationStopsCleanly) {
  // Cancel from another thread while a batch is in flight: every element
  // must come back either ok or cancelled — no crash, no torn result, and
  // (under TSan) no race.  Which elements finish is timing-dependent by
  // design; only the outcome set is pinned.
  Session session(SessionOptions{4, 0});
  std::vector<QueryRequest> reqs;
  for (int i = 0; i < 64; ++i) {
    QueryRequest q;
    q.l = 5.0e-6 * i / 63;
    q.with_exact_delay = true;  // slow enough for the cancel to land inside
    reqs.push_back(q);
  }
  CancelSource src;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    src.request_cancel();
  });
  const auto results = session.submit_batch(reqs, src.token());
  canceller.join();
  ASSERT_EQ(results.size(), reqs.size());
  int cancelled = 0;
  for (const auto& r : results) {
    if (r.is_ok()) {
      EXPECT_GT(r->delay_per_length, 0.0);
    } else {
      EXPECT_EQ(r.status().code(), StatusCode::kCancelled)
          << r.status().to_string();
      ++cancelled;
    }
  }
  // 64 exact-engine solves on 4 threads take far longer than 5 ms, so at
  // least the tail of the batch must have been cancelled.
  EXPECT_GT(cancelled, 0);
}

TEST(Session, CoupledQueryCarriesExactVictimNoise) {
  Session session(SessionOptions{1, 0});
  const QueryRequest q = coupled_request("100nm", 2);
  const auto r = session.submit(q);
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_TRUE(r->has_noise);
  EXPECT_GT(r->peak_noise, 0.0);
  EXPECT_LT(r->peak_noise, 1.0);
  EXPECT_GT(r->noise_width, 0.0);
  EXPECT_FALSE(r->constraint_active);

  // The quiet-neighbour effective line is heavier than the bare line, so
  // the coupled sizing must differ from the scalar answer.
  QueryRequest scalar;
  scalar.technology = q.technology;
  scalar.l = q.l;
  const auto s = session.submit(scalar);
  ASSERT_TRUE(s.is_ok());
  EXPECT_FALSE(s->has_noise);
  EXPECT_NE(r->h, s->h);
  EXPECT_NE(r->delay_per_length, s->delay_per_length);

  // A wider bus doubles the quiet-neighbour Miller load: different answer,
  // different cache entry.
  const auto wide = session.submit(coupled_request("100nm", 3));
  ASSERT_TRUE(wide.is_ok());
  EXPECT_NE(wide->h, r->h);
}

TEST(Session, NoiseConstrainedQueryMeetsTheBudget) {
  Session session(SessionOptions{1, 0});
  const QueryRequest free_q = coupled_request("100nm", 2);
  const auto free_r = session.submit(free_q);
  ASSERT_TRUE(free_r.is_ok()) << free_r.status().to_string();
  ASSERT_GT(free_r->peak_noise, 0.0);

  // Budget below the unconstrained peak: the active-set solve must bind,
  // meet the budget, and upsize the repeaters to get there.
  QueryRequest tight = free_q;
  tight.noise_vmax = 0.6 * free_r->peak_noise;
  const auto tight_r = session.submit(tight);
  ASSERT_TRUE(tight_r.is_ok()) << tight_r.status().to_string();
  EXPECT_TRUE(tight_r->constraint_active);
  EXPECT_TRUE(tight_r->has_noise);
  EXPECT_LE(tight_r->peak_noise, tight.noise_vmax * (1.0 + 1e-6));
  EXPECT_GT(tight_r->k, free_r->k);
  EXPECT_GE(tight_r->delay_per_length, free_r->delay_per_length);

  // A budget above the free-running peak is inactive: bit-identical sizing.
  QueryRequest loose = free_q;
  loose.noise_vmax = 2.0 * free_r->peak_noise;
  const auto loose_r = session.submit(loose);
  ASSERT_TRUE(loose_r.is_ok()) << loose_r.status().to_string();
  EXPECT_FALSE(loose_r->constraint_active);
  EXPECT_EQ(loose_r->h, free_r->h);
  EXPECT_EQ(loose_r->k, free_r->k);
  EXPECT_EQ(loose_r->peak_noise, free_r->peak_noise);
}

TEST(Session, InvalidRequestAndUnknownTechnologyAreTypedErrors) {
  Session session(SessionOptions{1, 0});
  QueryRequest bad;
  bad.threshold = 2.0;
  EXPECT_EQ(session.submit(bad).status().code(),
            StatusCode::kInvalidArgument);
  QueryRequest unknown;
  unknown.technology = "7nm_finfet_magic";
  EXPECT_EQ(session.submit(unknown).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Session, RunScenarioHonorsRegistryAndDeadline) {
  Session session(SessionOptions{2, 0});
  scenario::ScenarioSpec spec;
  spec.scenario = "does_not_exist";
  EXPECT_EQ(session.run_scenario(spec).status().code(),
            StatusCode::kNotFound);

  const scenario::Scenario* fig5 =
      scenario::ScenarioRegistry::global().find("fig5");
  ASSERT_NE(fig5, nullptr);
  scenario::ScenarioSpec quick = scenario::quick_spec(fig5->defaults);

  EXPECT_EQ(session.run_scenario(quick, 0.0).status().code(),
            StatusCode::kDeadlineExceeded);

  const auto r = session.run_scenario(quick);
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_EQ(r->name, "fig5");
  EXPECT_FALSE(r->tables.empty());
}

}  // namespace
}  // namespace rlc::svc
