/// \file test_server.cpp
/// Concurrency and fault-injection suite for the epoll EventLoopServer.
/// Every test runs a real server on a real Unix socket in-process, with
/// real client sockets misbehaving in controlled ways: interleaved
/// multi-client traffic, byte-at-a-time writes, mid-line disconnects,
/// half-close with a buffered tail, slow-loris stalls, backpressure, and
/// graceful drain with requests in flight.  All of it must also be
/// TSan-clean (the CI tsan job runs this binary).

#include "rlc/svc/server.hpp"

#include <gtest/gtest.h>

#if defined(__linux__)

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "rlc/io/json_reader.hpp"

namespace rlc::svc {
namespace {

std::string unique_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/rlc_test_server_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

/// Runs an EventLoopServer on its own thread for the duration of a test.
class ServerHarness {
 public:
  explicit ServerHarness(ServerOptions opts) : path_(unique_socket_path()) {
    server_ = std::make_unique<EventLoopServer>(opts);
    const rlc::Status st = server_->listen_unix(path_);
    if (!st.is_ok()) {
      ADD_FAILURE() << "listen_unix: " << st.to_string();
      return;
    }
    // The socket accepts connections as soon as listen_unix returns (the
    // backlog queues them until the loop starts accepting).
    thread_ = std::thread([this] { serve_status_ = server_->serve(); });
  }

  ~ServerHarness() {
    stop();
    ::unlink(path_.c_str());
  }

  /// Drain and join; returns the serve() status.
  rlc::Status stop() {
    if (thread_.joinable()) {
      server_->request_drain();
      thread_.join();
    }
    return serve_status_;
  }

  const std::string& path() const { return path_; }
  EventLoopServer& server() { return *server_; }

 private:
  std::string path_;
  std::unique_ptr<EventLoopServer> server_;
  std::thread thread_;
  rlc::Status serve_status_ = rlc::Status::ok();
};

/// A blocking client socket with line-oriented reads and a receive timeout
/// (so a server bug shows up as a test failure, not a CI hang).
class TestClient {
 public:
  explicit TestClient(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
    timeval tv{};
    tv.tv_sec = 30;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }

  ~TestClient() { close(); }

  bool ok() const { return fd_ >= 0; }

  bool send_all(const std::string& data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Next response line, or empty on EOF/timeout.
  std::string read_line() {
    for (;;) {
      const std::size_t nl = pending_.find('\n');
      if (nl != std::string::npos) {
        std::string line = pending_.substr(0, nl);
        pending_.erase(0, nl + 1);
        return line;
      }
      char buf[4096];
      const ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return "";
      pending_.append(buf, static_cast<std::size_t>(n));
    }
  }

  /// Read until EOF; returns all complete lines seen (including ones
  /// already buffered).
  std::vector<std::string> read_all_lines() {
    std::vector<std::string> lines;
    for (;;) {
      std::string line = read_line();
      if (line.empty()) break;
      lines.push_back(std::move(line));
    }
    return lines;
  }

  void half_close() { ::shutdown(fd_, SHUT_WR); }

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
  std::string pending_;
};

/// The echoed numeric id of a response line, or -1.
long long response_id(const std::string& line) {
  try {
    const io::JsonValue v = io::parse_json(line);
    if (const io::JsonValue* id = v.find("id");
        id && id->kind() == io::JsonValue::Kind::kNumber) {
      return static_cast<long long>(id->as_number());
    }
  } catch (const std::exception&) {
  }
  return -1;
}

std::string response_status(const std::string& line) {
  try {
    return io::parse_json(line).string_or("status", "");
  } catch (const std::exception&) {
    return "";
  }
}

std::string ping(long long id) {
  return "{\"op\":\"ping\",\"id\":" + std::to_string(id) + "}\n";
}

std::string query(long long id, double l, const char* tech = "100nm") {
  return "{\"op\":\"query\",\"id\":" + std::to_string(id) +
         ",\"technology\":\"" + tech + "\",\"l\":" + std::to_string(l) +
         "}\n";
}

ServerOptions small_server(std::size_t shards = 2) {
  ServerOptions opts;
  opts.shards = shards;
  opts.threads_per_shard = 1;
  opts.cache_capacity = 256;
  return opts;
}

// ---------------------------------------------------------------------------
// Multi-client ordering and isolation

TEST(EventLoopServer, ConcurrentClientsSeeTheirOwnResponsesInOrder) {
  // N clients interleave pings and queries concurrently.  Each client must
  // get exactly its own responses (ids are namespaced per client), in its
  // own request order, regardless of how the loop interleaves the reads
  // and which shard answers.
  ServerHarness h(small_server());
  constexpr int kClients = 8;
  constexpr int kPerClient = 24;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      TestClient cl(h.path());
      if (!cl.ok()) {
        ++failures;
        return;
      }
      for (int k = 0; k < kPerClient; ++k) {
        const long long id = c * 1000 + k;
        // Mix cheap inline ops with dispatched queries, and repeat keys so
        // shard caches are exercised across clients.
        const std::string req =
            (k % 3 == 0) ? ping(id) : query(id, 1.0e-6 * (k % 5));
        if (!cl.send_all(req)) {
          ++failures;
          return;
        }
      }
      for (int k = 0; k < kPerClient; ++k) {
        const std::string line = cl.read_line();
        if (line.empty() || response_id(line) != c * 1000 + k ||
            response_status(line) != "ok") {
          ADD_FAILURE() << "client " << c << " response " << k << ": "
                        << line;
          ++failures;
          return;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(h.stop().is_ok());
  const EventLoopServer::Stats stats = h.server().stats();
  EXPECT_EQ(stats.requests,
            static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_EQ(stats.responses,
            static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_EQ(stats.connections_accepted,
            static_cast<std::uint64_t>(kClients));
}

TEST(EventLoopServer, SameKeyFromDifferentClientsWarmsOneShardCache) {
  // Shard-routing determinism observed through the socket: the same query
  // key, sent by different connections, must land on the same shard and
  // hit its cache; the home shard is the one shard_of computes.
  ServerHarness h(small_server(4));
  QueryRequest probe;
  probe.technology = "250nm";
  probe.l = 2.0e-6;
  const std::size_t home = h.server().router().shard_of(probe);
  const std::string req = "{\"op\":\"query\",\"id\":1,\"technology\":"
                          "\"250nm\",\"l\":2e-06}\n";
  for (int c = 0; c < 3; ++c) {
    TestClient cl(h.path());
    ASSERT_TRUE(cl.ok());
    ASSERT_TRUE(cl.send_all(req));
    const std::string line = cl.read_line();
    EXPECT_EQ(response_status(line), "ok") << line;
  }
  EXPECT_TRUE(h.stop().is_ok());
  for (std::size_t s = 0; s < h.server().router().shards(); ++s) {
    const auto stats = h.server().router().shard(s).cache_stats();
    if (s == home) {
      EXPECT_EQ(stats.misses, 1u);
      EXPECT_EQ(stats.hits, 2u);
    } else {
      EXPECT_EQ(stats.hits + stats.misses, 0u) << "shard " << s;
    }
  }
}

// ---------------------------------------------------------------------------
// Framing under adversarial transport behaviour

TEST(EventLoopServer, ByteAtATimeWritesAreFramedCorrectly) {
  ServerHarness h(small_server());
  TestClient cl(h.path());
  ASSERT_TRUE(cl.ok());
  const std::string req = ping(7) + query(8, 2.0e-6);
  for (char ch : req) {
    ASSERT_TRUE(cl.send_all(std::string(1, ch)));
    // A short stall between bytes forces the loop through distinct reads.
    if (ch == ':' || ch == ',') {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  const std::string first = cl.read_line();
  EXPECT_EQ(response_id(first), 7) << first;
  EXPECT_EQ(response_status(first), "ok");
  const std::string second = cl.read_line();
  EXPECT_EQ(response_id(second), 8) << second;
  EXPECT_EQ(response_status(second), "ok");
  EXPECT_TRUE(h.stop().is_ok());
}

TEST(EventLoopServer, MidLineDisconnectDoesNotDisturbOtherClients) {
  ServerHarness h(small_server());
  {
    TestClient vandal(h.path());
    ASSERT_TRUE(vandal.ok());
    ASSERT_TRUE(vandal.send_all("{\"op\":\"query\",\"technolo"));
    vandal.close();  // full close mid-line: the request never completes
  }
  // The server must shrug: a fresh client gets served normally.
  TestClient cl(h.path());
  ASSERT_TRUE(cl.ok());
  ASSERT_TRUE(cl.send_all(ping(1)));
  const std::string line = cl.read_line();
  EXPECT_EQ(response_id(line), 1) << line;
  EXPECT_EQ(response_status(line), "ok");
  EXPECT_TRUE(h.stop().is_ok());
}

TEST(EventLoopServer, HalfCloseServesTheBufferedTailThenEof) {
  // The client shoves several requests down, the last one UNTERMINATED,
  // then half-closes.  getline semantics: the tail is still a request.
  // Every response must come back, then EOF.
  ServerHarness h(small_server());
  TestClient cl(h.path());
  ASSERT_TRUE(cl.ok());
  std::string burst = ping(0) + query(1, 1.0e-6) + query(2, 2.0e-6);
  burst += "{\"op\":\"ping\",\"id\":3}";  // no trailing newline
  ASSERT_TRUE(cl.send_all(burst));
  cl.half_close();
  const std::vector<std::string> lines = cl.read_all_lines();
  ASSERT_EQ(lines.size(), 4u);
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(response_id(lines[k]), k) << lines[k];
    EXPECT_EQ(response_status(lines[k]), "ok") << lines[k];
  }
  EXPECT_TRUE(h.stop().is_ok());
}

TEST(EventLoopServer, MalformedLinesGetTypedErrorsInSequence) {
  ServerHarness h(small_server());
  TestClient cl(h.path());
  ASSERT_TRUE(cl.ok());
  ASSERT_TRUE(cl.send_all("this is not json\n" + ping(1) +
                          "{\"op\":\"warp_drive\",\"id\":2}\n"));
  const std::string e1 = cl.read_line();
  EXPECT_EQ(response_status(e1), "invalid_argument") << e1;
  const std::string p = cl.read_line();
  EXPECT_EQ(response_id(p), 1) << p;
  EXPECT_EQ(response_status(p), "ok");
  const std::string e2 = cl.read_line();
  EXPECT_EQ(response_id(e2), 2) << e2;
  EXPECT_EQ(response_status(e2), "invalid_argument");
  EXPECT_TRUE(h.stop().is_ok());
}

TEST(EventLoopServer, OversizedLineIsRejectedAndConnectionClosed) {
  ServerOptions opts = small_server();
  opts.max_line_bytes = 1024;
  ServerHarness h(opts);
  TestClient cl(h.path());
  ASSERT_TRUE(cl.ok());
  ASSERT_TRUE(cl.send_all(std::string(4096, 'a')));  // no newline, > max
  const std::string line = cl.read_line();
  EXPECT_EQ(response_status(line), "invalid_argument") << line;
  EXPECT_EQ(cl.read_line(), "");  // server closed the connection
  EXPECT_TRUE(h.stop().is_ok());
  EXPECT_GE(h.server().stats().oversized_lines, 1u);
}

// ---------------------------------------------------------------------------
// Slow clients, backpressure, drain

TEST(EventLoopServer, SlowLorisDoesNotBlockOtherClients) {
  // One client dribbles a never-finished request and goes quiet; others
  // must be served promptly the whole time.
  ServerHarness h(small_server());
  TestClient loris(h.path());
  ASSERT_TRUE(loris.ok());
  ASSERT_TRUE(loris.send_all("{\"op\":\"que"));  // ...and stall forever
  const auto t0 = std::chrono::steady_clock::now();
  for (int k = 0; k < 5; ++k) {
    TestClient cl(h.path());
    ASSERT_TRUE(cl.ok());
    ASSERT_TRUE(cl.send_all(ping(k)));
    const std::string line = cl.read_line();
    EXPECT_EQ(response_id(line), k) << line;
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(seconds, 10.0) << "other clients were starved";
  EXPECT_TRUE(h.stop().is_ok());
}

TEST(EventLoopServer, BackpressurePausesReadsAndEveryResponseStillArrives) {
  // Tiny watermarks + a client that sends a storm before reading anything:
  // the server must stop reading the flooding connection (bounded memory)
  // and still deliver every response once the client starts draining.
  ServerOptions opts = small_server(1);
  opts.write_high_watermark = 2048;
  opts.write_low_watermark = 512;
  ServerHarness h(opts);
  TestClient cl(h.path());
  ASSERT_TRUE(cl.ok());
  // ~100 KB of requests producing ~350 KB of responses: more than the
  // kernel socket buffers hold, so with the client not yet reading, the
  // server's write buffer must cross the (tiny) high watermark and pause.
  // The whole burst fits in the kernel receive buffer plus whatever the
  // server consumed before pausing, so this send never blocks.
  constexpr int kPings = 4000;
  std::string storm;
  for (int k = 0; k < kPings; ++k) storm += ping(k);
  ASSERT_TRUE(cl.send_all(storm));
  // Now drain: every response, in order, despite the pause/resume cycles.
  int got = 0;
  for (; got < kPings; ++got) {
    const std::string line = cl.read_line();
    if (line.empty() || response_id(line) != got) {
      ADD_FAILURE() << "response " << got << ": " << line;
      break;
    }
  }
  EXPECT_EQ(got, kPings);
  EXPECT_TRUE(h.stop().is_ok());
  EXPECT_GE(h.server().stats().reads_paused, 1u);
}

TEST(EventLoopServer, DrainCompletesInFlightRequestsBeforeExit) {
  // Kick off slow (exact-engine) queries, then request a drain while they
  // are in flight.  Every response must still arrive, then EOF; serve()
  // must return OK.
  ServerHarness h(small_server());
  TestClient cl(h.path());
  ASSERT_TRUE(cl.ok());
  constexpr int kQueries = 6;
  std::string burst;
  for (int k = 0; k < kQueries; ++k) {
    burst += "{\"op\":\"query\",\"id\":" + std::to_string(k) +
             ",\"l\":" + std::to_string(1.0e-6 * (k + 1)) +
             ",\"with_exact_delay\":true}\n";
  }
  ASSERT_TRUE(cl.send_all(burst));
  // Let the loop parse and dispatch, then pull the plug mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  h.server().request_drain();
  std::vector<std::string> lines;
  for (int k = 0; k < kQueries; ++k) {
    std::string line = cl.read_line();
    if (line.empty()) break;
    lines.push_back(std::move(line));
  }
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kQueries));
  for (int k = 0; k < kQueries; ++k) {
    EXPECT_EQ(response_id(lines[k]), k) << lines[k];
    EXPECT_EQ(response_status(lines[k]), "ok") << lines[k];
  }
  EXPECT_EQ(cl.read_line(), "");  // drained server closes after flushing
  EXPECT_TRUE(h.stop().is_ok());
}

TEST(EventLoopServer, PingReportsAggregateShardThreads) {
  ServerOptions opts;
  opts.shards = 3;
  opts.threads_per_shard = 1;
  ServerHarness h(opts);
  TestClient cl(h.path());
  ASSERT_TRUE(cl.ok());
  ASSERT_TRUE(cl.send_all(ping(1)));
  const std::string line = cl.read_line();
  ASSERT_EQ(response_status(line), "ok") << line;
  const io::JsonValue v = io::parse_json(line);
  const io::JsonValue* result = v.find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(static_cast<int>(result->find("threads")->as_number()), 3);
  EXPECT_TRUE(h.stop().is_ok());
}

TEST(EventLoopServer, ServeWithoutListenIsATypedError) {
  EventLoopServer server(small_server());
  EXPECT_EQ(server.serve().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Live telemetry: admin ops, byte counters, scrape-under-load

TEST(EventLoopServer, AdminOpsAnswerInlineAndInSequence) {
  // metrics/stats/trace are answered on the loop thread (like ping), but
  // they still sequence with other requests on the same connection.  The
  // query goes first in its own burst: admin bodies are rendered at read
  // time, so the scrape must not race the query it wants to observe.
  ServerHarness h(small_server());
  TestClient cl(h.path());
  ASSERT_TRUE(cl.ok());
  std::vector<std::string> lines;
  ASSERT_TRUE(cl.send_all(
      "{\"op\":\"trace\",\"action\":\"start\",\"id\":0}\n" + query(1, 2.0e-6)));
  for (int k = 0; k < 2; ++k) {
    lines.push_back(cl.read_line());
    ASSERT_EQ(response_id(lines.back()), k) << lines.back();
    ASSERT_EQ(response_status(lines.back()), "ok") << lines.back();
  }
  ASSERT_TRUE(cl.send_all(
      "{\"op\":\"metrics\",\"id\":2}\n"
      "{\"op\":\"stats\",\"id\":3}\n"
      "{\"op\":\"trace\",\"action\":\"dump\",\"id\":4}\n"
      "{\"op\":\"trace\",\"action\":\"stop\",\"id\":5}\n"));
  for (int k = 2; k < 6; ++k) {
    lines.push_back(cl.read_line());
    ASSERT_EQ(response_id(lines.back()), k) << lines.back();
    ASSERT_EQ(response_status(lines.back()), "ok") << lines.back();
  }

  // The Prometheus exposition carries TYPE comments and the svc series
  // the query above just recorded.
  const io::JsonValue metrics = io::parse_json(lines[2]);
  const io::JsonValue* mr = metrics.find("result");
  ASSERT_NE(mr, nullptr);
  EXPECT_EQ(mr->string_or("content_type", ""), "text/plain; version=0.0.4");
  const std::string body = mr->string_or("body", "");
  EXPECT_NE(body.find("# TYPE "), std::string::npos);
  EXPECT_NE(body.find("svc_requests"), std::string::npos) << body;

  // Stats reports the live server block, one entry per shard, and the
  // tracer state the trace ops just toggled.
  const io::JsonValue stats = io::parse_json(lines[3]);
  const io::JsonValue* sr = stats.find("result");
  ASSERT_NE(sr, nullptr);
  const io::JsonValue* server = sr->find("server");
  ASSERT_NE(server, nullptr);
  EXPECT_GE(server->int_or("requests", -1), 2);
  EXPECT_GE(server->int_or("bytes_in", -1), 1);
  EXPECT_EQ(server->int_or("connections_open", -1), 1);
  const io::JsonValue* shards = sr->find("shards");
  ASSERT_NE(shards, nullptr);
  ASSERT_EQ(shards->items().size(), 2u);
  EXPECT_NE(shards->items()[0].find("cache"), nullptr);
  const io::JsonValue* trace = sr->find("trace");
  ASSERT_NE(trace, nullptr);
  EXPECT_TRUE(trace->bool_or("enabled", false));
  EXPECT_GE(trace->int_or("ring_capacity", 0), 1);

  // The dump carries a rollup with the spans the traced query produced.
  const io::JsonValue dump = io::parse_json(lines[4]);
  ASSERT_NE(dump.find("result"), nullptr);
  EXPECT_NE(dump.find("result")->find("rollup"), nullptr);
  EXPECT_TRUE(h.stop().is_ok());
}

TEST(EventLoopServer, BadAdminArgumentsAreTypedErrors) {
  ServerHarness h(small_server());
  TestClient cl(h.path());
  ASSERT_TRUE(cl.ok());
  ASSERT_TRUE(cl.send_all(
      "{\"op\":\"metrics\",\"format\":\"xml\",\"id\":1}\n"
      "{\"op\":\"trace\",\"id\":2}\n"
      "{\"op\":\"trace\",\"action\":\"flush\",\"id\":3}\n"));
  for (int k = 1; k <= 3; ++k) {
    const std::string line = cl.read_line();
    EXPECT_EQ(response_id(line), k) << line;
    EXPECT_EQ(response_status(line), "invalid_argument") << line;
  }
  EXPECT_TRUE(h.stop().is_ok());
}

TEST(EventLoopServer, ByteCountersAreMonotonicAndOpenIsAGauge) {
  ServerHarness h(small_server());
  const EventLoopServer::Stats s0 = h.server().stats();
  EXPECT_EQ(s0.bytes_in, 0u);
  EXPECT_EQ(s0.bytes_out, 0u);
  EXPECT_EQ(s0.connections_open, 0u);

  EventLoopServer::Stats prev = s0;
  {
    TestClient cl(h.path());
    ASSERT_TRUE(cl.ok());
    for (int k = 0; k < 4; ++k) {
      ASSERT_TRUE(cl.send_all(ping(k)));
      ASSERT_EQ(response_id(cl.read_line()), k);
      // Monotone under load: each request/response strictly grows both
      // byte counters; the open gauge reads 1 while connected.  bytes_out
      // is bumped on the loop thread after the kernel send, so it can
      // trail the client's read by a scheduling quantum — poll briefly.
      EventLoopServer::Stats s = h.server().stats();
      for (int spin = 0; spin < 2000 && s.bytes_out <= prev.bytes_out;
           ++spin) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        s = h.server().stats();
      }
      EXPECT_GT(s.bytes_in, prev.bytes_in);
      EXPECT_GT(s.bytes_out, prev.bytes_out);
      EXPECT_GE(s.requests, prev.requests);
      EXPECT_GE(s.responses, prev.responses);
      EXPECT_EQ(s.connections_open, 1u);
      prev = s;
    }
  }
  EXPECT_TRUE(h.stop().is_ok());
  const EventLoopServer::Stats end = h.server().stats();
  EXPECT_GE(end.bytes_in, prev.bytes_in);
  EXPECT_GE(end.bytes_out, prev.bytes_out);
  EXPECT_EQ(end.connections_open, 0u);  // gauge returns to zero
  EXPECT_EQ(end.connections_accepted, end.connections_closed);
  // Responses are JSON envelopes, so out strictly exceeds the ping bytes in.
  EXPECT_GT(end.bytes_out, 0u);
}

TEST(EventLoopServer, ScrapeUnderLoadIsRaceFreeAndAlwaysAnswers) {
  // One client hammers queries while another scrapes metrics/stats in a
  // tight loop — the admin plane must answer every scrape with a valid
  // envelope and never wedge the serving plane.  TSan runs this binary.
  ServerHarness h(small_server());
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread load([&] {
    TestClient cl(h.path());
    if (!cl.ok()) {
      ++failures;
      return;
    }
    for (int k = 0; k < 200 && !stop.load(std::memory_order_relaxed); ++k) {
      if (!cl.send_all(query(k, 1.0e-6 * (k % 7)))) {
        ++failures;
        return;
      }
      if (response_status(cl.read_line()) != "ok") {
        ++failures;
        return;
      }
    }
  });
  TestClient scraper(h.path());
  ASSERT_TRUE(scraper.ok());
  int scrapes = 0;
  for (int k = 0; k < 100; ++k) {
    const bool metrics = (k % 2 == 0);
    const std::string op = metrics
        ? "{\"op\":\"metrics\",\"id\":" + std::to_string(k) + "}\n"
        : "{\"op\":\"stats\",\"id\":" + std::to_string(k) + "}\n";
    ASSERT_TRUE(scraper.send_all(op));
    const std::string line = scraper.read_line();
    ASSERT_EQ(response_id(line), k) << line;
    ASSERT_EQ(response_status(line), "ok") << line;
    ++scrapes;
  }
  stop.store(true);
  load.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(scrapes, 100);
  EXPECT_TRUE(h.stop().is_ok());
}

}  // namespace
}  // namespace rlc::svc

#endif  // __linux__
