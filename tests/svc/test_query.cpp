#include "rlc/svc/query.hpp"

#include <gtest/gtest.h>

#include <string>

#include "rlc/io/json_reader.hpp"
#include "rlc/svc/cache.hpp"

namespace rlc::svc {
namespace {

TEST(QueryRequest, DefaultValidates) {
  EXPECT_TRUE(QueryRequest{}.validate().is_ok());
}

TEST(QueryRequest, ValidateChecksEveryField) {
  const auto invalid = [](auto mutate) {
    QueryRequest q;
    mutate(q);
    return q.validate().code() == StatusCode::kInvalidArgument;
  };
  EXPECT_TRUE(invalid([](QueryRequest& q) { q.technology = ""; }));
  EXPECT_TRUE(invalid([](QueryRequest& q) { q.l = -1.0; }));
  EXPECT_TRUE(invalid([](QueryRequest& q) { q.threshold = 0.0; }));
  EXPECT_TRUE(invalid([](QueryRequest& q) { q.threshold = 1.0; }));
  EXPECT_TRUE(invalid([](QueryRequest& q) { q.max_iterations = 0; }));
  EXPECT_TRUE(invalid([](QueryRequest& q) { q.residual_tolerance = 0.0; }));
  EXPECT_TRUE(invalid([](QueryRequest& q) { q.talbot_points = 2; }));
  EXPECT_TRUE(invalid([](QueryRequest& q) { q.line_length = -0.01; }));
  EXPECT_TRUE(invalid([](QueryRequest& q) { q.deadline_seconds = -1.0; }));
  EXPECT_TRUE(invalid([](QueryRequest& q) { q.n_conductors = 0; }));
  EXPECT_TRUE(invalid([](QueryRequest& q) { q.n_conductors = 4; }));
  EXPECT_TRUE(invalid([](QueryRequest& q) {
    q.n_conductors = 2;
    q.coupling_cc = -1e-12;
  }));
  EXPECT_TRUE(invalid([](QueryRequest& q) {
    q.n_conductors = 2;
    q.coupling_km = 1.0;
  }));
  EXPECT_TRUE(invalid([](QueryRequest& q) {
    q.n_conductors = 2;
    q.noise_vmax = -0.1;
  }));
  // Coupling knobs without a bus: a scalar query must stay bit-identical
  // to the pre-coupling wire, so nonzero coupling fields at n = 1 are a
  // caller error, not a silent no-op.
  EXPECT_TRUE(invalid([](QueryRequest& q) { q.coupling_cc = 1e-12; }));
  EXPECT_TRUE(invalid([](QueryRequest& q) { q.coupling_km = 0.2; }));
  EXPECT_TRUE(invalid([](QueryRequest& q) { q.noise_vmax = 0.1; }));
}

TEST(QueryRequest, CoupledRequestValidatesAndRoundTrips) {
  QueryRequest q;
  q.technology = "100nm";
  q.l = 1.0e-6;
  q.n_conductors = 3;
  q.coupling_cc = 2.5e-11;
  q.coupling_km = 0.3;
  q.noise_vmax = 0.12;
  ASSERT_TRUE(q.validate().is_ok()) << q.validate().to_string();
  const io::JsonValue v = io::parse_json(q.to_json().str());
  const rlc::StatusOr<QueryRequest> back = QueryRequest::from_json(v);
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(*back, q);
}

TEST(QueryRequest, JsonRoundTrip) {
  QueryRequest q;
  q.technology = "250nm";
  q.l = 3.25e-6;
  q.threshold = 0.4;
  q.max_iterations = 33;
  q.with_exact_delay = true;
  q.line_length = 0.01;
  const io::JsonValue v = io::parse_json(q.to_json().str());
  const rlc::StatusOr<QueryRequest> back = QueryRequest::from_json(v);
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(*back, q);
}

TEST(QueryRequest, FromJsonRejectsBadShapes) {
  EXPECT_EQ(QueryRequest::from_json(io::parse_json("[1,2]")).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(QueryRequest::from_json(io::parse_json("{\"l\": \"big\"}"))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(QueryRequest::from_json(io::parse_json("{\"threshold\": 2.0}"))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(QueryRequest, FromJsonRejectsNonIntegralAndOutOfRangeInts) {
  // Integer fields reject fractions and doubles outside int range; the
  // out-of-range case must produce a clean Status, not a float-cast UB.
  for (const char* line : {
           "{\"max_iterations\": 3.5}",
           "{\"max_iterations\": 1e300}",
           "{\"max_iterations\": -1e300}",
           "{\"max_iterations\": 2147483648}",
           "{\"talbot_points\": 1e19}",
       }) {
    EXPECT_EQ(QueryRequest::from_json(io::parse_json(line)).status().code(),
              StatusCode::kInvalidArgument)
        << line;
  }
  // The extremes that do fit still parse.
  const auto max_ok =
      QueryRequest::from_json(io::parse_json("{\"max_iterations\": 2147483647}"));
  ASSERT_TRUE(max_ok.is_ok()) << max_ok.status().to_string();
  EXPECT_EQ(max_ok->max_iterations, 2147483647);
}

TEST(QueryRequest, CacheKeyIgnoresDeadlineOnly) {
  QueryRequest a;
  QueryRequest b = a;
  b.deadline_seconds = 0.25;  // delivery option: same answer, same key
  EXPECT_EQ(a.cache_key(), b.cache_key());
  EXPECT_EQ(a.cache_hash(), b.cache_hash());

  // Every result-affecting field must split the key.
  const auto differs = [&](auto mutate) {
    QueryRequest q = a;
    mutate(q);
    return q.cache_key() != a.cache_key();
  };
  EXPECT_TRUE(differs([](QueryRequest& q) { q.technology = "250nm"; }));
  EXPECT_TRUE(differs([](QueryRequest& q) { q.l = 1.0e-6; }));
  EXPECT_TRUE(differs([](QueryRequest& q) { q.threshold = 0.9; }));
  EXPECT_TRUE(differs([](QueryRequest& q) { q.max_iterations = 81; }));
  EXPECT_TRUE(differs([](QueryRequest& q) { q.residual_tolerance = 1e-8; }));
  EXPECT_TRUE(differs([](QueryRequest& q) { q.with_exact_delay = true; }));
  EXPECT_TRUE(differs([](QueryRequest& q) { q.talbot_points = 64; }));
  EXPECT_TRUE(differs([](QueryRequest& q) { q.line_length = 0.02; }));
  EXPECT_TRUE(differs([](QueryRequest& q) { q.n_conductors = 2; }));
  EXPECT_TRUE(differs([](QueryRequest& q) { q.coupling_cc = 1e-11; }));
  EXPECT_TRUE(differs([](QueryRequest& q) { q.coupling_km = 0.3; }));
  EXPECT_TRUE(differs([](QueryRequest& q) { q.noise_vmax = 0.1; }));
}

TEST(LruCache, HitMissAndRecency) {
  LruCache<int> cache(2);
  EXPECT_FALSE(cache.get("a").has_value());
  cache.put("a", 1);
  cache.put("b", 2);
  EXPECT_EQ(cache.get("a").value_or(-1), 1);  // refreshes "a"
  cache.put("c", 3);                          // evicts "b" (LRU)
  EXPECT_FALSE(cache.get("b").has_value());
  EXPECT_EQ(cache.get("a").value_or(-1), 1);
  EXPECT_EQ(cache.get("c").value_or(-1), 3);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.size, 2u);
  EXPECT_EQ(stats.capacity, 2u);
}

TEST(LruCache, PutRefreshesExistingKey) {
  LruCache<int> cache(2);
  cache.put("a", 1);
  cache.put("b", 2);
  cache.put("a", 10);  // update, not insert
  cache.put("c", 3);   // evicts "b" — "a" was refreshed by the put
  EXPECT_EQ(cache.get("a").value_or(-1), 10);
  EXPECT_FALSE(cache.get("b").has_value());
}

TEST(LruCache, ZeroCapacityDisablesStorage) {
  LruCache<int> cache(0);
  cache.put("a", 1);
  EXPECT_FALSE(cache.get("a").has_value());
  EXPECT_EQ(cache.stats().size, 0u);
}

TEST(LruCache, ClearInvalidatesEverything) {
  LruCache<int> cache(8);
  cache.put("a", 1);
  cache.clear();
  EXPECT_FALSE(cache.get("a").has_value());
}

}  // namespace
}  // namespace rlc::svc
