#include "rlc/svc/query.hpp"

#include <gtest/gtest.h>

#include <string>

#include "rlc/io/json_reader.hpp"
#include "rlc/svc/cache.hpp"

namespace rlc::svc {
namespace {

TEST(QueryRequest, DefaultValidates) {
  EXPECT_TRUE(QueryRequest{}.validate().is_ok());
}

TEST(QueryRequest, ValidateChecksEveryField) {
  const auto invalid = [](auto mutate) {
    QueryRequest q;
    mutate(q);
    return q.validate().code() == StatusCode::kInvalidArgument;
  };
  EXPECT_TRUE(invalid([](QueryRequest& q) { q.technology = ""; }));
  EXPECT_TRUE(invalid([](QueryRequest& q) { q.l = -1.0; }));
  EXPECT_TRUE(invalid([](QueryRequest& q) { q.threshold = 0.0; }));
  EXPECT_TRUE(invalid([](QueryRequest& q) { q.threshold = 1.0; }));
  EXPECT_TRUE(invalid([](QueryRequest& q) { q.max_iterations = 0; }));
  EXPECT_TRUE(invalid([](QueryRequest& q) { q.residual_tolerance = 0.0; }));
  EXPECT_TRUE(invalid([](QueryRequest& q) { q.talbot_points = 2; }));
  EXPECT_TRUE(invalid([](QueryRequest& q) { q.line_length = -0.01; }));
  EXPECT_TRUE(invalid([](QueryRequest& q) { q.deadline_seconds = -1.0; }));
  EXPECT_TRUE(invalid([](QueryRequest& q) { q.n_conductors = 0; }));
  EXPECT_TRUE(invalid([](QueryRequest& q) { q.n_conductors = 4; }));
  EXPECT_TRUE(invalid([](QueryRequest& q) {
    q.n_conductors = 2;
    q.coupling_cc = -1e-12;
  }));
  EXPECT_TRUE(invalid([](QueryRequest& q) {
    q.n_conductors = 2;
    q.coupling_km = 1.0;
  }));
  EXPECT_TRUE(invalid([](QueryRequest& q) {
    q.n_conductors = 2;
    q.noise_vmax = -0.1;
  }));
  // Coupling knobs without a bus: a scalar query must stay bit-identical
  // to the pre-coupling wire, so nonzero coupling fields at n = 1 are a
  // caller error, not a silent no-op.
  EXPECT_TRUE(invalid([](QueryRequest& q) { q.coupling_cc = 1e-12; }));
  EXPECT_TRUE(invalid([](QueryRequest& q) { q.coupling_km = 0.2; }));
  EXPECT_TRUE(invalid([](QueryRequest& q) { q.noise_vmax = 0.1; }));
  // Unknown objective strings are a typed error, never a silent fallback.
  EXPECT_TRUE(invalid([](QueryRequest& q) { q.objective = "minpower"; }));
  EXPECT_TRUE(invalid([](QueryRequest& q) { q.objective = ""; }));
  EXPECT_TRUE(invalid([](QueryRequest& q) { q.objective = "Power"; }));
  EXPECT_TRUE(invalid([](QueryRequest& q) {
    q.objective = "power";
    q.delay_slack_eps = -0.1;
  }));
  // Power applies to the scalar solve only.
  EXPECT_TRUE(invalid([](QueryRequest& q) {
    q.objective = "power";
    q.n_conductors = 2;
  }));
  // A slack without the power objective is a confused request.
  EXPECT_TRUE(invalid([](QueryRequest& q) { q.delay_slack_eps = 0.2; }));
}

TEST(QueryRequest, UnknownObjectiveNamesTheValueOnTheWire) {
  const auto parsed = QueryRequest::from_json(
      io::parse_json("{\"objective\": \"minpower\"}"));
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("minpower"), std::string::npos);
}

TEST(QueryRequest, CoupledRequestValidatesAndRoundTrips) {
  QueryRequest q;
  q.technology = "100nm";
  q.l = 1.0e-6;
  q.n_conductors = 3;
  q.coupling_cc = 2.5e-11;
  q.coupling_km = 0.3;
  q.noise_vmax = 0.12;
  ASSERT_TRUE(q.validate().is_ok()) << q.validate().to_string();
  const io::JsonValue v = io::parse_json(q.to_json().str());
  const rlc::StatusOr<QueryRequest> back = QueryRequest::from_json(v);
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(*back, q);
}

TEST(QueryRequest, JsonRoundTrip) {
  QueryRequest q;
  q.technology = "250nm";
  q.l = 3.25e-6;
  q.threshold = 0.4;
  q.max_iterations = 33;
  q.with_exact_delay = true;
  q.line_length = 0.01;
  const io::JsonValue v = io::parse_json(q.to_json().str());
  const rlc::StatusOr<QueryRequest> back = QueryRequest::from_json(v);
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(*back, q);
}

TEST(QueryRequest, FromJsonRejectsBadShapes) {
  EXPECT_EQ(QueryRequest::from_json(io::parse_json("[1,2]")).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(QueryRequest::from_json(io::parse_json("{\"l\": \"big\"}"))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(QueryRequest::from_json(io::parse_json("{\"threshold\": 2.0}"))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(QueryRequest, FromJsonRejectsNonIntegralAndOutOfRangeInts) {
  // Integer fields reject fractions and doubles outside int range; the
  // out-of-range case must produce a clean Status, not a float-cast UB.
  for (const char* line : {
           "{\"max_iterations\": 3.5}",
           "{\"max_iterations\": 1e300}",
           "{\"max_iterations\": -1e300}",
           "{\"max_iterations\": 2147483648}",
           "{\"talbot_points\": 1e19}",
       }) {
    EXPECT_EQ(QueryRequest::from_json(io::parse_json(line)).status().code(),
              StatusCode::kInvalidArgument)
        << line;
  }
  // The extremes that do fit still parse.
  const auto max_ok =
      QueryRequest::from_json(io::parse_json("{\"max_iterations\": 2147483647}"));
  ASSERT_TRUE(max_ok.is_ok()) << max_ok.status().to_string();
  EXPECT_EQ(max_ok->max_iterations, 2147483647);
}

TEST(QueryRequest, CacheKeyIgnoresDeadlineOnly) {
  QueryRequest a;
  QueryRequest b = a;
  b.deadline_seconds = 0.25;  // delivery option: same answer, same key
  EXPECT_EQ(a.cache_key(), b.cache_key());
  EXPECT_EQ(a.cache_hash(), b.cache_hash());

  // Every result-affecting field must split the key.
  const auto differs = [&](auto mutate) {
    QueryRequest q = a;
    mutate(q);
    return q.cache_key() != a.cache_key();
  };
  EXPECT_TRUE(differs([](QueryRequest& q) { q.technology = "250nm"; }));
  EXPECT_TRUE(differs([](QueryRequest& q) { q.l = 1.0e-6; }));
  EXPECT_TRUE(differs([](QueryRequest& q) { q.threshold = 0.9; }));
  EXPECT_TRUE(differs([](QueryRequest& q) { q.max_iterations = 81; }));
  EXPECT_TRUE(differs([](QueryRequest& q) { q.residual_tolerance = 1e-8; }));
  EXPECT_TRUE(differs([](QueryRequest& q) { q.with_exact_delay = true; }));
  EXPECT_TRUE(differs([](QueryRequest& q) { q.talbot_points = 64; }));
  EXPECT_TRUE(differs([](QueryRequest& q) { q.line_length = 0.02; }));
  EXPECT_TRUE(differs([](QueryRequest& q) { q.n_conductors = 2; }));
  EXPECT_TRUE(differs([](QueryRequest& q) { q.coupling_cc = 1e-11; }));
  EXPECT_TRUE(differs([](QueryRequest& q) { q.coupling_km = 0.3; }));
  EXPECT_TRUE(differs([](QueryRequest& q) { q.noise_vmax = 0.1; }));
  EXPECT_TRUE(differs([](QueryRequest& q) { q.objective = "power"; }));
  EXPECT_TRUE(differs([](QueryRequest& q) {
    q.objective = "power";
    q.delay_slack_eps = 0.10;
  }));
}

// The objective extension is schema-transparent: the default-objective key,
// hash, and wire body are byte-identical to the pre-objective wire (old
// cache entries and rlc_load replays stay valid), and only non-default
// objectives append the obj/eps block.
TEST(QueryRequest, ObjectiveIsSchemaTransparent) {
  QueryRequest a;
  EXPECT_EQ(a.cache_key().find("obj="), std::string::npos);
  EXPECT_EQ(a.to_json().str().find("objective"), std::string::npos);
  EXPECT_EQ(a.to_json().str().find("delay_slack_eps"), std::string::npos);

  QueryRequest p = a;
  p.objective = "power";
  p.delay_slack_eps = 0.10;
  ASSERT_TRUE(p.validate().is_ok()) << p.validate().to_string();
  EXPECT_NE(p.cache_key().find(";obj=power;eps="), std::string::npos);
  const std::string wire = p.to_json().str();
  EXPECT_NE(wire.find("\"objective\": \"power\""), std::string::npos);
  EXPECT_NE(wire.find("\"delay_slack_eps\": 0.1"), std::string::npos);

  const auto back = QueryRequest::from_json(io::parse_json(wire));
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(*back, p);
}

// Power-block serialization mirrors the noise/trace blocks: present only
// when the answer carries power numbers, so delay-objective responses stay
// byte-identical to the pre-power wire.
TEST(QueryResult, PowerBlockOnlyWhenPowered) {
  QueryResult r;
  r.h = 1.0e-3;
  EXPECT_EQ(r.to_json().str().find("power_total"), std::string::npos);

  QueryResult p = r;
  p.has_power = true;
  p.power_total = 0.05;
  p.power_dynamic = 0.04;
  p.power_short_circuit = 0.008;
  p.power_leakage = 0.002;
  p.delay_ref = 1.2e-8;
  p.power_ref = 0.06;
  p.power_constraint_active = true;
  const std::string wire = p.to_json().str();
  EXPECT_NE(wire.find("\"power_total\": 0.05"), std::string::npos);
  EXPECT_NE(wire.find("\"power_constraint_active\": true"),
            std::string::npos);
  // The power numbers are part of the answer, not delivery metadata.
  EXPECT_FALSE(p.same_answer(r));
  QueryResult q = p;
  q.power_total = 0.051;
  EXPECT_FALSE(q.same_answer(p));
}

// trace_id is delivery metadata like deadline_seconds: it must never split
// the cache key (a traced and an untraced client share the same cached
// solve) and must stay invisible on the wire unless the client sent one —
// rlc_load splices to_json() bodies byte-for-byte, so this is load-bearing.
TEST(QueryRequest, TraceIdIsCacheKeyAndSchemaTransparent) {
  QueryRequest a;
  QueryRequest b = a;
  b.trace_id = "req-7";
  EXPECT_EQ(a.cache_key(), b.cache_key());
  EXPECT_EQ(a.cache_hash(), b.cache_hash());

  // Untraced requests render without any trace field at all.
  EXPECT_EQ(a.to_json().str().find("trace_id"), std::string::npos);
  const std::string traced = b.to_json().str();
  EXPECT_NE(traced.find("\"trace_id\": \"req-7\""), std::string::npos);

  // Round trip keeps the id.
  const auto back = QueryRequest::from_json(io::parse_json(traced));
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(back->trace_id, "req-7");
  EXPECT_EQ(back->cache_key(), a.cache_key());
}

TEST(QueryRequest, TraceIdLengthIsCapped) {
  QueryRequest q;
  q.trace_id = std::string(QueryRequest::kMaxTraceIdLength, 'x');
  EXPECT_TRUE(q.validate().is_ok());
  q.trace_id += 'x';
  EXPECT_EQ(q.validate().code(), StatusCode::kInvalidArgument);
}

// Untraced results render without the per-stage timing block, so existing
// clients see byte-identical responses; traced results carry it.
TEST(QueryResult, TraceBlockOnlyWhenTraced) {
  QueryResult r;
  r.h = 1.0e-3;
  const std::string plain = r.to_json().str();
  EXPECT_EQ(plain.find("trace_id"), std::string::npos);
  EXPECT_EQ(plain.find("queue_us"), std::string::npos);

  r.trace_id = "t1";
  r.queue_us = 12.5;
  r.cache_us = 1.5;
  r.solve_us = 800.0;
  const std::string traced = r.to_json().str();
  EXPECT_NE(traced.find("\"trace_id\": \"t1\""), std::string::npos);
  EXPECT_NE(traced.find("\"queue_us\": 12.5"), std::string::npos);
  EXPECT_NE(traced.find("\"cache_us\": 1.5"), std::string::npos);
  EXPECT_NE(traced.find("\"solve_us\": 800"), std::string::npos);

  // The trace block must not disturb answer equality (it is delivery
  // metadata, not physics).
  QueryResult untraced = r;
  untraced.trace_id.clear();
  untraced.queue_us = untraced.cache_us = untraced.solve_us = 0.0;
  EXPECT_TRUE(r.same_answer(untraced));
}

TEST(LruCache, HitMissAndRecency) {
  LruCache<int> cache(2);
  EXPECT_FALSE(cache.get("a").has_value());
  cache.put("a", 1);
  cache.put("b", 2);
  EXPECT_EQ(cache.get("a").value_or(-1), 1);  // refreshes "a"
  cache.put("c", 3);                          // evicts "b" (LRU)
  EXPECT_FALSE(cache.get("b").has_value());
  EXPECT_EQ(cache.get("a").value_or(-1), 1);
  EXPECT_EQ(cache.get("c").value_or(-1), 3);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.size, 2u);
  EXPECT_EQ(stats.capacity, 2u);
}

TEST(LruCache, PutRefreshesExistingKey) {
  LruCache<int> cache(2);
  cache.put("a", 1);
  cache.put("b", 2);
  cache.put("a", 10);  // update, not insert
  cache.put("c", 3);   // evicts "b" — "a" was refreshed by the put
  EXPECT_EQ(cache.get("a").value_or(-1), 10);
  EXPECT_FALSE(cache.get("b").has_value());
}

TEST(LruCache, ZeroCapacityDisablesStorage) {
  LruCache<int> cache(0);
  cache.put("a", 1);
  EXPECT_FALSE(cache.get("a").has_value());
  EXPECT_EQ(cache.stats().size, 0u);
}

TEST(LruCache, ClearInvalidatesEverything) {
  LruCache<int> cache(8);
  cache.put("a", 1);
  cache.clear();
  EXPECT_FALSE(cache.get("a").has_value());
}

}  // namespace
}  // namespace rlc::svc
