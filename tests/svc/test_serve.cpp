#include "rlc/svc/serve.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rlc/base/version.hpp"
#include "rlc/io/json_reader.hpp"

namespace rlc::svc {
namespace {

io::JsonValue response_of(Server& server, const std::string& line) {
  return io::parse_json(server.handle_line(line));
}

class ServeTest : public ::testing::Test {
 protected:
  ServeTest() : session_(SessionOptions{2, 64}), server_(session_) {}
  Session session_;
  Server server_;
};

TEST_F(ServeTest, EveryResponseCarriesSchemaAndVersion) {
  for (const char* line :
       {"{\"op\":\"ping\"}", "{\"op\":\"query\",\"l\":1e-6}", "garbage"}) {
    const io::JsonValue v = response_of(server_, line);
    EXPECT_EQ(v.int_or("schema", -1), kServeSchemaVersion) << line;
    EXPECT_EQ(v.string_or("version", ""), version()) << line;
  }
}

TEST_F(ServeTest, PingAnswersWithThreads) {
  const io::JsonValue v = response_of(server_, "{\"op\":\"ping\",\"id\":7}");
  EXPECT_EQ(v.string_or("status", ""), "ok");
  EXPECT_EQ(v.int_or("code", -1), 0);
  EXPECT_EQ(v.number_or("id", 0.0), 7.0);
  ASSERT_NE(v.find("result"), nullptr);
  EXPECT_EQ(v.find("result")->int_or("threads", 0), 2);
}

TEST_F(ServeTest, QueryResponseCarriesTheAnswer) {
  const io::JsonValue v = response_of(
      server_,
      "{\"op\":\"query\",\"id\":\"a\",\"technology\":\"100nm\",\"l\":2e-6}");
  ASSERT_EQ(v.string_or("status", ""), "ok");
  EXPECT_EQ(v.string_or("id", ""), "a");
  const io::JsonValue* result = v.find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_GT(result->number_or("h", 0.0), 0.0);
  EXPECT_GT(result->number_or("delay_per_length", 0.0), 0.0);
}

TEST_F(ServeTest, MalformedFramingIsRejectedPerLine) {
  // Each broken line gets its own invalid_argument response; the stream
  // never desynchronizes and no exception escapes the server.
  const std::vector<std::string> lines = {
      "",                           // empty line
      "{not json",                  // parse error
      "[1,2,3]",                    // not an object
      "{\"l\": 1e-6}",              // missing op
      "{\"op\":\"frobnicate\"}",    // unknown op
      "{\"op\":\"query\",\"l\":-5}",            // out-of-domain value
      "{\"op\":\"query\",\"id\":{}}",           // bad id kind
      "{\"op\":\"scenario\"}",                  // scenario without spec
      "{\"op\":\"scenario\",\"spec\":{\"threshold\":7}}",  // bad spec
  };
  const std::vector<std::string> responses = server_.handle_lines(lines);
  ASSERT_EQ(responses.size(), lines.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    const io::JsonValue v = io::parse_json(responses[i]);
    EXPECT_EQ(v.string_or("status", ""), "invalid_argument") << lines[i];
    EXPECT_EQ(v.int_or("code", -1), 1) << lines[i];
    EXPECT_FALSE(v.string_or("message", "").empty()) << lines[i];
  }
}

TEST_F(ServeTest, MixedBlockKeepsInputOrder) {
  const std::vector<std::string> lines = {
      "{\"op\":\"query\",\"id\":0,\"l\":1e-6}",
      "{\"op\":\"ping\",\"id\":1}",
      "{\"op\":\"query\",\"id\":2,\"l\":2e-6}",
      "broken",
      "{\"op\":\"query\",\"id\":4,\"l\":3e-6}",
  };
  const std::vector<std::string> responses = server_.handle_lines(lines);
  ASSERT_EQ(responses.size(), 5u);
  for (const std::size_t i : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{4}}) {
    EXPECT_EQ(io::parse_json(responses[i]).number_or("id", -1.0),
              static_cast<double>(i))
        << responses[i];
  }
  EXPECT_EQ(io::parse_json(responses[3]).string_or("status", ""),
            "invalid_argument");
}

TEST_F(ServeTest, BatchedQueriesMatchSingleShot) {
  const std::string line =
      "{\"op\":\"query\",\"technology\":\"250nm\",\"l\":1.5e-6}";
  Session fresh(SessionOptions{1, 0});
  Server reference(fresh);
  const io::JsonValue single = response_of(reference, line);
  const std::vector<std::string> batch =
      server_.handle_lines({line, line, line});
  for (const std::string& resp : batch) {
    const io::JsonValue v = io::parse_json(resp);
    ASSERT_EQ(v.string_or("status", ""), "ok");
    // Bit-identical numeric payload, batched or not, cached or not.
    EXPECT_EQ(v.find("result")->number_or("h", 0.0),
              single.find("result")->number_or("h", 0.0));
    EXPECT_EQ(v.find("result")->number_or("delay_per_length", 0.0),
              single.find("result")->number_or("delay_per_length", 0.0));
  }
}

TEST_F(ServeTest, CoupledQueryRoundTripsOnTheWire) {
  // A coupled-bus query (schema-transparent extension fields) answers with
  // the noise payload; batched repeats are bit-identical to the single shot.
  const std::string line =
      "{\"op\":\"query\",\"technology\":\"100nm\",\"l\":1e-6,"
      "\"n_conductors\":2,\"coupling_cc\":2.5e-11,\"coupling_km\":0.3}";
  Session fresh(SessionOptions{1, 0});
  Server reference(fresh);
  const io::JsonValue single = response_of(reference, line);
  ASSERT_EQ(single.string_or("status", ""), "ok")
      << single.string_or("message", "");
  const io::JsonValue* result = single.find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_GT(result->number_or("peak_noise", 0.0), 0.0);
  EXPECT_GT(result->number_or("noise_width", 0.0), 0.0);
  for (const std::string& resp : server_.handle_lines({line, line})) {
    const io::JsonValue v = io::parse_json(resp);
    ASSERT_EQ(v.string_or("status", ""), "ok");
    EXPECT_EQ(v.find("result")->number_or("h", 0.0),
              result->number_or("h", 0.0));
    EXPECT_EQ(v.find("result")->number_or("peak_noise", 0.0),
              result->number_or("peak_noise", 0.0));
  }
  // Scalar answers never grow the noise fields — the pre-coupling wire
  // shape is preserved byte-for-byte.
  const io::JsonValue scalar = response_of(
      server_, "{\"op\":\"query\",\"technology\":\"100nm\",\"l\":1e-6}");
  ASSERT_EQ(scalar.string_or("status", ""), "ok");
  EXPECT_EQ(scalar.find("result")->find("peak_noise"), nullptr);
}

TEST_F(ServeTest, CoupledFieldsAtScalarArityAreRejectedOnTheWire) {
  const io::JsonValue v = response_of(
      server_, "{\"op\":\"query\",\"l\":1e-6,\"coupling_cc\":1e-11}");
  EXPECT_EQ(v.string_or("status", ""), "invalid_argument");
  EXPECT_EQ(v.int_or("code", -1), 1);
}

TEST_F(ServeTest, XtalkScenarioRunsOnTheWire) {
  const io::JsonValue v = response_of(
      server_,
      "{\"op\":\"scenario\",\"id\":11,\"spec\":{\"scenario\":\"xtalk_quiet\","
      "\"quick\":true}}");
  ASSERT_EQ(v.string_or("status", ""), "ok") << v.string_or("message", "");
  const io::JsonValue* result = v.find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->string_or("bench", ""), "xtalk_quiet");
  const io::JsonValue* coupling = result->find("coupling");
  ASSERT_NE(coupling, nullptr);
  EXPECT_EQ(coupling->int_or("n_conductors", 0), 2);
  EXPECT_GE(coupling->number_or("peak_noise", -1.0), 0.0);
}

TEST_F(ServeTest, DeadlineZeroQueryIsDeadlineExceededOnTheWire) {
  const io::JsonValue v = response_of(
      server_, "{\"op\":\"query\",\"l\":1e-6,\"deadline_seconds\":0}");
  EXPECT_EQ(v.string_or("status", ""), "deadline_exceeded");
  EXPECT_EQ(v.int_or("code", -1), 4);
  EXPECT_EQ(v.find("result"), nullptr);
}

TEST_F(ServeTest, ScenarioOpRunsAQuickScenario) {
  const io::JsonValue v = response_of(
      server_,
      "{\"op\":\"scenario\",\"id\":9,\"spec\":{\"scenario\":\"fig5\","
      "\"quick\":true}}");
  ASSERT_EQ(v.string_or("status", ""), "ok") << v.string_or("message", "");
  const io::JsonValue* result = v.find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->string_or("bench", ""), "fig5");
  EXPECT_NE(result->find("tables"), nullptr);
}

TEST_F(ServeTest, UnknownScenarioIsNotFoundOnTheWire) {
  const io::JsonValue v = response_of(
      server_,
      "{\"op\":\"scenario\",\"spec\":{\"scenario\":\"no_such_thing\"}}");
  EXPECT_EQ(v.string_or("status", ""), "not_found");
  EXPECT_EQ(v.int_or("code", -1), 2);
}

}  // namespace
}  // namespace rlc::svc
