#include "rlc/svc/serve.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rlc/base/version.hpp"
#include "rlc/io/json_reader.hpp"
#include "rlc/svc/slowlog.hpp"

namespace rlc::svc {
namespace {

io::JsonValue response_of(Server& server, const std::string& line) {
  return io::parse_json(server.handle_line(line));
}

class ServeTest : public ::testing::Test {
 protected:
  ServeTest() : session_(SessionOptions{2, 64}), server_(session_) {}
  Session session_;
  Server server_;
};

TEST_F(ServeTest, EveryResponseCarriesSchemaAndVersion) {
  for (const char* line :
       {"{\"op\":\"ping\"}", "{\"op\":\"query\",\"l\":1e-6}", "garbage"}) {
    const io::JsonValue v = response_of(server_, line);
    EXPECT_EQ(v.int_or("schema", -1), kServeSchemaVersion) << line;
    EXPECT_EQ(v.string_or("version", ""), version()) << line;
  }
}

TEST_F(ServeTest, PingAnswersWithThreads) {
  const io::JsonValue v = response_of(server_, "{\"op\":\"ping\",\"id\":7}");
  EXPECT_EQ(v.string_or("status", ""), "ok");
  EXPECT_EQ(v.int_or("code", -1), 0);
  EXPECT_EQ(v.number_or("id", 0.0), 7.0);
  ASSERT_NE(v.find("result"), nullptr);
  EXPECT_EQ(v.find("result")->int_or("threads", 0), 2);
}

TEST_F(ServeTest, QueryResponseCarriesTheAnswer) {
  const io::JsonValue v = response_of(
      server_,
      "{\"op\":\"query\",\"id\":\"a\",\"technology\":\"100nm\",\"l\":2e-6}");
  ASSERT_EQ(v.string_or("status", ""), "ok");
  EXPECT_EQ(v.string_or("id", ""), "a");
  const io::JsonValue* result = v.find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_GT(result->number_or("h", 0.0), 0.0);
  EXPECT_GT(result->number_or("delay_per_length", 0.0), 0.0);
}

TEST_F(ServeTest, MalformedFramingIsRejectedPerLine) {
  // Each broken line gets its own invalid_argument response; the stream
  // never desynchronizes and no exception escapes the server.
  const std::vector<std::string> lines = {
      "",                           // empty line
      "{not json",                  // parse error
      "[1,2,3]",                    // not an object
      "{\"l\": 1e-6}",              // missing op
      "{\"op\":\"frobnicate\"}",    // unknown op
      "{\"op\":\"query\",\"l\":-5}",            // out-of-domain value
      "{\"op\":\"query\",\"id\":{}}",           // bad id kind
      "{\"op\":\"scenario\"}",                  // scenario without spec
      "{\"op\":\"scenario\",\"spec\":{\"threshold\":7}}",  // bad spec
  };
  const std::vector<std::string> responses = server_.handle_lines(lines);
  ASSERT_EQ(responses.size(), lines.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    const io::JsonValue v = io::parse_json(responses[i]);
    EXPECT_EQ(v.string_or("status", ""), "invalid_argument") << lines[i];
    EXPECT_EQ(v.int_or("code", -1), 1) << lines[i];
    EXPECT_FALSE(v.string_or("message", "").empty()) << lines[i];
  }
}

TEST_F(ServeTest, MixedBlockKeepsInputOrder) {
  const std::vector<std::string> lines = {
      "{\"op\":\"query\",\"id\":0,\"l\":1e-6}",
      "{\"op\":\"ping\",\"id\":1}",
      "{\"op\":\"query\",\"id\":2,\"l\":2e-6}",
      "broken",
      "{\"op\":\"query\",\"id\":4,\"l\":3e-6}",
  };
  const std::vector<std::string> responses = server_.handle_lines(lines);
  ASSERT_EQ(responses.size(), 5u);
  for (const std::size_t i : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{4}}) {
    EXPECT_EQ(io::parse_json(responses[i]).number_or("id", -1.0),
              static_cast<double>(i))
        << responses[i];
  }
  EXPECT_EQ(io::parse_json(responses[3]).string_or("status", ""),
            "invalid_argument");
}

TEST_F(ServeTest, BatchedQueriesMatchSingleShot) {
  const std::string line =
      "{\"op\":\"query\",\"technology\":\"250nm\",\"l\":1.5e-6}";
  Session fresh(SessionOptions{1, 0});
  Server reference(fresh);
  const io::JsonValue single = response_of(reference, line);
  const std::vector<std::string> batch =
      server_.handle_lines({line, line, line});
  for (const std::string& resp : batch) {
    const io::JsonValue v = io::parse_json(resp);
    ASSERT_EQ(v.string_or("status", ""), "ok");
    // Bit-identical numeric payload, batched or not, cached or not.
    EXPECT_EQ(v.find("result")->number_or("h", 0.0),
              single.find("result")->number_or("h", 0.0));
    EXPECT_EQ(v.find("result")->number_or("delay_per_length", 0.0),
              single.find("result")->number_or("delay_per_length", 0.0));
  }
}

TEST_F(ServeTest, CoupledQueryRoundTripsOnTheWire) {
  // A coupled-bus query (schema-transparent extension fields) answers with
  // the noise payload; batched repeats are bit-identical to the single shot.
  const std::string line =
      "{\"op\":\"query\",\"technology\":\"100nm\",\"l\":1e-6,"
      "\"n_conductors\":2,\"coupling_cc\":2.5e-11,\"coupling_km\":0.3}";
  Session fresh(SessionOptions{1, 0});
  Server reference(fresh);
  const io::JsonValue single = response_of(reference, line);
  ASSERT_EQ(single.string_or("status", ""), "ok")
      << single.string_or("message", "");
  const io::JsonValue* result = single.find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_GT(result->number_or("peak_noise", 0.0), 0.0);
  EXPECT_GT(result->number_or("noise_width", 0.0), 0.0);
  for (const std::string& resp : server_.handle_lines({line, line})) {
    const io::JsonValue v = io::parse_json(resp);
    ASSERT_EQ(v.string_or("status", ""), "ok");
    EXPECT_EQ(v.find("result")->number_or("h", 0.0),
              result->number_or("h", 0.0));
    EXPECT_EQ(v.find("result")->number_or("peak_noise", 0.0),
              result->number_or("peak_noise", 0.0));
  }
  // Scalar answers never grow the noise fields — the pre-coupling wire
  // shape is preserved byte-for-byte.
  const io::JsonValue scalar = response_of(
      server_, "{\"op\":\"query\",\"technology\":\"100nm\",\"l\":1e-6}");
  ASSERT_EQ(scalar.string_or("status", ""), "ok");
  EXPECT_EQ(scalar.find("result")->find("peak_noise"), nullptr);
}

TEST_F(ServeTest, CoupledFieldsAtScalarArityAreRejectedOnTheWire) {
  const io::JsonValue v = response_of(
      server_, "{\"op\":\"query\",\"l\":1e-6,\"coupling_cc\":1e-11}");
  EXPECT_EQ(v.string_or("status", ""), "invalid_argument");
  EXPECT_EQ(v.int_or("code", -1), 1);
}

TEST_F(ServeTest, XtalkScenarioRunsOnTheWire) {
  const io::JsonValue v = response_of(
      server_,
      "{\"op\":\"scenario\",\"id\":11,\"spec\":{\"scenario\":\"xtalk_quiet\","
      "\"quick\":true}}");
  ASSERT_EQ(v.string_or("status", ""), "ok") << v.string_or("message", "");
  const io::JsonValue* result = v.find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->string_or("bench", ""), "xtalk_quiet");
  const io::JsonValue* coupling = result->find("coupling");
  ASSERT_NE(coupling, nullptr);
  EXPECT_EQ(coupling->int_or("n_conductors", 0), 2);
  EXPECT_GE(coupling->number_or("peak_noise", -1.0), 0.0);
}

TEST_F(ServeTest, DeadlineZeroQueryIsDeadlineExceededOnTheWire) {
  const io::JsonValue v = response_of(
      server_, "{\"op\":\"query\",\"l\":1e-6,\"deadline_seconds\":0}");
  EXPECT_EQ(v.string_or("status", ""), "deadline_exceeded");
  EXPECT_EQ(v.int_or("code", -1), 4);
  EXPECT_EQ(v.find("result"), nullptr);
}

TEST_F(ServeTest, ScenarioOpRunsAQuickScenario) {
  const io::JsonValue v = response_of(
      server_,
      "{\"op\":\"scenario\",\"id\":9,\"spec\":{\"scenario\":\"fig5\","
      "\"quick\":true}}");
  ASSERT_EQ(v.string_or("status", ""), "ok") << v.string_or("message", "");
  const io::JsonValue* result = v.find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->string_or("bench", ""), "fig5");
  EXPECT_NE(result->find("tables"), nullptr);
}

TEST_F(ServeTest, UnknownScenarioIsNotFoundOnTheWire) {
  const io::JsonValue v = response_of(
      server_,
      "{\"op\":\"scenario\",\"spec\":{\"scenario\":\"no_such_thing\"}}");
  EXPECT_EQ(v.string_or("status", ""), "not_found");
  EXPECT_EQ(v.int_or("code", -1), 2);
}

// ---------------------------------------------------------------------------
// Live telemetry on the stdio front end

TEST_F(ServeTest, AdminOpsWorkWithoutAnEventLoop) {
  // The stdio front end exposes the same admin surface as the socket
  // server, minus the server block (there is no event loop to report on).
  const io::JsonValue metrics =
      response_of(server_, "{\"op\":\"metrics\",\"id\":1}");
  ASSERT_EQ(metrics.string_or("status", ""), "ok");
  const io::JsonValue* mr = metrics.find("result");
  ASSERT_NE(mr, nullptr);
  EXPECT_EQ(mr->string_or("format", ""), "prometheus");
  EXPECT_EQ(mr->string_or("content_type", ""), "text/plain; version=0.0.4");

  const io::JsonValue json_fmt = response_of(
      server_, "{\"op\":\"metrics\",\"format\":\"json\",\"id\":2}");
  ASSERT_EQ(json_fmt.string_or("status", ""), "ok");
  EXPECT_NE(json_fmt.find("result")->find("metrics"), nullptr);

  const io::JsonValue stats = response_of(server_, "{\"op\":\"stats\"}");
  ASSERT_EQ(stats.string_or("status", ""), "ok");
  const io::JsonValue* sr = stats.find("result");
  ASSERT_NE(sr, nullptr);
  EXPECT_EQ(sr->find("server"), nullptr);  // no event loop behind stdio
  const io::JsonValue* shards = sr->find("shards");
  ASSERT_NE(shards, nullptr);
  ASSERT_EQ(shards->items().size(), 1u);
  EXPECT_NE(sr->find("trace"), nullptr);
  EXPECT_NE(sr->find("slow_queries"), nullptr);

  const io::JsonValue bad = response_of(
      server_, "{\"op\":\"metrics\",\"format\":\"protobuf\"}");
  EXPECT_EQ(bad.string_or("status", ""), "invalid_argument");
}

TEST_F(ServeTest, TracedColdCoupledQueryLandsInTheSlowLogWithStageTimes) {
  // The acceptance path: a client-traced cold coupled query must come back
  // stamped with its trace_id and per-stage timings (solve_us > 0 for a
  // cold solve), and the slow-query log must attribute the same request.
  SlowQueryLog::global().clear();
  const io::JsonValue v = response_of(
      server_,
      "{\"op\":\"query\",\"id\":1,\"technology\":\"100nm\",\"l\":1.1e-6,"
      "\"n_conductors\":2,\"coupling_cc\":2.5e-11,\"coupling_km\":0.25,"
      "\"trace_id\":\"slow-accept-1\"}");
  ASSERT_EQ(v.string_or("status", ""), "ok") << v.string_or("message", "");
  const io::JsonValue* result = v.find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->string_or("trace_id", ""), "slow-accept-1");
  EXPECT_GT(result->number_or("solve_us", -1.0), 0.0);
  EXPECT_GE(result->number_or("queue_us", -1.0), 0.0);
  EXPECT_GE(result->number_or("cache_us", -1.0), 0.0);

  const std::vector<SlowQueryLog::Entry> worst = SlowQueryLog::global().worst();
  ASSERT_FALSE(worst.empty());
  const SlowQueryLog::Entry* mine = nullptr;
  for (const auto& e : worst) {
    if (e.trace_id == "slow-accept-1") mine = &e;
  }
  ASSERT_NE(mine, nullptr) << "traced request missing from the slow log";
  EXPECT_EQ(mine->technology, "100nm");
  EXPECT_EQ(mine->status, "ok");
  EXPECT_FALSE(mine->from_cache);
  EXPECT_GT(mine->solve_us, 0.0);
  EXPECT_GE(mine->total_us, mine->solve_us);

  // A repeat of the same key is a cache hit: still stamped with ITS OWN
  // trace id, but with solve_us == 0 and from_cache in the log.
  const io::JsonValue hit = response_of(
      server_,
      "{\"op\":\"query\",\"id\":2,\"technology\":\"100nm\",\"l\":1.1e-6,"
      "\"n_conductors\":2,\"coupling_cc\":2.5e-11,\"coupling_km\":0.25,"
      "\"trace_id\":\"slow-accept-2\"}");
  ASSERT_EQ(hit.string_or("status", ""), "ok");
  EXPECT_EQ(hit.find("result")->string_or("trace_id", ""), "slow-accept-2");
  EXPECT_EQ(hit.find("result")->number_or("solve_us", -1.0), 0.0);

  // An untraced repeat sees the cached result WITHOUT any trace leakage
  // from the traced clients that warmed the key.
  const io::JsonValue plain = response_of(
      server_,
      "{\"op\":\"query\",\"id\":3,\"technology\":\"100nm\",\"l\":1.1e-6,"
      "\"n_conductors\":2,\"coupling_cc\":2.5e-11,\"coupling_km\":0.25}");
  ASSERT_EQ(plain.string_or("status", ""), "ok");
  EXPECT_EQ(plain.find("result")->find("trace_id"), nullptr);
  EXPECT_EQ(plain.find("result")->find("solve_us"), nullptr);
  SlowQueryLog::global().clear();
}

TEST_F(ServeTest, SlowLogKeepsTheWorstNOrderedByTotal) {
  SlowQueryLog::global().clear();
  for (int i = 0; i < 50; ++i) {
    SlowQueryLog::Entry e;
    e.trace_id = "t" + std::to_string(i);
    e.status = "ok";
    e.total_us = static_cast<double>(100 + i);
    SlowQueryLog::global().note(e);
  }
  const auto worst = SlowQueryLog::global().worst();
  ASSERT_EQ(worst.size(), SlowQueryLog::kCapacity);
  // Descending by total, and only the top 32 of the 50 survive.
  EXPECT_EQ(worst.front().total_us, 149.0);
  EXPECT_EQ(worst.back().total_us, 118.0);
  for (std::size_t i = 1; i < worst.size(); ++i) {
    EXPECT_LE(worst[i].total_us, worst[i - 1].total_us);
  }
  EXPECT_EQ(SlowQueryLog::global().recorded(), 50u);
  SlowQueryLog::global().clear();
}

}  // namespace
}  // namespace rlc::svc
