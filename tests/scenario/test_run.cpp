/// End-to-end scenario runs: fig4 and fig7 must reproduce the retired
/// standalone binaries bit-for-bit, results must be deterministic across
/// thread counts, and the JSON envelope must parse back with the schema
/// fields rlc_run artifacts promise.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rlc/core/lcrit.hpp"
#include "rlc/core/optimizer.hpp"
#include "rlc/exec/thread_pool.hpp"
#include "rlc/io/json_reader.hpp"
#include "rlc/scenario/registry.hpp"

namespace {

using namespace rlc::scenario;
using rlc::core::OptimResult;
using rlc::core::SweepOptions;
using rlc::core::Technology;

const Scenario& scenario(const std::string& name) {
  register_all_scenarios();
  const Scenario* s = ScenarioRegistry::global().find(name);
  EXPECT_NE(s, nullptr) << name;
  return *s;
}

/// The exact computation bench/fig4_lcrit.cpp performed before it was
/// retired: default 26-point sweep, default solver options, critical
/// inductance at the RLC-optimal (h, k) per node.
TEST(ScenarioRun, Fig4MatchesLegacyBinaryBitExactly) {
  const Scenario& s = scenario("fig4");
  const ScenarioResult res = run_scenario(s, s.defaults);
  ASSERT_TRUE(res.error.empty()) << res.error;
  ASSERT_EQ(res.tables.size(), 1u);
  const Table& t = res.tables[0];

  std::vector<double> ls;
  for (int i = 0; i <= 25; ++i) ls.push_back(5.0e-6 * i / 25);
  const Technology t250 = Technology::nm250();
  const Technology t100 = Technology::nm100();
  const SweepOptions sweep;  // the legacy binary used the defaults
  const auto r250 = optimize_rlc_sweep(t250, ls, sweep);
  const auto r100 = optimize_rlc_sweep(t100, ls, sweep);

  ASSERT_EQ(t.rows.size(), ls.size());
  for (std::size_t i = 0; i < ls.size(); ++i) {
    ASSERT_TRUE(r250[i].converged && r100[i].converged) << i;
    // EXPECT_EQ throughout: bit-identical, not approximately equal.
    EXPECT_EQ(t.rows[i][0].number, ls[i] * 1e6) << i;
    EXPECT_EQ(t.rows[i][1].number,
              critical_inductance(t250, r250[i].h, r250[i].k) * 1e6)
        << i;
    EXPECT_EQ(t.rows[i][2].number,
              critical_inductance(t100, r100[i].h, r100[i].k) * 1e6)
        << i;
  }
}

/// Likewise for bench/fig7_delay_ratio.cpp: three technologies, delay
/// ratios normalized to the l = 0 point of each series.
TEST(ScenarioRun, Fig7MatchesLegacyBinaryBitExactly) {
  const Scenario& s = scenario("fig7");
  const ScenarioResult res = run_scenario(s, s.defaults);
  ASSERT_TRUE(res.error.empty()) << res.error;
  ASSERT_EQ(res.tables.size(), 1u);
  const Table& t = res.tables[0];

  std::vector<double> ls;
  for (int i = 0; i <= 25; ++i) ls.push_back(5.0e-6 * i / 25);
  const Technology techs[] = {Technology::nm250(), Technology::nm100(),
                              Technology::nm100_with_250nm_dielectric()};
  const SweepOptions sweep;
  std::vector<std::vector<OptimResult>> sweeps;
  for (const auto& tech : techs) {
    sweeps.push_back(optimize_rlc_sweep(tech, ls, sweep));
  }

  ASSERT_EQ(t.rows.size(), ls.size());
  for (std::size_t i = 0; i < ls.size(); ++i) {
    EXPECT_EQ(t.rows[i][0].number, ls[i] * 1e6) << i;
    for (std::size_t j = 0; j < 3; ++j) {
      ASSERT_TRUE(sweeps[j][i].converged) << i;
      EXPECT_EQ(t.rows[i][j + 1].number,
                sweeps[j][i].delay_per_length / sweeps[j][0].delay_per_length)
          << "row " << i << " tech " << j;
    }
  }
}

/// The determinism contract: a scenario's numbers must not depend on the
/// pool size it runs on.
TEST(ScenarioRun, ResultsAreIdenticalAcrossThreadCounts) {
  for (const char* name : {"fig4", "fig8", "ablation_ladder"}) {
    const Scenario& s = scenario(name);
    const ScenarioSpec spec = quick_spec(s.defaults);
    rlc::exec::ThreadPool pool1(1);
    rlc::exec::ThreadPool pool3(3);
    const ScenarioResult a = run_scenario(s, spec, &pool1);
    const ScenarioResult b = run_scenario(s, spec, &pool3);
    ASSERT_TRUE(a.error.empty()) << name << ": " << a.error;
    EXPECT_EQ(a.numeric_fingerprint(), b.numeric_fingerprint()) << name;
    EXPECT_EQ(a.threads, 1);
    EXPECT_EQ(b.threads, 3);
  }
}

TEST(ScenarioRun, EnvelopeJsonParsesWithSchemaFields) {
  const Scenario& s = scenario("fig4");
  const ScenarioSpec spec = quick_spec(s.defaults);
  const ScenarioResult res = run_scenario(s, spec);
  const rlc::io::JsonValue v = rlc::io::parse_json(res.to_json().str());

  EXPECT_EQ(v.int_or("schema", 0), kSchemaVersion);
  EXPECT_EQ(v.string_or("bench", ""), "fig4");
  EXPECT_EQ(v.bool_or("quick", false), true);
  EXPECT_GE(v.number_or("wall_seconds", -1.0), 0.0);
  EXPECT_GE(v.int_or("threads", 0), 1);

  const rlc::io::JsonValue* tables = v.find("tables");
  ASSERT_NE(tables, nullptr);
  ASSERT_GE(tables->items().size(), 1u);
  const rlc::io::JsonValue& t0 = tables->items()[0];
  ASSERT_NE(t0.find("columns"), nullptr);
  ASSERT_NE(t0.find("rows"), nullptr);
  EXPECT_EQ(t0.find("rows")->items()[0].items().size(),
            t0.find("columns")->items().size());

  ASSERT_NE(v.find("counters"), nullptr);
  EXPECT_GE(v.find("counters")->int_or("tasks", -1), 0);

  // The embedded spec round-trips back to the spec that ran.
  const rlc::io::JsonValue* spec_j = v.find("spec");
  ASSERT_NE(spec_j, nullptr);
  EXPECT_EQ(ScenarioSpec::from_json(*spec_j).value(), spec);
}

TEST(ScenarioRun, InvalidSpecIsRejectedBeforeRunning) {
  const Scenario& s = scenario("fig4");
  ScenarioSpec bad = s.defaults;
  bad.threshold = 2.0;
  EXPECT_THROW(run_scenario(s, bad), std::invalid_argument);
}

}  // namespace
