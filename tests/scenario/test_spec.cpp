/// ScenarioSpec unit tests: sweep-grid arithmetic (bit-identical to the
/// legacy bench::inductance_sweep helper), validation failures, technology
/// resolution, and the JSON round-trip rlc_run --spec relies on.

#include "rlc/scenario/spec.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace {

using rlc::scenario::ScenarioSpec;
using rlc::scenario::SweepSpec;
using rlc::scenario::technology_by_name;

/// The arithmetic the retired bench_util.hpp helper used for every figure
/// sweep; values() must reproduce it bit-for-bit.
std::vector<double> legacy_inductance_sweep(int n, double l_max = 5.0e-6) {
  std::vector<double> ls;
  for (int i = 0; i <= n; ++i) {
    ls.push_back(l_max * static_cast<double>(i) / static_cast<double>(n));
  }
  return ls;
}

TEST(SweepSpec, DefaultGridMatchesLegacyHelperBitExactly) {
  const std::vector<double> got = SweepSpec{}.values();  // 0..5 nH/mm, 26 pts
  const std::vector<double> want = legacy_inductance_sweep(25);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << i;  // EQ, not NEAR: bit-identical
  }
}

TEST(SweepSpec, GridShapes) {
  EXPECT_EQ((SweepSpec{1e-6, 9e-6, 1, {}}.values()),
            (std::vector<double>{1e-6}));
  EXPECT_EQ((SweepSpec{0.0, 4e-6, 3, {}}.values()),
            (std::vector<double>{0.0, 2e-6, 4e-6}));
  const std::vector<double> list{5e-7, 2e-6};
  EXPECT_EQ((SweepSpec{0, 0, 1, list}.values()), list);  // explicit wins
}

TEST(SweepSpec, ValidateRejectsBadGrids) {
  const auto code = [](const SweepSpec& sp) { return sp.validate().code(); };
  EXPECT_EQ(code({0, 5e-6, 0, {}}), rlc::StatusCode::kInvalidArgument);
  EXPECT_EQ(code({-1e-6, 5e-6, 5, {}}), rlc::StatusCode::kInvalidArgument);
  EXPECT_EQ(code({5e-6, 1e-6, 5, {}}), rlc::StatusCode::kInvalidArgument);
  EXPECT_EQ(code({1e-6, 1e-6, 5, {}}), rlc::StatusCode::kInvalidArgument);
  EXPECT_EQ(code({0, 0, 1, {-1e-6}}), rlc::StatusCode::kInvalidArgument);
  EXPECT_TRUE((SweepSpec{1e-6, 1e-6, 1, {}}.validate().is_ok()));
  // values() still throws for callers that skip validate().
  EXPECT_THROW((SweepSpec{0, 5e-6, 0, {}}.values()), std::invalid_argument);
}

TEST(ScenarioSpec, ValidateChecksEveryField) {
  ScenarioSpec ok;
  ok.scenario = "fig4";
  EXPECT_TRUE(ok.validate().is_ok());

  const auto expect_invalid = [](const ScenarioSpec& sp) {
    const rlc::Status st = sp.validate();
    EXPECT_EQ(st.code(), rlc::StatusCode::kInvalidArgument);
    EXPECT_FALSE(st.message().empty());
  };
  ScenarioSpec s = ok;
  s.scenario.clear();
  expect_invalid(s);

  s = ok;
  s.technology = "7nm_finfet_x";
  expect_invalid(s);

  s = ok;
  s.threshold = 1.0;
  expect_invalid(s);

  s = ok;
  s.segments_per_line = 0;
  expect_invalid(s);

  s = ok;
  s.ring_stages = 4;  // even ring cannot oscillate
  expect_invalid(s);
}

TEST(ScenarioSpec, TechnologyByNameResolvesAllSpellings) {
  EXPECT_EQ(technology_by_name("250nm").name, technology_by_name("250").name);
  EXPECT_EQ(technology_by_name("100nm").name, technology_by_name("100").name);
  EXPECT_NO_THROW(technology_by_name("100nm_c250"));
  // Interpolated nodes: "<N>nm" or a bare number.
  const auto t180 = technology_by_name("180nm");
  EXPECT_NEAR(t180.line(0.0).c, technology_by_name("180").line(0.0).c, 0.0);
  EXPECT_THROW(technology_by_name(""), std::invalid_argument);
  EXPECT_THROW(technology_by_name("bogus"), std::invalid_argument);
}

TEST(ScenarioSpec, JsonRoundTripPreservesEveryField) {
  ScenarioSpec s;
  s.scenario = "fig7";
  s.technology = "250nm";
  s.sweep = SweepSpec{1e-7, 4e-6, 11, {}};
  s.threshold = 0.4;
  s.segments_per_line = 20;
  s.ring_stages = 7;
  s.quick = true;
  s.parallel = false;
  s.max_newton_iterations = 55;
  s.residual_tol = 1e-11;
  s.talbot_points = 64;
  const ScenarioSpec back =
      ScenarioSpec::from_json_text(s.to_json().str()).value();
  EXPECT_EQ(back, s);

  ScenarioSpec e = s;
  e.sweep = SweepSpec{0, 0, 26, {1.8e-6, 2.2e-6}};
  EXPECT_EQ(ScenarioSpec::from_json_text(e.to_json().str()).value(), e);
}

TEST(ScenarioSpec, FromJsonReturnsStatusNotThrow) {
  // Malformed document and out-of-domain value both come back as
  // invalid_argument — nothing escapes the parse boundary.
  EXPECT_EQ(ScenarioSpec::from_json_text("{oops").status().code(),
            rlc::StatusCode::kInvalidArgument);
  EXPECT_EQ(ScenarioSpec::from_json_text(
                "{\"scenario\": \"fig4\", \"threshold\": 2.0}")
                .status()
                .code(),
            rlc::StatusCode::kInvalidArgument);
  EXPECT_EQ(
      ScenarioSpec::from_json_text("{\"scenario\": \"fig4\"}").status().code(),
      rlc::StatusCode::kOk);
}

TEST(ScenarioSpec, FromJsonToleratesMissingFields) {
  const ScenarioSpec s =
      ScenarioSpec::from_json_text("{\"scenario\": \"fig4\"}").value();
  EXPECT_EQ(s.scenario, "fig4");
  EXPECT_EQ(s, [] {
    ScenarioSpec d;
    d.scenario = "fig4";
    return d;
  }());  // everything else at defaults
}

TEST(ScenarioSpec, OptionsMapSpecFields) {
  ScenarioSpec s;
  s.scenario = "x";
  s.threshold = 0.45;
  s.max_newton_iterations = 33;
  s.residual_tol = 1e-8;
  s.talbot_points = 40;
  const auto opt = s.optim_options();
  EXPECT_EQ(opt.f, 0.45);
  EXPECT_EQ(opt.max_iterations, 33);
  EXPECT_EQ(opt.residual_tolerance, 1e-8);
  const auto ex = s.exact_options();
  EXPECT_EQ(ex.talbot_points, 40);
  EXPECT_EQ(ex.window_points, 40);
}

}  // namespace
