/// Registry completeness tests: every legacy bench binary must be present
/// as a registered scenario (the static list below is the retirement
/// contract), registration is idempotent, and duplicates are rejected.

#include "rlc/scenario/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

namespace {

using rlc::scenario::Scenario;
using rlc::scenario::ScenarioRegistry;

/// The 19 experiments the retired per-figure binaries served plus the
/// four coupled-line crosstalk scenarios of the multi-conductor stack and
/// the four power-objective scenarios of the objective-API redesign.
/// If a scenario is renamed or dropped, this list is the reviewable record
/// of that decision — update it deliberately, not to make the test pass.
const std::vector<std::string> kLegacyBenchNames = {
    "table1",        "fig2",
    "fig4",          "fig5",
    "fig6",          "fig7",
    "fig8",          "fig9_10",
    "fig11",         "fig12",
    "ablation_pade", "ablation_ladder",
    "ablation_baselines", "ext_crosstalk",
    "ext_frequency_response", "ext_scaling_trend",
    "ext_skin_effect", "perf_solvers",
    "perf_exact",      "xtalk_quiet",
    "xtalk_inphase",   "xtalk_antiphase",
    "xtalk_noise_opt", "power_100nm",
    "power_35nm",      "pareto_100nm",
    "pareto_35nm",
};

TEST(ScenarioRegistry, EveryLegacyBenchIsRegistered) {
  rlc::scenario::register_all_scenarios();
  const auto& reg = ScenarioRegistry::global();
  for (const auto& name : kLegacyBenchNames) {
    const Scenario* s = reg.find(name);
    ASSERT_NE(s, nullptr) << name;
    EXPECT_EQ(s->name, name);
    EXPECT_FALSE(s->title.empty()) << name;
    EXPECT_TRUE(s->fn != nullptr) << name;
    EXPECT_EQ(s->defaults.scenario, name);
    EXPECT_TRUE(s->defaults.validate().is_ok()) << name;
  }
  // Nothing beyond the known set either: additions should extend the list.
  EXPECT_EQ(reg.size(), kLegacyBenchNames.size());
}

TEST(ScenarioRegistry, GroupsAreConsistent) {
  rlc::scenario::register_all_scenarios();
  const auto& reg = ScenarioRegistry::global();
  for (const auto& name : reg.names()) {
    const std::string& g = reg.find(name)->group;
    EXPECT_TRUE(g == "figure" || g == "table" || g == "ablation" ||
                g == "extension" || g == "perf")
        << name << " group " << g;
  }
  EXPECT_EQ(reg.find("fig4")->group, "figure");
  EXPECT_EQ(reg.find("table1")->group, "table");
  EXPECT_EQ(reg.find("perf_exact")->group, "perf");
}

TEST(ScenarioRegistry, ObjectivesAreConsistent) {
  rlc::scenario::register_all_scenarios();
  const auto& reg = ScenarioRegistry::global();
  for (const auto& name : reg.names()) {
    const std::string& o = reg.find(name)->objective;
    EXPECT_TRUE(o == "delay" || o == "noise" || o == "power")
        << name << " objective " << o;
  }
  EXPECT_EQ(reg.find("fig4")->objective, "delay");
  EXPECT_EQ(reg.find("xtalk_quiet")->objective, "noise");
  EXPECT_EQ(reg.find("power_100nm")->objective, "power");
  EXPECT_EQ(reg.find("pareto_35nm")->objective, "power");
}

TEST(ScenarioRegistry, RegisterAllIsIdempotent) {
  rlc::scenario::register_all_scenarios();
  const std::size_t n = ScenarioRegistry::global().size();
  rlc::scenario::register_all_scenarios();
  EXPECT_EQ(ScenarioRegistry::global().size(), n);
}

TEST(ScenarioRegistry, RejectsDuplicatesAndBlanks) {
  ScenarioRegistry local;
  Scenario s;
  s.name = "x";
  s.title = "t";
  s.group = "figure";
  s.fn = [](const rlc::scenario::ScenarioSpec&,
            rlc::scenario::ScenarioContext&) {
    return rlc::scenario::ScenarioResult{};
  };
  local.add(s);
  EXPECT_EQ(local.size(), 1u);
  EXPECT_THROW(local.add(s), std::invalid_argument);  // duplicate
  Scenario blank = s;
  blank.name.clear();
  EXPECT_THROW(local.add(blank), std::invalid_argument);
  Scenario odd = s;
  odd.name = "y";
  odd.objective = "area";
  EXPECT_THROW(local.add(odd), std::invalid_argument);
}

TEST(ScenarioRegistry, QuickSpecShrinksGrids) {
  rlc::scenario::ScenarioSpec spec;
  spec.scenario = "fig4";
  const auto q = rlc::scenario::quick_spec(spec);
  EXPECT_TRUE(q.quick);
  EXPECT_LE(q.sweep.points, 7);
  EXPECT_LE(q.segments_per_line, 8);
  EXPECT_TRUE(q.validate().is_ok());
}

}  // namespace
