#include "rlc/extract/capacitance.hpp"

#include <gtest/gtest.h>

#include "rlc/math/constants.hpp"

namespace rlc::extract {
namespace {

TEST(Capacitance, ParallelPlate) {
  // 2 um wide plate 1 um above ground in vacuum.
  const double c = parallel_plate(2e-6, 1e-6, 1.0);
  EXPECT_NEAR(c, 2.0 * rlc::math::kEps0, 1e-20);
  EXPECT_THROW(parallel_plate(0.0, 1e-6, 1.0), std::domain_error);
}

TEST(Capacitance, SakuraiSingleAgainstHandEvaluation) {
  // w/h = 1, t/h = 1: C/eps = 1.15 + 2.80 = 3.95.
  const double c = sakurai_tamaru_single(1e-6, 1e-6, 1e-6, 1.0);
  EXPECT_NEAR(c, 3.95 * rlc::math::kEps0, 1e-4 * c);
}

TEST(Capacitance, SingleLineMonotonicities) {
  const double base = sakurai_tamaru_single(2e-6, 2.5e-6, 13.9e-6, 3.3);
  EXPECT_GT(sakurai_tamaru_single(4e-6, 2.5e-6, 13.9e-6, 3.3), base);  // wider
  EXPECT_GT(sakurai_tamaru_single(2e-6, 5.0e-6, 13.9e-6, 3.3), base);  // thicker
  EXPECT_LT(sakurai_tamaru_single(2e-6, 2.5e-6, 30e-6, 3.3), base);    // higher
}

TEST(Capacitance, CouplingFallsWithSpacing) {
  const double near = sakurai_tamaru_coupling(2e-6, 2.5e-6, 13.9e-6, 1e-6, 3.3);
  const double far = sakurai_tamaru_coupling(2e-6, 2.5e-6, 13.9e-6, 4e-6, 3.3);
  EXPECT_GT(near, far);
  EXPECT_GT(far, 0.0);
}

TEST(Capacitance, BusMiddleCombinesGroundAndCoupling) {
  const double w = 2e-6, t = 2.5e-6, hgt = 13.9e-6, pitch = 4e-6, er = 3.3;
  const double total = sakurai_tamaru_bus_middle(w, t, hgt, pitch, er);
  const double ground = sakurai_tamaru_single(w, t, hgt, er);
  const double cc = sakurai_tamaru_coupling(w, t, hgt, pitch - w, er);
  EXPECT_NEAR(total, ground + 2.0 * cc, 1e-18);
  EXPECT_THROW(sakurai_tamaru_bus_middle(w, t, hgt, 1e-6, er), std::domain_error);
}

TEST(Capacitance, MillerRangeSpansFourX) {
  // Section 3: "effective line capacitance can vary by as much as 4x" when
  // the aspect ratio makes coupling dominate.
  const MillerRange r = miller_range(1e-12, 1.5e-12);
  EXPECT_DOUBLE_EQ(r.c_min, 1e-12);
  EXPECT_DOUBLE_EQ(r.c_nominal, 4e-12);
  EXPECT_DOUBLE_EQ(r.c_max, 7e-12);
  EXPECT_GT(r.c_max / r.c_min, 4.0);
  EXPECT_THROW(miller_range(-1.0, 0.0), std::domain_error);
}

}  // namespace
}  // namespace rlc::extract
