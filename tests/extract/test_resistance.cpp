#include "rlc/extract/resistance.hpp"

#include <gtest/gtest.h>

#include "rlc/math/constants.hpp"

namespace rlc::extract {
namespace {

TEST(Resistance, Table1GeometryGivesFewOhmsPerMm) {
  // Bulk copper in the 2 x 2.5 um^2 cross-section: 3.44 Ohm/mm; the paper's
  // 4.4 Ohm/mm reflects barrier/liner overhead — same ballpark.
  const double r = resistance_per_length(rlc::math::kRhoCopper, 2e-6, 2.5e-6);
  EXPECT_NEAR(r, 3.44e3, 0.05e3);
  EXPECT_LT(r, 4.4e3);
  EXPECT_GT(4.4e3 / r, 1.0);
  EXPECT_LT(4.4e3 / r, 1.6);
}

TEST(Resistance, TemperatureCoefficient) {
  // Copper TCR ~ 0.0039/K: +10% at +25 K around room temperature... check
  // the linear model exactly.
  const double rho = resistivity_at_temperature(1.72e-8, 0.0039, 300.0, 350.0);
  EXPECT_NEAR(rho, 1.72e-8 * (1.0 + 0.0039 * 50.0), 1e-14);
}

TEST(Resistance, SkinDepthCopperAt1GHz) {
  // Classic number: ~2.1 um at 1 GHz for copper.
  const double d = skin_depth(1.72e-8, 1e9);
  EXPECT_NEAR(d, 2.09e-6, 0.05e-6);
}

TEST(Resistance, DcModelValidityBoundary) {
  // Table 1 wire (2 x 2.5 um): half-thickness 1 um < delta up to ~4 GHz.
  EXPECT_TRUE(dc_resistance_valid(1.72e-8, 2e-6, 2.5e-6, 1e9));
  EXPECT_FALSE(dc_resistance_valid(1.72e-8, 20e-6, 25e-6, 1e9));
}

TEST(Resistance, InputValidation) {
  EXPECT_THROW(resistance_per_length(0.0, 1e-6, 1e-6), std::domain_error);
  EXPECT_THROW(skin_depth(1.72e-8, 0.0), std::domain_error);
  EXPECT_THROW(resistivity_at_temperature(0.0, 0.0039, 300.0, 350.0),
               std::domain_error);
}

}  // namespace
}  // namespace rlc::extract
