#include "rlc/extract/inductance.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rlc/math/constants.hpp"

namespace rlc::extract {
namespace {

TEST(Inductance, PartialSelfHandEvaluation) {
  // 1 mm bar, w + t = 4.5 um:
  // L = (mu0 L / 2 pi)[ln(2000/4.5e-3... ) ...] — evaluate the formula.
  const double len = 1e-3, w = 2e-6, t = 2.5e-6;
  const double expect = rlc::math::kMu0 / (2.0 * rlc::math::kPi) * len *
                        (std::log(2.0 * len / (w + t)) + 0.5 +
                         0.2235 * (w + t) / len);
  EXPECT_NEAR(partial_self_inductance(len, w, t), expect, 1e-18);
  // Order of magnitude: ~1.3 nH for 1 mm of top metal.
  EXPECT_GT(partial_self_inductance(len, w, t), 0.8e-9);
  EXPECT_LT(partial_self_inductance(len, w, t), 2.5e-9);
}

TEST(Inductance, PartialSelfGrowsSuperlinearlyWithLength) {
  // Per-unit-length partial inductance increases with segment length (log
  // term) — the paper's Section 1.1 point that "inductance per unit length"
  // requires a return path to be meaningful.
  const double a = partial_self_per_length(1e-3, 2e-6, 2.5e-6);
  const double b = partial_self_per_length(1e-2, 2e-6, 2.5e-6);
  EXPECT_GT(b, a);
}

TEST(Inductance, MutualBelowSelfAndFallsWithDistance) {
  const double len = 5e-3;
  const double self = partial_self_inductance(len, 2e-6, 2.5e-6);
  double prev = self;
  for (double d : {4e-6, 8e-6, 20e-6, 100e-6}) {
    const double m = partial_mutual_inductance(len, d);
    EXPECT_GT(m, 0.0);
    EXPECT_LT(m, prev) << d;
    prev = m;
  }
}

TEST(Inductance, LoopOverPlaneWithinPaperSweepRange) {
  // Return path at the substrate (t_ins ~ 14-15 um): worst-case l of a few
  // nH/mm justifies the paper's 0..5 nH/mm sweep; nearby return gives much
  // less.  (Loop-over-plane with nearby plane.)
  const double l_sub = loop_inductance_over_plane(2e-6, 2.5e-6, 15.4e-6);
  EXPECT_GT(l_sub, 0.2e-6);   // > 0.2 nH/mm
  EXPECT_LT(l_sub, 5.0e-6);   // < 5 nH/mm
  const double l_near = loop_inductance_over_plane(2e-6, 2.5e-6, 2e-6);
  EXPECT_LT(l_near, l_sub);
}

TEST(Inductance, DistantReturnWireApproachesPaperWorstCase) {
  // A return wire hundreds of microns away (distant quiet line) pushes the
  // loop inductance toward the paper's worst-case scale.
  const double l_far = loop_inductance_wire_pair(2e-6, 2.5e-6, 500e-6);
  EXPECT_GT(l_far, 2.0e-6);
  EXPECT_LT(l_far, 6.0e-6);
}

TEST(Inductance, LoopPairIsTwiceOverPlaneAtSameDistance) {
  // Image theory: wire over plane at height h == half of the pair value at
  // separation... 2h?  Over-plane(h) = (mu0/2pi) acosh(h/r); pair(d) =
  // (mu0/pi) ln(d/r).  For d >> r, acosh(x) ~ ln(2x): pair(2h) ~ 2 *
  // over_plane(h) asymptotically.
  const double h = 50e-6;
  const double over = loop_inductance_over_plane(2e-6, 2.5e-6, h);
  const double pair = loop_inductance_wire_pair(2e-6, 2.5e-6, 2.0 * h);
  EXPECT_NEAR(pair, 2.0 * over, 0.02 * pair);
}

TEST(Inductance, GmdFormula) {
  EXPECT_NEAR(rect_self_gmd(2e-6, 2.5e-6), 0.22313 * 4.5e-6, 1e-12);
}

TEST(Inductance, PartialMatrixStructure) {
  const std::vector<double> pos{0.0, 4e-6, 8e-6};
  const auto L = partial_inductance_matrix(pos, 5e-3, 2e-6, 2.5e-6);
  ASSERT_EQ(L.rows(), 3u);
  // Symmetric, diagonal-dominant, mutual falls with distance.
  for (int i = 0; i < 3; ++i) {
    EXPECT_GT(L(i, i), 0.0);
    for (int j = 0; j < 3; ++j) {
      EXPECT_NEAR(L(i, j), L(j, i), 1e-20);
      if (i != j) {
        EXPECT_LT(L(i, j), L(i, i));
      }
    }
  }
  EXPECT_GT(L(0, 1), L(0, 2));  // nearer wire couples more
  EXPECT_THROW(partial_inductance_matrix({}, 1e-3, 2e-6, 2.5e-6),
               std::domain_error);
}

TEST(Inductance, LoopFromPartialMatchesPairFormula) {
  // L_loop = L11 + L22 - 2 M for a signal/return pair must approach the
  // closed-form wire-pair value for long segments (both are asymptotic
  // forms, so allow a few percent).
  const double d = 50e-6, len = 20e-3, w = 2e-6, t = 2.5e-6;
  const auto L = partial_inductance_matrix({0.0, d}, len, w, t);
  const double loop_partial = loop_from_partial(L, 0, 1) / len;
  const double loop_closed = loop_inductance_wire_pair(w, t, d);
  EXPECT_NEAR(loop_partial, loop_closed, 0.05 * loop_closed);
  EXPECT_THROW(loop_from_partial(L, 0, 0), std::out_of_range);
  EXPECT_THROW(loop_from_partial(L, 0, 5), std::out_of_range);
}

TEST(Inductance, InputValidation) {
  EXPECT_THROW(partial_self_inductance(0.0, 1e-6, 1e-6), std::domain_error);
  EXPECT_THROW(partial_mutual_inductance(1e-3, 0.0), std::domain_error);
  EXPECT_THROW(loop_inductance_over_plane(2e-6, 2.5e-6, 0.5e-6),
               std::domain_error);
  EXPECT_THROW(loop_inductance_wire_pair(2e-6, 2.5e-6, 0.5e-6),
               std::domain_error);
}

}  // namespace
}  // namespace rlc::extract
