#include "rlc/extract/bem2d.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rlc/math/constants.hpp"

namespace rlc::extract {
namespace {

TEST(PanelPotential, SymmetricAboutPanelCenter) {
  const Panel p{-1e-6, 5e-6, 1e-6, 5e-6};  // horizontal panel at y = 5 um
  const double eps = rlc::math::kEps0;
  const double left = panel_potential(p, -3e-6, 5e-6, eps);
  const double right = panel_potential(p, 3e-6, 5e-6, eps);
  EXPECT_NEAR(left, right, 1e-6 * std::abs(left));
}

TEST(PanelPotential, VanishesOnGroundPlane) {
  // The image construction forces phi = 0 at y = 0 exactly.
  const Panel p{-1e-6, 5e-6, 1e-6, 5e-6};
  const double eps = rlc::math::kEps0;
  for (double x : {-4e-6, 0.0, 2e-6, 7e-6}) {
    EXPECT_NEAR(panel_potential(p, x, 0.0, eps), 0.0, 1e-12);
  }
}

TEST(PanelPotential, FarFieldMatchesLineChargePair) {
  // Far away, the panel and its image look like a line-charge dipole:
  // phi ~ (q / 2 pi eps) ln(r'/r) with q = panel length.
  const Panel p{-0.5e-6, 10e-6, 0.5e-6, 10e-6};
  const double eps = rlc::math::kEps0;
  const double px = 300e-6, py = 40e-6;
  const double r = std::hypot(px, py - 10e-6);
  const double rp = std::hypot(px, py + 10e-6);
  const double expect = (1e-6 / (2.0 * rlc::math::kPi * eps)) * std::log(rp / r);
  EXPECT_NEAR(panel_potential(p, px, py, eps), expect, 1e-3 * std::abs(expect));
}

TEST(Panelize, CountsAndClosure) {
  RectConductor r;
  r.x_center = 0.0;
  r.y_bottom = 5e-6;
  r.width = 2e-6;
  r.thickness = 1e-6;
  Bem2dOptions opts;
  opts.panels_per_side = 8;
  const auto panels = panelize(r, opts);
  EXPECT_EQ(panels.size(), 32u);
  // Total perimeter preserved.
  double per = 0.0;
  for (const auto& p : panels) per += p.length();
  EXPECT_NEAR(per, 2.0 * (2e-6 + 1e-6), 1e-12);
}

TEST(Panelize, RejectsConductorTouchingPlane) {
  RectConductor r;
  r.y_bottom = 0.0;
  r.width = 1e-6;
  r.thickness = 1e-6;
  EXPECT_THROW(panelize(r, {}), std::domain_error);
}

TEST(Bem2d, CylinderOverPlaneMatchesExact) {
  // Gold-standard analytic case: C = 2 pi eps / acosh(h/a).
  const double a = 1e-6, h = 8e-6;
  const auto panels = panelize_circle(0.0, h, a, 96);
  const auto C = capacitance_matrix_panels({panels}, 1.0);
  const double exact = cylinder_over_plane_exact(a, h, 1.0);
  EXPECT_NEAR(C(0, 0), exact, 2e-3 * exact);
}

TEST(Bem2d, CylinderConvergesUnderRefinement) {
  const double a = 1e-6, h = 6e-6;
  const double exact = cylinder_over_plane_exact(a, h, 1.0);
  double prev_err = 1e9;
  for (int n : {12, 24, 48, 96}) {
    const auto C = capacitance_matrix_panels({panelize_circle(0.0, h, a, n)}, 1.0);
    const double err = std::abs(C(0, 0) - exact) / exact;
    EXPECT_LT(err, prev_err * 1.05) << n;
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-3);
}

TEST(Bem2d, DielectricScalesLinearly) {
  const auto wires = parallel_bus(1, 2e-6, 2.5e-6, 4e-6, 13.9e-6);
  Bem2dOptions o1;
  o1.panels_per_side = 12;
  Bem2dOptions o2 = o1;
  o2.eps_r = 3.3;
  const double c1 = total_capacitance(wires, 0, o1);
  const double c2 = total_capacitance(wires, 0, o2);
  EXPECT_NEAR(c2 / c1, 3.3, 1e-9);
}

TEST(Bem2d, MaxwellMatrixSignsAndSymmetry) {
  const auto wires = parallel_bus(3, 2e-6, 2.5e-6, 4e-6, 13.9e-6);
  Bem2dOptions opts;
  opts.panels_per_side = 10;
  const auto C = capacitance_matrix(wires, opts);
  for (int i = 0; i < 3; ++i) {
    EXPECT_GT(C(i, i), 0.0);
    double row = 0.0;
    for (int j = 0; j < 3; ++j) {
      if (i != j) {
        EXPECT_LT(C(i, j), 0.0) << i << j;
        // Collocation breaks exact symmetry; require ~1% agreement.
        EXPECT_NEAR(C(i, j), C(j, i), 0.02 * std::abs(C(i, j)));
      }
      row += C(i, j);
    }
    EXPECT_GT(row, 0.0);  // net capacitance to the ground plane
  }
  // Outer wires mirror each other.
  EXPECT_NEAR(C(0, 0), C(2, 2), 1e-6 * C(0, 0));
}

TEST(Bem2d, NeighborsIncreaseTotalCapacitance) {
  // Lateral coupling adds to the middle wire's total capacitance (the
  // Miller discussion in Section 3).
  Bem2dOptions opts;
  opts.panels_per_side = 10;
  opts.eps_r = 3.3;
  const auto alone = parallel_bus(1, 2e-6, 2.5e-6, 4e-6, 13.9e-6);
  const auto bus = parallel_bus(3, 2e-6, 2.5e-6, 4e-6, 13.9e-6);
  const double c_alone = total_capacitance(alone, 0, opts);
  const double c_mid = total_capacitance(bus, 1, opts);
  EXPECT_GT(c_mid, 1.5 * c_alone);
}

TEST(Bem2d, Table1GeometryIsRightOrderOfMagnitude) {
  // The paper extracted c = 203.5 pF/m (250 nm node, eps_r 3.3) with a 3D
  // extractor and a multi-layer environment; our 2D substrate-only model
  // must land in the same decade.
  Bem2dOptions opts;
  opts.panels_per_side = 16;
  opts.eps_r = 3.3;
  const auto bus = parallel_bus(3, 2e-6, 2.5e-6, 4e-6, 13.9e-6);
  const double c = total_capacitance(bus, 1, opts);
  EXPECT_GT(c, 60e-12);
  EXPECT_LT(c, 400e-12);
}

TEST(Bem2d, InputValidation) {
  EXPECT_THROW(capacitance_matrix_panels({}, 1.0), std::invalid_argument);
  EXPECT_THROW(panelize_circle(0.0, 1e-6, 2e-6, 32), std::domain_error);
  const auto wires = parallel_bus(1, 2e-6, 2.5e-6, 4e-6, 13.9e-6);
  EXPECT_THROW(total_capacitance(wires, 5, {}), std::out_of_range);
  EXPECT_THROW(cylinder_over_plane_exact(2.0, 1.0, 1.0), std::domain_error);
}

}  // namespace
}  // namespace rlc::extract
