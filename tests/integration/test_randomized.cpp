/// Randomized cross-validation: independent implementations must agree on
/// randomly generated problems.  Fixed seeds keep the suite deterministic:
/// every trial's inputs are drawn serially from the seeded RNG, the heavy
/// solves then fan out over the rlc::exec pool (results collected in trial
/// order), and all assertions run back on the main thread.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "rlc/core/delay.hpp"
#include "rlc/exec/thread_pool.hpp"
#include "rlc/linalg/lu.hpp"
#include "rlc/linalg/sparse_lu.hpp"
#include "rlc/spice/dcop.hpp"
#include "rlc/tree/rc_tree.hpp"

namespace {

TEST(Randomized, SparseAndDenseLuAgreeOnRandomMnaLikeSystems) {
  struct Trial {
    rlc::linalg::MatrixD a{30, 30};
    std::vector<rlc::linalg::Triplet> trip;
    std::vector<double> b;
  };
  const int n = 30;
  std::mt19937 rng(2026);
  std::uniform_real_distribution<double> g(0.1, 10.0);
  std::uniform_int_distribution<int> pick(0, 29);
  std::uniform_real_distribution<double> rb(-1.0, 1.0);
  std::vector<Trial> trials(20);
  for (auto& t : trials) {
    // Random conductance network: symmetric stamps + diagonal dominance,
    // the structure MNA produces.
    for (int e = 0; e < 120; ++e) {
      int i = pick(rng), j = pick(rng);
      if (i == j) continue;
      const double cond = g(rng);
      t.a(i, i) += cond;
      t.a(j, j) += cond;
      t.a(i, j) -= cond;
      t.a(j, i) -= cond;
      t.trip.push_back({i, i, cond});
      t.trip.push_back({j, j, cond});
      t.trip.push_back({i, j, -cond});
      t.trip.push_back({j, i, -cond});
    }
    for (int i = 0; i < n; ++i) {
      t.a(i, i) += 1e-3;  // gmin-like ground reference
      t.trip.push_back({i, i, 1e-3});
    }
    t.b.resize(n);
    for (auto& v : t.b) v = rb(rng);
  }

  struct Solved {
    std::vector<double> dense, sparse;
  };
  const auto solved = rlc::exec::parallel_map(trials, [&](const Trial& t) {
    Solved s;
    s.dense = rlc::linalg::LUD(t.a).solve(t.b);
    const auto m = rlc::linalg::CscMatrix::from_triplets(n, n, t.trip);
    s.sparse = rlc::linalg::SparseLU(m).solve(t.b);
    return s;
  });

  for (std::size_t trial = 0; trial < solved.size(); ++trial) {
    for (int i = 0; i < n; ++i) {
      const double xd = solved[trial].dense[i];
      EXPECT_NEAR(solved[trial].sparse[i], xd, 1e-8 * (1.0 + std::abs(xd)))
          << "trial " << trial << " i " << i;
    }
  }
}

TEST(Randomized, TreeElmoreMatchesMnaDcWithDischargePath) {
  // Elmore m1 equals the area under (1 - v(t)) for a step input; cheaper
  // cross-check: the DC solution through the tree must be flat (no drops),
  // and the total capacitance must equal the sum of stamped caps — guards
  // the tree builder against topology bugs on random trees.
  struct Edge {
    int parent;
    double r, c;
  };
  struct Spec {
    double root_r, root_c;
    std::vector<Edge> edges;
    double cap_sum = 0.0;
  };
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> rr(10.0, 1e3);
  std::uniform_real_distribution<double> rc(1e-15, 1e-12);
  std::vector<Spec> specs(10);
  for (auto& spec : specs) {
    spec.root_r = 500.0;
    spec.root_c = rc(rng);
    spec.cap_sum = spec.root_c;
    for (int node = 1; node <= 25; ++node) {
      std::uniform_int_distribution<int> pp(0, node - 1);
      const double c = rc(rng);
      spec.edges.push_back({pp(rng), rr(rng), c});
      spec.cap_sum += c;
    }
  }

  struct NodeCheck {
    bool reducible = false;  ///< b2 = m1^2 - m2 > 0: two-pole must solve
    bool threw = false;      ///< two_pole_at refused (expected otherwise)
    bool delay_converged = false;
    double v_at_tau = 0.0;
    double m2 = 0.0;
  };
  struct TreeOut {
    double total_cap = 0.0;
    std::vector<int> parent;
    std::vector<double> m1;
    std::vector<NodeCheck> nodes;
  };
  const auto outs = rlc::exec::parallel_map(specs, [](const Spec& spec) {
    rlc::tree::RcTree t(spec.root_r, spec.root_c);
    for (const auto& e : spec.edges) t.add_node(e.parent, e.r, e.c);
    TreeOut out;
    out.total_cap = t.total_cap();
    const auto m1 = t.elmore_delays();
    out.m1.assign(m1.begin(), m1.end());
    out.parent.resize(t.size());
    for (rlc::tree::NodeId node = 1; node < t.size(); ++node) {
      out.parent[node] = static_cast<int>(t.parent(node));
    }
    const auto ms = t.moments();
    out.nodes.resize(t.size());
    for (rlc::tree::NodeId node = 0; node < t.size(); ++node) {
      NodeCheck& nc = out.nodes[node];
      nc.m2 = ms[node].m2;
      nc.reducible = ms[node].m1 * ms[node].m1 - ms[node].m2 > 0.0;
      try {
        const rlc::core::TwoPole sys(t.two_pole_at(node));
        const auto d = rlc::core::threshold_delay(sys);
        nc.delay_converged = d.converged;
        if (d.converged) nc.v_at_tau = sys.step_response(d.tau);
      } catch (const std::runtime_error&) {
        nc.threw = true;
      }
    }
    return out;
  });

  for (std::size_t trial = 0; trial < outs.size(); ++trial) {
    const auto& out = outs[trial];
    EXPECT_NEAR(out.total_cap, specs[trial].cap_sum, 1e-20);
    // Elmore delays are positive and monotone along any root-to-leaf path.
    for (std::size_t node = 1; node < out.m1.size(); ++node) {
      EXPECT_GT(out.m1[node], out.m1[out.parent[node]])
          << trial << " node " << node;
    }
    // Moments: m2 > 0 everywhere.  b2 = m1^2 - m2 may legitimately be
    // negative at nodes near the root (fast local rise, long far-capacitance
    // tail), where the two-pole reduction must refuse; where it is positive
    // the reduction must produce a solvable delay.
    for (std::size_t node = 0; node < out.nodes.size(); ++node) {
      const auto& nc = out.nodes[node];
      EXPECT_GT(nc.m2, 0.0);
      if (nc.reducible) {
        ASSERT_FALSE(nc.threw) << trial << " node " << node;
        ASSERT_TRUE(nc.delay_converged) << trial << " node " << node;
        EXPECT_NEAR(nc.v_at_tau, 0.5, 1e-7);
      } else {
        EXPECT_TRUE(nc.threw) << node;
      }
    }
  }
}

TEST(Randomized, RandomResistorNetworksSatisfyDcConservation) {
  // KCL sanity on random resistive meshes solved by the full DC path:
  // current out of the source equals current into ground.
  struct Spec {
    std::vector<double> chain_r;              // n-1 spanning-chain resistors
    std::vector<std::array<int, 2>> extra;    // extra mesh edges
    std::vector<double> extra_r;
    double rg0, rg1;
  };
  const int n_nodes = 8;
  std::mt19937 rng(99);
  std::uniform_real_distribution<double> rr(10.0, 1e4);
  std::uniform_int_distribution<int> pick(0, n_nodes - 1);
  std::vector<Spec> specs(10);
  for (auto& spec : specs) {
    for (int i = 1; i < n_nodes; ++i) spec.chain_r.push_back(rr(rng));
    for (int e = 0; e < 10; ++e) {
      const int i = pick(rng), j = pick(rng);
      if (i == j) continue;
      spec.extra.push_back({i, j});
      spec.extra_r.push_back(rr(rng));
    }
    spec.rg0 = rr(rng);
    spec.rg1 = rr(rng);
  }

  struct DcOut {
    bool converged = false;
    double i_src = 0.0;
    double i_gnd = 0.0;
  };
  const auto outs = rlc::exec::parallel_map(specs, [&](const Spec& spec) {
    rlc::spice::Circuit c;
    std::vector<rlc::spice::NodeId> nodes;
    for (int i = 0; i < n_nodes; ++i) {
      nodes.push_back(c.node("n" + std::to_string(i)));
    }
    // Spanning chain guarantees connectivity.
    for (int i = 1; i < n_nodes; ++i) {
      c.add_resistor("Rc" + std::to_string(i), nodes[i - 1], nodes[i],
                     spec.chain_r[i - 1]);
    }
    for (std::size_t e = 0; e < spec.extra.size(); ++e) {
      c.add_resistor("Rx" + std::to_string(e), nodes[spec.extra[e][0]],
                     nodes[spec.extra[e][1]], spec.extra_r[e]);
    }
    std::vector<const rlc::spice::Resistor*> to_gnd;
    to_gnd.push_back(&c.add_resistor("Rg0", nodes[3], c.ground(), spec.rg0));
    to_gnd.push_back(&c.add_resistor("Rg1", nodes[6], c.ground(), spec.rg1));
    auto& vsrc =
        c.add_vsource("V1", nodes[0], c.ground(), rlc::spice::DcSpec{5.0});
    const auto dc = rlc::spice::dc_operating_point(c);
    DcOut out;
    out.converged = dc.converged;
    if (dc.converged) {
      out.i_src = dc.x[vsrc.branch_base()];
      for (const auto* r : to_gnd) out.i_gnd += r->current(dc.x);
    }
    return out;
  });

  for (std::size_t trial = 0; trial < outs.size(); ++trial) {
    ASSERT_TRUE(outs[trial].converged) << trial;
    // Source branch current flows p -> n inside the source; KCL at ground:
    // what leaves through the resistors returns through the source.
    EXPECT_NEAR(-outs[trial].i_src, outs[trial].i_gnd,
                1e-6 * (std::abs(outs[trial].i_gnd) + 1e-9))
        << trial;
  }
}

TEST(Randomized, TwoPoleDelayInvariants) {
  // For random passive (b1, b2): the 50% delay exists, is positive, grows
  // with b1 at fixed b2/b1^2 ratio, and v(tau) = 0.5 exactly.
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> rb1(1e-12, 1e-9);
  std::uniform_real_distribution<double> ratio(0.01, 30.0);  // b2 / (b1^2/4)
  std::vector<std::array<double, 2>> coeffs(60);
  for (auto& bc : coeffs) {
    bc[0] = rb1(rng);
    bc[1] = ratio(rng) * bc[0] * bc[0] / 4.0;
  }

  struct DelayOut {
    bool converged = false, scaled_converged = false;
    double tau = 0.0, v_at_tau = 0.0, scaled_tau = 0.0;
  };
  const double a = 3.0;
  const auto outs =
      rlc::exec::parallel_map(coeffs, [&](const std::array<double, 2>& bc) {
        DelayOut out;
        const rlc::core::TwoPole sys({bc[0], bc[1]});
        const auto r = rlc::core::threshold_delay(sys);
        out.converged = r.converged;
        if (r.converged) {
          out.tau = r.tau;
          out.v_at_tau = sys.step_response(r.tau);
        }
        // Scaling invariance: (a*b1, a^2*b2) scales tau by a.
        const rlc::core::TwoPole scaled({a * bc[0], a * a * bc[1]});
        const auto rs = rlc::core::threshold_delay(scaled);
        out.scaled_converged = rs.converged;
        if (rs.converged) out.scaled_tau = rs.tau;
        return out;
      });

  for (std::size_t trial = 0; trial < outs.size(); ++trial) {
    const auto& out = outs[trial];
    ASSERT_TRUE(out.converged) << trial;
    EXPECT_GT(out.tau, 0.0);
    EXPECT_NEAR(out.v_at_tau, 0.5, 1e-7) << trial;
    ASSERT_TRUE(out.scaled_converged);
    EXPECT_NEAR(out.scaled_tau, a * out.tau, 1e-6 * out.scaled_tau) << trial;
  }
}

}  // namespace
