/// Randomized cross-validation: independent implementations must agree on
/// randomly generated problems.  Fixed seeds keep the suite deterministic.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "rlc/core/delay.hpp"
#include "rlc/linalg/lu.hpp"
#include "rlc/linalg/sparse_lu.hpp"
#include "rlc/spice/dcop.hpp"
#include "rlc/tree/rc_tree.hpp"

namespace {

TEST(Randomized, SparseAndDenseLuAgreeOnRandomMnaLikeSystems) {
  std::mt19937 rng(2026);
  std::uniform_real_distribution<double> g(0.1, 10.0);
  std::uniform_int_distribution<int> pick(0, 29);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 30;
    // Random conductance network: symmetric stamps + diagonal dominance,
    // the structure MNA produces.
    rlc::linalg::MatrixD a(n, n);
    std::vector<rlc::linalg::Triplet> trip;
    for (int e = 0; e < 120; ++e) {
      int i = pick(rng), j = pick(rng);
      if (i == j) continue;
      const double cond = g(rng);
      a(i, i) += cond;
      a(j, j) += cond;
      a(i, j) -= cond;
      a(j, i) -= cond;
      trip.push_back({i, i, cond});
      trip.push_back({j, j, cond});
      trip.push_back({i, j, -cond});
      trip.push_back({j, i, -cond});
    }
    for (int i = 0; i < n; ++i) {
      a(i, i) += 1e-3;  // gmin-like ground reference
      trip.push_back({i, i, 1e-3});
    }
    std::vector<double> b(n);
    std::uniform_real_distribution<double> rb(-1.0, 1.0);
    for (auto& v : b) v = rb(rng);

    const auto xd = rlc::linalg::LUD(a).solve(b);
    const auto m = rlc::linalg::CscMatrix::from_triplets(n, n, trip);
    const auto xs = rlc::linalg::SparseLU(m).solve(b);
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(xs[i], xd[i], 1e-8 * (1.0 + std::abs(xd[i])))
          << "trial " << trial << " i " << i;
    }
  }
}

TEST(Randomized, TreeElmoreMatchesMnaDcWithDischargePath) {
  // Elmore m1 equals the area under (1 - v(t)) for a step input; cheaper
  // cross-check: the DC solution through the tree must be flat (no drops),
  // and the total capacitance must equal the sum of stamped caps — guards
  // the tree builder against topology bugs on random trees.
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> rr(10.0, 1e3);
  std::uniform_real_distribution<double> rc(1e-15, 1e-12);
  for (int trial = 0; trial < 10; ++trial) {
    rlc::tree::RcTree t(500.0, rc(rng));
    std::uniform_int_distribution<int> parent_pick(0, 0);
    double cap_sum = t.node_cap(0);
    for (int n = 1; n <= 25; ++n) {
      std::uniform_int_distribution<int> pp(0, t.size() - 1);
      const double c = rc(rng);
      t.add_node(pp(rng), rr(rng), c);
      cap_sum += c;
    }
    EXPECT_NEAR(t.total_cap(), cap_sum, 1e-20);
    // Elmore delays are positive and monotone along any root-to-leaf path.
    const auto m1 = t.elmore_delays();
    for (rlc::tree::NodeId n = 1; n < t.size(); ++n) {
      EXPECT_GT(m1[n], m1[t.parent(n)]) << trial << " node " << n;
    }
    // Moments: m2 > 0 everywhere.  b2 = m1^2 - m2 may legitimately be
    // negative at nodes near the root (fast local rise, long far-capacitance
    // tail), where the two-pole reduction must refuse; where it is positive
    // the reduction must produce a solvable delay.
    const auto ms = t.moments();
    for (rlc::tree::NodeId n = 0; n < t.size(); ++n) {
      EXPECT_GT(ms[n].m2, 0.0);
      if (ms[n].m1 * ms[n].m1 - ms[n].m2 > 0.0) {
        const rlc::core::TwoPole sys(t.two_pole_at(n));
        const auto d = rlc::core::threshold_delay(sys);
        ASSERT_TRUE(d.converged) << trial << " node " << n;
        EXPECT_NEAR(sys.step_response(d.tau), 0.5, 1e-7);
      } else {
        EXPECT_THROW(t.two_pole_at(n), std::runtime_error) << n;
      }
    }
  }
}

TEST(Randomized, RandomResistorNetworksSatisfyDcConservation) {
  // KCL sanity on random resistive meshes solved by the full DC path:
  // current out of the source equals current into ground.
  std::mt19937 rng(99);
  std::uniform_real_distribution<double> rr(10.0, 1e4);
  for (int trial = 0; trial < 10; ++trial) {
    rlc::spice::Circuit c;
    const int n_nodes = 8;
    std::vector<rlc::spice::NodeId> nodes;
    for (int i = 0; i < n_nodes; ++i) nodes.push_back(c.node("n" + std::to_string(i)));
    std::uniform_int_distribution<int> pick(0, n_nodes - 1);
    std::vector<const rlc::spice::Resistor*> to_gnd;
    int idx = 0;
    // Spanning chain guarantees connectivity.
    for (int i = 1; i < n_nodes; ++i) {
      c.add_resistor("Rc" + std::to_string(i), nodes[i - 1], nodes[i], rr(rng));
    }
    for (int e = 0; e < 10; ++e) {
      const int i = pick(rng), j = pick(rng);
      if (i == j) continue;
      c.add_resistor("Rx" + std::to_string(idx++), nodes[i], nodes[j], rr(rng));
    }
    to_gnd.push_back(&c.add_resistor("Rg0", nodes[3], c.ground(), rr(rng)));
    to_gnd.push_back(&c.add_resistor("Rg1", nodes[6], c.ground(), rr(rng)));
    auto& vsrc = c.add_vsource("V1", nodes[0], c.ground(), rlc::spice::DcSpec{5.0});
    const auto dc = rlc::spice::dc_operating_point(c);
    ASSERT_TRUE(dc.converged) << trial;
    const double i_src = dc.x[vsrc.branch_base()];
    double i_gnd = 0.0;
    for (const auto* r : to_gnd) i_gnd += r->current(dc.x);
    // Source branch current flows p -> n inside the source; KCL at ground:
    // what leaves through the resistors returns through the source.
    EXPECT_NEAR(-i_src, i_gnd, 1e-6 * (std::abs(i_gnd) + 1e-9)) << trial;
  }
}

TEST(Randomized, TwoPoleDelayInvariants) {
  // For random passive (b1, b2): the 50% delay exists, is positive, grows
  // with b1 at fixed b2/b1^2 ratio, and v(tau) = 0.5 exactly.
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> rb1(1e-12, 1e-9);
  std::uniform_real_distribution<double> ratio(0.01, 30.0);  // b2 / (b1^2/4)
  for (int trial = 0; trial < 60; ++trial) {
    const double b1 = rb1(rng);
    const double b2 = ratio(rng) * b1 * b1 / 4.0;
    const rlc::core::TwoPole sys({b1, b2});
    const auto r = rlc::core::threshold_delay(sys);
    ASSERT_TRUE(r.converged) << trial;
    EXPECT_GT(r.tau, 0.0);
    EXPECT_NEAR(sys.step_response(r.tau), 0.5, 1e-7) << trial;
    // Scaling invariance: (a*b1, a^2*b2) scales tau by a.
    const double a = 3.0;
    const rlc::core::TwoPole scaled({a * b1, a * a * b2});
    const auto rs = rlc::core::threshold_delay(scaled);
    ASSERT_TRUE(rs.converged);
    EXPECT_NEAR(rs.tau, a * r.tau, 1e-6 * rs.tau) << trial;
  }
}

}  // namespace
