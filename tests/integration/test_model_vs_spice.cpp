/// Cross-stack integration tests: the analytical model stack (exact transfer
/// function -> Pade -> two-pole -> delay) against the circuit-simulation
/// stack (RLC ladder + MNA transient), and against numerical inverse Laplace
/// of the exact transfer function.  These are the checks that entitle the
/// optimizer's results to be called "delays".

#include <gtest/gtest.h>

#include <cmath>

#include "rlc/core/delay.hpp"
#include "rlc/core/exact_delay.hpp"
#include "rlc/core/optimizer.hpp"
#include "rlc/ringosc/ladder.hpp"
#include "rlc/spice/transient.hpp"
#include "rlc/tline/transfer.hpp"

namespace {

using rlc::core::Technology;

/// 50% delay of a driver-line-load stage simulated with the MNA engine.
double spice_delay_50(const Technology& tech, double l, double h, double k,
                      int nseg) {
  const auto dl = tech.rep.scaled(k);
  rlc::spice::Circuit ckt;
  const auto src = ckt.node("src"), drv = ckt.node("drv"), end = ckt.node("end");
  ckt.add_vsource("V1", src, ckt.ground(),
                  rlc::spice::PulseSpec{0, 1, 0, 1e-14, 1e-14, 1, 0});
  ckt.add_resistor("Rs", src, drv, dl.rs_eff);
  ckt.add_capacitor("Cp", drv, ckt.ground(), dl.cp_eff);
  rlc::ringosc::add_rlc_ladder(ckt, "ln", drv, end, tech.line(l), h, nseg);
  ckt.add_capacitor("Cl", end, ckt.ground(), dl.cl_eff);

  const auto est = rlc::core::segment_delay(tech.rep, tech.line(l), h, k);
  rlc::spice::TransientOptions o;
  o.tstop = 8.0 * est.tau;
  o.dt = est.tau / 400.0;
  o.probes = {rlc::spice::Probe::node_voltage(end, "vend")};
  const auto r = run_transient(ckt, o);
  EXPECT_TRUE(r.completed);
  const auto& v = r.signal("vend");
  for (std::size_t i = 1; i < r.time.size(); ++i) {
    if (v[i - 1] < 0.5 && v[i] >= 0.5) {
      const double f = (0.5 - v[i - 1]) / (v[i] - v[i - 1]);
      return r.time[i - 1] + f * (r.time[i] - r.time[i - 1]);
    }
  }
  return -1.0;
}

/// 50% delay from numerically inverting the EXACT transfer function (Eq. 1).
/// Runs on the fast exact-waveform engine (the default path); the engine's
/// agreement with the legacy per-t bisection is pinned in tests/core, so
/// the three-stack comparison below also vouches for the engine.
double exact_delay_50(const Technology& tech, double l, double h, double k) {
  const auto est = rlc::core::segment_delay(tech.rep, tech.line(l), h, k);
  return rlc::core::exact_threshold_delay(tech, l, h, k, est.tau).value_or(-1.0);
}

class ModelVsSpice
    : public ::testing::TestWithParam<std::tuple<const char*, double>> {};

TEST_P(ModelVsSpice, SegmentDelayAgreesAcrossThreeStacks) {
  const auto [name, l] = GetParam();
  const Technology tech = std::string(name) == "250nm" ? Technology::nm250()
                                                       : Technology::nm100();
  const auto rc = rlc::core::rc_optimum(tech);
  const double h = rc.h, k = rc.k;

  const auto two_pole = rlc::core::segment_delay(tech.rep, tech.line(l), h, k);
  ASSERT_TRUE(two_pole.converged);
  const double exact = exact_delay_50(tech, l, h, k);
  ASSERT_GT(exact, 0.0);
  const double spice = spice_delay_50(tech, l, h, k, 24);
  ASSERT_GT(spice, 0.0);

  // Exact (Eq. 1) inversion vs discretized circuit: both model the same
  // physics; the ladder discretization costs a few percent.
  EXPECT_NEAR(spice, exact, 0.08 * exact) << name << " l=" << l;
  // Two-pole Pade vs exact: the paper's approximation 1; allow ~15%.
  EXPECT_NEAR(two_pole.tau, exact, 0.15 * exact) << name << " l=" << l;
}

INSTANTIATE_TEST_SUITE_P(
    TechAndInductance, ModelVsSpice,
    ::testing::Values(std::make_tuple("250nm", 0.0),
                      std::make_tuple("250nm", 1e-6),
                      std::make_tuple("250nm", 3e-6),
                      std::make_tuple("100nm", 0.0),
                      std::make_tuple("100nm", 1e-6),
                      std::make_tuple("100nm", 3e-6)));

TEST(ModelVsSpice, LadderConvergesToExactWithRefinement) {
  const auto tech = Technology::nm250();
  const double l = 2e-6;
  const auto rc = rlc::core::rc_optimum(tech);
  const double exact = exact_delay_50(tech, l, rc.h, rc.k);
  ASSERT_GT(exact, 0.0);
  double prev_err = 1e9;
  for (int nseg : {4, 8, 16, 32}) {
    const double spice = spice_delay_50(tech, l, rc.h, rc.k, nseg);
    const double err = std::abs(spice - exact) / exact;
    EXPECT_LT(err, prev_err + 0.01) << nseg;
    prev_err = err;
  }
  EXPECT_LT(prev_err, 0.05);
}

TEST(ModelVsSpice, OptimizerChoiceBeatsRcSizingInSimulation) {
  // The headline claim, verified in the circuit simulator rather than the
  // model that produced the optimum: at high inductance, the RLC-optimal
  // (h, k) gives lower delay per unit length than the Elmore-optimal one.
  const auto tech = Technology::nm100();
  const double l = 3e-6;
  const auto rc = rlc::core::rc_optimum(tech);
  const auto opt = rlc::core::optimize_rlc(tech, l);
  ASSERT_TRUE(opt.converged);
  const double d_rc = spice_delay_50(tech, l, rc.h, rc.k, 20) / rc.h;
  const double d_opt = spice_delay_50(tech, l, opt.h, opt.k, 20) / opt.h;
  ASSERT_GT(d_rc, 0.0);
  ASSERT_GT(d_opt, 0.0);
  EXPECT_LT(d_opt, d_rc);
}

}  // namespace
