/// End-to-end checks of the paper's quantitative claims (Section 3), at
/// reduced sweep resolution so they stay fast; the benches regenerate the
/// full figures.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <vector>

#include "rlc/core/elmore.hpp"
#include "rlc/core/lcrit.hpp"
#include "rlc/core/optimizer.hpp"

namespace {

using namespace rlc::core;

std::vector<double> sweep_l(int n) {
  std::vector<double> ls;
  for (int i = 0; i <= n; ++i) ls.push_back(5e-6 * i / n);
  return ls;
}

TEST(PaperClaims, Figure7DelayRatioReachesPaperScale) {
  // 250 nm: ratio to the l=0 optimum reaches ~2x by l = 5 nH/mm;
  // 100 nm: grows much faster, reaching ~3-3.5x.
  const auto ls = sweep_l(10);
  const auto r250 = optimize_rlc_sweep(Technology::nm250(), ls);
  const auto r100 = optimize_rlc_sweep(Technology::nm100(), ls);
  ASSERT_TRUE(r250.front().converged && r250.back().converged);
  ASSERT_TRUE(r100.front().converged && r100.back().converged);
  const double ratio250 =
      r250.back().delay_per_length / r250.front().delay_per_length;
  const double ratio100 =
      r100.back().delay_per_length / r100.front().delay_per_length;
  EXPECT_GT(ratio250, 1.6);
  EXPECT_LT(ratio250, 2.6);
  EXPECT_GT(ratio100, 2.4);
  EXPECT_LT(ratio100, 4.2);
  EXPECT_GT(ratio100, ratio250);  // scaling makes it worse — the core claim
}

TEST(PaperClaims, Figure7ArtificialDielectricIsolatesDriverScaling) {
  // Even with the 250 nm wire capacitance, the 100 nm drivers make the node
  // more inductance-sensitive: "this increased susceptibility is entirely
  // due to scaling of driver capacitance and output resistance".
  const auto ls = sweep_l(8);
  const auto rctl = optimize_rlc_sweep(Technology::nm100_with_250nm_dielectric(), ls);
  const auto r250 = optimize_rlc_sweep(Technology::nm250(), ls);
  const double ratio_ctl =
      rctl.back().delay_per_length / rctl.front().delay_per_length;
  const double ratio250 =
      r250.back().delay_per_length / r250.front().delay_per_length;
  EXPECT_GT(ratio_ctl, ratio250);
}

TEST(PaperClaims, Figure8VariationPenaltyScalesWithNode) {
  // Sizing for RC and operating at inductance l costs ~6% (250 nm) /
  // ~12% (100 nm) extra delay versus re-optimizing — worst case over l.
  const auto ls = sweep_l(10);
  const auto penalty = [&](const Technology& tech) {
    const auto rc = rc_optimum(tech);
    const auto opt = optimize_rlc_sweep(tech, ls);
    double worst = 0.0;
    for (std::size_t i = 0; i < ls.size(); ++i) {
      const double fixed =
          delay_per_length(tech.rep, tech.line(ls[i]), rc.h, rc.k);
      worst = std::max(worst, fixed / opt[i].delay_per_length - 1.0);
    }
    return worst;
  };
  const double p250 = penalty(Technology::nm250());
  const double p100 = penalty(Technology::nm100());
  EXPECT_GT(p100, p250);          // scaling worsens the variation exposure
  EXPECT_GT(p250, 0.02);          // noticeable even at 250 nm
  EXPECT_LT(p250, 0.15);
  EXPECT_GT(p100, 0.06);
  EXPECT_LT(p100, 0.30);
}

TEST(PaperClaims, Figure4LcritCurvesOrderAndGrowth) {
  // l_crit at the RLC optimum grows with l and the 100 nm curve sits below
  // the 250 nm curve everywhere (Figure 4).
  const auto ls = sweep_l(8);
  const auto r250 = optimize_rlc_sweep(Technology::nm250(), ls);
  const auto r100 = optimize_rlc_sweep(Technology::nm100(), ls);
  double prev250 = -1.0;
  for (std::size_t i = 0; i < ls.size(); ++i) {
    const double lc250 =
        critical_inductance(Technology::nm250(), r250[i].h, r250[i].k);
    const double lc100 =
        critical_inductance(Technology::nm100(), r100[i].h, r100[i].k);
    EXPECT_LT(lc100, lc250) << i;
    EXPECT_GT(lc250, prev250) << i;  // increases along the sweep
    prev250 = lc250;
    // Same order of magnitude as practical l values (0.1..5 nH/mm).
    EXPECT_GT(lc250, 1e-8);
    EXPECT_LT(lc250, 5e-6);
  }
}

TEST(PaperClaims, Figures5And6RatiosBracketUnityCorrectly) {
  for (const auto& tech : {Technology::nm250(), Technology::nm100()}) {
    const auto rc = rc_optimum(tech);
    const auto at0 = optimize_rlc(tech, 0.0);
    const auto at5 = optimize_rlc(tech, 5e-6, [&] {
      OptimOptions o;
      o.h0 = at0.h;
      o.k0 = at0.k;
      return o;
    }());
    ASSERT_TRUE(at0.converged && at5.converged) << tech.name;
    EXPECT_LT(at0.h / rc.h, 1.0) << tech.name;   // Figure 5 at l=0
    EXPECT_GT(at5.h / rc.h, 1.0) << tech.name;   // grows past 1 with l
    EXPECT_LT(at5.k / rc.k, at0.k / rc.k) << tech.name;  // Figure 6 falls
    EXPECT_LT(at5.k / rc.k, 0.8) << tech.name;
  }
}

TEST(PaperClaims, OptimizationIsFast) {
  // "the entire optimization step is extremely efficient" — a full 11-point
  // technology sweep must complete in well under a second.
  const auto t0 = std::chrono::steady_clock::now();
  const auto rs = optimize_rlc_sweep(Technology::nm100(), sweep_l(10));
  const auto dt = std::chrono::steady_clock::now() - t0;
  for (const auto& r : rs) ASSERT_TRUE(r.converged);
  EXPECT_LT(std::chrono::duration<double>(dt).count(), 1.0);
}

}  // namespace
