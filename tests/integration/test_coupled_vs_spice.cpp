// Cross-check of the analytical coupled-line engine (modal decomposition +
// Euler inversion for waveforms/noise, shared Talbot windows for threshold
// crossings) against the mini-SPICE MNA coupled-ladder reference: far-end
// waveforms, victim peak noise and switching delays must agree to the
// discretization error of a fine ladder.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "rlc/core/delay.hpp"
#include "rlc/core/elmore.hpp"
#include "rlc/core/exact_delay.hpp"
#include "rlc/core/technology.hpp"
#include "rlc/ringosc/coupled_bus.hpp"
#include "rlc/tline/coupled_line.hpp"

namespace {

using rlc::core::CoupledExcitation;
using rlc::core::exact_coupled_step_response;
using rlc::core::exact_coupled_threshold_delay;
using rlc::core::exact_coupled_victim_noise;
using rlc::core::Technology;
using rlc::ringosc::CoupledStepResult;
using rlc::ringosc::CouplingParams;
using rlc::ringosc::run_coupled_step;

struct XtalkSetup {
  Technology tech;
  rlc::tline::LineParams line;
  double h, k, tau;
  double cc, km;
};

XtalkSetup make_setup(const Technology& tech, double ccf, double km) {
  XtalkSetup s{tech, tech.line(1.0e-6), 0.0, 0.0, 0.0, 0.0, km};
  const auto rc = rlc::core::rc_optimum(tech.rep, tech.r, tech.c);
  // The paper's operating point: RC-optimal segmentation and sizing.
  s.h = rc.h;
  s.k = rc.k;
  s.cc = ccf * s.line.c;
  // Search/time scale: two-pole delay with the quiet-neighbour capacitance.
  rlc::tline::LineParams eff = s.line;
  eff.c += 2.0 * s.cc;
  const auto d = rlc::core::segment_delay(tech.rep, eff, s.h, s.k);
  s.tau = d.converged ? d.tau : rc.tau;
  return s;
}

double interp(const std::vector<double>& ts, const std::vector<double>& vs,
              double t) {
  const auto it = std::lower_bound(ts.begin(), ts.end(), t);
  if (it == ts.begin()) return vs.front();
  if (it == ts.end()) return vs.back();
  const std::size_t i = static_cast<std::size_t>(it - ts.begin());
  const double w = (t - ts[i - 1]) / (ts[i] - ts[i - 1]);
  return vs[i - 1] + w * (vs[i] - vs[i - 1]);
}

TEST(CoupledVsSpice, TwoLineQuietVictimWaveforms) {
  const XtalkSetup s = make_setup(Technology::nm100(), 0.3, 0.3);
  const auto bus = rlc::tline::symmetric_bus(s.line, s.cc, s.km, 2);
  const CoupledExcitation exc{{0.0, 0.0}, {1.0, 0.0}};

  std::vector<double> times;
  for (double m = 0.3; m <= 8.0; m *= 1.25) times.push_back(m * s.tau);
  const auto analytic =
      exact_coupled_step_response(bus, s.h, s.tech.rep.scaled(s.k), exc,
                                  times);

  const CoupledStepResult mna =
      run_coupled_step(s.tech, {s.cc, s.km}, 1.0e-6, s.h, s.k, exc.initial,
                       exc.target, 10.0 * s.tau, 6000, 64);
  ASSERT_TRUE(mna.completed);

  for (std::size_t w = 0; w < 2; ++w) {
    for (std::size_t i = 0; i < times.size(); ++i) {
      const double ref = interp(mna.time, mna.far_end[w], times[i]);
      EXPECT_NEAR(analytic[w][i], ref, 5e-3)
          << "conductor " << w << " t/tau = " << times[i] / s.tau;
    }
  }
}

TEST(CoupledVsSpice, ThreeLineCenterAggressor) {
  const XtalkSetup s = make_setup(Technology::nm250(), 0.25, 0.2);
  const auto bus = rlc::tline::symmetric_bus(s.line, s.cc, s.km, 3);
  // Center conductor switches; both edge victims quiet.
  const CoupledExcitation exc{{0.0, 0.0, 0.0}, {0.0, 1.0, 0.0}};

  std::vector<double> times;
  for (double m = 0.4; m <= 6.0; m *= 1.4) times.push_back(m * s.tau);
  const auto analytic =
      exact_coupled_step_response(bus, s.h, s.tech.rep.scaled(s.k), exc,
                                  times);

  const CoupledStepResult mna =
      run_coupled_step(s.tech, {s.cc, s.km}, 1.0e-6, s.h, s.k, exc.initial,
                       exc.target, 8.0 * s.tau, 6000, 64);
  ASSERT_TRUE(mna.completed);

  for (std::size_t w = 0; w < 3; ++w) {
    for (std::size_t i = 0; i < times.size(); ++i) {
      const double ref = interp(mna.time, mna.far_end[w], times[i]);
      EXPECT_NEAR(analytic[w][i], ref, 5e-3)
          << "conductor " << w << " t/tau = " << times[i] / s.tau;
    }
  }
  // Symmetry: the two edge victims see the same coupling.
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_NEAR(analytic[0][i], analytic[2][i], 1e-9);
  }
}

TEST(CoupledVsSpice, DelaysAndNoiseAgree) {
  const XtalkSetup s = make_setup(Technology::nm100(), 0.3, 0.2);
  const auto bus = rlc::tline::symmetric_bus(s.line, s.cc, s.km, 2);
  const auto dl = s.tech.rep.scaled(s.k);

  // Victim quiet: analytic noise peak vs MNA peak deviation.
  const CoupledExcitation quiet{{0.0, 0.0}, {1.0, 0.0}};
  const auto noise = exact_coupled_victim_noise(bus, s.h, dl, quiet, 1, s.tau);
  const CoupledStepResult mna = run_coupled_step(
      s.tech, {s.cc, s.km}, 1.0e-6, s.h, s.k, quiet.initial, quiet.target,
      12.0 * s.tau, 4800, 48);
  ASSERT_TRUE(mna.completed);
  double mna_peak = 0.0;
  for (double v : mna.far_end[1]) mna_peak = std::max(mna_peak, std::abs(v));
  EXPECT_GT(noise.peak, 0.0);
  EXPECT_NEAR(noise.peak, mna_peak, 5e-3);

  // In-phase switching: both conductors cross 50% at the even-mode delay.
  const CoupledExcitation inphase{{0.0, 0.0}, {1.0, 1.0}};
  const auto d_in =
      exact_coupled_threshold_delay(bus, s.h, dl, inphase, 0, s.tau, 0.5);
  ASSERT_TRUE(d_in.has_value());
  const CoupledStepResult mna_in = run_coupled_step(
      s.tech, {s.cc, s.km}, 1.0e-6, s.h, s.k, inphase.initial, inphase.target,
      12.0 * s.tau, 4800, 48);
  ASSERT_TRUE(mna_in.completed);
  double mna_delay = -1.0;
  for (std::size_t i = 1; i < mna_in.time.size(); ++i) {
    if (mna_in.far_end[0][i] >= 0.5 && mna_in.far_end[0][i - 1] < 0.5) {
      const double w = (0.5 - mna_in.far_end[0][i - 1]) /
                       (mna_in.far_end[0][i] - mna_in.far_end[0][i - 1]);
      mna_delay = mna_in.time[i - 1] + w * (mna_in.time[i] - mna_in.time[i - 1]);
      break;
    }
  }
  ASSERT_GT(mna_delay, 0.0);
  EXPECT_NEAR(*d_in, mna_delay, 5e-3 * mna_delay);
}

}  // namespace
