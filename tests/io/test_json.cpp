/// rlc::io unit tests: RFC 8259 string escaping in the writer, number
/// rendering, the recursive-descent reader (escapes, surrogate pairs,
/// error offsets), and a full writer -> reader round-trip.

#include "rlc/io/json.hpp"
#include "rlc/io/json_reader.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <string>

namespace {

using rlc::io::Json;
using rlc::io::JsonArray;
using rlc::io::JsonValue;
using rlc::io::json_escape;
using rlc::io::parse_json;
using rlc::io::render_number;

TEST(JsonEscape, NamedEscapes) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("\b\f\n\r\t"), "\\b\\f\\n\\r\\t");
}

TEST(JsonEscape, ControlCharactersBecomeUnicodeEscapes) {
  // Every control character below 0x20 without a short escape must render
  // as \u00XX (RFC 8259 section 7) — the legacy bench writer dropped these.
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(json_escape(std::string(1, '\x1f')), "\\u001f");
  EXPECT_EQ(json_escape(std::string{'a', '\0', 'b'}), "a\\u0000b");
  // DEL (0x7f) and non-ASCII bytes pass through: JSON allows raw UTF-8.
  EXPECT_EQ(json_escape("\x7f"), "\x7f");
  EXPECT_EQ(json_escape("\xc3\xa9"), "\xc3\xa9");  // é
}

TEST(JsonNumbers, RoundTripAndNonFinite) {
  for (double v : {0.0, 1.0, -2.5, 1e-300, 3.141592653589793, 5.0e-6 / 25}) {
    const std::string text = render_number(v);
    EXPECT_EQ(std::stod(text), v) << text;
  }
  EXPECT_EQ(render_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(render_number(std::nan("")), "null");
}

TEST(JsonWriter, ObjectKeepsInsertionOrderAndEscapesStrings) {
  Json j;
  j.set("b", 1).set("a", "x\ny").set("flag", true);
  EXPECT_EQ(j.str(), "{\"b\": 1, \"a\": \"x\\ny\", \"flag\": true}");
}

TEST(JsonReader, ParsesScalarsArraysObjects) {
  const JsonValue v = parse_json(
      " {\"n\": -1.5e2, \"s\": \"hi\", \"b\": false, \"z\": null,"
      " \"a\": [1, 2, 3]} ");
  EXPECT_EQ(v.number_or("n", 0.0), -150.0);
  EXPECT_EQ(v.string_or("s", ""), "hi");
  EXPECT_EQ(v.bool_or("b", true), false);
  ASSERT_NE(v.find("z"), nullptr);
  EXPECT_TRUE(v.find("z")->is_null());
  ASSERT_NE(v.find("a"), nullptr);
  ASSERT_EQ(v.find("a")->items().size(), 3u);
  EXPECT_EQ(v.find("a")->items()[2].as_number(), 3.0);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonReader, DecodesEscapesAndSurrogatePairs) {
  EXPECT_EQ(parse_json("\"a\\n\\t\\\"\\\\b\"").as_string(), "a\n\t\"\\b");
  EXPECT_EQ(parse_json("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(parse_json("\"\\u00e9\"").as_string(), "\xc3\xa9");
  // U+1D11E (musical G clef) via a surrogate pair -> 4-byte UTF-8.
  EXPECT_EQ(parse_json("\"\\ud834\\udd1e\"").as_string(),
            "\xf0\x9d\x84\x9e");
}

TEST(JsonReader, ErrorsCarryByteOffsets) {
  for (const char* bad : {"", "{", "[1,]", "{\"a\" 1}", "tru", "1 2",
                          "\"\\ud834\"", "\"unterminated"}) {
    EXPECT_THROW(parse_json(bad), std::runtime_error) << bad;
  }
  try {
    parse_json("[1, oops]");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("at byte"), std::string::npos);
  }
}

TEST(JsonReader, TypedAccessorsThrowOnKindMismatch) {
  const JsonValue v = parse_json("{\"n\": 1}");
  EXPECT_THROW(v.as_number(), std::runtime_error);
  EXPECT_THROW(v.find("n")->as_string(), std::runtime_error);
  EXPECT_THROW(v.find("n")->items(), std::runtime_error);
}

TEST(JsonRoundTrip, WriterOutputParsesBackIdentically) {
  JsonArray row;
  row.push(1.5).push("label \"x\"\n").push(false);
  Json inner;
  inner.set("wall_seconds", 0.25).set("note", "50% delay\t(exact)");
  Json j;
  j.set("schema", 2)
      .set("bench", "fig4")
      .set("rows", row)
      .set("spec", inner)
      .set("huge", 1.2345678901234567e300);
  const JsonValue v = parse_json(j.str());
  EXPECT_EQ(v.int_or("schema", 0), 2);
  EXPECT_EQ(v.string_or("bench", ""), "fig4");
  const JsonValue* rows = v.find("rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->items().size(), 3u);
  EXPECT_EQ(rows->items()[0].as_number(), 1.5);
  EXPECT_EQ(rows->items()[1].as_string(), "label \"x\"\n");
  EXPECT_EQ(rows->items()[2].as_bool(), false);
  ASSERT_NE(v.find("spec"), nullptr);
  EXPECT_EQ(v.find("spec")->string_or("note", ""), "50% delay\t(exact)");
  // %.17g guarantees bit-exact double round-trips.
  EXPECT_EQ(v.number_or("huge", 0.0), 1.2345678901234567e300);
}

TEST(JsonFile, WriteThenParseFile) {
  const std::string path = ::testing::TempDir() + "rlc_io_test.json";
  Json j;
  j.set("k", "v");
  ASSERT_TRUE(rlc::io::write_json_file(path, j));
  const JsonValue v = rlc::io::parse_json_file(path);
  EXPECT_EQ(v.string_or("k", ""), "v");
  std::remove(path.c_str());
  EXPECT_THROW(rlc::io::parse_json_file(path), std::runtime_error);
}

}  // namespace
