/// Buffer insertion on a branching net (van Ginneken DP on the RC tree
/// substrate): a trunk splitting into four sinks at different distances,
/// buffered with a geometric library built from the Table 1 repeater.
/// Reports per-sink Elmore delays and skew before/after buffering.
///
///   $ ./tree_buffering [node]

#include <cstdio>
#include <string>

#include "rlc/core/elmore.hpp"
#include "rlc/tree/buffering.hpp"

int main(int argc, char** argv) {
  using namespace rlc::tree;
  using rlc::core::Technology;

  const std::string node = argc > 1 ? argv[1] : "100";
  const Technology tech =
      node == "250" ? Technology::nm250() : Technology::nm100();
  const auto rc = rlc::core::rc_optimum(tech);

  // Net: driver -> 8 mm trunk -> split -> {4, 9, 14, 22} mm branches,
  // each loaded with a k_optRC-sized receiver.
  const auto wire = [&](RcTree& t, NodeId from, double mm) {
    return t.add_wire(from, tech.r * mm * 1e-3, tech.c * mm * 1e-3,
                      std::max(4, static_cast<int>(mm)));
  };
  RcTree t(tech.rep.rs / rc.k);
  const auto split = wire(t, 0, 8.0);
  std::vector<NodeId> sinks;
  for (double mm : {4.0, 9.0, 14.0, 22.0}) {
    const auto s = wire(t, split, mm);
    t.add_cap(s, tech.rep.c0 * rc.k);
    sinks.push_back(s);
  }

  const auto report = [&](const char* tag, const std::vector<double>& m1) {
    double worst = 0.0, best = 1e300;
    std::printf("%s per-sink Elmore delays:", tag);
    for (const auto s : sinks) {
      std::printf(" %.1f", m1[s] * 1e12);
      worst = std::max(worst, m1[s]);
      best = std::min(best, m1[s]);
    }
    std::printf(" ps   (worst %.1f, skew %.1f)\n", worst * 1e12,
                (worst - best) * 1e12);
    return worst;
  };

  std::printf("Net on %s: 8 mm trunk + {4, 9, 14, 22} mm branches, driver and\n"
              "receivers sized k_optRC = %.0f\n\n", tech.name.c_str(), rc.k);
  const double before = report("unbuffered:", t.elmore_delays());

  const auto lib = BufferLibrary::geometric(tech.rep, rc.k / 8.0, 1.6, 7);
  const auto res = van_ginneken(t, lib);
  std::printf("\nvan Ginneken: %zu buffers, worst delay %.1f ps (%.1f%% faster)\n",
              res.placements.size(), res.delay * 1e12,
              100.0 * (1.0 - res.delay / before));
  for (const auto& p : res.placements) {
    std::printf("  buffer k = %.0f at tree node %d\n",
                tech.rep.rs / lib.cells[p.cell].rs, p.node);
  }
  std::printf("\n(The per-unit-length optimum of the paper applies to uniform\n"
              "lines; the DP generalizes the same repeater abstraction to trees.)\n");
  return 0;
}
