/// Repeater planner: given a total route length and an uncertainty range for
/// the effective line inductance, produce a buffering plan (number of
/// repeaters, size, segment length) and report the delay exposure across the
/// inductance range — the Section 3.2 workflow as a tool.
///
/// The inductance range is a rlc::scenario::SweepSpec — the same grid
/// definition the rlc_run experiments use — and the node resolves through
/// rlc::scenario::technology_by_name, so interpolated nodes ("180nm") work.
///
///   $ ./repeater_planner [route_mm] [lmin_nH_mm] [lmax_nH_mm] [node]
///   $ ./repeater_planner 45 0.5 2.5 100

#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <exception>
#include <string>

#include "rlc/core/elmore.hpp"
#include "rlc/core/lcrit.hpp"
#include "rlc/core/optimizer.hpp"
#include "rlc/scenario/spec.hpp"

int main(int argc, char** argv) {
  using namespace rlc::core;
  namespace scn = rlc::scenario;

  const double route_mm = argc > 1 ? std::atof(argv[1]) : 45.0;
  const double lmin = (argc > 2 ? std::atof(argv[2]) : 0.5) * 1e-6;
  const double lmax = (argc > 3 ? std::atof(argv[3]) : 2.5) * 1e-6;

  scn::ScenarioSpec spec;
  spec.scenario = "repeater_planner";
  spec.sweep = scn::SweepSpec{lmin, lmax, 9, {}};
  if (argc > 4) spec.technology = argv[4];

  Technology tech;
  try {
    if (const rlc::Status st = spec.validate(); !st.is_ok()) {
      throw std::invalid_argument(st.to_string());
    }
    tech = scn::technology_by_name(spec.technology);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "repeater_planner: %s\n", e.what());
    return 2;
  }
  const double route = route_mm * 1e-3;

  std::printf("Route: %.1f mm on %s top metal; inductance range %.2f-%.2f nH/mm\n\n",
              route_mm, tech.name.c_str(), scn::to_nH_per_mm(lmin),
              scn::to_nH_per_mm(lmax));

  // Plan for the middle of the inductance range.
  const double l_design = 0.5 * (lmin + lmax);
  const OptimResult opt = optimize_rlc(tech, l_design);
  if (!opt.converged) {
    std::fprintf(stderr, "optimization failed\n");
    return 1;
  }
  // Integer repeater count: round the stage count, then re-derive h.
  const int n_stages = std::max(1, static_cast<int>(std::lround(route / opt.h)));
  const double h_actual = route / n_stages;

  std::printf("Plan (designed at l = %.2f nH/mm):\n", scn::to_nH_per_mm(l_design));
  std::printf("  repeaters:        %d (one per %.2f mm segment)\n", n_stages,
              h_actual * 1e3);
  std::printf("  repeater size:    %.0f x minimum\n", opt.k);
  std::printf("  nominal delay:    %.1f ps end-to-end\n",
              1e12 * opt.delay_per_length * route);

  std::printf("\nDelay exposure across the inductance range (fixed plan):\n");
  std::printf("%12s %14s %16s %14s\n", "l (nH/mm)", "delay (ps)",
              "vs re-optimized", "damping");
  for (const double l : spec.sweep.values()) {
    const double dpl =
        delay_per_length(tech.rep, tech.line(l), h_actual, opt.k);
    const OptimResult re = optimize_rlc(tech, l);
    const double lc = critical_inductance(tech, h_actual, opt.k);
    std::printf("%12.2f %14.1f %+15.1f%% %14s\n", scn::to_nH_per_mm(l),
                1e12 * dpl * route,
                100.0 * (dpl / re.delay_per_length - 1.0),
                l > lc ? "underdamped" : "overdamped");
  }
  std::printf("\nSegments become underdamped above l_crit = %.2f nH/mm: expect\n"
              "overshoot/undershoot there (see signal_integrity_check).\n",
              scn::to_nH_per_mm(critical_inductance(tech, h_actual, opt.k)));
  return 0;
}
