/// Signal-integrity check for one buffered segment: simulate the
/// driver-line-load stage with the circuit engine, measure overshoot /
/// undershoot / delay at the far end, and compare with the two-pole model's
/// predictions (Section 3.3 reliability view).
///
///   $ ./signal_integrity_check [l_nH_mm] [node]
///   $ ./signal_integrity_check 2.0 100

#include <cstdio>
#include <cstdlib>
#include <string>

#include "rlc/analysis/reliability.hpp"
#include "rlc/analysis/signal_metrics.hpp"
#include "rlc/core/delay.hpp"
#include "rlc/core/elmore.hpp"
#include "rlc/core/lcrit.hpp"
#include "rlc/ringosc/ladder.hpp"
#include "rlc/spice/transient.hpp"

int main(int argc, char** argv) {
  using namespace rlc::core;

  const double l = (argc > 1 ? std::atof(argv[1]) : 2.0) * 1e-6;
  const std::string node = argc > 2 ? argv[2] : "100";
  const Technology tech =
      node == "250" ? Technology::nm250() : Technology::nm100();
  const auto rc = rc_optimum(tech);

  std::printf("Stage: %s, h = %.2f mm, k = %.0f, l = %.2f nH/mm, VDD = %.1f V\n\n",
              tech.name.c_str(), rc.h * 1e3, rc.k, l * 1e6, tech.vdd);

  // Model predictions.
  const TwoPole sys(pade_coeffs_hk(tech.rep, tech.line(l), rc.h, rc.k));
  const auto dr = threshold_delay(sys);
  const double lc = critical_inductance(tech, rc.h, rc.k);
  std::printf("Two-pole model: zeta = %.3f (%s; l_crit = %.2f nH/mm)\n",
              sys.damping_ratio(),
              sys.damping() == Damping::kUnderdamped ? "underdamped"
                                                     : "overdamped",
              lc * 1e6);
  std::printf("  predicted 50%% delay   %.1f ps\n", dr.tau * 1e12);
  std::printf("  predicted overshoot   %.2f V above VDD\n",
              sys.overshoot() * tech.vdd);
  std::printf("  predicted undershoot  %.2f V below VDD after the peak\n",
              sys.undershoot() * tech.vdd);

  // Circuit-level measurement: VDD step into Rs + ladder + Cl.
  const auto dl = tech.rep.scaled(rc.k);
  rlc::spice::Circuit ckt;
  const auto src = ckt.node("src"), drv = ckt.node("drv"), end = ckt.node("end");
  ckt.add_vsource("V1", src, ckt.ground(),
                  rlc::spice::PulseSpec{0, tech.vdd, 0, 1e-14, 1e-14, 1, 0});
  ckt.add_resistor("Rs", src, drv, dl.rs_eff);
  ckt.add_capacitor("Cp", drv, ckt.ground(), dl.cp_eff);
  rlc::ringosc::add_rlc_ladder(ckt, "line", drv, end, tech.line(l), rc.h, 32);
  ckt.add_capacitor("Cl", end, ckt.ground(), dl.cl_eff);

  rlc::spice::TransientOptions o;
  o.tstop = 10.0 * dr.tau;
  o.dt = dr.tau / 500.0;
  o.probes = {rlc::spice::Probe::node_voltage(end, "v_end")};
  const auto tr = run_transient(ckt, o);
  if (!tr.completed) {
    std::fprintf(stderr, "transient failed\n");
    return 1;
  }
  const auto& v = tr.signal("v_end");
  const auto exc = rlc::analysis::rail_excursion(v, tech.vdd);
  const auto cross = rlc::analysis::first_crossing_after(
      tr.time, v, 0.5 * tech.vdd, rlc::analysis::Edge::kRising, 0.0);

  std::printf("\nCircuit simulation (32-segment ladder):\n");
  std::printf("  measured 50%% delay    %.1f ps\n",
              cross ? *cross * 1e12 : -1.0);
  std::printf("  measured peak         %.2f V (overshoot %.2f V)\n", exc.v_max,
              exc.overshoot);

  // Reliability verdict.
  const auto ox = rlc::analysis::oxide_stress(v, tech.vdd);
  std::printf("\nGate-oxide stress at the receiving repeater: peak %.2f V = "
              "%.0f%% of VDD -> %s\n",
              ox.v_peak, 100.0 * ox.overstress_ratio,
              ox.exceeds_margin ? "EXCEEDS the 10% overshoot budget"
                                : "within budget");
  return 0;
}
