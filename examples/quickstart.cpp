/// Quickstart: size repeaters for a global wire with inductance taken into
/// account, in ~30 lines of API use.
///
///   $ ./quickstart
///
/// Steps: pick a technology node from the built-in (Table 1) database,
/// choose a line inductance, run the RLC-aware optimizer, and compare with
/// the classical Elmore (RC-only) answer.

#include <cstdio>

#include "rlc/core/elmore.hpp"
#include "rlc/core/optimizer.hpp"

int main() {
  using namespace rlc::core;

  // 1. Technology: 100 nm node, top-level copper metal (paper Table 1).
  const Technology tech = Technology::nm100();

  // 2. The effective per-unit-length inductance of the route.  If you only
  //    know the geometry, see examples/extract_rlc.cpp; here: 1.5 nH/mm.
  const double l = 1.5e-6;  // H/m

  // 3. Classical RC (Elmore) repeater insertion — closed form.
  const RcOptimum rc = rc_optimum(tech);

  // 4. Inductance-aware optimization (the paper's methodology): minimizes
  //    the 50% delay per unit length over segment length h and size k.
  const OptimResult opt = optimize_rlc(tech, l);
  if (!opt.converged) {
    std::fprintf(stderr, "optimization failed\n");
    return 1;
  }

  std::printf("Technology %s, wire inductance %.2f nH/mm\n\n",
              tech.name.c_str(), l * 1e6);
  std::printf("                      %12s %12s\n", "RC (Elmore)", "RLC (paper)");
  std::printf("segment length  h     %9.2f mm %9.2f mm\n", rc.h * 1e3,
              opt.h * 1e3);
  std::printf("repeater size   k     %12.0f %12.0f\n", rc.k, opt.k);
  std::printf("delay / length        %9.2f ps/mm %6.2f ps/mm\n",
              1e9 * rc.tau / rc.h,
              1e9 * opt.delay_per_length);

  // 5. What would the RC sizing cost at this inductance?
  const double rc_at_l = delay_per_length(tech.rep, tech.line(l), rc.h, rc.k);
  std::printf("\nUsing the RC sizing on this line: %.2f ps/mm (+%.1f%% vs optimal)\n",
              1e9 * rc_at_l,
              100.0 * (rc_at_l / opt.delay_per_length - 1.0));
  return 0;
}
