/// RLC extraction from geometry: compute per-unit-length r, l, c for a
/// top-metal bus cross-section using the extraction substrate (BEM
/// capacitance, partial/loop inductance, sheet resistance), then show the
/// inductance *uncertainty* caused by the unknown current return path —
/// the reason the paper treats l as a swept parameter.
///
///   $ ./extract_rlc [width_um] [pitch_um] [thickness_um] [height_um] [eps_r]

#include <cstdio>
#include <cstdlib>

#include "rlc/extract/bem2d.hpp"
#include "rlc/extract/capacitance.hpp"
#include "rlc/extract/inductance.hpp"
#include "rlc/extract/resistance.hpp"
#include "rlc/math/constants.hpp"

int main(int argc, char** argv) {
  using namespace rlc::extract;

  const double w = (argc > 1 ? std::atof(argv[1]) : 2.0) * 1e-6;
  const double pitch = (argc > 2 ? std::atof(argv[2]) : 4.0) * 1e-6;
  const double t = (argc > 3 ? std::atof(argv[3]) : 2.5) * 1e-6;
  const double h = (argc > 4 ? std::atof(argv[4]) : 15.4) * 1e-6;
  const double er = argc > 5 ? std::atof(argv[5]) : 2.0;

  std::printf("Wire: %.1f x %.1f um, pitch %.1f um, %.1f um above substrate, "
              "eps_r %.1f\n\n", w * 1e6, t * 1e6, pitch * 1e6, h * 1e6, er);

  // --- Resistance ---
  const double r = resistance_per_length(rlc::math::kRhoCopper, w, t);
  std::printf("r (bulk Cu):              %7.2f Ohm/mm\n", r * 1e-3);
  std::printf("r (+30%% barrier/liner):   %7.2f Ohm/mm\n", 1.3 * r * 1e-3);

  // --- Capacitance: empirical and BEM ---
  const double c_st = sakurai_tamaru_bus_middle(w, t, h, pitch, er);
  Bem2dOptions opts;
  opts.eps_r = er;
  opts.panels_per_side = 16;
  const auto bus = parallel_bus(3, w, t, pitch, h);
  const auto cmat = capacitance_matrix(bus, opts);
  const double c_bem = cmat(1, 1);
  const double cc = -cmat(1, 0);  // coupling to one neighbour
  const double cg = c_bem - 2.0 * cc;
  std::printf("\nc (Sakurai-Tamaru):       %7.1f pF/m\n", c_st * 1e12);
  std::printf("c (2D BEM, middle wire):  %7.1f pF/m  (ground %.1f + 2 x %.1f coupling)\n",
              c_bem * 1e12, cg * 1e12, cc * 1e12);
  const auto mill = miller_range(cg, cc);
  std::printf("Miller switching range:   %7.1f .. %.1f pF/m (x%.1f)\n",
              mill.c_min * 1e12, mill.c_max * 1e12, mill.c_max / mill.c_min);

  // --- Inductance: the return-path problem ---
  std::printf("\nl depends on the current return path (Section 1.1):\n");
  std::printf("  return in adjacent wire (pitch):        %6.2f nH/mm\n",
              loop_inductance_wire_pair(w, t, pitch) * 1e6);
  std::printf("  return in substrate plane (h):          %6.2f nH/mm\n",
              loop_inductance_over_plane(w, t, h) * 1e6);
  std::printf("  return in a quiet wire 100 um away:     %6.2f nH/mm\n",
              loop_inductance_wire_pair(w, t, 100e-6) * 1e6);
  std::printf("  return in a quiet wire 500 um away:     %6.2f nH/mm\n",
              loop_inductance_wire_pair(w, t, 500e-6) * 1e6);
  std::printf("  partial self (10 mm segment, no return):%6.2f nH/mm\n",
              partial_self_per_length(10e-3, w, t) * 1e6);
  std::printf("\nThis order-of-magnitude spread is why the optimization study sweeps\n"
              "l over 0..5 nH/mm instead of fixing a single extracted value.\n");
  return 0;
}
