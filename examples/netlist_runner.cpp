/// Mini command-line circuit simulator: parse a SPICE-subset deck and run
/// the analyses it requests, printing CSV to stdout.
///
///   $ ./netlist_runner deck.sp            # runs .tran and/or .ac cards
///   $ ./netlist_runner deck.sp --csv out  # writes out_tran.csv / out_ac.csv
///   $ ./netlist_runner --demo             # runs a built-in RLC-line demo
///
/// See rlc/spice/netlist_parser.hpp for the supported card set.

#include <cstdio>
#include <cstring>
#include <string>

#include "rlc/spice/dcop.hpp"
#include "rlc/spice/netlist_parser.hpp"
#include "rlc/spice/waveform_io.hpp"

namespace {

constexpr const char* kDemoDeck = R"(demo: underdamped driver-line-load segment
* One 2 mm segment of a 100nm-style global wire (r=4.4 Ohm/mm, c=123 pF/m,
* l=2 nH/mm) as a 4-section pi ladder, driven through 30 Ohm into 40 fF.
Vin  src 0 pulse(0 1.2 10p 10p 10p 3n) ac 1
Rs   src drv 30
C0   drv 0 20f
R1 drv  n1 2.2
L1 n1   m1 1n
C1 m1 0 62f
R2 m1   n2 2.2
L2 n2   m2 1n
C2 m2 0 62f
R3 m2   n3 2.2
L3 n3   m3 1n
C3 m3 0 62f
R4 m3   n4 2.2
L4 n4   out 1n
C4 out 0 31f
CL   out 0 40f
.tran 2p 2n
.ac dec 8 10meg 20g
.end
)";

void run_deck(rlc::spice::ParsedDeck deck, const std::string& csv_prefix) {
  std::printf("* %s\n", deck.title.c_str());
  if (!deck.tran && !deck.ac) {
    // No analysis card: print the DC operating point.
    const auto dc = rlc::spice::dc_operating_point(deck.circuit);
    std::printf("* DC operating point (%s)\n",
                dc.converged ? "converged" : "FAILED");
    for (rlc::spice::NodeId n = 1; n < deck.circuit.node_count(); ++n) {
      std::printf("v(%s),%.9g\n", deck.circuit.node_name(n).c_str(),
                  dc.voltage(n));
    }
    return;
  }
  if (deck.tran) {
    const auto r = rlc::spice::run_transient(deck.circuit, *deck.tran);
    std::printf("* transient: %s, %ld steps\n",
                r.completed ? "completed" : "FAILED", r.steps_accepted);
    if (!csv_prefix.empty()) {
      rlc::spice::write_csv_file(csv_prefix + "_tran.csv", r);
      std::printf("* wrote %s_tran.csv (%zu samples)\n", csv_prefix.c_str(),
                  r.time.size());
    }
    std::printf("time");
    for (const auto& l : r.labels) std::printf(",%s", l.c_str());
    std::printf("\n");
    // Thin the output to <= 200 rows for terminal friendliness.
    const std::size_t stride = std::max<std::size_t>(1, r.time.size() / 200);
    for (std::size_t i = 0; i < r.time.size(); i += stride) {
      std::printf("%.6e", r.time[i]);
      for (const auto& s : r.signals) std::printf(",%.6g", s[i]);
      std::printf("\n");
    }
  }
  if (deck.ac) {
    const auto r = rlc::spice::run_ac(deck.circuit, *deck.ac);
    if (!csv_prefix.empty()) {
      rlc::spice::write_csv_file(csv_prefix + "_ac.csv", r);
      std::printf("* wrote %s_ac.csv\n", csv_prefix.c_str());
    }
    std::printf("* ac sweep (%zu points)\nfreq", r.freq.size());
    for (const auto& l : r.labels) std::printf(",|%s|", l.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < r.freq.size(); ++i) {
      std::printf("%.6e", r.freq[i]);
      for (const auto& s : r.signals) std::printf(",%.6g", std::abs(s[i]));
      std::printf("\n");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string csv_prefix;
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) csv_prefix = argv[i + 1];
  }
  try {
    if (argc > 1 && std::strcmp(argv[1], "--demo") == 0) {
      run_deck(rlc::spice::parse_netlist(kDemoDeck), csv_prefix);
    } else if (argc > 1) {
      run_deck(rlc::spice::parse_netlist_file(argv[1]), csv_prefix);
    } else {
      std::fprintf(stderr, "usage: %s <deck.sp> | --demo\n", argv[0]);
      return 2;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
