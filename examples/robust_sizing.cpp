/// Robust repeater sizing under inductance/capacitance uncertainty —
/// the Section 3.2 problem as a tool: instead of sizing for one assumed
/// corner, minimize the worst-case regret over the whole uncertainty box
/// (Miller range in c, return-path range in l).
///
///   $ ./robust_sizing [lmin_nH_mm] [lmax_nH_mm] [node]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "rlc/core/elmore.hpp"
#include "rlc/core/robust.hpp"

int main(int argc, char** argv) {
  using namespace rlc::core;

  const double lmin = (argc > 1 ? std::atof(argv[1]) : 0.5) * 1e-6;
  const double lmax = (argc > 2 ? std::atof(argv[2]) : 2.5) * 1e-6;
  const std::string node = argc > 3 ? argv[3] : "100";
  const Technology tech =
      node == "250" ? Technology::nm250() : Technology::nm100();

  RobustOptions box;
  box.c_min = 0.7 * tech.c;   // neighbours switching along
  box.c_max = 1.4 * tech.c;   // neighbours switching against (Miller)
  box.l_min = lmin;
  box.l_max = lmax;

  std::printf("Uncertainty box on %s: c in [%.0f, %.0f] pF/m, "
              "l in [%.2f, %.2f] nH/mm\n\n", tech.name.c_str(),
              box.c_min * 1e12, box.c_max * 1e12, lmin * 1e6, lmax * 1e6);

  const auto res = optimize_robust(tech.rep, tech.r, box);
  if (!res.converged) {
    std::fprintf(stderr, "robust optimization failed\n");
    return 1;
  }

  const rlc::tline::LineParams center{tech.r, 0.5 * (lmin + lmax),
                                 0.5 * (box.c_min + box.c_max)};
  const auto nominal = optimize_rlc(tech.rep, center);

  std::printf("                      %14s %14s\n", "nominal-sized", "robust-sized");
  std::printf("segment length h      %11.2f mm %11.2f mm\n", nominal.h * 1e3,
              res.h * 1e3);
  std::printf("repeater size  k      %14.0f %14.0f\n", nominal.k, res.k);
  std::printf("worst-case regret     %+13.2f%% %+13.2f%%\n",
              100.0 * (res.nominal_regret - 1.0),
              100.0 * (res.worst_regret - 1.0));
  std::printf("\nRegret = delay at a corner / best achievable there.  The robust\n"
              "sizing gives up a sliver at the center of the box to cap the loss\n"
              "at its corners — the quantified version of the paper's Figure 8.\n");
  return 0;
}
