/// Catastrophic-failure analysis (Section 3.3) as a tool: simulate a
/// buffered ring at a given inductance and report whether the design is in
/// the clean, ringing-but-functional, or false-switching regime, along with
/// the reliability metrics.
///
///   $ ./ring_failure_analysis [l_nH_mm] [node] [stages]
///   $ ./ring_failure_analysis 2.2 100 5
///
/// Note: uses a reduced ladder resolution so it runs in a few seconds; the
/// bench binaries regenerate the full-resolution figures.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "rlc/core/elmore.hpp"
#include "rlc/core/lcrit.hpp"
#include "rlc/ringosc/ring.hpp"

int main(int argc, char** argv) {
  using namespace rlc::ringosc;
  using namespace rlc::core;

  const double l = (argc > 1 ? std::atof(argv[1]) : 2.2) * 1e-6;
  const std::string node = argc > 2 ? argv[2] : "100";
  const int stages = argc > 3 ? std::atoi(argv[3]) : 5;
  const Technology tech =
      node == "250" ? Technology::nm250() : Technology::nm100();
  const auto rc = rc_optimum(tech);

  RingParams p;
  p.stages = stages;
  p.l = l;
  p.h = rc.h;
  p.k = rc.k;
  p.segments_per_line = 12;

  std::printf("%d-stage ring, %s, h = %.2f mm, k = %.0f, l = %.2f nH/mm\n",
              stages, tech.name.c_str(), rc.h * 1e3, rc.k, l * 1e6);
  std::printf("l_crit at this sizing: %.2f nH/mm (%s)\n\n",
              critical_inductance(tech, rc.h, rc.k) * 1e6,
              l > critical_inductance(tech, rc.h, rc.k)
                  ? "segments are underdamped"
                  : "segments are overdamped");

  const auto r = simulate_ring(tech, p);
  if (!r.completed) {
    std::fprintf(stderr, "simulation failed\n");
    return 1;
  }

  const double period = r.period.value_or(-1.0);
  std::printf("oscillation period:      %.3f ns (fundamental estimate %.3f ns)\n",
              period * 1e9, r.t_estimate * 1e9);
  std::printf("input waveform:          peak %.2f V / min %.2f V (rails 0..%.1f)\n",
              r.input_excursion.v_max, r.input_excursion.v_min, tech.vdd);
  std::printf("wire current density:    peak %.2e, rms %.2e A/m^2\n",
              r.wire_density.j_peak, r.wire_density.j_rms);

  // Regime classification.
  std::printf("\nVerdict: ");
  if (period > 0.0 && period < 0.6 * r.t_estimate) {
    std::printf("FALSE SWITCHING — ringing at the repeater inputs crosses the\n"
                "switching threshold; logic errors and severe timing violations\n"
                "(the paper's Figure 10 regime).\n");
  } else if (r.input_excursion.overshoot > 0.1 * tech.vdd) {
    std::printf("functional but ringing — overshoot %.0f%% of VDD stresses the\n"
                "gate oxide and dissipates extra power (Figure 9 regime).\n",
                100.0 * r.input_excursion.overshoot / tech.vdd);
  } else {
    std::printf("clean — inductance effects negligible at this sizing.\n");
  }
  if (r.wire_density.em_concern || r.wire_density.joule_concern) {
    std::printf("WARNING: wire current density above reliability budget.\n");
  } else {
    std::printf("Wire current densities within electromigration/self-heating "
                "budgets\n(the paper's Figure 12 conclusion).\n");
  }
  return 0;
}
