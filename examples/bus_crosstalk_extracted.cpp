/// Full extraction-to-waveforms pipeline on a 5-wire bus: capacitances from
/// the 2D BEM solver, inductances (self + all-pairs mutual) from the
/// partial-inductance matrix, simulated with the MNA engine.  The middle
/// wire is the victim; the others switch in the pattern given on the
/// command line.
///
///   $ ./bus_crosstalk_extracted [pattern] [len_mm] [node]
///   $ ./bus_crosstalk_extracted "ss_ss" 2 100     # s=switch, _=victim/quiet
///
/// Pattern characters: 's' rising aggressor, 'f' falling aggressor,
/// 'q' quiet, '_' the victim (exactly one).

#include <cstdio>
#include <cstring>
#include <string>

#include "rlc/analysis/signal_metrics.hpp"
#include "rlc/core/elmore.hpp"
#include "rlc/ringosc/extracted_bus.hpp"
#include "rlc/spice/transient.hpp"

int main(int argc, char** argv) {
  using namespace rlc::spice;
  using rlc::core::Technology;

  const std::string pattern = argc > 1 ? argv[1] : "ss_ss";
  const double len = (argc > 2 ? std::atof(argv[2]) : 2.0) * 1e-3;
  const std::string node = argc > 3 ? argv[3] : "100";
  const Technology tech =
      node == "250" ? Technology::nm250() : Technology::nm100();

  const int n = static_cast<int>(pattern.size());
  const auto victim_pos = pattern.find('_');
  if (victim_pos == std::string::npos) {
    std::fprintf(stderr, "pattern needs exactly one victim '_'\n");
    return 2;
  }

  Circuit ckt;
  std::vector<std::pair<NodeId, NodeId>> ends;
  for (int i = 0; i < n; ++i) {
    ends.emplace_back(ckt.node("in" + std::to_string(i)),
                      ckt.node("out" + std::to_string(i)));
  }
  rlc::ringosc::ExtractedBusOptions opts;
  opts.nseg = 10;
  opts.bem_panels = 10;
  const auto bus =
      rlc::ringosc::add_extracted_bus(ckt, "bus", ends, tech, len, opts);

  std::printf("Extracted %d-wire bus, %.1f mm, %s geometry:\n", n, len * 1e3,
              tech.name.c_str());
  std::printf("  c(victim) = %.1f pF/m total, cc(adjacent) = %.1f pF/m\n",
              bus.cmatrix(victim_pos, victim_pos) * 1e12,
              -bus.cmatrix(victim_pos, victim_pos > 0 ? victim_pos - 1 : 1) * 1e12);
  std::printf("  l_self = %.2f nH/mm, k(adjacent) = %.3f, k(across bus) = %.3f\n\n",
              bus.l_self * 1e6,
              bus.lmatrix(0, 1) / bus.lmatrix(0, 0),
              bus.lmatrix(0, n - 1) / bus.lmatrix(0, 0));

  const double k = 100.0;
  const auto dl = tech.rep.scaled(k);
  const PulseSpec rise{0, tech.vdd, 0, 20e-12, 20e-12, 1, 0};
  const PulseSpec fall{tech.vdd, 0, 0, 20e-12, 20e-12, 1, 0};
  for (int i = 0; i < n; ++i) {
    const auto src = ckt.node("src" + std::to_string(i));
    switch (pattern[i]) {
      case 's': ckt.add_vsource("V" + std::to_string(i), src, ckt.ground(), rise); break;
      case 'f': ckt.add_vsource("V" + std::to_string(i), src, ckt.ground(), fall); break;
      default:  ckt.add_vsource("V" + std::to_string(i), src, ckt.ground(), DcSpec{0.0});
    }
    ckt.add_resistor("Rs" + std::to_string(i), src, ends[i].first, dl.rs_eff);
    ckt.add_capacitor("Cl" + std::to_string(i), ends[i].second, ckt.ground(),
                      dl.cl_eff);
  }

  TransientOptions o;
  o.tstop = 2e-9;
  o.dt = 1e-12;
  o.probes = {Probe::node_voltage(ends[victim_pos].second, "victim")};
  const auto r = run_transient(ckt, o);
  if (!r.completed) {
    std::fprintf(stderr, "transient failed\n");
    return 1;
  }
  const auto& v = r.signal("victim");
  const auto exc = rlc::analysis::rail_excursion(v, tech.vdd);
  const double noise = std::max(exc.v_max, -exc.v_min);
  std::printf("Victim (wire %zu) far-end noise with pattern '%s': %.3f V "
              "(%.0f%% of VDD)\n", victim_pos, pattern.c_str(), noise,
              100.0 * noise / tech.vdd);
  std::printf("Noise crosses VDD/2: %s -> %s\n",
              noise > 0.5 * tech.vdd ? "YES" : "no",
              noise > 0.5 * tech.vdd
                  ? "could falsely switch a downstream gate"
                  : "safe against false switching at this length");
  return 0;
}
