/// Delay / energy / area trade-off explorer: how much switching energy and
/// repeater area can be saved by backing off from the delay-optimal buffer
/// size — the practical question downstream of the paper's optimizer.
///
///   $ ./tradeoff_explorer [l_nH_mm] [node]
///   $ ./tradeoff_explorer 1.5 100

#include <cstdio>
#include <cstdlib>
#include <string>

#include "rlc/core/tradeoff.hpp"

int main(int argc, char** argv) {
  using namespace rlc::core;

  const double l = (argc > 1 ? std::atof(argv[1]) : 1.5) * 1e-6;
  const std::string node = argc > 2 ? argv[2] : "100";
  const Technology tech =
      node == "250" ? Technology::nm250() : Technology::nm100();

  std::printf("Delay/energy/area trade-off, %s, l = %.2f nH/mm "
              "(inductance-aware sizing)\n\n", tech.name.c_str(), l * 1e6);

  const auto pts = delay_energy_tradeoff(tech, l, 12, 0.15);
  if (pts.empty()) {
    std::fprintf(stderr, "trade-off sweep failed\n");
    return 1;
  }
  const auto& best = pts.back();  // delay-optimal point

  std::printf("%10s %10s %14s %14s %12s %12s\n", "k", "h (mm)",
              "delay (ps/mm)", "energy (pJ/m)", "vs fastest", "energy save");
  for (const auto& p : pts) {
    std::printf("%10.0f %10.2f %14.2f %14.2f %+11.1f%% %11.1f%%\n", p.k,
                p.h * 1e3, p.delay_per_length * 1e9,
                p.energy_per_length * 1e12,
                100.0 * (p.delay_per_length / best.delay_per_length - 1.0),
                100.0 * (1.0 - p.energy_per_length / best.energy_per_length));
  }
  std::printf("\nReading: each row re-optimizes the segment length for its buffer\n"
              "size, so every point is on the Pareto front.  Accepting ~20%% more\n"
              "delay typically saves a third or more of the repeater energy.\n");
  return 0;
}
