/// Delay / energy / area trade-off explorer: how much switching energy and
/// repeater area can be saved by backing off from the delay-optimal buffer
/// size — the practical question downstream of the paper's optimizer.
///
/// The request is expressed as a rlc::scenario::ScenarioSpec, the same typed
/// spec the rlc_run experiments use, so any technology id the scenario layer
/// resolves works here ("250", "100", or an interpolated node like "180nm").
///
///   $ ./tradeoff_explorer [l_nH_mm] [node]
///   $ ./tradeoff_explorer 1.5 180nm

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "rlc/core/tradeoff.hpp"
#include "rlc/scenario/spec.hpp"

int main(int argc, char** argv) {
  using namespace rlc::core;
  namespace scn = rlc::scenario;

  scn::ScenarioSpec spec;
  spec.scenario = "tradeoff_explorer";
  const double l = (argc > 1 ? std::atof(argv[1]) : 1.5) * 1e-6;
  spec.sweep = scn::SweepSpec{l, l, 1, {}};
  if (argc > 2) spec.technology = argv[2];

  Technology tech;
  try {
    if (const rlc::Status st = spec.validate(); !st.is_ok()) {
      throw std::invalid_argument(st.to_string());
    }
    tech = scn::technology_by_name(spec.technology);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tradeoff_explorer: %s\n", e.what());
    return 2;
  }

  std::printf("Delay/energy/area trade-off, %s, l = %.2f nH/mm "
              "(inductance-aware sizing)\n\n",
              tech.name.c_str(), scn::to_nH_per_mm(l));

  const auto pts = delay_energy_tradeoff(tech, spec.sweep.values().front(),
                                         12, 0.15);
  if (pts.empty()) {
    std::fprintf(stderr, "trade-off sweep failed\n");
    return 1;
  }
  const auto& best = pts.back();  // delay-optimal point

  std::printf("%10s %10s %14s %14s %12s %12s\n", "k", "h (mm)",
              "delay (ps/mm)", "energy (pJ/m)", "vs fastest", "energy save");
  for (const auto& p : pts) {
    std::printf("%10.0f %10.2f %14.2f %14.2f %+11.1f%% %11.1f%%\n", p.k,
                p.h * 1e3, p.delay_per_length * 1e9,
                p.energy_per_length * 1e12,
                100.0 * (p.delay_per_length / best.delay_per_length - 1.0),
                100.0 * (1.0 - p.energy_per_length / best.energy_per_length));
  }
  std::printf("\nReading: each row re-optimizes the segment length for its buffer\n"
              "size, so every point is on the Pareto front.  Accepting ~20%% more\n"
              "delay typically saves a third or more of the repeater energy.\n");
  return 0;
}
