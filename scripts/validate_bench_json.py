#!/usr/bin/env python3
"""Validate the machine-readable artifacts of this repo.

Two modes:

  validate_bench_json.py ARTIFACT_DIR
      The BENCH_<name>.json artifacts rlc_run --json emits.  Checks
      1. the schema-7 envelope for EVERY artifact (field types, version
         stamp, simd level, rectangular tables, finite numbers, embedded
         spec, observability block, telemetry block, optional coupling
         block),
      2. per-scenario physics invariants for the experiments whose shape
         the paper pins down (fig4, fig7, table1, perf_exact, ...),
      3. the BENCH_serve.json throughput artifact when present (its own
         schema: cold-vs-warm q/s with a measurable warm-cache speedup;
         full runs on multi-core hosts must also show cold-path scaling),
      4. the BENCH_load.json open-loop replay artifact when present (every
         request answered, zero errors/mismatches, ordered quantiles, and
         — schema 2 — the mid-run admin-scrape telemetry block).

  validate_bench_json.py --serve-responses FILE
      An NDJSON response transcript captured from rlc_serve: every line a
      schema-stamped response envelope with a consistent status/code pair
      and a result object on success.

Exits non-zero listing every violation; prints a one-line summary on success.
"""

import json
import math
import re
import sys
from pathlib import Path

SCHEMA_VERSION = 7
SERVE_SCHEMA_VERSION = 1
LOAD_SCHEMA_VERSION = 2
VERSION_RE = re.compile(r"^\d+\.\d+\.\d+$")

# rlc::simd::active_level_name() values (src/base/.../simd.hpp).
SIMD_LEVELS = {"avx2", "scalar"}

# rlc::StatusCode wire integers (stable; see src/base/.../status.hpp).
STATUS_CODES = {
    "ok": 0, "invalid_argument": 1, "not_found": 2, "no_convergence": 3,
    "deadline_exceeded": 4, "cancelled": 5, "internal": 6,
}

# Every scenario rlc_run --all must have produced an artifact for.  This is
# the same retirement contract as tests/scenario/test_registry.cpp.
EXPECTED_SCENARIOS = [
    "table1", "fig2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9_10",
    "fig11", "fig12", "ablation_pade", "ablation_ladder",
    "ablation_baselines", "ext_crosstalk", "ext_frequency_response",
    "ext_scaling_trend", "ext_skin_effect", "perf_solvers", "perf_exact",
    "xtalk_quiet", "xtalk_inphase", "xtalk_antiphase", "xtalk_noise_opt",
    "power_100nm", "power_35nm", "pareto_100nm", "pareto_35nm",
]

errors = []


def err(name, message):
    errors.append(f"{name}: {message}")


def numbers(table, col):
    """Numeric cells of a column (by index), skipping text cells."""
    return [row[col] for row in table["rows"]
            if isinstance(row[col], (int, float)) and not isinstance(row[col], bool)]


def check_version_stamp(name, d):
    v = d.get("version")
    if not isinstance(v, str) or not VERSION_RE.match(v):
        err(name, f"version stamp {v!r} missing or not semver")


def check_simd_stamp(name, d):
    s = d.get("simd")
    if s not in SIMD_LEVELS:
        err(name, f"simd level {s!r} not in {sorted(SIMD_LEVELS)}")


def check_envelope(name, d):
    if d.get("schema") != SCHEMA_VERSION:
        err(name, f"schema {d.get('schema')!r} != {SCHEMA_VERSION}")
    if d.get("bench") != name:
        err(name, f"bench {d.get('bench')!r} != file stem {name!r}")
    check_version_stamp(name, d)
    check_simd_stamp(name, d)
    if d.get("error"):
        err(name, f"scenario errored: {d['error']}")
        return
    for key, kind in (("title", str), ("quick", bool), ("threads", int),
                      ("wall_seconds", (int, float)), ("spec", dict),
                      ("counters", dict), ("observability", dict),
                      ("tables", list), ("metrics", dict), ("notes", list)):
        if not isinstance(d.get(key), kind):
            err(name, f"field {key!r} missing or not {kind}")
    if errors and errors[-1].startswith(name + ":"):
        return  # shape already broken; skip the deep checks

    check_observability(name, d["observability"])
    check_telemetry(name, d.get("telemetry"))
    if "coupling" in d:
        check_coupling(name, d["coupling"])

    if d["spec"].get("scenario") != name:
        err(name, f"spec.scenario {d['spec'].get('scenario')!r} != {name!r}")
    if d["threads"] < 1 or d["wall_seconds"] < 0:
        err(name, "threads/wall_seconds out of range")
    if d["counters"].get("tasks", 0) < 0:
        err(name, "negative counters.tasks")

    for t in d["tables"]:
        cols = t.get("columns", [])
        if not t.get("title") or not cols:
            err(name, "table without title/columns")
        if not t.get("rows"):
            err(name, f"table {t.get('title')!r} has no rows")
        for row in t.get("rows", []):
            if len(row) != len(cols):
                err(name, f"ragged row in table {t.get('title')!r}")
            for cell in row:
                if isinstance(cell, bool) or (
                        isinstance(cell, (int, float))
                        and not math.isfinite(cell)):
                    err(name, f"non-finite/bool cell in {t.get('title')!r}")
    for key, value in d["metrics"].items():
        if not isinstance(value, (int, float)) or isinstance(value, bool) \
                or not math.isfinite(value):
            err(name, f"metric {key!r} not a finite number")


def check_observability(name, o):
    """Schema-3 observability block: a metrics snapshot (counters/gauges as
    integers, histograms with consistent stats) plus a span rollup."""
    for key, kind in (("tracing", bool), ("dropped_spans", int),
                      ("metrics", dict), ("spans", dict)):
        if not isinstance(o.get(key), kind):
            err(name, f"observability.{key} missing or not {kind}")
            return
    m = o["metrics"]
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(m.get(section), dict):
            err(name, f"observability.metrics.{section} missing")
            return
    for key, value in list(m["counters"].items()) + list(m["gauges"].items()):
        if not isinstance(value, int) or isinstance(value, bool):
            err(name, f"observability metric {key!r} not an integer")
    for key, h in m["histograms"].items():
        for field in ("count", "sum", "min", "max", "mean", "p50", "p90",
                      "p99"):
            v = h.get(field)
            if not isinstance(v, (int, float)) or isinstance(v, bool) \
                    or not math.isfinite(v):
                err(name, f"histogram {key!r}.{field} not a finite number")
        if isinstance(h.get("count"), int) and h["count"] > 0:
            if not (h["min"] <= h["p50"] <= h["p90"] <= h["p99"] <= h["max"]):
                err(name, f"histogram {key!r} quantiles out of order")
    for span, s in o["spans"].items():
        for field in ("count", "total_ns", "top_level_ns"):
            if not isinstance(s.get(field), int) or isinstance(s.get(field),
                                                               bool):
                err(name, f"span {span!r}.{field} not an integer")
        if isinstance(s.get("count"), int) and s["count"] <= 0:
            err(name, f"span {span!r} with non-positive count")
    if o["tracing"] and not o["spans"]:
        err(name, "tracing was on but the span rollup is empty")


def check_telemetry(name, t):
    """Schema-7 telemetry block: exporter-derived scrape stats over the
    run's metrics delta plus the tracer ring configuration."""
    if not isinstance(t, dict):
        err(name, "telemetry block missing or not an object")
        return
    for key in ("prometheus_series", "prometheus_bytes",
                "trace_ring_capacity", "dropped_spans"):
        v = t.get(key)
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            err(name, f"telemetry.{key} = {v!r} not a non-negative integer")
            return
    if t["trace_ring_capacity"] < 1:
        err(name, f"telemetry.trace_ring_capacity = "
                  f"{t['trace_ring_capacity']} must be >= 1")
    # A non-empty metrics delta must cost bytes to scrape; series implies
    # bytes (every sample line ends in a newline).
    if t["prometheus_series"] > 0 and t["prometheus_bytes"] <= 0:
        err(name, "telemetry claims series but zero exposition bytes")


def check_coupling(name, c):
    """Schema-6 optional coupling block: the multi-conductor summary a
    coupled scenario stamps on its envelope."""
    if not isinstance(c, dict):
        err(name, "coupling block is not an object")
        return
    n = c.get("n_conductors")
    if not isinstance(n, int) or isinstance(n, bool) or n < 2:
        err(name, f"coupling.n_conductors = {n!r} must be an int >= 2")
    for key in ("cc", "km", "peak_noise", "noise_width"):
        v = c.get(key)
        if not isinstance(v, (int, float)) or isinstance(v, bool) \
                or not math.isfinite(v):
            err(name, f"coupling.{key} = {v!r} not a finite number")
            return
    if c["cc"] < 0:
        err(name, f"coupling.cc = {c['cc']} must be >= 0")
    if not (-1.0 < c["km"] < 1.0):
        err(name, f"coupling.km = {c['km']} must satisfy |km| < 1")
    if c["peak_noise"] < 0 or c["noise_width"] < 0:
        err(name, "coupling noise metrics must be >= 0")


def col_index(table, name_part):
    """Index of the first column whose name contains name_part; None if
    absent."""
    for i, col in enumerate(table.get("columns", [])):
        if name_part in col:
            return i
    return None


def check_xtalk(name, d):
    """Shared invariants of the xtalk_* crosstalk scenarios: physical noise,
    delay ordering on the purely capacitive rows, and analytical-vs-MNA
    agreement.  Full runs use the converged-ladder MNA reference and must
    sit within 5e-3 per unit swing (the integration-test pin); quick runs
    use a coarse ladder and get a 5e-2 sanity bound instead."""
    tables, metrics = d["tables"], d["metrics"]
    if "coupling" not in d:
        err(name, "xtalk scenario without a coupling block")
    rel_budget = 5e-2 if d.get("quick", True) else 5e-3
    if name != "xtalk_noise_opt":
        rel = metrics.get("max_wave_rel_err")
        if rel is None or rel > rel_budget:
            err(name, f"max_wave_rel_err = {rel} exceeds {rel_budget} "
                      "(analytical engine disagrees with the MNA reference)")
    t = tables[0]
    km_col = col_index(t, "km")
    if name == "xtalk_quiet":
        peak = col_index(t, "peak (V)")
        for row in t["rows"]:
            if row[peak] < 0:
                err(name, f"negative victim peak noise {row[peak]}")
    elif name in ("xtalk_inphase", "xtalk_antiphase"):
        quiet = col_index(t, "d_quiet")
        other = col_index(t, "d_anti" if name == "xtalk_antiphase"
                          else "d_inphase")
        for row in t["rows"]:
            if row[km_col] != 0:
                continue  # inductive coupling legitimately reverses the order
            dq, do = row[quiet], row[other]
            if name == "xtalk_antiphase" and not dq <= do * (1 + 1e-9):
                err(name, f"km=0 row: d_quiet {dq} > d_anti {do} "
                          "(Miller ordering violated)")
            if name == "xtalk_inphase" and not do <= dq * (1 + 1e-9):
                err(name, f"km=0 row: d_inphase {do} > d_quiet {dq} "
                          "(Miller ordering violated)")
    elif name == "xtalk_noise_opt":
        vmax = col_index(t, "vmax")
        peak = col_index(t, "peak noise")
        for row in t["rows"]:
            if row[peak] > row[vmax] * (1 + 1e-6):
                err(name, f"peak noise {row[peak]} exceeds the vmax "
                          f"{row[vmax]} budget the optimizer promised")


def check_power(name, d):
    """power_<node>: delay-slack-constrained power minimization.  Every
    answer must honour its slack bound against the scenario's own delay
    reference, power must fall monotonically as slack grows (a looser
    constraint can only help), and the solver must never lose to the
    brute-force grid it is cross-checked against in-table."""
    t, metrics = d["tables"][0], d["metrics"]
    eps_c = col_index(t, "eps")
    delay_c = col_index(t, "delay/len")
    power_c = col_index(t, "power (mW/m)")
    saved_c = col_index(t, "saved")
    active_c = col_index(t, "active")
    grid_c = col_index(t, "grid p")
    if None in (eps_c, delay_c, power_c, saved_c, active_c, grid_c):
        err(name, f"power table columns changed: {t['columns']}")
        return
    delay_ref = metrics.get("delay_ref_ps_mm", 0.0)
    power_ref = metrics.get("power_ref_mW_m", 0.0)
    if not delay_ref > 0 or not power_ref > 0:
        err(name, f"delay_ref_ps_mm/power_ref_mW_m not positive: "
                  f"{delay_ref}, {power_ref}")
        return
    prev_power = math.inf
    for row in t["rows"]:
        eps, dpl, p = row[eps_c], row[delay_c], row[power_c]
        if not p > 0:
            err(name, f"eps={eps} row: power {p} not positive")
        if dpl > (1.0 + eps) * delay_ref * (1 + 1e-6):
            err(name, f"eps={eps} row: delay {dpl} breaks the "
                      f"(1+eps)*T_opt = {(1.0 + eps) * delay_ref} bound")
        if p > prev_power * (1 + 1e-9):
            err(name, f"eps={eps} row: power {p} rose above the tighter-"
                      f"slack row's {prev_power} (monotonicity violated)")
        prev_power = p
        if eps == 0:
            # Zero slack pins the delay optimum bitwise: nothing saved.
            if abs(row[saved_c]) > 1e-9:
                err(name, f"eps=0 row saved {row[saved_c]}% != 0")
            if abs(p - power_ref) > 1e-9 * power_ref:
                err(name, f"eps=0 row power {p} != power_ref {power_ref}")
        gp = row[grid_c]
        if isinstance(gp, (int, float)) and not isinstance(gp, bool):
            if p > gp * (1 + 1e-9):
                err(name, f"eps={eps} row: solver power {p} worse than the "
                          f"best feasible grid point {gp}")
    excess = metrics.get("max_grid_excess_pct", math.inf)
    if excess > 1e-7:
        err(name, f"max_grid_excess_pct = {excess}: the continuous solver "
                  "lost to its own brute-force grid")


def check_pareto(name, d):
    """pareto_<node>: the emitted front must actually be a front — sorted
    by delay with strictly decreasing power (structural non-dominance) —
    and the summary metrics must restate its endpoints."""
    t, metrics = d["tables"][0], d["metrics"]
    delay_c = col_index(t, "delay/len")
    power_c = col_index(t, "power (mW/m)")
    dyn_c, sc_c, leak_c = (col_index(t, p) for p in ("dyn", "sc", "leak"))
    if None in (delay_c, power_c, dyn_c, sc_c, leak_c):
        err(name, f"pareto table columns changed: {t['columns']}")
        return
    rows = t["rows"]
    if metrics.get("front_points") != len(rows):
        err(name, f"front_points {metrics.get('front_points')} != "
                  f"{len(rows)} table rows")
    prev = None
    for row in rows:
        dpl, p = row[delay_c], row[power_c]
        parts = row[dyn_c] + row[sc_c] + row[leak_c]
        if not (p > 0 and row[dyn_c] > 0 and row[sc_c] > 0 and row[leak_c] > 0):
            err(name, f"non-positive power component in row {row}")
        if abs(parts - p) > 1e-6 * p:
            err(name, f"power {p} != dyn+sc+leak {parts}")
        if prev is not None:
            pd, pp = prev
            if not dpl > pd:
                err(name, f"front not sorted by increasing delay: "
                          f"{dpl} after {pd}")
            if not p < pp:
                err(name, f"dominated point on the front: power {p} not "
                          f"below predecessor's {pp}")
        prev = (dpl, p)
    if rows:
        checks = (("delay_min_ps_mm", rows[0][delay_c]),
                  ("delay_max_ps_mm", rows[-1][delay_c]),
                  ("power_max_mW_m", rows[0][power_c]),
                  ("power_min_mW_m", rows[-1][power_c]))
        for key, want in checks:
            got = metrics.get(key)
            if got is None or abs(got - want) > 1e-9 * abs(want):
                err(name, f"metric {key} = {got} disagrees with the "
                          f"table endpoint {want}")
        if metrics.get("power_span_ratio", 0.0) < 1.0:
            err(name, "power_span_ratio below 1: the frugal end is not "
                      "cheaper than the fast end")


def check_invariants(name, d):
    tables, metrics = d["tables"], d["metrics"]
    if name.startswith("xtalk_"):
        check_xtalk(name, d)
        return
    if name.startswith("power_"):
        check_power(name, d)
        return
    if name.startswith("pareto_"):
        check_pareto(name, d)
        return
    if name == "table1":
        # Paper Table 1: h_optRC 14.40 mm (250nm) / 11.10 mm (100nm).
        for key, want in (("h_optRC_250nm_mm", 14.40),
                          ("h_optRC_100nm_mm", 11.10)):
            got = metrics.get(key)
            if got is None or abs(got - want) > 0.01 * want:
                err(name, f"{key} = {got} not within 1% of {want}")
    elif name == "fig4":
        # l_crit positive everywhere; the 100nm curve below the 250nm one.
        for c250, c100 in zip(numbers(tables[0], 1), numbers(tables[0], 2)):
            if not (0 < c100 < c250):
                err(name, f"expected 0 < lcrit_100nm < lcrit_250nm, "
                          f"got {c100} vs {c250}")
                break
    elif name == "fig7":
        # Ratios are normalized to the l = 0 row and grow monotonically.
        for col in (1, 2, 3):
            series = numbers(tables[0], col)
            if abs(series[0] - 1.0) > 1e-12:
                err(name, f"column {col} not normalized: first = {series[0]}")
            if any(b < a - 1e-12 for a, b in zip(series, series[1:])):
                err(name, f"column {col} not monotonically increasing")
    elif name == "fig5":
        # Optimal segment length grows with inductance (paper Figure 5).
        for col in (1, 2):
            series = numbers(tables[0], col)
            if any(b < a - 1e-9 for a, b in zip(series, series[1:])):
                err(name, f"column {col} should be non-decreasing")
    elif name == "fig6":
        # Optimal repeater size shrinks with inductance (paper Figure 6).
        for col in (1, 2):
            series = numbers(tables[0], col)
            if any(b > a + 1e-9 for a, b in zip(series, series[1:])):
                err(name, f"column {col} should be non-increasing")
    elif name == "fig9_10":
        # Inductance worsens the inverter input excursions (Figures 9/10).
        if not (0 < metrics.get("period_ratio", -1)):
            err(name, "period_ratio should be positive")
        if metrics.get("input_overshoot_V_1", 0) <= \
                metrics.get("input_overshoot_V_0", math.inf):
            err(name, "higher-inductance ring should overshoot more")
    elif name == "ablation_pade":
        # The two-pole model degrades with l but stays a usable delay model
        # over the paper's 0-5 nH/mm range (worst case ~14% at l = 5).
        worst = max(v for k, v in metrics.items()
                    if k.startswith("max_abs_err_pct"))
        if worst > 25.0:
            err(name, f"two-pole delay error {worst}% vs exact exceeds 25%")
    elif name == "perf_exact":
        # Accuracy is a hard invariant; windowed-vs-per-t speedups are
        # advisory because CI runs every scenario concurrently with --all.
        budget = metrics.get("rel_err_budget", 1e-3)
        if metrics.get("max_rel_err", math.inf) > budget:
            err(name, f"max_rel_err {metrics.get('max_rel_err')} "
                      f"exceeds budget {budget}")
        # The SoA batch kernel must agree with the memoized per-point
        # evaluator at any simd level.  1e-8 not 1e-12: the comparison spans
        # deep-rolloff contour nodes where |H| is within a few hundred
        # orders of magnitude of underflow and the reference's own complex
        # division sequencing costs relative digits; the tight 1e-12
        # scalar-vs-simd pin lives in tests/tline/test_batch_evaluator.cpp.
        kerr = metrics.get("batch_kernel_rel_err", math.inf)
        if kerr > 1e-8:
            err(name, f"batch_kernel_rel_err {kerr} exceeds 1e-8: "
                      "batch kernel disagrees with the per-point evaluator")
        # The batch-vs-per-point speedup IS enforced on full runs: the
        # head-to-head times both variants inside the same scenario, so
        # concurrent CI load cancels out of the ratio.  Quick runs use
        # too few reps for a stable ratio and are advisory only.
        if not d.get("quick", True) and d.get("simd") == "avx2":
            target = metrics.get("batch_speedup_target", 2.5)
            got = metrics.get("batch_speedup", 0.0)
            if got < target:
                err(name, f"batch_speedup {got:.2f} below target {target} "
                          "on a full avx2 run: the SoA batch kernel "
                          "regressed vs scalar_per_point")


def check_serve_artifact(name, d):
    """BENCH_serve.json: the rlc_serve --bench throughput record.  Its own
    schema (not a scenario envelope).  Structural checks plus the one
    hard performance invariant: the warm-cache pass must be measurably
    faster than the cold pass — warm requests are cache hits, so anything
    close to 1.0 means the result cache is broken, not that CI was slow."""
    if d.get("schema") != SERVE_SCHEMA_VERSION:
        err(name, f"schema {d.get('schema')!r} != {SERVE_SCHEMA_VERSION}")
    if d.get("bench") != "serve":
        err(name, f"bench {d.get('bench')!r} != 'serve'")
    check_version_stamp(name, d)
    check_simd_stamp(name, d)
    for key, kind in (("quick", bool), ("threads", int), ("requests", int),
                      ("metrics", dict)):
        if not isinstance(d.get(key), kind):
            err(name, f"field {key!r} missing or not {kind}")
            return
    m = d["metrics"]
    for key in ("t1_cold_qps", "t1_warm_qps", "tn_cold_qps", "tn_warm_qps",
                "warm_speedup_t1", "parallel_speedup_cold",
                "warm_cache_hit_rate"):
        v = m.get(key)
        if not isinstance(v, (int, float)) or isinstance(v, bool) \
                or not math.isfinite(v) or v < 0:
            err(name, f"metrics.{key} = {v!r} not a finite non-negative number")
            return
    if m["warm_speedup_t1"] < 2.0:
        err(name, f"warm_speedup_t1 = {m['warm_speedup_t1']:.2f}: "
                  "no measurable warm-cache speedup")
    if not (0.0 < m["warm_cache_hit_rate"] <= 1.0):
        err(name, f"warm_cache_hit_rate = {m['warm_cache_hit_rate']} "
                  "outside (0, 1]")
    # Cold-path scaling is a hard invariant for FULL runs only: a full run
    # happens on a real multi-core box, where the cold batch must
    # parallelize (the solver path is lock-free; see tests/svc).  Quick/CI
    # runs may land on 1-core machines — there parallel_threads == 1 and the
    # honest speedup is ~1.0, which is a host property, not a regression.
    if not d.get("quick", True):
        if d.get("parallel_threads", d.get("threads", 1)) > 1 \
                and m["parallel_speedup_cold"] < 2.0:
            err(name, f"parallel_speedup_cold = "
                      f"{m['parallel_speedup_cold']:.2f} on a full run with "
                      f"{d.get('parallel_threads')} threads: cold path "
                      "is not scaling")


def check_load_artifact(name, d):
    """BENCH_load.json: the rlc_load open-loop replay record.  Structural
    checks plus the serving-correctness invariants that hold at any scale:
    every request answered, nothing mis-correlated, transport intact, and
    (schema 2) a successful mid-run admin scrape of the loaded server."""
    if d.get("schema") != LOAD_SCHEMA_VERSION:
        err(name, f"schema {d.get('schema')!r} != {LOAD_SCHEMA_VERSION}")
    if d.get("bench") != "load":
        err(name, f"bench {d.get('bench')!r} != 'load'")
    check_version_stamp(name, d)
    check_simd_stamp(name, d)
    for key, kind in (("quick", bool), ("connections", int),
                      ("requests", int), ("duration_seconds", (int, float)),
                      ("metrics", dict)):
        if not isinstance(d.get(key), kind) or isinstance(d.get(key), bool) \
                and kind is not bool:
            err(name, f"field {key!r} missing or not {kind}")
            return
    m = d["metrics"]
    for key in ("offered_qps", "achieved_qps", "responses", "errors",
                "id_mismatches", "p50_latency_us", "p99_latency_us",
                "max_latency_us", "mean_latency_us"):
        v = m.get(key)
        if not isinstance(v, (int, float)) or isinstance(v, bool) \
                or not math.isfinite(v) or v < 0:
            err(name, f"metrics.{key} = {v!r} not a finite non-negative number")
            return
    if m["responses"] != d["requests"]:
        err(name, f"responses {m['responses']} != requests {d['requests']}: "
                  "the server dropped or duplicated work")
    if m["errors"] != 0:
        err(name, f"{m['errors']} non-ok responses during replay")
    if m["id_mismatches"] != 0:
        err(name, f"{m['id_mismatches']} responses answered the wrong "
                  "request (ordering/leakage bug)")
    if m.get("transport_failed"):
        err(name, "a connection failed mid-replay")
    if d["requests"] > 0 and not (0 < m["p50_latency_us"]
                                  <= m["p99_latency_us"]
                                  <= m["max_latency_us"]):
        err(name, "latency quantiles out of order")
    t = d.get("telemetry")
    if not isinstance(t, dict):
        err(name, "telemetry block missing (schema 2 requires the "
                  "mid-run admin scrape record)")
        return
    if not t.get("scrape_ok"):
        err(name, "mid-run admin scrape failed: the observability plane "
                  "did not answer while the serving plane was loaded")
        return
    if t.get("prometheus_series", 0) < 1 or t.get("prometheus_bytes", 0) < 1:
        err(name, "scrape succeeded but the Prometheus exposition was "
                  "empty — the server recorded no svc metrics under load?")
    if t.get("trace_ring_capacity", 0) < 1:
        err(name, f"telemetry.trace_ring_capacity = "
                  f"{t.get('trace_ring_capacity')!r} must be >= 1")


def check_serve_responses(path):
    """Every line of an rlc_serve NDJSON transcript is a well-formed
    schema-stamped response envelope."""
    lines = [l for l in path.read_text().splitlines() if l.strip()]
    if not lines:
        err(path.name, "transcript is empty")
    for i, line in enumerate(lines, 1):
        where = f"{path.name}:{i}"
        try:
            d = json.loads(line)
        except json.JSONDecodeError as e:
            err(where, f"invalid JSON: {e}")
            continue
        if d.get("schema") != SERVE_SCHEMA_VERSION:
            err(where, f"schema {d.get('schema')!r} != {SERVE_SCHEMA_VERSION}")
        check_version_stamp(where, d)
        status, code = d.get("status"), d.get("code")
        if status not in STATUS_CODES:
            err(where, f"unknown status {status!r}")
            continue
        if code != STATUS_CODES[status]:
            err(where, f"code {code!r} inconsistent with status {status!r}")
        if status == "ok":
            if not isinstance(d.get("result"), dict):
                err(where, "ok response without a result object")
        else:
            if not isinstance(d.get("message"), str) or not d["message"]:
                err(where, "error response without a message")
            if "result" in d:
                err(where, "error response must not carry a result")
    return len(lines)


def finish(summary):
    if errors:
        for e in errors:
            print(f"FAIL {e}", file=sys.stderr)
        sys.exit(1)
    print(summary)


def main():
    if len(sys.argv) == 3 and sys.argv[1] == "--serve-responses":
        n = check_serve_responses(Path(sys.argv[2]))
        finish(f"ok: {n} serve responses valid "
               f"(schema {SERVE_SCHEMA_VERSION})")
        return
    if len(sys.argv) != 2:
        sys.exit(__doc__)
    art_dir = Path(sys.argv[1])
    found = {p.stem.removeprefix("BENCH_"): p
             for p in sorted(art_dir.glob("BENCH_*.json"))}
    for name in EXPECTED_SCENARIOS:
        if name not in found:
            err(name, "artifact missing")
    for name in found:
        # "serve" and "load" are optional: rlc_serve --bench and rlc_load
        # write them, rlc_run doesn't.
        if name not in EXPECTED_SCENARIOS and name not in ("serve", "load"):
            err(name, "unexpected artifact (extend EXPECTED_SCENARIOS?)")

    for name, path in found.items():
        try:
            d = json.loads(path.read_text())
        except json.JSONDecodeError as e:
            err(name, f"invalid JSON: {e}")
            continue
        if name == "serve":
            check_serve_artifact(name, d)
            continue
        if name == "load":
            check_load_artifact(name, d)
            continue
        before = len(errors)
        check_envelope(name, d)
        if len(errors) == before and name in EXPECTED_SCENARIOS:
            check_invariants(name, d)

    finish(f"ok: {len(found)} artifacts valid "
           f"(schema {SCHEMA_VERSION}, all invariants hold)")


if __name__ == "__main__":
    main()
