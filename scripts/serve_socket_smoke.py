#!/usr/bin/env python3
"""Framing and concurrency smoke test for `rlc_serve --socket`.

Phase 1 (single client): one burst of request lines much larger than the
server's --max-batch in a single write, then exactly one response line per
request.  A server that drains at most one batch of its receive buffer per
read() deadlocks here — the client blocks on recv() while the server
blocks on read() — which the socket timeout turns into a hard failure
instead of a hang.  The last request is sent WITHOUT a trailing newline
before the write side is half-closed, so the EOF flush path (serve
buffered lines on half-close, getline semantics for the unterminated tail)
is covered too.

Between the phases one objective:"power" query runs end to end (the ok
response must carry a consistent power block and beat the delay-optimal
reference power at 10% slack) and one unknown-objective query must come
back as a typed invalid_argument naming the offending value.

Phase 2 (concurrent clients): --clients connections at once, each sending
its own burst of more than max_batch requests with per-client ids.  Every
client must get exactly its own responses, in its own request order — the
event loop must not mix frames across connections or starve a client.

Usage: serve_socket_smoke.py [--server PATH] [--requests N] [--max-batch M]
                             [--clients C] [--shards S]
Exit codes: 0 all responses received and well-formed, 1 failure.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import socket
import subprocess
import sys
import tempfile
import time


def wait_for_socket(path: str, proc: subprocess.Popen, timeout: float) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(f"server exited early with code {proc.returncode}")
        if os.path.exists(path):
            return
        time.sleep(0.05)
    raise RuntimeError(f"socket {path} did not appear within {timeout}s")


def recv_lines(conn: socket.socket, want: int, timeout: float) -> list[str]:
    conn.settimeout(timeout)
    buf = b""
    while buf.count(b"\n") < want:
        chunk = conn.recv(65536)
        if not chunk:
            break
        buf += chunk
    return buf.decode("utf-8").splitlines()


def run_burst(sock_path: str, requests: int, first_id: int,
              timeout: float) -> str | None:
    """One connection, one over-max_batch burst with a half-closed tail.
    Returns None on success, an error description otherwise."""
    lines = [
        json.dumps({"op": "ping", "id": first_id + i}) for i in range(requests)
    ]
    burst = ("\n".join(lines)).encode("utf-8")  # no trailing newline
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as conn:
        conn.connect(sock_path)
        conn.sendall(burst)
        conn.shutdown(socket.SHUT_WR)  # half-close: EOF flush path
        responses = recv_lines(conn, requests, timeout)
    if len(responses) != requests:
        return f"sent {requests} requests, got {len(responses)} responses"
    for i, line in enumerate(responses):
        resp = json.loads(line)
        if resp.get("id") != first_id + i or resp.get("status") != "ok":
            return f"response {i} is {line!r}"
    return None


def run_power_query(sock_path: str, timeout: float) -> str | None:
    """One objective:"power" round-trip: the typed objective API must work
    end to end over the socket — an ok response carrying the power block,
    and a typed invalid_argument (naming the bad value) for an unknown
    objective.  Returns None on success, an error description otherwise."""
    reqs = [
        {"op": "query", "id": "power-ok", "technology": "100nm", "l": 1e-6,
         "objective": "power", "delay_slack_eps": 0.1},
        {"op": "query", "id": "power-bad", "technology": "100nm", "l": 1e-6,
         "objective": "minpower"},
    ]
    payload = "\n".join(json.dumps(r) for r in reqs) + "\n"
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as conn:
        conn.connect(sock_path)
        conn.sendall(payload.encode("utf-8"))
        conn.shutdown(socket.SHUT_WR)
        lines = recv_lines(conn, len(reqs), timeout)
    if len(lines) != len(reqs):
        return f"sent {len(reqs)} power requests, got {len(lines)} responses"
    ok = json.loads(lines[0])
    if ok.get("id") != "power-ok" or ok.get("status") != "ok":
        return f"power query did not succeed: {lines[0]!r}"
    result = ok.get("result", {})
    total = result.get("power_total", 0)
    parts = (result.get("power_dynamic", 0) + result.get("power_short_circuit", 0)
             + result.get("power_leakage", 0))
    if not (isinstance(total, float) and total > 0):
        return f"ok power response without a positive power_total: {lines[0]!r}"
    if abs(parts - total) > 1e-9 * total:
        return f"power_total {total} != sum of components {parts}"
    if not result.get("power_total") < result.get("power_ref", 0):
        return "10% slack bought no power at all"
    bad = json.loads(lines[1])
    if bad.get("status") != "invalid_argument" \
            or "minpower" not in bad.get("message", ""):
        return f"unknown objective not rejected by name: {lines[1]!r}"
    return None


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--server", default="./build/bench/rlc_serve")
    ap.add_argument("--requests", type=int, default=64)
    ap.add_argument("--max-batch", type=int, default=4)
    ap.add_argument("--clients", type=int, default=8)
    ap.add_argument("--shards", type=int, default=2)
    ap.add_argument("--timeout", type=float, default=30.0)
    args = ap.parse_args()

    sock_path = os.path.join(tempfile.mkdtemp(prefix="rlc_serve_"), "sock")
    proc = subprocess.Popen(
        [args.server, "--socket", sock_path, "--max-batch",
         str(args.max_batch), "--shards", str(args.shards)],
        stdout=subprocess.DEVNULL,
    )
    try:
        wait_for_socket(sock_path, proc, args.timeout)

        # Phase 1: single-client burst framing (ping answers immediately, so
        # this exercises framing, not the optimizer).
        error = run_burst(sock_path, args.requests, 0, args.timeout)
        if error is not None:
            print(f"FAIL (single client): {error}", file=sys.stderr)
            return 1

        # Phase 1b: one real optimizer round-trip per objective family —
        # the power objective (with its wire-level power block) and the
        # typed rejection of an unknown objective string.
        error = run_power_query(sock_path, args.timeout)
        if error is not None:
            print(f"FAIL (power objective): {error}", file=sys.stderr)
            return 1

        # Phase 2: concurrent clients, ids namespaced per client so any
        # cross-connection leak or reordering is caught by the id check.
        with concurrent.futures.ThreadPoolExecutor(args.clients) as pool:
            futures = [
                pool.submit(run_burst, sock_path, args.requests,
                            (c + 1) * 100000, args.timeout)
                for c in range(args.clients)
            ]
            failures = [
                f"client {c}: {f.result()}"
                for c, f in enumerate(futures) if f.result() is not None
            ]
        if failures:
            for f in failures:
                print(f"FAIL (concurrent): {f}", file=sys.stderr)
            return 1

        print(
            f"OK: burst of {args.requests} over max_batch={args.max_batch}, "
            f"a power-objective round-trip, then {args.clients} concurrent "
            f"clients x {args.requests} requests ({args.shards} shards), "
            f"one ordered response each"
        )
        return 0
    finally:
        proc.terminate()
        proc.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
