#!/usr/bin/env python3
"""Framing smoke test for `rlc_serve --socket`.

Sends one burst of request lines much larger than the server's --max-batch
in a single write, then waits for exactly one response line per request.
A server that drains at most one batch of its receive buffer per read()
deadlocks here — the client blocks on recv() while the server blocks on
read() — which the socket timeout turns into a hard failure instead of a
hang.  The last request is sent WITHOUT a trailing newline before the
write side is half-closed, so the EOF flush path (serve buffered lines on
half-close, getline semantics for the unterminated tail) is covered too.

Usage: serve_socket_smoke.py [--server PATH] [--requests N] [--max-batch M]
Exit codes: 0 all responses received and well-formed, 1 failure.
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import subprocess
import sys
import tempfile
import time


def wait_for_socket(path: str, proc: subprocess.Popen, timeout: float) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(f"server exited early with code {proc.returncode}")
        if os.path.exists(path):
            return
        time.sleep(0.05)
    raise RuntimeError(f"socket {path} did not appear within {timeout}s")


def recv_lines(conn: socket.socket, want: int, timeout: float) -> list[str]:
    conn.settimeout(timeout)
    buf = b""
    while buf.count(b"\n") < want:
        chunk = conn.recv(65536)
        if not chunk:
            break
        buf += chunk
    return buf.decode("utf-8").splitlines()


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--server", default="./build/bench/rlc_serve")
    ap.add_argument("--requests", type=int, default=64)
    ap.add_argument("--max-batch", type=int, default=4)
    ap.add_argument("--timeout", type=float, default=30.0)
    args = ap.parse_args()

    sock_path = os.path.join(tempfile.mkdtemp(prefix="rlc_serve_"), "sock")
    proc = subprocess.Popen(
        [args.server, "--socket", sock_path, "--max-batch", str(args.max_batch)],
        stdout=subprocess.DEVNULL,
    )
    try:
        wait_for_socket(sock_path, proc, args.timeout)
        # ping answers immediately, so the burst exercises framing, not the
        # optimizer; the ids let us check one response per request, in order.
        lines = [
            json.dumps({"op": "ping", "id": i}) for i in range(args.requests)
        ]
        burst = ("\n".join(lines)).encode("utf-8")  # no trailing newline
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as conn:
            conn.connect(sock_path)
            conn.sendall(burst)
            conn.shutdown(socket.SHUT_WR)  # half-close: EOF flush path
            responses = recv_lines(conn, args.requests, args.timeout)
        if len(responses) != args.requests:
            print(
                f"FAIL: sent {args.requests} requests, got "
                f"{len(responses)} responses",
                file=sys.stderr,
            )
            return 1
        for i, line in enumerate(responses):
            resp = json.loads(line)
            if resp.get("id") != i or resp.get("status") != "ok":
                print(f"FAIL: response {i} is {line!r}", file=sys.stderr)
                return 1
        print(
            f"OK: {args.requests} burst requests over max_batch="
            f"{args.max_batch} socket, one ordered response each"
        )
        return 0
    finally:
        proc.terminate()
        proc.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
