#!/usr/bin/env python3
"""Validate Prometheus text exposition (format 0.0.4) from rlc's exporter.

Two modes:

  validate_prometheus.py FILE
      Validate an exposition file (e.g. a saved scrape).

  validate_prometheus.py --scrape SOCKET [--out FILE]
      Connect to a running rlc_serve Unix socket, issue the admin op
      {"op":"metrics","format":"prometheus"}, unwrap the NDJSON response
      envelope, validate the exposition body, and optionally save it to
      FILE (so CI can archive exactly what a Prometheus server would have
      scraped).

Checks:
  * every line is a comment, blank, or `name{labels} value`;
  * metric names match [a-zA-Z_:][a-zA-Z0-9_:]* (the exporter must have
    sanitized the registry's dotted names);
  * every sample belongs to exactly one `# TYPE` declaration (counter,
    gauge, or histogram) and histogram samples use only the _bucket /
    _sum / _count suffixes;
  * no duplicate series (same name + label set twice);
  * every value parses as a float; counters and bucket counts are >= 0;
  * histogram buckets are cumulative (non-decreasing in le order), end at
    le="+Inf", and the +Inf bucket equals the _count sample.

Exits non-zero listing every violation; prints a one-line summary on
success.  Stdlib only.
"""

import json
import re
import socket
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$")
LABELS_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
TYPES = {"counter", "gauge", "histogram"}

errors = []


def err(line_no, message):
    errors.append(f"line {line_no}: {message}")


def parse_value(text):
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)  # raises ValueError on garbage


def base_name(name, types):
    """The TYPE-declared metric a sample line belongs to.  Histogram
    samples carry _bucket/_sum/_count suffixes; everything else matches
    its declaration exactly."""
    if name in types:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            stem = name[: -len(suffix)]
            if types.get(stem) == "histogram":
                return stem
    return None


def validate(text):
    """Validate one exposition document; returns (series, histograms)."""
    types = {}       # metric name -> declared type
    seen = set()     # (name, sorted label tuple) -> duplicate detection
    series = 0
    # histogram name -> list of (le, count, line_no); plus sum/count samples
    buckets = {}
    counts = {}

    for line_no, raw in enumerate(text.splitlines(), 1):
        line = raw.rstrip("\r")
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    err(line_no, f"malformed TYPE comment: {line!r}")
                    continue
                name, kind = parts[2], parts[3]
                if not NAME_RE.match(name):
                    err(line_no, f"TYPE declares invalid name {name!r}")
                if kind not in TYPES:
                    err(line_no, f"TYPE {name} declares unknown kind "
                                 f"{kind!r} (counter | gauge | histogram)")
                if name in types:
                    err(line_no, f"duplicate TYPE declaration for {name}")
                types[name] = kind
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            err(line_no, f"unparseable sample line: {line!r}")
            continue
        name, labels_raw, value_raw = m.group(1), m.group(2), m.group(3)
        if not NAME_RE.match(name):
            err(line_no, f"invalid metric name {name!r}")
            continue
        labels = {}
        if labels_raw:
            body = labels_raw[1:-1]
            consumed = 0
            for lm in LABELS_RE.finditer(body):
                labels[lm.group(1)] = lm.group(2)
                consumed = lm.end()
            rest = body[consumed:].strip().strip(",")
            if rest:
                err(line_no, f"unparseable label text {rest!r} in {line!r}")
        try:
            value = parse_value(value_raw)
        except ValueError:
            err(line_no, f"value {value_raw!r} of {name} is not a number")
            continue
        key = (name, tuple(sorted(labels.items())))
        if key in seen:
            err(line_no, f"duplicate series {name}{sorted(labels.items())}")
        seen.add(key)
        series += 1

        stem = base_name(name, types)
        if stem is None:
            err(line_no, f"sample {name} has no matching TYPE declaration")
            continue
        kind = types[stem]
        if kind == "counter" and value < 0:
            err(line_no, f"counter {name} is negative ({value})")
        if kind == "histogram":
            if name == stem + "_bucket":
                le = labels.get("le")
                if le is None:
                    err(line_no, f"{name} bucket without an le label")
                    continue
                try:
                    le_v = parse_value(le)
                except ValueError:
                    err(line_no, f"{name} le={le!r} is not a number")
                    continue
                if value < 0:
                    err(line_no, f"bucket count of {stem} is negative")
                buckets.setdefault(stem, []).append((le_v, value, line_no))
            elif name == stem + "_count":
                if value < 0:
                    err(line_no, f"{name} is negative")
                counts[stem] = (value, line_no)
            # _sum needs no extra checks beyond being a number

    for stem, bs in buckets.items():
        line_no = bs[-1][2]
        les = [b[0] for b in bs]
        if les != sorted(les):
            err(line_no, f"histogram {stem} buckets not in ascending "
                         "le order")
        vals = [b[1] for b in bs]
        if any(b < a for a, b in zip(vals, vals[1:])):
            err(line_no, f"histogram {stem} bucket counts not cumulative")
        if not les or les[-1] != float("inf"):
            err(line_no, f"histogram {stem} does not end at le=\"+Inf\"")
        elif stem in counts and vals[-1] != counts[stem][0]:
            err(counts[stem][1],
                f"histogram {stem}_count {counts[stem][0]} != +Inf bucket "
                f"{vals[-1]}")
        if stem not in counts:
            err(line_no, f"histogram {stem} has buckets but no _count")

    return series, len(buckets)


def scrape(path):
    """Issue the Prometheus metrics admin op against a Unix socket and
    return the exposition body."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
        s.settimeout(30.0)
        s.connect(path)
        s.sendall(b'{"op":"metrics","format":"prometheus"}\n')
        s.shutdown(socket.SHUT_WR)
        data = b""
        while b"\n" not in data:
            chunk = s.recv(1 << 16)
            if not chunk:
                break
            data += chunk
    line = data.split(b"\n", 1)[0].decode("utf-8", "replace")
    if not line:
        sys.exit("FAIL scrape: no response line from the server")
    try:
        env = json.loads(line)
    except json.JSONDecodeError as e:
        sys.exit(f"FAIL scrape: response is not JSON: {e}")
    if env.get("status") != "ok":
        sys.exit(f"FAIL scrape: server answered status "
                 f"{env.get('status')!r}: {env.get('message')!r}")
    result = env.get("result") or {}
    if result.get("content_type") != "text/plain; version=0.0.4":
        sys.exit(f"FAIL scrape: content_type "
                 f"{result.get('content_type')!r} is not the 0.0.4 "
                 "exposition type")
    body = result.get("body")
    if not isinstance(body, str) or not body:
        sys.exit("FAIL scrape: ok response without an exposition body")
    return body


def main():
    args = sys.argv[1:]
    out_path = None
    if "--out" in args:
        i = args.index("--out")
        if i + 1 >= len(args):
            sys.exit("--out needs a value")
        out_path = args[i + 1]
        del args[i:i + 2]
    if len(args) == 2 and args[0] == "--scrape":
        text = scrape(args[1])
        source = f"scrape of {args[1]}"
    elif len(args) == 1 and not args[0].startswith("-"):
        with open(args[0], encoding="utf-8") as f:
            text = f.read()
        source = args[0]
    else:
        sys.exit(__doc__)
    if out_path:
        with open(out_path, "w", encoding="utf-8") as f:
            f.write(text)
    series, histograms = validate(text)
    if series == 0:
        err(0, "exposition contains no samples")
    if errors:
        for e in errors:
            print(f"FAIL {e}", file=sys.stderr)
        sys.exit(1)
    print(f"ok: {source}: {series} series ({histograms} histograms) valid "
          "Prometheus 0.0.4 exposition")


if __name__ == "__main__":
    main()
