#pragma once

/// \file rlc.hpp
/// Versioned umbrella header — the ONE include of the redesigned public
/// API.  Link the `rlc` CMake interface target and write:
///
///   #include "rlc/rlc.hpp"
///
///   rlc::svc::Session session;
///   auto r = session.submit({.technology = "100nm", .l = 2.0e-6});
///   if (r.is_ok()) use(r->delay_per_length);
///
/// The stable surface is, from the bottom of the stack up:
///   * rlc::Status / rlc::StatusOr<T>, rlc::version()  (rlc/base)
///   * cancellation tokens + deadlines                 (rlc/base/cancel.hpp)
///   * the typed optimize() entry point + Pareto sweep (rlc/core/optimize_api.hpp)
///   * its thin legacy wrappers                        (rlc/core/optimizer.hpp)
///   * the repeater-chain power models                 (rlc/core/power.hpp)
///   * ScenarioSpec/ScenarioResult + the registry      (rlc/scenario)
///   * Session / Server — the query service            (rlc/svc)
///
/// Everything else under rlc/... (math kernels, tline models, Laplace
/// inversion, SPICE writers) is implementation surface: usable, but not
/// covered by the Status boundary rule and free to move between releases.
/// rlc::version() is stamped into every BENCH_*.json artifact and every
/// rlc_serve response, so artifacts are traceable to the library that
/// produced them.

#include "rlc/base/cancel.hpp"
#include "rlc/base/status.hpp"
#include "rlc/base/version.hpp"
#include "rlc/core/optimize_api.hpp"
#include "rlc/core/optimizer.hpp"
#include "rlc/core/power.hpp"
#include "rlc/core/technology.hpp"
#include "rlc/scenario/registry.hpp"
#include "rlc/scenario/result.hpp"
#include "rlc/scenario/spec.hpp"
#include "rlc/svc/query.hpp"
#include "rlc/svc/serve.hpp"
#include "rlc/svc/session.hpp"
