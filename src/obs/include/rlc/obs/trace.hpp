#pragma once

/// \file trace.hpp
/// Scoped-span tracer with Chrome trace-event export.
///
/// Spans are recorded with an RAII guard placed at the top of a stage:
///
///   void solve(...) {
///     RLC_TRACE_SPAN("newton_2d");
///     ...
///   }
///
/// Cost model:
///   * tracer disabled (the default): the guard constructor is one relaxed
///     atomic load of a process-global flag — low single-digit ns, no
///     allocation, no branch taken;
///   * tracer enabled: start/stop are two steady_clock reads plus one
///     write-once slot in a PER-THREAD ring buffer (no locks, no
///     contention).  Rings are fixed-capacity; when a thread fills its
///     ring, newest spans are dropped and counted (`Tracer::dropped`), the
///     run itself is never perturbed.
///
/// Span names must be string literals or otherwise outlive the tracer
/// (e.g. names owned by the scenario registry) — the tracer stores the
/// pointer, not a copy, to keep the hot path allocation-free.
///
/// Export is Chrome trace-event JSON ("complete" X events with
/// microsecond timestamps), loadable in chrome://tracing or
/// https://ui.perfetto.dev.  `rollup()` aggregates the same events by
/// name for the BENCH_<name>.json `observability` block; `top_level_ns`
/// sums only depth-0 spans so it can be compared against wall time
/// without double-counting nested stages.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "rlc/base/status.hpp"
#include "rlc/io/json.hpp"

namespace rlc::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

class Tracer {
 public:
  /// The process-wide tracer every RLC_TRACE_SPAN records into.
  static Tracer& global();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The ~ns guard check; true between enable() and disable().
  static bool enabled() noexcept {
    return detail::g_trace_enabled.load(std::memory_order_relaxed);
  }

  /// Start capturing: clears previously captured spans, re-arms every
  /// ring, and stamps the epoch all timestamps are relative to.  Call at
  /// quiescence (spans in flight across enable() may be lost or
  /// mis-based, never unsafe).
  void enable() noexcept;

  /// Stop capturing; recorded spans stay available for export.
  void disable() noexcept;

  /// Spans aggregated by name, sorted by total_ns descending.
  struct SpanStats {
    std::string name;
    std::uint64_t count = 0;
    std::int64_t total_ns = 0;      ///< sum of span durations
    std::int64_t top_level_ns = 0;  ///< sum over depth-0 spans only
  };
  std::vector<SpanStats> rollup() const;

  /// {"spans": {name: {count, total_ns, top_level_ns}}, "dropped": n}
  io::Json rollup_json() const;

  /// Full Chrome trace-event document (traceEvents + thread-name
  /// metadata).  Safe to call while spans are still being recorded: it
  /// reads each ring only up to its published count.
  io::Json chrome_trace_json() const;

  /// Render chrome_trace_json() to `path` via rlc::io; false on I/O error.
  bool write_chrome_trace(const std::string& path) const;

  std::uint64_t span_count() const;  ///< spans captured and retained
  std::uint64_t dropped() const;     ///< spans lost to full rings

  /// Drop all captured spans (rings stay armed if enabled).
  void clear() noexcept;

  /// Monotonic nanoseconds (steady_clock); public for tests.
  static std::int64_t now_ns() noexcept;

  /// Default per-thread ring capacity in spans (64Ki ≈ 2 MiB per recording
  /// thread, allocated lazily on that thread's first span).  Overridable
  /// via RLC_TRACE_RING, resolved once at tracer construction.
  static constexpr std::size_t kRingCapacity = std::size_t{1} << 16;

  /// Upper bound accepted from RLC_TRACE_RING (4Mi spans ≈ 128 MiB per
  /// recording thread — past that the ring is the memory bug).
  static constexpr std::size_t kMaxRingCapacity = std::size_t{1} << 22;

  /// Strict parse of an RLC_TRACE_RING value, mirroring the
  /// RLC_NUM_THREADS contract (rlc::exec::parse_thread_count_strict):
  /// nullptr (unset) means "use the default" and returns 0; anything else
  /// must be an integer in [1, kMaxRingCapacity] or the parse fails with
  /// invalid_argument.  Drivers call this at startup and exit non-zero on
  /// error; the tracer itself falls back to the default with a one-shot
  /// stderr warning so a bad value can never crash library users.
  static rlc::StatusOr<std::size_t> parse_ring_capacity_strict(
      const char* text);

  /// The per-thread ring capacity in effect (RLC_TRACE_RING if valid,
  /// else kRingCapacity).  Rings created before a capacity change would
  /// keep their size, but the value is resolved once in the constructor
  /// so every ring in a process agrees.
  std::size_t ring_capacity() const;

 private:
  Tracer();
  ~Tracer();
  friend class SpanGuard;
  struct Impl;
  Impl* impl_;
};

/// RAII span: measures construction→destruction while the tracer is
/// enabled, does (almost) nothing otherwise.  Spans on one thread nest;
/// the guard tracks depth so top-level time is attributable.
class SpanGuard {
 public:
  explicit SpanGuard(const char* name) noexcept {
    if (Tracer::enabled()) begin(name);
  }
  ~SpanGuard() noexcept {
    if (name_ != nullptr) end();
  }

  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  void begin(const char* name) noexcept;
  void end() noexcept;

  const char* name_ = nullptr;
  std::int64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
};

}  // namespace rlc::obs

#define RLC_OBS_CONCAT_IMPL(a, b) a##b
#define RLC_OBS_CONCAT(a, b) RLC_OBS_CONCAT_IMPL(a, b)

/// Trace the enclosing scope as a span named `name` (a string literal or
/// other pointer that outlives the tracer).
#define RLC_TRACE_SPAN(name) \
  ::rlc::obs::SpanGuard RLC_OBS_CONCAT(rlc_obs_span_, __LINE__)(name)
