#pragma once

/// \file progress.hpp
/// Throttled completed/total progress line for long sweeps
/// (`rlc_run --progress`).  Thread-safe: scenarios complete on pool
/// threads, so tick() may be called concurrently; output is rate-limited
/// so a thousand fast completions cost one stderr write per interval.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

namespace rlc::obs {

class Progress {
 public:
  /// A meter over `total` units.  When `enabled` is false every call is a
  /// no-op (callers keep one unconditional tick() in the loop).
  Progress(std::size_t total, bool enabled);

  /// One unit done; prints "\r[done/total] label" to stderr at most every
  /// `kIntervalNs` (the final unit always prints).
  void tick(const std::string& label = std::string());

  /// Terminate the progress line (newline) if anything was printed.
  void finish();

  std::size_t done() const { return done_.load(std::memory_order_relaxed); }

  static constexpr std::int64_t kIntervalNs = 100'000'000;  // 100 ms

 private:
  const std::size_t total_;
  const bool enabled_;
  std::atomic<std::size_t> done_{0};
  std::atomic<std::int64_t> last_print_ns_{0};
  std::atomic<bool> printed_{false};
  std::mutex print_mu_;
};

}  // namespace rlc::obs
