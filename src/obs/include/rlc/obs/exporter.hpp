#pragma once

/// \file exporter.hpp
/// Renderers for a MetricsSnapshot: Prometheus text exposition 0.0.4,
/// canonical rlc::io JSON, and the human-readable table the bench drivers
/// print to stderr.  One formatting authority instead of per-driver
/// dumpers — the serving admin surface ({"op":"metrics"}) and the CLI
/// `--metrics` flags all call into here.
///
/// Prometheus mapping:
///   * registry names use '.' and '-' as separators; both are rewritten to
///     '_' (and any other character outside [a-zA-Z0-9_:] likewise), with a
///     leading '_' prefixed when the first character is not a valid start;
///   * counters become `counter` series, gauges `gauge`;
///   * a log-scale HistogramSnapshot becomes the cumulative
///     `_bucket{le="..."}` family (underflow bin counts under the first
///     interior edge, overflow only under le="+Inf"), plus `_sum`/`_count`;
///   * every family carries its `# TYPE` line; label values are escaped
///     per the exposition format (backslash, double-quote, newline).

#include <string>

#include "rlc/io/json.hpp"
#include "rlc/obs/metrics.hpp"

namespace rlc::obs {

class Exporter {
 public:
  /// Prometheus text exposition 0.0.4 of the whole snapshot.  Metric names
  /// are sanitized (see sanitize_metric_name); two registry names that
  /// collide after sanitization are disambiguated with a numeric suffix so
  /// the output never contains duplicate series.
  static std::string prometheus(const MetricsSnapshot& snap);

  /// Canonical JSON (delegates to MetricsSnapshot::to_json — one shape for
  /// artifacts and the admin {"op":"metrics","format":"json"} response).
  static io::Json json(const MetricsSnapshot& snap);

  /// Human-readable table (one line per metric); the single implementation
  /// behind MetricsSnapshot::table() and the drivers' stderr dumps.
  static std::string text(const MetricsSnapshot& snap);

  /// Copy of `snap` keeping only metrics whose name starts with `prefix`
  /// (e.g. "svc." for the serving drivers).
  static MetricsSnapshot filter(const MetricsSnapshot& snap,
                                const std::string& prefix);

  /// Rewrite a registry name into the Prometheus name charset
  /// [a-zA-Z_:][a-zA-Z0-9_:]*: '.'/'-'/anything else invalid becomes '_',
  /// and a leading digit gets a '_' prefix.  Empty input becomes "_".
  static std::string sanitize_metric_name(const std::string& name);

  /// Escape a label value for the exposition format: backslash,
  /// double-quote and newline are backslash-escaped.
  static std::string escape_label_value(const std::string& value);

  /// Content type to serve the prometheus() body under.
  static const char* content_type() { return "text/plain; version=0.0.4"; }
};

}  // namespace rlc::obs
