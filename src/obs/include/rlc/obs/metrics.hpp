#pragma once

/// \file metrics.hpp
/// Process-wide metrics registry: named counters, gauges, and fixed-bin
/// log-scale histograms with p50/p90/p99 extraction.
///
/// Design constraints, in order:
///   * hot-path cost — counter adds and histogram records go to PER-THREAD
///     shards (one relaxed atomic RMW on cache-local memory, no locks, no
///     contention); shards are merged only when a snapshot is taken;
///   * zero numerical footprint — recording observes solver behaviour, it
///     never participates in it, so instrumented code produces bit-identical
///     results with metrics hot or cold (pinned by tests/obs);
///   * thread-safety throughout — registration, recording, and snapshotting
///     may race freely (TSan-clean); a shard owned by an exiting thread is
///     retired into the registry so its counts survive the thread.
///
/// Gauges are the exception to sharding: a gauge is a *level* (e.g. the
/// pool's pending-loop depth), not a rate, so it lives as one shared atomic
/// — gauge updates are per-task, not per-iteration, and contention there is
/// negligible.
///
/// Usage from a hot path (the id lookup happens once per call site):
///
///   static const int solves = Registry::global().counter("newton.2d.solves");
///   static const int iters =
///       Registry::global().histogram("newton.2d.iterations", 1.0, 256.0, 24);
///   Registry::global().add(solves);
///   Registry::global().record(iters, result.iterations);

#include <cstdint>
#include <string>
#include <vector>

#include "rlc/io/json.hpp"

namespace rlc::obs {

/// Merged view of one histogram: fixed log-scale bins between lo and hi
/// plus an underflow bin (values < lo, including <= 0) and an overflow bin
/// (values >= hi), so no sample is ever silently dropped.
struct HistogramSnapshot {
  std::string name;
  double lo = 1.0;
  double hi = 2.0;
  /// bins.size() == interior bins + 2; bins.front() is underflow,
  /// bins.back() is overflow.
  std::vector<std::uint64_t> bins;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when count == 0
  double max = 0.0;

  double mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }

  /// Quantile estimate for q in [0, 1] by geometric interpolation inside
  /// the bin holding the rank; clamped to the observed [min, max] so the
  /// under/overflow bins answer with the exact extreme.  0 when empty.
  double quantile(double q) const;

  /// The n + 1 interior bin edges lo * (hi/lo)^(i/n) — strictly increasing
  /// (pinned by tests/obs).
  static std::vector<double> bin_edges(double lo, double hi, int bins);

  /// Bin index (into `bins`, i.e. 0 = underflow) for a value.
  static std::size_t bin_index(double lo, double hi, int bins, double value);

  /// Pointwise merge; the two snapshots must have identical shape
  /// (name/lo/hi/bin count) or std::invalid_argument is thrown.
  /// Associative and commutative in all integer fields (pinned by tests).
  HistogramSnapshot& merge(const HistogramSnapshot& other);
};

/// A consistent-enough merged view of every metric (see Registry::snapshot).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// This snapshot minus an earlier one: counters and histogram bins
  /// subtract (attribution of a bracketed region); gauges keep their
  /// current level (a level has no meaningful delta).  Metrics absent from
  /// `earlier` pass through whole.
  MetricsSnapshot delta_since(const MetricsSnapshot& earlier) const;

  /// Drop all-zero counters and empty histograms (after a delta, most of
  /// the registry is noise for the scenario at hand).
  MetricsSnapshot without_zeros() const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count,
  /// sum, min, max, mean, p50, p90, p99}}} — the envelope block written
  /// into BENCH_<name>.json (bin arrays stay API-only to keep artifacts
  /// small).
  io::Json to_json() const;

  /// Human-readable block for `rlc_run --metrics` (one line per metric).
  std::string table() const;
};

class Registry {
 public:
  /// The process-wide registry all instrumentation records into.
  static Registry& global();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Intern a metric by name; the same name always returns the same id
  /// (re-registration is the common case: every call site does it through
  /// a function-local static).  Throws std::invalid_argument on an empty
  /// name, a name already interned as a different kind, a histogram
  /// re-registered with a different shape, or on exhausting the fixed
  /// shard capacity (kMaxCounters / kMaxGauges / kMaxHistogramBins).
  int counter(const std::string& name);
  int gauge(const std::string& name);
  /// Log-scale histogram: `bins` interior bins between lo and hi
  /// (0 < lo < hi, 1 <= bins <= 512).
  int histogram(const std::string& name, double lo, double hi, int bins);

  /// Hot-path recording.  Ids must come from the interning calls above;
  /// out-of-range ids are ignored (never UB).
  void add(int counter_id, std::int64_t delta = 1) noexcept;
  void gauge_add(int gauge_id, std::int64_t delta) noexcept;
  void gauge_max(int gauge_id, std::int64_t value) noexcept;  ///< raise-only
  void record(int histogram_id, double value) noexcept;

  /// Merge every live shard plus the retired accumulator.  Consistent
  /// enough for reporting: each individual cell is atomic, the cross-cell
  /// view is whatever the still-running threads have published.
  MetricsSnapshot snapshot() const;

  /// Zero everything (tests).  Call at quiescence: concurrent recorders
  /// are not lost, but may straddle the reset.
  void reset() noexcept;

  // Fixed shard capacities; interning beyond them throws (a process has a
  // static set of instrumentation sites, so hitting these means a leak).
  static constexpr int kMaxCounters = 256;
  static constexpr int kMaxGauges = 64;
  static constexpr int kMaxHistograms = 64;
  static constexpr int kMaxHistogramBins = 4096;  ///< summed over histograms

 private:
  Registry();
  ~Registry();
  struct Impl;
  Impl* impl_;
};

}  // namespace rlc::obs
