#include "rlc/obs/trace.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#include "rlc/io/json.hpp"

namespace rlc::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

/// One captured span.  Fields are written exactly once by the owning
/// thread before the ring's count is release-published past this slot, so
/// relaxed atomics on the fields plus acquire on the count make the
/// concurrent drain race-free (and TSan-clean).
struct Slot {
  std::atomic<const char*> name{nullptr};
  std::atomic<std::int64_t> start_ns{0};
  std::atomic<std::int64_t> dur_ns{0};
  std::atomic<std::uint32_t> depth{0};
};

struct Ring {
  Ring(int tid_in, std::size_t capacity) : slots(capacity), tid(tid_in) {}

  std::vector<Slot> slots;
  std::atomic<std::uint32_t> count{0};
  std::atomic<std::uint64_t> dropped{0};
  int tid = 0;

  void push(const char* name, std::int64_t start_ns, std::int64_t dur_ns,
            std::uint32_t depth) noexcept {
    const std::uint32_t idx = count.load(std::memory_order_relaxed);
    if (idx >= slots.size()) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Slot& s = slots[idx];
    s.name.store(name, std::memory_order_relaxed);
    s.start_ns.store(start_ns, std::memory_order_relaxed);
    s.dur_ns.store(dur_ns, std::memory_order_relaxed);
    s.depth.store(depth, std::memory_order_relaxed);
    count.store(idx + 1, std::memory_order_release);
  }
};

struct ThreadState {
  Ring* ring = nullptr;        // owned by the tracer, never freed
  std::uint32_t depth = 0;     // current span nesting on this thread
  std::uint64_t armed_at = 0;  // tracer epoch generation the ring is valid for
};

thread_local ThreadState t_state;

}  // namespace

struct Tracer::Impl {
  mutable std::mutex mu;     // ring list + epoch bookkeeping
  std::vector<Ring*> rings;  // one per thread that ever recorded; kept for
                             // export after the thread exits (never freed —
                             // the tracer itself is immortal)
  std::int64_t epoch_ns = 0;
  std::atomic<std::uint64_t> generation{0};  // bumped by enable()/clear()
  int next_tid = 1;
  std::size_t ring_cap = Tracer::kRingCapacity;  // resolved once in the ctor

  Ring& local_ring() {
    const std::uint64_t gen = generation.load(std::memory_order_acquire);
    if (t_state.ring == nullptr) {
      auto* r = new Ring(0, ring_cap);
      std::lock_guard<std::mutex> lk(mu);
      r->tid = next_tid++;
      rings.push_back(r);
      t_state.ring = r;
      t_state.armed_at = gen;
    } else if (t_state.armed_at != gen) {
      // enable()/clear() re-armed the rings since this thread last looked;
      // our cached write cursor is already reset (enable zeroed count).
      t_state.armed_at = gen;
    }
    return *t_state.ring;
  }
};

Tracer::Tracer() : impl_(new Impl) {
  const char* env = std::getenv("RLC_TRACE_RING");
  auto parsed = parse_ring_capacity_strict(env);
  if (!parsed.is_ok()) {
    // Library fallback only: the CLI drivers validate RLC_TRACE_RING at
    // startup and exit before the tracer is ever constructed.
    std::fprintf(stderr, "rlc::obs: %s; using the default ring (%zu)\n",
                 parsed.status().message().c_str(), kRingCapacity);
  } else if (parsed.value() > 0) {
    impl_->ring_cap = parsed.value();
  }
}

Tracer::~Tracer() { delete impl_; }

Tracer& Tracer::global() {
  // Never destroyed: guards may outlive main()'s statics on pool threads.
  static Tracer* t = new Tracer;
  return *t;
}

rlc::StatusOr<std::size_t> Tracer::parse_ring_capacity_strict(
    const char* text) {
  if (!text) return std::size_t{0};  // unset: default capacity
  const auto reject = [&](const std::string& why) {
    return rlc::Status::invalid_argument("RLC_TRACE_RING \"" +
                                         std::string(text) + "\" " + why);
  };
  if (*text == '\0') return reject("is empty");
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') return reject("is not an integer");
  if (errno == ERANGE) return reject("overflows");
  if (v <= 0) return reject("must be >= 1");
  if (static_cast<unsigned long>(v) > kMaxRingCapacity) {
    return reject("exceeds the " + std::to_string(kMaxRingCapacity) +
                  "-span limit");
  }
  return static_cast<std::size_t>(v);
}

std::size_t Tracer::ring_capacity() const { return impl_->ring_cap; }

std::int64_t Tracer::now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Tracer::enable() noexcept {
  std::lock_guard<std::mutex> lk(impl_->mu);
  for (Ring* r : impl_->rings) {
    r->count.store(0, std::memory_order_relaxed);
    r->dropped.store(0, std::memory_order_relaxed);
  }
  impl_->epoch_ns = now_ns();
  impl_->generation.fetch_add(1, std::memory_order_release);
  detail::g_trace_enabled.store(true, std::memory_order_release);
}

void Tracer::disable() noexcept {
  detail::g_trace_enabled.store(false, std::memory_order_release);
}

void Tracer::clear() noexcept {
  std::lock_guard<std::mutex> lk(impl_->mu);
  for (Ring* r : impl_->rings) {
    r->count.store(0, std::memory_order_relaxed);
    r->dropped.store(0, std::memory_order_relaxed);
  }
  impl_->generation.fetch_add(1, std::memory_order_release);
}

void SpanGuard::begin(const char* name) noexcept {
  name_ = name;
  depth_ = t_state.depth++;
  start_ns_ = Tracer::now_ns();
}

void SpanGuard::end() noexcept {
  const std::int64_t stop_ns = Tracer::now_ns();
  if (t_state.depth > 0) --t_state.depth;
  // Record even if tracing was disabled mid-span: the slot is already
  // paid for and the exporter reads a consistent count either way.
  Tracer::global().impl_->local_ring().push(name_, start_ns_,
                                            stop_ns - start_ns_, depth_);
}

std::vector<Tracer::SpanStats> Tracer::rollup() const {
  std::map<std::string, SpanStats> by_name;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    for (const Ring* r : impl_->rings) {
      const std::uint32_t n = std::min<std::uint32_t>(
          r->count.load(std::memory_order_acquire),
          static_cast<std::uint32_t>(r->slots.size()));
      for (std::uint32_t i = 0; i < n; ++i) {
        const Slot& s = r->slots[i];
        const char* name = s.name.load(std::memory_order_relaxed);
        if (name == nullptr) continue;
        SpanStats& st = by_name[name];
        st.name = name;
        st.count += 1;
        const std::int64_t dur = s.dur_ns.load(std::memory_order_relaxed);
        st.total_ns += dur;
        if (s.depth.load(std::memory_order_relaxed) == 0) {
          st.top_level_ns += dur;
        }
      }
    }
  }
  std::vector<SpanStats> out;
  out.reserve(by_name.size());
  for (auto& [name, st] : by_name) out.push_back(std::move(st));
  std::sort(out.begin(), out.end(), [](const SpanStats& a,
                                       const SpanStats& b) {
    return a.total_ns != b.total_ns ? a.total_ns > b.total_ns
                                    : a.name < b.name;
  });
  return out;
}

io::Json Tracer::rollup_json() const {
  io::Json spans;
  for (const SpanStats& st : rollup()) {
    io::Json s;
    s.set("count", static_cast<long long>(st.count));
    s.set("total_ns", static_cast<long long>(st.total_ns));
    s.set("top_level_ns", static_cast<long long>(st.top_level_ns));
    spans.set(st.name, s);
  }
  io::Json j;
  j.set("spans", spans);
  j.set("dropped", static_cast<long long>(dropped()));
  return j;
}

io::Json Tracer::chrome_trace_json() const {
  io::JsonArray events;
  std::lock_guard<std::mutex> lk(impl_->mu);
  for (const Ring* r : impl_->rings) {
    io::Json meta;
    meta.set("ph", "M");
    meta.set("pid", 1);
    meta.set("tid", r->tid);
    meta.set("name", "thread_name");
    io::Json args;
    args.set("name", r->tid == 1 ? std::string("main")
                                 : "worker-" + std::to_string(r->tid - 1));
    meta.set("args", args);
    events.push(meta);

    const std::uint32_t n = std::min<std::uint32_t>(
        r->count.load(std::memory_order_acquire),
        static_cast<std::uint32_t>(r->slots.size()));
    for (std::uint32_t i = 0; i < n; ++i) {
      const Slot& s = r->slots[i];
      const char* name = s.name.load(std::memory_order_relaxed);
      if (name == nullptr) continue;
      io::Json e;
      e.set("name", name);
      e.set("cat", "rlc");
      e.set("ph", "X");
      e.set("ts", static_cast<double>(s.start_ns.load(
                      std::memory_order_relaxed) -
                  impl_->epoch_ns) /
                      1e3);
      e.set("dur",
            static_cast<double>(s.dur_ns.load(std::memory_order_relaxed)) /
                1e3);
      e.set("pid", 1);
      e.set("tid", r->tid);
      events.push(e);
    }
  }
  std::uint64_t lost = 0;
  for (const Ring* r : impl_->rings) {
    lost += r->dropped.load(std::memory_order_relaxed);
  }
  io::Json doc;
  doc.set("traceEvents", events);
  doc.set("displayTimeUnit", "ms");
  io::Json other;
  other.set("tool", "rlc_run");
  other.set("dropped_spans", static_cast<long long>(lost));
  doc.set("otherData", other);
  return doc;
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  return io::write_json_file(path, chrome_trace_json());
}

std::uint64_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  std::uint64_t total = 0;
  for (const Ring* r : impl_->rings) {
    total += std::min<std::uint32_t>(
        r->count.load(std::memory_order_acquire),
        static_cast<std::uint32_t>(r->slots.size()));
  }
  return total;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  std::uint64_t total = 0;
  for (const Ring* r : impl_->rings) {
    total += r->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace rlc::obs
