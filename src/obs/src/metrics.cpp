#include "rlc/obs/metrics.hpp"

#include "rlc/obs/exporter.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <utility>

namespace rlc::obs {

namespace {

void atomic_add_double(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void atomic_min_double(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max_double(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max_int(std::atomic<std::int64_t>& a, std::int64_t v) noexcept {
  std::int64_t cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

// ------------------------------------------------------- HistogramSnapshot

std::vector<double> HistogramSnapshot::bin_edges(double lo, double hi,
                                                 int bins) {
  std::vector<double> edges;
  edges.reserve(static_cast<std::size_t>(bins) + 1);
  const double ratio = hi / lo;
  for (int i = 0; i <= bins; ++i) {
    edges.push_back(lo * std::pow(ratio, static_cast<double>(i) / bins));
  }
  // pow rounding must not break monotonicity at the ends.
  edges.front() = lo;
  edges.back() = hi;
  return edges;
}

std::size_t HistogramSnapshot::bin_index(double lo, double hi, int bins,
                                         double value) {
  // NaN and everything below lo (including <= 0, where the log scale has no
  // bin) land in the underflow bin.
  if (!(value >= lo)) return 0;
  if (value >= hi) return static_cast<std::size_t>(bins) + 1;
  const double pos = bins * std::log(value / lo) / std::log(hi / lo);
  auto idx = static_cast<long>(pos);  // pos >= 0 here
  if (idx < 0) idx = 0;
  if (idx >= bins) idx = bins - 1;
  return static_cast<std::size_t>(idx) + 1;
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0 || bins.size() < 3) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(count))));
  const int interior = static_cast<int>(bins.size()) - 2;
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < bins.size(); ++b) {
    if (bins[b] == 0) continue;
    if (rank <= cum + bins[b]) {
      if (b == 0) return min;                    // underflow: exact extreme
      if (b + 1 == bins.size()) return max;      // overflow: exact extreme
      const double ratio = hi / lo;
      const double blo =
          lo * std::pow(ratio, static_cast<double>(b - 1) / interior);
      const double bhi =
          lo * std::pow(ratio, static_cast<double>(b) / interior);
      const double frac = (static_cast<double>(rank - cum) - 0.5) /
                          static_cast<double>(bins[b]);
      const double v = blo * std::pow(bhi / blo, frac);
      return std::clamp(v, min, max);
    }
    cum += bins[b];
  }
  return max;
}

HistogramSnapshot& HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (name != other.name || lo != other.lo || hi != other.hi ||
      bins.size() != other.bins.size()) {
    throw std::invalid_argument(
        "rlc::obs: cannot merge histograms of different shape (\"" + name +
        "\" vs \"" + other.name + "\")");
  }
  for (std::size_t i = 0; i < bins.size(); ++i) bins[i] += other.bins[i];
  if (other.count > 0) {
    min = count > 0 ? std::min(min, other.min) : other.min;
    max = count > 0 ? std::max(max, other.max) : other.max;
  }
  count += other.count;
  sum += other.sum;
  return *this;
}

// ---------------------------------------------------------- MetricsSnapshot

namespace {

/// Bound the extremes of a subtracted histogram from its occupied bins: the
/// per-run true min/max are not recoverable from cumulative snapshots, so
/// report the tightest bin-edge bounds instead (exact to bin resolution).
void rebound_extremes(HistogramSnapshot& h) {
  if (h.count == 0) {
    h.min = h.max = 0.0;
    return;
  }
  const int interior = static_cast<int>(h.bins.size()) - 2;
  const auto edges = HistogramSnapshot::bin_edges(h.lo, h.hi, interior);
  std::size_t first = 0, last = 0;
  for (std::size_t i = 0; i < h.bins.size(); ++i) {
    if (h.bins[i] > 0) last = i;
  }
  for (first = 0; first < h.bins.size() && h.bins[first] == 0; ++first) {
  }
  // Underflow keeps the cumulative min (only lower bound available);
  // interior bins bound by their edges; overflow keeps the cumulative max.
  if (first >= 1 && first <= static_cast<std::size_t>(interior)) {
    h.min = std::max(h.min, edges[first - 1]);
  }
  if (last >= 1 && last <= static_cast<std::size_t>(interior)) {
    h.max = std::min(h.max, edges[last]);
  }
  if (!(h.min <= h.max)) h.min = h.max;  // bounds crossed: collapse
}

}  // namespace

MetricsSnapshot MetricsSnapshot::delta_since(
    const MetricsSnapshot& earlier) const {
  MetricsSnapshot out = *this;
  for (auto& [name, value] : out.counters) {
    for (const auto& [ename, evalue] : earlier.counters) {
      if (ename == name) {
        value -= evalue;
        break;
      }
    }
  }
  // Gauges are levels: keep the current reading.
  for (auto& h : out.histograms) {
    for (const auto& eh : earlier.histograms) {
      if (eh.name != h.name || eh.bins.size() != h.bins.size()) continue;
      for (std::size_t i = 0; i < h.bins.size(); ++i) h.bins[i] -= eh.bins[i];
      h.count -= eh.count;
      h.sum -= eh.sum;
      rebound_extremes(h);
      break;
    }
  }
  return out;
}

MetricsSnapshot MetricsSnapshot::without_zeros() const {
  MetricsSnapshot out;
  for (const auto& c : counters) {
    if (c.second != 0) out.counters.push_back(c);
  }
  for (const auto& g : gauges) {
    if (g.second != 0) out.gauges.push_back(g);
  }
  for (const auto& h : histograms) {
    if (h.count != 0) out.histograms.push_back(h);
  }
  return out;
}

io::Json MetricsSnapshot::to_json() const {
  io::Json counters_j;
  for (const auto& [name, value] : counters) {
    counters_j.set(name, static_cast<long long>(value));
  }
  io::Json gauges_j;
  for (const auto& [name, value] : gauges) {
    gauges_j.set(name, static_cast<long long>(value));
  }
  io::Json hists_j;
  for (const auto& h : histograms) {
    io::Json hj;
    hj.set("count", static_cast<long long>(h.count));
    hj.set("sum", h.sum);
    hj.set("min", h.min);
    hj.set("max", h.max);
    hj.set("mean", h.mean());
    hj.set("p50", h.quantile(0.50));
    hj.set("p90", h.quantile(0.90));
    hj.set("p99", h.quantile(0.99));
    hists_j.set(h.name, hj);
  }
  io::Json j;
  j.set("counters", counters_j);
  j.set("gauges", gauges_j);
  j.set("histograms", hists_j);
  return j;
}

std::string MetricsSnapshot::table() const { return Exporter::text(*this); }

// ------------------------------------------------------------------ Registry

namespace {

/// One thread's slice of every metric.  Counters and histogram cells are
/// written only by the owning thread (relaxed RMW on uncontended cache
/// lines) and read by snapshotters, so every field is atomic — that is the
/// whole synchronization story, no locks on the record path.
struct Shard {
  std::array<std::atomic<std::int64_t>, Registry::kMaxCounters> counters{};
  std::array<std::atomic<std::uint64_t>, Registry::kMaxHistogramBins> bins{};
  std::array<std::atomic<std::uint64_t>, Registry::kMaxHistograms> h_count{};
  std::array<std::atomic<double>, Registry::kMaxHistograms> h_sum{};
  std::array<std::atomic<double>, Registry::kMaxHistograms> h_min{};
  std::array<std::atomic<double>, Registry::kMaxHistograms> h_max{};

  Shard() {
    for (auto& m : h_min) {
      m.store(std::numeric_limits<double>::infinity(),
              std::memory_order_relaxed);
    }
    for (auto& m : h_max) {
      m.store(-std::numeric_limits<double>::infinity(),
              std::memory_order_relaxed);
    }
  }

  void zero() noexcept {
    for (auto& c : counters) c.store(0, std::memory_order_relaxed);
    for (auto& b : bins) b.store(0, std::memory_order_relaxed);
    for (auto& c : h_count) c.store(0, std::memory_order_relaxed);
    for (auto& s : h_sum) s.store(0.0, std::memory_order_relaxed);
    for (auto& m : h_min) {
      m.store(std::numeric_limits<double>::infinity(),
              std::memory_order_relaxed);
    }
    for (auto& m : h_max) {
      m.store(-std::numeric_limits<double>::infinity(),
              std::memory_order_relaxed);
    }
  }

  /// Fold `other` into this shard (used to retire exiting threads).
  void absorb(const Shard& other) noexcept {
    for (std::size_t i = 0; i < counters.size(); ++i) {
      counters[i].fetch_add(other.counters[i].load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < bins.size(); ++i) {
      bins[i].fetch_add(other.bins[i].load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < h_count.size(); ++i) {
      h_count[i].fetch_add(other.h_count[i].load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
      atomic_add_double(h_sum[i],
                        other.h_sum[i].load(std::memory_order_relaxed));
      atomic_min_double(h_min[i],
                        other.h_min[i].load(std::memory_order_relaxed));
      atomic_max_double(h_max[i],
                        other.h_max[i].load(std::memory_order_relaxed));
    }
  }
};

struct HistogramDef {
  std::string name;
  double lo = 1.0;
  double hi = 2.0;
  int bins = 1;
  int bin_offset = 0;  ///< slice [bin_offset, bin_offset + bins + 2)
};

}  // namespace

struct Registry::Impl {
  mutable std::mutex mu;  // registration, shard list, snapshot/reset
  std::vector<std::string> counter_names;
  std::vector<std::string> gauge_names;
  std::vector<HistogramDef> hist_defs;
  int bins_used = 0;
  std::array<std::atomic<std::int64_t>, kMaxGauges> gauges{};
  std::vector<Shard*> live;  ///< one per recording thread, owner-deleted
  Shard retired;             ///< folded-in shards of exited threads

  /// Owns one thread's shard; on thread exit the shard's counts are
  /// folded into the registry's retired accumulator so nothing is lost.
  /// The global registry is constructed before any shard and intentionally
  /// never destroyed, so `impl` outlives every handle.
  struct ShardHandle {
    Impl* impl = nullptr;
    Shard* shard = nullptr;
    ~ShardHandle() {
      if (impl && shard) impl->retire(shard);
    }
  };

  Shard& local_shard();
  void retire(Shard* s) noexcept;
};

Shard& Registry::Impl::local_shard() {
  thread_local ShardHandle handle;
  if (handle.shard == nullptr) {
    auto* s = new Shard;
    {
      std::lock_guard<std::mutex> lk(mu);
      live.push_back(s);
    }
    handle.impl = this;
    handle.shard = s;
  }
  return *handle.shard;
}

void Registry::Impl::retire(Shard* s) noexcept {
  std::lock_guard<std::mutex> lk(mu);
  retired.absorb(*s);
  live.erase(std::remove(live.begin(), live.end(), s), live.end());
  delete s;
}

Registry::Registry() : impl_(new Impl) {}

Registry::~Registry() { delete impl_; }

Registry& Registry::global() {
  // Heap-allocated and never destroyed: shards retire into the registry
  // from thread-exit destructors, which must never race its teardown.
  static Registry* r = new Registry;
  return *r;
}

int Registry::counter(const std::string& name) {
  if (name.empty()) {
    throw std::invalid_argument("rlc::obs: metric name must be non-empty");
  }
  std::lock_guard<std::mutex> lk(impl_->mu);
  for (std::size_t i = 0; i < impl_->counter_names.size(); ++i) {
    if (impl_->counter_names[i] == name) return static_cast<int>(i);
  }
  for (const auto& g : impl_->gauge_names) {
    if (g == name) {
      throw std::invalid_argument("rlc::obs: \"" + name +
                                  "\" is already a gauge");
    }
  }
  for (const auto& h : impl_->hist_defs) {
    if (h.name == name) {
      throw std::invalid_argument("rlc::obs: \"" + name +
                                  "\" is already a histogram");
    }
  }
  if (impl_->counter_names.size() >= kMaxCounters) {
    throw std::invalid_argument("rlc::obs: counter capacity exhausted");
  }
  impl_->counter_names.push_back(name);
  return static_cast<int>(impl_->counter_names.size()) - 1;
}

int Registry::gauge(const std::string& name) {
  if (name.empty()) {
    throw std::invalid_argument("rlc::obs: metric name must be non-empty");
  }
  std::lock_guard<std::mutex> lk(impl_->mu);
  for (std::size_t i = 0; i < impl_->gauge_names.size(); ++i) {
    if (impl_->gauge_names[i] == name) return static_cast<int>(i);
  }
  for (const auto& c : impl_->counter_names) {
    if (c == name) {
      throw std::invalid_argument("rlc::obs: \"" + name +
                                  "\" is already a counter");
    }
  }
  for (const auto& h : impl_->hist_defs) {
    if (h.name == name) {
      throw std::invalid_argument("rlc::obs: \"" + name +
                                  "\" is already a histogram");
    }
  }
  if (impl_->gauge_names.size() >= kMaxGauges) {
    throw std::invalid_argument("rlc::obs: gauge capacity exhausted");
  }
  impl_->gauge_names.push_back(name);
  return static_cast<int>(impl_->gauge_names.size()) - 1;
}

int Registry::histogram(const std::string& name, double lo, double hi,
                        int bins) {
  if (name.empty()) {
    throw std::invalid_argument("rlc::obs: metric name must be non-empty");
  }
  if (!(lo > 0.0) || !(hi > lo)) {
    throw std::invalid_argument(
        "rlc::obs: histogram needs 0 < lo < hi (log-scale bins)");
  }
  if (bins < 1 || bins > 512) {
    throw std::invalid_argument("rlc::obs: histogram bins must be in [1, 512]");
  }
  std::lock_guard<std::mutex> lk(impl_->mu);
  for (std::size_t i = 0; i < impl_->hist_defs.size(); ++i) {
    const auto& d = impl_->hist_defs[i];
    if (d.name != name) continue;
    if (d.lo != lo || d.hi != hi || d.bins != bins) {
      throw std::invalid_argument("rlc::obs: histogram \"" + name +
                                  "\" re-registered with a different shape");
    }
    return static_cast<int>(i);
  }
  for (const auto& c : impl_->counter_names) {
    if (c == name) {
      throw std::invalid_argument("rlc::obs: \"" + name +
                                  "\" is already a counter");
    }
  }
  for (const auto& g : impl_->gauge_names) {
    if (g == name) {
      throw std::invalid_argument("rlc::obs: \"" + name +
                                  "\" is already a gauge");
    }
  }
  if (impl_->hist_defs.size() >= kMaxHistograms ||
      impl_->bins_used + bins + 2 > kMaxHistogramBins) {
    throw std::invalid_argument("rlc::obs: histogram capacity exhausted");
  }
  HistogramDef d{name, lo, hi, bins, impl_->bins_used};
  impl_->bins_used += bins + 2;
  impl_->hist_defs.push_back(std::move(d));
  return static_cast<int>(impl_->hist_defs.size()) - 1;
}

void Registry::add(int counter_id, std::int64_t delta) noexcept {
  if (counter_id < 0 || counter_id >= kMaxCounters) return;
  impl_->local_shard().counters[static_cast<std::size_t>(counter_id)]
      .fetch_add(delta, std::memory_order_relaxed);
}

void Registry::gauge_add(int gauge_id, std::int64_t delta) noexcept {
  if (gauge_id < 0 || gauge_id >= kMaxGauges) return;
  impl_->gauges[static_cast<std::size_t>(gauge_id)].fetch_add(
      delta, std::memory_order_relaxed);
}

void Registry::gauge_max(int gauge_id, std::int64_t value) noexcept {
  if (gauge_id < 0 || gauge_id >= kMaxGauges) return;
  atomic_max_int(impl_->gauges[static_cast<std::size_t>(gauge_id)], value);
}

void Registry::record(int histogram_id, double value) noexcept {
  // The shape is re-read under the registration lock only at interning
  // time; here we trust the id and cached def.  Defs are append-only, so a
  // valid id always indexes a stable def.
  if (histogram_id < 0) return;
  HistogramDef def;
  {
    // hist_defs only grows and entries are immutable; still, take the lock
    // out of caution only when the id might be fresh — cheap enough since
    // record() is per-solve, not per-iteration.
    std::lock_guard<std::mutex> lk(impl_->mu);
    if (static_cast<std::size_t>(histogram_id) >= impl_->hist_defs.size()) {
      return;
    }
    def = impl_->hist_defs[static_cast<std::size_t>(histogram_id)];
  }
  Shard& s = impl_->local_shard();
  const std::size_t b =
      HistogramSnapshot::bin_index(def.lo, def.hi, def.bins, value);
  s.bins[static_cast<std::size_t>(def.bin_offset) + b].fetch_add(
      1, std::memory_order_relaxed);
  const auto h = static_cast<std::size_t>(histogram_id);
  s.h_count[h].fetch_add(1, std::memory_order_relaxed);
  if (std::isfinite(value)) {
    atomic_add_double(s.h_sum[h], value);
    atomic_min_double(s.h_min[h], value);
    atomic_max_double(s.h_max[h], value);
  }
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  MetricsSnapshot out;

  std::vector<const Shard*> shards;
  shards.reserve(impl_->live.size() + 1);
  shards.push_back(&impl_->retired);
  for (const Shard* s : impl_->live) shards.push_back(s);

  out.counters.reserve(impl_->counter_names.size());
  for (std::size_t i = 0; i < impl_->counter_names.size(); ++i) {
    std::int64_t total = 0;
    for (const Shard* s : shards) {
      total += s->counters[i].load(std::memory_order_relaxed);
    }
    out.counters.emplace_back(impl_->counter_names[i], total);
  }

  out.gauges.reserve(impl_->gauge_names.size());
  for (std::size_t i = 0; i < impl_->gauge_names.size(); ++i) {
    out.gauges.emplace_back(impl_->gauge_names[i],
                            impl_->gauges[i].load(std::memory_order_relaxed));
  }

  out.histograms.reserve(impl_->hist_defs.size());
  for (std::size_t i = 0; i < impl_->hist_defs.size(); ++i) {
    const HistogramDef& d = impl_->hist_defs[i];
    HistogramSnapshot h;
    h.name = d.name;
    h.lo = d.lo;
    h.hi = d.hi;
    h.bins.assign(static_cast<std::size_t>(d.bins) + 2, 0);
    double mn = std::numeric_limits<double>::infinity();
    double mx = -std::numeric_limits<double>::infinity();
    for (const Shard* s : shards) {
      for (std::size_t b = 0; b < h.bins.size(); ++b) {
        h.bins[b] +=
            s->bins[static_cast<std::size_t>(d.bin_offset) + b].load(
                std::memory_order_relaxed);
      }
      h.count += s->h_count[i].load(std::memory_order_relaxed);
      h.sum += s->h_sum[i].load(std::memory_order_relaxed);
      mn = std::min(mn, s->h_min[i].load(std::memory_order_relaxed));
      mx = std::max(mx, s->h_max[i].load(std::memory_order_relaxed));
    }
    h.min = h.count > 0 && std::isfinite(mn) ? mn : 0.0;
    h.max = h.count > 0 && std::isfinite(mx) ? mx : 0.0;
    out.histograms.push_back(std::move(h));
  }
  return out;
}

void Registry::reset() noexcept {
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->retired.zero();
  for (Shard* s : impl_->live) s->zero();
  for (auto& g : impl_->gauges) g.store(0, std::memory_order_relaxed);
}

}  // namespace rlc::obs
