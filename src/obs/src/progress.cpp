#include "rlc/obs/progress.hpp"

#include <cstdio>

#include "rlc/obs/trace.hpp"

namespace rlc::obs {

Progress::Progress(std::size_t total, bool enabled)
    : total_(total), enabled_(enabled) {}

void Progress::tick(const std::string& label) {
  const std::size_t done = done_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!enabled_) return;
  const std::int64_t now = Tracer::now_ns();
  std::int64_t last = last_print_ns_.load(std::memory_order_relaxed);
  const bool final_unit = done >= total_;
  if (!final_unit && now - last < kIntervalNs) return;
  if (!last_print_ns_.compare_exchange_strong(last, now,
                                              std::memory_order_relaxed) &&
      !final_unit) {
    return;  // another thread just printed
  }
  std::lock_guard<std::mutex> lk(print_mu_);
  std::fprintf(stderr, "\r[%zu/%zu] %-40.40s", done, total_, label.c_str());
  std::fflush(stderr);
  printed_.store(true, std::memory_order_relaxed);
}

void Progress::finish() {
  if (!enabled_ || !printed_.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lk(print_mu_);
  std::fprintf(stderr, "\n");
  std::fflush(stderr);
}

}  // namespace rlc::obs
