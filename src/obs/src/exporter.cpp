#include "rlc/obs/exporter.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

namespace rlc::obs {

namespace {

bool valid_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool valid_rest(char c) { return valid_start(c) || (c >= '0' && c <= '9'); }

/// Sanitized names from distinct registry names may collide ("a.b" and
/// "a-b" both map to "a_b"); the tracker hands out numeric suffixes so the
/// exposition never emits two series under one name.
class NameTracker {
 public:
  std::string unique(const std::string& raw) {
    std::string base = Exporter::sanitize_metric_name(raw);
    std::string candidate = base;
    int suffix = 2;
    while (!used_.insert(candidate).second) {
      candidate = base + "_" + std::to_string(suffix++);
    }
    return candidate;
  }

 private:
  std::unordered_set<std::string> used_;
};

void append_type(std::string& out, const std::string& name,
                 const char* kind) {
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += kind;
  out += '\n';
}

void append_int_sample(std::string& out, const std::string& name,
                       long long value) {
  out += name;
  out += ' ';
  out += std::to_string(value);
  out += '\n';
}

void append_bucket(std::string& out, const std::string& name,
                   const std::string& le, std::uint64_t cum) {
  out += name;
  out += "_bucket{le=\"";
  out += Exporter::escape_label_value(le);
  out += "\"} ";
  out += std::to_string(static_cast<unsigned long long>(cum));
  out += '\n';
}

}  // namespace

std::string Exporter::sanitize_metric_name(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) out += valid_rest(c) ? c : '_';
  if (out.empty() || !valid_start(out.front())) out.insert(out.begin(), '_');
  return out;
}

std::string Exporter::escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string Exporter::prometheus(const MetricsSnapshot& snap) {
  std::string out;
  NameTracker names;
  for (const auto& [raw, value] : snap.counters) {
    const std::string name = names.unique(raw);
    append_type(out, name, "counter");
    append_int_sample(out, name, static_cast<long long>(value));
  }
  for (const auto& [raw, value] : snap.gauges) {
    const std::string name = names.unique(raw);
    append_type(out, name, "gauge");
    append_int_sample(out, name, static_cast<long long>(value));
  }
  for (const auto& h : snap.histograms) {
    const std::string name = names.unique(h.name);
    append_type(out, name, "histogram");
    const int interior = static_cast<int>(h.bins.size()) - 2;
    const auto edges = HistogramSnapshot::bin_edges(h.lo, h.hi, interior);
    // Cumulative buckets: the underflow bin (values < lo, incl. NaN) counts
    // under every finite edge; the overflow bin only under +Inf, where the
    // total is h.count by construction.
    std::uint64_t cum = 0;
    for (int i = 0; i <= interior; ++i) {
      cum += h.bins[static_cast<std::size_t>(i)];
      append_bucket(out, name, io::render_number(edges[static_cast<std::size_t>(i)]), cum);
    }
    append_bucket(out, name, "+Inf", h.count);
    out += name;
    out += "_sum ";
    out += io::render_number(h.sum);
    out += '\n';
    out += name;
    out += "_count ";
    out += std::to_string(static_cast<unsigned long long>(h.count));
    out += '\n';
  }
  return out;
}

io::Json Exporter::json(const MetricsSnapshot& snap) { return snap.to_json(); }

std::string Exporter::text(const MetricsSnapshot& snap) {
  std::string out;
  char buf[256];
  std::size_t width = 0;
  for (const auto& c : snap.counters) width = std::max(width, c.first.size());
  for (const auto& g : snap.gauges) width = std::max(width, g.first.size());
  for (const auto& h : snap.histograms) width = std::max(width, h.name.size());
  const int w = static_cast<int>(width);
  for (const auto& [name, value] : snap.counters) {
    std::snprintf(buf, sizeof buf, "counter    %-*s  %lld\n", w, name.c_str(),
                  static_cast<long long>(value));
    out += buf;
  }
  for (const auto& [name, value] : snap.gauges) {
    std::snprintf(buf, sizeof buf, "gauge      %-*s  %lld\n", w, name.c_str(),
                  static_cast<long long>(value));
    out += buf;
  }
  for (const auto& h : snap.histograms) {
    std::snprintf(buf, sizeof buf,
                  "histogram  %-*s  count %llu | mean %.3g | p50 %.3g | "
                  "p90 %.3g | p99 %.3g | max %.3g\n",
                  w, h.name.c_str(), static_cast<unsigned long long>(h.count),
                  h.mean(), h.quantile(0.5), h.quantile(0.9), h.quantile(0.99),
                  h.max);
    out += buf;
  }
  return out;
}

MetricsSnapshot Exporter::filter(const MetricsSnapshot& snap,
                                 const std::string& prefix) {
  MetricsSnapshot out;
  const auto keep = [&prefix](const std::string& name) {
    return name.compare(0, prefix.size(), prefix) == 0;
  };
  for (const auto& c : snap.counters) {
    if (keep(c.first)) out.counters.push_back(c);
  }
  for (const auto& g : snap.gauges) {
    if (keep(g.first)) out.gauges.push_back(g);
  }
  for (const auto& h : snap.histograms) {
    if (keep(h.name)) out.histograms.push_back(h);
  }
  return out;
}

}  // namespace rlc::obs
