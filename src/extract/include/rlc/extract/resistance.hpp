#pragma once

/// \file resistance.hpp
/// Wire resistance per unit length, temperature dependence, and the skin
/// depth used to check that the DC resistance model is adequate at the
/// frequencies of interest (for the paper's top-metal geometry skin effect
/// is marginal below ~10 GHz, Section 1.1).

namespace rlc::extract {

/// DC resistance per unit length [Ohm/m]: rho / (w * t).
double resistance_per_length(double resistivity, double width,
                             double thickness);

/// Resistivity at temperature T [K] with linear TCR alpha [1/K] around
/// a reference temperature T0:  rho(T) = rho0 (1 + alpha (T - T0)).
double resistivity_at_temperature(double rho0, double alpha, double t_ref,
                                  double t);

/// Skin depth [m] at frequency f [Hz]: sqrt(rho / (pi f mu0)).
double skin_depth(double resistivity, double frequency);

/// True if the conductor cross-section is thin compared to the skin depth
/// at f (DC resistance model valid): min(w, t)/2 < delta.
bool dc_resistance_valid(double resistivity, double width, double thickness,
                         double frequency);

}  // namespace rlc::extract
