#pragma once

/// \file inductance.hpp
/// Partial- and loop-inductance estimation for on-chip wires — the
/// FASTHENRY substitute.  The paper treats the per-unit-length inductance l
/// as a swept parameter (0..5 nH/mm) precisely because the current return
/// path — and hence the loop inductance — depends on distant topology and
/// switching activity; these formulas show that range is physical:
///   * Ruehli/Grover partial self-inductance of a rectangular bar,
///   * partial mutual inductance of parallel filaments (GMD form),
///   * loop inductance of a wire over a return plane / explicit return wire.

#include <vector>

#include "rlc/linalg/matrix.hpp"

namespace rlc::extract {

/// Partial self-inductance [H] of a rectangular bar of length len, width w,
/// thickness t (Ruehli's approximation, len >> w + t):
///   L = (mu0 len / 2 pi) [ ln(2 len / (w + t)) + 0.5 + 0.2235 (w + t)/len ].
double partial_self_inductance(double length, double width, double thickness);

/// Partial mutual inductance [H] between two parallel filaments of length
/// len separated by center distance d (Grover):
///   M = (mu0 len / 2 pi) [ ln(len/d + sqrt(1 + (len/d)^2))
///                          - sqrt(1 + (d/len)^2) + d/len ].
double partial_mutual_inductance(double length, double distance);

/// Geometric mean distance of a rectangular cross-section from itself:
/// GMD ~ 0.22313 (w + t) (used to map rectangles onto equivalent filaments).
double rect_self_gmd(double width, double thickness);

/// Loop inductance per unit length [H/m] of a wire (equivalent radius from
/// the GMD) with its return current in a perfect plane at distance h below
/// the wire axis (image method):  l = (mu0 / 2 pi) acosh(h / r_eff).
double loop_inductance_over_plane(double width, double thickness,
                                  double height_above_plane);

/// Loop inductance per unit length [H/m] of a wire with an explicit return
/// wire at center-to-center distance d (both same cross-section):
///   l = (mu0 / pi) ln(d / r_eff).
double loop_inductance_wire_pair(double width, double thickness,
                                 double distance);

/// Per-unit-length partial self-inductance [H/m] of a wire *segment* of the
/// given length (partial inductance grows logarithmically with segment
/// length — the reason "inductance per unit length" is ill-defined without a
/// return path, Section 1.1).
double partial_self_per_length(double segment_length, double width,
                               double thickness);

/// Partial inductance matrix [H] of parallel same-length wires at the given
/// x positions (self terms via Ruehli's rectangle formula, mutual terms via
/// Grover's parallel-filament formula with center-to-center distances) —
/// the per-bus view a FASTHENRY run would produce for straight segments.
/// positions.size() >= 1; length, width, thickness > 0.
rlc::linalg::MatrixD partial_inductance_matrix(
    const std::vector<double>& positions, double segment_length, double width,
    double thickness);

/// Loop inductance [H] of a signal/return pair read out of a partial
/// matrix:  L_loop = L_ss + L_rr - 2 L_sr.
double loop_from_partial(const rlc::linalg::MatrixD& partial, int signal,
                         int ret);

}  // namespace rlc::extract
