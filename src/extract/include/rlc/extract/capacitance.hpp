#pragma once

/// \file capacitance.hpp
/// Closed-form (empirical) per-unit-length capacitance models for on-chip
/// wires, used as fast estimates and as sanity bounds for the BEM solver:
///   * parallel-plate,
///   * Sakurai-Tamaru single microstrip over a plane,
///   * Sakurai-Tamaru coupled lines (lateral coupling to neighbours),
/// plus the Miller-effect switching-range helper motivating the paper's
/// "effective line capacitance can vary by as much as 4x" remark.

#include "rlc/extract/geometry.hpp"

namespace rlc::extract {

/// Parallel-plate capacitance per unit length: eps * w / d [F/m].
double parallel_plate(double width, double separation, double eps_r);

/// Sakurai-Tamaru single-line formula (wire width w, thickness t, height h
/// above plane):  C/eps = 1.15 (w/h) + 2.80 (t/h)^0.222.
/// Valid roughly for 0.3 < w/h < 30 and 0.3 < t/h < 10.
double sakurai_tamaru_single(double width, double thickness, double height,
                             double eps_r);

/// Sakurai-Tamaru line-to-line coupling capacitance per side for two
/// parallel wires with edge-to-edge spacing s:
///   Cc/eps = [0.03 (w/h) + 0.83 (t/h) - 0.07 (t/h)^0.222] (s/h)^-1.34.
double sakurai_tamaru_coupling(double width, double thickness, double height,
                               double spacing, double eps_r);

/// Total capacitance of the middle wire of a 3-wire bus using the
/// Sakurai-Tamaru formulas: ground term + 2 coupling terms.
double sakurai_tamaru_bus_middle(double width, double thickness, double height,
                                 double pitch, double eps_r);

/// Switching-dependent effective capacitance range (Miller effect,
/// Section 3): with ground capacitance cg and per-side coupling cc,
/// the effective capacitance of a victim spans
///   [cg (both neighbours switch in phase) .. cg + 4 cc (both anti-phase)].
struct MillerRange {
  double c_min = 0.0;
  double c_nominal = 0.0;  ///< quiet neighbours: cg + 2 cc
  double c_max = 0.0;
};
MillerRange miller_range(double cg, double cc_per_side);

}  // namespace rlc::extract
