#pragma once

/// \file bem2d.hpp
/// 2D boundary-element (method of moments) electrostatic solver for
/// per-unit-length capacitance of long parallel conductors above a ground
/// plane in a homogeneous dielectric — the FASTCAP substitute used to
/// reproduce the `c` column of the paper's Table 1.
///
/// Each conductor's boundary is discretized into flat panels carrying
/// piecewise-constant line-charge density.  The potential kernel is the 2D
/// free-space Green's function with the ground-plane image:
///   G(p, q) = -(1/2 pi eps) [ ln|p - q| - ln|p - q*| ],  q* = image of q,
/// so the plane y = 0 is an exact equipotential at zero.  Collocation at
/// panel midpoints yields a dense system solved with LU; Maxwell capacitance
/// matrix columns follow from unit-potential drives.

#include <vector>

#include "rlc/extract/geometry.hpp"
#include "rlc/linalg/matrix.hpp"

namespace rlc::extract {

/// Straight boundary panel from (x1, y1) to (x2, y2), y > 0.
struct Panel {
  double x1 = 0.0, y1 = 0.0;
  double x2 = 0.0, y2 = 0.0;

  double length() const;
  double xm() const { return 0.5 * (x1 + x2); }
  double ym() const { return 0.5 * (y1 + y2); }
};

struct Bem2dOptions {
  int panels_per_side = 24;  ///< panels per rectangle side (refine to converge)
  double eps_r = 1.0;        ///< homogeneous relative permittivity
  bool grade_panels = true;  ///< grade panel sizes toward corners (charge
                             ///< density peaks there)
};

/// Potential at point (px, py) due to a unit line-charge density on `panel`
/// *and its negative image* in the y = 0 plane, for eps = eps0*eps_r.
/// Exposed for tests.
double panel_potential(const Panel& panel, double px, double py, double eps);

/// Discretize the boundary of a rectangle into panels.
std::vector<Panel> panelize(const RectConductor& rect, const Bem2dOptions& opts);

/// Discretize a circle (center height `h`, radius `a`) into an n-gon.
std::vector<Panel> panelize_circle(double x_center, double height,
                                   double radius, int n_panels);

/// Maxwell capacitance matrix [F/m] for arbitrary panelized conductors:
/// conductors[i] is the panel list of conductor i.  Entry (i, j) is the
/// charge on conductor i per unit potential on conductor j (others
/// grounded).  Diagonal positive, off-diagonals negative.
rlc::linalg::MatrixD capacitance_matrix_panels(
    const std::vector<std::vector<Panel>>& conductors, double eps_r);

/// Maxwell capacitance matrix for rectangular wires above the plane.
rlc::linalg::MatrixD capacitance_matrix(const std::vector<RectConductor>& wires,
                                        const Bem2dOptions& opts = {});

/// Total capacitance per unit length of wire `which` with every other wire
/// AND the plane grounded: the Maxwell diagonal C(which, which).
double total_capacitance(const std::vector<RectConductor>& wires, int which,
                         const Bem2dOptions& opts = {});

/// Analytic check case: capacitance per unit length of a circular cylinder
/// of radius a with axis height h above a ground plane:
///   C = 2 pi eps / acosh(h / a).
double cylinder_over_plane_exact(double radius, double height, double eps_r);

}  // namespace rlc::extract
