#pragma once

/// \file geometry.hpp
/// 2D cross-section geometry for per-unit-length RLC extraction of long
/// parallel on-chip wires.  The x axis runs along the wire pitch, the y axis
/// is vertical; a perfect ground plane lies at y = 0 (the substrate or an
/// orthogonally-routed dense metal layer below).

#include <vector>

namespace rlc::extract {

/// Axis-aligned rectangular conductor cross-section.
struct RectConductor {
  double x_center = 0.0;  ///< [m]
  double y_bottom = 0.0;  ///< height of the bottom face above the plane [m]
  double width = 0.0;     ///< [m]
  double thickness = 0.0; ///< [m]

  double x_left() const { return x_center - 0.5 * width; }
  double x_right() const { return x_center + 0.5 * width; }
  double y_top() const { return y_bottom + thickness; }
  double y_center() const { return y_bottom + 0.5 * thickness; }
};

/// A parallel-bus cross section: `n` identical wires at the given pitch,
/// all `height` above the ground plane (paper Table 1 geometry).
std::vector<RectConductor> parallel_bus(int n, double width, double thickness,
                                        double pitch, double height);

}  // namespace rlc::extract
