#include "rlc/extract/bem2d.hpp"

#include <cmath>
#include <stdexcept>

#include "rlc/linalg/lu.hpp"
#include "rlc/math/constants.hpp"

namespace rlc::extract {

namespace {

/// Antiderivative of ln sqrt(w^2 + v^2) dw:
///   F(w) = 0.5 [ w ln(w^2 + v^2) - 2w + 2v atan(w / v) ]   (v != 0)
///   F(w) = w ln|w| - w                                      (v == 0)
double log_kernel_antiderivative(double w, double v) {
  if (v == 0.0) {
    if (w == 0.0) return 0.0;
    return w * std::log(std::abs(w)) - w;
  }
  return 0.5 * (w * std::log(w * w + v * v) - 2.0 * w) + v * std::atan(w / v);
}

/// Integral of ln|p - q| over the segment, in local (u, v) coordinates:
/// u = along-panel coordinate of p, v = perpendicular offset, L = length.
double log_integral(double u, double v, double L) {
  return log_kernel_antiderivative(L - u, v) - log_kernel_antiderivative(-u, v);
}

}  // namespace

double Panel::length() const {
  const double dx = x2 - x1, dy = y2 - y1;
  return std::sqrt(dx * dx + dy * dy);
}

double panel_potential(const Panel& panel, double px, double py, double eps) {
  const double L = panel.length();
  if (!(L > 0.0)) throw std::domain_error("panel_potential: zero-length panel");
  const double tx = (panel.x2 - panel.x1) / L;
  const double ty = (panel.y2 - panel.y1) / L;
  // Direct panel.
  double rx = px - panel.x1, ry = py - panel.y1;
  const double u_d = rx * tx + ry * ty;
  const double v_d = -rx * ty + ry * tx;
  const double I_direct = log_integral(u_d, v_d, L);
  // Image panel: (x, y) -> (x, -y); same length, mirrored tangent.
  const double txi = tx, tyi = -ty;
  rx = px - panel.x1;
  ry = py + panel.y1;
  const double u_i = rx * txi + ry * tyi;
  const double v_i = -rx * tyi + ry * txi;
  const double I_image = log_integral(u_i, v_i, L);
  return -(I_direct - I_image) / (2.0 * rlc::math::kPi * eps);
}

namespace {

/// Split [0, 1] into n cosine-graded intervals (finer near both ends).
std::vector<double> graded_breaks(int n, bool graded) {
  std::vector<double> b(n + 1);
  for (int i = 0; i <= n; ++i) {
    const double f = static_cast<double>(i) / n;
    b[i] = graded ? 0.5 * (1.0 - std::cos(rlc::math::kPi * f)) : f;
  }
  return b;
}

void add_side(std::vector<Panel>& out, double xa, double ya, double xb,
              double yb, int n, bool graded) {
  const auto br = graded_breaks(n, graded);
  for (int i = 0; i < n; ++i) {
    Panel p;
    p.x1 = xa + (xb - xa) * br[i];
    p.y1 = ya + (yb - ya) * br[i];
    p.x2 = xa + (xb - xa) * br[i + 1];
    p.y2 = ya + (yb - ya) * br[i + 1];
    out.push_back(p);
  }
}

}  // namespace

std::vector<Panel> panelize(const RectConductor& rect,
                            const Bem2dOptions& opts) {
  if (!(rect.width > 0.0 && rect.thickness > 0.0 && rect.y_bottom > 0.0)) {
    throw std::domain_error("panelize: rectangle must have w, t > 0 and lie above the plane");
  }
  std::vector<Panel> panels;
  const int n = opts.panels_per_side;
  panels.reserve(static_cast<std::size_t>(4) * n);
  const double xl = rect.x_left(), xr = rect.x_right();
  const double yb = rect.y_bottom, yt = rect.y_top();
  add_side(panels, xl, yb, xr, yb, n, opts.grade_panels);  // bottom
  add_side(panels, xr, yb, xr, yt, n, opts.grade_panels);  // right
  add_side(panels, xr, yt, xl, yt, n, opts.grade_panels);  // top
  add_side(panels, xl, yt, xl, yb, n, opts.grade_panels);  // left
  return panels;
}

std::vector<Panel> panelize_circle(double x_center, double height,
                                   double radius, int n_panels) {
  if (!(radius > 0.0 && height > radius && n_panels >= 3)) {
    throw std::domain_error("panelize_circle: need 0 < a < h and n >= 3");
  }
  std::vector<Panel> panels;
  panels.reserve(n_panels);
  for (int i = 0; i < n_panels; ++i) {
    const double a0 = 2.0 * rlc::math::kPi * i / n_panels;
    const double a1 = 2.0 * rlc::math::kPi * (i + 1) / n_panels;
    Panel p;
    p.x1 = x_center + radius * std::cos(a0);
    p.y1 = height + radius * std::sin(a0);
    p.x2 = x_center + radius * std::cos(a1);
    p.y2 = height + radius * std::sin(a1);
    panels.push_back(p);
  }
  return panels;
}

rlc::linalg::MatrixD capacitance_matrix_panels(
    const std::vector<std::vector<Panel>>& conductors, double eps_r) {
  const int nc = static_cast<int>(conductors.size());
  if (nc == 0) throw std::invalid_argument("capacitance_matrix_panels: no conductors");
  const double eps = rlc::math::kEps0 * eps_r;
  // Flatten.
  std::vector<const Panel*> all;
  std::vector<int> owner;
  for (int k = 0; k < nc; ++k) {
    for (const Panel& p : conductors[k]) {
      all.push_back(&p);
      owner.push_back(k);
    }
  }
  const std::size_t np = all.size();
  // Collocation system: P sigma = V at panel midpoints.
  rlc::linalg::MatrixD P(np, np);
  for (std::size_t i = 0; i < np; ++i) {
    const double px = all[i]->xm(), py = all[i]->ym();
    for (std::size_t j = 0; j < np; ++j) {
      P(i, j) = panel_potential(*all[j], px, py, eps);
    }
  }
  const rlc::linalg::LUD lu(P);
  rlc::linalg::MatrixD C(nc, nc);
  std::vector<double> v(np);
  for (int drive = 0; drive < nc; ++drive) {
    for (std::size_t i = 0; i < np; ++i) v[i] = (owner[i] == drive) ? 1.0 : 0.0;
    const auto sigma = lu.solve(v);
    for (std::size_t j = 0; j < np; ++j) {
      C(owner[j], drive) += sigma[j] * all[j]->length();
    }
  }
  return C;
}

rlc::linalg::MatrixD capacitance_matrix(const std::vector<RectConductor>& wires,
                                        const Bem2dOptions& opts) {
  std::vector<std::vector<Panel>> conductors;
  conductors.reserve(wires.size());
  for (const auto& w : wires) conductors.push_back(panelize(w, opts));
  return capacitance_matrix_panels(conductors, opts.eps_r);
}

double total_capacitance(const std::vector<RectConductor>& wires, int which,
                         const Bem2dOptions& opts) {
  if (which < 0 || which >= static_cast<int>(wires.size())) {
    throw std::out_of_range("total_capacitance: conductor index out of range");
  }
  const auto C = capacitance_matrix(wires, opts);
  return C(which, which);
}

double cylinder_over_plane_exact(double radius, double height, double eps_r) {
  if (!(radius > 0.0 && height > radius)) {
    throw std::domain_error("cylinder_over_plane_exact: need 0 < a < h");
  }
  return 2.0 * rlc::math::kPi * rlc::math::kEps0 * eps_r /
         std::acosh(height / radius);
}

}  // namespace rlc::extract
