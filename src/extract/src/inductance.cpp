#include "rlc/extract/inductance.hpp"

#include <cmath>
#include <stdexcept>

#include "rlc/math/constants.hpp"

namespace rlc::extract {

namespace {
constexpr double kMu0Over2Pi = rlc::math::kMu0 / (2.0 * rlc::math::kPi);

void require_positive(double v, const char* what) {
  if (!(v > 0.0)) {
    throw std::domain_error(std::string("inductance: ") + what + " must be > 0");
  }
}
}  // namespace

double partial_self_inductance(double length, double width, double thickness) {
  require_positive(length, "length");
  require_positive(width, "width");
  require_positive(thickness, "thickness");
  const double wt = width + thickness;
  return kMu0Over2Pi * length *
         (std::log(2.0 * length / wt) + 0.5 + 0.2235 * wt / length);
}

double partial_mutual_inductance(double length, double distance) {
  require_positive(length, "length");
  require_positive(distance, "distance");
  const double ld = length / distance;
  return kMu0Over2Pi * length *
         (std::log(ld + std::sqrt(1.0 + ld * ld)) -
          std::sqrt(1.0 + 1.0 / (ld * ld)) + 1.0 / ld);
}

double rect_self_gmd(double width, double thickness) {
  require_positive(width, "width");
  require_positive(thickness, "thickness");
  return 0.22313 * (width + thickness);
}

double loop_inductance_over_plane(double width, double thickness,
                                  double height_above_plane) {
  const double r_eff = rect_self_gmd(width, thickness);
  if (!(height_above_plane > r_eff)) {
    throw std::domain_error(
        "loop_inductance_over_plane: height must exceed the effective radius");
  }
  return kMu0Over2Pi * std::acosh(height_above_plane / r_eff);
}

double loop_inductance_wire_pair(double width, double thickness,
                                 double distance) {
  const double r_eff = rect_self_gmd(width, thickness);
  if (!(distance > r_eff)) {
    throw std::domain_error(
        "loop_inductance_wire_pair: distance must exceed the effective radius");
  }
  return 2.0 * kMu0Over2Pi * std::log(distance / r_eff);
}

double partial_self_per_length(double segment_length, double width,
                               double thickness) {
  return partial_self_inductance(segment_length, width, thickness) /
         segment_length;
}

rlc::linalg::MatrixD partial_inductance_matrix(
    const std::vector<double>& positions, double segment_length, double width,
    double thickness) {
  if (positions.empty()) {
    throw std::domain_error("partial_inductance_matrix: need >= 1 wire");
  }
  const std::size_t n = positions.size();
  rlc::linalg::MatrixD L(n, n);
  const double self = partial_self_inductance(segment_length, width, thickness);
  for (std::size_t i = 0; i < n; ++i) {
    L(i, i) = self;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = std::abs(positions[i] - positions[j]);
      const double m = partial_mutual_inductance(segment_length, d);
      L(i, j) = m;
      L(j, i) = m;
    }
  }
  return L;
}

double loop_from_partial(const rlc::linalg::MatrixD& partial, int signal,
                         int ret) {
  const auto n = static_cast<int>(partial.rows());
  if (signal < 0 || ret < 0 || signal >= n || ret >= n || signal == ret) {
    throw std::out_of_range("loop_from_partial: bad wire indices");
  }
  return partial(signal, signal) + partial(ret, ret) -
         2.0 * partial(signal, ret);
}

}  // namespace rlc::extract
