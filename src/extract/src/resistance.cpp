#include "rlc/extract/resistance.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rlc/math/constants.hpp"

namespace rlc::extract {

double resistance_per_length(double resistivity, double width,
                             double thickness) {
  if (!(resistivity > 0.0 && width > 0.0 && thickness > 0.0)) {
    throw std::domain_error("resistance_per_length: inputs must be > 0");
  }
  return resistivity / (width * thickness);
}

double resistivity_at_temperature(double rho0, double alpha, double t_ref,
                                  double t) {
  if (!(rho0 > 0.0)) throw std::domain_error("resistivity_at_temperature: rho0 must be > 0");
  return rho0 * (1.0 + alpha * (t - t_ref));
}

double skin_depth(double resistivity, double frequency) {
  if (!(resistivity > 0.0 && frequency > 0.0)) {
    throw std::domain_error("skin_depth: inputs must be > 0");
  }
  return std::sqrt(resistivity / (rlc::math::kPi * frequency * rlc::math::kMu0));
}

bool dc_resistance_valid(double resistivity, double width, double thickness,
                         double frequency) {
  const double delta = skin_depth(resistivity, frequency);
  return 0.5 * std::min(width, thickness) < delta;
}

}  // namespace rlc::extract
