#include "rlc/extract/capacitance.hpp"

#include <cmath>
#include <stdexcept>

#include "rlc/math/constants.hpp"

namespace rlc::extract {

namespace {
void require_positive(double v, const char* what) {
  if (!(v > 0.0)) throw std::domain_error(std::string("capacitance: ") + what + " must be > 0");
}
}  // namespace

double parallel_plate(double width, double separation, double eps_r) {
  require_positive(width, "width");
  require_positive(separation, "separation");
  require_positive(eps_r, "eps_r");
  return rlc::math::kEps0 * eps_r * width / separation;
}

double sakurai_tamaru_single(double width, double thickness, double height,
                             double eps_r) {
  require_positive(width, "width");
  require_positive(thickness, "thickness");
  require_positive(height, "height");
  require_positive(eps_r, "eps_r");
  const double wh = width / height;
  const double th = thickness / height;
  return rlc::math::kEps0 * eps_r * (1.15 * wh + 2.80 * std::pow(th, 0.222));
}

double sakurai_tamaru_coupling(double width, double thickness, double height,
                               double spacing, double eps_r) {
  require_positive(width, "width");
  require_positive(thickness, "thickness");
  require_positive(height, "height");
  require_positive(spacing, "spacing");
  require_positive(eps_r, "eps_r");
  const double wh = width / height;
  const double th = thickness / height;
  const double sh = spacing / height;
  const double base = 0.03 * wh + 0.83 * th - 0.07 * std::pow(th, 0.222);
  return rlc::math::kEps0 * eps_r * base * std::pow(sh, -1.34);
}

double sakurai_tamaru_bus_middle(double width, double thickness, double height,
                                 double pitch, double eps_r) {
  if (!(pitch > width)) {
    throw std::domain_error("sakurai_tamaru_bus_middle: pitch must exceed width");
  }
  const double spacing = pitch - width;
  return sakurai_tamaru_single(width, thickness, height, eps_r) +
         2.0 * sakurai_tamaru_coupling(width, thickness, height, spacing, eps_r);
}

MillerRange miller_range(double cg, double cc_per_side) {
  if (!(cg >= 0.0) || !(cc_per_side >= 0.0)) {
    throw std::domain_error("miller_range: capacitances must be >= 0");
  }
  MillerRange r;
  r.c_min = cg;                          // both neighbours switch with victim
  r.c_nominal = cg + 2.0 * cc_per_side;  // quiet neighbours
  r.c_max = cg + 4.0 * cc_per_side;      // both neighbours switch against
  return r;
}

}  // namespace rlc::extract
