#include "rlc/extract/geometry.hpp"

#include <stdexcept>

namespace rlc::extract {

std::vector<RectConductor> parallel_bus(int n, double width, double thickness,
                                        double pitch, double height) {
  if (n < 1 || !(width > 0.0 && thickness > 0.0 && height > 0.0) ||
      !(pitch > width)) {
    throw std::domain_error("parallel_bus: invalid bus geometry");
  }
  std::vector<RectConductor> wires;
  wires.reserve(n);
  const double x0 = -0.5 * (n - 1) * pitch;
  for (int i = 0; i < n; ++i) {
    RectConductor w;
    w.x_center = x0 + i * pitch;
    w.y_bottom = height;
    w.width = width;
    w.thickness = thickness;
    wires.push_back(w);
  }
  return wires;
}

}  // namespace rlc::extract
