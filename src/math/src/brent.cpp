#include "rlc/math/brent.hpp"

#include "rlc/base/cancel.hpp"

#include <algorithm>
#include <cmath>

#include "rlc/obs/metrics.hpp"
#include "rlc/obs/trace.hpp"

namespace rlc::math {

namespace {

/// Records one Brent solve (iterations histogram + solves/failures) when
/// the enclosing call returns; observation only, never feeds back.
struct BrentScope {
  int iters_hist;
  int solves;
  int failures;
  const bool* converged;
  const int* iterations;
  ~BrentScope() {
    auto& reg = obs::Registry::global();
    reg.add(solves);
    if (!*converged) reg.add(failures);
    reg.record(iters_hist, static_cast<double>(*iterations));
  }
};

}  // namespace

BrentResult brent_root(const std::function<double(double)>& f, double a,
                       double b, double tol, int max_iter) {
  RLC_TRACE_SPAN("brent_root");
  auto& reg = obs::Registry::global();
  static const int kIters =
      reg.histogram("brent.root.iterations", 1.0, 256.0, 16);
  static const int kSolves = reg.counter("brent.root.solves");
  static const int kFailures = reg.counter("brent.root.failures");
  BrentResult r;
  BrentScope scope{kIters, kSolves, kFailures, &r.converged, &r.iterations};
  double fa = f(a), fb = f(b);
  if (fa == 0.0) {
    r = {a, 0.0, 0, true};
    return r;
  }
  if (fb == 0.0) {
    r = {b, 0.0, 0, true};
    return r;
  }
  if (fa * fb > 0.0) {
    r.converged = false;
    return r;
  }
  double c = a, fc = fa;
  double d = b - a, e = d;
  for (int it = 0; it < max_iter; ++it) {
    rlc::checkpoint();  // cooperative cancellation/deadline (free when unset)
    r.iterations = it + 1;
    if (std::abs(fc) < std::abs(fb)) {
      a = b;
      b = c;
      c = a;
      fa = fb;
      fb = fc;
      fc = fa;
    }
    const double tol1 = 2.0 * std::numeric_limits<double>::epsilon() * std::abs(b) + 0.5 * tol;
    const double xm = 0.5 * (c - b);
    if (std::abs(xm) <= tol1 || fb == 0.0) {
      r.x = b;
      r.fx = fb;
      r.converged = true;
      return r;
    }
    if (std::abs(e) >= tol1 && std::abs(fa) > std::abs(fb)) {
      double p, q;
      const double s = fb / fa;
      if (a == c) {
        p = 2.0 * xm * s;
        q = 1.0 - s;
      } else {
        const double qq = fa / fc;
        const double rr = fb / fc;
        p = s * (2.0 * xm * qq * (qq - rr) - (b - a) * (rr - 1.0));
        q = (qq - 1.0) * (rr - 1.0) * (s - 1.0);
      }
      if (p > 0.0) q = -q;
      p = std::abs(p);
      const double min1 = 3.0 * xm * q - std::abs(tol1 * q);
      const double min2 = std::abs(e * q);
      if (2.0 * p < std::min(min1, min2)) {
        e = d;
        d = p / q;
      } else {
        d = xm;
        e = d;
      }
    } else {
      d = xm;
      e = d;
    }
    a = b;
    fa = fb;
    b += (std::abs(d) > tol1) ? d : (xm > 0.0 ? tol1 : -tol1);
    fb = f(b);
    if (fb * fc > 0.0) {
      c = a;
      fc = fa;
      e = b - a;
      d = e;
    }
  }
  r.x = b;
  r.fx = fb;
  r.converged = false;
  return r;
}

std::optional<std::pair<double, double>> scan_bracket(
    const std::function<double(double)>& f, double a, double b, int n) {
  if (n < 1) return std::nullopt;
  auto& reg = obs::Registry::global();
  static const int kScans = reg.counter("brent.bracket.scans");
  static const int kEvals = reg.counter("brent.bracket.evals");
  reg.add(kScans);
  reg.add(kEvals);  // f(x0) below; each loop step adds one more
  double x0 = a;
  double f0 = f(x0);
  for (int i = 1; i <= n; ++i) {
    const double x1 = a + (b - a) * static_cast<double>(i) / n;
    const double f1 = f(x1);
    reg.add(kEvals);
    if (std::isfinite(f0) && std::isfinite(f1) && f0 * f1 <= 0.0) {
      return std::make_pair(x0, x1);
    }
    x0 = x1;
    f0 = f1;
  }
  return std::nullopt;
}

MinResult brent_minimize(const std::function<double(double)>& f, double a,
                         double b, double tol, int max_iter) {
  static constexpr double kGolden = 0.3819660112501051;
  auto& reg = obs::Registry::global();
  static const int kIters =
      reg.histogram("brent.minimize.iterations", 1.0, 256.0, 16);
  static const int kSolves = reg.counter("brent.minimize.solves");
  static const int kFailures = reg.counter("brent.minimize.failures");
  MinResult res;
  BrentScope scope{kIters, kSolves, kFailures, &res.converged,
                   &res.iterations};
  double x = a + kGolden * (b - a);
  double w = x, v = x;
  double fx = f(x), fw = fx, fv = fx;
  double d = 0.0, e = 0.0;
  for (int it = 0; it < max_iter; ++it) {
    rlc::checkpoint();  // cooperative cancellation/deadline (free when unset)
    res.iterations = it + 1;
    const double xm = 0.5 * (a + b);
    const double tol1 = tol * std::abs(x) + 1e-300;
    const double tol2 = 2.0 * tol1;
    if (std::abs(x - xm) <= tol2 - 0.5 * (b - a)) {
      res.x = x;
      res.fx = fx;
      res.converged = true;
      return res;
    }
    bool use_golden = true;
    if (std::abs(e) > tol1) {
      // Parabolic fit through x, v, w.
      const double r = (x - w) * (fx - fv);
      double q = (x - v) * (fx - fw);
      double p = (x - v) * q - (x - w) * r;
      q = 2.0 * (q - r);
      if (q > 0.0) p = -p;
      q = std::abs(q);
      const double etemp = e;
      e = d;
      if (std::abs(p) < std::abs(0.5 * q * etemp) && p > q * (a - x) &&
          p < q * (b - x)) {
        d = p / q;
        const double u = x + d;
        if (u - a < tol2 || b - u < tol2) d = (xm - x >= 0.0) ? tol1 : -tol1;
        use_golden = false;
      }
    }
    if (use_golden) {
      e = (x >= xm) ? a - x : b - x;
      d = kGolden * e;
    }
    const double u = (std::abs(d) >= tol1) ? x + d : x + ((d >= 0.0) ? tol1 : -tol1);
    const double fu = f(u);
    if (fu <= fx) {
      if (u >= x)
        a = x;
      else
        b = x;
      v = w;
      fv = fw;
      w = x;
      fw = fx;
      x = u;
      fx = fu;
    } else {
      if (u < x)
        a = u;
      else
        b = u;
      if (fu <= fw || w == x) {
        v = w;
        fv = fw;
        w = u;
        fw = fu;
      } else if (fu <= fv || v == x || v == w) {
        v = u;
        fv = fu;
      }
    }
  }
  res.x = x;
  res.fx = fx;
  res.converged = false;
  return res;
}

}  // namespace rlc::math
