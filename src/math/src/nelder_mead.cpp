#include "rlc/math/nelder_mead.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace rlc::math {

namespace {

double safe_eval(const std::function<double(const std::vector<double>&)>& f,
                 const std::vector<double>& x) {
  const double v = f(x);
  return std::isfinite(v) ? v : std::numeric_limits<double>::infinity();
}

}  // namespace

NelderMeadResult nelder_mead(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> x0, const NelderMeadOptions& opts) {
  const std::size_t n = x0.size();
  NelderMeadResult res;
  if (n == 0) return res;

  // Standard coefficients.
  constexpr double kAlpha = 1.0;  // reflection
  constexpr double kGamma = 2.0;  // expansion
  constexpr double kRho = 0.5;    // contraction
  constexpr double kSigma = 0.5;  // shrink

  std::vector<std::vector<double>> simplex(n + 1, x0);
  for (std::size_t i = 0; i < n; ++i) {
    double step = opts.initial_step * std::abs(x0[i]);
    if (step == 0.0) step = opts.initial_step;
    simplex[i + 1][i] += step;
  }
  std::vector<double> fvals(n + 1);
  for (std::size_t i = 0; i <= n; ++i) fvals[i] = safe_eval(f, simplex[i]);

  std::vector<std::size_t> order(n + 1);
  for (int it = 0; it < opts.max_iterations; ++it) {
    res.iterations = it + 1;
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return fvals[a] < fvals[b]; });
    const std::size_t best = order[0], worst = order[n], second = order[n - 1];

    // Convergence: f-spread and simplex diameter.
    const double fspread = std::abs(fvals[worst] - fvals[best]);
    double diam = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      diam = std::max(diam, std::abs(simplex[worst][i] - simplex[best][i]) /
                                (1.0 + std::abs(simplex[best][i])));
    }
    // Require BOTH the f-spread and the simplex diameter to be small: an
    // f-spread-only test stops prematurely when the simplex straddles a
    // minimum symmetrically (equal f at distinct points).
    if (fspread <= opts.f_tolerance * (1.0 + std::abs(fvals[best])) &&
        diam <= opts.x_tolerance) {
      res.x = simplex[best];
      res.fx = fvals[best];
      res.converged = true;
      return res;
    }

    // Centroid of all but the worst point.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == worst) continue;
      for (std::size_t j = 0; j < n; ++j) centroid[j] += simplex[i][j];
    }
    for (std::size_t j = 0; j < n; ++j) centroid[j] /= static_cast<double>(n);

    auto blend = [&](double coef) {
      std::vector<double> p(n);
      for (std::size_t j = 0; j < n; ++j)
        p[j] = centroid[j] + coef * (centroid[j] - simplex[worst][j]);
      return p;
    };

    const auto xr = blend(kAlpha);
    const double fr = safe_eval(f, xr);
    if (fr < fvals[best]) {
      const auto xe = blend(kGamma);
      const double fe = safe_eval(f, xe);
      if (fe < fr) {
        simplex[worst] = xe;
        fvals[worst] = fe;
      } else {
        simplex[worst] = xr;
        fvals[worst] = fr;
      }
      continue;
    }
    if (fr < fvals[second]) {
      simplex[worst] = xr;
      fvals[worst] = fr;
      continue;
    }
    // Contraction (outside if fr better than worst, inside otherwise).
    const double ccoef = (fr < fvals[worst]) ? kRho : -kRho;
    const auto xc = blend(ccoef);
    const double fc = safe_eval(f, xc);
    if (fc < std::min(fr, fvals[worst])) {
      simplex[worst] = xc;
      fvals[worst] = fc;
      continue;
    }
    // Shrink toward the best point.
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == best) continue;
      for (std::size_t j = 0; j < n; ++j) {
        simplex[i][j] =
            simplex[best][j] + kSigma * (simplex[i][j] - simplex[best][j]);
      }
      fvals[i] = safe_eval(f, simplex[i]);
    }
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i <= n; ++i)
    if (fvals[i] < fvals[best]) best = i;
  res.x = simplex[best];
  res.fx = fvals[best];
  res.converged = false;
  return res;
}

}  // namespace rlc::math
