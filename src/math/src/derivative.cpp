#include "rlc/math/derivative.hpp"

#include <algorithm>
#include <cmath>

namespace rlc::math {

namespace {
double step_for(double x, double rel_step) {
  return rel_step * std::max(std::abs(x), 1e-30);
}
}  // namespace

double central_diff(const std::function<double(double)>& f, double x,
                    double rel_step) {
  const double h = step_for(x, rel_step);
  return (f(x + h) - f(x - h)) / (2.0 * h);
}

double richardson_diff(const std::function<double(double)>& f, double x,
                       double rel_step) {
  const double d1 = central_diff(f, x, rel_step);
  const double d2 = central_diff(f, x, 0.5 * rel_step);
  return (4.0 * d2 - d1) / 3.0;
}

double central_diff2(const std::function<double(double)>& f, double x,
                     double rel_step) {
  const double h = step_for(x, rel_step);
  return (f(x + h) - 2.0 * f(x) + f(x - h)) / (h * h);
}

}  // namespace rlc::math
