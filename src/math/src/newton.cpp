#include "rlc/math/newton.hpp"

#include "rlc/base/cancel.hpp"

#include <algorithm>
#include <cmath>

#include "rlc/obs/metrics.hpp"
#include "rlc/obs/trace.hpp"

namespace rlc::math {

namespace {

/// Per-family instrumentation for a Newton solver: solves/failures
/// counters plus an iterations-to-converge histogram, recorded when the
/// enclosing solve returns (any exit path).  Pure observation — never
/// feeds back into the iteration.
struct SolveScope {
  int iters_hist;
  int solves;
  int failures;
  const bool* converged;
  const int* iterations;
  ~SolveScope() {
    auto& reg = obs::Registry::global();
    reg.add(solves);
    if (!*converged) reg.add(failures);
    reg.record(iters_hist, static_cast<double>(*iterations));
  }
};

}  // namespace

SolveResult newton_scalar(const std::function<double(double)>& f,
                          const std::function<double(double)>& fprime,
                          double x0, const NewtonOptions& opts) {
  auto& reg = obs::Registry::global();
  static const int kIters =
      reg.histogram("newton.scalar.iterations", 1.0, 256.0, 16);
  static const int kSolves = reg.counter("newton.scalar.solves");
  static const int kFailures = reg.counter("newton.scalar.failures");
  static const int kBacktracks = reg.counter("newton.scalar.backtracks");
  SolveResult r;
  SolveScope scope{kIters, kSolves, kFailures, &r.converged, &r.iterations};
  double x = x0;
  double fx = f(x);
  for (int it = 0; it < opts.max_iterations; ++it) {
    rlc::checkpoint();  // cooperative cancellation/deadline (free when unset)
    r.iterations = it;
    if (std::abs(fx) <= opts.f_tolerance) {
      r.x = x;
      r.converged = true;
      r.residual = std::abs(fx);
      return r;
    }
    const double dfx = fprime(x);
    if (dfx == 0.0 || !std::isfinite(dfx)) break;
    double step = -fx / dfx;
    double xn = x + step;
    double fxn = f(xn);
    if (opts.damped) {
      int bt = 0;
      while ((!std::isfinite(fxn) || std::abs(fxn) > std::abs(fx)) &&
             bt < opts.max_backtracks) {
        step *= 0.5;
        xn = x + step;
        fxn = f(xn);
        ++bt;
      }
      if (bt > 0) reg.add(kBacktracks, bt);
    }
    if (opts.x_tolerance > 0.0 &&
        std::abs(step) <= opts.x_tolerance * (1.0 + std::abs(xn))) {
      r.x = xn;
      r.converged = std::isfinite(fxn);
      r.residual = std::abs(fxn);
      r.iterations = it + 1;
      return r;
    }
    x = xn;
    fx = fxn;
    if (!std::isfinite(fx)) break;
  }
  r.x = x;
  r.residual = std::abs(fx);
  r.converged = std::isfinite(fx) && std::abs(fx) <= opts.f_tolerance;
  if (r.converged) r.iterations = opts.max_iterations;
  return r;
}

SolveResult newton_bisect_scalar(const std::function<double(double)>& f,
                                 const std::function<double(double)>& fprime,
                                 double lo, double hi,
                                 const NewtonOptions& opts) {
  auto& reg = obs::Registry::global();
  static const int kIters =
      reg.histogram("newton.bisect.iterations", 1.0, 256.0, 16);
  static const int kSolves = reg.counter("newton.bisect.solves");
  static const int kFailures = reg.counter("newton.bisect.failures");
  SolveResult r;
  SolveScope scope{kIters, kSolves, kFailures, &r.converged, &r.iterations};
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) {
    r = {lo, 0, true, 0.0};
    return r;
  }
  if (fhi == 0.0) {
    r = {hi, 0, true, 0.0};
    return r;
  }
  if (!(flo * fhi < 0.0)) {
    // No sign change: caller gave a bad bracket.
    r.converged = false;
    r.x = lo;
    r.residual = std::abs(flo);
    return r;
  }
  double x = 0.5 * (lo + hi);
  double fx = f(x);
  for (int it = 0; it < opts.max_iterations; ++it) {
    rlc::checkpoint();  // cooperative cancellation/deadline (free when unset)
    r.iterations = it + 1;
    if (std::abs(fx) <= opts.f_tolerance ||
        (hi - lo) <= opts.x_tolerance * (1.0 + std::abs(x))) {
      r.x = x;
      r.converged = true;
      r.residual = std::abs(fx);
      return r;
    }
    // Maintain the bracket.
    if (flo * fx < 0.0) {
      hi = x;
      fhi = fx;
    } else {
      lo = x;
      flo = fx;
    }
    // Try a Newton step; fall back to bisection when it escapes the bracket.
    const double dfx = fprime(x);
    double xn;
    if (dfx != 0.0 && std::isfinite(dfx)) {
      xn = x - fx / dfx;
      if (!(xn > lo && xn < hi)) xn = 0.5 * (lo + hi);
    } else {
      xn = 0.5 * (lo + hi);
    }
    x = xn;
    fx = f(x);
    if (!std::isfinite(fx)) {
      x = 0.5 * (lo + hi);
      fx = f(x);
    }
  }
  r.x = x;
  r.residual = std::abs(fx);
  r.converged = std::abs(fx) <= opts.f_tolerance;
  return r;
}

namespace {

/// Solve the 2x2 linear system J * d = -f.  Returns false if J is singular
/// to working precision.
bool solve2(const std::array<std::array<double, 2>, 2>& J,
            const std::array<double, 2>& f, std::array<double, 2>& d) {
  const double det = J[0][0] * J[1][1] - J[0][1] * J[1][0];
  const double scale = std::max({std::abs(J[0][0]), std::abs(J[0][1]),
                                 std::abs(J[1][0]), std::abs(J[1][1])});
  if (scale == 0.0 || std::abs(det) < 1e-300 * scale * scale) return false;
  d[0] = (-f[0] * J[1][1] + f[1] * J[0][1]) / det;
  d[1] = (-J[0][0] * f[1] + J[1][0] * f[0]) / det;
  return std::isfinite(d[0]) && std::isfinite(d[1]);
}

double inf_norm(const std::array<double, 2>& v) {
  return std::max(std::abs(v[0]), std::abs(v[1]));
}

}  // namespace

SolveResult2 newton_2d(const Fn2& f, const Jac2& jac,
                       std::array<double, 2> x0, const NewtonOptions& opts,
                       std::optional<std::array<double, 2>> lower_bounds,
                       double bound_fraction) {
  RLC_TRACE_SPAN("newton_2d");
  auto& reg = obs::Registry::global();
  static const int kIters =
      reg.histogram("newton.2d.iterations", 1.0, 256.0, 16);
  static const int kSolves = reg.counter("newton.2d.solves");
  static const int kFailures = reg.counter("newton.2d.failures");
  static const int kBacktracks = reg.counter("newton.2d.backtracks");
  SolveResult2 r;
  SolveScope scope{kIters, kSolves, kFailures, &r.converged, &r.iterations};
  std::array<double, 2> x = x0;
  std::array<double, 2> fx = f(x);
  for (int it = 0; it < opts.max_iterations; ++it) {
    rlc::checkpoint();  // cooperative cancellation/deadline (free when unset)
    r.iterations = it;
    if (inf_norm(fx) <= opts.f_tolerance) {
      r.x = x;
      r.converged = true;
      r.residual = inf_norm(fx);
      return r;
    }
    std::array<double, 2> d{};
    if (!solve2(jac(x), fx, d)) break;
    // Respect lower bounds: shorten any step that would cross one.
    if (lower_bounds) {
      double alpha = 1.0;
      for (int i = 0; i < 2; ++i) {
        const double lb = (*lower_bounds)[i];
        if (x[i] + d[i] <= lb) {
          // Stop at bound_fraction of the distance to the bound.
          const double allowed = bound_fraction * (x[i] - lb);
          if (d[i] < 0.0) alpha = std::min(alpha, -allowed / d[i]);
        }
      }
      d[0] *= alpha;
      d[1] *= alpha;
    }
    std::array<double, 2> xn{x[0] + d[0], x[1] + d[1]};
    std::array<double, 2> fxn = f(xn);
    if (opts.damped) {
      int bt = 0;
      while ((!std::isfinite(fxn[0]) || !std::isfinite(fxn[1]) ||
              inf_norm(fxn) > inf_norm(fx)) &&
             bt < opts.max_backtracks) {
        d[0] *= 0.5;
        d[1] *= 0.5;
        xn = {x[0] + d[0], x[1] + d[1]};
        fxn = f(xn);
        ++bt;
      }
      if (bt > 0) reg.add(kBacktracks, bt);
      if (!std::isfinite(fxn[0]) || !std::isfinite(fxn[1])) break;
    }
    if (opts.x_tolerance > 0.0 &&
        inf_norm(d) <= opts.x_tolerance * (1.0 + inf_norm(xn))) {
      r.x = xn;
      r.residual = inf_norm(fxn);
      r.converged = std::isfinite(fxn[0]) && std::isfinite(fxn[1]);
      r.iterations = it + 1;
      return r;
    }
    x = xn;
    fx = fxn;
  }
  r.x = x;
  r.residual = inf_norm(fx);
  r.converged = r.residual <= opts.f_tolerance;
  return r;
}

Jac2 fd_jacobian_2d(const Fn2& f, double rel_step) {
  return [f, rel_step](const std::array<double, 2>& x) {
    std::array<std::array<double, 2>, 2> J{};
    for (int j = 0; j < 2; ++j) {
      const double h = rel_step * std::max(std::abs(x[j]), 1e-30);
      std::array<double, 2> xp = x, xm = x;
      xp[j] += h;
      xm[j] -= h;
      const auto fp = f(xp);
      const auto fm = f(xm);
      for (int i = 0; i < 2; ++i) J[i][j] = (fp[i] - fm[i]) / (2.0 * h);
    }
    return J;
  };
}

}  // namespace rlc::math
