#include "rlc/math/quadrature.hpp"

#include <array>
#include <cmath>
#include <vector>

namespace rlc::math {

namespace {

struct Rule {
  std::vector<double> nodes;    // on [-1, 1]
  std::vector<double> weights;
};

// Tabulated Gauss–Legendre nodes/weights (symmetric halves listed in full).
const Rule& rule_for(int n) {
  static const Rule r2{{-0.5773502691896257, 0.5773502691896257}, {1.0, 1.0}};
  static const Rule r3{{-0.7745966692414834, 0.0, 0.7745966692414834},
                       {5.0 / 9.0, 8.0 / 9.0, 5.0 / 9.0}};
  static const Rule r4{{-0.8611363115940526, -0.3399810435848563,
                        0.3399810435848563, 0.8611363115940526},
                       {0.3478548451374538, 0.6521451548625461,
                        0.6521451548625461, 0.3478548451374538}};
  static const Rule r5{
      {-0.9061798459386640, -0.5384693101056831, 0.0, 0.5384693101056831,
       0.9061798459386640},
      {0.2369268850561891, 0.4786286704993665, 0.5688888888888889,
       0.4786286704993665, 0.2369268850561891}};
  static const Rule r6{
      {-0.9324695142031521, -0.6612093864662645, -0.2386191860831969,
       0.2386191860831969, 0.6612093864662645, 0.9324695142031521},
      {0.1713244923791704, 0.3607615730481386, 0.4679139345726910,
       0.4679139345726910, 0.3607615730481386, 0.1713244923791704}};
  static const Rule r7{
      {-0.9491079123427585, -0.7415311855993945, -0.4058451513773972, 0.0,
       0.4058451513773972, 0.7415311855993945, 0.9491079123427585},
      {0.1294849661688697, 0.2797053914892766, 0.3818300505051189,
       0.4179591836734694, 0.3818300505051189, 0.2797053914892766,
       0.1294849661688697}};
  static const Rule r8{
      {-0.9602898564975363, -0.7966664774136267, -0.5255324099163290,
       -0.1834346424956498, 0.1834346424956498, 0.5255324099163290,
       0.7966664774136267, 0.9602898564975363},
      {0.1012285362903763, 0.2223810344533745, 0.3137066458778873,
       0.3626837833783620, 0.3626837833783620, 0.3137066458778873,
       0.2223810344533745, 0.1012285362903763}};
  static const Rule r12{
      {-0.9815606342467192, -0.9041172563704749, -0.7699026741943047,
       -0.5873179542866175, -0.3678314989981802, -0.1252334085114689,
       0.1252334085114689, 0.3678314989981802, 0.5873179542866175,
       0.7699026741943047, 0.9041172563704749, 0.9815606342467192},
      {0.0471753363865118, 0.1069393259953184, 0.1600783285433462,
       0.2031674267230659, 0.2334925365383548, 0.2491470458134028,
       0.2491470458134028, 0.2334925365383548, 0.2031674267230659,
       0.1600783285433462, 0.1069393259953184, 0.0471753363865118}};
  static const Rule r16{
      {-0.9894009349916499, -0.9445750230732326, -0.8656312023878318,
       -0.7554044083550030, -0.6178762444026438, -0.4580167776572274,
       -0.2816035507792589, -0.0950125098376374, 0.0950125098376374,
       0.2816035507792589, 0.4580167776572274, 0.6178762444026438,
       0.7554044083550030, 0.8656312023878318, 0.9445750230732326,
       0.9894009349916499},
      {0.0271524594117541, 0.0622535239386479, 0.0951585116824928,
       0.1246289712555339, 0.1495959888165767, 0.1691565193950025,
       0.1826034150449236, 0.1894506104550685, 0.1894506104550685,
       0.1826034150449236, 0.1691565193950025, 0.1495959888165767,
       0.1246289712555339, 0.0951585116824928, 0.0622535239386479,
       0.0271524594117541}};
  switch (n) {
    case 2: return r2;
    case 3: return r3;
    case 4: return r4;
    case 5: return r5;
    case 6: return r6;
    case 7: return r7;
    case 8: return r8;
    case 12: return r12;
    default: return r16;
  }
}

double simpson(double a, double fa, double b, double fb, double fm) {
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

double adaptive_simpson_rec(const std::function<double(double)>& f, double a,
                            double fa, double b, double fb, double m,
                            double fm, double whole, double tol, int depth) {
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = simpson(a, fa, m, fm, flm);
  const double right = simpson(m, fm, b, fb, frm);
  const double delta = left + right - whole;
  if (depth <= 0 || std::abs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;
  }
  return adaptive_simpson_rec(f, a, fa, m, fm, lm, flm, left, 0.5 * tol,
                              depth - 1) +
         adaptive_simpson_rec(f, m, fm, b, fb, rm, frm, right, 0.5 * tol,
                              depth - 1);
}

}  // namespace

double gauss_legendre(const std::function<double(double)>& f, double a,
                      double b, int n) {
  const Rule& r = rule_for(n);
  const double half = 0.5 * (b - a);
  const double mid = 0.5 * (a + b);
  double sum = 0.0;
  for (std::size_t i = 0; i < r.nodes.size(); ++i) {
    sum += r.weights[i] * f(mid + half * r.nodes[i]);
  }
  return half * sum;
}

double adaptive_simpson(const std::function<double(double)>& f, double a,
                        double b, double tol, int max_depth) {
  const double m = 0.5 * (a + b);
  const double fa = f(a), fb = f(b), fm = f(m);
  const double whole = simpson(a, fa, b, fb, fm);
  return adaptive_simpson_rec(f, a, fa, b, fb, m, fm, whole, tol, max_depth);
}

}  // namespace rlc::math
