#include "rlc/math/stats.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace rlc::math {

double peak_abs(std::span<const double> y) {
  double p = 0.0;
  for (double v : y) p = std::max(p, std::abs(v));
  return p;
}

double maximum(std::span<const double> y) {
  double m = -std::numeric_limits<double>::infinity();
  for (double v : y) m = std::max(m, v);
  return m;
}

double minimum(std::span<const double> y) {
  double m = std::numeric_limits<double>::infinity();
  for (double v : y) m = std::min(m, v);
  return m;
}

namespace {
void check_sizes(std::span<const double> t, std::span<const double> y) {
  if (t.size() != y.size() || t.size() < 2) {
    throw std::invalid_argument("waveform stats: need matching t/y with >= 2 samples");
  }
}
}  // namespace

double integral_trapz(std::span<const double> t, std::span<const double> y) {
  check_sizes(t, y);
  double acc = 0.0;
  for (std::size_t i = 1; i < t.size(); ++i) {
    acc += 0.5 * (y[i] + y[i - 1]) * (t[i] - t[i - 1]);
  }
  return acc;
}

double mean_trapz(std::span<const double> t, std::span<const double> y) {
  check_sizes(t, y);
  const double T = t.back() - t.front();
  if (T <= 0.0) throw std::invalid_argument("mean_trapz: non-increasing time axis");
  return integral_trapz(t, y) / T;
}

double rms_trapz(std::span<const double> t, std::span<const double> y) {
  check_sizes(t, y);
  const double T = t.back() - t.front();
  if (T <= 0.0) throw std::invalid_argument("rms_trapz: non-increasing time axis");
  double acc = 0.0;
  for (std::size_t i = 1; i < t.size(); ++i) {
    acc += 0.5 * (y[i] * y[i] + y[i - 1] * y[i - 1]) * (t[i] - t[i - 1]);
  }
  return std::sqrt(acc / T);
}

}  // namespace rlc::math
