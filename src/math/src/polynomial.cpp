#include "rlc/math/polynomial.hpp"

#include <cmath>
#include <stdexcept>

namespace rlc::math {

std::pair<std::complex<double>, std::complex<double>> quadratic_roots(
    double a, double b, double c) {
  if (a == 0.0) throw std::invalid_argument("quadratic_roots: a must be nonzero");
  const double disc = b * b - 4.0 * a * c;
  if (disc >= 0.0) {
    const double sq = std::sqrt(disc);
    // Cancellation-free: compute the larger-magnitude root first.
    const double q = -0.5 * (b + (b >= 0.0 ? sq : -sq));
    std::complex<double> r1, r2;
    if (q != 0.0) {
      r1 = {q / a, 0.0};
      r2 = {c / q, 0.0};
    } else {
      // b == 0 and disc == 0 => double root at 0... or c == 0.
      r1 = {0.0, 0.0};
      r2 = {-b / a, 0.0};
    }
    return {r1, r2};
  }
  const double re = -b / (2.0 * a);
  const double im = std::sqrt(-disc) / (2.0 * a);
  return {std::complex<double>{re, im}, std::complex<double>{re, -im}};
}

double polyval(const std::vector<double>& coeffs, double x) {
  double acc = 0.0;
  for (auto it = coeffs.rbegin(); it != coeffs.rend(); ++it) acc = acc * x + *it;
  return acc;
}

std::complex<double> polyval(const std::vector<double>& coeffs,
                             std::complex<double> x) {
  std::complex<double> acc = 0.0;
  for (auto it = coeffs.rbegin(); it != coeffs.rend(); ++it) acc = acc * x + *it;
  return acc;
}

}  // namespace rlc::math
