#pragma once

/// \file nelder_mead.hpp
/// Derivative-free Nelder–Mead simplex minimization.  Used as an independent
/// cross-check for the Newton-based (h, k) optimizer of the core library and
/// as a fallback when the stationarity system is ill-conditioned.

#include <functional>
#include <vector>

namespace rlc::math {

struct NelderMeadOptions {
  int max_iterations = 2000;
  double f_tolerance = 1e-14;  ///< required f-spread at convergence
  double x_tolerance = 1e-9;   ///< required simplex diameter (relative)
  double initial_step = 0.1;   ///< relative size of the initial simplex
};

struct NelderMeadResult {
  std::vector<double> x;
  double fx = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Minimize f over R^n starting from x0.  Points where f returns a
/// non-finite value are treated as +inf (allowing hard constraints by
/// returning NaN/inf from f).
NelderMeadResult nelder_mead(const std::function<double(const std::vector<double>&)>& f,
                             std::vector<double> x0,
                             const NelderMeadOptions& opts = {});

}  // namespace rlc::math
