#pragma once

/// \file quadrature.hpp
/// Numerical integration: fixed-order Gauss–Legendre panels and adaptive
/// Simpson.  Used by the BEM capacitance extractor (Galerkin integrals of the
/// log-kernel) and by waveform RMS computations on non-uniform samples.

#include <functional>

namespace rlc::math {

/// Integrate f over [a, b] with an n-point Gauss–Legendre rule
/// (n in {2..8, 12, 16} supported; other values fall back to 16).
double gauss_legendre(const std::function<double(double)>& f, double a,
                      double b, int n = 8);

/// Integrate f over [a, b] with adaptive Simpson to absolute tolerance tol.
double adaptive_simpson(const std::function<double(double)>& f, double a,
                        double b, double tol = 1e-10, int max_depth = 30);

}  // namespace rlc::math
