#pragma once

/// \file stats.hpp
/// Statistics over sampled (possibly non-uniform) waveforms: peak, RMS,
/// mean, min/max.  RMS and mean are time-weighted (trapezoidal) so they are
/// correct for adaptive-step transient output.

#include <cstddef>
#include <span>

namespace rlc::math {

/// max_i |y_i| over the samples.
double peak_abs(std::span<const double> y);

/// max_i y_i.
double maximum(std::span<const double> y);

/// min_i y_i.
double minimum(std::span<const double> y);

/// Time-weighted mean of y(t) over [t.front(), t.back()], trapezoidal.
/// Requires t strictly increasing and t.size() == y.size() >= 2.
double mean_trapz(std::span<const double> t, std::span<const double> y);

/// Time-weighted RMS of y(t): sqrt( (1/T) * integral y^2 dt ), trapezoidal
/// on y^2.  Requirements as mean_trapz.
double rms_trapz(std::span<const double> t, std::span<const double> y);

/// Trapezoidal integral of y dt.
double integral_trapz(std::span<const double> t, std::span<const double> y);

}  // namespace rlc::math
