#pragma once

/// \file brent.hpp
/// Brent's method for root finding and 1-D minimization, plus a simple
/// bracket scanner.  Used as robust fallbacks and as cross-checks for the
/// Newton-based solvers of the core library.

#include <functional>
#include <optional>
#include <utility>

namespace rlc::math {

/// Result of a bracketed 1-D root solve.
struct BrentResult {
  double x = 0.0;
  double fx = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Find a root of f in [a, b] with f(a)*f(b) <= 0 using Brent's method.
BrentResult brent_root(const std::function<double(double)>& f, double a,
                       double b, double tol = 1e-14, int max_iter = 200);

/// Scan [a, b] in `n` uniform steps and return the first subinterval
/// [x_i, x_{i+1}] over which f changes sign (or touches zero).
std::optional<std::pair<double, double>> scan_bracket(
    const std::function<double(double)>& f, double a, double b, int n);

/// Result of a 1-D minimization.
struct MinResult {
  double x = 0.0;
  double fx = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Minimize f over [a, b] using Brent's parabolic-interpolation method
/// (golden-section fallback).
MinResult brent_minimize(const std::function<double(double)>& f, double a,
                         double b, double tol = 1e-10, int max_iter = 200);

}  // namespace rlc::math
