#pragma once

/// \file polynomial.hpp
/// Small polynomial utilities.  The core library's two-pole model reduces to
/// quadratic root finding; we provide a numerically robust quadratic solver
/// (complex-aware, cancellation-free) and generic Horner evaluation.

#include <complex>
#include <utility>
#include <vector>

namespace rlc::math {

/// Roots of a*x^2 + b*x + c = 0 (a != 0), returned as a complex pair.
/// Uses the cancellation-free form: q = -(b + sign(b)*sqrt(disc))/2,
/// roots = q/a and c/q, so that nearly-critically-damped systems (disc ~ 0)
/// and widely-split real roots are both handled accurately.
std::pair<std::complex<double>, std::complex<double>> quadratic_roots(
    double a, double b, double c);

/// Horner evaluation of sum coeffs[i] * x^i (coeffs[0] is the constant term).
double polyval(const std::vector<double>& coeffs, double x);

/// Horner evaluation for complex argument.
std::complex<double> polyval(const std::vector<double>& coeffs,
                             std::complex<double> x);

}  // namespace rlc::math
