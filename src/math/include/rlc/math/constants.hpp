#pragma once

/// \file constants.hpp
/// Physical and mathematical constants used throughout the library.
/// All values are SI.

namespace rlc::math {

/// pi to double precision.
inline constexpr double kPi = 3.14159265358979323846;

/// Vacuum permittivity eps0 [F/m].
inline constexpr double kEps0 = 8.8541878128e-12;

/// Vacuum permeability mu0 [H/m].
inline constexpr double kMu0 = 1.25663706212e-6;

/// Speed of light in vacuum [m/s].
inline constexpr double kC0 = 2.99792458e8;

/// Resistivity of bulk copper at room temperature [Ohm*m].
/// (Thin-film/DSM copper with barrier liners is effectively higher; the
/// technology database stores the effective per-unit-length resistance.)
inline constexpr double kRhoCopper = 1.72e-8;

/// Resistivity of aluminum at room temperature [Ohm*m].
inline constexpr double kRhoAluminum = 2.82e-8;

}  // namespace rlc::math
