#pragma once

/// \file newton.hpp
/// Newton–Raphson solvers: scalar, fixed-size 2D, and general N-D with
/// optional damping (backtracking line search on the residual norm).
///
/// The paper's optimization methodology (Sections 2.1–2.2) relies on two
/// nested Newton solves:
///   * Eq. (3): the f*100% delay crossing of the two-pole step response
///     ("convergence is achieved in less than four iterations in all cases");
///   * Eqs. (7)–(8): the stationarity system (g1, g2) = 0 in (h, k)
///     ("convergence is achieved in less than six iterations in all cases").
/// These solvers expose iteration counts so the benches can verify the claims.

#include <array>
#include <functional>
#include <optional>

namespace rlc::math {

/// Outcome of an iterative solve.
struct SolveResult {
  double x = 0.0;        ///< converged solution (valid iff converged)
  int iterations = 0;    ///< iterations actually performed
  bool converged = false;
  double residual = 0.0; ///< |f(x)| at exit
};

/// Options shared by the Newton drivers.
struct NewtonOptions {
  int max_iterations = 100;
  double f_tolerance = 1e-12;   ///< stop when |f| (or ||f||_inf) drops below
  double x_tolerance = 0.0;     ///< additionally stop when |dx| <= x_tol*(1+|x|); 0 disables
  bool damped = true;           ///< backtracking line search if a full step grows ||f||
  int max_backtracks = 30;
};

/// Solve f(x) = 0 from initial guess x0 given f and its derivative fprime.
/// Returns a SolveResult whose `converged` flag must be checked by callers.
SolveResult newton_scalar(const std::function<double(double)>& f,
                          const std::function<double(double)>& fprime,
                          double x0, const NewtonOptions& opts = {});

/// Scalar Newton with a guard bracket [lo, hi]: whenever the Newton step
/// leaves the bracket (or the derivative vanishes) a bisection step is taken
/// instead, and the bracket is maintained from the signs of f.  The bracket
/// must satisfy f(lo)*f(hi) <= 0.  This is the robust driver used by the
/// delay solver where the two-pole response can be oscillatory.
SolveResult newton_bisect_scalar(const std::function<double(double)>& f,
                                 const std::function<double(double)>& fprime,
                                 double lo, double hi,
                                 const NewtonOptions& opts = {});

/// Result of a 2-dimensional solve.
struct SolveResult2 {
  std::array<double, 2> x{0.0, 0.0};
  int iterations = 0;
  bool converged = false;
  double residual = 0.0;  ///< ||f||_inf at exit
};

using Fn2 = std::function<std::array<double, 2>(const std::array<double, 2>&)>;
/// Jacobian callback: returns {{df1/dx1, df1/dx2}, {df2/dx1, df2/dx2}}.
using Jac2 = std::function<std::array<std::array<double, 2>, 2>(const std::array<double, 2>&)>;

/// Damped Newton for a 2x2 nonlinear system f(x) = 0.
///
/// Optionally enforces simple bounds (component-wise lower bounds, used by
/// the (h, k) optimizer where both segment length and repeater size must stay
/// strictly positive): any step that would cross a bound is shortened to stop
/// at `bound_fraction` of the distance to it.
SolveResult2 newton_2d(const Fn2& f, const Jac2& jac,
                       std::array<double, 2> x0,
                       const NewtonOptions& opts = {},
                       std::optional<std::array<double, 2>> lower_bounds = std::nullopt,
                       double bound_fraction = 0.5);

/// Build a finite-difference Jacobian for a 2D system (central differences,
/// relative step `rel_step`).  Used both as a fallback and in tests to verify
/// analytic derivatives.
Jac2 fd_jacobian_2d(const Fn2& f, double rel_step = 1e-6);

}  // namespace rlc::math
