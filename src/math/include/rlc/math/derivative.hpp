#pragma once

/// \file derivative.hpp
/// Finite-difference derivatives with Richardson extrapolation.  Primarily
/// used by the test suite to validate the analytic sensitivities
/// (d b1/d h, d s1/d k, ...) that the (h, k) optimizer relies on.

#include <functional>

namespace rlc::math {

/// Central-difference first derivative of f at x with relative step.
double central_diff(const std::function<double(double)>& f, double x,
                    double rel_step = 1e-6);

/// Richardson-extrapolated central difference (two step sizes, O(h^4)).
double richardson_diff(const std::function<double(double)>& f, double x,
                       double rel_step = 1e-4);

/// Second derivative by central differences.
double central_diff2(const std::function<double(double)>& f, double x,
                     double rel_step = 1e-4);

}  // namespace rlc::math
