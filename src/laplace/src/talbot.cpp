#include "rlc/laplace/talbot.hpp"

#include <cmath>
#include <stdexcept>

#include "rlc/math/constants.hpp"

namespace rlc::laplace {

double talbot_invert(const LaplaceFn& F, double t, int M) {
  if (!(t > 0.0)) throw std::invalid_argument("talbot_invert: t must be > 0");
  if (M < 4) throw std::invalid_argument("talbot_invert: M must be >= 4");
  using cplx = std::complex<double>;
  const double r = 2.0 * M / (5.0 * t);
  // theta = 0 term: s = r (real), contribution 0.5 * exp(r t) * F(r) * r.
  double acc = 0.5 * std::exp(r * t) * F(cplx{r, 0.0}).real();
  for (int k = 1; k < M; ++k) {
    const double theta = k * rlc::math::kPi / M;
    const double cot = std::cos(theta) / std::sin(theta);
    const cplx s{r * theta * cot, r * theta};
    // sigma(theta) = theta + (theta*cot - 1)*cot
    const double sigma = theta + (theta * cot - 1.0) * cot;
    const cplx amp = std::exp(s * t) * F(s) * cplx{1.0, sigma};
    acc += amp.real();
  }
  return acc * r / M;
}

std::vector<double> talbot_invert(const LaplaceFn& F,
                                  const std::vector<double>& times, int M) {
  std::vector<double> out;
  out.reserve(times.size());
  for (double t : times) out.push_back(talbot_invert(F, t, M));
  return out;
}

}  // namespace rlc::laplace
