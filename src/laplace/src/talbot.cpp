#include "rlc/laplace/talbot.hpp"

#include "rlc/base/cancel.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "rlc/base/simd.hpp"
#include "rlc/math/constants.hpp"
#include "rlc/obs/metrics.hpp"
#include "rlc/obs/trace.hpp"

namespace rlc::laplace {

namespace {

using cplx = std::complex<double>;

/// Talbot node s_k and path weight (1 + i sigma_k) for k in [0, M);
/// k = 0 is the real-axis point s = r with weight 1/2 (half the endpoint).
cplx talbot_node(double r, int k, int M) {
  if (k == 0) return cplx{r, 0.0};
  const double theta = k * rlc::math::kPi / M;
  const double cot = std::cos(theta) / std::sin(theta);
  return cplx{r * theta * cot, r * theta};
}

cplx talbot_weight(int k, int M) {
  if (k == 0) return cplx{0.5, 0.0};
  const double theta = k * rlc::math::kPi / M;
  const double cot = std::cos(theta) / std::sin(theta);
  // sigma(theta) = theta + (theta*cot - 1)*cot
  const double sigma = theta + (theta * cot - 1.0) * cot;
  return cplx{1.0, sigma};
}

/// The r-independent part of the contour: s_k = r * base_k with
/// base_k = theta cot(theta) + i theta, plus the path weights.  The engine
/// builds several same-M contours per threshold solve, so cache the last M
/// per thread and skip the trigonometry on rebuilds.
struct ContourBasis {
  int M = 0;
  std::vector<cplx> base, weight;
};

const ContourBasis& contour_basis(int M) {
  thread_local ContourBasis basis;
  if (basis.M != M) {
    basis.M = M;
    basis.base.assign(1, cplx{1.0, 0.0});
    basis.weight.assign(1, talbot_weight(0, M));
    for (int k = 1; k < M; ++k) {
      basis.base.push_back(talbot_node(1.0, k, M));
      basis.weight.push_back(talbot_weight(k, M));
    }
  }
  return basis;
}

/// Adapts a per-point evaluator onto the span-of-nodes signature, so the
/// per-point overloads are thin shims over the batch implementations.
struct PointAdapter {
  LaplaceFnRef f;
  void operator()(const double* s_re, const double* s_im, double* f_re,
                  double* f_im, std::size_t n) const {
    for (std::size_t i = 0; i < n; ++i) {
      const cplx v = f(cplx{s_re[i], s_im[i]});
      f_re[i] = v.real();
      f_im[i] = v.imag();
    }
  }
};

/// Per-thread SoA scratch for the batch per-t inversion: node coordinates,
/// F samples and exp(s t) lanes.  Reused across calls — the engine's
/// refinement loop inverts at a handful of t per solve.
struct InvertScratch {
  std::vector<double> sr, si, fr, fi, er, ei;
  void resize(std::size_t m) {
    sr.resize(m);
    si.resize(m);
    fr.resize(m);
    fi.resize(m);
    er.resize(m);
    ei.resize(m);
  }
};

void count_invert(int M) {
  auto& reg = obs::Registry::global();
  static const int kCalls = reg.counter("talbot.invert.calls");
  static const int kEvals = reg.counter("talbot.invert.f_evals");
  reg.add(kCalls);
  reg.add(kEvals, M);
}

void validate_invert(double t, int M) {
  if (!(t > 0.0)) throw std::invalid_argument("talbot_invert: t must be > 0");
  if (M < 4) throw std::invalid_argument("talbot_invert: M must be >= 4");
}

}  // namespace

double talbot_invert(LaplaceFnRef F, double t, int M) {
  validate_invert(t, M);
  count_invert(M);
  rlc::checkpoint();  // one stop point per inversion, not per node
  const double r = 2.0 * M / (5.0 * t);
  double acc = 0.0;
  for (int k = 0; k < M; ++k) {
    const cplx s = talbot_node(r, k, M);
    const cplx amp = std::exp(s * t) * F(s) * talbot_weight(k, M);
    acc += amp.real();
  }
  return acc * r / M;
}

double talbot_invert(BatchLaplaceFnRef F, double t, int M) {
  validate_invert(t, M);
  count_invert(M);
  rlc::checkpoint();
  const double r = 2.0 * M / (5.0 * t);
  const ContourBasis& basis = contour_basis(M);
  thread_local InvertScratch sc;
  const auto m = static_cast<std::size_t>(M);
  sc.resize(m);
  for (std::size_t k = 0; k < m; ++k) {
    sc.sr[k] = r * basis.base[k].real();
    sc.si[k] = r * basis.base[k].imag();
  }
  F(sc.sr.data(), sc.si.data(), sc.fr.data(), sc.fi.data(), m);
  // exp(s_k t) for the whole contour in one vectorized sweep; reuse the
  // node lanes as the scaled arguments.
  for (std::size_t k = 0; k < m; ++k) {
    sc.sr[k] *= t;
    sc.si[k] *= t;
  }
  simd::cexp_pd(simd::active_level(), sc.sr.data(), sc.si.data(),
                sc.er.data(), sc.ei.data(), m);
  double acc = 0.0;
  for (std::size_t k = 0; k < m; ++k) {
    const double wr = basis.weight[k].real();
    const double wi = basis.weight[k].imag();
    const double fwr = sc.fr[k] * wr - sc.fi[k] * wi;
    const double fwi = sc.fr[k] * wi + sc.fi[k] * wr;
    acc += sc.er[k] * fwr - sc.ei[k] * fwi;
  }
  return acc * r / M;
}

std::vector<double> talbot_invert(LaplaceFnRef F,
                                  const std::vector<double>& times, int M) {
  std::vector<double> out;
  out.reserve(times.size());
  for (double t : times) out.push_back(talbot_invert(F, t, M));
  return out;
}

std::vector<double> talbot_invert(BatchLaplaceFnRef F,
                                  const std::vector<double>& times, int M) {
  std::vector<double> out;
  out.reserve(times.size());
  for (double t : times) out.push_back(talbot_invert(F, t, M));
  return out;
}

TalbotContour::TalbotContour(BatchLaplaceFnRef F, double t_max, int M) {
  if (!(t_max > 0.0)) {
    throw std::invalid_argument("TalbotContour: t_max must be > 0");
  }
  if (M < 4) throw std::invalid_argument("TalbotContour: M must be >= 4");
  RLC_TRACE_SPAN("talbot_contour");
  rlc::checkpoint();  // one stop point per shared contour build
  auto& reg = obs::Registry::global();
  static const int kContours = reg.counter("talbot.contours");
  static const int kEvalsPerContour =
      reg.histogram("talbot.contour.f_evals", 4.0, 4096.0, 20);
  reg.add(kContours);
  reg.record(kEvalsPerContour, static_cast<double>(M));
  t_max_ = t_max;
  r_ = 2.0 * M / (5.0 * t_max);
  const auto m = static_cast<std::size_t>(M);
  const ContourBasis& basis = contour_basis(M);
  node_re_.resize(m);
  node_im_.resize(m);
  weight_re_.resize(m);
  weight_im_.resize(m);
  for (std::size_t k = 0; k < m; ++k) {
    node_re_[k] = r_ * basis.base[k].real();
    node_im_[k] = r_ * basis.base[k].imag();
  }
  // One span evaluation for all M samples; the weights then fold in the
  // path factors (1 + i sigma_k) in place.
  F(node_re_.data(), node_im_.data(), weight_re_.data(), weight_im_.data(),
    m);
  for (std::size_t k = 0; k < m; ++k) {
    const double fr = weight_re_[k];
    const double fi = weight_im_[k];
    const double wr = basis.weight[k].real();
    const double wi = basis.weight[k].imag();
    weight_re_[k] = fr * wr - fi * wi;
    weight_im_[k] = fr * wi + fi * wr;
  }
}

TalbotContour::TalbotContour(LaplaceFnRef F, double t_max, int M)
    : TalbotContour(BatchLaplaceFnRef(PointAdapter{F}), t_max, M) {}

double TalbotContour::eval(double t) const {
  // Allow a hair past t_max so root-finders can probe the upper bracket
  // endpoint without tripping on rounding.
  if (!(t > 0.0) || t > t_max_ * (1.0 + 1e-12)) {
    throw std::invalid_argument("TalbotContour::eval: t outside (0, t_max]");
  }
  // Re(exp(s_k t) w_k) on plain doubles: exp(Re s_k t) * (cos(Im s_k t)
  // Re w_k - sin(Im s_k t) Im w_k).  This is eval's entire cost, so keep it
  // free of complex arithmetic.
  double acc = 0.0;
  const std::size_t m = weight_re_.size();
  for (std::size_t k = 0; k < m; ++k) {
    const double e = std::exp(node_re_[k] * t);
    const double ph = node_im_[k] * t;
    acc += e * (std::cos(ph) * weight_re_[k] - std::sin(ph) * weight_im_[k]);
  }
  return acc * r_ / static_cast<double>(m);
}

std::vector<double> talbot_invert_window(BatchLaplaceFnRef F,
                                         const std::vector<double>& times,
                                         double t_max, int M, double lambda) {
  if (!(lambda >= 1.0)) {
    throw std::invalid_argument("talbot_invert_window: lambda must be >= 1");
  }
  const double t_min = t_max / lambda;
  for (double t : times) {
    if (!(t > 0.0) || t < t_min * (1.0 - 1e-12) ||
        t > t_max * (1.0 + 1e-12)) {
      throw std::invalid_argument(
          "talbot_invert_window: every time must lie in [t_max/lambda, "
          "t_max]");
    }
  }
  const TalbotContour contour(F, t_max, M);
  std::vector<double> out;
  out.reserve(times.size());
  for (double t : times) out.push_back(contour.eval(t));
  return out;
}

std::vector<double> talbot_invert_window(LaplaceFnRef F,
                                         const std::vector<double>& times,
                                         double t_max, int M, double lambda) {
  const PointAdapter adapter{F};
  return talbot_invert_window(BatchLaplaceFnRef(adapter), times, t_max, M,
                              lambda);
}

}  // namespace rlc::laplace
