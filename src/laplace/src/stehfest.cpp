#include "rlc/laplace/stehfest.hpp"

#include <cmath>
#include <stdexcept>

#include "rlc/obs/metrics.hpp"

namespace rlc::laplace {

std::vector<double> stehfest_weights(int N) {
  if (N < 2 || N % 2 != 0) {
    throw std::invalid_argument("stehfest_weights: N must be even and >= 2");
  }
  auto factorial = [](int m) {
    double f = 1.0;
    for (int i = 2; i <= m; ++i) f *= i;
    return f;
  };
  std::vector<double> v(N + 1, 0.0);  // 1-based
  const int half = N / 2;
  for (int k = 1; k <= N; ++k) {
    double sum = 0.0;
    const int jmin = (k + 1) / 2;
    const int jmax = std::min(k, half);
    for (int j = jmin; j <= jmax; ++j) {
      const double num = std::pow(static_cast<double>(j), half) * factorial(2 * j);
      const double den = factorial(half - j) * factorial(j) * factorial(j - 1) *
                         factorial(k - j) * factorial(2 * j - k);
      sum += num / den;
    }
    v[k] = ((k + half) % 2 == 0 ? 1.0 : -1.0) * sum;
  }
  return v;
}

namespace {

double stehfest_invert_with_weights(const std::function<double(double)>& F_real,
                                    double t, const std::vector<double>& v) {
  if (!(t > 0.0)) throw std::invalid_argument("stehfest_invert: t must be > 0");
  const int N = static_cast<int>(v.size()) - 1;
  auto& reg = obs::Registry::global();
  static const int kInversions = reg.counter("stehfest.inversions");
  static const int kEvals = reg.counter("stehfest.f_evals");
  reg.add(kInversions);
  reg.add(kEvals, N);
  const double ln2_t = std::log(2.0) / t;
  double acc = 0.0;
  for (int k = 1; k <= N; ++k) acc += v[k] * F_real(k * ln2_t);
  return acc * ln2_t;
}

}  // namespace

double stehfest_invert(const std::function<double(double)>& F_real, double t,
                       int N) {
  return stehfest_invert_with_weights(F_real, t, stehfest_weights(N));
}

std::vector<double> stehfest_invert(const std::function<double(double)>& F_real,
                                    const std::vector<double>& times, int N) {
  const auto v = stehfest_weights(N);
  std::vector<double> out;
  out.reserve(times.size());
  for (double t : times) out.push_back(stehfest_invert_with_weights(F_real, t, v));
  return out;
}

}  // namespace rlc::laplace
