#include "rlc/laplace/euler.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "rlc/base/cancel.hpp"
#include "rlc/math/constants.hpp"
#include "rlc/obs/metrics.hpp"

namespace rlc::laplace {

namespace {

using cplx = std::complex<double>;

void validate(double t, const EulerOptions& o) {
  if (!(t > 0.0)) throw std::invalid_argument("euler_invert: t must be > 0");
  if (o.burn_in < 1) {
    throw std::invalid_argument("euler_invert: burn_in must be >= 1");
  }
  if (o.terms < 0) {
    throw std::invalid_argument("euler_invert: terms must be >= 0");
  }
  if (!(o.decay > 0.0)) {
    throw std::invalid_argument("euler_invert: decay must be > 0");
  }
}

void count_invert(std::size_t times, std::size_t nodes) {
  auto& reg = obs::Registry::global();
  static const int kCalls = reg.counter("euler.invert.calls");
  static const int kEvals = reg.counter("euler.invert.f_evals");
  reg.add(kCalls, static_cast<std::int64_t>(times));
  reg.add(kEvals, static_cast<std::int64_t>(times * nodes));
}

/// Euler-accelerated reduction of the alternating series for ONE time
/// point, given the F samples at its nodes s_j = (decay/2 + i pi j)/t laid
/// out as SoA lanes [f_re[j], f_im[j]] for j in [0, nodes).  exp(s_j t) =
/// e^{decay/2} (-1)^j, so only the real parts and the sign pattern enter.
double reduce(const double* f_re, double t, const EulerOptions& o) {
  const int n = o.burn_in;
  const int m = o.terms;
  // Partial sums s_n .. s_{n+m} of  F0/2 + sum_j (-1)^j Re F_j.
  double acc = 0.5 * f_re[0];
  double tail_acc = 0.0;  // binomial-weighted sum of the tail partials
  double bin = 1.0;       // C(m, j - n), advanced once per tail index
  for (int j = 1; j <= n + m; ++j) {
    acc += ((j & 1) != 0 ? -1.0 : 1.0) * f_re[j];
    if (j >= n) {
      tail_acc += bin * acc;
      const int i = j - n;
      bin = bin * static_cast<double>(m - i) / static_cast<double>(i + 1);
    }
  }
  return std::exp(0.5 * o.decay) / t * std::ldexp(tail_acc, -m);
}

}  // namespace

int euler_nodes(const EulerOptions& opts) {
  return opts.burn_in + opts.terms + 1;
}

std::vector<double> euler_invert(BatchLaplaceFnRef F,
                                 const std::vector<double>& times,
                                 const EulerOptions& opts) {
  for (double t : times) validate(t, opts);
  const auto nodes = static_cast<std::size_t>(euler_nodes(opts));
  count_invert(times.size(), nodes);
  rlc::checkpoint();  // one stop point per waveform, not per node
  const std::size_t total = times.size() * nodes;
  std::vector<double> sr(total), si(total), fr(total), fi(total);
  for (std::size_t i = 0; i < times.size(); ++i) {
    const double a = 0.5 * opts.decay / times[i];
    const double w = rlc::math::kPi / times[i];
    for (std::size_t j = 0; j < nodes; ++j) {
      sr[i * nodes + j] = a;
      si[i * nodes + j] = w * static_cast<double>(j);
    }
  }
  // One span call covering every node of every time point.
  F(sr.data(), si.data(), fr.data(), fi.data(), total);
  std::vector<double> out(times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    out[i] = reduce(fr.data() + i * nodes, times[i], opts);
  }
  return out;
}

double euler_invert(BatchLaplaceFnRef F, double t, const EulerOptions& opts) {
  return euler_invert(F, std::vector<double>{t}, opts)[0];
}

namespace {

/// Per-point adapter mirroring talbot.cpp's: lets the LaplaceFnRef
/// overloads share the batch implementation.
struct PointAdapter {
  LaplaceFnRef f;
  void operator()(const double* s_re, const double* s_im, double* f_re,
                  double* f_im, std::size_t n) const {
    for (std::size_t i = 0; i < n; ++i) {
      const cplx v = f(cplx{s_re[i], s_im[i]});
      f_re[i] = v.real();
      f_im[i] = v.imag();
    }
  }
};

}  // namespace

double euler_invert(LaplaceFnRef F, double t, const EulerOptions& opts) {
  const PointAdapter adapter{F};
  return euler_invert(BatchLaplaceFnRef(adapter), t, opts);
}

std::vector<double> euler_invert(LaplaceFnRef F,
                                 const std::vector<double>& times,
                                 const EulerOptions& opts) {
  const PointAdapter adapter{F};
  return euler_invert(BatchLaplaceFnRef(adapter), times, opts);
}

}  // namespace rlc::laplace
