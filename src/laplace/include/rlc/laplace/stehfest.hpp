#pragma once

/// \file stehfest.hpp
/// Gaver–Stehfest inverse Laplace transform.  Only needs F on the real
/// axis, which makes it a useful independent cross-check of the Talbot
/// inversion for smooth (non-oscillatory) responses; it is known to lose
/// accuracy for strongly underdamped responses, which the tests document.

#include <functional>
#include <vector>

namespace rlc::laplace {

/// Invert F (real-axis samples only) at time t > 0 using N terms
/// (N even, typically 12-18; larger N amplifies roundoff).
double stehfest_invert(const std::function<double(double)>& F_real, double t,
                       int N = 14);

/// Invert F on a vector of time points.  The weights are computed once and
/// shared; each time still needs its own N real-axis samples of F (the
/// Stehfest abscissae scale with 1/t), so this is an API-surface mirror of
/// the windowed Talbot inverter, used as its independent cross-check.
std::vector<double> stehfest_invert(const std::function<double(double)>& F_real,
                                    const std::vector<double>& times,
                                    int N = 14);

/// Stehfest weights V_k for given even N (exposed for tests).
std::vector<double> stehfest_weights(int N);

}  // namespace rlc::laplace
