#pragma once

/// \file stehfest.hpp
/// Gaver–Stehfest inverse Laplace transform.  Only needs F on the real
/// axis, which makes it a useful independent cross-check of the Talbot
/// inversion for smooth (non-oscillatory) responses; it is known to lose
/// accuracy for strongly underdamped responses, which the tests document.

#include <functional>
#include <vector>

namespace rlc::laplace {

/// Invert F (real-axis samples only) at time t > 0 using N terms
/// (N even, typically 12-18; larger N amplifies roundoff).
double stehfest_invert(const std::function<double(double)>& F_real, double t,
                       int N = 14);

/// Stehfest weights V_k for given even N (exposed for tests).
std::vector<double> stehfest_weights(int N);

}  // namespace rlc::laplace
