#pragma once

/// \file talbot.hpp
/// Numerical inverse Laplace transform by the fixed-Talbot method
/// (Abate & Valko).  Used to recover the *exact* time-domain step response
/// of the driver-interconnect-load structure from Eq. (1) so the accuracy of
/// the second-order Pade model can be quantified (DESIGN.md, ablation 1).
///
/// Two evaluation modes:
///   * per-t contour (talbot_invert): the contour radius r = 2M/(5t) is
///     re-tuned for every time point — maximum accuracy, M transfer
///     evaluations per point;
///   * shared-contour window (TalbotContour / talbot_invert_window): the
///     contour is fixed at the window's t_max and ALL times in
///     [t_max/lambda, t_max] are recovered from the same M samples F(s_k).
///     An N-point waveform then costs M transfer evaluations instead of
///     N*M.  Accuracy at a time t inside the window behaves like a per-t
///     inversion with ~M*(t/t_max) contour points, so the window ratio
///     lambda trades evaluations against accuracy at the window foot.
///
/// Two evaluator signatures, both non-owning FunctionRef views:
///   * per-point (LaplaceFnRef): cplx F(cplx s) — simple, M calls per
///     contour;
///   * span-of-nodes (BatchLaplaceFnRef): fill F at n SoA nodes in ONE
///     call.  This is the primary path — a batched evaluator (e.g.
///     rlc::tline::BatchTransferEvaluator) amortizes its vectorized
///     transcendental core over the whole contour instead of being called
///     through type-erased dispatch M times.  The per-point overloads
///     adapt onto it.
///
/// Requirements: F(s) analytic for Re(s) > 0 with all singularities in the
/// open left half-plane (true for the passive RC/RLC structures here) and
/// f real-valued.

#include <complex>
#include <cstddef>
#include <functional>
#include <vector>

#include "rlc/base/function_ref.hpp"

namespace rlc::laplace {

/// Owning per-point evaluator type, kept for callers that store F.
using LaplaceFn = std::function<std::complex<double>(std::complex<double>)>;

/// Non-owning per-point evaluator view: must accept complex s with
/// Re(s) > 0.  Binds to lambdas, LaplaceFn, functors — no allocation.
using LaplaceFnRef =
    FunctionRef<std::complex<double>(std::complex<double>)>;

/// Non-owning span-of-nodes (SoA) evaluator view:
///   F(s_re, s_im, f_re, f_im, n) writes F(s_i) into f_re[i] + i f_im[i]
/// for the n nodes s_i = s_re[i] + i s_im[i].
using BatchLaplaceFnRef = FunctionRef<void(
    const double* s_re, const double* s_im, double* f_re, double* f_im,
    std::size_t n)>;

/// Invert F at a single time t > 0 with M Talbot contour points.
/// M ~ 32-64 gives ~10-12 significant digits for smooth f.
double talbot_invert(LaplaceFnRef F, double t, int M = 48);

/// Batch form: the M node samples come from one span evaluation and the
/// M complex exponentials exp(s_k t) from one vectorized sweep.
double talbot_invert(BatchLaplaceFnRef F, double t, int M = 48);

/// Invert F on a vector of time points (each with its own contour).
std::vector<double> talbot_invert(LaplaceFnRef F,
                                  const std::vector<double>& times, int M = 48);
std::vector<double> talbot_invert(BatchLaplaceFnRef F,
                                  const std::vector<double>& times, int M = 48);

/// A Talbot contour fixed at t_max with its F samples cached: construction
/// costs the M transfer evaluations, after which eval(t) for any
/// t in (0, t_max] costs only M complex exponentials.  This is the kernel
/// of the fast exact-waveform engine (rlc::core exact_* fast paths).
class TalbotContour {
 public:
  /// Samples F at the M contour nodes for the contour tuned to t_max —
  /// one span call, SoA end to end.  This is the primary constructor.
  /// Throws std::invalid_argument for t_max <= 0 or M < 4.
  TalbotContour(BatchLaplaceFnRef F, double t_max, int M = 48);

  /// Per-point adapter: same contour, F called node by node.
  TalbotContour(LaplaceFnRef F, double t_max, int M = 48);

  double t_max() const noexcept { return t_max_; }
  int points() const noexcept { return static_cast<int>(weight_re_.size()); }

  /// f(t) from the cached samples.  Valid for 0 < t <= t_max (a small
  /// relative overshoot past t_max is tolerated); accuracy degrades as
  /// t/t_max shrinks — stay within the window ratio you validated.
  /// Throws std::invalid_argument outside (0, t_max].
  double eval(double t) const;

 private:
  // Flat real/imaginary arrays: eval() only ever needs the real part of
  // exp(s_k t) * w_k, so it runs on plain doubles (one real exp + sin/cos
  // per node) instead of full complex arithmetic.
  double t_max_ = 0.0;
  double r_ = 0.0;  ///< contour radius 2M/(5 t_max)
  std::vector<double> node_re_, node_im_;      ///< contour points s_k
  std::vector<double> weight_re_, weight_im_;  ///< F(s_k) * (1 + i sigma_k)
};

/// Invert F at all `times` from ONE shared contour fixed at t_max: M
/// transfer evaluations total.  Every time must lie in
/// [t_max/lambda, t_max]; lambda >= 1 bounds the window so callers cannot
/// silently push times into the inaccurate deep-foot regime.  Throws
/// std::invalid_argument on a time outside the window or lambda < 1.
std::vector<double> talbot_invert_window(LaplaceFnRef F,
                                         const std::vector<double>& times,
                                         double t_max, int M = 48,
                                         double lambda = 4.0);
std::vector<double> talbot_invert_window(BatchLaplaceFnRef F,
                                         const std::vector<double>& times,
                                         double t_max, int M = 48,
                                         double lambda = 4.0);

}  // namespace rlc::laplace
