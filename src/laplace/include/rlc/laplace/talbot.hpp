#pragma once

/// \file talbot.hpp
/// Numerical inverse Laplace transform by the fixed-Talbot method
/// (Abate & Valko).  Used to recover the *exact* time-domain step response
/// of the driver-interconnect-load structure from Eq. (1) so the accuracy of
/// the second-order Pade model can be quantified (DESIGN.md, ablation 1).
///
/// Requirements: F(s) analytic for Re(s) > 0 with all singularities in the
/// open left half-plane (true for the passive RC/RLC structures here) and
/// f real-valued.

#include <complex>
#include <functional>
#include <vector>

namespace rlc::laplace {

/// F: Laplace-domain function; must accept complex s with Re(s) > 0.
using LaplaceFn = std::function<std::complex<double>(std::complex<double>)>;

/// Invert F at a single time t > 0 with M Talbot contour points.
/// M ~ 32-64 gives ~10-12 significant digits for smooth f.
double talbot_invert(const LaplaceFn& F, double t, int M = 48);

/// Invert F on a vector of time points (each independent).
std::vector<double> talbot_invert(const LaplaceFn& F,
                                  const std::vector<double>& times, int M = 48);

}  // namespace rlc::laplace
