#pragma once

/// \file euler.hpp
/// Numerical inverse Laplace transform by the Euler method (Abate & Whitt):
/// the trapezoidal discretization of the Bromwich integral on the vertical
/// line Re(s) = A/(2t), summed as an alternating Fourier series and
/// accelerated with Euler (binomial) averaging of the last `terms` partial
/// sums.
///
/// This complements the fixed-Talbot inverter (talbot.hpp).  Talbot's
/// deformed contour is extremely accurate when every singularity of F sits
/// near the negative real axis (overdamped / RC-like responses), but it
/// degrades to ~1e-2 absolute error on underdamped RLC responses whose
/// poles hug the imaginary axis — the contour cannot wrap around them.  The
/// Euler method keeps the contour vertical, so oscillatory time functions
/// converge just as well as monotone ones: with the defaults below the
/// discretization error is ~e^{-decay} ~ 1e-8 for |f| = O(1), and the
/// crosstalk waveform cross-checks against the MNA reference hold to the
/// ladder's own discretization error.
///
/// The price is per-t node sets: s_j = (decay/2 + i pi j) / t, so a
/// waveform of K times costs K * (burn_in + terms + 1) transfer
/// evaluations.  The batch overloads gather ALL nodes of ALL times into a
/// single span evaluation, so a vectorized evaluator (e.g.
/// rlc::tline::BatchTransferEvaluator) amortizes its SIMD transcendental
/// core over the whole waveform in one call; exp(s_j t) itself is free
/// (e^{decay/2} (-1)^j by construction).
///
/// Requirements: F analytic for Re(s) > 0, f real-valued and O(1) at the
/// evaluated times (the wrap-around aliasing term scales with
/// e^{-decay} * sup|f|).

#include <complex>
#include <cstddef>
#include <vector>

#include "rlc/laplace/talbot.hpp"  // LaplaceFnRef / BatchLaplaceFnRef

namespace rlc::laplace {

/// Tuning of the Euler inversion.  Defaults give ~8 significant digits for
/// smooth O(1) step responses; raising `decay` past ~2*16 ln 10 / 2 trades
/// aliasing error against roundoff amplification (e^{decay/2} ~ 1e4 with
/// the default is far from the double-precision cliff).
struct EulerOptions {
  int burn_in = 32;     ///< un-averaged leading partial sums (Abate-Whitt n)
  int terms = 14;       ///< binomially averaged tail terms (Abate-Whitt m)
  double decay = 18.4;  ///< Bromwich abscissa parameter A; error ~ e^{-A}
};

/// Nodes per time point: burn_in + terms + 1 transfer evaluations.
int euler_nodes(const EulerOptions& opts);

/// Invert F at a single time t > 0.
double euler_invert(LaplaceFnRef F, double t, const EulerOptions& opts = {});
double euler_invert(BatchLaplaceFnRef F, double t,
                    const EulerOptions& opts = {});

/// Invert F at a vector of times.  The BatchLaplaceFnRef overload issues
/// ONE span evaluation covering every node of every time point.
std::vector<double> euler_invert(LaplaceFnRef F,
                                 const std::vector<double>& times,
                                 const EulerOptions& opts = {});
std::vector<double> euler_invert(BatchLaplaceFnRef F,
                                 const std::vector<double>& times,
                                 const EulerOptions& opts = {});

}  // namespace rlc::laplace
