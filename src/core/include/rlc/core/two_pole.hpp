#pragma once

/// \file two_pole.hpp
/// The two-pole system implied by the Pade coefficients: pole locations,
/// damping classification (Figure 2), and the normalized step response
///
///   v(t) = 1 - [ s2 exp(s1 t) - s1 exp(s2 t) ] / (s2 - s1),  v(inf) = 1.
///
/// Works transparently for real (overdamped) and complex-conjugate
/// (underdamped) poles; a series form handles the nearly-critically-damped
/// case where the generic formula suffers catastrophic cancellation.

#include <complex>

#include "rlc/core/pade.hpp"

namespace rlc::core {

/// Damping regime of the two-pole system (sign of b1^2 - 4 b2).
enum class Damping { kOverdamped, kCriticallyDamped, kUnderdamped };

class TwoPole {
 public:
  /// Build from Pade coefficients.  Requires b1 > 0 and b2 > 0 (passive,
  /// stable configuration); throws std::domain_error otherwise.
  explicit TwoPole(const PadeCoeffs& pc);

  double b1() const { return b1_; }
  double b2() const { return b2_; }
  std::complex<double> s1() const { return s1_; }
  std::complex<double> s2() const { return s2_; }

  /// b1^2 - 4 b2 (< 0: underdamped, oscillatory step response).
  double discriminant() const { return b1_ * b1_ - 4.0 * b2_; }

  /// Classify with a relative tolerance on the discriminant.
  Damping damping(double rel_tol = 1e-9) const;

  /// Undamped natural frequency omega_n = 1/sqrt(b2) [rad/s].
  double natural_frequency() const;

  /// Damping ratio zeta = b1 / (2 sqrt(b2)); zeta < 1 means underdamped.
  double damping_ratio() const;

  /// Normalized step response v(t) (unit final value), v(0) = 0.
  double step_response(double t) const;

  /// dv/dt.
  double step_response_derivative(double t) const;

  /// Peak overshoot above the final value: max_t v(t) - 1 (0 for
  /// non-underdamped systems).  For underdamped: exp(-zeta pi / sqrt(1-zeta^2)).
  double overshoot() const;

  /// Depth of the first post-overshoot dip below the final value:
  /// 1 - v(2 pi / omega_d) for underdamped systems, 0 otherwise.  This is
  /// the "undershoot" that can falsely switch a downstream gate
  /// (Section 3.3.1): on the complementary falling transition the output
  /// rises by the same amount above ground.
  double undershoot() const;

  /// Damped oscillation frequency omega_d = |Im s1| (0 if overdamped).
  double damped_frequency() const;

 private:
  double b1_, b2_;
  std::complex<double> s1_, s2_;
};

}  // namespace rlc::core
