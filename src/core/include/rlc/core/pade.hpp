#pragma once

/// \file pade.hpp
/// Second-order Pade expansion of the driver-interconnect-load transfer
/// function (Eq. 2 of the paper):
///
///   H(s) ~ 1 / (1 + s b1 + s^2 b2)
///
///   b1 = Rs (Cp + Cl) + r c h^2 / 2 + Rs c h + Cl r h
///   b2 = l c h^2 / 2 + r^2 c^2 h^4 / 24 + Rs (Cp + Cl) r c h^2 / 2
///        + (Rs c h + Cl r h) r c h^2 / 6 + Cl l h + Rs Cp Cl r h
///
/// with Rs = rs/k, Cp = cp*k, Cl = c0*k.  The (h, k) optimizer needs the
/// analytic sensitivities of b1 and b2 with respect to segment length h and
/// repeater size k; these are provided and verified against finite
/// differences in the test suite.

#include "rlc/core/technology.hpp"
#include "rlc/tline/line.hpp"
#include "rlc/tline/transfer.hpp"

namespace rlc::core {

/// First two denominator moments of the Pade-approximated transfer function.
struct PadeCoeffs {
  double b1 = 0.0;  ///< [s]
  double b2 = 0.0;  ///< [s^2]
};

/// Sensitivities of (b1, b2) to segment length h and repeater size k.
struct PadeDerivs {
  double db1_dh = 0.0;
  double db1_dk = 0.0;
  double db2_dh = 0.0;
  double db2_dk = 0.0;
};

/// Pade coefficients for an explicit driver/load (Eq. 2).
PadeCoeffs pade_coeffs(const tline::LineParams& line, double h,
                       const tline::DriverLoad& dl);

/// Pade coefficients as a function of (h, k) with the technology's repeater.
PadeCoeffs pade_coeffs_hk(const Repeater& rep, const tline::LineParams& line,
                          double h, double k);

/// Analytic d(b1,b2)/d(h,k) for the technology's repeater scaling.
PadeDerivs pade_derivs_hk(const Repeater& rep, const tline::LineParams& line,
                          double h, double k);

/// Evaluate the Pade-approximated transfer function 1/(1 + s b1 + s^2 b2).
std::complex<double> pade_transfer(const PadeCoeffs& pc, std::complex<double> s);

}  // namespace rlc::core
