#pragma once

/// \file power.hpp
/// Repeater-chain power models for the (h, k) methodology: the second
/// objective axis next to the paper's delay-per-unit-length.  Following the
/// RIP decomposition (dynamic + short-circuit + leakage, see PAPERS.md),
/// every term is expressed PER UNIT LENGTH of line so it composes directly
/// with delay_per_length:
///
///   * dynamic:       a f Vdd^2 [ c + (c0 + cp) k / h ]       (C V^2 f)
///   * short-circuit: a f ksc (Vdd - 2 Vt)^3 / Vdd [ ... ]    (Veendrick)
///   * leakage:       k i_off Vdd / h                         (per repeater)
///
/// where a is the switching activity, f the switching rate, c the wire
/// capacitance per length, (c0 + cp) the repeater input + parasitic
/// capacitance per unit size and i_off the minimum-repeater off current.
/// Every size-dependent term scales with the repeater area per unit length
/// k / h, so power falls monotonically with h and rises with k — the
/// delay-power trade the constrained optimizer and the Pareto sweep in
/// optimize_api.hpp work against.
///
/// Technology (Table 1) carries no leakage or threshold data, so the model
/// derives both from the node the same way Technology::interpolated derives
/// its electrical parameters: a constant-ratio-per-generation law anchored
/// at the two calibrated nodes.

#include "rlc/core/technology.hpp"

namespace rlc::core {

/// Switching environment of a power estimate.  The defaults model a busy
/// global wire: 1 GHz switching at activity 0.15, Vt = Vdd / 5.
struct PowerEnv {
  double f_clock = 1.0e9;    ///< switching rate [Hz]
  double activity = 0.15;    ///< switching activity factor, in (0, 1]
  double vt_fraction = 0.2;  ///< Vt / Vdd for the short-circuit term

  bool operator==(const PowerEnv&) const = default;
};

/// Power of the repeated line per unit length [W/m], by mechanism.
struct PowerBreakdown {
  double dynamic = 0.0;        ///< C V^2 f switching power [W/m]
  double short_circuit = 0.0;  ///< crowbar power during transitions [W/m]
  double leakage = 0.0;        ///< subthreshold leakage [W/m]

  double total() const { return dynamic + short_circuit + leakage; }
};

/// Calibrated per-technology power model.  Build once via from_technology,
/// then evaluate per (h, k); evaluation is pure arithmetic (no solves), so
/// grid sweeps are cheap.
struct PowerModel {
  double vdd = 0.0;      ///< supply [V]
  double vt = 0.0;       ///< threshold [V] (vt_fraction * vdd)
  double activity = 0.0; ///< switching activity
  double f_clock = 0.0;  ///< switching rate [Hz]
  double c_wire = 0.0;   ///< wire capacitance per length [F/m]
  double c_rep = 0.0;    ///< repeater cap per unit size, c0 + cp [F]
  double i_leak0 = 0.0;  ///< minimum-repeater off current [A]

  /// Derive the model from a technology node.  Leakage follows the same
  /// constant-ratio-per-generation law as Technology::interpolated,
  /// anchored at 5 nA (250 nm) and 50 nA (100 nm).  Throws
  /// std::invalid_argument on a non-positive env.
  static PowerModel from_technology(const Technology& tech,
                                    const PowerEnv& env = {});

  /// Chain power per unit length at segmentation h [m] and size k.
  /// Throws std::domain_error unless h > 0 and k > 0.
  PowerBreakdown per_length(double h, double k) const;
};

/// Minimum-repeater off current for a node [A] (the leakage anchor law;
/// exposed for tests and trend tables).
double leakage_current_for_node(double node_m);

/// Convenience: total chain power per unit length [W/m] at (h, k).
double chain_power_per_length(const Technology& tech, double h, double k,
                              const PowerEnv& env = {});

}  // namespace rlc::core
