#pragma once

/// \file tradeoff.hpp
/// Constrained optimization variants and the delay/energy/area trade-off —
/// the practical extensions of the paper's methodology (repeater libraries
/// quantize k; power budgets argue for smaller-than-delay-optimal buffers).
///
/// All delays are f*100% threshold delays from the same two-pole machinery
/// as the unconstrained optimizer.

#include <vector>

#include "rlc/core/optimizer.hpp"

namespace rlc::core {

/// Minimize tau/h over h only, with the repeater size fixed (e.g. the
/// nearest size available in a cell library).  Brent minimization on a
/// bracketed interval around the RC optimum.
OptimResult optimize_h_for_fixed_k(const Repeater& rep,
                                   const tline::LineParams& line, double k,
                                   double f = 0.5);

/// Minimize tau/h over k only, with the segment length fixed (e.g. set by
/// floorplan constraints on where repeaters can be placed).
OptimResult optimize_k_for_fixed_h(const Repeater& rep,
                                   const tline::LineParams& line, double h,
                                   double f = 0.5);

/// Per-unit-length dynamic switching energy of a buffered line at VDD:
/// E/len = (c + (c0 + cp) k / h) * VDD^2   [J/m per transition].
double energy_per_length(const Technology& tech, double h, double k);

/// Repeater area proxy per unit length: k / h (minimum-inverter areas per
/// meter of route).
double area_per_length(double h, double k);

/// One point on the delay/energy/area trade-off curve.
struct TradeoffPoint {
  double k = 0.0;
  double h = 0.0;
  double delay_per_length = 0.0;   ///< [s/m]
  double energy_per_length = 0.0;  ///< [J/m] per transition
  double area_per_length = 0.0;    ///< [1/m]
};

/// Sweep repeater size from `k_fraction_min` * k_opt up to k_opt, re-solving
/// the optimal segment length for each size: the classic delay-vs-energy
/// Pareto front for inductance-aware repeater insertion.
std::vector<TradeoffPoint> delay_energy_tradeoff(const Technology& tech,
                                                 double l, int n_points = 10,
                                                 double k_fraction_min = 0.2,
                                                 double f = 0.5);

}  // namespace rlc::core
