#pragma once

/// \file optimize_api.hpp
/// The unified optimizer entry point.  The optimizer surface grew four
/// parallel entry points (optimize_rlc, optimize_rlc_sweep,
/// optimize_rlc_noise_constrained, try_optimize_*) before a second
/// objective arrived; this header collapses them into ONE typed
/// request/response pair so objectives and constraints compose instead of
/// multiplying entry points:
///
///   OptimizeRequest{objective, l, constraints, domain, optim}
///     -> StatusOr<OptimizeResponse>
///
/// * objective kDelay reproduces the classic solves bit-for-bit (scalar,
///   coupled quiet-neighbour, noise-constrained — selected by conductors
///   and constraints.noise_vmax exactly as before).
/// * objective kPower minimizes total chain power (power.hpp) subject to a
///   delay-slack constraint delay <= (1 + eps) * T_opt, where T_opt is the
///   delay-optimal delay per unit length.  The solve mirrors the
///   noise-constrained shape: an inner per-k largest-feasible-h boundary
///   solve (Brent root on the upper branch of the U-shaped delay curve)
///   under an outer Brent minimization of the boundary power over k.
/// * pareto_front sweeps the same bounded (h, k) domain and returns the
///   non-dominated delay-power set, sorted by delay with strictly
///   decreasing power.
///
/// The (h, k) domain is a bounded log-spaced box around the delay optimum,
/// shared verbatim between the constrained solve, the Pareto sweep and the
/// brute-force cross-checks: the eps = inf solve returns the domain's
/// minimum-power corner using the same grid arithmetic, so it is bitwise
/// the minimum-power grid point (pinned by tests).
///
/// The legacy entry points in optimizer.hpp remain as thin documented
/// wrappers/kernels over this one (see DESIGN.md "Objective API").

#include <vector>

#include "rlc/base/status.hpp"
#include "rlc/core/optimizer.hpp"
#include "rlc/core/power.hpp"
#include "rlc/core/technology.hpp"
#include "rlc/exec/thread_pool.hpp"

namespace rlc::core {

enum class Objective { kDelay, kPower };

/// Constraint set of an optimize() call.  Inactive defaults: an infinite
/// delay slack never binds, a zero noise budget means "no budget".
struct OptimizeConstraints {
  /// Power objective: allowed delay degradation over the delay optimum;
  /// the solve enforces delay <= (1 + delay_slack_eps) * T_opt.  0 returns
  /// the delay-optimal point bitwise; +inf (default) reduces to the
  /// unconstrained minimum-power corner of the domain.
  double delay_slack_eps = std::numeric_limits<double>::infinity();

  /// Delay objective with conductors >= 2: peak-noise budget [V]
  /// (optimize_rlc_noise_constrained semantics).  0 means unconstrained.
  double noise_vmax = 0.0;

  bool operator==(const OptimizeConstraints&) const = default;
};

/// Bounded log-spaced (h, k) box around the delay optimum (h_opt, k_opt):
/// grid value i of n is ref * s_min * (s_max / s_min)^(i / (n - 1)).  This
/// is both the feasible domain of the power solve and the Pareto/brute-
/// force grid — sharing it (and its exact arithmetic via log_grid) is what
/// makes the corner cases of the two agree bitwise.
struct OptimizeDomain {
  double h_min_scale = 0.25;  ///< lower h bound, x h_opt
  double h_max_scale = 4.0;   ///< upper h bound, x h_opt
  double k_min_scale = 0.125; ///< lower k bound, x k_opt
  double k_max_scale = 2.0;   ///< upper k bound, x k_opt
  int h_points = 25;          ///< grid columns (>= 2)
  int k_points = 25;          ///< grid rows (>= 2)

  rlc::Status validate() const;

  bool operator==(const OptimizeDomain&) const = default;
};

/// The log-spaced grid shared by the solver and the sweeps: point i is
/// ref * scale_min * (scale_max / scale_min)^(i / (points - 1)).
std::vector<double> log_grid(double ref, double scale_min, double scale_max,
                             int points);

/// One typed optimizer request.  The delay-objective defaults reproduce
/// try_optimize_rlc(tech, l, optim) exactly.
struct OptimizeRequest {
  Objective objective = Objective::kDelay;
  double l = 0.0;                   ///< per-unit-length inductance [H/m]
  std::size_t conductors = 1;       ///< 1 scalar; 2..8 symmetric bus
  double coupling_cc = 0.0;         ///< line-to-line capacitance [F/m]
  double coupling_km = 0.0;         ///< inductive coupling coefficient
  OptimizeConstraints constraints{};
  PowerEnv power{};                 ///< power-objective switching environment
  OptimizeDomain domain{};          ///< power/Pareto (h, k) domain
  OptimOptions optim{};             ///< inner delay-solver options
};

/// Everything one optimize() call produced.  The power and noise blocks
/// are meaningful only when their has_* flag is set (mirroring the wire
/// shape of svc::QueryResult).
struct OptimizeResponse {
  Objective objective = Objective::kDelay;
  OptimResult sizing;               ///< the (h, k) answer and its delay

  bool has_power = false;           ///< power block filled (kPower)
  PowerBreakdown power{};           ///< chain power at the answer [W/m]
  double delay_ref = 0.0;           ///< delay-optimal T_opt [s/m]
  double power_ref = 0.0;           ///< chain power at the delay optimum [W/m]
  bool delay_constraint_active = false;  ///< the slack bound the answer

  bool has_noise = false;           ///< noise block filled (coupled kDelay)
  double peak_noise = 0.0;          ///< exact victim peak noise [V]
  double noise_width = 0.0;         ///< its half-magnitude width [s]
  bool noise_constraint_active = false;  ///< noise_vmax bound the answer
};

/// Validate a request without solving: OK or invalid_argument naming the
/// first bad field.
rlc::Status validate_optimize_request(const OptimizeRequest& req);

/// THE entry point.  Never throws; cancellation/deadline surface as
/// cancelled/deadline_exceeded, solver failure as no_convergence.
rlc::StatusOr<OptimizeResponse> optimize(const Technology& tech,
                                         const OptimizeRequest& req);

/// One point of a delay-power front.
struct ParetoPoint {
  double h = 0.0;                 ///< segment length [m]
  double k = 0.0;                 ///< repeater size
  double delay_per_length = 0.0;  ///< [s/m]
  PowerBreakdown power{};         ///< chain power breakdown [W/m]
  double power_per_length = 0.0;  ///< power.total(), kept flat for tables
};

/// Non-dominated (delay, power) set over the request's (h, k) domain grid,
/// sorted by delay ascending with strictly decreasing power.  Grid points
/// whose delay solve does not converge are skipped.  Row evaluation fans
/// over `pool` (default pool when null); results are bit-identical for any
/// thread count (each grid point is solved independently and reduced in
/// index order).
rlc::StatusOr<std::vector<ParetoPoint>> pareto_front(
    const Technology& tech, const OptimizeRequest& req,
    exec::ThreadPool* pool = nullptr);

}  // namespace rlc::core
