#pragma once

/// \file delay.hpp
/// f*100% threshold delay of the two-pole step response: the solution tau of
/// Eq. (3),
///
///   1 - f - [ s2 exp(s1 tau) - s1 exp(s2 tau) ] / (s2 - s1) = 0,
///
/// taken as the *first* upward crossing of v(t) = f (for underdamped systems
/// v(t) crosses the threshold several times; the first crossing is the
/// signal delay).  Solved by safeguarded Newton-Raphson exactly as in the
/// paper ("convergence is achieved in less than four iterations in all
/// cases"); the solver reports its iteration count so the benches can check
/// that claim.

#include "rlc/core/two_pole.hpp"

namespace rlc::core {

/// Result of a threshold-delay solve.
struct DelayResult {
  double tau = 0.0;        ///< threshold crossing time [s]
  int newton_iterations = 0;
  bool converged = false;
};

struct DelayOptions {
  double f = 0.5;  ///< threshold fraction, 0 < f < 1 (50% delay default)
  double rel_tolerance = 1e-13;  ///< relative tolerance on tau
  int max_iterations = 100;
  // The deprecated rel_tol accessor alias (one-release grace period, see
  // DESIGN.md "Options hygiene") has been removed.
};

/// First time v(tau) = f.  Brackets the first crossing with a geometric
/// scan, then polishes with bisection-guarded Newton on v(t) - f.
/// Throws std::domain_error for f outside (0, 1).
DelayResult threshold_delay(const TwoPole& sys, const DelayOptions& opts = {});

/// Convenience: 50% delay, throwing std::runtime_error if not converged.
double delay_50(const TwoPole& sys);

/// Convenience: threshold delay of the segment (tech repeater, line, h, k).
DelayResult segment_delay(const Repeater& rep, const tline::LineParams& line,
                          double h, double k, const DelayOptions& opts = {});

}  // namespace rlc::core
