#pragma once

/// \file technology.hpp
/// Technology database: the interconnect and repeater parameters of the
/// paper's Table 1 (NTRS'97 roadmap, top-level metal, Copper) plus the
/// supply-voltage assumptions the circuit-level experiments need.
///
/// Units are SI throughout (Ohm/m, F/m, H/m, m, s, V); the named
/// constructors take the paper's mixed units (Ohm/mm, pF/m, um, fF, kOhm)
/// and convert.

#include <stdexcept>
#include <string>

#include "rlc/tline/line.hpp"
#include "rlc/tline/transfer.hpp"

namespace rlc::core {

/// Minimum-sized repeater small-signal parameters for a technology node.
struct Repeater {
  double rs = 0.0;  ///< output resistance of a minimum-sized repeater [Ohm]
  double c0 = 0.0;  ///< input capacitance of a minimum-sized repeater [F]
  double cp = 0.0;  ///< output parasitic capacitance of a minimum repeater [F]

  /// Effective driver/load around the line for a size-k repeater:
  /// Rs = rs/k, Cp = cp*k, Cl = c0*k (Section 2.1).
  tline::DriverLoad scaled(double k) const {
    if (!(k > 0.0)) throw std::domain_error("Repeater::scaled: k must be > 0");
    return {rs / k, cp * k, c0 * k};
  }
};

/// Top-level-metal interconnect + repeater parameters for one node.
struct Technology {
  std::string name;
  double node = 0.0;       ///< feature size [m]
  double r = 0.0;          ///< wire resistance per unit length [Ohm/m]
  double c = 0.0;          ///< wire capacitance per unit length [F/m]
  double eps_r = 0.0;      ///< interlevel dielectric constant
  double width = 0.0;      ///< wire width [m]
  double pitch = 0.0;      ///< wire pitch [m]
  double thickness = 0.0;  ///< wire (metal) thickness [m]
  double t_ins = 0.0;      ///< distance from top metal to substrate [m]
  Repeater rep;            ///< minimum repeater parameters
  double vdd = 0.0;        ///< supply voltage [V] (assumption; paper omits it)
  double l_max = 5.0e-6;   ///< upper end of the paper's inductance sweep [H/m]

  /// Line parameters for a given per-unit-length inductance l [H/m].
  tline::LineParams line(double l) const { return {r, l, c}; }

  /// 250 nm node, metal 6 (Table 1).  VDD assumed 2.5 V.
  static Technology nm250();

  /// 100 nm node, metal 8 (Table 1).  VDD assumed 1.2 V.
  static Technology nm100();

  /// The paper's control experiment for Figure 7: the 100 nm node with the
  /// dielectric (and hence wire capacitance) of the 250 nm node, isolating
  /// the effect of driver scaling.
  static Technology nm100_with_250nm_dielectric();

  /// Geometric interpolation/extrapolation between the two calibrated nodes:
  /// every scaled parameter (r_s, c_0, c_p, c, eps_r, VDD) follows a
  /// constant-ratio-per-generation law anchored at 250 nm and 100 nm, with
  /// the top-metal geometry held fixed (as in Table 1).  `node_m` in meters,
  /// e.g. 180e-9; sensible roughly within [70 nm, 350 nm] — this is the
  /// "technology scaling" knob for trend studies beyond the paper's two
  /// points (Section 4's "progressively more susceptible" claim).
  static Technology interpolated(double node_m);

  /// Validate invariants; throws std::domain_error on violation.
  void validate() const;
};

}  // namespace rlc::core
