#pragma once

/// \file exact_delay.hpp
/// Reference ("exact") time-domain quantities obtained from the full Eq. (1)
/// transfer function by numerical inverse Laplace (fixed Talbot), with no
/// Pade truncation.  Used to quantify the accuracy of the two-pole model
/// (ablation 1) and as the gold standard in integration tests.  Orders of
/// magnitude slower than the two-pole path — not for use inside optimizer
/// loops.

#include <optional>
#include <vector>

#include "rlc/core/technology.hpp"
#include "rlc/tline/transfer.hpp"

namespace rlc::core {

/// Normalized exact step response v(t) of the driver-line-load stage at the
/// given times (unit final value).
std::vector<double> exact_step_response(const tline::LineParams& line,
                                        double h, const tline::DriverLoad& dl,
                                        const std::vector<double>& times,
                                        int talbot_points = 48);

/// First f*100% crossing of the exact step response, found by bisection on
/// the Talbot-inverted waveform.  `tau_scale` sets the search window
/// (0.02..8 x tau_scale); pass the two-pole delay as the scale.
/// Returns nullopt if the threshold is not bracketed in the window.
std::optional<double> exact_threshold_delay(const tline::LineParams& line,
                                            double h,
                                            const tline::DriverLoad& dl,
                                            double tau_scale, double f = 0.5,
                                            int talbot_points = 48);

/// Convenience overload on a technology and repeater size.
std::optional<double> exact_threshold_delay(const Technology& tech, double l,
                                            double h, double k,
                                            double tau_scale, double f = 0.5);

}  // namespace rlc::core
