#pragma once

/// \file exact_delay.hpp
/// Reference ("exact") time-domain quantities obtained from the full Eq. (1)
/// transfer function by numerical inverse Laplace (fixed Talbot), with no
/// Pade truncation.  Used to quantify the accuracy of the two-pole model
/// (ablation 1) and as the gold standard in integration tests.
///
/// Two execution paths:
///   * the fast exact-waveform ENGINE (default): shared-contour Talbot
///     windows evaluated through a cached tline::TransferEvaluator — an
///     N-point waveform costs one set of M transfer evaluations per window
///     instead of N*M, and a threshold delay descends lazily through
///     windows and polishes the crossing with Brent on the window
///     interpolant.  ~10-15x fewer transfer evaluations than the legacy
///     path at matching (<= 1e-3 relative, typically ~1e-9) accuracy;
///   * the LEGACY per-t path (ExactOptions::legacy_bisection, and the
///     plain exact_step_response overload): one full Talbot contour per
///     time point / bisection probe.  Kept as the accuracy reference.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "rlc/core/technology.hpp"
#include "rlc/exec/counters.hpp"
#include "rlc/exec/thread_pool.hpp"
#include "rlc/tline/coupled_line.hpp"
#include "rlc/tline/transfer.hpp"

namespace rlc::core {

/// Accuracy/effort knobs of the exact-waveform engine.
struct ExactOptions {
  /// Contour size of the legacy per-t path (also the engine's rescue
  /// bisection when it loses its bracket).
  int talbot_points = 48;
  /// Contour size M of each shared window (and of the root-polish window).
  /// Fixed Talbot saturates double precision around M ~ 25-30, so 48 keeps
  /// ample margin for the reduced effective node count at window feet.
  int window_points = 48;
  /// Window ratio Lambda: one contour serves all times in
  /// [t_max/Lambda, t_max].  Accuracy at the window foot behaves like a
  /// per-t inversion with ~window_points/Lambda nodes, so keep it modest.
  /// Must be > 1 (engine) / >= 1 (waveform sampling).
  double window_ratio = 4.0;
  /// Grid intervals per window in the threshold search (bracket density).
  int grid_points_per_window = 10;
  /// Route exact_threshold_delay through the legacy per-t bisection.
  bool legacy_bisection = false;
};

/// Instrumentation of one engine run (or an exact_sweep aggregate).
struct ExactStats {
  std::int64_t transfer_evals = 0;  ///< fresh Eq. (1) evaluations
  std::int64_t cache_hits = 0;      ///< memoized F(s) reuses
  std::int64_t windows = 0;         ///< shared contours built
  std::int64_t brent_iterations = 0;
  std::int64_t legacy_fallbacks = 0;  ///< engine runs rescued by bisection

  ExactStats& operator+=(const ExactStats& o) {
    transfer_evals += o.transfer_evals;
    cache_hits += o.cache_hits;
    windows += o.windows;
    brent_iterations += o.brent_iterations;
    legacy_fallbacks += o.legacy_fallbacks;
    return *this;
  }
};

/// Normalized exact step response v(t) of the driver-line-load stage at the
/// given times (unit final value).  Legacy path: one contour per time.
std::vector<double> exact_step_response(const tline::LineParams& line,
                                        double h, const tline::DriverLoad& dl,
                                        const std::vector<double>& times,
                                        int talbot_points = 48);

/// Fast path: the same waveform from shared-contour windows.  Times are
/// grouped greedily from the largest down — each group spans at most
/// opts.window_ratio and costs opts.window_points transfer evaluations
/// total.  Matches the per-t path to ~1e-6 (1e-3 guaranteed by tests) on
/// the structures here.
std::vector<double> exact_step_response_windowed(
    const tline::LineParams& line, double h, const tline::DriverLoad& dl,
    const std::vector<double>& times, const ExactOptions& opts = {},
    ExactStats* stats = nullptr);

/// First f*100% crossing of the exact step response inside the search
/// window (0.02..8 x tau_scale); pass the two-pole delay as the scale.
/// Returns nullopt if the threshold is not bracketed in the window.
/// Default path: windowed engine + Brent polish; set
/// opts.legacy_bisection for the per-t bisection reference.
std::optional<double> exact_threshold_delay(const tline::LineParams& line,
                                            double h,
                                            const tline::DriverLoad& dl,
                                            double tau_scale, double f,
                                            const ExactOptions& opts,
                                            ExactStats* stats = nullptr);

/// Back-compat overload: talbot_points feeds ExactOptions::talbot_points;
/// the engine path is used.
std::optional<double> exact_threshold_delay(const tline::LineParams& line,
                                            double h,
                                            const tline::DriverLoad& dl,
                                            double tau_scale, double f = 0.5,
                                            int talbot_points = 48);

/// Convenience overloads on a technology and repeater size.
std::optional<double> exact_threshold_delay(const Technology& tech, double l,
                                            double h, double k,
                                            double tau_scale, double f = 0.5);
std::optional<double> exact_threshold_delay(const Technology& tech, double l,
                                            double h, double k,
                                            double tau_scale, double f,
                                            const ExactOptions& opts,
                                            ExactStats* stats = nullptr);

/// Switching pattern of a coupled bus: per-conductor far-end voltages
/// before (initial, the settled pre-switch state) and after (target) the
/// step at t = 0.  Quiet victim: initial = target on the victim conductor;
/// anti-phase aggressor: initial 1 -> target 0 while the victim rises.
struct CoupledExcitation {
  std::vector<double> initial;
  std::vector<double> target;
};

/// Multi-output engine entry point: far-end waveforms of EVERY conductor
/// of the coupled bus at the given times, recomposed from the modal scalar
/// responses.  Each excited mode is inverted with the Euler (Abate-Whitt)
/// method — one SoA span evaluation over every node of every time point —
/// because underdamped modal ringing tails sit outside the fixed-Talbot
/// contour's accuracy envelope (silent modes — zero modal weight — cost
/// nothing).  Result is [conductor][time], in volts of the excitation's
/// unit system.
std::vector<std::vector<double>> exact_coupled_step_response(
    const tline::CoupledLine& bus, double h, const tline::DriverLoad& dl,
    const CoupledExcitation& exc, const std::vector<double>& times,
    const ExactOptions& opts = {}, ExactStats* stats = nullptr);

/// First time conductor `conductor` crosses v = f (absolute level, same
/// units as the excitation) inside the 0.02..8 x tau_scale search window.
/// The composite victim waveform is evaluated through the SAME lazy
/// window-descent + Brent-polish machinery as the scalar path — per-mode
/// shared contours, recomposed per probe.  Honors opts.legacy_bisection.
std::optional<double> exact_coupled_threshold_delay(
    const tline::CoupledLine& bus, double h, const tline::DriverLoad& dl,
    const CoupledExcitation& exc, std::size_t conductor, double tau_scale,
    double f, const ExactOptions& opts = {}, ExactStats* stats = nullptr);

/// Exact victim-noise query: peak deviation of conductor `victim` from its
/// initial level, the time of the peak, and the pulse width (time spent
/// above half the peak magnitude).  Grid scan over the search window plus a
/// Brent refinement of the peak, both on the Euler inversion path (noise
/// peaks live in the ringing region where shared Talbot windows are least
/// accurate).
struct CoupledNoiseResult {
  double peak = 0.0;    ///< max |v(t) - v(0-)| over the search window
  double t_peak = 0.0;  ///< argmax time [s]
  double width = 0.0;   ///< time with |v - v(0-)| >= peak/2 [s]
};

CoupledNoiseResult exact_coupled_victim_noise(
    const tline::CoupledLine& bus, double h, const tline::DriverLoad& dl,
    const CoupledExcitation& exc, std::size_t victim, double tau_scale,
    const ExactOptions& opts = {}, ExactStats* stats = nullptr);

/// One exact-delay evaluation of an exact_sweep.
struct ExactSweepTask {
  tline::LineParams line;
  double h = 0.0;
  tline::DriverLoad dl;
  double tau_scale = 0.0;  ///< search-window scale (two-pole delay)
};

struct ExactSweepOptions {
  ExactOptions exact;
  double f = 0.5;       ///< threshold fraction
  bool parallel = true;  ///< fan out over the rlc::exec pool
  rlc::exec::ThreadPool* pool = nullptr;    ///< null: default_pool()
  rlc::exec::Counters* counters = nullptr;  ///< optional instrumentation
  ExactStats* stats = nullptr;  ///< aggregated engine stats (deterministic)
};

/// Exact threshold delays for every task, fanned over the thread pool.
/// Results are in input order and BIT-IDENTICAL to the serial loop for any
/// thread count (each task builds its own evaluator; no shared state).
/// Per-task wall time, Brent iterations, legacy fallbacks and
/// non-bracketed results (failures) go to opts.counters when set.
std::vector<std::optional<double>> exact_sweep(
    const std::vector<ExactSweepTask>& tasks,
    const ExactSweepOptions& opts = {});

/// Convenience: exact delays over an inductance sweep at fixed (h, k); the
/// per-task search scale is the two-pole segment delay (with an Elmore-style
/// estimate as fallback where the two-pole solve does not converge).
std::vector<std::optional<double>> exact_sweep(
    const Technology& tech, const std::vector<double>& ls, double h, double k,
    const ExactSweepOptions& opts = {});

}  // namespace rlc::core
