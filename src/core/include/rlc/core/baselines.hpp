#pragma once

/// \file baselines.hpp
/// The two prior-art approaches the paper argues against, implemented as
/// baselines so the comparison can be regenerated:
///
/// 1. Kahng–Muddu [23]: when the system is neither strongly over- nor
///    under-damped, use the critically damped delay formula.  Since b1 is
///    independent of the line inductance, this predicts a delay that does
///    not change with l near l_crit — which is why it cannot drive the
///    optimization (Section 2.1).
///
/// 2. Ismail–Friedman [21, 22]: empirical power-law corrections to the
///    Elmore optimum, curve-fitted to circuit-simulation results.  We
///    reproduce the *methodology* (fitting a parametric form to simulated
///    optima over a training range) rather than copying their published
///    constants, and the ablation bench demonstrates the paper's criticism:
///    limited validity range and no visibility of effects outside the
///    fitted family (e.g. the h ratio < 1 at l = 0).

#include <vector>

#include "rlc/core/pade.hpp"
#include "rlc/core/technology.hpp"

namespace rlc::core {

/// f*100% delay of the critically damped two-pole system:
/// solve (1 + x) exp(-x) = 1 - f, tau = x * b1 / 2.
/// For f = 0.5, tau = 0.83917... * b1 — independent of b2 and hence of l.
double critically_damped_delay(const PadeCoeffs& pc, double f = 0.5);

/// Dimensionless inductance measure used by the curve-fit baseline:
/// X = (l / r) / (r_s (c_0 + c_p)) — the wire's L/R time constant per unit
/// length relative to the driver's intrinsic time constant.
double inductance_parameter(const Technology& tech, double l);

/// Curve-fitted repeater-sizing baseline (Ismail–Friedman style):
///   h_opt(l) = h_optRC * (1 + a_h * X^b_h)
///   k_opt(l) = k_optRC / (1 + a_k * X^b_k)
/// with (a, b) fitted by least squares against a training sweep of exact
/// optimizations.
class CurveFitBaseline {
 public:
  /// Fit on the given technology over the given inductance values
  /// (l = 0 points are skipped: X = 0 carries no fit information).
  /// Throws std::invalid_argument with fewer than 3 usable points.
  static CurveFitBaseline fit(const Technology& tech,
                              const std::vector<double>& l_values);

  /// Predicted optimal segment length [m] for any technology (the fit
  /// transfers through the dimensionless X — or fails to; see the bench).
  double h_opt(const Technology& tech, double l) const;
  /// Predicted optimal repeater size.
  double k_opt(const Technology& tech, double l) const;

  double a_h() const { return a_h_; }
  double b_h() const { return b_h_; }
  double a_k() const { return a_k_; }
  double b_k() const { return b_k_; }
  /// Fitted range of X (predictions outside it are extrapolations).
  double x_min() const { return x_min_; }
  double x_max() const { return x_max_; }

 private:
  double a_h_ = 0.0, b_h_ = 1.0, a_k_ = 0.0, b_k_ = 1.0;
  double x_min_ = 0.0, x_max_ = 0.0;
};

}  // namespace rlc::core
