#pragma once

/// \file optimizer.hpp
/// Delay-per-unit-length minimization for buffered distributed RLC lines —
/// the paper's central contribution (Section 2.2).
///
/// A long line of length L is split into L/h segments, each driven by a
/// size-k repeater; the total delay is (L/h) tau(h, k), so the optimizer
/// minimizes tau/h.  Stationarity gives (Eqs. 5-6)
///
///   d(tau)/d(h) = tau / h,    d(tau)/d(k) = 0,
///
/// which, substituted into the differentiated delay equation (Eq. 3),
/// yields the residual system g1(h, k) = g2(h, k) = 0 of Eqs. (7)-(8).
/// This header exposes:
///   * the residuals themselves (with the analytic pole sensitivities),
///   * a damped Newton driver for the system (the paper's method),
///   * a derivative-free Nelder-Mead fallback / cross-check,
///   * a sweep helper with warm starts for the l-sweeps of Figures 4-8.

#include <cstddef>
#include <vector>

#include "rlc/base/status.hpp"
#include "rlc/core/delay.hpp"
#include "rlc/core/elmore.hpp"
#include "rlc/core/pade.hpp"
#include "rlc/core/technology.hpp"
#include "rlc/exec/counters.hpp"
#include "rlc/exec/thread_pool.hpp"

namespace rlc::core {

/// Realified residuals of Eqs. (7)-(8).  In exact arithmetic g1 and g2 are
/// purely real for overdamped and purely imaginary for underdamped systems;
/// the meaningful component is returned.
struct StationarityResiduals {
  double g1 = 0.0;  ///< d(tau/h)/dh stationarity residual
  double g2 = 0.0;  ///< d(tau/h)/dk stationarity residual
  double tau = 0.0; ///< threshold delay at (h, k) (by-product of the solve)
  bool valid = false;
};

/// Evaluate g1, g2 at (h, k).  `valid` is false when the inner delay solve
/// fails or the system is too close to critical damping for the pole
/// sensitivities to be meaningful.
StationarityResiduals stationarity_residuals(const Repeater& rep,
                                             const tline::LineParams& line,
                                             double h, double k,
                                             double f = 0.5);

/// Delay per unit length tau(h, k)/h for threshold f [s/m].
double delay_per_length(const Repeater& rep, const tline::LineParams& line,
                        double h, double k, double f = 0.5);

enum class OptimMethod { kNewton, kNelderMead };

/// Naming convention (DESIGN.md "Options hygiene"): iteration budgets are
/// `max_iterations`, tolerances are spelled-out `*_tolerance` — matching
/// math::NewtonOptions / math::NelderMeadOptions.  The deprecated pre-1.0
/// accessor aliases (max_newton_iterations, residual_tol) announced for a
/// one-release grace period have been removed.
struct OptimOptions {
  double f = 0.5;            ///< delay threshold fraction
  double h0 = 0.0;           ///< initial segment length (0: 0.9 * h_optRC)
  double k0 = 0.0;           ///< initial repeater size (0: 0.9 * k_optRC)
  int max_iterations = 80;   ///< Newton budget for the (h, k) system
  double residual_tolerance = 1e-9;  ///< on normalized residuals
  bool allow_fallback = true;  ///< Nelder-Mead when Newton fails
};

struct OptimResult {
  double h = 0.0;    ///< optimal segment length [m]
  double k = 0.0;    ///< optimal repeater size
  double tau = 0.0;  ///< threshold delay of one optimal segment [s]
  double delay_per_length = 0.0;  ///< tau / h [s/m]
  int newton_iterations = 0;      ///< Newton iterations used (0 if fallback only)
  OptimMethod method = OptimMethod::kNewton;
  bool converged = false;
};

/// Minimize tau/h over (h, k) for wire (r, l, c) and the given repeater.
OptimResult optimize_rlc(const Repeater& rep, const tline::LineParams& line,
                         const OptimOptions& opts = {});

/// Convenience overload: technology + per-unit-length inductance l [H/m].
OptimResult optimize_rlc(const Technology& tech, double l,
                         const OptimOptions& opts = {});

/// Sweep over inductance values with warm starts (each solve starts from the
/// previous optimum, the natural continuation for Figures 4-8).
std::vector<OptimResult> optimize_rlc_sweep(const Technology& tech,
                                            const std::vector<double>& l_values,
                                            const OptimOptions& opts = {});

/// Execution policy for optimize_rlc_sweep: serial continuation (the
/// reference path above) or the chunked-continuation parallel path.
///
/// The parallel path preserves warm-start semantics in two phases: a serial
/// pre-pass runs the continuation over every `chunk`-th point only,
/// producing a converged seed per chunk; the chunks then run concurrently
/// on the pool, each continuing serially from its seed.  Every point is
/// solved exactly once (chunk starts reuse the pre-pass result), all solves
/// are Newton-converged to the same residual tolerance, so the results
/// match the serial path to solver precision and are returned in input
/// order for any thread count.
struct SweepOptions {
  OptimOptions optim{};       ///< per-point solver options
  bool parallel = true;       ///< false: exact serial reference path
  std::size_t chunk = 4;      ///< points per continuation chunk (>= 1)
  exec::ThreadPool* pool = nullptr;    ///< null: exec::default_pool()
  exec::Counters* counters = nullptr;  ///< optional instrumentation sink
};

std::vector<OptimResult> optimize_rlc_sweep(const Technology& tech,
                                            const std::vector<double>& l_values,
                                            const SweepOptions& sweep);

// ---------------------------------------------------------------------------
// Noise-constrained mode: minimize delay subject to a crosstalk budget.
//
// The wires of a bus are sized as one: each conductor of the homogenized
// symmetric bus (rlc::tline::symmetric_bus) gets the same (h, k).  The
// objective is the quiet-neighbour delay per unit length (self c plus the
// full Miller-1 coupling capacitance), and the constraint is the exact
// quiet-victim peak noise of an edge conductor when the center conductor
// switches rail to rail: peak_noise(h, k) <= vmax.
//
// Solve structure: unconstrained Newton first; if its optimum already
// meets the budget the constraint is inactive and the result is bitwise
// the unconstrained one.  Otherwise an active-set outer loop walks the
// constraint boundary in the repeater size: upsized repeaters hold the
// quiet victim at lower driver impedance, so along the per-k
// delay-optimal segmentation h_opt(k) the victim peak noise falls
// strictly with k while delay/length rises for k above the unconstrained
// optimum.  The constrained optimum is the smallest feasible size — the
// Brent root of peak_noise(h_opt(k), k) = vmax, bracketed by doubling k
// upward from the unconstrained optimum.

struct NoiseConstraintOptions {
  double cc = 0.0;              ///< coupling capacitance per unit length [F/m]
  double km = 0.0;              ///< inductive coupling coefficient, |km| < 1
  std::size_t conductors = 2;   ///< bus width (2..8)
  double vmax = 0.15;           ///< peak-noise budget [V] for a unit swing
  OptimOptions optim{};         ///< inner unconstrained-solver options
};

struct NoiseOptimResult {
  OptimResult sizing;           ///< (h, k) and quiet-neighbour delay numbers
  double peak_noise = 0.0;      ///< exact victim peak noise at the result
  bool constraint_active = false;  ///< vmax bound the solution
  bool converged = false;
};

/// Throws std::invalid_argument on an out-of-range request (conductors
/// outside 2..8, cc < 0, |km| >= 1, vmax <= 0).
NoiseOptimResult optimize_rlc_noise_constrained(
    const Technology& tech, double l, const NoiseConstraintOptions& c);

// ---------------------------------------------------------------------------
// Checked entry points (the public boundary — see DESIGN.md "Errors").
//
// Since the objective API redesign (optimize_api.hpp) the single typed
// entry point is rlc::core::optimize(OptimizeRequest); the functions below
// are THIN DOCUMENTED WRAPPERS kept for source compatibility:
// try_optimize_rlc forwards to optimize() with objective kDelay, and the
// throwing/flag-carrying functions above are the internal kernels optimize()
// dispatches to.  All of them validate up front (invalid_argument),
// translate non-convergence into a typed Status (no_convergence), honor the
// cooperative cancellation scope (cancelled / deadline_exceeded), and catch
// everything else at the boundary (internal).  No exception escapes them.

/// Validate an optimization request: finite l >= 0, f in (0, 1),
/// max_iterations >= 1, residual_tolerance > 0.
rlc::Status validate_optim_request(double l, const OptimOptions& opts);

/// Checked optimize_rlc: Status instead of a converged flag or a throw.
/// Wrapper over optimize() with objective kDelay and conductors == 1;
/// answers are bit-identical to the unified entry point's sizing.
rlc::StatusOr<OptimResult> try_optimize_rlc(const Technology& tech, double l,
                                            const OptimOptions& opts = {});

/// Checked sweep.  Per-point non-convergence stays visible in each
/// element's `converged` flag (a sweep with a hole is still an answer);
/// only invalid arguments, cancellation/deadline, and internal errors turn
/// into a non-ok Status.
rlc::StatusOr<std::vector<OptimResult>> try_optimize_rlc_sweep(
    const Technology& tech, const std::vector<double>& l_values,
    const SweepOptions& sweep = {});

}  // namespace rlc::core
