#pragma once

/// \file lcrit.hpp
/// Critical line inductance (Eq. 4): the per-unit-length inductance that
/// makes the two-pole system critically damped (b1^2 - 4 b2 = 0) for a given
/// segment length h and repeater size k.  For l < l_crit the segment is
/// overdamped, for l > l_crit underdamped (overshoot/undershoot appear).

#include "rlc/core/technology.hpp"

namespace rlc::core {

/// l_crit [H/m] per Eq. (4).  `r`, `c` are the wire parameters; the repeater
/// is scaled by k.  May return a negative value when even l = 0 leaves the
/// system underdamped (physically: no inductance needed for ringing —
/// does not occur for the paper's parameter ranges, but callers should not
/// assume positivity).
double critical_inductance(const Repeater& rep, double r, double c, double h,
                           double k);

/// Convenience overload on a Technology.
double critical_inductance(const Technology& tech, double h, double k);

}  // namespace rlc::core
