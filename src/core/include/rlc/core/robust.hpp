#pragma once

/// \file robust.hpp
/// Robust repeater sizing under parameter uncertainty — Section 3.2 turned
/// into a design tool.  The effective line inductance (return path) and the
/// effective capacitance (Miller factor of switching neighbours) cannot be
/// known at sizing time; instead of sizing for one nominal corner, minimize
/// the worst-case *regret*
///
///   regret(h, k) = max over corners  dpl(h, k; corner) / dpl_opt(corner)
///
/// where dpl is the delay per unit length and dpl_opt(corner) is the best
/// achievable at that corner.  regret >= 1 always; the minimax sizing keeps
/// it closest to 1 across the whole uncertainty box.

#include <vector>

#include "rlc/core/optimizer.hpp"

namespace rlc::core {

/// Uncertainty box for (c, l); sampled on an n_c x n_l grid (corners plus
/// interior points — the regret maximum can sit strictly inside the box).
struct RobustOptions {
  double c_min = 0.0;  ///< [F/m]
  double c_max = 0.0;
  double l_min = 0.0;  ///< [H/m]
  double l_max = 0.0;
  int n_c = 3;
  int n_l = 3;
  double f = 0.5;
};

struct RobustResult {
  double h = 0.0;
  double k = 0.0;
  double worst_regret = 0.0;     ///< at the robust sizing
  double nominal_regret = 0.0;   ///< regret of sizing at the box center
  bool converged = false;
};

/// Worst-case regret of a FIXED sizing over the uncertainty grid.
/// `per_corner_opt` may be reused between calls (see optimize_robust).
double worst_case_regret(const Repeater& rep, double r, double h, double k,
                         const RobustOptions& opts);

/// Minimize the worst-case regret over (h, k).  Internally solves the
/// per-corner optima once, then runs Nelder-Mead on the max-regret surface.
RobustResult optimize_robust(const Repeater& rep, double r,
                             const RobustOptions& opts);

}  // namespace rlc::core
