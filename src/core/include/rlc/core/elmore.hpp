#pragma once

/// \file elmore.hpp
/// Elmore-delay (RC-only) repeater insertion: the closed forms of
/// Section 3.1,
///
///   h_optRC = sqrt( 2 r_s (c_0 + c_p) / (r c) )
///   k_optRC = sqrt( r_s c / (r c_0) )
///   tau_optRC = 2 r_s (c_0 + c_p) (1 + sqrt( 2 c_0 / (c_0 + c_p) ))
///
/// and the inverse problem the paper solves with SPICE: given measured
/// (h_opt, k_opt, tau_opt) for a technology, infer (r_s, c_0, c_p).

#include "rlc/core/technology.hpp"

namespace rlc::core {

/// Optimal single-segment sizing under the Elmore (RC) delay model.
struct RcOptimum {
  double h = 0.0;    ///< optimal segment length [m]
  double k = 0.0;    ///< optimal repeater size (multiple of minimum)
  double tau = 0.0;  ///< Elmore delay of one optimal segment [s]

  double delay_per_length() const { return tau / h; }
};

/// Elmore delay of one segment of length h driven by a size-k repeater
/// (the bracketed term of t_Elmore in Section 3.1):
///   (rs/k)(cp k + c0 k) + (rs/k) c h + r h c0 k + r c h^2 / 2.
double elmore_segment_delay(const Repeater& rep, double r, double c, double h,
                            double k);

/// Closed-form RC optimum for a technology's top metal.
RcOptimum rc_optimum(const Technology& tech);

/// Closed-form RC optimum from raw parameters.
RcOptimum rc_optimum(const Repeater& rep, double r, double c);

/// Infer the minimum-repeater parameters (r_s, c_0, c_p) from an observed
/// RC optimum (h, k, tau) and wire parameters (r, c) by inverting the three
/// closed forms — the calibration step the paper performs with SPICE
/// simulations to populate Table 1.  Throws std::domain_error if the triple
/// is inconsistent (e.g. tau outside the representable range).
Repeater infer_repeater_from_rc_optimum(double r, double c, double h, double k,
                                        double tau);

}  // namespace rlc::core
