#include "rlc/core/technology.hpp"

#include <cmath>

namespace rlc::core {

namespace {
// Unit helpers for Table 1's mixed units.
constexpr double ohm_per_mm(double v) { return v * 1e3; }   // -> Ohm/m
constexpr double pf_per_m(double v) { return v * 1e-12; }   // -> F/m
constexpr double um(double v) { return v * 1e-6; }          // -> m
constexpr double kohm(double v) { return v * 1e3; }         // -> Ohm
constexpr double fF(double v) { return v * 1e-15; }         // -> F
constexpr double nm(double v) { return v * 1e-9; }          // -> m
}  // namespace

Technology Technology::nm250() {
  Technology t;
  t.name = "250nm";
  t.node = nm(250);
  t.r = ohm_per_mm(4.4);
  t.c = pf_per_m(203.50);
  t.eps_r = 3.3;
  t.width = um(2);
  t.pitch = um(4);
  t.thickness = um(2.5);
  t.t_ins = um(13.9);
  t.rep = {kohm(11.784), fF(1.6314), fF(6.2474)};
  t.vdd = 2.5;
  t.validate();
  return t;
}

Technology Technology::nm100() {
  Technology t;
  t.name = "100nm";
  t.node = nm(100);
  t.r = ohm_per_mm(4.4);
  t.c = pf_per_m(123.33);
  t.eps_r = 2.0;
  t.width = um(2);
  t.pitch = um(4);
  t.thickness = um(2.5);
  t.t_ins = um(15.4);
  t.rep = {kohm(7.534), fF(0.758), fF(3.68)};
  t.vdd = 1.2;
  t.validate();
  return t;
}

Technology Technology::nm100_with_250nm_dielectric() {
  Technology t = nm100();
  const Technology ref = nm250();
  t.name = "100nm(c=250nm)";
  t.eps_r = ref.eps_r;
  t.c = ref.c;
  t.validate();
  return t;
}

Technology Technology::interpolated(double node_m) {
  if (!(node_m > 10e-9 && node_m < 1e-6)) {
    throw std::domain_error("Technology::interpolated: node out of range");
  }
  const Technology a = nm250();
  const Technology b = nm100();
  // s = 0 at 250 nm, 1 at 100 nm, linear in log(node).
  const double s = std::log(node_m / a.node) / std::log(b.node / a.node);
  const auto geom = [s](double va, double vb) {
    return va * std::pow(vb / va, s);
  };
  Technology t = a;
  t.name = std::to_string(static_cast<int>(std::lround(node_m * 1e9))) + "nm";
  t.node = node_m;
  t.c = geom(a.c, b.c);
  t.eps_r = geom(a.eps_r, b.eps_r);
  t.rep.rs = geom(a.rep.rs, b.rep.rs);
  t.rep.c0 = geom(a.rep.c0, b.rep.c0);
  t.rep.cp = geom(a.rep.cp, b.rep.cp);
  t.vdd = geom(a.vdd, b.vdd);
  t.t_ins = geom(a.t_ins, b.t_ins);
  t.validate();
  return t;
}

void Technology::validate() const {
  const bool ok = r > 0.0 && c > 0.0 && eps_r > 0.0 && width > 0.0 &&
                  pitch >= width && thickness > 0.0 && t_ins > 0.0 &&
                  rep.rs > 0.0 && rep.c0 > 0.0 && rep.cp >= 0.0 && vdd > 0.0 &&
                  l_max > 0.0;
  if (!ok) throw std::domain_error("Technology::validate: parameter out of range");
}

}  // namespace rlc::core
