#include "rlc/core/elmore.hpp"

#include <cmath>
#include <stdexcept>

namespace rlc::core {

double elmore_segment_delay(const Repeater& rep, double r, double c, double h,
                            double k) {
  if (!(h > 0.0) || !(k > 0.0)) {
    throw std::domain_error("elmore_segment_delay: h and k must be > 0");
  }
  const double rs = rep.rs, c0 = rep.c0, cp = rep.cp;
  return (rs / k) * (cp * k + c0 * k) + (rs / k) * c * h + r * h * c0 * k +
         0.5 * r * c * h * h;
}

RcOptimum rc_optimum(const Repeater& rep, double r, double c) {
  if (!(r > 0.0) || !(c > 0.0)) {
    throw std::domain_error("rc_optimum: r and c must be > 0");
  }
  RcOptimum o;
  o.h = std::sqrt(2.0 * rep.rs * (rep.c0 + rep.cp) / (r * c));
  o.k = std::sqrt(rep.rs * c / (r * rep.c0));
  o.tau = 2.0 * rep.rs * (rep.c0 + rep.cp) *
          (1.0 + std::sqrt(2.0 * rep.c0 / (rep.c0 + rep.cp)));
  return o;
}

RcOptimum rc_optimum(const Technology& tech) {
  return rc_optimum(tech.rep, tech.r, tech.c);
}

Repeater infer_repeater_from_rc_optimum(double r, double c, double h, double k,
                                        double tau) {
  if (!(r > 0.0 && c > 0.0 && h > 0.0 && k > 0.0 && tau > 0.0)) {
    throw std::domain_error("infer_repeater_from_rc_optimum: inputs must be > 0");
  }
  // From h: A := rs (c0 + cp) = r c h^2 / 2.
  const double A = 0.5 * r * c * h * h;
  // From tau: tau = 2 A (1 + sqrt(2 c0/(c0+cp)))
  //   => sqrt(2 c0/(c0+cp)) = tau/(2A) - 1 =: g, need 0 < g < sqrt(2).
  const double g = tau / (2.0 * A) - 1.0;
  if (!(g > 0.0 && g < std::sqrt(2.0))) {
    throw std::domain_error(
        "infer_repeater_from_rc_optimum: (h, tau) pair inconsistent with the "
        "Elmore optimum closed forms");
  }
  const double beta = 0.5 * g * g;  // c0 / (c0 + cp), in (0, 1)
  // From k: rs = k^2 (r/c) c0; combined with A = rs (c0+cp) and
  // c0 = beta (c0+cp):  A = k^2 (r/c) beta (c0+cp)^2.
  const double sum = std::sqrt(A * c / (k * k * r * beta));  // c0 + cp
  Repeater rep;
  rep.c0 = beta * sum;
  rep.cp = (1.0 - beta) * sum;
  rep.rs = A / sum;
  return rep;
}

}  // namespace rlc::core
