#pragma once

/// \file status_boundary.hpp
/// Internal (src-only) helper shared by the checked optimizer entry points:
/// run a body and convert every escape hatch into a typed Status, per the
/// boundary rule of DESIGN.md "Errors".  No exception crosses a function
/// that returns StatusOr.

#include <stdexcept>

#include "rlc/base/cancel.hpp"
#include "rlc/base/status.hpp"

namespace rlc::core::internal {

template <typename T, typename Body>
rlc::StatusOr<T> at_boundary(Body&& body) {
  try {
    return body();
  } catch (const rlc::CancelledError& e) {
    return e.to_status();
  } catch (const std::invalid_argument& e) {
    return rlc::Status::invalid_argument(e.what());
  } catch (const std::domain_error& e) {
    return rlc::Status::invalid_argument(e.what());
  } catch (const std::exception& e) {
    return rlc::Status::internal(e.what());
  }
}

}  // namespace rlc::core::internal
