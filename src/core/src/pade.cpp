#include "rlc/core/pade.hpp"

namespace rlc::core {

PadeCoeffs pade_coeffs(const tline::LineParams& line, double h,
                       const tline::DriverLoad& dl) {
  line.validate();
  if (!(h > 0.0)) throw std::domain_error("pade_coeffs: h must be > 0");
  const double r = line.r, l = line.l, c = line.c;
  const double Rs = dl.rs_eff, Cp = dl.cp_eff, Cl = dl.cl_eff;
  PadeCoeffs pc;
  pc.b1 = Rs * (Cp + Cl) + r * c * h * h / 2.0 + Rs * c * h + Cl * r * h;
  pc.b2 = l * c * h * h / 2.0 + r * r * c * c * h * h * h * h / 24.0 +
          Rs * (Cp + Cl) * r * c * h * h / 2.0 +
          (Rs * c * h + Cl * r * h) * r * c * h * h / 6.0 + Cl * l * h +
          Rs * Cp * Cl * r * h;
  return pc;
}

PadeCoeffs pade_coeffs_hk(const Repeater& rep, const tline::LineParams& line,
                          double h, double k) {
  return pade_coeffs(line, h, rep.scaled(k));
}

PadeDerivs pade_derivs_hk(const Repeater& rep, const tline::LineParams& line,
                          double h, double k) {
  line.validate();
  if (!(h > 0.0) || !(k > 0.0)) {
    throw std::domain_error("pade_derivs_hk: h and k must be > 0");
  }
  const double r = line.r, l = line.l, c = line.c;
  const double rs = rep.rs, c0 = rep.c0, cp = rep.cp;
  PadeDerivs d;
  // b1 = rs(cp+c0) + r c h^2/2 + (rs/k) c h + c0 k r h
  d.db1_dh = r * c * h + rs * c / k + c0 * k * r;
  d.db1_dk = -rs * c * h / (k * k) + c0 * r * h;
  // b2 = l c h^2/2 + r^2 c^2 h^4/24 + rs(cp+c0) r c h^2/2
  //      + (rs c/k + c0 k r) (r c / 6) h^3 + c0 k l h + rs cp c0 k r h
  d.db2_dh = l * c * h + r * r * c * c * h * h * h / 6.0 +
             rs * (cp + c0) * r * c * h +
             (rs * c / k + c0 * k * r) * (r * c / 2.0) * h * h + c0 * k * l +
             rs * cp * c0 * k * r;
  d.db2_dk = (-rs * c / (k * k) + c0 * r) * (r * c / 6.0) * h * h * h +
             c0 * l * h + rs * cp * c0 * r * h;
  return d;
}

std::complex<double> pade_transfer(const PadeCoeffs& pc,
                                   std::complex<double> s) {
  return 1.0 / (1.0 + s * pc.b1 + s * s * pc.b2);
}

}  // namespace rlc::core
