#include "rlc/core/optimize_api.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include <cstdio>

#include "rlc/core/exact_delay.hpp"
#include "rlc/math/brent.hpp"
#include "rlc/obs/trace.hpp"
#include "rlc/tline/coupled_line.hpp"
#include "status_boundary.hpp"

namespace rlc::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

rlc::Status bad(const std::string& what) {
  return rlc::Status::invalid_argument(what);
}

/// %.6g render for Status messages (core does not depend on rlc_io).
std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

rlc::Status OptimizeDomain::validate() const {
  const auto finite_pos = [](double v) { return std::isfinite(v) && v > 0.0; };
  if (!finite_pos(h_min_scale) || !finite_pos(h_max_scale) ||
      !(h_min_scale < h_max_scale)) {
    return bad("domain h scales must satisfy 0 < h_min_scale < h_max_scale");
  }
  if (!finite_pos(k_min_scale) || !finite_pos(k_max_scale) ||
      !(k_min_scale < k_max_scale)) {
    return bad("domain k scales must satisfy 0 < k_min_scale < k_max_scale");
  }
  if (h_points < 2 || k_points < 2) {
    return bad("domain h_points/k_points must be >= 2");
  }
  return rlc::Status::ok();
}

std::vector<double> log_grid(double ref, double scale_min, double scale_max,
                             int points) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(points));
  const double ratio = scale_max / scale_min;
  for (int i = 0; i < points; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(points - 1);
    out.push_back(ref * scale_min * std::pow(ratio, t));
  }
  return out;
}

rlc::Status validate_optimize_request(const OptimizeRequest& req) {
  if (rlc::Status st = validate_optim_request(req.l, req.optim); !st.is_ok()) {
    return st;
  }
  if (req.conductors < 1 || req.conductors > 8) {
    return bad("conductors must be in 1..8");
  }
  if (!std::isfinite(req.coupling_cc) || req.coupling_cc < 0.0) {
    return bad("coupling_cc must be finite and >= 0");
  }
  if (!std::isfinite(req.coupling_km) || std::abs(req.coupling_km) >= 1.0) {
    return bad("coupling_km must satisfy |km| < 1");
  }
  if (!std::isfinite(req.constraints.noise_vmax) ||
      req.constraints.noise_vmax < 0.0) {
    return bad("noise_vmax must be finite and >= 0");
  }
  if (req.conductors == 1 &&
      (req.coupling_cc != 0.0 || req.coupling_km != 0.0 ||
       req.constraints.noise_vmax != 0.0)) {
    return bad("coupling_cc/coupling_km/noise_vmax require conductors >= 2");
  }
  const double eps = req.constraints.delay_slack_eps;
  if (std::isnan(eps) || eps < 0.0) {
    return bad("delay_slack_eps must be >= 0 (or infinity for unconstrained)");
  }
  if (req.objective == Objective::kPower) {
    if (req.conductors != 1) {
      return bad("objective \"power\" supports conductors == 1 only");
    }
    if (!(req.power.f_clock > 0.0) || !std::isfinite(req.power.f_clock)) {
      return bad("power.f_clock must be finite and > 0");
    }
    if (!(req.power.activity > 0.0) || !(req.power.activity <= 1.0)) {
      return bad("power.activity must be in (0, 1]");
    }
    if (!(req.power.vt_fraction > 0.0) || !(req.power.vt_fraction < 0.5)) {
      return bad("power.vt_fraction must be in (0, 0.5)");
    }
  }
  return req.domain.validate();
}

namespace {

/// Delay per unit length at (h, k), or nullopt when the threshold-delay
/// solve fails (extreme geometries at the domain edges).
std::optional<double> dpl_at(const Repeater& rep, const tline::LineParams& line,
                             double h, double k, double f) {
  DelayOptions dopts;
  dopts.f = f;
  const DelayResult dr = segment_delay(rep, line, h, k, dopts);
  if (!dr.converged) return std::nullopt;
  return dr.tau / h;
}

/// ---- objective kDelay ----------------------------------------------------

rlc::StatusOr<OptimizeResponse> solve_delay(const Technology& tech,
                                            const OptimizeRequest& req) {
  OptimizeResponse resp;
  resp.objective = Objective::kDelay;

  if (req.conductors == 1) {
    const OptimResult r = optimize_rlc(tech, req.l, req.optim);
    if (!r.converged) {
      return rlc::Status::no_convergence(
          "optimizer did not converge (Newton budget " +
          std::to_string(req.optim.max_iterations) +
          (req.optim.allow_fallback ? ", Nelder-Mead fallback exhausted)"
                                    : ")"));
    }
    resp.sizing = r;
    return resp;
  }

  // Coupled bus: size on the quiet-neighbour effective line (optionally
  // under a noise budget) and report the exact victim noise at the answer —
  // the same composition svc::Session has always served, now owned here.
  const tline::LineParams line = tech.line(req.l);
  const double d_max = req.conductors >= 3 ? 2.0 : 1.0;
  if (req.constraints.noise_vmax > 0.0) {
    NoiseConstraintOptions nc;
    nc.cc = req.coupling_cc;
    nc.km = req.coupling_km;
    nc.conductors = req.conductors;
    nc.vmax = req.constraints.noise_vmax;
    nc.optim = req.optim;
    const NoiseOptimResult nr =
        optimize_rlc_noise_constrained(tech, req.l, nc);
    if (!nr.converged) {
      return rlc::Status::no_convergence(
          "noise-constrained optimizer could not meet peak_noise <= " +
          fmt(req.constraints.noise_vmax) + " V (best " +
          fmt(nr.peak_noise) + " V)");
    }
    resp.sizing = nr.sizing;
    resp.noise_constraint_active = nr.constraint_active;
  } else {
    tline::LineParams eff = line;
    eff.c += d_max * req.coupling_cc;
    const OptimResult r = optimize_rlc(tech.rep, eff, req.optim);
    if (!r.converged) {
      return rlc::Status::no_convergence(
          "coupled optimizer did not converge (Newton budget " +
          std::to_string(req.optim.max_iterations) + ")");
    }
    resp.sizing = r;
  }

  // Exact victim noise at the answer: center aggressor, edge victim — the
  // pattern the noise-constrained solve budgets against, so the reported
  // peak is bit-identical to what that solve saw for the same sizing.
  const tline::CoupledLine bus = tline::symmetric_bus(
      line, req.coupling_cc, req.coupling_km, req.conductors);
  const std::size_t aggressor = req.conductors / 2;
  CoupledExcitation exc{std::vector<double>(req.conductors, 0.0),
                        std::vector<double>(req.conductors, 0.0)};
  exc.target[aggressor] = 1.0;
  const CoupledNoiseResult noise = exact_coupled_victim_noise(
      bus, resp.sizing.h, tech.rep.scaled(resp.sizing.k), exc, /*victim=*/0,
      resp.sizing.tau);
  resp.peak_noise = noise.peak;
  resp.noise_width = noise.width;
  resp.has_noise = true;
  return resp;
}

/// ---- objective kPower ----------------------------------------------------

rlc::StatusOr<OptimizeResponse> solve_power(const Technology& tech,
                                            const OptimizeRequest& req) {
  RLC_TRACE_SPAN("optimize_power_constrained");
  const PowerModel model = PowerModel::from_technology(tech, req.power);
  const tline::LineParams line = tech.line(req.l);

  // Delay-optimal reference: T_opt anchors the slack constraint and
  // (h_opt, k_opt) anchors the domain.
  const OptimResult un = optimize_rlc(tech, req.l, req.optim);
  if (!un.converged) {
    return rlc::Status::no_convergence(
        "power objective: delay-optimal reference solve did not converge");
  }

  OptimizeResponse resp;
  resp.objective = Objective::kPower;
  resp.has_power = true;
  resp.delay_ref = un.delay_per_length;
  resp.power_ref = model.per_length(un.h, un.k).total();

  const double eps = req.constraints.delay_slack_eps;
  if (eps == 0.0) {
    // Zero slack admits exactly the delay optimum: return it bitwise.
    resp.sizing = un;
    resp.power = model.per_length(un.h, un.k);
    resp.delay_constraint_active = true;
    return resp;
  }

  const std::vector<double> hg = log_grid(un.h, req.domain.h_min_scale,
                                          req.domain.h_max_scale,
                                          req.domain.h_points);
  const std::vector<double> kg = log_grid(un.k, req.domain.k_min_scale,
                                          req.domain.k_max_scale,
                                          req.domain.k_points);
  const double h_lo = hg.front(), h_hi = hg.back();
  const double bound = (1.0 + eps) * un.delay_per_length;  // inf for eps=inf

  const auto dpl = [&](double h, double k) {
    return dpl_at(tech.rep, line, h, k, req.optim.f);
  };

  const auto finish = [&](double h, double k) -> rlc::StatusOr<OptimizeResponse> {
    DelayOptions dopts;
    dopts.f = req.optim.f;
    const DelayResult dr = segment_delay(tech.rep, line, h, k, dopts);
    if (!dr.converged) {
      return rlc::Status::no_convergence(
          "power objective: delay solve failed at the constrained optimum");
    }
    resp.sizing.h = h;
    resp.sizing.k = k;
    resp.sizing.tau = dr.tau;
    resp.sizing.delay_per_length = dr.tau / h;
    resp.sizing.newton_iterations = un.newton_iterations;
    resp.sizing.method = un.method;
    resp.sizing.converged = true;
    resp.power = model.per_length(h, k);
    // Active iff the answer sits on the slack boundary (to boundary-root
    // resolution) rather than in the domain interior or on its edge.
    resp.delay_constraint_active =
        std::isfinite(bound) &&
        resp.sizing.delay_per_length >= bound * (1.0 - 1e-4);
    return resp;
  };

  // Power per length is monotone in the repeater area per length k / h, so
  // the domain's unconstrained minimum-power point is the (h_max, k_min)
  // corner — computed with the SAME grid arithmetic as the Pareto/brute-
  // force sweeps, so an unconstrained solve matches the minimum-power grid
  // point bitwise.
  if (const std::optional<double> d0 = dpl(h_hi, kg.front());
      d0 && *d0 <= bound) {
    return finish(h_hi, kg.front());
  }

  // Inner boundary solve: the largest feasible h for a given k.  The delay
  // per length is U-shaped in h, so when the domain's upper edge violates
  // the bound the feasible set (if any) ends at the upper-branch root of
  // delay(h, k) = bound.
  const auto h_star = [&](double k) -> std::optional<double> {
    if (const std::optional<double> top = dpl(h_hi, k); top && *top <= bound) {
      return h_hi;
    }
    const auto hm = rlc::math::brent_minimize(
        [&](double h) {
          const std::optional<double> v = dpl(h, k);
          return v ? *v : kInf;
        },
        h_lo, h_hi, 1e-5 * un.h);
    if (!hm.converged || !std::isfinite(hm.fx) || hm.fx > bound) {
      return std::nullopt;  // k is infeasible inside the domain
    }
    const auto root = rlc::math::brent_root(
        [&](double h) {
          const std::optional<double> v = dpl(h, k);
          return (v ? *v : 2.0 * bound) - bound;
        },
        hm.x, h_hi, 1e-7 * un.h);
    if (!root.converged) return hm.x;
    // Keep to the feasible side of the root.
    double h = std::min(root.x, h_hi);
    if (const std::optional<double> v = dpl(h, k); !v || *v > bound) {
      h = std::max(hm.x, h * (1.0 - 1e-6));
      if (const std::optional<double> v2 = dpl(h, k); !v2 || *v2 > bound) {
        return hm.x;
      }
    }
    return h;
  };

  // Outer minimization of the boundary power over k: deterministic coarse
  // scan over the k grid (shared with the sweeps), then a Brent refinement
  // between the feasible neighbours of the best grid point.
  std::vector<std::optional<double>> h_at(kg.size());
  std::size_t best_j = kg.size();
  double best_p = kInf, best_h = 0.0, best_k = 0.0;
  for (std::size_t j = 0; j < kg.size(); ++j) {
    h_at[j] = h_star(kg[j]);
    if (!h_at[j]) continue;
    const double p = model.per_length(*h_at[j], kg[j]).total();
    if (p < best_p) {
      best_p = p;
      best_j = j;
      best_h = *h_at[j];
      best_k = kg[j];
    }
  }
  if (best_j == kg.size()) {
    return rlc::Status::no_convergence(
        "power objective: no feasible (h, k) in the domain meets delay <= " +
        fmt(bound) + " s/m");
  }
  const double k_ref_lo =
      best_j > 0 && h_at[best_j - 1] ? kg[best_j - 1] : kg[best_j];
  const double k_ref_hi = best_j + 1 < kg.size() && h_at[best_j + 1]
                              ? kg[best_j + 1]
                              : kg[best_j];
  if (k_ref_lo < k_ref_hi) {
    const auto boundary_power = [&](double k) -> double {
      const std::optional<double> h = h_star(k);
      return h ? model.per_length(*h, k).total() : kInf;
    };
    const auto km = rlc::math::brent_minimize(boundary_power, k_ref_lo,
                                              k_ref_hi, 1e-6 * un.k);
    if (km.converged && std::isfinite(km.fx) && km.fx < best_p) {
      if (const std::optional<double> h = h_star(km.x)) {
        best_h = *h;
        best_k = km.x;
      }
    }
  }
  return finish(best_h, best_k);
}

}  // namespace

rlc::StatusOr<OptimizeResponse> optimize(const Technology& tech,
                                         const OptimizeRequest& req) {
  if (rlc::Status st = validate_optimize_request(req); !st.is_ok()) return st;
  return internal::at_boundary<OptimizeResponse>(
      [&]() -> rlc::StatusOr<OptimizeResponse> {
        return req.objective == Objective::kPower ? solve_power(tech, req)
                                                  : solve_delay(tech, req);
      });
}

rlc::StatusOr<std::vector<ParetoPoint>> pareto_front(const Technology& tech,
                                                     const OptimizeRequest& req,
                                                     exec::ThreadPool* pool) {
  if (rlc::Status st = validate_optimize_request(req); !st.is_ok()) return st;
  using Out = std::vector<ParetoPoint>;
  return internal::at_boundary<Out>([&]() -> rlc::StatusOr<Out> {
    RLC_TRACE_SPAN("pareto_front");
    const PowerModel model = PowerModel::from_technology(tech, req.power);
    const tline::LineParams line = tech.line(req.l);
    const OptimResult un = optimize_rlc(tech, req.l, req.optim);
    if (!un.converged) {
      return rlc::Status::no_convergence(
          "pareto_front: delay-optimal reference solve did not converge");
    }
    const std::vector<double> hg = log_grid(un.h, req.domain.h_min_scale,
                                            req.domain.h_max_scale,
                                            req.domain.h_points);
    const std::vector<double> kg = log_grid(un.k, req.domain.k_min_scale,
                                            req.domain.k_max_scale,
                                            req.domain.k_points);

    // One task per k row; each grid point is solved independently and rows
    // are reduced in index order, so the front is bit-identical for any
    // thread count.
    exec::ThreadPool& p = pool ? *pool : exec::default_pool();
    const std::vector<std::vector<ParetoPoint>> rows =
        exec::parallel_map(p, kg, [&](const double k) {
          std::vector<ParetoPoint> row;
          row.reserve(hg.size());
          for (const double h : hg) {
            const std::optional<double> d =
                dpl_at(tech.rep, line, h, k, req.optim.f);
            if (!d) continue;  // unconverged grid point: skip, don't fake
            ParetoPoint pt;
            pt.h = h;
            pt.k = k;
            pt.delay_per_length = *d;
            pt.power = model.per_length(h, k);
            pt.power_per_length = pt.power.total();
            row.push_back(pt);
          }
          return row;
        });

    Out all;
    all.reserve(hg.size() * kg.size());
    for (const auto& row : rows) all.insert(all.end(), row.begin(), row.end());

    // Non-dominance filter: sort by (delay, power) and keep the strictly
    // improving power envelope.  Ties break on (h, k) so the order is a
    // total one and the front deterministic.
    std::sort(all.begin(), all.end(), [](const ParetoPoint& a,
                                         const ParetoPoint& b) {
      if (a.delay_per_length != b.delay_per_length) {
        return a.delay_per_length < b.delay_per_length;
      }
      if (a.power_per_length != b.power_per_length) {
        return a.power_per_length < b.power_per_length;
      }
      if (a.h != b.h) return a.h < b.h;
      return a.k < b.k;
    });
    Out front;
    double best_power = kInf;
    for (const ParetoPoint& pt : all) {
      if (pt.power_per_length < best_power) {
        front.push_back(pt);
        best_power = pt.power_per_length;
      }
    }
    return front;
  });
}

}  // namespace rlc::core
