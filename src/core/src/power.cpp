#include "rlc/core/power.hpp"

#include <cmath>
#include <stdexcept>

namespace rlc::core {

namespace {

/// Veendrick short-circuit prefactor: E_sc per transition of a balanced
/// inverter chain is ~(2.2/12) (Vdd - 2Vt)^3 / Vdd times the switched
/// capacitance over the supply slope.  Kept as one named constant so the
/// term stays recognizably the literature form.
constexpr double kShortCircuitSlope = 2.2 / 12.0;

/// Leakage anchors: minimum-repeater off current at the two calibrated
/// nodes.  The constant-ratio-per-generation law between them mirrors
/// Technology::interpolated.
constexpr double kLeakNode250 = 250.0e-9, kLeak250 = 5.0e-9;   // 5 nA
constexpr double kLeakNode100 = 100.0e-9, kLeak100 = 50.0e-9;  // 50 nA

}  // namespace

double leakage_current_for_node(double node_m) {
  if (!(node_m > 0.0)) {
    throw std::domain_error("leakage_current_for_node: node must be > 0");
  }
  const double s =
      std::log(node_m / kLeakNode250) / std::log(kLeakNode100 / kLeakNode250);
  return kLeak250 * std::pow(kLeak100 / kLeak250, s);
}

PowerModel PowerModel::from_technology(const Technology& tech,
                                       const PowerEnv& env) {
  tech.validate();
  if (!(env.f_clock > 0.0)) {
    throw std::invalid_argument("PowerEnv: f_clock must be > 0");
  }
  if (!(env.activity > 0.0) || !(env.activity <= 1.0)) {
    throw std::invalid_argument("PowerEnv: activity must be in (0, 1]");
  }
  if (!(env.vt_fraction > 0.0) || !(env.vt_fraction < 0.5)) {
    // vt_fraction >= 0.5 leaves no (Vdd - 2Vt) crowbar window at all; treat
    // it as a configuration error rather than silently zeroing the term.
    throw std::invalid_argument("PowerEnv: vt_fraction must be in (0, 0.5)");
  }
  PowerModel m;
  m.vdd = tech.vdd;
  m.vt = env.vt_fraction * tech.vdd;
  m.activity = env.activity;
  m.f_clock = env.f_clock;
  m.c_wire = tech.c;
  m.c_rep = tech.rep.c0 + tech.rep.cp;
  m.i_leak0 = leakage_current_for_node(tech.node);
  return m;
}

PowerBreakdown PowerModel::per_length(double h, double k) const {
  if (!(h > 0.0)) {
    throw std::domain_error("PowerModel::per_length: h must be > 0");
  }
  if (!(k > 0.0)) {
    throw std::domain_error("PowerModel::per_length: k must be > 0");
  }
  // Switched capacitance per unit length: the wire itself plus one size-k
  // repeater (input + parasitic) every h meters.
  const double c_per_len = c_wire + c_rep * k / h;
  PowerBreakdown p;
  p.dynamic = activity * f_clock * vdd * vdd * c_per_len;
  const double crowbar = vdd - 2.0 * vt;
  p.short_circuit =
      crowbar > 0.0 ? activity * f_clock * kShortCircuitSlope *
                          (crowbar * crowbar * crowbar) / vdd * c_per_len
                    : 0.0;
  p.leakage = k * i_leak0 * vdd / h;
  return p;
}

double chain_power_per_length(const Technology& tech, double h, double k,
                              const PowerEnv& env) {
  return PowerModel::from_technology(tech, env).per_length(h, k).total();
}

}  // namespace rlc::core
