#include "rlc/core/two_pole.hpp"

#include <cmath>
#include <stdexcept>

#include "rlc/math/constants.hpp"
#include "rlc/math/polynomial.hpp"

namespace rlc::core {

TwoPole::TwoPole(const PadeCoeffs& pc) : b1_(pc.b1), b2_(pc.b2) {
  if (!(b1_ > 0.0) || !(b2_ > 0.0)) {
    throw std::domain_error("TwoPole: require b1 > 0 and b2 > 0");
  }
  // Roots of b2 s^2 + b1 s + 1 = 0 via the cancellation-free solver;
  // order so that s1 = (-b1 + sqrt(disc)) / (2 b2) (the slower pole when
  // real, the +omega_d pole when complex), matching the paper's convention.
  auto [r1, r2] = rlc::math::quadratic_roots(b2_, b1_, 1.0);
  if (r1.imag() < r2.imag() ||
      (r1.imag() == r2.imag() && r1.real() < r2.real())) {
    std::swap(r1, r2);
  }
  s1_ = r1;
  s2_ = r2;
}

Damping TwoPole::damping(double rel_tol) const {
  const double disc = discriminant();
  const double scale = b1_ * b1_ + 4.0 * b2_;
  if (std::abs(disc) <= rel_tol * scale) return Damping::kCriticallyDamped;
  return disc > 0.0 ? Damping::kOverdamped : Damping::kUnderdamped;
}

double TwoPole::natural_frequency() const { return 1.0 / std::sqrt(b2_); }

double TwoPole::damping_ratio() const { return b1_ / (2.0 * std::sqrt(b2_)); }

namespace {
/// Relative pole separation below which the confluent (critically damped)
/// series is used for the step response.
constexpr double kConfluentTol = 1e-7;
}  // namespace

double TwoPole::step_response(double t) const {
  if (t <= 0.0) return 0.0;
  const std::complex<double> diff = s2_ - s1_;
  const double sep = std::abs(diff);
  const double mag = 0.5 * (std::abs(s1_) + std::abs(s2_));
  if (sep <= kConfluentTol * mag) {
    // Confluent double pole at s = (s1 + s2)/2: v = 1 - (1 - s t) e^{s t}.
    const double s = 0.5 * (s1_ + s2_).real();
    return 1.0 - (1.0 - s * t) * std::exp(s * t);
  }
  const std::complex<double> v =
      1.0 - (s2_ * std::exp(s1_ * t) - s1_ * std::exp(s2_ * t)) / diff;
  return v.real();
}

double TwoPole::step_response_derivative(double t) const {
  if (t < 0.0) return 0.0;
  const std::complex<double> diff = s2_ - s1_;
  const double sep = std::abs(diff);
  const double mag = 0.5 * (std::abs(s1_) + std::abs(s2_));
  if (sep <= kConfluentTol * mag) {
    const double s = 0.5 * (s1_ + s2_).real();
    return s * s * t * std::exp(s * t);
  }
  // v'(t) = s1 s2 (exp(s2 t) - exp(s1 t)) / (s2 - s1)
  const std::complex<double> d =
      s1_ * s2_ * (std::exp(s2_ * t) - std::exp(s1_ * t)) / diff;
  return d.real();
}

double TwoPole::damped_frequency() const {
  return std::abs(s1_.imag());
}

double TwoPole::overshoot() const {
  const double zeta = damping_ratio();
  if (zeta >= 1.0) return 0.0;
  return std::exp(-zeta * rlc::math::kPi / std::sqrt(1.0 - zeta * zeta));
}

double TwoPole::undershoot() const {
  const double zeta = damping_ratio();
  if (zeta >= 1.0) return 0.0;
  return std::exp(-2.0 * zeta * rlc::math::kPi / std::sqrt(1.0 - zeta * zeta));
}

}  // namespace rlc::core
