#include "rlc/core/baselines.hpp"

#include <cmath>
#include <stdexcept>

#include "rlc/core/elmore.hpp"
#include "rlc/core/optimizer.hpp"
#include "rlc/math/brent.hpp"
#include "rlc/math/nelder_mead.hpp"

namespace rlc::core {

double critically_damped_delay(const PadeCoeffs& pc, double f) {
  if (!(f > 0.0 && f < 1.0)) {
    throw std::domain_error("critically_damped_delay: f must be in (0, 1)");
  }
  // Solve (1 + x) e^{-x} = 1 - f for x > 0.
  const double target = 1.0 - f;
  const auto g = [target](double x) {
    return (1.0 + x) * std::exp(-x) - target;
  };
  const auto r = rlc::math::brent_root(g, 0.0, 50.0, 1e-14);
  if (!r.converged) {
    throw std::runtime_error("critically_damped_delay: root solve failed");
  }
  // Critically damped pole s = -2/b1, so tau = x / |s| = x b1 / 2.
  return 0.5 * r.x * pc.b1;
}

double inductance_parameter(const Technology& tech, double l) {
  if (!(l >= 0.0)) throw std::domain_error("inductance_parameter: l must be >= 0");
  return (l / tech.r) / (tech.rep.rs * (tech.rep.c0 + tech.rep.cp));
}

CurveFitBaseline CurveFitBaseline::fit(const Technology& tech,
                                       const std::vector<double>& l_values) {
  struct Sample {
    double x;
    double h_ratio;
    double k_ratio;
  };
  const RcOptimum rc = rc_optimum(tech);
  std::vector<Sample> samples;
  OptimOptions opts;
  for (double l : l_values) {
    if (!(l > 0.0)) continue;
    const OptimResult r = optimize_rlc(tech, l, opts);
    if (!r.converged) continue;
    opts.h0 = r.h;  // warm-start the next point
    opts.k0 = r.k;
    samples.push_back({inductance_parameter(tech, l), r.h / rc.h, r.k / rc.k});
  }
  if (samples.size() < 3) {
    throw std::invalid_argument("CurveFitBaseline::fit: need >= 3 nonzero-l points");
  }

  // Least squares for (a, b) in ratio = 1 + a X^b (h) and 1/(1 + a X^b) (k).
  const auto sse = [&samples](double a, double b, bool for_h) {
    if (a <= 0.0 || b <= 0.0 || b > 5.0) return 1e300;
    double acc = 0.0;
    for (const auto& s : samples) {
      const double model = for_h ? 1.0 + a * std::pow(s.x, b)
                                 : 1.0 / (1.0 + a * std::pow(s.x, b));
      const double data = for_h ? s.h_ratio : s.k_ratio;
      acc += (model - data) * (model - data);
    }
    return acc;
  };
  rlc::math::NelderMeadOptions nm;
  nm.max_iterations = 5000;
  nm.x_tolerance = 1e-8;
  const auto fit_h = rlc::math::nelder_mead(
      [&](const std::vector<double>& p) { return sse(p[0], p[1], true); },
      {0.5, 0.8}, nm);
  const auto fit_k = rlc::math::nelder_mead(
      [&](const std::vector<double>& p) { return sse(p[0], p[1], false); },
      {0.5, 0.8}, nm);

  CurveFitBaseline out;
  out.a_h_ = fit_h.x[0];
  out.b_h_ = fit_h.x[1];
  out.a_k_ = fit_k.x[0];
  out.b_k_ = fit_k.x[1];
  out.x_min_ = samples.front().x;
  out.x_max_ = samples.back().x;
  return out;
}

double CurveFitBaseline::h_opt(const Technology& tech, double l) const {
  const double x = inductance_parameter(tech, l);
  return rc_optimum(tech).h * (1.0 + a_h_ * std::pow(x, b_h_));
}

double CurveFitBaseline::k_opt(const Technology& tech, double l) const {
  const double x = inductance_parameter(tech, l);
  return rc_optimum(tech).k / (1.0 + a_k_ * std::pow(x, b_k_));
}

}  // namespace rlc::core
