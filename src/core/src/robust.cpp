#include "rlc/core/robust.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "rlc/math/nelder_mead.hpp"

namespace rlc::core {

namespace {

struct Corner {
  tline::LineParams line;
  double dpl_opt = 0.0;
};

void check(const RobustOptions& o) {
  if (!(o.c_min > 0.0 && o.c_max >= o.c_min && o.l_min >= 0.0 &&
        o.l_max >= o.l_min && o.n_c >= 1 && o.n_l >= 1)) {
    throw std::invalid_argument("RobustOptions: inconsistent uncertainty box");
  }
}

std::vector<Corner> build_corners(const Repeater& rep, double r,
                                  const RobustOptions& o) {
  std::vector<Corner> corners;
  OptimOptions oo;
  oo.f = o.f;
  for (int i = 0; i < o.n_c; ++i) {
    const double c = o.n_c == 1 ? o.c_min
                                : o.c_min + (o.c_max - o.c_min) * i / (o.n_c - 1);
    for (int j = 0; j < o.n_l; ++j) {
      const double l = o.n_l == 1 ? o.l_min
                                  : o.l_min + (o.l_max - o.l_min) * j / (o.n_l - 1);
      Corner cn;
      cn.line = {r, l, c};
      const OptimResult res = optimize_rlc(rep, cn.line, oo);
      if (!res.converged) {
        throw std::runtime_error("optimize_robust: corner optimization failed");
      }
      oo.h0 = res.h;  // warm start the next corner
      oo.k0 = res.k;
      cn.dpl_opt = res.delay_per_length;
      corners.push_back(cn);
    }
  }
  return corners;
}

double regret_over(const std::vector<Corner>& corners, const Repeater& rep,
                   double h, double k, double f) {
  double worst = 0.0;
  for (const auto& cn : corners) {
    double dpl;
    try {
      dpl = delay_per_length(rep, cn.line, h, k, f);
    } catch (const std::exception&) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    worst = std::max(worst, dpl / cn.dpl_opt);
  }
  return worst;
}

}  // namespace

double worst_case_regret(const Repeater& rep, double r, double h, double k,
                         const RobustOptions& opts) {
  check(opts);
  if (!(h > 0.0 && k > 0.0)) {
    throw std::domain_error("worst_case_regret: h and k must be > 0");
  }
  return regret_over(build_corners(rep, r, opts), rep, h, k, opts.f);
}

RobustResult optimize_robust(const Repeater& rep, double r,
                             const RobustOptions& opts) {
  check(opts);
  const auto corners = build_corners(rep, r, opts);

  // Nominal sizing: optimum at the box center.
  const tline::LineParams nominal{r, 0.5 * (opts.l_min + opts.l_max),
                                  0.5 * (opts.c_min + opts.c_max)};
  OptimOptions oo;
  oo.f = opts.f;
  const OptimResult nom = optimize_rlc(rep, nominal, oo);
  if (!nom.converged) {
    throw std::runtime_error("optimize_robust: nominal optimization failed");
  }

  const double h_ref = nom.h, k_ref = nom.k;
  const auto objective = [&](const std::vector<double>& x) {
    if (x[0] <= 0.0 || x[1] <= 0.0) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    return regret_over(corners, rep, x[0] * h_ref, x[1] * k_ref, opts.f);
  };
  rlc::math::NelderMeadOptions nm;
  nm.max_iterations = 3000;
  nm.f_tolerance = 1e-10;
  nm.x_tolerance = 1e-7;
  nm.initial_step = 0.1;
  const auto sol = rlc::math::nelder_mead(objective, {1.0, 1.0}, nm);

  RobustResult res;
  res.converged = sol.converged && std::isfinite(sol.fx);
  res.h = sol.x[0] * h_ref;
  res.k = sol.x[1] * k_ref;
  res.worst_regret = sol.fx;
  res.nominal_regret = regret_over(corners, rep, nom.h, nom.k, opts.f);
  return res;
}

}  // namespace rlc::core
