#include "rlc/core/exact_delay.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "rlc/core/delay.hpp"
#include "rlc/laplace/talbot.hpp"
#include "rlc/math/brent.hpp"
#include "rlc/obs/metrics.hpp"
#include "rlc/obs/trace.hpp"
#include "rlc/tline/batch_evaluator.hpp"
#include "rlc/tline/evaluator.hpp"

namespace rlc::core {

namespace {

/// Search window of the threshold solve, as multiples of tau_scale (the
/// legacy path used the same bounds).
constexpr double kSearchLo = 0.02;
constexpr double kSearchHi = 8.0;

rlc::laplace::LaplaceFn step_transform(const tline::LineParams& line, double h,
                                       const tline::DriverLoad& dl) {
  return [line, h, dl](std::complex<double> s) {
    return rlc::tline::exact_transfer_dc_safe(line, h, dl, s) / s;
  };
}

void validate_threshold_args(double tau_scale, double f) {
  if (!(f > 0.0 && f < 1.0)) {
    throw std::domain_error("exact_threshold_delay: f must be in (0, 1)");
  }
  if (!(tau_scale > 0.0)) {
    throw std::domain_error("exact_threshold_delay: tau_scale must be > 0");
  }
}

void validate_options(const ExactOptions& o, bool threshold_path) {
  if (o.talbot_points < 4 || o.window_points < 4) {
    throw std::domain_error("ExactOptions: contour sizes must be >= 4");
  }
  if (o.grid_points_per_window < 2) {
    throw std::domain_error("ExactOptions: grid_points_per_window must be >= 2");
  }
  const bool ok = threshold_path ? o.window_ratio > 1.0 : o.window_ratio >= 1.0;
  if (!ok) {
    throw std::domain_error(threshold_path
                                ? "ExactOptions: window_ratio must be > 1"
                                : "ExactOptions: window_ratio must be >= 1");
  }
}

/// Span adapter from the SoA batch evaluator onto the laplace inverters'
/// BatchLaplaceFnRef signature (two words, no allocation).
struct BatchStep {
  const tline::BatchTransferEvaluator* ev;
  void operator()(const double* s_re, const double* s_im, double* f_re,
                  double* f_im, std::size_t n) const {
    ev->step(s_re, s_im, f_re, f_im, n);
  }
};

/// The fast exact-waveform engine: a SoA BatchTransferEvaluator fills every
/// cold Talbot contour in one vectorized pass (the cache-miss hot path),
/// while the memoizing per-point TransferEvaluator backs the legacy
/// reference bisection.
class WaveformEngine {
 public:
  WaveformEngine(const tline::LineParams& line, double h,
                 const tline::DriverLoad& dl, const ExactOptions& opts)
      : eval_(line, h, dl), batch_(line, h, dl), opts_(opts) {}

  /// Waveform at arbitrary times, grouped into shared-contour windows.
  std::vector<double> sample(const std::vector<double>& times) {
    for (double t : times) {
      if (!(t > 0.0)) {
        throw std::domain_error(
            "exact_step_response_windowed: times must be > 0");
      }
    }
    std::vector<std::size_t> idx(times.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      return times[a] > times[b];
    });
    std::vector<double> out(times.size());
    std::size_t i = 0;
    while (i < idx.size()) {
      const double t_max = times[idx[i]];
      const rlc::laplace::TalbotContour contour(bstep_, t_max,
                                                opts_.window_points);
      ++windows_;
      const double t_min = t_max / opts_.window_ratio;
      while (i < idx.size() && times[idx[i]] >= t_min * (1.0 - 1e-12)) {
        out[idx[i]] = contour.eval(times[idx[i]]);
        ++i;
      }
    }
    return out;
  }

  /// First f-crossing: lazy top-down window descent + Brent polish.  Each
  /// window above the crossing costs one contour build plus ONE foot probe
  /// (is v still >= f at the window foot?); only the crossing window is
  /// grid-scanned, bottom-up with early exit at the first bracket.
  std::optional<double> threshold(double tau_scale, double f) {
    const double lo = kSearchLo * tau_scale;
    const double hi = kSearchHi * tau_scale;
    const int n_w = opts_.grid_points_per_window;
    const double lam = opts_.window_ratio;
    double t_hi = hi;
    bool top_window = true;
    while (true) {
      const rlc::laplace::TalbotContour contour(bstep_, t_hi,
                                                opts_.window_points);
      ++windows_;
      if (top_window) {
        // !(>= f) instead of (< f): a non-finite eval (kernel overflow at
        // extreme window scales) must mean "cannot certify a crossing",
        // not fall through into the descent on NaN comparisons.
        if (!(contour.eval(t_hi) >= f)) return std::nullopt;  // not settled
        top_window = false;
      }
      const double t_lo_w = std::max(lo, t_hi / lam);
      const double gstep = std::pow(t_hi / t_lo_w, 1.0 / n_w);
      const double v_foot = contour.eval(t_lo_w);
      if (v_foot >= f) {
        // Already above threshold at the window foot: the first crossing
        // (if any) lies further down.
        if (t_lo_w <= lo * (1.0 + 1e-12)) return std::nullopt;  // v(lo) >= f
        t_hi = t_lo_w;
        continue;
      }
      // The first crossing is inside (or at the top edge of) this window:
      // walk the geometric grid upward from the foot and stop at the first
      // bracket, which preserves first-crossing semantics at grid
      // resolution.
      double ta = t_lo_w, va = v_foot;
      for (int j = 1; j <= n_w; ++j) {
        const double tb = (j == n_w) ? t_hi : t_lo_w * std::pow(gstep, j);
        const double vb = contour.eval(tb);
        if (vb >= f) {
          return polish(&contour, va - f, vb - f, ta, tb, gstep, lo, hi,
                        tau_scale, f);
        }
        ta = tb;
        va = vb;
      }
      // Below f all the way up to t_hi, yet the window above starts >= f:
      // the crossing straddles the window boundary.
      return polish(nullptr, 0.0, 0.0, t_hi, std::min(hi, t_hi * gstep),
                    gstep, lo, hi, tau_scale, f);
    }
  }

  /// Legacy per-t bisection (the pre-engine implementation), kept as the
  /// reference and as the rescue path when the engine loses its bracket.
  std::optional<double> legacy_threshold(double tau_scale, double f) {
    const auto v = [&](double t) {
      return rlc::laplace::talbot_invert(eval_.step_ref(), t,
                                         opts_.talbot_points);
    };
    double lo = kSearchLo * tau_scale, hi = kSearchHi * tau_scale;
    // The hi endpoint is negated so a non-finite value (kernel overflow at
    // extreme scales) reports "no bracket" instead of bisecting on NaN.
    // A non-finite v(lo) is tolerated: the deep foot overflows first while
    // being physically ~0, i.e. safely below any threshold.
    if (v(lo) > f || !(v(hi) >= f)) return std::nullopt;
    for (int i = 0; i < 60; ++i) {
      const double mid = 0.5 * (lo + hi);
      (v(mid) < f ? lo : hi) = mid;
    }
    return 0.5 * (lo + hi);
  }

  ExactStats stats() const {
    ExactStats s;
    s.transfer_evals =
        static_cast<std::int64_t>(eval_.evaluations() + batch_.evaluations());
    s.cache_hits = static_cast<std::int64_t>(eval_.cache_hits());
    s.windows = windows_;
    s.brent_iterations = brent_iterations_;
    s.legacy_fallbacks = legacy_fallbacks_;
    return s;
  }

 private:
  /// Polish the crossing.  With the default window ratio the bracket from
  /// the grid scan always sits above ~0.25 t_max of its window, where the
  /// window contour is accurate enough to seed the per-t refinement — so
  /// the root is brent-solved on it with zero extra transfer evaluations
  /// and then converged onto the legacy integrand.  Deeper brackets (large
  /// custom window ratios) and boundary straddles get a fresh contour
  /// anchored at the bracket top, where the bracket is re-verified and
  /// widened by grid steps if the coarser window misplaced it.
  std::optional<double> polish(const rlc::laplace::TalbotContour* window,
                               double ga_win, double gb_win, double a,
                               double b, double gstep, double lo, double hi,
                               double tau_scale, double f) {
    if (window != nullptr && b >= 0.25 * window->t_max() && ga_win <= 0.0 &&
        gb_win >= 0.0) {
      const auto r = rlc::math::brent_root(
          [&](double t) { return window->eval(t) - f; }, a, b,
          1e-4 * tau_scale);
      brent_iterations_ += r.iterations;
      if (r.converged) return refine_per_t(*window, r.x, lo, hi, tau_scale, f);
      // fall through to the fresh-contour attempts
    }
    for (int attempt = 0; attempt < 8; ++attempt) {
      const rlc::laplace::TalbotContour c(bstep_, b, opts_.window_points);
      ++windows_;
      const double ga = c.eval(a) - f;
      const double gb = c.eval(b) - f;
      if (ga <= 0.0 && gb >= 0.0) {
        const auto r = rlc::math::brent_root(
            [&](double t) { return c.eval(t) - f; }, a, b,
            1e-4 * tau_scale);
        brent_iterations_ += r.iterations;
        if (r.converged) return refine_per_t(c, r.x, lo, hi, tau_scale, f);
        break;
      }
      const double a_prev = a, b_prev = b;
      if (ga > 0.0) a = std::max(lo, a / gstep);
      if (gb < 0.0) b = std::min(hi, b * gstep);
      if (a == a_prev && b == b_prev) break;  // pinned at the search edges
    }
    ++legacy_fallbacks_;
    return legacy_threshold(tau_scale, f);
  }

  /// Converge the contour root onto the per-t integrand the legacy path
  /// bisects.  On ringing (inductive) responses the shared-contour value
  /// near the root can disagree with the per-t inversion by ~1e-3, so the
  /// contour root alone would eat the whole accuracy budget; a few
  /// fixed-slope Newton steps on talbot_invert itself close that gap to
  /// root-finder precision.  The slope comes from the cached contour
  /// (relative accuracy ~1e-3 there is ample for Newton), so each step
  /// costs exactly one per-t inversion.
  double refine_per_t(const rlc::laplace::TalbotContour& c, double t0,
                      double lo, double hi, double tau_scale, double f) {
    const double dt = 1e-3 * t0;
    const double t_up = std::min(t0 + dt, c.t_max());
    const double t_dn = t0 - dt;
    const double slope = (c.eval(t_up) - c.eval(t_dn)) / (t_up - t_dn);
    if (!std::isfinite(slope) || !(slope > 0.0)) return t0;
    double t = t0, t_best = t0;
    double g_best = std::numeric_limits<double>::infinity();
    for (int i = 0; i < 3; ++i) {
      const double g = rlc::laplace::talbot_invert(
                           rlc::laplace::BatchLaplaceFnRef(bstep_), t,
                           opts_.talbot_points) -
                       f;
      if (!(std::abs(g) < g_best)) break;  // stalled: keep the best point
      g_best = std::abs(g);
      t_best = t;
      const double step = g / slope;
      t = std::clamp(t - step, lo, hi);
      // Each step shrinks the error ~1e3-fold (the slope is ~1e-3
      // accurate), so a sub-1e-6 step leaves ~1e-9 relative error.
      if (std::abs(step) <= 1e-6 * tau_scale) {
        t_best = t;
        break;
      }
    }
    return t_best;
  }

  rlc::tline::TransferEvaluator eval_;
  rlc::tline::BatchTransferEvaluator batch_;
  BatchStep bstep_{&batch_};
  ExactOptions opts_;
  std::int64_t windows_ = 0;
  std::int64_t brent_iterations_ = 0;
  std::int64_t legacy_fallbacks_ = 0;
};

}  // namespace

std::vector<double> exact_step_response(const tline::LineParams& line,
                                        double h, const tline::DriverLoad& dl,
                                        const std::vector<double>& times,
                                        int talbot_points) {
  line.validate();
  return rlc::laplace::talbot_invert(step_transform(line, h, dl), times,
                                     talbot_points);
}

std::vector<double> exact_step_response_windowed(
    const tline::LineParams& line, double h, const tline::DriverLoad& dl,
    const std::vector<double>& times, const ExactOptions& opts,
    ExactStats* stats) {
  line.validate();
  validate_options(opts, /*threshold_path=*/false);
  RLC_TRACE_SPAN("exact_sample");
  WaveformEngine engine(line, h, dl, opts);
  auto out = engine.sample(times);
  if (stats) *stats += engine.stats();
  return out;
}

std::optional<double> exact_threshold_delay(const tline::LineParams& line,
                                            double h,
                                            const tline::DriverLoad& dl,
                                            double tau_scale, double f,
                                            const ExactOptions& opts,
                                            ExactStats* stats) {
  line.validate();
  validate_threshold_args(tau_scale, f);
  validate_options(opts, /*threshold_path=*/!opts.legacy_bisection);
  RLC_TRACE_SPAN("exact_threshold");
  static const int kCalls =
      obs::Registry::global().counter("exact.threshold.calls");
  obs::Registry::global().add(kCalls);
  WaveformEngine engine(line, h, dl, opts);
  const auto out = opts.legacy_bisection
                       ? engine.legacy_threshold(tau_scale, f)
                       : engine.threshold(tau_scale, f);
  if (stats) *stats += engine.stats();
  return out;
}

std::optional<double> exact_threshold_delay(const tline::LineParams& line,
                                            double h,
                                            const tline::DriverLoad& dl,
                                            double tau_scale, double f,
                                            int talbot_points) {
  ExactOptions opts;
  opts.talbot_points = talbot_points;
  return exact_threshold_delay(line, h, dl, tau_scale, f, opts);
}

std::optional<double> exact_threshold_delay(const Technology& tech, double l,
                                            double h, double k,
                                            double tau_scale, double f) {
  return exact_threshold_delay(tech.line(l), h, tech.rep.scaled(k), tau_scale,
                               f);
}

std::optional<double> exact_threshold_delay(const Technology& tech, double l,
                                            double h, double k,
                                            double tau_scale, double f,
                                            const ExactOptions& opts,
                                            ExactStats* stats) {
  return exact_threshold_delay(tech.line(l), h, tech.rep.scaled(k), tau_scale,
                               f, opts, stats);
}

std::vector<std::optional<double>> exact_sweep(
    const std::vector<ExactSweepTask>& tasks, const ExactSweepOptions& opts) {
  struct TaskOut {
    std::optional<double> delay;
    ExactStats stats;
    double wall = 0.0;
  };
  const auto run_one = [&opts](const ExactSweepTask& task) {
    rlc::exec::StopWatch sw;
    TaskOut out;
    out.delay = exact_threshold_delay(task.line, task.h, task.dl,
                                      task.tau_scale, opts.f, opts.exact,
                                      &out.stats);
    out.wall = sw.seconds();
    return out;
  };
  std::vector<TaskOut> outs;
  if (opts.parallel && tasks.size() > 1) {
    auto& pool = opts.pool ? *opts.pool : rlc::exec::default_pool();
    outs = rlc::exec::parallel_map(pool, tasks, run_one);
  } else {
    outs.reserve(tasks.size());
    for (const auto& t : tasks) outs.push_back(run_one(t));
  }
  std::vector<std::optional<double>> delays;
  delays.reserve(outs.size());
  for (const auto& o : outs) {
    if (opts.counters) {
      opts.counters->record_solve(o.stats.brent_iterations,
                                  o.stats.legacy_fallbacks > 0,
                                  !o.delay.has_value(), o.wall);
    }
    if (opts.stats) *opts.stats += o.stats;
    delays.push_back(o.delay);
  }
  return delays;
}

std::vector<std::optional<double>> exact_sweep(
    const Technology& tech, const std::vector<double>& ls, double h, double k,
    const ExactSweepOptions& opts) {
  std::vector<ExactSweepTask> tasks;
  tasks.reserve(ls.size());
  for (double l : ls) {
    ExactSweepTask t;
    t.line = tech.line(l);
    t.h = h;
    t.dl = tech.rep.scaled(k);
    const auto d = segment_delay(tech.rep, t.line, h, k);
    if (d.converged && d.tau > 0.0) {
      t.tau_scale = d.tau;
    } else {
      // Elmore-style scale: driver charging plus distributed wire delay.
      t.tau_scale =
          t.dl.rs_eff * (t.dl.cp_eff + t.dl.cl_eff + t.line.c * h) +
          t.line.r * h * (0.5 * t.line.c * h + t.dl.cl_eff);
    }
    tasks.push_back(t);
  }
  return exact_sweep(tasks, opts);
}

}  // namespace rlc::core
