#include "rlc/core/exact_delay.hpp"

#include <cmath>
#include <stdexcept>

#include "rlc/laplace/talbot.hpp"

namespace rlc::core {

namespace {

rlc::laplace::LaplaceFn step_transform(const tline::LineParams& line, double h,
                                       const tline::DriverLoad& dl) {
  return [line, h, dl](std::complex<double> s) {
    return rlc::tline::exact_transfer_dc_safe(line, h, dl, s) / s;
  };
}

}  // namespace

std::vector<double> exact_step_response(const tline::LineParams& line,
                                        double h, const tline::DriverLoad& dl,
                                        const std::vector<double>& times,
                                        int talbot_points) {
  line.validate();
  return rlc::laplace::talbot_invert(step_transform(line, h, dl), times,
                                     talbot_points);
}

std::optional<double> exact_threshold_delay(const tline::LineParams& line,
                                            double h,
                                            const tline::DriverLoad& dl,
                                            double tau_scale, double f,
                                            int talbot_points) {
  line.validate();
  if (!(f > 0.0 && f < 1.0)) {
    throw std::domain_error("exact_threshold_delay: f must be in (0, 1)");
  }
  if (!(tau_scale > 0.0)) {
    throw std::domain_error("exact_threshold_delay: tau_scale must be > 0");
  }
  const auto F = step_transform(line, h, dl);
  const auto v = [&](double t) {
    return rlc::laplace::talbot_invert(F, t, talbot_points);
  };
  double lo = 0.02 * tau_scale, hi = 8.0 * tau_scale;
  if (v(lo) > f || v(hi) < f) return std::nullopt;
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    (v(mid) < f ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

std::optional<double> exact_threshold_delay(const Technology& tech, double l,
                                            double h, double k,
                                            double tau_scale, double f) {
  return exact_threshold_delay(tech.line(l), h, tech.rep.scaled(k), tau_scale,
                               f);
}

}  // namespace rlc::core
