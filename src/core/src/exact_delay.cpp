#include "rlc/core/exact_delay.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

#include "rlc/core/delay.hpp"
#include "rlc/laplace/euler.hpp"
#include "rlc/laplace/talbot.hpp"
#include "rlc/math/brent.hpp"
#include "rlc/obs/metrics.hpp"
#include "rlc/obs/trace.hpp"
#include "rlc/tline/batch_evaluator.hpp"
#include "rlc/tline/evaluator.hpp"

namespace rlc::core {

namespace {

/// Search window of the threshold solve, as multiples of tau_scale (the
/// legacy path used the same bounds).
constexpr double kSearchLo = 0.02;
constexpr double kSearchHi = 8.0;

rlc::laplace::LaplaceFn step_transform(const tline::LineParams& line, double h,
                                       const tline::DriverLoad& dl) {
  return [line, h, dl](std::complex<double> s) {
    return rlc::tline::exact_transfer_dc_safe(line, h, dl, s) / s;
  };
}

void validate_threshold_args(double tau_scale, double f) {
  if (!(f > 0.0 && f < 1.0)) {
    throw std::domain_error("exact_threshold_delay: f must be in (0, 1)");
  }
  if (!(tau_scale > 0.0)) {
    throw std::domain_error("exact_threshold_delay: tau_scale must be > 0");
  }
}

void validate_options(const ExactOptions& o, bool threshold_path) {
  if (o.talbot_points < 4 || o.window_points < 4) {
    throw std::domain_error("ExactOptions: contour sizes must be >= 4");
  }
  if (o.grid_points_per_window < 2) {
    throw std::domain_error("ExactOptions: grid_points_per_window must be >= 2");
  }
  const bool ok = threshold_path ? o.window_ratio > 1.0 : o.window_ratio >= 1.0;
  if (!ok) {
    throw std::domain_error(threshold_path
                                ? "ExactOptions: window_ratio must be > 1"
                                : "ExactOptions: window_ratio must be >= 1");
  }
}

/// Span adapter from the SoA batch evaluator onto the laplace inverters'
/// BatchLaplaceFnRef signature (two words, no allocation).
struct BatchStep {
  const tline::BatchTransferEvaluator* ev;
  void operator()(const double* s_re, const double* s_im, double* f_re,
                  double* f_im, std::size_t n) const {
    ev->step(s_re, s_im, f_re, f_im, n);
  }
};

/// The fast exact-waveform engine: a SoA BatchTransferEvaluator fills every
/// cold Talbot contour in one vectorized pass (the cache-miss hot path),
/// while the memoizing per-point TransferEvaluator backs the legacy
/// reference bisection.
///
/// The engine is channelized for the coupled-line refactor: K >= 1 modal
/// channels, each a scalar (line, h, dl) evaluator pair with a
/// recomposition coefficient, combined per probe as
///   v(t) = offset + sum_k coef_k v_k(t).
/// The single-conductor constructor builds one channel flagged as a pure
/// passthrough, which bypasses the recomposition sum entirely so the
/// scalar path stays BIT-identical to the pre-refactor engine.
class WaveformEngine {
 public:
  /// Scalar (single-conductor) engine.
  WaveformEngine(const tline::LineParams& line, double h,
                 const tline::DriverLoad& dl, const ExactOptions& opts)
      : opts_(opts), single_(true) {
    channels_.push_back(std::make_unique<Channel>(line, h, dl, 1.0));
  }

  /// Coupled composite engine: one channel per contributing mode.
  /// `modes[k]` runs with coefficient `coefs[k]`; `offset` is the
  /// conductor's pre-switch level.
  WaveformEngine(const std::vector<tline::LineParams>& modes,
                 const std::vector<double>& coefs, double offset, double h,
                 const tline::DriverLoad& dl, const ExactOptions& opts)
      : opts_(opts), offset_(offset), single_(false) {
    channels_.reserve(modes.size());
    for (std::size_t k = 0; k < modes.size(); ++k) {
      if (coefs[k] == 0.0) continue;  // silent mode: contributes nothing
      channels_.push_back(std::make_unique<Channel>(modes[k], h, dl, coefs[k]));
    }
  }

  /// One composite shared-contour window: a TalbotContour per channel, all
  /// anchored at the same t_max (the scalar case degenerates to exactly
  /// the old single contour).
  class Window {
   public:
    Window(WaveformEngine& e, double t_max) : e_(&e) {
      contours_.reserve(e.channels_.size());
      for (const auto& ch : e.channels_) {
        contours_.emplace_back(rlc::laplace::BatchLaplaceFnRef(ch->bstep),
                               t_max, e.opts_.window_points);
        ++e.windows_;
      }
    }
    double eval(double t) const {
      if (e_->single_) return contours_[0].eval(t);
      double acc = e_->offset_;
      for (std::size_t k = 0; k < contours_.size(); ++k)
        acc += e_->channels_[k]->coef * contours_[k].eval(t);
      return acc;
    }
    double t_max() const noexcept {
      return contours_.empty() ? 0.0 : contours_[0].t_max();
    }

   private:
    WaveformEngine* e_;
    std::vector<rlc::laplace::TalbotContour> contours_;
  };

  /// Waveform at arbitrary times, grouped into shared-contour windows.
  std::vector<double> sample(const std::vector<double>& times) {
    for (double t : times) {
      if (!(t > 0.0)) {
        throw std::domain_error(
            "exact_step_response_windowed: times must be > 0");
      }
    }
    std::vector<std::size_t> idx(times.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      return times[a] > times[b];
    });
    std::vector<double> out(times.size());
    std::size_t i = 0;
    while (i < idx.size()) {
      const double t_max = times[idx[i]];
      const Window window(*this, t_max);
      const double t_min = t_max / opts_.window_ratio;
      while (i < idx.size() && times[idx[i]] >= t_min * (1.0 - 1e-12)) {
        out[idx[i]] = window.eval(times[idx[i]]);
        ++i;
      }
    }
    return out;
  }

  /// First f-crossing: lazy top-down window descent + Brent polish.  Each
  /// window above the crossing costs one contour build plus ONE foot probe
  /// (is v still >= f at the window foot?); only the crossing window is
  /// grid-scanned, bottom-up with early exit at the first bracket.
  std::optional<double> threshold(double tau_scale, double f) {
    const double lo = kSearchLo * tau_scale;
    const double hi = kSearchHi * tau_scale;
    const int n_w = opts_.grid_points_per_window;
    const double lam = opts_.window_ratio;
    double t_hi = hi;
    bool top_window = true;
    while (true) {
      const Window contour(*this, t_hi);
      if (top_window) {
        // !(>= f) instead of (< f): a non-finite eval (kernel overflow at
        // extreme window scales) must mean "cannot certify a crossing",
        // not fall through into the descent on NaN comparisons.
        if (!(contour.eval(t_hi) >= f)) return std::nullopt;  // not settled
        top_window = false;
      }
      const double t_lo_w = std::max(lo, t_hi / lam);
      const double gstep = std::pow(t_hi / t_lo_w, 1.0 / n_w);
      const double v_foot = contour.eval(t_lo_w);
      if (v_foot >= f) {
        // Already above threshold at the window foot: the first crossing
        // (if any) lies further down.
        if (t_lo_w <= lo * (1.0 + 1e-12)) return std::nullopt;  // v(lo) >= f
        t_hi = t_lo_w;
        continue;
      }
      // The first crossing is inside (or at the top edge of) this window:
      // walk the geometric grid upward from the foot and stop at the first
      // bracket, which preserves first-crossing semantics at grid
      // resolution.
      double ta = t_lo_w, va = v_foot;
      for (int j = 1; j <= n_w; ++j) {
        const double tb = (j == n_w) ? t_hi : t_lo_w * std::pow(gstep, j);
        const double vb = contour.eval(tb);
        if (vb >= f) {
          return polish(&contour, va - f, vb - f, ta, tb, gstep, lo, hi,
                        tau_scale, f);
        }
        ta = tb;
        va = vb;
      }
      // Below f all the way up to t_hi, yet the window above starts >= f:
      // the crossing straddles the window boundary.
      return polish(nullptr, 0.0, 0.0, t_hi, std::min(hi, t_hi * gstep),
                    gstep, lo, hi, tau_scale, f);
    }
  }

  /// Legacy per-t bisection (the pre-engine implementation), kept as the
  /// reference and as the rescue path when the engine loses its bracket.
  /// Composite engines bisect the recomposed waveform (one memoized per-t
  /// inversion per channel per probe).
  std::optional<double> legacy_threshold(double tau_scale, double f) {
    const auto v = [&](double t) {
      if (single_) {
        return rlc::laplace::talbot_invert(channels_[0]->eval.step_ref(), t,
                                           opts_.talbot_points);
      }
      double acc = offset_;
      for (const auto& ch : channels_)
        acc += ch->coef * rlc::laplace::talbot_invert(ch->eval.step_ref(), t,
                                                      opts_.talbot_points);
      return acc;
    };
    double lo = kSearchLo * tau_scale, hi = kSearchHi * tau_scale;
    // The hi endpoint is negated so a non-finite value (kernel overflow at
    // extreme scales) reports "no bracket" instead of bisecting on NaN.
    // A non-finite v(lo) is tolerated: the deep foot overflows first while
    // being physically ~0, i.e. safely below any threshold.
    if (v(lo) > f || !(v(hi) >= f)) return std::nullopt;
    for (int i = 0; i < 60; ++i) {
      const double mid = 0.5 * (lo + hi);
      (v(mid) < f ? lo : hi) = mid;
    }
    return 0.5 * (lo + hi);
  }

  /// Composite waveform via the Euler (Abate-Whitt) inversion: one span
  /// evaluation per channel covering every node of every time point.  This
  /// is the accuracy path for waveform-shaped queries (victim noise, the
  /// coupled sampling API): ringing tails of underdamped modal lines sit
  /// outside the fixed-Talbot contour's comfort zone, while the vertical
  /// Euler contour keeps ~1e-7 absolute error there (see laplace/euler.hpp).
  std::vector<double> sample_euler(const std::vector<double>& ts) {
    std::vector<double> out(ts.size(), offset_);
    for (const auto& ch : channels_) {
      const std::vector<double> v = rlc::laplace::euler_invert(
          rlc::laplace::BatchLaplaceFnRef(ch->bstep), ts);
      for (std::size_t i = 0; i < ts.size(); ++i) out[i] += ch->coef * v[i];
    }
    return out;
  }

  double eval_euler(double t) {
    double acc = offset_;
    for (const auto& ch : channels_) {
      acc += ch->coef * rlc::laplace::euler_invert(
                            rlc::laplace::BatchLaplaceFnRef(ch->bstep), t);
    }
    return acc;
  }

  /// Peak deviation of the composite waveform from its pre-switch level
  /// (the victim-noise query): geometric grid scan over the search window,
  /// Brent refinement of the peak, and a half-magnitude pulse width from
  /// the scan samples.  Runs on the Euler path — noise peaks live in the
  /// ringing region where shared Talbot windows are least accurate.
  CoupledNoiseResult noise(double tau_scale) {
    const double lo = kSearchLo * tau_scale;
    const double hi = kSearchHi * tau_scale;
    const int n = 400;
    std::vector<double> ts(n);
    const double g = std::pow(hi / lo, 1.0 / (n - 1));
    for (int i = 0; i < n; ++i) ts[i] = lo * std::pow(g, i);
    ts.back() = hi;
    const std::vector<double> v = sample_euler(ts);
    std::vector<double> dev(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) dev[i] = v[i] - offset_;
    std::size_t k = 0;
    for (std::size_t i = 1; i < dev.size(); ++i)
      if (std::abs(dev[i]) > std::abs(dev[k])) k = i;

    CoupledNoiseResult out;
    out.peak = std::abs(dev[k]);
    out.t_peak = ts[k];
    if (out.peak == 0.0) return out;

    const double sign = dev[k] >= 0.0 ? 1.0 : -1.0;
    if (k > 0 && k + 1 < ts.size()) {
      const auto r = rlc::math::brent_minimize(
          [&](double t) { return -sign * (eval_euler(t) - offset_); },
          ts[k - 1], ts[k + 1], 1e-6 * tau_scale);
      brent_iterations_ += r.iterations;
      if (r.converged && -r.fx >= out.peak) {
        out.t_peak = r.x;
        out.peak = -r.fx;
      }
    }

    // Width: time spent with sign*dev >= peak/2, interpolated on the scan.
    const double half = 0.5 * out.peak;
    double t_left = lo, t_right = hi;
    for (std::size_t i = k; i-- > 0;) {
      if (sign * dev[i] < half) {
        const double num = half - sign * dev[i];
        const double den = sign * dev[i + 1] - sign * dev[i];
        t_left = ts[i] + (ts[i + 1] - ts[i]) * (den > 0.0 ? num / den : 0.0);
        break;
      }
    }
    for (std::size_t i = k + 1; i < dev.size(); ++i) {
      if (sign * dev[i] < half) {
        const double num = sign * dev[i - 1] - half;
        const double den = sign * dev[i - 1] - sign * dev[i];
        t_right =
            ts[i - 1] + (ts[i] - ts[i - 1]) * (den > 0.0 ? num / den : 0.0);
        break;
      }
    }
    out.width = std::max(0.0, t_right - t_left);
    return out;
  }

  ExactStats stats() const {
    ExactStats s;
    for (const auto& ch : channels_) {
      s.transfer_evals += static_cast<std::int64_t>(ch->eval.evaluations() +
                                                    ch->batch.evaluations());
      s.cache_hits += static_cast<std::int64_t>(ch->eval.cache_hits());
    }
    s.windows = windows_;
    s.brent_iterations = brent_iterations_;
    s.legacy_fallbacks = legacy_fallbacks_;
    return s;
  }

 private:
  /// Polish the crossing.  With the default window ratio the bracket from
  /// the grid scan always sits above ~0.25 t_max of its window, where the
  /// window contour is accurate enough to seed the per-t refinement — so
  /// the root is brent-solved on it with zero extra transfer evaluations
  /// and then converged onto the legacy integrand.  Deeper brackets (large
  /// custom window ratios) and boundary straddles get a fresh contour
  /// anchored at the bracket top, where the bracket is re-verified and
  /// widened by grid steps if the coarser window misplaced it.
  std::optional<double> polish(const Window* window, double ga_win,
                               double gb_win, double a, double b, double gstep,
                               double lo, double hi, double tau_scale,
                               double f) {
    if (window != nullptr && b >= 0.25 * window->t_max() && ga_win <= 0.0 &&
        gb_win >= 0.0) {
      const auto r = rlc::math::brent_root(
          [&](double t) { return window->eval(t) - f; }, a, b,
          1e-4 * tau_scale);
      brent_iterations_ += r.iterations;
      if (r.converged) return refine_per_t(*window, r.x, lo, hi, tau_scale, f);
      // fall through to the fresh-contour attempts
    }
    for (int attempt = 0; attempt < 8; ++attempt) {
      const Window c(*this, b);
      const double ga = c.eval(a) - f;
      const double gb = c.eval(b) - f;
      if (ga <= 0.0 && gb >= 0.0) {
        const auto r = rlc::math::brent_root(
            [&](double t) { return c.eval(t) - f; }, a, b,
            1e-4 * tau_scale);
        brent_iterations_ += r.iterations;
        if (r.converged) return refine_per_t(c, r.x, lo, hi, tau_scale, f);
        break;
      }
      const double a_prev = a, b_prev = b;
      if (ga > 0.0) a = std::max(lo, a / gstep);
      if (gb < 0.0) b = std::min(hi, b * gstep);
      if (a == a_prev && b == b_prev) break;  // pinned at the search edges
    }
    ++legacy_fallbacks_;
    return legacy_threshold(tau_scale, f);
  }

  /// Converge the contour root onto the per-t integrand the legacy path
  /// bisects.  On ringing (inductive) responses the shared-contour value
  /// near the root can disagree with the per-t inversion by ~1e-3, so the
  /// contour root alone would eat the whole accuracy budget; a few
  /// fixed-slope Newton steps on talbot_invert itself close that gap to
  /// root-finder precision.  The slope comes from the cached contour
  /// (relative accuracy ~1e-3 there is ample for Newton), so each step
  /// costs exactly one per-t inversion.
  double refine_per_t(const Window& c, double t0, double lo, double hi,
                      double tau_scale, double f) {
    const double dt = 1e-3 * t0;
    const double t_up = std::min(t0 + dt, c.t_max());
    const double t_dn = t0 - dt;
    const double slope = (c.eval(t_up) - c.eval(t_dn)) / (t_up - t_dn);
    if (!std::isfinite(slope) || !(slope > 0.0)) return t0;
    double t = t0, t_best = t0;
    double g_best = std::numeric_limits<double>::infinity();
    for (int i = 0; i < 3; ++i) {
      const double g = invert_per_t(t) - f;
      if (!(std::abs(g) < g_best)) break;  // stalled: keep the best point
      g_best = std::abs(g);
      t_best = t;
      const double step = g / slope;
      t = std::clamp(t - step, lo, hi);
      // Each step shrinks the error ~1e3-fold (the slope is ~1e-3
      // accurate), so a sub-1e-6 step leaves ~1e-9 relative error.
      if (std::abs(step) <= 1e-6 * tau_scale) {
        t_best = t;
        break;
      }
    }
    return t_best;
  }

  /// One modal channel: the scalar evaluator pair plus its recomposition
  /// coefficient.  Held by unique_ptr — the evaluators flush metrics at
  /// destruction, so they must never be copied.
  struct Channel {
    Channel(const tline::LineParams& line, double h,
            const tline::DriverLoad& dl, double coef_in)
        : eval(line, h, dl), batch(line, h, dl), coef(coef_in) {}
    rlc::tline::TransferEvaluator eval;
    rlc::tline::BatchTransferEvaluator batch;
    BatchStep bstep{&batch};
    double coef;
  };

  /// Composite per-t inversion on the batch integrand (the accuracy
  /// reference refine_per_t converges onto).
  double invert_per_t(double t) const {
    if (single_) {
      return rlc::laplace::talbot_invert(
          rlc::laplace::BatchLaplaceFnRef(channels_[0]->bstep), t,
          opts_.talbot_points);
    }
    double acc = offset_;
    for (const auto& ch : channels_)
      acc += ch->coef * rlc::laplace::talbot_invert(
                            rlc::laplace::BatchLaplaceFnRef(ch->bstep), t,
                            opts_.talbot_points);
    return acc;
  }

  std::vector<std::unique_ptr<Channel>> channels_;
  ExactOptions opts_;
  double offset_ = 0.0;
  bool single_ = false;
  std::int64_t windows_ = 0;
  std::int64_t brent_iterations_ = 0;
  std::int64_t legacy_fallbacks_ = 0;
};

}  // namespace

std::vector<double> exact_step_response(const tline::LineParams& line,
                                        double h, const tline::DriverLoad& dl,
                                        const std::vector<double>& times,
                                        int talbot_points) {
  line.validate();
  return rlc::laplace::talbot_invert(step_transform(line, h, dl), times,
                                     talbot_points);
}

std::vector<double> exact_step_response_windowed(
    const tline::LineParams& line, double h, const tline::DriverLoad& dl,
    const std::vector<double>& times, const ExactOptions& opts,
    ExactStats* stats) {
  line.validate();
  validate_options(opts, /*threshold_path=*/false);
  RLC_TRACE_SPAN("exact_sample");
  WaveformEngine engine(line, h, dl, opts);
  auto out = engine.sample(times);
  if (stats) *stats += engine.stats();
  return out;
}

namespace {

/// Shared setup of every coupled query: validate the excitation against the
/// bus, diagonalize, and project the switch vector onto the modes.
struct CoupledSetup {
  tline::ModalDecomposition modal;
  std::vector<double> dm;  ///< modal weights of (target - initial)
};

CoupledSetup coupled_setup(const tline::CoupledLine& bus,
                           const CoupledExcitation& exc) {
  const std::size_t n = bus.conductors();
  if (exc.initial.size() != n || exc.target.size() != n) {
    throw std::invalid_argument(
        "CoupledExcitation: initial/target must have one entry per "
        "conductor");
  }
  CoupledSetup s;
  s.modal = tline::modal_decomposition(bus);
  std::vector<double> du(n);
  for (std::size_t i = 0; i < n; ++i) du[i] = exc.target[i] - exc.initial[i];
  s.dm = s.modal.modal_weights(du);
  return s;
}

/// Composite engine for one observed conductor: channel coefficients
/// coef_j = W(conductor, j) * dm_j, offset = the conductor's initial level.
WaveformEngine conductor_engine(const CoupledSetup& su,
                                const CoupledExcitation& exc,
                                std::size_t conductor, double h,
                                const tline::DriverLoad& dl,
                                const ExactOptions& opts) {
  std::vector<double> coefs(su.modal.size());
  for (std::size_t j = 0; j < su.modal.size(); ++j)
    coefs[j] = su.modal.vectors(conductor, j) * su.dm[j];
  return WaveformEngine(su.modal.modes, coefs, exc.initial[conductor], h, dl,
                        opts);
}

}  // namespace

std::vector<std::vector<double>> exact_coupled_step_response(
    const tline::CoupledLine& bus, double h, const tline::DriverLoad& dl,
    const CoupledExcitation& exc, const std::vector<double>& times,
    const ExactOptions& opts, ExactStats* stats) {
  validate_options(opts, /*threshold_path=*/false);
  RLC_TRACE_SPAN("exact_coupled_sample");
  const CoupledSetup su = coupled_setup(bus, exc);
  const std::size_t n = bus.conductors();
  const std::size_t n_modes = su.modal.size();

  // One Euler inversion per EXCITED mode — a single span evaluation over
  // every node of every time point feeds the SoA batch kernel — and the
  // modal responses are then recomposed into all n conductor waveforms.
  // (Shared Talbot windows are NOT used here: underdamped modal ringing
  // tails need the vertical-contour accuracy; see laplace/euler.hpp.)
  std::vector<std::vector<double>> modal_v(n_modes);
  for (std::size_t j = 0; j < n_modes; ++j) {
    if (su.dm[j] == 0.0) continue;
    tline::BatchTransferEvaluator batch(su.modal.modes[j], h, dl);
    const BatchStep bstep{&batch};
    modal_v[j] = rlc::laplace::euler_invert(
        rlc::laplace::BatchLaplaceFnRef(bstep), times);
    if (stats) {
      stats->transfer_evals +=
          static_cast<std::int64_t>(batch.evaluations());
    }
  }
  std::vector<std::vector<double>> out(n,
                                       std::vector<double>(times.size()));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t ti = 0; ti < times.size(); ++ti) {
      double acc = exc.initial[i];
      for (std::size_t j = 0; j < n_modes; ++j) {
        if (modal_v[j].empty()) continue;
        acc += su.modal.vectors(i, j) * su.dm[j] * modal_v[j][ti];
      }
      out[i][ti] = acc;
    }
  }
  return out;
}

std::optional<double> exact_coupled_threshold_delay(
    const tline::CoupledLine& bus, double h, const tline::DriverLoad& dl,
    const CoupledExcitation& exc, std::size_t conductor, double tau_scale,
    double f, const ExactOptions& opts, ExactStats* stats) {
  if (conductor >= bus.conductors()) {
    throw std::invalid_argument(
        "exact_coupled_threshold_delay: conductor index out of range");
  }
  validate_threshold_args(tau_scale, f);
  validate_options(opts, /*threshold_path=*/!opts.legacy_bisection);
  RLC_TRACE_SPAN("exact_coupled_threshold");
  const CoupledSetup su = coupled_setup(bus, exc);
  WaveformEngine engine = conductor_engine(su, exc, conductor, h, dl, opts);
  const auto out = opts.legacy_bisection ? engine.legacy_threshold(tau_scale, f)
                                         : engine.threshold(tau_scale, f);
  if (stats) *stats += engine.stats();
  return out;
}

CoupledNoiseResult exact_coupled_victim_noise(
    const tline::CoupledLine& bus, double h, const tline::DriverLoad& dl,
    const CoupledExcitation& exc, std::size_t victim, double tau_scale,
    const ExactOptions& opts, ExactStats* stats) {
  if (victim >= bus.conductors()) {
    throw std::invalid_argument(
        "exact_coupled_victim_noise: conductor index out of range");
  }
  if (!(tau_scale > 0.0)) {
    throw std::domain_error(
        "exact_coupled_victim_noise: tau_scale must be > 0");
  }
  validate_options(opts, /*threshold_path=*/false);
  RLC_TRACE_SPAN("exact_coupled_noise");
  const CoupledSetup su = coupled_setup(bus, exc);
  WaveformEngine engine = conductor_engine(su, exc, victim, h, dl, opts);
  CoupledNoiseResult out = engine.noise(tau_scale);
  if (stats) *stats += engine.stats();
  return out;
}

std::optional<double> exact_threshold_delay(const tline::LineParams& line,
                                            double h,
                                            const tline::DriverLoad& dl,
                                            double tau_scale, double f,
                                            const ExactOptions& opts,
                                            ExactStats* stats) {
  line.validate();
  validate_threshold_args(tau_scale, f);
  validate_options(opts, /*threshold_path=*/!opts.legacy_bisection);
  RLC_TRACE_SPAN("exact_threshold");
  static const int kCalls =
      obs::Registry::global().counter("exact.threshold.calls");
  obs::Registry::global().add(kCalls);
  WaveformEngine engine(line, h, dl, opts);
  const auto out = opts.legacy_bisection
                       ? engine.legacy_threshold(tau_scale, f)
                       : engine.threshold(tau_scale, f);
  if (stats) *stats += engine.stats();
  return out;
}

std::optional<double> exact_threshold_delay(const tline::LineParams& line,
                                            double h,
                                            const tline::DriverLoad& dl,
                                            double tau_scale, double f,
                                            int talbot_points) {
  ExactOptions opts;
  opts.talbot_points = talbot_points;
  return exact_threshold_delay(line, h, dl, tau_scale, f, opts);
}

std::optional<double> exact_threshold_delay(const Technology& tech, double l,
                                            double h, double k,
                                            double tau_scale, double f) {
  return exact_threshold_delay(tech.line(l), h, tech.rep.scaled(k), tau_scale,
                               f);
}

std::optional<double> exact_threshold_delay(const Technology& tech, double l,
                                            double h, double k,
                                            double tau_scale, double f,
                                            const ExactOptions& opts,
                                            ExactStats* stats) {
  return exact_threshold_delay(tech.line(l), h, tech.rep.scaled(k), tau_scale,
                               f, opts, stats);
}

std::vector<std::optional<double>> exact_sweep(
    const std::vector<ExactSweepTask>& tasks, const ExactSweepOptions& opts) {
  struct TaskOut {
    std::optional<double> delay;
    ExactStats stats;
    double wall = 0.0;
  };
  const auto run_one = [&opts](const ExactSweepTask& task) {
    rlc::exec::StopWatch sw;
    TaskOut out;
    out.delay = exact_threshold_delay(task.line, task.h, task.dl,
                                      task.tau_scale, opts.f, opts.exact,
                                      &out.stats);
    out.wall = sw.seconds();
    return out;
  };
  std::vector<TaskOut> outs;
  if (opts.parallel && tasks.size() > 1) {
    auto& pool = opts.pool ? *opts.pool : rlc::exec::default_pool();
    outs = rlc::exec::parallel_map(pool, tasks, run_one);
  } else {
    outs.reserve(tasks.size());
    for (const auto& t : tasks) outs.push_back(run_one(t));
  }
  std::vector<std::optional<double>> delays;
  delays.reserve(outs.size());
  for (const auto& o : outs) {
    if (opts.counters) {
      opts.counters->record_solve(o.stats.brent_iterations,
                                  o.stats.legacy_fallbacks > 0,
                                  !o.delay.has_value(), o.wall);
    }
    if (opts.stats) *opts.stats += o.stats;
    delays.push_back(o.delay);
  }
  return delays;
}

std::vector<std::optional<double>> exact_sweep(
    const Technology& tech, const std::vector<double>& ls, double h, double k,
    const ExactSweepOptions& opts) {
  std::vector<ExactSweepTask> tasks;
  tasks.reserve(ls.size());
  for (double l : ls) {
    ExactSweepTask t;
    t.line = tech.line(l);
    t.h = h;
    t.dl = tech.rep.scaled(k);
    const auto d = segment_delay(tech.rep, t.line, h, k);
    if (d.converged && d.tau > 0.0) {
      t.tau_scale = d.tau;
    } else {
      // Elmore-style scale: driver charging plus distributed wire delay.
      t.tau_scale =
          t.dl.rs_eff * (t.dl.cp_eff + t.dl.cl_eff + t.line.c * h) +
          t.line.r * h * (0.5 * t.line.c * h + t.dl.cl_eff);
    }
    tasks.push_back(t);
  }
  return exact_sweep(tasks, opts);
}

}  // namespace rlc::core
