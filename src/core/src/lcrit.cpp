#include "rlc/core/lcrit.hpp"

#include <stdexcept>

#include "rlc/core/pade.hpp"

namespace rlc::core {

double critical_inductance(const Repeater& rep, double r, double c, double h,
                           double k) {
  if (!(h > 0.0) || !(k > 0.0)) {
    throw std::domain_error("critical_inductance: h and k must be > 0");
  }
  const auto dl = rep.scaled(k);
  // b1 does not depend on l; b2 = l*(c h^2/2 + Cl h) + b2_0 where b2_0 is
  // b2 evaluated at l = 0.  Critical damping: b2 = b1^2 / 4.
  const PadeCoeffs pc0 = pade_coeffs({r, 0.0, c}, h, dl);
  const double slope = 0.5 * c * h * h + dl.cl_eff * h;  // d b2 / d l
  return (0.25 * pc0.b1 * pc0.b1 - pc0.b2) / slope;
}

double critical_inductance(const Technology& tech, double h, double k) {
  return critical_inductance(tech.rep, tech.r, tech.c, h, k);
}

}  // namespace rlc::core
