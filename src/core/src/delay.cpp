#include "rlc/core/delay.hpp"

#include <cmath>
#include <stdexcept>

#include "rlc/math/newton.hpp"

namespace rlc::core {

DelayResult threshold_delay(const TwoPole& sys, const DelayOptions& opts) {
  if (!(opts.f > 0.0 && opts.f < 1.0)) {
    throw std::domain_error("threshold_delay: f must be in (0, 1)");
  }
  DelayResult res;
  // Characteristic time: for overdamped systems b1 dominates, for
  // underdamped the rise happens within a fraction of the ring period.
  const double t_char = std::max(sys.b1(), std::sqrt(sys.b2()));

  // Bracket the FIRST crossing of f: walk forward in small steps until
  // v(t) >= f.  v(0) = 0 < f and v -> 1 > f, so a crossing exists.
  const auto v = [&sys, &opts](double t) { return sys.step_response(t) - opts.f; };
  const int kStepsPerChar = 64;
  const double dt = t_char / kStepsPerChar;
  double lo = 0.0, hi = 0.0;
  bool bracketed = false;
  // 200 characteristic times is far beyond any physical delay here; the
  // response has settled long before.
  const long max_steps = 200L * kStepsPerChar;
  double prev_t = 0.0;
  for (long i = 1; i <= max_steps; ++i) {
    const double t = dt * static_cast<double>(i);
    if (v(t) >= 0.0) {
      lo = prev_t;
      hi = t;
      bracketed = true;
      break;
    }
    prev_t = t;
  }
  if (!bracketed) {
    res.converged = false;
    return res;
  }

  rlc::math::NewtonOptions nopts;
  nopts.max_iterations = opts.max_iterations;
  nopts.f_tolerance = 1e-14;
  nopts.x_tolerance = opts.rel_tolerance;
  const auto sol = rlc::math::newton_bisect_scalar(
      v, [&sys](double t) { return sys.step_response_derivative(t); }, lo, hi,
      nopts);
  res.tau = sol.x;
  res.newton_iterations = sol.iterations;
  res.converged = sol.converged;
  return res;
}

double delay_50(const TwoPole& sys) {
  const DelayResult r = threshold_delay(sys, {});
  if (!r.converged) throw std::runtime_error("delay_50: delay solve failed");
  return r.tau;
}

DelayResult segment_delay(const Repeater& rep, const tline::LineParams& line,
                          double h, double k, const DelayOptions& opts) {
  const TwoPole sys(pade_coeffs_hk(rep, line, h, k));
  return threshold_delay(sys, opts);
}

}  // namespace rlc::core
