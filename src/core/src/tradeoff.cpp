#include "rlc/core/tradeoff.hpp"

#include <cmath>
#include <stdexcept>

#include "rlc/math/brent.hpp"

namespace rlc::core {

namespace {

/// tau/h as a 1-D objective with invalid points mapped to +inf.
double objective_or_inf(const Repeater& rep, const tline::LineParams& line,
                        double h, double k, double f) {
  if (!(h > 0.0) || !(k > 0.0)) return 1e300;
  try {
    return delay_per_length(rep, line, h, k, f);
  } catch (const std::exception&) {
    return 1e300;
  }
}

OptimResult pack_result(const Repeater& rep, const tline::LineParams& line,
                        double h, double k, double f, bool converged) {
  OptimResult res;
  res.h = h;
  res.k = k;
  res.method = OptimMethod::kNewton;  // 1-D Brent; field kept for uniformity
  res.converged = converged;
  if (converged) {
    DelayOptions dopts;
    dopts.f = f;
    const DelayResult dr = segment_delay(rep, line, h, k, dopts);
    res.converged = dr.converged;
    res.tau = dr.tau;
    res.delay_per_length = dr.tau / h;
  }
  return res;
}

}  // namespace

OptimResult optimize_h_for_fixed_k(const Repeater& rep,
                                   const tline::LineParams& line, double k,
                                   double f) {
  line.validate();
  if (!(k > 0.0)) throw std::domain_error("optimize_h_for_fixed_k: k must be > 0");
  const RcOptimum rc = rc_optimum(rep, line.r, line.c);
  const auto g = [&](double h) { return objective_or_inf(rep, line, h, k, f); };
  // Bracket generously around the RC optimum; the RLC optimum moves h up by
  // at most a small factor over the paper's sweep range.
  const auto m = rlc::math::brent_minimize(g, 0.05 * rc.h, 10.0 * rc.h, 1e-10);
  return pack_result(rep, line, m.x, k, f, m.converged);
}

OptimResult optimize_k_for_fixed_h(const Repeater& rep,
                                   const tline::LineParams& line, double h,
                                   double f) {
  line.validate();
  if (!(h > 0.0)) throw std::domain_error("optimize_k_for_fixed_h: h must be > 0");
  const RcOptimum rc = rc_optimum(rep, line.r, line.c);
  const auto g = [&](double k) { return objective_or_inf(rep, line, h, k, f); };
  const auto m = rlc::math::brent_minimize(g, 0.02 * rc.k, 10.0 * rc.k, 1e-10);
  return pack_result(rep, line, h, m.x, f, m.converged);
}

double energy_per_length(const Technology& tech, double h, double k) {
  if (!(h > 0.0) || !(k > 0.0)) {
    throw std::domain_error("energy_per_length: h and k must be > 0");
  }
  const double cap_per_len = tech.c + (tech.rep.c0 + tech.rep.cp) * k / h;
  return cap_per_len * tech.vdd * tech.vdd;
}

double area_per_length(double h, double k) {
  if (!(h > 0.0) || !(k > 0.0)) {
    throw std::domain_error("area_per_length: h and k must be > 0");
  }
  return k / h;
}

std::vector<TradeoffPoint> delay_energy_tradeoff(const Technology& tech,
                                                 double l, int n_points,
                                                 double k_fraction_min,
                                                 double f) {
  if (n_points < 2 || !(k_fraction_min > 0.0 && k_fraction_min < 1.0)) {
    throw std::invalid_argument("delay_energy_tradeoff: bad sweep spec");
  }
  OptimOptions opts;
  opts.f = f;
  const OptimResult best = optimize_rlc(tech, l, opts);
  if (!best.converged) {
    throw std::runtime_error("delay_energy_tradeoff: unconstrained solve failed");
  }
  std::vector<TradeoffPoint> out;
  out.reserve(n_points);
  for (int i = 0; i < n_points; ++i) {
    const double frac =
        k_fraction_min + (1.0 - k_fraction_min) * i / (n_points - 1);
    const double k = frac * best.k;
    const OptimResult r = optimize_h_for_fixed_k(tech.rep, tech.line(l), k, f);
    if (!r.converged) continue;
    TradeoffPoint p;
    p.k = k;
    p.h = r.h;
    p.delay_per_length = r.delay_per_length;
    p.energy_per_length = energy_per_length(tech, r.h, k);
    p.area_per_length = area_per_length(r.h, k);
    out.push_back(p);
  }
  return out;
}

}  // namespace rlc::core
